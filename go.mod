module littleslaw

go 1.24
