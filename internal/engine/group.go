package engine

import (
	"context"
	"sync"
)

// Group is a singleflight-style result cache keyed on run configuration:
// the first caller of a key executes the function while concurrent callers
// of the same key wait for — and share — its result. Successful results
// are retained, so a Group doubles as the process cache the serial code
// kept in a plain map; failed calls are forgotten and retried by the next
// caller. The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the cached value for key, executing fn exactly once per key
// among concurrent callers. Waiters abandon the wait (but not the in-flight
// call) when their own context is cancelled.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (V, error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[K]*flight[V])
		}
		if f, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				var zero V
				return zero, ctx.Err()
			}
			if f.err == nil {
				return f.val, nil
			}
			// The shared call failed (possibly from another caller's
			// cancellation); retry under this caller's context.
			if err := ctx.Err(); err != nil {
				var zero V
				return zero, err
			}
			continue
		}
		f := &flight[V]{done: make(chan struct{})}
		g.m[key] = f
		g.mu.Unlock()

		f.val, f.err = protect(ctx, func(context.Context) (V, error) { return fn() })
		if f.err != nil {
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
		}
		close(f.done)
		return f.val, f.err
	}
}

// Put seeds the cache with a completed value (test and warm-start hook).
func (g *Group[K, V]) Put(key K, val V) {
	f := &flight[V]{done: make(chan struct{}), val: val}
	close(f.done)
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*flight[V])
	}
	g.m[key] = f
	g.mu.Unlock()
}

// Forget drops a key so the next Do re-executes.
func (g *Group[K, V]) Forget(key K) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}

// Keys returns the keys of completed, successful entries (order unspecified).
func (g *Group[K, V]) Keys() []K {
	g.mu.Lock()
	defer g.mu.Unlock()
	keys := make([]K, 0, len(g.m))
	for k, f := range g.m {
		select {
		case <-f.done:
			if f.err == nil {
				keys = append(keys, k)
			}
		default:
		}
	}
	return keys
}
