package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUDoCachesAndReportsHits(t *testing.T) {
	l := NewLRU[string, int](4)
	calls := 0
	fn := func(context.Context) (int, error) { calls++; return 42, nil }

	v, hit, err := l.Do(context.Background(), "k", fn)
	if err != nil || v != 42 || hit {
		t.Fatalf("first Do = (%d, hit=%v, %v), want (42, false, nil)", v, hit, err)
	}
	v, hit, err = l.Do(context.Background(), "k", fn)
	if err != nil || v != 42 || !hit {
		t.Fatalf("second Do = (%d, hit=%v, %v), want (42, true, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := NewLRU[int, int](2)
	var calls atomic.Int64
	get := func(k int) {
		t.Helper()
		if _, _, err := l.Do(context.Background(), k, func(context.Context) (int, error) {
			calls.Add(1)
			return k, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get(1)
	get(2)
	get(1) // refresh 1; 2 is now the LRU entry
	get(3) // evicts 2
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	before := calls.Load()
	get(1)
	if calls.Load() != before {
		t.Fatal("entry 1 was evicted but should have been retained")
	}
	get(2)
	if calls.Load() != before+1 {
		t.Fatal("entry 2 should have been evicted and recomputed")
	}
}

func TestLRUSingleflight(t *testing.T) {
	l := NewLRU[string, int](4)
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := l.Do(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				<-release
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
			hits[i] = hit
		}(i)
	}
	// Give the flight a moment to be claimed, then release everyone.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	nhits := 0
	for _, h := range hits {
		if h {
			nhits++
		}
	}
	if nhits != waiters-1 {
		t.Fatalf("%d hits, want %d (all but the executor)", nhits, waiters-1)
	}
}

func TestLRUFailedCallsAreForgotten(t *testing.T) {
	l := NewLRU[string, int](4)
	calls := 0
	boom := errors.New("boom")
	fn := func(context.Context) (int, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return 9, nil
	}
	if _, _, err := l.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := l.Do(context.Background(), "k", fn)
	if err != nil || v != 9 || hit {
		t.Fatalf("retry = (%d, hit=%v, %v), want (9, false, nil)", v, hit, err)
	}
}

func TestLRUWaiterCancellation(t *testing.T) {
	l := NewLRU[string, int](4)
	started := make(chan struct{})
	release := make(chan struct{})
	go l.Do(context.Background(), "k", func(context.Context) (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := l.Do(ctx, "k", func(context.Context) (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestLRUInFlightNotEvicted(t *testing.T) {
	l := NewLRU[int, int](1)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := l.Do(context.Background(), 1, func(context.Context) (int, error) {
			close(started)
			<-release
			return 11, nil
		})
		if err != nil || v != 11 {
			t.Errorf("in-flight Do = (%d, %v)", v, err)
		}
	}()
	<-started
	// A burst of other keys must not evict the in-flight entry.
	for k := 2; k < 6; k++ {
		k := k
		if _, _, err := l.Do(context.Background(), k, func(context.Context) (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	<-done
	v, hit, err := l.Do(context.Background(), 1, func(context.Context) (int, error) {
		return 0, fmt.Errorf("should have been cached")
	})
	if err != nil || v != 11 || !hit {
		t.Fatalf("after flight Do = (%d, hit=%v, %v), want (11, true, nil)", v, hit, err)
	}
}

func TestLRUPutAndForget(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Put("k", 5)
	v, hit, err := l.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 0, fmt.Errorf("should not run")
	})
	if err != nil || v != 5 || !hit {
		t.Fatalf("Do after Put = (%d, hit=%v, %v)", v, hit, err)
	}
	l.Forget("k")
	v, hit, _ = l.Do(context.Background(), "k", func(context.Context) (int, error) { return 6, nil })
	if v != 6 || hit {
		t.Fatalf("Do after Forget = (%d, hit=%v), want (6, false)", v, hit)
	}
}

// TestLRUPutDuringFailingFlightKeepsSeededValue is the regression test for
// the remove-by-element bug: Put replaces the flight inside an in-flight
// entry's element in place, so when that flight then failed, its cleanup
// (matching on the element) erased the value Put had just seeded.
func TestLRUPutDuringFailingFlightKeepsSeededValue(t *testing.T) {
	l := NewLRU[string, int](4)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	boom := errors.New("boom")
	go func() {
		defer close(done)
		_, _, err := l.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("executor err = %v, want boom", err)
		}
	}()
	<-started
	l.Put("k", 99)
	close(release)
	<-done
	v, hit, err := l.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 0, fmt.Errorf("should not run")
	})
	if err != nil || v != 99 || !hit {
		t.Fatalf("Do after Put = (%d, hit=%v, %v), want (99, true, nil)", v, hit, err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

// TestLRUWaiterJoinedBeforePutSeesSeededValue: a waiter that joined the
// doomed flight before Put must retry and land on the seeded value, not
// strand or surface the stale failure.
func TestLRUWaiterJoinedBeforePutSeesSeededValue(t *testing.T) {
	l := NewLRU[string, int](4)
	started := make(chan struct{})
	release := make(chan struct{})
	boom := errors.New("boom")
	go l.Do(context.Background(), "k", func(context.Context) (int, error) {
		close(started)
		<-release
		return 0, boom
	})
	<-started

	waited := make(chan struct{})
	var wv int
	var werr error
	go func() {
		defer close(waited)
		wv, _, werr = l.Do(context.Background(), "k", func(context.Context) (int, error) {
			return 0, fmt.Errorf("should not run: value was seeded")
		})
	}()
	// Let the waiter join the flight, then seed and fail the flight.
	time.Sleep(10 * time.Millisecond)
	l.Put("k", 42)
	close(release)
	<-waited
	if werr != nil || wv != 42 {
		t.Fatalf("waiter Do = (%d, %v), want (42, nil)", wv, werr)
	}
}

// TestLRUPutDoForgetRace hammers the Put/Do/Forget/failure interleavings
// under the race detector and checks the capacity invariant holds once
// every flight has landed.
func TestLRUPutDoForgetRace(t *testing.T) {
	const capacity = 4
	l := NewLRU[int, int](capacity)
	boom := errors.New("boom")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := i % 8
				switch g % 4 {
				case 0:
					l.Do(context.Background(), k, func(context.Context) (int, error) { return k, nil })
				case 1:
					l.Do(context.Background(), k, func(context.Context) (int, error) { return 0, boom })
				case 2:
					l.Put(k, i)
				case 3:
					l.Forget(k)
				}
			}
		}(g)
	}
	wg.Wait()
	// Every key must still be retrievable (no stranded or corrupted entry)…
	for k := 0; k < 8; k++ {
		if _, _, err := l.Do(context.Background(), k, func(context.Context) (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// …and the inserts above re-trigger eviction, so with all flights done
	// the cache must fit its capacity again.
	if n := l.Len(); n > capacity {
		t.Fatalf("Len = %d after quiescence, want <= %d", n, capacity)
	}
}

func TestLRUPanicPropagates(t *testing.T) {
	l := NewLRU[string, int](2)
	_, _, err := l.Do(context.Background(), "k", func(context.Context) (int, error) { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	// The failed (panicked) entry must be retried, not cached.
	v, _, err := l.Do(context.Background(), "k", func(context.Context) (int, error) { return 3, nil })
	if err != nil || v != 3 {
		t.Fatalf("retry after panic = (%d, %v)", v, err)
	}
}
