package engine

import (
	"container/list"
	"context"
	"sync"
	"time"

	"littleslaw/internal/trace"
)

// LRU is a bounded Group: singleflight deduplication plus least-recently-
// used eviction of completed entries. It is the cache a long-running
// service needs where Group is the cache a batch run needs — Group retains
// every key for the life of the process, LRU retains at most capacity of
// them, evicting the coldest completed entry when a new key lands.
//
// In-flight computations are never evicted (a waiter holds a reference to
// the flight), so the map can transiently exceed capacity by the number of
// concurrent distinct misses. Failed computations are forgotten and
// retried by the next caller, exactly like Group.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	m        map[K]*list.Element // of *lruEntry[K, V]
	order    *list.List          // front = most recently used
}

type lruEntry[K comparable, V any] struct {
	key K
	f   *flight[V]
}

// NewLRU returns a cache retaining at most capacity completed entries.
// capacity <= 0 means unbounded (equivalent to Group with recency
// bookkeeping).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{capacity: capacity, m: make(map[K]*list.Element), order: list.New()}
}

// Do returns the value for key, computing it with fn at most once among
// concurrent callers. The second return reports whether the value was
// served from the cache — true both for a completed entry and for joining
// another caller's in-flight computation (the computation was not paid for
// by this caller either way). Waiters abandon the wait (but not the
// in-flight call) when their own context is cancelled.
func (l *LRU[K, V]) Do(ctx context.Context, key K, fn func(context.Context) (V, error)) (V, bool, error) {
	for {
		l.mu.Lock()
		if el, ok := l.m[key]; ok {
			l.order.MoveToFront(el)
			f := el.Value.(*lruEntry[K, V]).f
			l.mu.Unlock()
			select {
			case <-f.done:
				// Already resolved: a pure hit, no wait worth a span.
			default:
				// Joining another caller's in-flight computation is queue
				// wait — the singleflight flavor of pool wait.
				join := time.Now()
				select {
				case <-f.done:
					trace.Add(ctx, "engine", "join", time.Since(join), 0)
				case <-ctx.Done():
					var zero V
					return zero, true, ctx.Err()
				}
			}
			if f.err == nil {
				return f.val, true, nil
			}
			// The shared call failed (possibly from another caller's
			// cancellation); retry under this caller's context.
			if err := ctx.Err(); err != nil {
				var zero V
				return zero, true, err
			}
			continue
		}
		f := &flight[V]{done: make(chan struct{})}
		el := l.order.PushFront(&lruEntry[K, V]{key: key, f: f})
		l.m[key] = el
		l.evictLocked()
		l.mu.Unlock()

		a := trace.Begin(ctx, "engine")
		f.val, f.err = protect(ctx, fn)
		if f.err != nil {
			l.remove(key, f)
		}
		close(f.done)
		a.End("compute")
		return f.val, false, f.err
	}
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its capacity. Callers hold l.mu.
func (l *LRU[K, V]) evictLocked() {
	if l.capacity <= 0 {
		return
	}
	for el := l.order.Back(); el != nil && len(l.m) > l.capacity; {
		prev := el.Prev()
		e := el.Value.(*lruEntry[K, V])
		select {
		case <-e.f.done:
			delete(l.m, e.key)
			l.order.Remove(el)
		default:
			// In flight: a caller is waiting on it; skip.
		}
		el = prev
	}
}

// remove drops key if it still holds flight f. Matching on the flight —
// not the list element — is load-bearing: Put replaces the flight inside
// an existing element in place, so a failed computation matching on the
// element would erase the concurrently seeded value (and a Forget+Do pair
// reuses the key with a fresh element, which must survive too).
func (l *LRU[K, V]) remove(key K, f *flight[V]) {
	l.mu.Lock()
	if el, ok := l.m[key]; ok && el.Value.(*lruEntry[K, V]).f == f {
		delete(l.m, key)
		l.order.Remove(el)
	}
	l.mu.Unlock()
}

// Put seeds the cache with a completed value.
func (l *LRU[K, V]) Put(key K, val V) {
	f := &flight[V]{done: make(chan struct{}), val: val}
	close(f.done)
	l.mu.Lock()
	if el, ok := l.m[key]; ok {
		el.Value.(*lruEntry[K, V]).f = f
		l.order.MoveToFront(el)
	} else {
		l.m[key] = l.order.PushFront(&lruEntry[K, V]{key: key, f: f})
		l.evictLocked()
	}
	l.mu.Unlock()
}

// Peek returns the completed value for key without computing anything: a
// hit only when the entry exists, has resolved, and resolved without error.
// In-flight computations report a miss rather than blocking — Peek is the
// read path for callers that must answer *now* (stale serving under
// brownout) and cannot afford to join a flight. A hit still refreshes
// recency, since serving a value is using it.
func (l *LRU[K, V]) Peek(key K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var zero V
	el, ok := l.m[key]
	if !ok {
		return zero, false
	}
	f := el.Value.(*lruEntry[K, V]).f
	select {
	case <-f.done:
	default:
		return zero, false
	}
	if f.err != nil {
		return zero, false
	}
	l.order.MoveToFront(el)
	return f.val, true
}

// Forget drops a key so the next Do re-executes.
func (l *LRU[K, V]) Forget(key K) {
	l.mu.Lock()
	if el, ok := l.m[key]; ok {
		delete(l.m, key)
		l.order.Remove(el)
	}
	l.mu.Unlock()
}

// Len returns the number of cached entries (including in-flight ones).
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}
