package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func intJobs(n int) []func(context.Context) (int, error) {
	jobs := make([]func(context.Context) (int, error), n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i * i, nil }
	}
	return jobs
}

func TestMapPreservesSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(context.Background(), New(workers), intJobs(50))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndNilPool(t *testing.T) {
	got, err := Map(context.Background(), nil, intJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 4 {
		t.Fatalf("nil-pool map wrong: %v", got)
	}
	if got, err := Map(context.Background(), New(4), intJobs(0)); err != nil || len(got) != 0 {
		t.Fatalf("empty job list: %v %v", got, err)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		jobs := intJobs(20)
		jobs[7] = func(context.Context) (int, error) { return 0, fmt.Errorf("seven: %w", boom) }
		_, err := Map(context.Background(), New(workers), jobs)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
	}
}

func TestMapRecoversPanics(t *testing.T) {
	jobs := intJobs(4)
	jobs[2] = func(context.Context) (int, error) { panic("kaboom") }
	_, err := Map(context.Background(), New(4), jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if fmt.Sprint(pe.Value) != "kaboom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

func TestMapHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map(ctx, New(4), intJobs(8)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapErrorCancelsRemainingJobs(t *testing.T) {
	var started atomic.Int64
	jobs := make([]func(context.Context) (int, error), 64)
	jobs[0] = func(context.Context) (int, error) { return 0, errors.New("early failure") }
	for i := 1; i < len(jobs); i++ {
		jobs[i] = func(ctx context.Context) (int, error) {
			started.Add(1)
			<-ctx.Done() // a cancelled sibling must not hang here forever
			return 0, ctx.Err()
		}
	}
	done := make(chan struct{})
	go func() {
		Map(context.Background(), New(2), jobs)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map hung after a job error")
	}
	if started.Load() == int64(len(jobs)-1) {
		t.Log("note: every job started before cancellation propagated (slow host?)")
	}
}

func TestGroupDeduplicatesAndCaches(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64
	const callers = 8
	var wg sync.WaitGroup
	results := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				time.Sleep(10 * time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1 (singleflight)", n)
	}
	for _, v := range results {
		if v != 42 {
			t.Fatalf("results = %v", results)
		}
	}
	// Cached: a later call must not re-execute.
	if v, _ := g.Do(context.Background(), "k", func() (int, error) { calls.Add(1); return 0, nil }); v != 42 {
		t.Fatalf("cached value = %d", v)
	}
	if calls.Load() != 1 {
		t.Fatal("cached key re-executed")
	}
}

func TestGroupDoesNotCacheErrors(t *testing.T) {
	var g Group[string, int]
	if _, err := g.Do(context.Background(), "k", func() (int, error) { return 0, errors.New("once") }); err == nil {
		t.Fatal("error swallowed")
	}
	v, err := g.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after error: %d %v", v, err)
	}
	if got := g.Keys(); len(got) != 1 || got[0] != "k" {
		t.Fatalf("keys = %v", got)
	}
}

func TestGroupPutAndForget(t *testing.T) {
	var g Group[string, int]
	g.Put("seed", 9)
	v, err := g.Do(context.Background(), "seed", func() (int, error) { return 0, errors.New("must not run") })
	if err != nil || v != 9 {
		t.Fatalf("seeded value: %d %v", v, err)
	}
	g.Forget("seed")
	v, err = g.Do(context.Background(), "seed", func() (int, error) { return 11, nil })
	if err != nil || v != 11 {
		t.Fatalf("after forget: %d %v", v, err)
	}
}
