// Package engine provides the concurrent execution substrate shared by the
// repository's embarrassingly-parallel pipelines: table regeneration
// (internal/experiments), X-Mem profiling (internal/xmem) and the autotune
// loop (internal/autotune). Each paper table row, X-Mem load point and
// autotune probe is an independent full-node simulation, so they fan out
// across a bounded worker pool.
//
// The engine's contract is determinism first: results come back in
// submission order regardless of worker count or completion order, so any
// pipeline built on Map produces byte-identical output with 1 worker and
// with N. Speedup is the payoff, never the bar.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"littleslaw/internal/faults"
	"littleslaw/internal/trace"
)

// FaultSite is the engine's fault-injection point, evaluated once per
// protected job (every Map job and every LRU computation). It honors all
// three job-shaped kinds: latency, error, and panic — the last exercising
// the pool's own panic-to-PanicError recovery.
const FaultSite = "engine.job"

// Pool is a bounded worker pool. The zero value is not useful; construct
// with New. A Pool carries no queues or goroutines of its own — each Map
// call spawns at most Workers() goroutines for its duration — so Pools are
// cheap and need no shutdown.
type Pool struct {
	workers int
}

// New returns a pool running at most workers jobs concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// PanicError wraps a panic recovered from a job so that one misbehaving
// simulation aborts its pipeline with a diagnosable error instead of
// killing the process.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job panicked: %v\n%s", e.Value, e.Stack)
}

// protect runs job with panic-to-error recovery. It is also the engine's
// fault-injection point: an injected panic lands inside the recovery
// envelope, proving one chaotic job aborts its pipeline with a diagnosable
// error rather than the process.
func protect[T any](ctx context.Context, job func(context.Context) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	switch f := faults.Global().Eval(FaultSite); f.Kind {
	case faults.KindLatency:
		f.Sleep(ctx)
	case faults.KindError:
		return v, f.Err()
	case faults.KindPanic:
		panic(f.PanicValue())
	}
	return job(ctx)
}

// Map runs the jobs on the pool and returns their results in submission
// order — the deterministic-ordering guarantee every pipeline in this
// repository builds on. On the first job error the context handed to the
// remaining jobs is cancelled and Map returns that error (the lowest-index
// non-cancellation error, so the reported failure does not depend on
// completion order). A nil pool or a single worker degenerates to a serial
// in-order loop.
func Map[T any](ctx context.Context, p *Pool, jobs []func(context.Context) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]T, len(jobs))
	workers := p.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Serial jobs wait only on their predecessors, whose spans
			// already account that time — record service, not queue.
			a := trace.Begin(ctx, "engine")
			v, err := protect(ctx, job)
			a.End("job")
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	mapStart := time.Now()
	errs := make([]error, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				// Pool wait: how long the job sat before a worker picked it
				// up. Fan-out spans measure work time, not wall time — a
				// traced parallel section legitimately sums past its
				// request's W (see the trace package doc).
				a := trace.Begin(ctx, "engine")
				a.SetQueue(time.Since(mapStart))
				v, err := protect(ctx, jobs[i])
				a.End("job")
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()

	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		// Prefer the lowest-index real failure over cancellations it caused.
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if first != nil {
		return nil, first
	}
	return results, nil
}
