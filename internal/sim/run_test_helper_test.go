package sim

import "context"

// Run is a test-only shorthand for RunContext with a background context;
// the production context-free variant was removed so cancellation is
// structural for all real callers.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}
