package sim_test

import (
	"context"
	"math/rand"
	"testing"

	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// benchConfig builds a node-simulation config exercising the full
// sim/memsys hot path: streaming loads (prefetcher training, L2 traffic),
// random loads (MSHR pressure, DRAM bank conflicts) and async stores
// (writeback traffic), on a 4-core slice so an iteration stays cheap
// enough to repeat.
func benchConfig(p *platform.Platform, opsPerThread int) sim.Config {
	return sim.Config{
		Plat:  p,
		Cores: 4,
		NewGen: func(coreID, threadID int) cpu.Generator {
			rng := rand.New(rand.NewSource(int64(coreID*64+threadID) + 1))
			streamBase := uint64(coreID*8+threadID+1) << 34
			tableBase := streamBase + 1<<32
			i := 0
			return cpu.GeneratorFunc(func() (cpu.Op, bool) {
				if i >= opsPerThread {
					return cpu.Op{}, false
				}
				i++
				switch i % 4 {
				case 0: // random gather — the MSHR-bound path
					addr := tableBase + (rng.Uint64()%(1<<28))&^uint64(p.LineBytes-1)
					return cpu.Op{Addr: addr, Kind: memsys.Load, GapCycles: 4, Work: 1}, true
				case 1: // streaming writeback
					addr := streamBase + uint64(i)*8
					return cpu.Op{Addr: addr, Kind: memsys.Store, GapCycles: 2, Async: true}, true
				default: // streaming read — the prefetch-covered path
					addr := streamBase + uint64(i)*8
					return cpu.Op{Addr: addr, Kind: memsys.Load, GapCycles: 2, Work: 1}, true
				}
			})
		},
	}
}

// BenchmarkRun measures one full node simulation end to end — the unit of
// work every pipeline, service request and command bottoms out in. Run with
// -benchmem: allocs/op here is the whole-kernel allocation budget that the
// pooled events/MSHR/hierarchy path must keep lean.
func BenchmarkRun(b *testing.B) {
	for _, bc := range []struct {
		name string
		plat *platform.Platform
		ops  int
	}{
		{"SKL_mix", platform.SKL(), 6000},
		{"KNL_mix", platform.KNL(), 4000},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sim.RunContext(context.Background(), benchConfig(bc.plat, bc.ops))
				if err != nil {
					b.Fatal(err)
				}
				if res.Throughput <= 0 {
					b.Fatal("no work measured")
				}
			}
		})
	}
}
