package sim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"littleslaw/internal/cpu"
	"littleslaw/internal/platform"
)

// TestConcurrentRunsAreRaceCleanAndIdentical exercises the engine's core
// claim under `go test -race`: sim.Run shares no mutable package state, so
// two simultaneous runs of the same configuration interfere with nothing
// and produce bit-identical results (per-run scheduler, node and seeded
// generators).
func TestConcurrentRunsAreRaceCleanAndIdentical(t *testing.T) {
	mkCfg := func() Config {
		return Config{
			Plat:   platform.SKL(),
			Cores:  4,
			NewGen: randFactory(17, 1200, 1),
		}
	}
	const runs = 4
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(mkCfg())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	for i := 1; i < runs; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("concurrent runs diverged:\n run0: %+v\n run%d: %+v", results[0], i, results[i])
		}
	}
}

// TestRunContextMatchesRun: the cancellation plumbing must not perturb a
// completed run's measurements.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := func() Config {
		return Config{Plat: platform.KNL(), Cores: 4, NewGen: randFactory(23, 1000, 2)}
	}
	plain, err := Run(cfg())
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunContext(context.Background(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Fatalf("RunContext diverged from Run:\n %+v\n %+v", plain, ctxed)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{Plat: platform.SKL(), Cores: 2, NewGen: randFactory(1, 100, 1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v, want context.Canceled", err)
	}

	// Cancel mid-flight: the first generated operation pulls the trigger,
	// and the event loop must notice at one of its periodic checks.
	ctx2, cancel2 := context.WithCancel(context.Background())
	_, err = RunContext(ctx2, Config{
		Plat:  platform.SKL(),
		Cores: 8,
		NewGen: func(core, thread int) cpu.Generator {
			inner := randFactory(3, 100000, 1)(core, thread)
			return cpu.GeneratorFunc(func() (cpu.Op, bool) {
				cancel2()
				return inner.Next()
			})
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
}
