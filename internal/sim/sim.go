// Package sim runs whole-node simulations: N cores × M hardware threads
// executing a routine's memory-operation stream against the shared memory
// system, and reports steady-state measurements — bandwidth, true MSHR
// occupancies, stall breakdowns and work throughput — over a warmed-up
// measurement window.
package sim

import (
	"context"
	"fmt"
	"math"

	"littleslaw/internal/cpu"
	"littleslaw/internal/events"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
)

// Config describes one node run.
type Config struct {
	Plat *platform.Platform

	// Cores simulated; 0 means Plat.Cores.
	Cores int
	// ThreadsPerCore is the SMT degree in use (1 = no SMT).
	ThreadsPerCore int
	// Window is the per-thread demand window; 0 means Plat.DemandWindow.
	Window int
	// GapScale multiplies every compute gap beyond the SMT scaling
	// (e.g. the platform's scalar issue penalty); 0 means 1.
	GapScale float64
	// WarmupFrac is the fraction of total work treated as warmup before
	// the measurement window opens; 0 means 0.15.
	WarmupFrac float64
	// SMTShare overrides the platform's SMTComputeShare for this routine
	// (0 = platform default). Latency-bound routines leave the issue
	// pipeline mostly idle, so their co-resident threads contend less
	// than the platform-wide calibration assumes.
	SMTShare float64
	// SMTExponent overrides the sharing exponent (0 = the default 2/3).
	// Routines whose SMT threads contend a serial resource (shared
	// temporaries, store buffers) scale closer to linearly (exponent 1).
	SMTExponent float64
	// NewGen builds the generator for a hardware thread.
	NewGen func(core, thread int) cpu.Generator
	// Fingerprint identifies the operation stream NewGen produces (e.g.
	// "workloads/ISx|scalar|scale=1"). Two Configs with equal normalized
	// scalar fields, equal platforms and equal Fingerprints must simulate
	// identically; the runner layer caches on that identity. Leave empty
	// for ad-hoc generators (trace replays, bespoke streams) — an empty
	// Fingerprint makes the run uncacheable.
	Fingerprint string
	// ConfigureHierarchy, if set, runs on every core's memory hierarchy
	// after construction (ablation hooks such as disabling MSHR
	// coalescing). Setting it also makes the run uncacheable and opts the
	// hierarchies out of pooling, since the hook may perturb state beyond
	// what Reset restores.
	ConfigureHierarchy func(*memsys.Hierarchy)
}

func (c *Config) normalize() error {
	if c.Plat == nil {
		return fmt.Errorf("sim: nil platform")
	}
	if err := c.Plat.Validate(); err != nil {
		return err
	}
	if c.NewGen == nil {
		return fmt.Errorf("sim: nil generator factory")
	}
	if c.Cores == 0 {
		c.Cores = c.Plat.Cores
	}
	if c.Cores < 0 {
		return fmt.Errorf("sim: negative core count")
	}
	if c.ThreadsPerCore == 0 {
		c.ThreadsPerCore = 1
	}
	if c.ThreadsPerCore < 1 || c.ThreadsPerCore > c.Plat.SMTWays {
		return fmt.Errorf("sim: %d threads/core outside platform's 1..%d", c.ThreadsPerCore, c.Plat.SMTWays)
	}
	if c.Window == 0 {
		c.Window = c.Plat.DemandWindow
	}
	if c.GapScale < 0 {
		return fmt.Errorf("sim: negative gap scale %v", c.GapScale)
	}
	if c.GapScale == 0 {
		c.GapScale = 1
	}
	if c.WarmupFrac < 0 {
		return fmt.Errorf("sim: negative warmup fraction %v", c.WarmupFrac)
	}
	if c.WarmupFrac == 0 {
		c.WarmupFrac = 0.15
	}
	if c.WarmupFrac >= 0.9 {
		return fmt.Errorf("sim: warmup fraction %v outside [0, 0.9)", c.WarmupFrac)
	}
	if c.SMTShare < 0 {
		return fmt.Errorf("sim: negative SMT compute share %v", c.SMTShare)
	}
	if c.SMTExponent < 0 {
		return fmt.Errorf("sim: negative SMT sharing exponent %v", c.SMTExponent)
	}
	return nil
}

// Normalized returns a copy of c with every zero-default resolved (core
// count, SMT depth, window, gap scale, warmup fraction), validated the way
// RunContext validates it. Two Configs with equal Normalized scalar fields,
// the same platform and the same Fingerprint simulate identically — the
// canonical identity the runner layer caches on.
func (c Config) Normalized() (Config, error) {
	if err := (&c).normalize(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Result reports steady-state measurements over the measurement window.
type Result struct {
	Platform       string
	Cores          int
	ThreadsPerCore int

	WindowPs events.Duration // measurement window length

	// Work throughput: application elements per second. Speedups between
	// variants of the same routine are throughput ratios.
	Work       float64
	Throughput float64

	// Memory traffic over the window.
	ReadGBs  float64 // DRAM read bandwidth (GB/s)
	WriteGBs float64 // DRAM writeback bandwidth (GB/s)
	TotalGBs float64

	// Far-tier traffic and memory-side cache hit rate, when the platform
	// runs a two-tier memory (KNL cache mode); zero otherwise.
	SlowGBs       float64
	MCHitFraction float64

	// MeanDRAMLatencyNs is the true average read round trip in the window.
	MeanDRAMLatencyNs float64

	// MeanLoadLatencyNs is the average demand load-to-use latency seen by
	// the threads — what a PEBS-style sampling counter reports. For
	// prefetch-covered streams this is far below the true memory latency
	// (the §II critique).
	MeanLoadLatencyNs float64

	// True per-core mean MSHR occupancies (averaged across cores): the
	// simulator's ground truth that the Little's-Law estimate must track.
	TrueL1Occ float64
	TrueL2Occ float64
	L1PeakOcc int
	L2PeakOcc int

	// Stall fractions: share of the window × threads during which demand
	// requests sat waiting for a full MSHR file.
	L1FullStallFrac float64
	L2FullStallFrac float64

	// PrefetchedReadFraction is the share of memory reads initiated by
	// prefetchers rather than demand misses (recipe input).
	PrefetchedReadFraction float64

	HWPrefetchIssued  uint64
	HWPrefetchDropped uint64
	SWPrefetches      uint64
	SWPrefetchDropped uint64

	DemandLoads  uint64
	DemandStores uint64
	L1MissRatio  float64
	L2MissRatio  float64

	// DRAM row-buffer behaviour (diagnostics).
	RowHitFraction float64
}

// RunContext executes the configured node simulation to completion and
// returns steady-state measurements, with cooperative cancellation: the
// event loop checks ctx every few thousand dispatched events and aborts
// with ctx.Err() when it fires. A completed run's result is unaffected by
// the checks.
//
// A run shares no mutable state with other runs beyond the memsys
// hierarchy pool, whose hierarchies are fully reset on acquisition: the
// scheduler, node and per-thread generators (seeded RNGs included) are
// constructed per call, so concurrent runs are race-clean and each
// produces the same bits it would alone.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	// cancelled polls ctx cheaply from the event-loop conditions: an
	// atomic-free modulo counter keeps the per-event overhead negligible.
	const cancelCheckEvery = 8192
	cancelSteps := 0
	cancelled := func() bool {
		cancelSteps++
		return cancelSteps%cancelCheckEvery == 0 && ctx.Err() != nil
	}
	sched := &events.Scheduler{}
	node := memsys.NewNode(sched, cfg.Plat)

	gapScale := cfg.GapScale
	// SMT pacing: n co-resident threads each run at
	// max(1, share × n^(2/3)) of their solo compute pace (see
	// platform.Platform.SMTComputeShare).
	if n := cfg.ThreadsPerCore; n > 1 {
		share := cfg.Plat.SMTComputeShare
		if cfg.SMTShare > 0 {
			share = cfg.SMTShare
		}
		exp := cfg.SMTExponent
		if exp == 0 {
			exp = 2.0 / 3.0
		}
		if f := share * math.Pow(float64(n), exp); f > 1 {
			gapScale *= f
		}
	}

	// Hierarchies come from the shared pool unless a configuration hook may
	// leave state behind that Reset does not restore.
	usePool := cfg.ConfigureHierarchy == nil
	cores := make([]*cpu.Core, cfg.Cores)
	genBuf := make([]cpu.Generator, cfg.Cores*cfg.ThreadsPerCore)
	totalThreads := 0
	for ci := range cores {
		gens := genBuf[ci*cfg.ThreadsPerCore : (ci+1)*cfg.ThreadsPerCore : (ci+1)*cfg.ThreadsPerCore]
		for ti := range gens {
			gens[ti] = cfg.NewGen(ci, ti)
		}
		var hier *memsys.Hierarchy
		if usePool {
			hier = memsys.AcquireHierarchy(node)
		} else {
			hier = memsys.NewHierarchy(node)
			cfg.ConfigureHierarchy(hier)
		}
		cores[ci] = cpu.NewCoreWith(node, hier, gens, cfg.Window, gapScale)
		totalThreads += len(cores[ci].Threads)
	}

	finished := 0
	for _, c := range cores {
		for _, t := range c.Threads {
			t.OnFinish = func() { finished++ }
		}
	}

	for _, c := range cores {
		c.Start()
	}

	// Warmup: run until the node has retired WarmupFrac of the issued work,
	// approximated by per-thread retired operations. Total per-thread work
	// is unknown a priori, so warm up on wall-clock proxy: run until every
	// thread has retired a minimum batch, checking cheaply.
	const checkEvery = 4096
	steps := 0
	warmTarget := func() bool {
		// Warm when the slowest thread has retired ≥ warmupFrac/(1-warmupFrac)
		// of the work the fastest thread still owes — approximated by a
		// simple minimum retired threshold that grows with the window.
		min := ^uint64(0)
		for _, c := range cores {
			for _, t := range c.Threads {
				if t.Stats.Retired < min {
					min = t.Stats.Retired
				}
			}
		}
		return min >= 64 // every thread past its cold-start transient
	}
	if cfg.WarmupFrac > 0 {
		sched.RunWhile(func() bool {
			if cancelled() {
				return false
			}
			steps++
			if steps%checkEvery != 0 {
				return true
			}
			return finished == 0 && !warmTarget()
		})
	}

	// Open the measurement window.
	node.ResetStats()
	workBase := 0.0
	for _, c := range cores {
		c.Hier.ResetStats()
		workBase += c.Work()
	}
	t1 := sched.Now()

	// Measure until the first thread drains (steady state throughout).
	sched.RunWhile(func() bool { return !cancelled() && finished == 0 })
	t2 := sched.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: run cancelled: %w", err)
	}
	if finished == 0 || t2 <= t1 {
		// Workload too small for the warmup protocol: fall back to a
		// whole-run measurement.
		node.ResetStats()
		for _, c := range cores {
			c.Hier.ResetStats()
		}
		workBase = 0
		t1 = 0
		sched.RunWhile(func() bool { return !cancelled() })
		t2 = sched.Now()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run cancelled: %w", err)
		}
		if t2 == 0 {
			return nil, fmt.Errorf("sim: empty run (no simulated time elapsed)")
		}
	} else {
		// Drain the remaining events so per-thread stats are final, but the
		// measurement below uses the [t1, t2] snapshot values collected now.
	}

	window := t2 - t1
	seconds := window.Seconds()

	res := &Result{
		Platform:       cfg.Plat.Name,
		Cores:          cfg.Cores,
		ThreadsPerCore: cfg.ThreadsPerCore,
		WindowPs:       window,
	}

	lineBytes := float64(cfg.Plat.LineBytes)
	d := node.DRAM.Stats
	res.ReadGBs = float64(d.Reads) * lineBytes / seconds / 1e9
	res.WriteGBs = float64(d.Writes) * lineBytes / seconds / 1e9
	res.TotalGBs = res.ReadGBs + res.WriteGBs
	res.MeanDRAMLatencyNs = d.MeanReadLatencyNs()
	if rh := d.RowHits + d.RowMisses; rh > 0 {
		res.RowHitFraction = float64(d.RowHits) / float64(rh)
	}
	if node.SlowDRAM != nil {
		res.SlowGBs = float64(node.SlowDRAM.Stats.BytesMoved(cfg.Plat.LineBytes)) / seconds / 1e9
		res.MCHitFraction = node.MCHitFraction()
	}

	var work float64
	var l1occ, l2occ float64
	var l1stall, l2stall uint64
	var loadLatPs, loadN uint64
	var demandMiss, hwMiss, swMiss uint64
	var l1hits, l1misses, l2hits, l2misses uint64
	for _, c := range cores {
		work += c.Work()
		for _, th := range c.Threads {
			loadLatPs += th.Stats.LoadLatencyPs
			loadN += th.Stats.Retired
		}
		h := c.Hier
		l1occ += h.L1M.Occ.Mean(t2)
		l2occ += h.L2M.Occ.Mean(t2)
		if pk := h.L1M.Occ.Peak(); pk > res.L1PeakOcc {
			res.L1PeakOcc = pk
		}
		if pk := h.L2M.Occ.Peak(); pk > res.L2PeakOcc {
			res.L2PeakOcc = pk
		}
		l1stall += h.Stats.L1FullStallPs
		l2stall += h.Stats.L2FullStallPs
		demandMiss += h.Stats.L2MissDemand
		hwMiss += h.Stats.L2MissHWPrefetch
		swMiss += h.Stats.L2MissSWPrefetch
		res.HWPrefetchIssued += h.PF.Stats.Issued
		res.HWPrefetchDropped += h.Stats.HWPrefetchDropped
		res.SWPrefetches += h.Stats.SWPrefetches
		res.SWPrefetchDropped += h.Stats.SWPrefetchDropped
		res.DemandLoads += h.Stats.DemandLoads
		res.DemandStores += h.Stats.DemandStores
		l1hits += h.L1.Stats.Hits
		l1misses += h.L1.Stats.Misses
		l2hits += h.L2.Stats.Hits
		l2misses += h.L2.Stats.Misses
	}
	res.Work = work - workBase
	res.Throughput = res.Work / seconds
	if loadN > 0 {
		res.MeanLoadLatencyNs = float64(loadLatPs) / float64(loadN) / 1e3
	}
	nc := float64(len(cores))
	res.TrueL1Occ = l1occ / nc
	res.TrueL2Occ = l2occ / nc
	threadPs := float64(window) * float64(totalThreads)
	res.L1FullStallFrac = float64(l1stall) / threadPs
	res.L2FullStallFrac = float64(l2stall) / threadPs
	if total := demandMiss + hwMiss + swMiss; total > 0 {
		res.PrefetchedReadFraction = float64(hwMiss+swMiss) / float64(total)
	}
	if t := l1hits + l1misses; t > 0 {
		res.L1MissRatio = float64(l1misses) / float64(t)
	}
	if t := l2hits + l2misses; t > 0 {
		res.L2MissRatio = float64(l2misses) / float64(t)
	}
	if usePool {
		// All hierarchy state has been read into res; the scheduler that
		// still references these hierarchies is dropped with this frame.
		for _, c := range cores {
			memsys.ReleaseHierarchy(c.Hier)
		}
	}
	return res, nil
}
