package sim

import (
	"math"
	"math/rand"
	"testing"

	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
)

// randGen emits n random-line loads over a footprint (an ISx-like pattern).
type randGen struct {
	rng  *rand.Rand
	n    int
	mask uint64
	gap  float64
}

func (g *randGen) Next() (cpu.Op, bool) {
	if g.n <= 0 {
		return cpu.Op{}, false
	}
	g.n--
	return cpu.Op{Addr: (g.rng.Uint64() & g.mask) &^ 63, Kind: memsys.Load, GapCycles: g.gap, Work: 1}, true
}

// streamGen emits sequential loads (an HPCG-like pattern).
type streamGen struct {
	addr, step uint64
	n          int
	gap        float64
}

func (g *streamGen) Next() (cpu.Op, bool) {
	if g.n <= 0 {
		return cpu.Op{}, false
	}
	g.n--
	a := g.addr
	g.addr += g.step
	return cpu.Op{Addr: a, Kind: memsys.Load, GapCycles: g.gap, Work: 1}, true
}

func randFactory(seed int64, n int, gap float64) func(core, thread int) cpu.Generator {
	return func(core, thread int) cpu.Generator {
		return &randGen{
			rng:  rand.New(rand.NewSource(seed + int64(core*131+thread))),
			n:    n,
			mask: 1<<28 - 1,
			gap:  gap,
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	p := platform.SKL()
	if _, err := Run(Config{Plat: p}); err == nil {
		t.Fatal("missing generator factory accepted")
	}
	if _, err := Run(Config{Plat: p, NewGen: randFactory(1, 10, 0), ThreadsPerCore: 4}); err == nil {
		t.Fatal("SMT above platform limit accepted")
	}
	if _, err := Run(Config{Plat: p, NewGen: randFactory(1, 10, 0), WarmupFrac: 0.95}); err == nil {
		t.Fatal("warmup fraction ≥ 0.9 accepted")
	}
}

func TestRandomAccessSaturatesL1MSHRs(t *testing.T) {
	p := platform.SKL()
	res, err := Run(Config{
		Plat:   p,
		Cores:  8, // scaled node: keeps the test fast
		NewGen: randFactory(7, 4000, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Random loads with a deep window must pin the L1 MSHR file near its
	// capacity...
	if res.TrueL1Occ < 0.75*float64(p.L1.MSHRs) {
		t.Errorf("L1 occupancy = %.2f, want near capacity %d", res.TrueL1Occ, p.L1.MSHRs)
	}
	if res.L1PeakOcc > p.L1.MSHRs {
		t.Errorf("L1 peak %d exceeds capacity %d", res.L1PeakOcc, p.L1.MSHRs)
	}
	// ...and essentially no memory reads come from the prefetcher.
	if res.PrefetchedReadFraction > 0.1 {
		t.Errorf("prefetched fraction = %.2f on random traffic", res.PrefetchedReadFraction)
	}
	if res.L1FullStallFrac == 0 {
		t.Error("no L1 MSHR-full stalls under random oversubscription")
	}
	if res.ReadGBs <= 0 || res.Throughput <= 0 {
		t.Errorf("degenerate measurements: %+v", res)
	}
}

// The paper's central consistency claim: the Little's-Law estimate computed
// from bandwidth and true mean latency matches the simulator's true MSHR
// occupancy.
func TestLittlesLawTracksTrueOccupancy(t *testing.T) {
	p := platform.SKL()
	res, err := Run(Config{
		Plat:   p,
		Cores:  8,
		NewGen: randFactory(21, 4000, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// n = BW × lat / cls per core. Use read bandwidth (demand misses all
	// read) and the DRAM mean latency. The L1 MSHR residency additionally
	// includes the L1→L2→L3 segments, so allow a modest margin.
	est := res.ReadGBs * 1e9 * res.MeanDRAMLatencyNs * 1e-9 / float64(p.LineBytes) / float64(res.Cores)
	if math.Abs(est-res.TrueL1Occ)/res.TrueL1Occ > 0.35 {
		t.Errorf("Little estimate %.2f vs true occupancy %.2f diverge", est, res.TrueL1Occ)
	}
}

func TestStreamingTriggersPrefetcher(t *testing.T) {
	p := platform.SKL()
	res, err := Run(Config{
		Plat:  p,
		Cores: 8,
		NewGen: func(core, thread int) cpu.Generator {
			return &streamGen{addr: uint64(core) << 32, step: 64, n: 6000, gap: 2}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefetchedReadFraction < 0.4 {
		t.Errorf("prefetched fraction = %.2f on pure streams, want most reads prefetched",
			res.PrefetchedReadFraction)
	}
	if res.HWPrefetchIssued == 0 {
		t.Error("hardware prefetcher never fired")
	}
	// Streaming rows should show DRAM row-buffer locality well above the
	// random-access case.
	if res.RowHitFraction < 0.2 {
		t.Errorf("row hit fraction = %.2f, want some locality", res.RowHitFraction)
	}
}

func TestSMTIncreasesOccupancy(t *testing.T) {
	p := platform.KNL()
	run := func(threads int) *Result {
		res, err := Run(Config{
			Plat:           p,
			Cores:          8,
			ThreadsPerCore: threads,
			Window:         6,
			NewGen:         randFactory(3, 3000, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	r2 := run(2)
	if r2.TrueL1Occ <= r1.TrueL1Occ {
		t.Errorf("2-way SMT occupancy %.2f not above 1-way %.2f", r2.TrueL1Occ, r1.TrueL1Occ)
	}
	if r2.Throughput <= r1.Throughput {
		t.Errorf("2-way SMT throughput %.3g not above 1-way %.3g", r2.Throughput, r1.Throughput)
	}
}

func TestDefaultsFillIn(t *testing.T) {
	p := platform.A64FX()
	res, err := Run(Config{
		Plat:   p,
		Cores:  4,
		NewGen: randFactory(5, 1500, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Platform != "A64FX" || res.Cores != 4 || res.ThreadsPerCore != 1 {
		t.Fatalf("unexpected echo: %+v", res)
	}
	if res.WindowPs <= 0 {
		t.Fatal("empty measurement window")
	}
}

func TestTinyRunFallsBackToWholeWindow(t *testing.T) {
	p := platform.SKL()
	res, err := Run(Config{
		Plat:   p,
		Cores:  2,
		NewGen: randFactory(9, 20, 1), // far below the warmup threshold
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Work <= 0 {
		t.Fatalf("tiny run measured no work: %+v", res)
	}
}

func TestSMTShareOverride(t *testing.T) {
	p := platform.KNL()
	// A compute-paced workload: throughput scales with the SMT gap factor.
	mk := func(share, exponent float64) float64 {
		res, err := Run(Config{
			Plat:           p,
			Cores:          4,
			ThreadsPerCore: 2,
			SMTShare:       share,
			SMTExponent:    exponent,
			NewGen: func(coreID, threadID int) cpu.Generator {
				n := 1200
				return cpu.GeneratorFunc(func() (cpu.Op, bool) {
					if n <= 0 {
						return cpu.Op{}, false
					}
					n--
					return cpu.Op{Addr: uint64(coreID+1)<<34 + uint64(n%4)*64,
						Kind: memsys.Load, GapCycles: 200, Work: 1}, true
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	free := mk(0.5, 0)   // factor 0.5×2^(2/3) < 1 → threads free
	serial := mk(1.0, 1) // factor 2 → strict sharing
	if free < 1.8*serial {
		t.Fatalf("SMT share override ineffective: free %.3g vs serial %.3g", free, serial)
	}
}

func TestConfigureHierarchyHook(t *testing.T) {
	p := platform.SKL()
	hooked := 0
	_, err := Run(Config{
		Plat:   p,
		Cores:  3,
		NewGen: randFactory(11, 300, 1),
		ConfigureHierarchy: func(h *memsys.Hierarchy) {
			hooked++
			h.NoCoalesce = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooked != 3 {
		t.Fatalf("hook ran %d times, want once per core", hooked)
	}
}

func TestMeanLoadLatencyReported(t *testing.T) {
	p := platform.SKL()
	res, err := Run(Config{Plat: p, Cores: 4, NewGen: randFactory(13, 1500, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLoadLatencyNs < 50 {
		t.Fatalf("mean load latency = %.1f ns, implausibly low for random misses", res.MeanLoadLatencyNs)
	}
	// Load-to-use is at least the DRAM round trip for uncached traffic.
	if res.MeanLoadLatencyNs < 0.8*res.MeanDRAMLatencyNs {
		t.Fatalf("load latency %.1f below DRAM latency %.1f", res.MeanLoadLatencyNs, res.MeanDRAMLatencyNs)
	}
}
