package sim_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"littleslaw/internal/platform"
	"littleslaw/internal/runner"
	"littleslaw/internal/trace"
)

// baselineAllocs reads BENCH_baseline.json at the repo root and returns the
// largest recorded allocs/op per bench name — the budget the guard holds
// the traced path to.
func baselineAllocs(t *testing.T) map[string]int64 {
	t.Helper()
	data, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Skipf("no BENCH_baseline.json: %v", err)
	}
	var rows []struct {
		Bench  string `json:"bench"`
		Allocs int64  `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("BENCH_baseline.json: %v", err)
	}
	max := map[string]int64{}
	for _, r := range rows {
		if r.Allocs > max[r.Bench] {
			max[r.Bench] = r.Allocs
		}
	}
	return max
}

// TestRunAllocsWithinBaselineTraced is the allocation guard on the traced
// hot path: running the BenchmarkRun workloads through the runner spine
// with an armed trace context must stay within 5% of the untraced
// BENCH_baseline.json allocs/op. Tracing is a handful of spans per run —
// if this trips, a span crept into a per-event or per-op loop.
func TestRunAllocsWithinBaselineTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful under -short (race matrix)")
	}
	baseline := baselineAllocs(t)
	run := runner.New(0)
	for _, bc := range []struct {
		name string
		plat *platform.Platform
		ops  int
	}{
		{"SKL_mix", platform.SKL(), 6000},
		{"KNL_mix", platform.KNL(), 4000},
	} {
		want, ok := baseline[bc.name]
		if !ok {
			t.Fatalf("bench %q missing from BENCH_baseline.json", bc.name)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A fresh trace per iteration, exactly as a request carries
				// one; benchConfig has no fingerprint, so the runner's
				// bypass path executes the kernel every time.
				tr := trace.New(fmt.Sprintf("bench-%d", i), "bench")
				ctx := trace.NewContext(b.Context(), tr)
				out, err := run.Run(ctx, benchConfig(bc.plat, bc.ops))
				if err != nil {
					b.Fatal(err)
				}
				if out.Throughput <= 0 {
					b.Fatal("no work measured")
				}
				if tr.Attributed() <= 0 {
					b.Fatal("trace recorded nothing; the guard is not exercising the traced path")
				}
			}
		})
		got := res.AllocsPerOp()
		limit := want + want/20 // +5%
		t.Logf("%s: %d allocs/op traced, baseline %d (limit %d)", bc.name, got, want, limit)
		if got > limit {
			t.Errorf("%s: traced path allocates %d/op, above baseline %d +5%% (%d) — tracing overhead regressed",
				bc.name, got, want, limit)
		}
	}
}
