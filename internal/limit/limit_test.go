package limit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"littleslaw/internal/queueing"
)

func TestAcquireRelease(t *testing.T) {
	l := New(Config{Ceiling: 2})
	rel, waited, err := l.Acquire(context.Background(), "r")
	if err != nil || waited {
		t.Fatalf("Acquire = (waited=%v, %v), want immediate admit", waited, err)
	}
	if snap := l.Snapshot(); snap.InFlight != 1 || snap.Admitted != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	rel()
	rel() // idempotent
	if snap := l.Snapshot(); snap.InFlight != 0 || snap.Admitted != 1 {
		t.Fatalf("snapshot after release = %+v", snap)
	}
}

func TestShedWithoutQueue(t *testing.T) {
	l := New(Config{Ceiling: 1, MaxQueue: -1})
	rel, _, err := l.Acquire(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, _, err = l.Acquire(context.Background(), "r")
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.RetryAfter < time.Second {
		t.Fatalf("shed = %+v", shed)
	}
	if snap := l.Snapshot(); snap.Shed != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestQueueGrantsFIFO(t *testing.T) {
	l := New(Config{Ceiling: 1, MaxQueue: 4, QueueTimeout: 5 * time.Second})
	rel, _, err := l.Acquire(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 3
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		// Enqueue strictly one at a time so FIFO order is deterministic.
		waitUntil(t, func() bool { return l.Snapshot().QueueDepth == i })
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, waited, err := l.Acquire(context.Background(), "r")
			if err != nil || !waited {
				t.Errorf("waiter %d: (waited=%v, %v)", i, waited, err)
				return
			}
			order <- i
			rel()
		}(i)
	}
	waitUntil(t, func() bool { return l.Snapshot().QueueDepth == waiters })
	rel() // the chain of releases drains the whole queue
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order: got waiter %d, want %d", got, want)
		}
		want++
	}
	if snap := l.Snapshot(); snap.Queued != waiters || snap.Admitted != waiters+1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestQueueFullSheds(t *testing.T) {
	l := New(Config{Ceiling: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second})
	rel, _, err := l.Acquire(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	go l.Acquire(context.Background(), "r") // fills the queue
	waitUntil(t, func() bool { return l.Snapshot().QueueDepth == 1 })
	_, _, err = l.Acquire(context.Background(), "r")
	if !errors.Is(err, ErrShed) {
		t.Fatalf("overflow err = %v, want ErrShed", err)
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	l := New(Config{Ceiling: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	rel, _, err := l.Acquire(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, waited, err := l.Acquire(context.Background(), "r")
	if !errors.Is(err, ErrShed) || !waited {
		t.Fatalf("queued Acquire = (waited=%v, %v), want timeout shed", waited, err)
	}
	snap := l.Snapshot()
	if snap.Shed != 1 || snap.QueueDepth != 0 {
		t.Fatalf("snapshot = %+v (timed-out waiter must leave the queue)", snap)
	}
}

func TestQueueContextCancel(t *testing.T) {
	l := New(Config{Ceiling: 1, MaxQueue: 4, QueueTimeout: 5 * time.Second})
	rel, _, err := l.Acquire(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := l.Acquire(ctx, "r")
		done <- err
	}()
	waitUntil(t, func() bool { return l.Snapshot().QueueDepth == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := l.Snapshot()
	if snap.QueueDepth != 0 || snap.Shed != 0 {
		t.Fatalf("snapshot = %+v (cancel is not a shed)", snap)
	}
}

func TestCancelAfterGrantReturnsSlot(t *testing.T) {
	// A waiter whose context dies exactly as the grant fires must hand the
	// slot back so the next waiter is not starved.
	l := New(Config{Ceiling: 1, MaxQueue: 4, QueueTimeout: 5 * time.Second})
	rel, _, err := l.Acquire(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// When the grant beats the cancellation, Acquire succeeds and the
		// slot is ours to release — mirror the middleware's deferred call.
		rel, _, err := l.Acquire(ctx, "r")
		if rel != nil {
			rel()
		}
		done <- err
	}()
	waitUntil(t, func() bool { return l.Snapshot().QueueDepth == 1 })
	// Race the grant against the cancellation; whichever way it lands, the
	// slot must end up free.
	go cancel()
	rel()
	<-done
	waitUntil(t, func() bool {
		snap := l.Snapshot()
		return snap.InFlight == 0 && snap.QueueDepth == 0
	})
	rel2, _, err := l.Acquire(context.Background(), "r")
	if err != nil {
		t.Fatalf("slot leaked: %v", err)
	}
	rel2()
}

// TestNAvgMatchesOccupancyAt is the golden test tying the limiter to the
// paper pipeline: drive the limiter with a synthetic steady trace under a
// fake clock (λ = 200/s, W = 25 ms) and check its live n_avg against the
// same quantity computed by queueing.Curve.OccupancyAt from a flat
// bandwidth→latency profile. Little's Law on both sides: λ·W = 5.
func TestNAvgMatchesOccupancyAt(t *testing.T) {
	const (
		lambda    = 200.0                 // arrivals per second
		service   = 25 * time.Millisecond // constant service time W
		lineBytes = 64
		duration  = 5 * time.Second
	)
	clock := time.Unix(0, 0)
	l := New(Config{
		Ceiling:      64,
		RateHalfLife: 500 * time.Millisecond,
		Now:          func() time.Time { return clock },
	})

	// Event-driven replay: arrivals every 1/λ, each releasing after W.
	type event struct {
		at      time.Time
		release func()
	}
	interval := time.Duration(float64(time.Second) / lambda)
	var pending []event
	for at := time.Unix(0, 0); at.Sub(time.Unix(0, 0)) < duration; at = at.Add(interval) {
		// Retire completions due before this arrival, in time order.
		sort.Slice(pending, func(i, j int) bool { return pending[i].at.Before(pending[j].at) })
		for len(pending) > 0 && !pending[0].at.After(at) {
			clock = pending[0].at
			pending[0].release()
			pending = pending[1:]
		}
		clock = at
		rel, _, err := l.Acquire(context.Background(), "analyze")
		if err != nil {
			t.Fatalf("admission failed mid-trace at %v: %v", at, err)
		}
		pending = append(pending, event{at: at.Add(service), release: rel})
	}
	// Read n_avg at the last arrival instant — the steady-state signal an
	// admission decision would see. (Draining the tail first would let the
	// rate estimator decay through the final W with no arrivals, which is
	// the estimator being honest about an ended trace, not an error.)
	got := l.Snapshot().NAvg
	for _, ev := range pending {
		clock = ev.at
		ev.release()
	}

	// The same occupancy via the paper pipeline: a flat profile (latency
	// independent of load) queried at the bandwidth this arrival process
	// implies, bw = λ × lineBytes.
	curve := queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 0, LatencyNs: service.Seconds() * 1e9},
		{BandwidthGBs: 100, LatencyNs: service.Seconds() * 1e9},
	})
	bwGBs := lambda * lineBytes / 1e9
	want := curve.OccupancyAt(bwGBs, lineBytes)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("limiter n_avg = %.4f, OccupancyAt = %.4f (diverges > 2%%)", got, want)
	}
	// And both must equal λ·W exactly enough to mean something.
	if lw := lambda * service.Seconds(); math.Abs(want-lw) > 1e-9 {
		t.Fatalf("OccupancyAt = %v, want λ·W = %v", want, lw)
	}
}

// TestNAvgHoldsAdmissionClosedAfterBurst: the Little's-Law term has memory
// — after a burst of slow admissions, occupancy stays above a tiny ceiling
// even once everything has completed, until the rate estimate decays.
func TestNAvgDecaysWithHalfLife(t *testing.T) {
	clock := time.Unix(0, 0)
	l := New(Config{
		Ceiling:      4,
		RateHalfLife: 1 * time.Second,
		Now:          func() time.Time { return clock },
	})
	// 40 one-by-one admissions, each taking 100ms: λ≈steady, W=0.1s.
	for i := 0; i < 40; i++ {
		rel, _, err := l.Acquire(context.Background(), "r")
		if err != nil {
			t.Fatalf("admission %d: %v", i, err)
		}
		clock = clock.Add(100 * time.Millisecond)
		rel()
	}
	n0 := l.Snapshot().NAvg
	if n0 <= 0 {
		t.Fatalf("n_avg = %v after sustained load, want > 0", n0)
	}
	clock = clock.Add(2 * time.Second) // two half-lives
	n1 := l.Snapshot().NAvg
	if n1 >= n0/3 || n1 <= 0 {
		t.Fatalf("n_avg decayed %v → %v; want roughly a quarter after two half-lives", n0, n1)
	}
}

// seedRoute plants a synthetic rate/latency estimate so tests can put
// n_avg wherever they need it without replaying a whole trace.
func seedRoute(l *Limiter, name string, count, lat float64) {
	l.mu.Lock()
	st := l.route(name)
	st.count, st.lat, st.seen = count, lat, true
	l.mu.Unlock()
}

// TestIdleQueueDrainsWithoutCompletions is the regression for the stalled-
// queue bug: an arrival that enqueues while nothing is in flight (the
// n_avg memory term alone holds the ceiling) has no completion coming to
// grant it. The decay-horizon timer must re-run the grant logic, so the
// waiter is admitted once the estimate decays — not shed at QueueTimeout.
func TestIdleQueueDrainsWithoutCompletions(t *testing.T) {
	l := New(Config{
		Ceiling:      1,
		MaxQueue:     4,
		QueueTimeout: 10 * time.Second,
		RateHalfLife: 40 * time.Millisecond,
	})
	// n_avg = count/τ × lat ≈ 69 with nothing in flight: the memory term
	// alone is far above the ceiling, decaying below it after ~250ms.
	seedRoute(l, "r", 20, 0.2)
	start := time.Now()
	rel, waited, err := l.Acquire(context.Background(), "r")
	if err != nil || !waited {
		t.Fatalf("Acquire = (waited=%v, %v), want a queued grant", waited, err)
	}
	rel()
	if elapsed := time.Since(start); elapsed >= 10*time.Second {
		t.Fatalf("granted only at the queue deadline (%s) — timer never pumped", elapsed)
	}
	if snap := l.Snapshot(); snap.Shed != 0 || snap.QueueDepth != 0 {
		t.Fatalf("snapshot = %+v, want the waiter granted, not shed", snap)
	}
}

// TestArrivalPumpsStalledQueue: with the re-evaluation timer still far
// out, a fresh arrival must itself grant a queue that the decayed
// occupancy now permits — and FIFO order holds: the queued waiter is
// admitted before the arrival that pumped it.
func TestArrivalPumpsStalledQueue(t *testing.T) {
	clock := time.Unix(0, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	set := func(t time.Time) { mu.Lock(); clock = t; mu.Unlock() }
	l := New(Config{
		Ceiling:      2,
		MaxQueue:     4,
		QueueTimeout: 30 * time.Second,
		RateHalfLife: 10 * time.Second, // timer horizon ≈ 10s: irrelevant here
		Now:          now,
	})
	// n_avg = 4 × ceiling/2 = 4 with nothing in flight.
	seedRoute(l, "r", 4*l.tau, 1.0)
	granted := make(chan error, 1)
	go func() {
		rel, waited, err := l.Acquire(context.Background(), "r")
		if err == nil && !waited {
			err = errors.New("stalled waiter admitted without queueing")
		}
		if rel != nil {
			rel()
		}
		granted <- err
	}()
	waitUntil(t, func() bool { return l.Snapshot().QueueDepth == 1 })
	// Two half-lives later n_avg ≈ 1 < ceiling; only an arrival looks.
	set(time.Unix(20, 0))
	rel, waited, err := l.Acquire(context.Background(), "r")
	if err != nil || waited {
		t.Fatalf("post-decay arrival = (waited=%v, %v), want immediate admit", waited, err)
	}
	if err := <-granted; err != nil {
		t.Fatalf("stalled waiter: %v", err)
	}
	rel()
	if snap := l.Snapshot(); snap.QueueDepth != 0 || snap.Shed != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestRouteMapCapped: past MaxRoutes distinct names, new routes share one
// overflow bucket instead of growing the map.
func TestRouteMapCapped(t *testing.T) {
	l := New(Config{Ceiling: 100, MaxRoutes: 4})
	for i := 0; i < 100; i++ {
		rel, _, err := l.Acquire(context.Background(), fmt.Sprintf("/u/%d", i))
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rel()
	}
	l.mu.Lock()
	n, overflow := len(l.routes), l.routes[overflowRoute]
	l.mu.Unlock()
	if n > 5 { // MaxRoutes distinct entries plus the overflow bucket
		t.Fatalf("routes map grew to %d entries with MaxRoutes=4", n)
	}
	if overflow == nil || overflow.count < 90 {
		t.Fatalf("overflow bucket = %+v, want ≈96 folded admissions", overflow)
	}
}

// TestIdleRoutesEvicted: a route whose decayed rate has fallen to noise is
// dropped from the stats map instead of lingering forever.
func TestIdleRoutesEvicted(t *testing.T) {
	clock := time.Unix(0, 0)
	l := New(Config{Ceiling: 4, RateHalfLife: time.Second, Now: func() time.Time { return clock }})
	for _, route := range []string{"a", "b"} {
		rel, _, err := l.Acquire(context.Background(), route)
		if err != nil {
			t.Fatal(err)
		}
		clock = clock.Add(10 * time.Millisecond)
		rel()
	}
	clock = clock.Add(60 * time.Second) // 60 half-lives: counts ≈ 1e-18
	if snap := l.Snapshot(); snap.NAvg != 0 {
		t.Fatalf("NAvg = %v after total decay, want 0", snap.NAvg)
	}
	l.mu.Lock()
	n := len(l.routes)
	l.mu.Unlock()
	if n != 0 {
		t.Fatalf("routes map holds %d idle entries, want eviction", n)
	}
}

// waitUntil polls for a condition with a deadline — the limiter's queue
// state changes on goroutine scheduling boundaries the test cannot hook.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
