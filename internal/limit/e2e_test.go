package limit_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"littleslaw/internal/limit"
	"littleslaw/internal/loadgen"
)

// TestShedThenRecover is the end-to-end acceptance run, in miniature: a
// server whose handler takes ~20ms behind a ceiling of 4 (capacity ≈
// 200 req/s) is driven open-loop at roughly 4× capacity. The limiter must
// shed the excess with 429 + Retry-After while keeping admitted latency
// bounded near the queue budget, and once the overload stops, a polite
// closed-loop client must see no sheds at all.
func TestShedThenRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("drives multi-second load phases")
	}
	const service = 20 * time.Millisecond
	l := limit.New(limit.Config{
		Ceiling:      4,
		MaxQueue:     2,
		QueueTimeout: 15 * time.Millisecond,
		RateHalfLife: 250 * time.Millisecond,
	})
	handler := limit.Handler(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(service)
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Phase 1 — unloaded baseline: two closed-loop clients, well under the
	// ceiling, everything admitted.
	base, err := loadgen.Run(context.Background(), loadgen.Options{
		URL: ts.URL, Mode: "closed", Concurrency: 2, Duration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Shed != 0 || base.Failed != 0 || base.OK == 0 {
		t.Fatalf("baseline: %s", base)
	}
	p99base := base.Quantile(0.99)

	// Phase 2 — open-loop overload at ~4× capacity. The open loop keeps
	// offering regardless of responses; that is the discipline that forces
	// the shed path.
	over, err := loadgen.Run(context.Background(), loadgen.Options{
		URL: ts.URL, Mode: "open", Rate: 800, Duration: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if over.Shed == 0 {
		t.Fatalf("overload produced no sheds: %s", over)
	}
	if over.RetryAfterSeen != over.Shed {
		t.Fatalf("sheds %d but Retry-After hints %d — every 429 must carry one", over.Shed, over.RetryAfterSeen)
	}
	if over.OK == 0 {
		t.Fatalf("overload admitted nothing: %s", over)
	}
	// Admitted requests stay fast: worst case is the service time plus the
	// queue budget; the acceptance bar is 2× the unloaded p99 (with a small
	// allowance for scheduler noise on a loaded test machine).
	p99over := over.Quantile(0.99)
	if limit := 2*p99base + 20*time.Millisecond; p99over > limit {
		t.Fatalf("admitted p99 under overload = %s, want <= %s (baseline p99 %s)", p99over, limit, p99base)
	}

	// Phase 3 — recovery: the same polite client as the baseline. The rate
	// estimator decays within a few half-lives, so the post-overload server
	// admits everything again.
	rec, err := loadgen.Run(context.Background(), loadgen.Options{
		URL: ts.URL, Mode: "closed", Concurrency: 2, Duration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Shed != 0 || rec.Failed != 0 || rec.OK == 0 {
		t.Fatalf("recovery still shedding: %s", rec)
	}

	snap := l.Snapshot()
	if snap.Shed == 0 || snap.Admitted == 0 || snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Fatalf("final snapshot = %+v", snap)
	}
}

// TestHandlerShedResponseShape: the standalone middleware's 429 carries
// the Retry-After header and a JSON error envelope.
func TestHandlerShedResponseShape(t *testing.T) {
	l := limit.New(limit.Config{Ceiling: 1, MaxQueue: -1})
	release, _, err := l.Acquire(context.Background(), "/hold")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	h := limit.Handler(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

// TestHandlerPanicReleasesSlot is the slot-leak regression test for the
// standalone middleware: before the panic guard, a panicking handler
// unwound past the release and its slot stayed booked forever — with a
// ceiling of 1, one panic wedged the limiter shut. Alternating guaranteed
// panics with clean requests proves the slot comes home every time, and
// that the panic surfaces as a 500 JSON envelope rather than a severed
// connection.
func TestHandlerPanicReleasesSlot(t *testing.T) {
	l := limit.New(limit.Config{Ceiling: 1, MaxQueue: -1})
	h := limit.Handler(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("kaboom")
		}
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	for i := 0; i < 8; i++ {
		resp, err := http.Get(ts.URL + "/boom")
		if err != nil {
			t.Fatalf("round %d: panic severed the connection: %v", i, err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("round %d: status = %d, want 500", i, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("round %d: Content-Type = %q", i, ct)
		}
		resp.Body.Close()

		// With ceiling 1 and no queue, a leaked slot makes this a 429.
		resp, err = http.Get(ts.URL + "/ok")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: request after panic = %d, want 200 (slot leaked?)", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if snap := l.Snapshot(); snap.InFlight != 0 {
		t.Fatalf("in-flight = %d after all requests, want 0", snap.InFlight)
	}
}

// TestHandlerPanicAfterWriteDoesNotDoubleRespond: a handler that panics
// after it already started its response must not get a second 500 header
// stacked on top — but its slot still comes back.
func TestHandlerPanicAfterWriteDoesNotDoubleRespond(t *testing.T) {
	l := limit.New(limit.Config{Ceiling: 1, MaxQueue: -1})
	h := limit.Handler(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want the handler's own 202 preserved", rec.Code)
	}
	if snap := l.Snapshot(); snap.InFlight != 0 {
		t.Fatalf("in-flight = %d, want 0", snap.InFlight)
	}
}
