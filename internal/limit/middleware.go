package limit

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// RetryAfterSeconds renders a shed hint for the Retry-After header: whole
// seconds, at least 1.
func RetryAfterSeconds(d time.Duration) string {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

// Handler wraps next with admission control keyed on the request path.
// Shed requests get 429 with a Retry-After header and a JSON error
// envelope; a context that expires while queued gets 503. This is the
// standalone form the end-to-end tests drive; the analysis service calls
// the Limiter directly from its own instrumentation wrapper for per-route
// metrics. Raw-path keying is safe against fabricated unique paths — the
// Limiter folds routes past Config.MaxRoutes into one overflow bucket and
// evicts entries whose rate has decayed to nothing — but servers that know
// their route patterns should prefer HandlerWithKey so per-route latency
// stats are not fragmented across client-chosen URLs.
func Handler(l *Limiter, next http.Handler) http.Handler {
	return HandlerWithKey(l, func(r *http.Request) string { return r.URL.Path }, next)
}

// HandlerWithKey is Handler with a caller-chosen route key — typically the
// matched route pattern or handler name rather than the raw path, the same
// normalization the analysis service uses for its per-handler metrics.
func HandlerWithKey(l *Limiter, key func(*http.Request) string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, _, err := l.Acquire(r.Context(), key(r))
		if err != nil {
			status := http.StatusServiceUnavailable
			if shed, ok := err.(*ShedError); ok {
				status = http.StatusTooManyRequests
				w.Header().Set("Retry-After", RetryAfterSeconds(shed.RetryAfter))
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Content-Type-Options", "nosniff")
			w.WriteHeader(status)
			fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
			return
		}
		// The release must survive a panicking handler — a leaked slot
		// under chaos would ratchet in-flight up until the limiter sheds
		// everything forever — and the panic must become a 500 rather than
		// killing the connection with no response. The recover runs before
		// the deferred release (LIFO), so the slot is returned either way.
		defer release()
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				if !tw.wrote {
					w.Header().Set("Content-Type", "application/json")
					w.Header().Set("X-Content-Type-Options", "nosniff")
					w.WriteHeader(http.StatusInternalServerError)
					fmt.Fprintf(w, "{\"error\":%q}\n", fmt.Sprintf("handler panicked: %v", v))
				}
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// trackingWriter records whether the handler started writing, so the panic
// guard knows if a 500 can still be sent.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *trackingWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *trackingWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *trackingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Sessions caps long-lived connections — streaming subscribers — where a
// latency-based limiter is meaningless (the "request" lasts as long as the
// client stays). It is the subscriber-count analogue of the Limiter's
// occupancy ceiling.
type Sessions struct {
	max    int64
	active atomic.Int64
	denied atomic.Uint64
}

// NewSessions caps concurrent sessions at max (max <= 0 means 64).
func NewSessions(max int) *Sessions {
	if max <= 0 {
		max = 64
	}
	return &Sessions{max: int64(max)}
}

// Acquire claims a session slot. It returns a release function and true,
// or nil and false when the cap is reached.
func (s *Sessions) Acquire() (release func(), ok bool) {
	if s.active.Add(1) > s.max {
		s.active.Add(-1)
		s.denied.Add(1)
		return nil, false
	}
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			s.active.Add(-1)
		}
	}, true
}

// Active returns the number of live sessions.
func (s *Sessions) Active() int { return int(s.active.Load()) }

// Max returns the session cap.
func (s *Sessions) Max() int { return int(s.max) }

// Denied returns how many acquisitions the cap rejected.
func (s *Sessions) Denied() uint64 { return s.denied.Load() }
