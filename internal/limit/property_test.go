package limit

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// The limiter's n_avg is Equation 1 made operational: Σ_routes λ_r × W_r
// with λ from an exponentially decayed admission counter and W from a
// per-route latency EWMA. These property tests pin its algebra on random
// workloads under a fake clock: the estimate must match the closed form,
// must not depend on how concurrent admissions interleave, and must scale
// the way Little's Law says it does. One completion per route keeps the
// EWMA a plain sample — the EWMA is deliberately order-*dependent* within
// a route, so cross-route interleaving is exactly the invariance the
// estimator owes us.

// fakeClock is a hand-cranked time source for deterministic limiter runs.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time        { return c.now }
func (c *fakeClock) advanceTo(t time.Time) { c.now = t }
func (c *fakeClock) add(d time.Duration)   { c.now = c.now.Add(d) }

// op is one timed limiter action: admit on a route, or release a prior
// admission.
type op struct {
	at      time.Time
	route   string
	release bool
}

// runWorkload replays timed ops against a fresh limiter and returns its
// final n_avg at `end`. The ceiling is set high enough that nothing queues,
// so the run exercises the estimator, not the gate.
func runWorkload(t *testing.T, ops []op, end time.Time) float64 {
	t.Helper()
	clk := &fakeClock{now: ops[0].at}
	l := New(Config{Ceiling: 1e9, RateHalfLife: 10 * time.Second, Now: clk.Now})
	releases := map[string]func(){}
	for _, o := range ops {
		if o.at.Before(clk.now) {
			t.Fatalf("ops out of order: %v before %v", o.at, clk.now)
		}
		clk.advanceTo(o.at)
		if o.release {
			releases[o.route]()
			continue
		}
		rel, waited, err := l.Acquire(context.Background(), o.route)
		if err != nil || waited {
			t.Fatalf("acquire %s: err=%v waited=%v (ceiling should admit everything)", o.route, err, waited)
		}
		releases[o.route] = rel
	}
	clk.advanceTo(end)
	snap := l.Snapshot()
	if snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Fatalf("workload left inflight=%d queue=%d", snap.InFlight, snap.QueueDepth)
	}
	return snap.NAvg
}

// TestNAvgMatchesClosedForm: with one admission and one completion per
// route, the live estimate at time T has an exact closed form —
//
//	n_avg(T) = Σ_r e^{-(T − a_r)/τ} / τ × W_r
//
// (each route's decayed count is one admission aged from its admit time
// a_r, and its EWMA is the single latency sample W_r). Random workloads
// must match it to floating-point accuracy.
func TestNAvgMatchesClosedForm(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	const halfLife = 10 * time.Second
	tau := halfLife.Seconds() / math.Ln2
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		var ops []op
		type span struct {
			admit time.Time
			lat   float64
		}
		spans := make(map[string]span, n)
		for i := 0; i < n; i++ {
			route := string(rune('a'+i%26)) + string(rune('0'+i/26))
			admit := base.Add(time.Duration(rng.Int63n(int64(5 * time.Second))))
			lat := time.Duration(1 + rng.Int63n(int64(2*time.Second)))
			spans[route] = span{admit: admit, lat: lat.Seconds()}
			ops = append(ops,
				op{at: admit, route: route},
				op{at: admit.Add(lat), route: route, release: true})
		}
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].at.Before(ops[j].at) })
		end := base.Add(8 * time.Second)
		got := runWorkload(t, ops, end)
		want := 0.0
		for _, s := range spans {
			want += math.Exp(-end.Sub(s.admit).Seconds()/tau) / tau * s.lat
		}
		if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, want) {
			t.Fatalf("seed %d: n_avg = %g, closed form = %g (n=%d routes)", seed, got, want, n)
		}
	}
}

// TestNAvgInvariantUnderPermutedInterleavings: when several routes admit at
// the same instant, the order in which their Acquire calls hit the limiter
// is scheduler luck — the estimate must not depend on it. Same for
// same-instant completions. Every permutation of the concurrent batch must
// land on the identical n_avg.
func TestNAvgInvariantUnderPermutedInterleavings(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	routes := []string{"analyze", "advise", "tune", "tables", "characterize"}
	lats := []time.Duration{120 * time.Millisecond, 340 * time.Millisecond,
		2 * time.Second, 55 * time.Millisecond, 900 * time.Millisecond}
	end := base.Add(5 * time.Second)

	build := func(admitOrder, releaseOrder []int) []op {
		var ops []op
		// All admissions at t=0, in the given order...
		for _, i := range admitOrder {
			ops = append(ops, op{at: base, route: routes[i]})
		}
		// ...then all completions at a common later instant, so release
		// order is also permutable. Each route's latency is still its own:
		// the limiter computes W from admit→release of *that* route... except
		// a shared release instant would equalize them. So release each route
		// at its own time; only equal-time pairs are permuted below.
		for _, i := range releaseOrder {
			ops = append(ops, op{at: base.Add(lats[i]), route: routes[i], release: true})
		}
		sort.SliceStable(ops, func(a, b int) bool { return ops[a].at.Before(ops[b].at) })
		return ops
	}

	identity := []int{0, 1, 2, 3, 4}
	want := runWorkload(t, build(identity, identity), end)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		admitOrder := rng.Perm(len(routes))
		releaseOrder := rng.Perm(len(routes))
		got := runWorkload(t, build(admitOrder, releaseOrder), end)
		// Not exact equality: navgLocked sums over a Go map, whose random
		// iteration order can shuffle float rounding by an ulp.
		if math.Abs(got-want) > 1e-12*want {
			t.Fatalf("trial %d: admit order %v gave n_avg %g, identity gave %g",
				trial, admitOrder, got, want)
		}
	}
	if want <= 0 {
		t.Fatalf("n_avg = %g, want positive for a busy window", want)
	}
}

// TestNAvgScalesWithLatency: Little's Law is linear in W — doubling every
// route's service latency (with admission times fixed) must exactly double
// the estimate. A metamorphic check that needs no closed form at all.
func TestNAvgScalesWithLatency(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	end := base.Add(6 * time.Second)
	workload := func(scale time.Duration) []op {
		var ops []op
		for i, lat := range []time.Duration{100, 250, 700, 1300} {
			route := string(rune('a' + i))
			ops = append(ops,
				op{at: base.Add(time.Duration(i) * 200 * time.Millisecond), route: route},
				op{at: base.Add(time.Duration(i)*200*time.Millisecond + lat*scale), route: route, release: true})
		}
		sort.SliceStable(ops, func(a, b int) bool { return ops[a].at.Before(ops[b].at) })
		return ops
	}
	one := runWorkload(t, workload(time.Millisecond), end)
	two := runWorkload(t, workload(2*time.Millisecond), end)
	if one <= 0 {
		t.Fatalf("baseline n_avg = %g, want positive", one)
	}
	if ratio := two / one; math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("doubling all latencies scaled n_avg by %g, want exactly 2", ratio)
	}
}

// TestNAvgDecaysToZero: once traffic stops, the memory term must decay
// below any threshold within a bounded number of half-lives — the property
// the recovery phase of the shed/recover e2e rests on.
func TestNAvgDecaysToZero(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	clk := &fakeClock{now: base}
	l := New(Config{Ceiling: 1e9, RateHalfLife: time.Second, Now: clk.Now})
	for i := 0; i < 50; i++ {
		rel, _, err := l.Acquire(context.Background(), "burst")
		if err != nil {
			t.Fatal(err)
		}
		clk.add(10 * time.Millisecond)
		rel()
	}
	busy := l.Snapshot().NAvg
	if busy <= 0 {
		t.Fatalf("busy n_avg = %g, want positive", busy)
	}
	prev := busy
	for i := 0; i < 30; i++ {
		clk.add(time.Second)
		cur := l.Snapshot().NAvg
		if cur > prev+1e-12 {
			t.Fatalf("n_avg rose from %g to %g with no traffic", prev, cur)
		}
		prev = cur
	}
	if prev != 0 {
		// 30 half-lives beyond a 50-admission burst is ~5e-8 of the start;
		// the evictBelow floor should have zeroed it entirely.
		t.Fatalf("n_avg = %g after 30 idle half-lives, want exact 0 via eviction", prev)
	}
}
