// Package limit applies the paper's own metric to the server that computes
// it: adaptive admission control via Little's Law. The service's /metrics
// already derives its long-run average concurrency as latency_sum/uptime;
// this package turns the same quantity into a *live* control signal. A
// Limiter measures the admitted arrival rate (an exponentially decayed
// counter, so bursts fade with a configurable half-life) and the per-route
// service latency (EWMA), combines them as
//
//	n_avg = Σ_routes λ_route × W_route        (Equation 1, per class)
//
// and compares max(in-flight, n_avg) against an MSHR-style ceiling — the
// same shape as the paper's occupancy-vs-capacity verdict for a cache
// level. Arrivals under the ceiling are admitted; arrivals at the ceiling
// wait in a bounded FIFO with a deadline; arrivals beyond the queue are
// shed with a drain-time Retry-After hint, exactly as an MSHR-full cache
// rejects a new miss rather than queueing unboundedly. The queue drains on
// completions and — when the memory term alone holds admission shut with
// nothing in flight, so no completion is coming — on later arrivals and a
// decay-horizon timer, so an idle server always recovers.
//
// The in-flight count gates hard bursts instantly; the Little's-Law term
// adds memory, so a burst of admissions against a slow route keeps
// admission closed even while the instantaneous in-flight count transiently
// dips. On a stationary server the two agree — Equation 1 observed about
// the observer, now steering it.
package limit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"littleslaw/internal/faults"
	"littleslaw/internal/trace"
)

// FaultSite is the admission path's fault-injection point, evaluated once
// per Acquire before any limiter state is touched. It honors latency
// faults only (a slow admission decision — lock contention, a stalled
// scheduler — is the realistic failure here; the limiter's own shed path
// already models refusal).
const FaultSite = "limit.acquire"

// Config tunes a Limiter. Zero values take the documented defaults.
type Config struct {
	// Ceiling is the MSHR-style occupancy limit: admission is denied when
	// max(in-flight, n_avg) reaches it (0 = 64).
	Ceiling float64
	// MaxQueue bounds the admission FIFO where arrivals wait for a slot
	// once the ceiling is reached (0 = 2×Ceiling rounded up; negative =
	// no queue, shed immediately).
	MaxQueue int
	// QueueTimeout is the per-request deadline a queued arrival waits
	// before being shed (0 = 5s). The request's own context deadline
	// applies as well, whichever is sooner.
	QueueTimeout time.Duration
	// MaxRoutes caps the per-route stats map: once it holds MaxRoutes
	// entries, further distinct route names share one overflow bucket, so
	// a client fabricating unique paths can neither grow memory without
	// bound nor fragment the n_avg estimate into useless slivers (0 = 512).
	MaxRoutes int
	// RateHalfLife is the half-life of the decayed arrival-rate estimator:
	// how quickly the admitted rate — and with it n_avg — forgets a burst
	// (0 = 10s).
	RateHalfLife time.Duration
	// LatencyAlpha is the per-completion EWMA weight for route service
	// latency, in (0, 1] (0 = 0.2).
	LatencyAlpha float64
	// Now is the clock (tests; nil = time.Now).
	Now func() time.Time
}

func (c *Config) normalize() {
	if c.Ceiling == 0 {
		c.Ceiling = 64
	}
	if c.Ceiling < 1 {
		c.Ceiling = 1
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = int(math.Ceil(2 * c.Ceiling))
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.MaxRoutes <= 0 {
		c.MaxRoutes = 512
	}
	if c.RateHalfLife == 0 {
		c.RateHalfLife = 10 * time.Second
	}
	if c.LatencyAlpha == 0 {
		c.LatencyAlpha = 0.2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// ErrShed is the sentinel every shed decision wraps; errors.Is(err, ErrShed)
// distinguishes load shedding from context expiry.
var ErrShed = errors.New("limit: admission denied")

// ShedError reports a shed with the estimated time until a slot frees.
type ShedError struct {
	// RetryAfter is the drain-time hint for the client's Retry-After
	// header, already rounded up to a whole second.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("limit: admission denied, retry after %s", e.RetryAfter)
}

// Is makes errors.Is(err, ErrShed) true for every ShedError.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// routeStat is the per-route slice of the estimate: an exponentially
// decayed admission counter and a service-latency EWMA.
type routeStat struct {
	count float64   // decayed admissions; λ = count/τ
	last  time.Time // time of the last decay
	lat   float64   // EWMA service latency, seconds
	seen  bool      // lat holds at least one sample
}

// waiter is one queued arrival: the route it will be admitted on and the
// channel closed at grant time.
type waiter struct {
	route string
	grant chan struct{}
}

// Snapshot is a point-in-time view of the limiter for /metrics.
type Snapshot struct {
	// NAvg is the live Little's-Law occupancy estimate Σ λ_r × W_r.
	NAvg float64
	// Ceiling is the configured occupancy limit.
	Ceiling float64
	// InFlight is the number of admitted, uncompleted requests.
	InFlight int
	// QueueDepth is the number of arrivals waiting for admission.
	QueueDepth int
	// Admitted, Queued and Shed count decisions since construction
	// (Queued counts arrivals that entered the FIFO; those later granted
	// also count as Admitted, those timed out also count as Shed).
	Admitted uint64
	Queued   uint64
	Shed     uint64
}

// Limiter is the adaptive admission controller. Construct with New; all
// methods are safe for concurrent use.
type Limiter struct {
	cfg Config
	tau float64 // decay time constant, seconds (half-life / ln 2)

	mu        sync.Mutex
	routes    map[string]*routeStat
	inflight  int
	queue     []*waiter // FIFO, grant channels closed on admission
	pumpArmed bool      // a decay-horizon re-evaluation timer is pending
	admitted  uint64
	queued    uint64
	shed      uint64
}

// New builds a Limiter.
func New(cfg Config) *Limiter {
	cfg.normalize()
	return &Limiter{
		cfg:    cfg,
		tau:    cfg.RateHalfLife.Seconds() / math.Ln2,
		routes: map[string]*routeStat{},
	}
}

// Ceiling returns the configured occupancy limit.
func (l *Limiter) Ceiling() float64 { return l.cfg.Ceiling }

// Acquire asks to admit one request on the named route. It returns a
// release function that must be called exactly once when the request
// completes (it records the service latency and hands the slot to the
// queue), plus whether the request waited in the queue before admission.
// A denial returns a *ShedError (matching ErrShed) when the limiter shed
// the request, or the context's error when ctx expired while queued.
func (l *Limiter) Acquire(ctx context.Context, route string) (release func(), waited bool, err error) {
	// The whole Acquire is queue wait from the request's point of view:
	// record it as the "limit" stage of the request's trace, noted with
	// the admission decision. Untraced requests pay one context lookup.
	if tr := trace.FromContext(ctx); tr != nil {
		entered := time.Now()
		defer func() {
			note := "admitted"
			switch {
			case errors.Is(err, ErrShed):
				note = "shed"
			case err != nil:
				note = "expired"
			case waited:
				note = "queued"
			}
			tr.Add("limit", note, time.Since(entered), 0)
		}()
	}
	if f := faults.Global().Eval(FaultSite); f.Kind == faults.KindLatency {
		f.Sleep(ctx)
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	now := l.cfg.Now()
	l.mu.Lock()
	// First grant any queued waiters the decayed occupancy now permits —
	// a queue formed while nothing was in flight (the n_avg memory term
	// alone at the ceiling) has no completion coming to drain it, so
	// arrivals must re-run the grant logic themselves.
	l.pumpLocked(now)
	// Admit immediately only past an empty queue (FIFO fairness: a new
	// arrival never overtakes a queued one).
	if len(l.queue) == 0 && l.occupancyLocked(now) < l.cfg.Ceiling {
		l.admitLocked(route, now)
		l.mu.Unlock()
		return l.releaser(route, now), false, nil
	}
	if l.cfg.MaxQueue < 0 || len(l.queue) >= l.cfg.MaxQueue {
		l.shed++
		hint := l.retryAfterLocked(now)
		l.mu.Unlock()
		return nil, false, &ShedError{RetryAfter: hint}
	}
	w := &waiter{route: route, grant: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.queued++
	l.schedulePumpLocked(now)
	l.mu.Unlock()

	timer := time.NewTimer(l.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case <-w.grant:
		return l.releaser(route, l.cfg.Now()), true, nil
	case <-ctx.Done():
		if l.abandon(w) {
			return nil, true, ctx.Err()
		}
		// Granted concurrently with cancellation: hand the slot straight
		// back (without a latency sample — no work was done).
		<-w.grant
		l.relinquish()
		return nil, true, ctx.Err()
	case <-timer.C:
		if l.abandon(w) {
			l.mu.Lock()
			l.shed++
			hint := l.retryAfterLocked(l.cfg.Now())
			l.mu.Unlock()
			return nil, true, &ShedError{RetryAfter: hint}
		}
		// Granted concurrently with the timeout: the slot is ours, use it.
		<-w.grant
		return l.releaser(route, l.cfg.Now()), true, nil
	}
}

// admitLocked books one admission on the route: the decayed counter that
// feeds λ, the in-flight gauge and the decision counter.
func (l *Limiter) admitLocked(route string, now time.Time) {
	st := l.route(route)
	l.decayLocked(st, now)
	st.count++
	l.inflight++
	l.admitted++
}

// releaser returns the completion callback for an admitted request.
// Idempotent: extra calls are no-ops.
func (l *Limiter) releaser(route string, admittedAt time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			lat := l.cfg.Now().Sub(admittedAt).Seconds()
			if lat < 0 {
				lat = 0
			}
			l.mu.Lock()
			st := l.route(route)
			if !st.seen {
				st.lat, st.seen = lat, true
			} else {
				st.lat += l.cfg.LatencyAlpha * (lat - st.lat)
			}
			l.inflight--
			l.grantLocked()
			l.mu.Unlock()
		})
	}
}

// relinquish returns a slot that was granted but never used (the waiter's
// context expired as the grant arrived). No latency sample is recorded.
func (l *Limiter) relinquish() {
	l.mu.Lock()
	l.inflight--
	l.grantLocked()
	l.mu.Unlock()
}

// grantLocked admits queued waiters while in-flight slots remain. Grants
// from completions are driven by the hard in-flight gate, not the n_avg
// estimate, so every completion frees a slot and the queue always drains.
func (l *Limiter) grantLocked() {
	now := l.cfg.Now()
	for len(l.queue) > 0 && float64(l.inflight) < l.cfg.Ceiling {
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.admitLocked(w.route, now)
		close(w.grant)
	}
}

// pumpLocked is the arrival-path twin of grantLocked: it grants queued
// waiters while the full max(in-flight, n_avg) signal sits under the
// ceiling. Completions hand their slot over unconditionally via
// grantLocked; the pump instead covers the queue that formed on the memory
// term alone — nothing in flight, so no completion is coming — which
// drains here as the decayed estimate falls back under the ceiling.
func (l *Limiter) pumpLocked(now time.Time) {
	for len(l.queue) > 0 && l.occupancyLocked(now) < l.cfg.Ceiling {
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.admitLocked(w.route, now)
		close(w.grant)
	}
}

// schedulePumpLocked arms a one-shot re-evaluation for a queue that cannot
// rely on either a completion (nothing is in flight) or a future arrival
// to drain it. The delay is the decay horizon τ·ln(n_avg/Ceiling) — the
// time Equation 1's memory term needs to fall back to the ceiling —
// after which the timer pumps and, if still stalled, re-arms.
func (l *Limiter) schedulePumpLocked(now time.Time) {
	if len(l.queue) == 0 || l.inflight > 0 || l.pumpArmed {
		return
	}
	d := time.Millisecond
	if n := l.navgLocked(now); n > l.cfg.Ceiling {
		d = time.Duration(l.tau * math.Log(n/l.cfg.Ceiling) * float64(time.Second))
		if d < time.Millisecond {
			d = time.Millisecond
		}
	}
	l.pumpArmed = true
	time.AfterFunc(d, func() {
		l.mu.Lock()
		l.pumpArmed = false
		now := l.cfg.Now()
		l.pumpLocked(now)
		l.schedulePumpLocked(now)
		l.mu.Unlock()
	})
}

// abandon removes a still-queued waiter, reporting whether it was removed
// (false means the grant already fired and the slot belongs to the caller).
// Removal re-runs the grant logic: the abandoning waiter may have been the
// queue head, and the occupancy estimate has decayed since it enqueued.
func (l *Limiter) abandon(w *waiter) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			now := l.cfg.Now()
			l.pumpLocked(now)
			l.schedulePumpLocked(now)
			return true
		}
	}
	return false
}

// overflowRoute is the shared bucket for route names arriving after the
// stats map reached Config.MaxRoutes distinct entries.
const overflowRoute = "!overflow"

// evictBelow is the decayed-count floor under which a route's contribution
// to n_avg is noise and its entry is dropped (≈20 half-lives after its
// last admission), so idle or fabricated routes do not accumulate.
const evictBelow = 1e-6

// route returns the named route's stat, creating it on first use. Once the
// map holds MaxRoutes entries, new names fold into one overflow bucket so
// client-chosen paths cannot grow the map without bound. Callers hold l.mu.
func (l *Limiter) route(name string) *routeStat {
	if st, ok := l.routes[name]; ok {
		return st
	}
	if len(l.routes) >= l.cfg.MaxRoutes {
		name = overflowRoute
		if st, ok := l.routes[name]; ok {
			return st
		}
	}
	st := &routeStat{last: l.cfg.Now()}
	l.routes[name] = st
	return st
}

// decayLocked ages the route's admission counter to now.
func (l *Limiter) decayLocked(st *routeStat, now time.Time) {
	dt := now.Sub(st.last).Seconds()
	if dt <= 0 {
		return
	}
	st.count *= math.Exp(-dt / l.tau)
	st.last = now
}

// navgLocked is the live Little's-Law estimate: Σ_routes λ_r × W_r with
// λ_r the decayed admitted rate and W_r the latency EWMA.
func (l *Limiter) navgLocked(now time.Time) float64 {
	var n float64
	for name, st := range l.routes {
		l.decayLocked(st, now)
		if st.count < evictBelow {
			delete(l.routes, name)
			continue
		}
		n += st.count / l.tau * st.lat
	}
	return n
}

// occupancyLocked is the admission signal: the directly sampled in-flight
// count or the Little's-Law estimate, whichever is higher.
func (l *Limiter) occupancyLocked(now time.Time) float64 {
	return math.Max(float64(l.inflight), l.navgLocked(now))
}

// retryAfterLocked estimates when a shed client should retry: the time for
// the queue (plus this request) to drain at the current service rate.
// Ceiling slots each turning over every W seconds serve Ceiling/W req/s,
// so the wait is (depth+1) × W / Ceiling, clamped to [1s, 30s] and rounded
// up to whole seconds (the Retry-After header's resolution).
func (l *Limiter) retryAfterLocked(now time.Time) time.Duration {
	var latSum, cntSum float64
	for _, st := range l.routes {
		if st.seen {
			latSum += st.count * st.lat
			cntSum += st.count
		}
	}
	wait := time.Second
	if cntSum > 0 {
		mean := latSum / cntSum
		est := float64(len(l.queue)+1) * mean / l.cfg.Ceiling
		wait = time.Duration(math.Ceil(est)) * time.Second
	}
	if wait < time.Second {
		wait = time.Second
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	return wait
}

// Snapshot returns the current state for metrics export.
func (l *Limiter) Snapshot() Snapshot {
	now := l.cfg.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	return Snapshot{
		NAvg:       l.navgLocked(now),
		Ceiling:    l.cfg.Ceiling,
		InFlight:   l.inflight,
		QueueDepth: len(l.queue),
		Admitted:   l.admitted,
		Queued:     l.queued,
		Shed:       l.shed,
	}
}
