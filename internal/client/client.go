// Package client is the resilient Go client for the llserved /v1/* API:
// the other half of the fault-tolerance story. The server side sheds load
// with 429 + Retry-After and degrades injected chaos to clean transient
// errors; this side turns those signals into eventual success without
// amplifying an overload. Every request gets a per-attempt timeout, a
// capped exponential backoff with seeded full jitter, Retry-After honoring
// on 429/503, and — crucially — a retry *budget*: a token bucket that
// earns a fraction of a token per request and spends one per retry, so a
// fleet of clients retrying into a struggling server converges to ~(1 +
// ratio)× the offered load instead of multiplying it (the Finagle/SRE-book
// discipline).
//
// cmd/llload drives load through it (via internal/loadgen) and cmd/llwatch
// tails /v1/watch streams through it; the chaos end-to-end tests prove the
// pairing: 30% injected faults at 2× capacity, 100% eventual success.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config tunes a Client. Zero values take the documented defaults.
type Config struct {
	// BaseURL prefixes every request path (required), e.g.
	// "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides the transport (nil = a fresh http.Client).
	HTTPClient *http.Client
	// Timeout bounds each attempt, not the whole request (0 = 10s).
	Timeout time.Duration
	// MaxAttempts caps attempts per request, first try included (0 = 4;
	// 1 = never retry).
	MaxAttempts int
	// Backoff is the base retry delay; attempt n sleeps a jittered value
	// in (0, min(Backoff·2ⁿ, MaxBackoff)] unless the server sent a
	// Retry-After hint (0 = 100ms).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (0 = 5s).
	MaxBackoff time.Duration
	// MaxRetryAfter caps how long a server Retry-After hint is honored,
	// so a hostile or confused server cannot park the client (0 = 30s).
	MaxRetryAfter time.Duration
	// Seed makes the backoff jitter deterministic for reproducible runs
	// (0 = seeded from the clock).
	Seed int64
	// BudgetRatio is the retry-budget earn rate: each request adds this
	// many tokens (capped at BudgetMax) and each retry spends one, so
	// sustained retries cannot exceed ~ratio× the request rate. 0 = 0.1;
	// negative disables the budget (retries limited by MaxAttempts only —
	// load generators that *want* to offer aggressive load use this).
	BudgetRatio float64
	// BudgetMax caps banked tokens, bounding the retry burst after a
	// quiet period (0 = 10).
	BudgetMax float64
}

func (c *Config) normalize() error {
	if c.BaseURL == "" {
		return fmt.Errorf("client: BaseURL is required")
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	if c.BudgetRatio == 0 {
		c.BudgetRatio = 0.1
	}
	if c.BudgetMax <= 0 {
		c.BudgetMax = 10
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return nil
}

// Stats counts a Client's lifetime behavior (for load reports and tests).
type Stats struct {
	// Requests is the number of Do/Stream calls.
	Requests uint64
	// Attempts is the total HTTP attempts, first tries included.
	Attempts uint64
	// Retries is the extra attempts beyond each request's first.
	Retries uint64
	// BudgetDenied counts retries forgone because the token bucket was
	// empty — the anti-amplification path.
	BudgetDenied uint64
	// Hints counts retryable responses that carried a Retry-After header.
	Hints uint64
}

// Result is one completed request (any status — a 429 after exhausting
// retries is a Result, not an error; only transport failures error).
type Result struct {
	// Status is the final attempt's HTTP status.
	Status int
	// Body is the final response body.
	Body []byte
	// Header is the final response's headers.
	Header http.Header
	// Attempts is how many tries this request used.
	Attempts int
	// Hints is how many of this request's retryable responses carried a
	// Retry-After header.
	Hints int
	// Latency is the final attempt's wall time.
	Latency time.Duration
	// Degraded is true when the server marked the answer as degraded
	// content (stale cache or analytic approximation) via the X-Degraded
	// response header.
	Degraded bool
	// BrownoutMode is the server's brownout rung at service time, from the
	// X-Brownout-Mode response header ("" = full service).
	BrownoutMode string
}

// Client is the resilient API client. Construct with New; all methods are
// safe for concurrent use.
type Client struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	tokens float64
	stats  Stats
}

// New builds a Client.
func New(cfg Config) (*Client, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Client{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		tokens: cfg.BudgetMax,
	}, nil
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// retryable reports whether a status is worth another attempt: the
// admission controller's shed, and the transient 5xx family a fault layer
// or a dying dependency produces.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// spend asks the retry budget for one token, earning first. Callers get a
// retry iff the bucket holds a whole token.
func (c *Client) spend() bool {
	if c.cfg.BudgetRatio < 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tokens < 1 {
		c.stats.BudgetDenied++
		return false
	}
	c.tokens--
	return true
}

// earn credits the budget for one request.
func (c *Client) earn() {
	if c.cfg.BudgetRatio < 0 {
		return
	}
	c.mu.Lock()
	c.tokens = min(c.cfg.BudgetMax, c.tokens+c.cfg.BudgetRatio)
	c.mu.Unlock()
}

// backoffDelay computes the attempt'th retry sleep: the server's hint when
// it gave one (capped at MaxRetryAfter), otherwise capped exponential
// backoff with full jitter — a uniform draw in (0, cap], so synchronized
// clients desynchronize. A non-positive hint (a server sending
// "Retry-After: 0") is treated as unhinted: honoring it literally would
// yield a zero sleep and a tight retry loop against a server that just
// declared itself overloaded.
func (c *Client) backoffDelay(attempt int, hinted bool, hint time.Duration) time.Duration {
	if hinted && hint > 0 {
		return min(hint, c.cfg.MaxRetryAfter)
	}
	ceil := c.cfg.Backoff << (attempt - 1)
	if ceil > c.cfg.MaxBackoff || ceil <= 0 {
		ceil = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil))) + 1
	c.mu.Unlock()
	return d
}

// retryAfter parses a Retry-After header (whole seconds, the form the
// limiter emits).
func retryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// sleep waits for d or ctx, reporting false when the context died first.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Do issues one request with retries: method + path (joined to BaseURL),
// optional body. Retryable statuses (429, 500, 502, 503, 504) and
// transport errors are retried within MaxAttempts and the retry budget,
// honoring Retry-After; everything else returns on the first attempt. The
// returned error is non-nil only for option problems, context expiry, or
// a transport failure on the final attempt — HTTP error statuses are
// returned as a Result for the caller to interpret.
func (c *Client) Do(ctx context.Context, method, path, contentType string, body []byte) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.earn()
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()

	res := &Result{}
	for {
		res.Attempts++
		c.mu.Lock()
		c.stats.Attempts++
		if res.Attempts > 1 {
			c.stats.Retries++
		}
		c.mu.Unlock()

		status, header, respBody, lat, err := c.once(ctx, method, path, contentType, body)
		hint, hinted := time.Duration(0), false
		if err == nil {
			res.Status, res.Header, res.Body, res.Latency = status, header, respBody, lat
			res.Degraded = header.Get("X-Degraded") == "true"
			res.BrownoutMode = header.Get("X-Brownout-Mode")
			if !retryable(status) {
				return res, nil
			}
			hint, hinted = retryAfter(header)
			if hinted {
				res.Hints++
				c.mu.Lock()
				c.stats.Hints++
				c.mu.Unlock()
			}
		} else if ctx.Err() != nil {
			return nil, ctx.Err()
		}

		if res.Attempts >= c.cfg.MaxAttempts || !c.spend() {
			if err != nil {
				return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
			}
			return res, nil
		}
		if !sleep(ctx, c.backoffDelay(res.Attempts, hinted, hint)) {
			if err != nil {
				return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
			}
			return res, nil
		}
	}
}

// once is a single attempt under the per-attempt timeout.
func (c *Client) once(ctx context.Context, method, path, contentType string, body []byte) (int, http.Header, []byte, time.Duration, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, 0, err
	}
	if len(body) > 0 {
		if contentType == "" {
			contentType = "application/json"
		}
		req.Header.Set("Content-Type", contentType)
	}
	begin := time.Now()
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	return resp.StatusCode, resp.Header, data, time.Since(begin), nil
}

// apiError extracts the service's JSON error envelope, falling back to the
// raw body.
func apiError(res *Result) error {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(res.Body, &env) == nil && env.Error != "" {
		return fmt.Errorf("client: server returned %d: %s", res.Status, env.Error)
	}
	return fmt.Errorf("client: server returned %d", res.Status)
}

// GetJSON GETs path and decodes a 2xx JSON body into out.
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	res, err := c.Do(ctx, http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	if res.Status < 200 || res.Status >= 300 {
		return apiError(res)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(res.Body, out)
}

// PostJSON POSTs in (JSON-encoded) to path and decodes a 2xx JSON body
// into out.
func (c *Client) PostJSON(ctx context.Context, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	res, err := c.Do(ctx, http.MethodPost, path, "application/json", body)
	if err != nil {
		return err
	}
	if res.Status < 200 || res.Status >= 300 {
		return apiError(res)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(res.Body, out)
}

// Stream GETs an NDJSON stream (e.g. /v1/watch/{name}) and hands each
// line to fn. Connection establishment retries like Do (retryable status,
// budget, Retry-After); once the stream is open, the per-attempt timeout
// no longer applies — streams are long-lived — and a mid-stream transport
// error returns so the caller can decide to reconnect (events carry
// sequence numbers, so a reconnecting tailer deduplicates on seq). fn
// errors abort the stream and are returned verbatim.
func (c *Client) Stream(ctx context.Context, path string, fn func(line []byte) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.earn()
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()

	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		c.stats.Attempts++
		if attempt > 1 {
			c.stats.Retries++
		}
		c.mu.Unlock()

		resp, err := c.openStream(ctx, path)
		hint, hinted := time.Duration(0), false
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				return drainLines(ctx, resp, fn)
			}
			hinted = retryable(resp.StatusCode)
			if hinted {
				if h, ok := retryAfter(resp.Header); ok {
					hint = h
					c.mu.Lock()
					c.stats.Hints++
					c.mu.Unlock()
				}
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if !retryable(resp.StatusCode) {
				return apiError(&Result{Status: resp.StatusCode, Body: body})
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}

		if attempt >= c.cfg.MaxAttempts || !c.spend() {
			if err != nil {
				return fmt.Errorf("client: GET %s: %w", path, err)
			}
			return fmt.Errorf("client: GET %s: gave up after %d attempts", path, attempt)
		}
		if !sleep(ctx, c.backoffDelay(attempt, hinted, hint)) {
			return ctx.Err()
		}
	}
}

// openStream starts the streaming GET. Only the connection phase is
// bounded: the response header must arrive within Timeout, enforced by a
// watchdog that is disarmed as soon as the headers land.
func (c *Client) openStream(ctx context.Context, path string) (*http.Response, error) {
	sctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Accept", "application/x-ndjson")
	watchdog := time.AfterFunc(c.cfg.Timeout, cancel)
	resp, err := c.cfg.HTTPClient.Do(req)
	watchdog.Stop()
	if err != nil {
		cancel()
		return nil, err
	}
	// cancel must outlive the body read; tie it to the body's Close.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// maxLineBytes bounds one NDJSON event line (a table-sized event is well
// under this).
const maxLineBytes = 1 << 20

func drainLines(ctx context.Context, resp *http.Response, fn func([]byte) error) error {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: stream broken: %w", err)
	}
	return nil
}
