package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"littleslaw/internal/faults"
)

func newTestClient(t *testing.T, url string, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL: url,
		Timeout: 2 * time.Second,
		Backoff: time.Millisecond,
		Seed:    1,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"injected"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	res, err := c.Do(context.Background(), http.MethodGet, "/x", "", nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("status = %d, want 200", res.Status)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Requests != 1 || st.Attempts != 3 {
		t.Fatalf("stats = %+v, want 1 request / 3 attempts / 2 retries", st)
	}
}

func TestDoDoesNotRetryNonRetryable(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad input"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	res, err := c.Do(context.Background(), http.MethodPost, "/x", "application/json", []byte(`{}`))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Status != http.StatusBadRequest || res.Attempts != 1 || calls.Load() != 1 {
		t.Fatalf("status=%d attempts=%d calls=%d, want one 400 attempt", res.Status, res.Attempts, calls.Load())
	}
}

func TestDoReturnsFinalRetryableStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, func(cfg *Config) { cfg.MaxAttempts = 3 })
	res, err := c.Do(context.Background(), http.MethodGet, "/x", "", nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 surfaced as a Result", res.Status)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts=3", res.Attempts)
	}
	if res.Hints != 3 {
		t.Fatalf("hints = %d, want 3 (every 429 carried Retry-After)", res.Hints)
	}
}

func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	begin := time.Now()
	res, err := c.Do(context.Background(), http.MethodGet, "/x", "", nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Status != http.StatusOK || res.Attempts != 2 {
		t.Fatalf("status=%d attempts=%d, want 200 on attempt 2", res.Status, res.Attempts)
	}
	// The server asked for 1s; the default jittered backoff would have been
	// ~1ms, so elapsed >= 1s proves the hint won.
	if elapsed := time.Since(begin); elapsed < time.Second {
		t.Fatalf("elapsed = %v, want >= 1s (Retry-After honored)", elapsed)
	}
}

func TestRetryAfterCapped(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, func(cfg *Config) { cfg.MaxRetryAfter = 20 * time.Millisecond })
	begin := time.Now()
	if _, err := c.Do(context.Background(), http.MethodGet, "/x", "", nil); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("elapsed = %v: an hour-long Retry-After was not capped", elapsed)
	}
}

func TestRetryBudgetPreventsAmplification(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	const requests = 100
	c := newTestClient(t, srv.URL, func(cfg *Config) {
		cfg.MaxAttempts = 4
		cfg.BudgetRatio = 0.1
		cfg.BudgetMax = 2
	})
	for i := 0; i < requests; i++ {
		if _, err := c.Do(context.Background(), http.MethodGet, "/x", "", nil); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	st := c.Stats()
	if st.BudgetDenied == 0 {
		t.Fatalf("stats = %+v, want budget denials against an all-failing server", st)
	}
	// Bank (2) + earn (0.1/request) bounds total retries at 2 + 0.1·100 = 12;
	// without the budget MaxAttempts alone would allow 300.
	if maxRetries := uint64(2 + requests/10); st.Retries > maxRetries {
		t.Fatalf("retries = %d, want <= %d (budget must bound amplification)", st.Retries, maxRetries)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, func(cfg *Config) {
		cfg.MaxAttempts = 3
		cfg.BudgetRatio = -1
	})
	for i := 0; i < 10; i++ {
		if _, err := c.Do(context.Background(), http.MethodGet, "/x", "", nil); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	st := c.Stats()
	if st.Retries != 20 || st.BudgetDenied != 0 {
		t.Fatalf("stats = %+v, want full 2 retries × 10 requests with no denials", st)
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-r.Context().Done():
			case <-time.After(5 * time.Second):
			}
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, func(cfg *Config) { cfg.Timeout = 50 * time.Millisecond })
	res, err := c.Do(context.Background(), http.MethodGet, "/x", "", nil)
	if err != nil {
		t.Fatalf("Do: %v (a hung first attempt should time out and be retried)", err)
	}
	if res.Status != http.StatusOK || res.Attempts != 2 {
		t.Fatalf("status=%d attempts=%d, want 200 on attempt 2", res.Status, res.Attempts)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, func(cfg *Config) {
		cfg.MaxAttempts = 1000
		cfg.Backoff = 50 * time.Millisecond
		cfg.MaxBackoff = 50 * time.Millisecond
		cfg.BudgetRatio = -1
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	begin := time.Now()
	res, err := c.Do(ctx, http.MethodGet, "/x", "", nil)
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("Do ran %v past its context", elapsed)
	}
	// Cancellation mid-backoff returns the last response; mid-attempt the
	// context error. Either is fine — just not an endless loop.
	if err == nil && res.Status != http.StatusServiceUnavailable {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
}

func TestJSONHelpers(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			fmt.Fprint(w, `{"value":7}`)
		case "/echo":
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{"value":9}`)
		default:
			http.Error(w, `{"error":"no such route"}`, http.StatusNotFound)
		}
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	var out struct {
		Value int `json:"value"`
	}
	if err := c.GetJSON(context.Background(), "/ok", &out); err != nil || out.Value != 7 {
		t.Fatalf("GetJSON = %v, out = %+v", err, out)
	}
	if err := c.PostJSON(context.Background(), "/echo", map[string]int{"in": 1}, &out); err != nil || out.Value != 9 {
		t.Fatalf("PostJSON = %v, out = %+v", err, out)
	}
	err := c.GetJSON(context.Background(), "/missing", &out)
	if err == nil || !strings.Contains(err.Error(), "no such route") {
		t.Fatalf("GetJSON(missing) = %v, want the envelope's error text", err)
	}
}

func TestStreamDeliversLines(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"seq":%d}`+"\n", i)
			fl.Flush()
		}
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	var lines []string
	err := c.Stream(context.Background(), "/v1/watch/x", func(line []byte) error {
		lines = append(lines, string(line))
		return nil
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if len(lines) != 3 || lines[2] != `{"seq":2}` {
		t.Fatalf("lines = %q, want 3 NDJSON events", lines)
	}
}

func TestStreamRetriesConnection(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"stream limit"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"seq":0}`+"\n")
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	var got int
	if err := c.Stream(context.Background(), "/v1/watch/x", func([]byte) error { got++; return nil }); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if got != 1 || calls.Load() != 3 {
		t.Fatalf("got=%d calls=%d, want the line after 2 connect retries", got, calls.Load())
	}
}

func TestStreamCallbackErrorAborts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		fmt.Fprint(w, `{"seq":0}`+"\n")
		fl.Flush()
		fmt.Fprint(w, `{"seq":1}`+"\n")
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	sentinel := fmt.Errorf("stop here")
	err := c.Stream(context.Background(), "/v1/watch/x", func([]byte) error { return sentinel })
	if err != sentinel {
		t.Fatalf("Stream = %v, want the callback's error verbatim", err)
	}
}

// TestStreamReconnectDedupesUnderDrip is the end-to-end proof of the
// reconnect contract Stream documents: a broker-style server replays its
// whole event buffer (seq 0..9) on every connection, dripping chunks
// through an injected per-chunk delay, and kills the first two connections
// mid-stream at different depths. A tailer that reconnects and filters on
// seq — the cmd/llwatch discipline — must still deliver every event
// exactly once, in order, despite each reconnect re-offering events it
// already consumed.
func TestStreamReconnectDedupesUnderDrip(t *testing.T) {
	inj, err := faults.New(7, faults.Rule{
		Site: "test.stream.drip", Kind: faults.KindDrip, P: 1, D: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	const events = 10
	var conns atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn := conns.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		f := inj.Eval("test.stream.drip")
		// Connection 1 dies after 4 events, connection 2 after 6: each
		// reconnect makes progress but re-serves everything before the cut.
		cut := events
		if conn <= 2 {
			cut = 4 + 2*int(conn-1)
		}
		for seq := 0; seq < events; seq++ {
			if seq == cut {
				panic(http.ErrAbortHandler) // injected mid-stream connection loss
			}
			f.Sleep(r.Context())
			fmt.Fprintf(w, `{"seq":%d}`+"\n", seq)
			fl.Flush()
		}
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	lastSeq, reconnects := -1, 0
	var got []int
	for {
		err := c.Stream(context.Background(), "/v1/watch/x", func(line []byte) error {
			var ev struct {
				Seq int `json:"seq"`
			}
			if err := json.Unmarshal(line, &ev); err != nil {
				return err
			}
			if ev.Seq <= lastSeq {
				return nil // replayed duplicate
			}
			lastSeq = ev.Seq
			got = append(got, ev.Seq)
			return nil
		})
		if err == nil {
			break // clean EOF: the buffer drained
		}
		if reconnects++; reconnects > 5 {
			t.Fatalf("still failing after %d reconnects: %v (got %v)", reconnects, err, got)
		}
	}

	if len(got) != events {
		t.Fatalf("delivered %d events %v, want %d exactly-once", len(got), got, events)
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("delivery out of order or duplicated at %d: %v", i, got)
		}
	}
	if reconnects < 2 {
		t.Fatalf("reconnects = %d; the fault plan kills 2 connections, so dedupe was never exercised", reconnects)
	}
	if conns.Load() < 3 {
		t.Fatalf("server saw %d connections, want >= 3", conns.Load())
	}
	if inj.FiredTotal() == 0 {
		t.Fatal("drip fault never fired")
	}
}

func TestStreamNonRetryableStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown stream"}`, http.StatusNotFound)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	err := c.Stream(context.Background(), "/v1/watch/x", func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown stream") {
		t.Fatalf("Stream = %v, want the 404 envelope error", err)
	}
}

func TestDeterministicJitter(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		c, err := New(Config{BaseURL: "http://localhost", Seed: seed})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var ds []time.Duration
		for attempt := 1; attempt <= 6; attempt++ {
			ds = append(ds, c.backoffDelay(attempt, false, 0))
		}
		return ds
	}
	a, b := delays(42), delays(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	c := delays(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical jitter: %v", a)
	}
}

func TestBackoffRespectsCaps(t *testing.T) {
	c, err := New(Config{
		BaseURL:    "http://localhost",
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for attempt := 1; attempt <= 64; attempt++ {
		d := c.backoffDelay(attempt, false, 0)
		if d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside (0, MaxBackoff]", attempt, d)
		}
	}
}

func TestNewRequiresBaseURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no BaseURL should fail")
	}
}

// TestBackoffDelayIgnoresNonPositiveHint pins the Retry-After: 0 guard in
// backoffDelay itself: a non-positive hint must fall through to jittered
// backoff (honoring it literally meant a zero sleep and a tight retry loop
// against an overloaded server), while a positive hint is still honored.
// Both Do and Stream route their sleeps through here, so this covers both.
func TestBackoffDelayIgnoresNonPositiveHint(t *testing.T) {
	c, err := New(Config{
		BaseURL:       "http://localhost",
		Backoff:       10 * time.Millisecond,
		MaxBackoff:    80 * time.Millisecond,
		MaxRetryAfter: time.Minute,
		Seed:          7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, tc := range []struct {
		name   string
		hinted bool
		hint   time.Duration
	}{
		{"zero hint", true, 0},
		{"negative hint", true, -time.Second},
		{"unhinted", false, 0},
	} {
		if d := c.backoffDelay(1, tc.hinted, tc.hint); d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("%s: delay %v, want jittered backoff in (0, MaxBackoff]", tc.name, d)
		}
	}
	if d := c.backoffDelay(1, true, 5*time.Second); d != 5*time.Second {
		t.Fatalf("positive hint: delay %v, want the hint verbatim", d)
	}
	if d := c.backoffDelay(1, true, 10*time.Minute); d != time.Minute {
		t.Fatalf("huge hint: delay %v, want the MaxRetryAfter cap", d)
	}
}

// TestDoRetryAfterZeroStillBacksOff is the Do-path regression: a server
// shedding with Retry-After: 0 used to produce zero-delay retries. With
// the guard, each retry sleeps the configured backoff instead.
func TestDoRetryAfterZeroStillBacksOff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, func(cfg *Config) {
		cfg.MaxAttempts = 3
		cfg.Backoff = 30 * time.Millisecond
		cfg.MaxBackoff = 30 * time.Millisecond
	})
	begin := time.Now()
	res, err := c.Do(context.Background(), http.MethodGet, "/x", "", nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Status != http.StatusOK || res.Attempts != 3 {
		t.Fatalf("status=%d attempts=%d, want 200 on attempt 3", res.Status, res.Attempts)
	}
	// Two retries, each a uniform draw in (0, 30ms]: with the bug both
	// sleeps were exactly zero and the whole exchange took microseconds.
	if elapsed := time.Since(begin); elapsed < 2*time.Millisecond {
		t.Fatalf("elapsed = %v: Retry-After: 0 produced a tight retry loop", elapsed)
	}
}

// TestStreamRetryAfterZeroStillBacksOff pins the Stream path, whose
// call-site guard moved into backoffDelay.
func TestStreamRetryAfterZeroStillBacksOff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"stream limit"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"seq":0}`+"\n")
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, func(cfg *Config) {
		cfg.Backoff = 30 * time.Millisecond
		cfg.MaxBackoff = 30 * time.Millisecond
	})
	begin := time.Now()
	var got int
	if err := c.Stream(context.Background(), "/v1/watch/x", func([]byte) error { got++; return nil }); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if got != 1 || calls.Load() != 3 {
		t.Fatalf("got=%d calls=%d, want the line after 2 connect retries", got, calls.Load())
	}
	if elapsed := time.Since(begin); elapsed < 2*time.Millisecond {
		t.Fatalf("elapsed = %v: Retry-After: 0 produced a tight reconnect loop", elapsed)
	}
}
