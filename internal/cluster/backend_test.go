package cluster

import (
	"math"
	"sort"
	"testing"
	"time"

	"littleslaw/internal/brownout"
	"littleslaw/internal/queueing"
)

func testBackend(halfLife time.Duration, maxFails int, cooldown time.Duration) *Backend {
	return &Backend{
		Name:     "test:1",
		tau:      halfLife.Seconds() / ln2,
		alpha:    0.2,
		maxFails: maxFails,
		cooldown: cooldown,
		healthy:  true,
	}
}

// TestBackendNAvgMatchesOccupancyAt is the golden test tying the proxy's
// per-backend estimator to the paper pipeline, the cluster-tier twin of the
// limiter's own golden test: replay a steady synthetic trace (λ = 200/s,
// W = 25 ms) under a fake clock and check the live λ·W estimate against
// queueing.Curve.OccupancyAt on a flat profile. Little's Law on both
// sides: λ·W = 5.
func TestBackendNAvgMatchesOccupancyAt(t *testing.T) {
	const (
		lambda    = 200.0
		service   = 25 * time.Millisecond
		lineBytes = 64
		duration  = 5 * time.Second
	)
	b := testBackend(500*time.Millisecond, 3, time.Second)

	type event struct{ at time.Time }
	interval := time.Duration(float64(time.Second) / lambda)
	var pending []event
	var clock time.Time
	for at := time.Unix(0, 0); at.Sub(time.Unix(0, 0)) < duration; at = at.Add(interval) {
		sort.Slice(pending, func(i, j int) bool { return pending[i].at.Before(pending[j].at) })
		for len(pending) > 0 && !pending[0].at.After(at) {
			b.complete(service, true)
			pending = pending[1:]
		}
		clock = at
		b.arrive(clock)
		pending = append(pending, event{at: at.Add(service)})
	}
	got := b.navg(clock)

	curve := queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 0, LatencyNs: service.Seconds() * 1e9},
		{BandwidthGBs: 100, LatencyNs: service.Seconds() * 1e9},
	})
	want := curve.OccupancyAt(lambda*lineBytes/1e9, lineBytes)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("backend n_avg = %.4f, OccupancyAt = %.4f (diverges > 2%%)", got, want)
	}
	if lw := lambda * service.Seconds(); math.Abs(want-lw) > 1e-9 {
		t.Fatalf("OccupancyAt = %v, want λ·W = %v", want, lw)
	}
}

// TestBackendNAvgDecays: with arrivals stopped, the estimate halves every
// half-life — stale load memories cannot repel traffic forever.
func TestBackendNAvgDecays(t *testing.T) {
	halfLife := time.Second
	b := testBackend(halfLife, 3, time.Second)
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		b.arrive(now)
		b.complete(50*time.Millisecond, true)
	}
	n0 := b.navg(now)
	if n0 <= 0 {
		t.Fatalf("no occupancy after a burst")
	}
	n1 := b.navg(now.Add(halfLife))
	if ratio := n1 / n0; math.Abs(ratio-0.5) > 0.01 {
		t.Fatalf("after one half-life n_avg ratio = %.3f, want 0.5", ratio)
	}
}

// TestBackendLoadTakesWorstSignal: the routing load is the max of in-flight
// count, the local λ·W estimate and the backend's self-reported occupancy.
func TestBackendLoadTakesWorstSignal(t *testing.T) {
	b := testBackend(time.Second, 3, time.Second)
	now := time.Unix(0, 0)
	if got := b.load(now); got != 0 {
		t.Fatalf("idle load = %v, want 0", got)
	}
	// Before any latency sample, in-flight is the only honest signal.
	b.arrive(now)
	b.arrive(now)
	if got := b.load(now); got != 2 {
		t.Fatalf("load with 2 in flight = %v, want 2", got)
	}
	b.complete(time.Millisecond, true)
	b.complete(time.Millisecond, true)
	// A probe reporting the backend's own limiter occupancy dominates when
	// it is the largest term (load this proxy cannot see).
	b.probeOK(7.5, brownout.B0, false)
	if got := b.load(now); got != 7.5 {
		t.Fatalf("load with reported n_avg 7.5 = %v, want 7.5", got)
	}
}

// TestBreakerTransitions drives the full circuit: closed under failures
// below the threshold, open at the threshold, rejecting during cooldown,
// one half-open trial after it, reopening on a failed trial, closing on
// success.
func TestBreakerTransitions(t *testing.T) {
	cooldown := 5 * time.Second
	b := testBackend(time.Second, 3, cooldown)
	now := time.Unix(0, 0)

	for i := 0; i < 2; i++ {
		b.failure(now)
		if !b.allow(now) {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.failure(now)
	if st, healthy := b.snapshotState(); st != BreakerOpen || healthy {
		t.Fatalf("after 3 failures: state %v healthy %v, want open/unhealthy", st, healthy)
	}
	if b.allow(now.Add(cooldown - time.Millisecond)) {
		t.Fatalf("open breaker admitted during cooldown")
	}

	trialAt := now.Add(cooldown)
	if !b.allow(trialAt) {
		t.Fatalf("no half-open trial after cooldown")
	}
	if st, _ := b.snapshotState(); st != BreakerHalfOpen {
		t.Fatalf("state after trial grant = %v, want half-open", st)
	}
	if b.allow(trialAt) {
		t.Fatalf("second request admitted while the trial is in flight")
	}

	// A failed trial reopens immediately and re-arms the cooldown.
	b.failure(trialAt)
	if st, _ := b.snapshotState(); st != BreakerOpen {
		t.Fatalf("state after failed trial = %v, want open", st)
	}
	if b.allow(trialAt.Add(cooldown - time.Millisecond)) {
		t.Fatalf("reopened breaker admitted before a full fresh cooldown")
	}
	retryAt := trialAt.Add(cooldown)
	if !b.allow(retryAt) {
		t.Fatalf("no second trial after the re-armed cooldown")
	}

	// A successful trial closes the breaker and clears the streak.
	b.success()
	if st, healthy := b.snapshotState(); st != BreakerClosed || !healthy {
		t.Fatalf("after successful trial: state %v healthy %v, want closed/healthy", st, healthy)
	}
	if !b.allow(retryAt) {
		t.Fatalf("closed breaker rejected")
	}
	// The streak reset means two fresh failures still do not open it.
	b.failure(retryAt)
	b.failure(retryAt)
	if st, _ := b.snapshotState(); st != BreakerClosed {
		t.Fatalf("failure streak not reset by success")
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	} {
		if got := st.String(); got != want {
			t.Fatalf("state %d String() = %q, want %q", st, got, want)
		}
	}
}
