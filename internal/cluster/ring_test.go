package cluster

import (
	"fmt"
	"testing"
)

// fingerprintKeys fabricates n keys shaped like the affinity keys the proxy
// actually routes (runner-cache identities).
func fingerprintKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("run|KNL|fp%08x|c64|t%d|w2000|g1|wf0.1|ss0.6|se0.5", i*2654435761, 1+i%4)
	}
	return keys
}

// TestRingBalance pins the balance property the vnode count buys: across
// 1k realistic keys on three backends, no backend owns more than twice the
// least-loaded backend's share.
func TestRingBalance(t *testing.T) {
	names := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	r := NewRing(names, 0)
	counts := map[string]int{}
	for _, k := range fingerprintKeys(1000) {
		owner := r.Owner(k)
		if owner == "" {
			t.Fatalf("no owner for %q", k)
		}
		counts[owner]++
	}
	if len(counts) != len(names) {
		t.Fatalf("only %d of %d backends own keys: %v", len(counts), len(names), counts)
	}
	lo, hi := 1<<30, 0
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi > 2*lo {
		t.Fatalf("imbalance: max %d > 2x min %d (%v)", hi, lo, counts)
	}
}

// TestRingRemovalMovesOnlyOwnedKeys is the consistent-hash stability
// property: removing one backend moves exactly the keys it owned (~1/N of
// the keyspace) to new owners, and no other assignment changes.
func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1"}
	full := NewRing(names, 0)
	reduced := NewRing(names[:2], 0)

	keys := fingerprintKeys(1000)
	moved := 0
	for _, k := range keys {
		before, after := full.Owner(k), reduced.Owner(k)
		if before == "c:1" {
			moved++
			if after == "c:1" {
				t.Fatalf("key %q still owned by removed backend", k)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %q moved %s -> %s though its owner never left", k, before, after)
		}
	}
	// ~1/3 of keys belonged to the removed node; allow generous slack for
	// hash variance, but the movement must be a minority of the keyspace.
	if moved < len(keys)/6 || moved > len(keys)/2 {
		t.Fatalf("moved %d of %d keys; want roughly 1/3", moved, len(keys))
	}
}

// TestRingOwnerWhereMatchesMembershipChange: skipping an ineligible backend
// (breaker open) must assign every key exactly as a ring without that
// backend would — failover routing and membership rehash agree.
func TestRingOwnerWhereMatchesMembershipChange(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1"}
	full := NewRing(names, 0)
	reduced := NewRing([]string{"a:1", "c:1"}, 0)
	eligible := func(name string) bool { return name != "b:1" }
	for _, k := range fingerprintKeys(500) {
		got, ok := full.OwnerWhere(k, eligible)
		if !ok {
			t.Fatalf("no eligible owner for %q", k)
		}
		if want := reduced.Owner(k); got != want {
			t.Fatalf("key %q: OwnerWhere skipping b:1 = %s, reduced ring = %s", k, got, want)
		}
	}
}

func TestRingDegenerateCases(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("x"); owner != "" {
		t.Fatalf("empty ring returned owner %q", owner)
	}
	if _, ok := NewRing(nil, 0).OwnerWhere("x", nil); ok {
		t.Fatalf("empty ring claimed an owner")
	}
	one := NewRing([]string{"solo:1"}, 4)
	for _, k := range fingerprintKeys(10) {
		if owner := one.Owner(k); owner != "solo:1" {
			t.Fatalf("single-node ring returned %q", owner)
		}
	}
	if _, ok := one.OwnerWhere("x", func(string) bool { return false }); ok {
		t.Fatalf("fully ineligible ring claimed an owner")
	}
}
