package cluster

import (
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"strings"
	"sync"
	"testing"
	"time"

	"littleslaw/internal/faults"
	"littleslaw/internal/metrics"
)

// connTracker records every connection's latest http.ConnState so a test
// can assert none is stranded mid-response.
type connTracker struct {
	mu    sync.Mutex
	state map[net.Conn]http.ConnState
}

func (c *connTracker) hook(conn net.Conn, s http.ConnState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == nil {
		c.state = map[net.Conn]http.ConnState{}
	}
	c.state[conn] = s
}

// active counts connections currently in StateActive — a request being
// processed or a response not yet fully consumed by the client.
func (c *connTracker) active() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.state {
		if s == http.StateActive {
			n++
		}
	}
	return n
}

// TestHedgedLoserConnectionsNotLeaked: when a hedged GET resolves, the
// losing lane's response body must be drained and closed (or its request
// canceled outright) so the connection leaves StateActive. A leak here
// strands one backend connection per hedged request — invisible in a quick
// test, fatal under sustained load. The forwarding client guarantees it by
// reading every body to EOF under a deferred Close; this pins that contract
// with ConnState hooks on both backends.
func TestHedgedLoserConnectionsNotLeaked(t *testing.T) {
	stubs := make([]*stubBackend, 2)
	trackers := make([]*connTracker, 2)
	urls := make([]string, 2)
	for i := range stubs {
		s := &stubBackend{}
		tr := &connTracker{}
		s.ts = httptest.NewUnstartedServer(http.HandlerFunc(s.handler))
		s.ts.Config.ConnState = tr.hook
		s.ts.Start()
		s.name = strings.TrimPrefix(s.ts.URL, "http://")
		t.Cleanup(s.ts.Close)
		stubs[i], trackers[i], urls[i] = s, tr, s.ts.URL
	}
	inj, err := faults.New(1)
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	p, err := New(Config{
		Backends:          urls,
		ProbeInterval:     -1,
		HedgeDelay:        30 * time.Millisecond,
		ClientMaxAttempts: 1,
		ClientTimeout:     5 * time.Second,
		BreakerFailures:   3,
		BreakerCooldown:   time.Minute,
		Registry:          metrics.NewRegistry(),
		FaultInjector:     inj,
		Seed:              42,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(p.Close)

	slow, fast := stubs[0], stubs[1]
	slow.delay.Store(int64(300 * time.Millisecond))
	// Tip the load order so the slow backend is the primary.
	p.backends[fast.name].arrive(time.Now())

	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/platforms")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if _, err := httputil.DumpResponse(resp, true); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get %d: status %d", i, resp.StatusCode)
		}
	}
	if slow.hits.Load() == 0 || fast.hits.Load() == 0 {
		t.Fatalf("hits slow=%d fast=%d, want both backends raced", slow.hits.Load(), fast.hits.Load())
	}
	if p.hedges.Value() == 0 {
		t.Fatal("no hedges fired; test did not exercise the loser path")
	}

	// Every loser lane must leave StateActive: drained to idle, or closed
	// by the cancel. Allow the slow handlers time to unwind.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if trackers[0].active() == 0 && trackers[1].active() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stranded connections: slow backend %d active, fast backend %d active — a hedge loser's body was not drained/closed",
				trackers[0].active(), trackers[1].active())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
