// The consistent-hash ring: affinity half of the routing algebra. Each
// backend contributes VNodes points on a 64-bit circle; a key is owned by
// the first point clockwise from its hash. Balance comes from vnode count
// (the ring_test property pins max/min ≤ 2 across 1k fingerprints) and
// stability from the construction: when a backend leaves, exactly the keys
// it owned move to their clockwise successors — ~1/N of the keyspace —
// while every other assignment is untouched, so a node failure invalidates
// one backend's worth of cache affinity, not the fleet's.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring over backend names. Build with
// NewRing; lookups are safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	names  int
}

type ringPoint struct {
	hash uint64
	name string
}

// DefaultVNodes is the per-backend virtual-node count: enough points that
// a three-node ring balances well within 2× over realistic key counts,
// cheap enough that construction stays trivial.
const DefaultVNodes = 160

// NewRing builds a ring with vnodes points per name (<= 0 = DefaultVNodes).
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{names: len(names), points: make([]ringPoint, 0, len(names)*vnodes)}
	for _, n := range names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hashKey(fmt.Sprintf("%s#%d", n, i)), n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
	return r
}

// Owner returns the backend owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	name, _ := r.OwnerWhere(key, nil)
	return name
}

// OwnerWhere returns the first backend clockwise from key's hash that
// satisfies eligible (nil = all). Walking clockwise past ineligible owners
// is the failover rule itself: a dead backend's keys land on exactly the
// successors that would own them if it left the ring, so breaker-driven
// rerouting and membership-change rehashing agree.
func (r *Ring) OwnerWhere(key string, eligible func(name string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	rejected := make(map[string]bool, r.names)
	for off := 0; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)]
		if rejected[p.name] {
			continue
		}
		if eligible == nil || eligible(p.name) {
			return p.name, true
		}
		rejected[p.name] = true
		if len(rejected) == r.names {
			return "", false
		}
	}
	return "", false
}

// hashKey is FNV-64a with a splitmix64 finisher. FNV alone distributes
// poorly over inputs differing only in a short suffix (the "#<i>" vnode
// counter), which skews vnode placement; the finisher's avalanche spreads
// those deltas over all 64 bits.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
