package cluster

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"littleslaw/internal/client"
	"littleslaw/internal/experiments"
	"littleslaw/internal/faults"
	"littleslaw/internal/metrics"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/runner"
	"littleslaw/internal/service"
)

// bouncyBackend is an llserved instance on a real net.Listener so it can be
// shut down and restarted on the same address — the thing httptest servers
// cannot do, and the thing a rolling restart is.
type bouncyBackend struct {
	addr string
	srv  *service.Server
	http *http.Server
}

func (b *bouncyBackend) url() string  { return "http://" + b.addr }
func (b *bouncyBackend) name() string { return b.addr }

// start boots a fresh service on addr ("" = pick a port) and serves it.
func startBouncy(t *testing.T, addr string) *bouncyBackend {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	// Rebinding the same address immediately after close can transiently
	// fail; the restart path retries briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	inj, err := faults.New(1)
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	srv := service.New(service.Config{
		Registry:      metrics.NewRegistry(),
		SimRunner:     runner.New(64),
		LimitCeiling:  64,
		FaultInjector: inj,
		ProfileFor: func(_ context.Context, p *platform.Platform) (*queueing.Curve, error) {
			return experiments.PaperProfileFor(p)
		},
	})
	b := &bouncyBackend{
		addr: ln.Addr().String(),
		srv:  srv,
		http: &http.Server{Handler: srv.Handler()},
	}
	go b.http.Serve(ln)
	return b
}

// stop walks the drain ladder the way cmd/llserved does on SIGTERM: flag
// draining (healthz flips, new work sheds 503), wait for the prober to
// reroute and for in-flight work to finish, then close the listener.
func (b *bouncyBackend) stop(t *testing.T, proxySees func() bool) {
	t.Helper()
	b.srv.BeginDrain()
	deadline := time.Now().Add(3 * time.Second)
	for !proxySees() {
		if time.Now().After(deadline) {
			t.Fatal("proxy never saw the backend draining")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for b.srv.InFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("backend still has %d in-flight requests past the drain deadline", b.srv.InFlight())
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := b.http.Shutdown(ctx); err != nil {
		t.Fatalf("backend shutdown: %v", err)
	}
}

// TestChaosRollingRestart bounces one of three backends under closed-loop
// load: drain, wait for the proxy's probe to reroute, close the listener,
// restart on the same address, and verify the proxy folds it back into
// rotation — all with zero client-visible failures. This is the drain
// lifecycle's acceptance run: the window between "listener closes" and
// "probe notices" never exists, because the probe noticed first.
func TestChaosRollingRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("rolling restart needs its traffic window")
	}
	backends := make([]*bouncyBackend, 3)
	urls := make([]string, len(backends))
	for i := range backends {
		backends[i] = startBouncy(t, "")
		urls[i] = backends[i].url()
	}
	t.Cleanup(func() {
		for _, b := range backends {
			b.http.Close()
		}
	})

	p, err := New(Config{
		Backends:         urls,
		OccupancyCeiling: 1000,
		RateHalfLife:     time.Second,
		// Fast probes: the drain window a restart waits for is one probe
		// interval, not a human-scale health-check period.
		ProbeInterval:   50 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
		BreakerFailures: 3,
		// Short cooldown so the restarted backend's breaker (opened while
		// its listener was closed) half-opens quickly; the next good probe
		// closes it outright.
		BreakerCooldown:   200 * time.Millisecond,
		HedgeDelay:        -1,
		ClientMaxAttempts: 1, // failover across backends, not in-place retry
		Registry:          metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	p.Start()
	defer p.Close()
	proxyTS := httptest.NewServer(p.Handler())
	defer proxyTS.Close()

	// Wait for the first probe round so every backend is marked healthy.
	deadline := time.Now().Add(2 * time.Second)
	for {
		healthy := 0
		for _, b := range backends {
			if _, ok := p.backends[b.name()].snapshotState(); ok {
				healthy++
			}
		}
		if healthy == len(backends) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d backends healthy after startup", healthy, len(backends))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Closed-loop load through the proxy for the whole bounce. The
	// measurement-path analyze is instant (no simulation), so the load is
	// routing traffic, not CPU: the test is about where requests go.
	const workers = 8
	body := map[string]any{
		"platform":    "SKL",
		"measurement": map[string]any{"bandwidth_gbs": 80},
	}
	var okCount, failCount atomic.Int64
	var failOnce sync.Once
	var firstFail error
	phaseEnd := time.Now().Add(3 * time.Second)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.New(client.Config{
				BaseURL:     proxyTS.URL,
				Timeout:     10 * time.Second,
				MaxAttempts: 8,
				Backoff:     25 * time.Millisecond,
				BudgetRatio: -1,
				Seed:        int64(w + 1),
			})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			for time.Now().Before(phaseEnd) {
				var out map[string]any
				if err := cl.PostJSON(context.Background(), "/v1/analyze", body, &out); err != nil {
					failCount.Add(1)
					failOnce.Do(func() { firstFail = err })
					continue
				}
				okCount.Add(1)
			}
		}(w)
	}

	// ---- The bounce: drain, close, restart on the same address ----
	time.Sleep(500 * time.Millisecond)
	bounced := backends[0]
	name := bounced.name()
	bounced.stop(t, func() bool {
		_, draining := p.backends[name].degradation()
		return draining
	})
	// Listener closed. The proxy keeps the stale draining flag (and soon an
	// open breaker) until a probe succeeds again, so nothing routes here.
	time.Sleep(200 * time.Millisecond)
	restarted := startBouncy(t, bounced.addr)
	backends[0] = restarted

	// The probe loop must fold the restarted backend back in: breaker
	// closed, healthy, no longer draining.
	forwardsAtRestart := p.latency.With(name).Count()
	recoverBy := time.Now().Add(3 * time.Second)
	for {
		st, healthy := p.backends[name].snapshotState()
		_, draining := p.backends[name].degradation()
		if st == BreakerClosed && healthy && !draining {
			break
		}
		if time.Now().After(recoverBy) {
			t.Fatalf("restarted backend never recovered: breaker %v healthy %v draining %v", st, healthy, draining)
		}
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()

	if n := failCount.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed across the rolling restart; first: %v",
			n, n+okCount.Load(), firstFail)
	}
	if n := okCount.Load(); n < 100 {
		t.Fatalf("only %d successes across the run; the load never exercised the bounce", n)
	}
	if after := p.latency.With(name).Count(); after <= forwardsAtRestart {
		t.Errorf("restarted backend received no forwards after rejoining (%d before, %d after)",
			forwardsAtRestart, after)
	}
	t.Logf("rolling restart: %d requests, 0 failures; %s drained, restarted and served %d more forwards",
		okCount.Load(), name, p.latency.With(name).Count()-forwardsAtRestart)
}
