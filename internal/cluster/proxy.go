// Package cluster is the Little's-Law-aware scale-out tier: a reverse
// proxy sharding /v1/* traffic across N llserved backends. Routing is an
// algebra of two terms:
//
//   - Affinity: requests hash by the canonical identity of their cacheable
//     work (the runner cache key for simulated analyses, the platform for
//     profile work, table×scale for tables) onto a consistent-hash ring, so
//     identical analyses revisit the backend whose caches already hold the
//     answer.
//   - Occupancy: each backend carries a live n_avg = λ·W estimate (decayed
//     arrival counter × latency EWMA — internal/limit's accounting, lifted
//     to the fleet). When the affinity owner's estimate exceeds the
//     configured ceiling, the request spills to the least-loaded backend
//     instead: Equation 1 as the spillover signal.
//
// Around that core: /healthz-driven probing with a per-backend circuit
// breaker (open on consecutive transport failures, half-open trials),
// hedged requests for idempotent GETs, stream-pinned routing for
// /v1/watch/{stream} (every subscriber must reach the broker's owner),
// forwarding through the resilient internal/client, llproxy_* per-backend
// metrics, and two fault sites (cluster.forward, cluster.probe).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"littleslaw/internal/brownout"
	"littleslaw/internal/buildinfo"
	"littleslaw/internal/client"
	"littleslaw/internal/faults"
	"littleslaw/internal/metrics"
	"littleslaw/internal/service"
	"littleslaw/internal/stream"
	"littleslaw/internal/trace"
)

// The cluster tier's fault-injection sites: ForwardFaultSite is evaluated
// once per proxied request (unary and stream) before any backend is
// contacted; ProbeFaultSite once per health probe.
const (
	ForwardFaultSite = "cluster.forward"
	ProbeFaultSite   = "cluster.probe"
)

// Config tunes a Proxy. Zero values take the documented defaults.
type Config struct {
	// Backends are the llserved base URLs to shard across (required,
	// distinct hosts).
	Backends []string
	// OccupancyCeiling is the per-backend n_avg above which affinity is
	// overridden and the request spills to the least-loaded backend
	// (0 = 32).
	OccupancyCeiling float64
	// RateHalfLife is the arrival-rate estimator's half-life (0 = 10s).
	RateHalfLife time.Duration
	// LatencyAlpha is the latency EWMA weight in (0, 1] (0 = 0.2).
	LatencyAlpha float64
	// ProbeInterval spaces background /healthz probes (0 = 2s; negative
	// disables the background prober — tests drive ProbeAll directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (0 = 1s).
	ProbeTimeout time.Duration
	// BreakerFailures is the consecutive transport-failure count that opens
	// a backend's breaker (0 = 3).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects before granting a
	// half-open trial (0 = 5s).
	BreakerCooldown time.Duration
	// HedgeDelay is how long an idempotent GET waits on its primary before
	// opening a second lane to the next candidate (0 = 250ms; negative
	// disables hedging).
	HedgeDelay time.Duration
	// VNodes is the consistent-hash ring's per-backend virtual-node count
	// (0 = DefaultVNodes).
	VNodes int
	// ClientTimeout bounds each forwarded attempt (0 = 10s).
	ClientTimeout time.Duration
	// ClientMaxAttempts caps attempts per forwarded request, first try
	// included (0 = 2: one quick retry, then failover to another backend).
	ClientMaxAttempts int
	// Seed makes backend-client backoff jitter deterministic (0 = clock).
	Seed int64
	// TraceCapacity bounds the ring of finished forward traces served by
	// GET /v1/trace/{id} and GET /v1/traces (0 = trace.DefaultCapacity).
	TraceCapacity int
	// Registry receives the proxy metrics (nil = a fresh registry).
	Registry *metrics.Registry
	// FaultInjector backs the cluster.* sites (nil = faults.Global()).
	FaultInjector *faults.Injector
	// Now is the clock (tests; nil = time.Now).
	Now func() time.Time
}

func (c *Config) normalize() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("cluster: at least one backend is required")
	}
	if c.OccupancyCeiling <= 0 {
		c.OccupancyCeiling = 32
	}
	if c.RateHalfLife <= 0 {
		c.RateHalfLife = 10 * time.Second
	}
	if c.LatencyAlpha <= 0 || c.LatencyAlpha > 1 {
		c.LatencyAlpha = 0.2
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 250 * time.Millisecond
	}
	if c.ClientTimeout <= 0 {
		c.ClientTimeout = 10 * time.Second
	}
	if c.ClientMaxAttempts <= 0 {
		c.ClientMaxAttempts = 2
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.FaultInjector == nil {
		c.FaultInjector = faults.Global()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return nil
}

// Proxy is the scale-out tier. Construct with New; Handler is safe for
// concurrent use. Start launches the background prober, Close stops it.
type Proxy struct {
	cfg      Config
	reg      *metrics.Registry
	faults   *faults.Injector
	ring     *Ring
	backends map[string]*Backend
	order    []*Backend // stable name order, for deterministic iteration
	mux      *http.ServeMux

	traces      *trace.Sink
	traceBroker *stream.BrokerOf[trace.Record]

	requests         *metrics.CounterVec
	latency          *metrics.HistogramVec
	inflight         *metrics.Gauge
	hedges           *metrics.Counter
	failovers        *metrics.Counter
	overrides        *metrics.Counter
	degradedReroutes *metrics.Counter
	noBackend        *metrics.Counter
	probeFailures    *metrics.CounterVec
	streamClients    *metrics.GaugeVec

	draining  atomic.Bool
	drainOnce sync.Once

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Proxy over cfg.Backends.
func New(cfg Config) (*Proxy, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:      cfg,
		reg:      cfg.Registry,
		faults:   cfg.FaultInjector,
		backends: make(map[string]*Backend, len(cfg.Backends)),
		stop:     make(chan struct{}),
	}
	p.traces = trace.NewSink(cfg.TraceCapacity)
	p.traceBroker = stream.NewBrokerOf[trace.Record](cfg.TraceCapacity,
		func(rec *trace.Record, seq int) { rec.Seq = seq })
	p.traces.OnFinish = func(t *trace.Trace) { p.traceBroker.Publish(trace.Record{Trace: t.View()}) }
	names := make([]string, 0, len(cfg.Backends))
	for i, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: backend %q: want an absolute URL like http://host:port", raw)
		}
		name := u.Host
		if _, dup := p.backends[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %q", name)
		}
		seed := cfg.Seed
		if seed != 0 {
			seed += int64(i) // distinct jitter streams per backend
		}
		cl, err := client.New(client.Config{
			BaseURL:     raw,
			Timeout:     cfg.ClientTimeout,
			MaxAttempts: cfg.ClientMaxAttempts,
			Seed:        seed,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %q: %w", raw, err)
		}
		b := &Backend{
			Name:     name,
			URL:      strings.TrimRight(raw, "/"),
			cl:       cl,
			httpc:    &http.Client{},
			tau:      cfg.RateHalfLife.Seconds() / ln2,
			alpha:    cfg.LatencyAlpha,
			maxFails: cfg.BreakerFailures,
			cooldown: cfg.BreakerCooldown,
			healthy:  true, // innocent until a probe or forward proves otherwise
		}
		p.backends[name] = b
		names = append(names, name)
	}
	sort.Strings(names)
	for _, n := range names {
		p.order = append(p.order, p.backends[n])
	}
	p.ring = NewRing(names, cfg.VNodes)
	p.registerMetrics()
	p.routes()
	return p, nil
}

const ln2 = 0.6931471805599453

func (p *Proxy) registerMetrics() {
	p.requests = p.reg.CounterVec("llproxy_requests_total",
		"Forwarded requests by backend and outcome (ok, shed, client_error, server_error, error, canceled, stream).",
		"backend", "outcome")
	p.latency = p.reg.HistogramVec("llproxy_request_seconds",
		"Forwarded unary request latency by backend (transport errors excluded).", nil, "backend")
	p.inflight = p.reg.Gauge("llproxy_inflight_requests",
		"Requests currently inside the proxy (directly sampled occupancy).")
	p.hedges = p.reg.Counter("llproxy_hedges_total",
		"Secondary lanes opened for idempotent GETs whose primary outlived the hedge delay.")
	p.failovers = p.reg.Counter("llproxy_failovers_total",
		"Requests retried against another backend after a failure or retryable status.")
	p.overrides = p.reg.Counter("llproxy_affinity_overrides_total",
		"Requests routed away from their affinity owner because its estimated n_avg exceeded the ceiling.")
	p.degradedReroutes = p.reg.Counter("llproxy_degraded_reroutes_total",
		"Requests routed away from their affinity owner because it reported brownout B2+ while a full-fidelity backend was available.")
	p.noBackend = p.reg.Counter("llproxy_no_backend_total",
		"Requests shed with 503 because every backend's breaker was open.")
	p.probeFailures = p.reg.CounterVec("llproxy_probe_failures_total",
		"Failed /healthz probes by backend.", "backend")
	p.streamClients = p.reg.GaugeVec("llproxy_stream_clients",
		"Live proxied /v1/watch connections by backend.", "backend")
	p.reg.DerivedVec("llproxy_backend_navg",
		"Live per-backend Little's-Law occupancy estimate: decayed arrival rate x latency EWMA.",
		"backend", func() map[string]float64 {
			now := p.cfg.Now()
			m := make(map[string]float64, len(p.order))
			for _, b := range p.order {
				m[b.Name] = b.navg(now)
			}
			return m
		})
	p.reg.DerivedVec("llproxy_backend_reported_navg",
		"Each backend's own limiter n_avg from its last /healthz probe body.",
		"backend", func() map[string]float64 {
			m := make(map[string]float64, len(p.order))
			for _, b := range p.order {
				b.mu.Lock()
				m[b.Name] = b.reported
				b.mu.Unlock()
			}
			return m
		})
	p.reg.DerivedVec("llproxy_backend_up",
		"1 when the backend's last probe or forward succeeded, 0 when it is considered down.",
		"backend", func() map[string]float64 {
			m := make(map[string]float64, len(p.order))
			for _, b := range p.order {
				if _, healthy := b.snapshotState(); healthy {
					m[b.Name] = 1
				} else {
					m[b.Name] = 0
				}
			}
			return m
		})
	p.reg.DerivedVec("llproxy_breaker_state",
		"Per-backend circuit-breaker state: 0 closed, 1 open, 2 half-open.",
		"backend", func() map[string]float64 {
			m := make(map[string]float64, len(p.order))
			for _, b := range p.order {
				st, _ := b.snapshotState()
				m[b.Name] = float64(st)
			}
			return m
		})
	p.reg.DerivedVec("llproxy_backend_brownout_mode",
		"Each backend's brownout rung from its last /healthz probe (0 = full service, 4 = full shed).",
		"backend", func() map[string]float64 {
			m := make(map[string]float64, len(p.order))
			for _, b := range p.order {
				mode, _ := b.degradation()
				m[b.Name] = float64(mode)
			}
			return m
		})
	p.reg.DerivedVec("llproxy_backend_draining",
		"1 when the backend's last probe reported it draining for shutdown.",
		"backend", func() map[string]float64 {
			m := make(map[string]float64, len(p.order))
			for _, b := range p.order {
				if _, draining := b.degradation(); draining {
					m[b.Name] = 1
				} else {
					m[b.Name] = 0
				}
			}
			return m
		})
	p.reg.Derived("llproxy_draining",
		"1 once BeginDrain has been called on the proxy itself.",
		func() float64 {
			if p.draining.Load() {
				return 1
			}
			return 0
		})
	p.reg.Derived("llproxy_littles_law_concurrency",
		"The proxy's own n_avg from Little's Law: forwarded latency_sum over uptime.",
		func() float64 { return p.reg.LittleConcurrency(p.latency) })
	// Per-stage decomposition of the proxy's own W: route selection,
	// forward attempts, hedge/failover markers.
	p.traces.Register(p.reg, "llproxy_trace")
}

func (p *Proxy) routes() {
	p.mux = http.NewServeMux()
	p.mux.Handle("GET /healthz", http.HandlerFunc(p.handleHealthz))
	p.mux.Handle("GET /metrics", http.HandlerFunc(p.handleMetrics))
	p.mux.Handle("GET /v1/platforms", p.unary("platforms", true))
	p.mux.Handle("GET /v1/tables/{id}", p.unary("tables", true))
	p.mux.Handle("POST /v1/characterize", p.unary("characterize", false))
	p.mux.Handle("POST /v1/analyze", p.unary("analyze", false))
	p.mux.Handle("POST /v1/analyze/batch", p.unary("analyze_batch", false))
	p.mux.Handle("POST /v1/advise", p.unary("advise", false))
	p.mux.Handle("POST /v1/tune", p.unary("tune", false))
	p.mux.Handle("POST /v1/watch", http.HandlerFunc(p.handleWatchPost))
	p.mux.Handle("GET /v1/watch/{stream}", http.HandlerFunc(p.handleWatchSubscribe))
	p.mux.Handle("GET /v1/faults", http.HandlerFunc(p.handleFaultsFanout))
	p.mux.Handle("POST /v1/faults", http.HandlerFunc(p.handleFaultsFanout))
	// The proxy's own trace ring — forward/route/hedge spans, not the
	// backends' (each llserved serves its own /v1/trace; the
	// X-Backend-Trace-Id response header links the two tiers).
	p.mux.Handle("GET /v1/trace/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		service.ServeTrace(w, r, p.traces)
	}))
	p.mux.Handle("GET /v1/traces", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		service.ServeTraceTail(w, r, p.traceBroker, nil)
	}))
}

// Handler returns the proxy's HTTP handler.
func (p *Proxy) Handler() http.Handler { return p.mux }

// Registry returns the metrics registry serving /metrics.
func (p *Proxy) Registry() *metrics.Registry { return p.reg }

// Backends returns the backend names in stable order.
func (p *Proxy) Backends() []string {
	names := make([]string, len(p.order))
	for i, b := range p.order {
		names[i] = b.Name
	}
	return names
}

// Start launches the background prober (a no-op when ProbeInterval < 0).
func (p *Proxy) Start() {
	if p.cfg.ProbeInterval < 0 {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.ProbeAll(context.Background())
			}
		}
	}()
}

// Close stops the background prober and waits for it.
func (p *Proxy) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// BeginDrain flips the proxy into its terminal mode: /healthz reports
// "draining" (an upstream balancer stops sending here), every new forward
// — unary and stream — sheds with 503 + Retry-After, and the proxy's own
// trace tail receives a terminal "shutdown" record before its broker
// closes. Idempotent. The caller then polls InFlight to zero (up to its
// drain deadline) before closing the listener; relayed streams end when
// their clients or backends do, so a drain deadline still bounds them.
func (p *Proxy) BeginDrain() {
	p.drainOnce.Do(func() {
		p.draining.Store(true)
		p.traceBroker.Publish(trace.Record{Terminal: "shutdown"})
		p.traceBroker.Close()
	})
}

// Draining reports whether BeginDrain has been called.
func (p *Proxy) Draining() bool { return p.draining.Load() }

// InFlight returns the number of requests currently inside the proxy —
// the quantity a draining main loop polls to zero.
func (p *Proxy) InFlight() int64 { return p.inflight.Value() }

// shedDraining answers a request with 503 + Retry-After when the proxy is
// draining; true means the request was answered and must not be forwarded.
func (p *Proxy) shedDraining(w http.ResponseWriter) bool {
	if !p.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	p.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("proxy is draining for shutdown"))
	return true
}

// ProbeAll health-checks every backend once, concurrently.
func (p *Proxy) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range p.order {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			p.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

// probe is one /healthz check: a single unretried GET under ProbeTimeout.
// Any 200 closes the breaker (up, even if drowning); the JSON body's
// limiter n_avg feeds the routing signal so a backend overloaded by
// traffic this proxy cannot see still repels spillover.
func (p *Proxy) probe(ctx context.Context, b *Backend) {
	switch f := p.faults.Eval(ProbeFaultSite); f.Kind {
	case faults.KindLatency:
		f.Sleep(ctx)
	case faults.KindError:
		p.probeFailures.With(b.Name).Inc()
		b.failure(p.cfg.Now())
		return
	}
	pctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.URL+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := b.httpc.Do(req)
	if err != nil {
		p.probeFailures.With(b.Name).Inc()
		b.failure(p.cfg.Now())
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.probeFailures.With(b.Name).Inc()
		b.failure(p.cfg.Now())
		return
	}
	reported := 0.0
	mode := brownout.B0
	draining := false
	var h service.HealthzResponse
	// Tolerate non-JSON bodies: an older backend's plain "ok" is still up.
	if json.Unmarshal(body, &h) == nil {
		if h.LimiterNAvg != nil {
			reported = *h.LimiterNAvg
		}
		if h.BrownoutMode != "" {
			if m, err := brownout.Parse(h.BrownoutMode); err == nil {
				mode = m
			}
		}
		draining = h.Draining || h.Status == "draining"
	}
	b.probeOK(reported, mode, draining)
}

// ---- routing ----

// candidates returns the backends that may serve a request with the given
// affinity key, in preference order: the ring owner first (unless its
// occupancy estimate exceeds the ceiling, or it has browned out past B2
// while a full-fidelity backend is available, and the request is not
// pinned), then the remaining eligible backends — non-degraded before
// degraded, ascending load within each class. Backends whose last probe
// reported draining are skipped entirely while any alternative exists:
// their listener is about to close. Pinned requests (streams) always put
// the owner first — a subscriber must reach the broker's host — and only
// breaker or drain ineligibility reroutes them.
//
// The decision string names which rule chose the head candidate — "owner"
// (affinity), "pinned", "spill" (owner over the occupancy ceiling),
// "degraded" (owner browned out, fuller backend preferred), "load" (no
// affinity identity) — and becomes the trace's route span.
func (p *Proxy) candidates(key string, pinned bool) ([]*Backend, string) {
	now := p.cfg.Now()
	type cand struct {
		b        *Backend
		load     float64
		degraded bool
		draining bool
	}
	elig := make([]cand, 0, len(p.order))
	drainingN := 0
	for _, b := range p.order {
		if !b.allow(now) {
			continue
		}
		mode, draining := b.degradation()
		if draining {
			drainingN++
		}
		// B2+ means the backend would answer from the analytic model (or
		// shed outright) — worth routing around; B1 still serves full or
		// stale-but-real simulation results and keeps its affinity value.
		elig = append(elig, cand{b, b.load(now), mode >= brownout.B2, draining})
	}
	if len(elig) == 0 {
		return nil, ""
	}
	if drainingN > 0 && drainingN < len(elig) {
		kept := elig[:0]
		for _, c := range elig {
			if !c.draining {
				kept = append(kept, c)
			}
		}
		elig = kept
	}
	sort.SliceStable(elig, func(i, j int) bool {
		if elig[i].degraded != elig[j].degraded {
			return !elig[i].degraded
		}
		return elig[i].load < elig[j].load
	})
	out := make([]*Backend, len(elig))
	for i, c := range elig {
		out[i] = c.b
	}
	if key == "" {
		return out, "load"
	}
	owner, ok := p.ring.OwnerWhere(key, func(name string) bool {
		for _, c := range elig {
			if c.b.Name == name {
				return true
			}
		}
		return false
	})
	if !ok {
		return out, "load"
	}
	oi := 0
	for i, c := range elig {
		if c.b.Name == owner {
			oi = i
			break
		}
	}
	if !pinned && elig[oi].degraded && !elig[0].degraded {
		// The owner would answer approximately; a warm cache is worth less
		// than a full-fidelity answer elsewhere. The owner stays in the
		// list as a failover candidate — an approximate answer still beats
		// none.
		p.degradedReroutes.Inc()
		return out, "degraded"
	}
	if !pinned && elig[oi].load >= p.cfg.OccupancyCeiling {
		// Join-least-n_avg spillover: the owner is drowning, the sorted
		// order already leads with the least-loaded backend; the owner
		// stays available as a later failover candidate.
		if oi != 0 {
			p.overrides.Inc()
		}
		return out, "spill"
	}
	if oi != 0 {
		b := out[oi]
		copy(out[1:oi+1], out[:oi])
		out[0] = b
	}
	if pinned {
		return out, "pinned"
	}
	return out, "owner"
}

// affinityKey derives the routing identity for a unary route from the
// request. Undecodable or identity-free requests return "": routed by
// load, and the backend produces the proper error.
func affinityKey(route string, r *http.Request, body []byte) string {
	switch route {
	case "analyze", "advise":
		if req, err := service.DecodeAnalyzeRequest(body); err == nil {
			if key, ok := req.AffinityKey(); ok {
				return key
			}
		}
	case "analyze_batch":
		if req, err := service.DecodeBatchAnalyzeRequest(body); err == nil {
			if key, ok := req.AffinityKey(); ok {
				return key
			}
		}
	case "characterize":
		if req, err := service.DecodeCharacterizeRequest(body); err == nil {
			if key, ok := req.AffinityKey(); ok {
				return key
			}
		}
	case "tune":
		if req, err := service.DecodeTuneRequest(body); err == nil {
			if key, ok := req.AffinityKey(); ok {
				return key
			}
		}
	case "tables":
		scale := 1.0
		if v := r.URL.Query().Get("scale"); v != "" {
			fmt.Sscanf(v, "%g", &scale)
		}
		if key, ok := service.TableAffinityKey(r.PathValue("id"), scale); ok {
			return key
		}
	}
	return ""
}

// ---- unary forwarding ----

// unary builds the handler for a request/response route. hedgeable GETs
// race a second backend after HedgeDelay.
func (p *Proxy) unary(route string, hedgeable bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.inflight.Inc()
		defer p.inflight.Dec()
		start := time.Now()
		tr := p.traces.Start(route)
		w.Header().Set("X-Trace-Id", tr.ID())
		sw := &summaryWriter{ResponseWriter: w, tr: tr}
		defer func() {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			tr.Finish(status, time.Since(start))
			p.traces.Done(tr)
		}()
		r = r.WithContext(trace.NewContext(r.Context(), tr))
		if p.shedDraining(sw) {
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(sw, r.Body, service.MaxBodyBytes))
		if err != nil {
			p.writeError(sw, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
			return
		}
		if !p.forwardFault(sw, r) {
			return
		}
		key := affinityKey(route, r, body)
		cands, decision := p.candidates(key, false)
		if len(cands) == 0 {
			p.shedNoBackend(sw)
			return
		}
		// The routing decision as a zero-duration marker span: which rule
		// won and which backend leads the candidate order.
		tr.Add("route", decision+" "+cands[0].Name, 0, 0)
		path := forwardPath(r)
		var res *client.Result
		if hedgeable && r.Method == http.MethodGet && p.cfg.HedgeDelay > 0 && len(cands) > 1 {
			res, err = p.hedged(r.Context(), cands, path)
		} else {
			res, err = p.sequential(r.Context(), cands, r.Method, path, r.Header.Get("Content-Type"), body)
		}
		if err != nil || res == nil {
			status := http.StatusBadGateway
			if r.Context().Err() != nil {
				status = http.StatusGatewayTimeout
			}
			if err == nil {
				err = fmt.Errorf("no backend produced a response")
			}
			p.writeError(sw, status, fmt.Errorf("forwarding failed: %w", err))
			return
		}
		p.respond(sw, res)
	})
}

// summaryWriter records the first status written and stamps the
// X-Trace-Summary header at that moment — the spans recorded so far —
// before headers go out.
type summaryWriter struct {
	http.ResponseWriter
	tr     *trace.Trace
	status int
}

func (w *summaryWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		w.ResponseWriter.Header().Set("X-Trace-Summary", w.tr.Summary())
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *summaryWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush/SetWriteDeadline, which the stream relay depends on.
func (w *summaryWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// forwardFault evaluates the cluster.forward site; false means the request
// was answered (injected error) and must not be forwarded.
func (p *Proxy) forwardFault(w http.ResponseWriter, r *http.Request) bool {
	switch f := p.faults.Eval(ForwardFaultSite); f.Kind {
	case faults.KindLatency:
		f.Sleep(r.Context())
	case faults.KindError:
		// The proxy's own transient failure: 502 with a short hint, the
		// shape a resilient client retries.
		w.Header().Set("Retry-After", "1")
		p.writeError(w, http.StatusBadGateway, f.Err())
		return false
	case faults.KindPanic:
		panic(f.PanicValue())
	}
	return true
}

func forwardPath(r *http.Request) string {
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	return path
}

// failoverWorthy reports whether a status is worth trying another backend:
// the shed and transient-5xx family. Every /v1 verb is a read-only
// analysis, so re-executing elsewhere is safe.
func failoverWorthy(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// sequential walks the candidates in order until one yields a
// non-failover-worthy response; the last response (or error) is returned
// when all do.
func (p *Proxy) sequential(ctx context.Context, cands []*Backend, method, path, contentType string, body []byte) (*client.Result, error) {
	var lastRes *client.Result
	var lastErr error
	for i, b := range cands {
		if i > 0 {
			p.failovers.Inc()
			trace.Add(ctx, "failover", b.Name, 0, 0)
		}
		res, err := p.tryBackend(ctx, b, method, path, contentType, body)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		lastRes, lastErr = res, nil
		if !failoverWorthy(res.Status) {
			return res, nil
		}
	}
	return lastRes, lastErr
}

// hedged races candidates for an idempotent GET: the primary fires
// immediately, a second lane opens when the primary outlives HedgeDelay
// (or fails), and the first good response wins; losers are canceled.
func (p *Proxy) hedged(ctx context.Context, cands []*Backend, path string) (*client.Result, error) {
	type outcome struct {
		res *client.Result
		err error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(cands))
	next := 0
	fire := func() {
		b := cands[next]
		next++
		go func() {
			res, err := p.tryBackend(hctx, b, http.MethodGet, path, "", nil)
			ch <- outcome{res, err}
		}()
	}
	fire()
	pending := 1
	timer := time.NewTimer(p.cfg.HedgeDelay)
	defer timer.Stop()
	var last outcome
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
			// The hedge proper: at most one speculative lane on top of the
			// primary; failures below may still walk further candidates.
			if next < len(cands) && next < 2 {
				p.hedges.Inc()
				trace.Add(ctx, "hedge", cands[next].Name, 0, 0)
				fire()
				pending++
			}
		case o := <-ch:
			pending--
			if o.err == nil && !failoverWorthy(o.res.Status) {
				return o.res, nil
			}
			last = o
			if next < len(cands) {
				p.failovers.Inc()
				trace.Add(ctx, "failover", cands[next].Name, 0, 0)
				fire()
				pending++
			} else if pending == 0 {
				return last.res, last.err
			}
		}
	}
}

// tryBackend forwards one unary request through the backend's resilient
// client, feeding the occupancy estimator, the breaker and the metrics.
func (p *Proxy) tryBackend(ctx context.Context, b *Backend, method, path, contentType string, body []byte) (*client.Result, error) {
	b.arrive(p.cfg.Now())
	begin := time.Now()
	res, err := b.cl.Do(ctx, method, path, contentType, body)
	elapsed := time.Since(begin)
	b.complete(elapsed, err == nil)
	if err != nil {
		if ctx.Err() != nil {
			// A canceled hedge lane or an expired request says nothing
			// about the backend's health.
			p.requests.With(b.Name, "canceled").Inc()
			trace.Add(ctx, "forward", b.Name+" canceled", 0, elapsed)
			return nil, err
		}
		b.failure(p.cfg.Now())
		p.requests.With(b.Name, "error").Inc()
		trace.Add(ctx, "forward", b.Name+" error", 0, elapsed)
		return nil, err
	}
	// Any HTTP response — a shed, even a 500 — proves the process is alive;
	// the breaker guards against unreachable backends, not unhappy ones.
	b.success()
	p.latency.With(b.Name).Observe(elapsed.Seconds())
	p.requests.With(b.Name, outcomeOf(res.Status)).Inc()
	// Forward attempts are leaf spans with the measured wall time: hedge
	// lanes run concurrently, so a hedged trace's forward spans may sum
	// past the request's W by design (work time, not wall time).
	trace.Add(ctx, "forward", b.Name+" "+outcomeOf(res.Status), 0, elapsed)
	return res, nil
}

func outcomeOf(status int) string {
	switch {
	case status == http.StatusTooManyRequests:
		return "shed"
	case status >= 200 && status < 300:
		return "ok"
	case status >= 500:
		return "server_error"
	default:
		return "client_error"
	}
}

// respond relays the backend's final response.
func (p *Proxy) respond(w http.ResponseWriter, res *client.Result) {
	ct := res.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	h := w.Header()
	h.Set("Content-Type", ct)
	h.Set("X-Content-Type-Options", "nosniff")
	// Degradation markers relay untouched: a client behind the proxy must
	// see the same brownout honesty a direct client would.
	for _, k := range []string{"Retry-After", "Cache-Control", "X-Brownout-Mode", "X-Degraded"} {
		if v := res.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	// The backend's own trace id, relayed under a distinct name so one
	// response links both tiers' waterfalls (the proxy's X-Trace-Id is its
	// own; fetch the backend's from that backend's /v1/trace).
	if v := res.Header.Get("X-Trace-Id"); v != "" {
		h.Set("X-Backend-Trace-Id", v)
	}
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

func (p *Proxy) shedNoBackend(w http.ResponseWriter) {
	p.noBackend.Inc()
	// The cooldown is when the next half-open trial can fire; retrying
	// sooner cannot succeed.
	w.Header().Set("Retry-After", retryAfterSeconds(p.cfg.BreakerCooldown))
	p.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no healthy backends"))
}

func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

func (p *Proxy) writeError(w http.ResponseWriter, status int, err error) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Content-Type-Options", "nosniff")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(service.ErrorResponse{Error: err.Error()})
}

// ---- streams ----

// handleWatchPost routes POST /v1/watch: named streams pin to the ring
// owner of their name (so GET /v1/watch/{stream} subscribers find the
// broker), ad-hoc streams join the least-loaded backend.
func (p *Proxy) handleWatchPost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxBodyBytes))
	if err != nil {
		p.writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	key := ""
	// A loose parse on purpose: only the stream name routes; full
	// validation is the backend's job.
	var probe struct {
		Stream string `json:"stream"`
	}
	if json.Unmarshal(body, &probe) == nil && probe.Stream != "" {
		key = service.StreamAffinityKey(probe.Stream)
	}
	p.forwardStream(w, r, "watch", key, key != "", body)
}

// handleWatchSubscribe routes GET /v1/watch/{stream} to the stream's
// pinned owner.
func (p *Proxy) handleWatchSubscribe(w http.ResponseWriter, r *http.Request) {
	key := service.StreamAffinityKey(r.PathValue("stream"))
	p.forwardStream(w, r, "watch_subscribe", key, true, nil)
}

// forwardStream proxies a long-lived NDJSON/SSE connection: raw
// passthrough with a per-chunk flush, outside the unary client (which
// buffers whole responses and retries — wrong on both counts for a
// stream). Stream lifetimes do not feed the λ·W estimator: a healthy
// stream lasts as long as its client, which says nothing about backend
// service time. They are accounted by llproxy_stream_clients instead.
func (p *Proxy) forwardStream(w http.ResponseWriter, r *http.Request, route, key string, pinned bool, body []byte) {
	p.inflight.Inc()
	defer p.inflight.Dec()
	start := time.Now()
	tr := p.traces.Start(route)
	w.Header().Set("X-Trace-Id", tr.ID())
	sw := &summaryWriter{ResponseWriter: w, tr: tr}
	w = sw
	defer func() {
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		tr.Finish(status, time.Since(start))
		p.traces.Done(tr)
	}()
	if p.shedDraining(w) {
		return
	}
	if !p.forwardFault(w, r) {
		return
	}
	cands, decision := p.candidates(key, pinned)
	if len(cands) == 0 {
		p.shedNoBackend(w)
		return
	}
	b := cands[0]
	tr.Add("route", decision+" "+b.Name, 0, 0)
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.URL+forwardPath(r), bytes.NewReader(body))
	if err != nil {
		p.writeError(w, http.StatusInternalServerError, err)
		return
	}
	for _, k := range []string{"Accept", "Content-Type"} {
		if v := r.Header.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	connStart := time.Now()
	resp, err := b.httpc.Do(req)
	if err != nil {
		if r.Context().Err() == nil {
			b.failure(p.cfg.Now())
		}
		p.requests.With(b.Name, "error").Inc()
		tr.Add("forward", b.Name+" error", 0, time.Since(connStart))
		p.writeError(w, http.StatusBadGateway, fmt.Errorf("stream to %s failed: %w", b.Name, err))
		return
	}
	defer resp.Body.Close()
	b.success()
	p.requests.With(b.Name, "stream").Inc()
	// Connection setup only: the stream's lifetime is its client's, not a
	// latency worth decomposing (mirrors the λ·W exclusion above).
	tr.Add("forward", b.Name+" stream", 0, time.Since(connStart))

	h := w.Header()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	h.Set("X-Content-Type-Options", "nosniff")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(resp.StatusCode)

	gauge := p.streamClients.With(b.Name)
	gauge.Inc()
	defer gauge.Dec()

	rc := http.NewResponseController(w)
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			// Flush per chunk: events must reach the subscriber as they
			// happen, not when a relay buffer fills.
			rc.Flush()
		}
		if rerr != nil {
			return
		}
	}
}

// ---- admin and introspection ----

// handleFaultsFanout relays /v1/faults to every backend — chaos control
// must reach the whole fleet, breaker state notwithstanding (an "open"
// backend's admin plane may well be reachable even while its data plane
// misbehaves).
func (p *Proxy) handleFaultsFanout(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxBodyBytes))
	if err != nil {
		p.writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	status := http.StatusOK
	results := make(map[string]json.RawMessage, len(p.order))
	for _, b := range p.order {
		res, err := b.cl.Do(r.Context(), r.Method, "/v1/faults", r.Header.Get("Content-Type"), body)
		if err != nil {
			status = http.StatusBadGateway
			msg, _ := json.Marshal(service.ErrorResponse{Error: err.Error()})
			results[b.Name] = msg
			continue
		}
		if res.Status != http.StatusOK && status == http.StatusOK {
			status = res.Status
		}
		if json.Valid(res.Body) {
			results[b.Name] = res.Body
		} else {
			msg, _ := json.Marshal(string(res.Body))
			results[b.Name] = msg
		}
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Content-Type-Options", "nosniff")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(results)
}

// BackendHealth is one backend's view in the proxy's /healthz body.
type BackendHealth struct {
	Name    string  `json:"name"`
	URL     string  `json:"url"`
	Healthy bool    `json:"healthy"`
	Breaker string  `json:"breaker"`
	NAvg    float64 `json:"navg"`
	// ReportedNAvg is the backend's own limiter occupancy from its last
	// probe body.
	ReportedNAvg float64 `json:"reported_navg"`
	// BrownoutMode is the backend's brownout rung from its last probe body
	// ("B0".."B4"; "B0" when the backend predates brownout).
	BrownoutMode string `json:"brownout_mode"`
	// Draining is true once the backend reported it is draining for
	// shutdown; the proxy stops routing to it.
	Draining bool `json:"draining,omitempty"`
}

// HealthResponse is the proxy's GET /healthz body.
type HealthResponse struct {
	// Status is "ok" while at least one backend accepts traffic,
	// "degraded" otherwise, "draining" once BeginDrain has been called
	// (still 200: the proxy itself is alive).
	Status   string          `json:"status"`
	Version  string          `json:"version"`
	Draining bool            `json:"draining,omitempty"`
	Backends []BackendHealth `json:"backends"`
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := p.cfg.Now()
	resp := HealthResponse{Status: "degraded", Version: buildinfo.Version()}
	for _, b := range p.order {
		st, healthy := b.snapshotState()
		if healthy {
			resp.Status = "ok"
		}
		b.mu.Lock()
		reported := b.reported
		mode, draining := b.mode, b.draining
		b.mu.Unlock()
		resp.Backends = append(resp.Backends, BackendHealth{
			Name:         b.Name,
			URL:          b.URL,
			Healthy:      healthy,
			Breaker:      st.String(),
			NAvg:         b.navg(now),
			ReportedNAvg: reported,
			BrownoutMode: mode.String(),
			Draining:     draining,
		})
	}
	if p.draining.Load() {
		// Drain wins: upstream load balancers must stop sending here even
		// while the backends themselves are fine.
		resp.Status = "draining"
		resp.Draining = true
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h := w.Header()
	h.Set("Content-Type", "text/plain; version=0.0.4")
	h.Set("X-Content-Type-Options", "nosniff")
	p.reg.WritePrometheus(w)
}
