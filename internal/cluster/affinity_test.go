package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"littleslaw/internal/experiments"
	"littleslaw/internal/faults"
	"littleslaw/internal/metrics"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/runner"
	"littleslaw/internal/service"
)

// realBackend is a full in-process llserved: its own simulation runner and
// metrics registry, so per-server cache behavior is observable.
type realBackend struct {
	ts  *httptest.Server
	srv *service.Server
}

// newServiceBackends boots n real llserved instances. Admission control is
// off and each server gets an isolated fault injector (none of these tests
// arm backend faults) plus its own runner cache — the thing affinity
// routing is supposed to exploit.
func newServiceBackends(t *testing.T, n int, ceiling float64, inj *faults.Injector) []*realBackend {
	t.Helper()
	if inj == nil {
		var err error
		if inj, err = faults.New(1); err != nil {
			t.Fatalf("faults.New: %v", err)
		}
	}
	backends := make([]*realBackend, n)
	for i := range backends {
		srv := service.New(service.Config{
			Registry:      metrics.NewRegistry(),
			SimRunner:     runner.New(64),
			LimitCeiling:  ceiling,
			FaultInjector: inj,
			// Paper anchor curves: tests must not pay the multi-second
			// X-Mem characterization per backend.
			ProfileFor: func(_ context.Context, p *platform.Platform) (*queueing.Curve, error) {
				return experiments.PaperProfileFor(p)
			},
		})
		b := &realBackend{srv: srv, ts: httptest.NewServer(srv.Handler())}
		t.Cleanup(b.ts.Close)
		backends[i] = b
	}
	return backends
}

// scrapeMetric fetches one unlabeled metric value from a /metrics endpoint.
func scrapeMetric(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", baseURL, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("metric %s not found at %s", name, baseURL)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

func runnerCacheTotals(t *testing.T, backends []*realBackend) (hits, misses float64) {
	t.Helper()
	for _, b := range backends {
		hits += scrapeMetric(t, b.ts.URL, "llserved_runner_cache_hits_total")
		misses += scrapeMetric(t, b.ts.URL, "llserved_runner_cache_misses_total")
	}
	return hits, misses
}

// analyzeBodies builds k distinct cacheable workload analyses (scale-varied
// ISx runs on KNL).
func analyzeBodies(t *testing.T, k int) []string {
	t.Helper()
	bodies := make([]string, k)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"platform":"KNL","workload":"ISx","scale":%g}`, 0.02+0.01*float64(i))
		req, err := service.DecodeAnalyzeRequest([]byte(bodies[i]))
		if err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		if _, ok := req.AffinityKey(); !ok {
			t.Fatalf("body %d has no affinity key; the experiment would measure nothing", i)
		}
	}
	return bodies
}

func postOK(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post %s: status %d", url, resp.StatusCode)
	}
}

// TestClusterCacheAffinityBeatsRandom is the acceptance experiment for the
// routing policy: replaying K distinct analyses for R rounds against three
// real llserved backends, consistent-hash affinity pays the simulation cost
// once per key fleet-wide (K misses), while spreading the same traffic
// round-robin pays it once per key per backend it lands on. The win is read
// from the backends' own llserved_runner_* cache metrics.
func TestClusterCacheAffinityBeatsRandom(t *testing.T) {
	const (
		K = 4 // distinct analyses
		R = 4 // rounds over the key set
	)
	bodies := analyzeBodies(t, K)

	// Affinity routing: through the proxy.
	affBackends := newServiceBackends(t, 3, -1, nil)
	urls := make([]string, len(affBackends))
	for i, b := range affBackends {
		urls[i] = b.ts.URL
	}
	inj, _ := faults.New(1)
	p, err := New(Config{
		Backends:      urls,
		ProbeInterval: -1,
		HedgeDelay:    -1,
		Registry:      metrics.NewRegistry(),
		FaultInjector: inj,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	defer p.Close()
	proxyTS := httptest.NewServer(p.Handler())
	defer proxyTS.Close()
	for r := 0; r < R; r++ {
		for _, body := range bodies {
			postOK(t, proxyTS.URL+"/v1/analyze", body)
		}
	}
	affHits, affMisses := runnerCacheTotals(t, affBackends)

	// The control: identical traffic round-robined directly across a fresh
	// trio, the routing a affinity-blind load balancer would do.
	rrBackends := newServiceBackends(t, 3, -1, nil)
	i := 0
	for r := 0; r < R; r++ {
		for _, body := range bodies {
			postOK(t, rrBackends[i%len(rrBackends)].ts.URL+"/v1/analyze", body)
			i++
		}
	}
	rrHits, rrMisses := runnerCacheTotals(t, rrBackends)

	// Affinity: every key simulates exactly once in the whole fleet.
	if affMisses != K {
		t.Errorf("affinity routing: %v fleet-wide cache misses, want exactly %d (one per key)", affMisses, K)
	}
	if affHits != K*(R-1) {
		t.Errorf("affinity routing: %v cache hits, want %d", affHits, K*(R-1))
	}
	// Round-robin re-simulates each key on every backend it visits.
	if rrMisses <= affMisses {
		t.Errorf("round-robin misses (%v) not worse than affinity misses (%v)", rrMisses, affMisses)
	}
	if affHits <= rrHits {
		t.Errorf("affinity hits (%v) not better than round-robin hits (%v)", affHits, rrHits)
	}
	t.Logf("affinity: %v hits / %v misses; round-robin: %v hits / %v misses",
		affHits, affMisses, rrHits, rrMisses)
}
