package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"littleslaw/internal/faults"
	"littleslaw/internal/metrics"
	"littleslaw/internal/service"
)

// stubBackend is a scripted llserved stand-in: per-path hit counts, a
// switchable "down" mode (aborts connections, modeling a crashed process),
// a forced status and an added delay.
type stubBackend struct {
	ts     *httptest.Server
	name   string
	hits   atomic.Int64
	down   atomic.Bool
	status atomic.Int64 // 0 = 200
	delay  atomic.Int64 // nanoseconds
	navg   atomic.Int64 // milli-n_avg reported by /healthz
}

func (s *stubBackend) handler(w http.ResponseWriter, r *http.Request) {
	if s.down.Load() {
		panic(http.ErrAbortHandler) // sever the connection: a crash, not an error response
	}
	if r.URL.Path == "/healthz" {
		navg := float64(s.navg.Load()) / 1000
		fmt.Fprintf(w, `{"status":"ok","version":"stub","limiter_navg":%g}`, navg)
		return
	}
	s.hits.Add(1)
	if d := time.Duration(s.delay.Load()); d > 0 {
		time.Sleep(d)
	}
	if code := int(s.status.Load()); code != 0 && code != http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"error":"scripted %d"}`, code)
		return
	}
	switch {
	case strings.HasPrefix(r.URL.Path, "/v1/watch"):
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"seq":%d,"backend":%q}`+"\n", i, s.name)
			fl.Flush()
		}
	case r.URL.Path == "/v1/faults":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"enabled":false,"backend":%q}`, s.name)
	default:
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"backend":%q}`, s.name)
	}
}

// newStubCluster spins n stub backends and a proxy over them with
// test-friendly defaults: no background prober, no hedging, single-attempt
// forwarding, a private fault injector, and a fast breaker.
func newStubCluster(t *testing.T, n int, mutate func(*Config)) (*Proxy, []*stubBackend) {
	t.Helper()
	stubs := make([]*stubBackend, n)
	urls := make([]string, n)
	for i := range stubs {
		s := &stubBackend{}
		s.ts = httptest.NewServer(http.HandlerFunc(s.handler))
		s.name = strings.TrimPrefix(s.ts.URL, "http://")
		t.Cleanup(s.ts.Close)
		stubs[i] = s
		urls[i] = s.ts.URL
	}
	inj, err := faults.New(1)
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	cfg := Config{
		Backends:          urls,
		ProbeInterval:     -1,
		HedgeDelay:        -1,
		ClientMaxAttempts: 1,
		ClientTimeout:     5 * time.Second,
		BreakerFailures:   3,
		BreakerCooldown:   time.Minute,
		Registry:          metrics.NewRegistry(),
		FaultInjector:     inj,
		Seed:              42,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(p.Close)
	return p, stubs
}

func stubByName(stubs []*stubBackend, name string) *stubBackend {
	for _, s := range stubs {
		if s.name == name {
			return s
		}
	}
	return nil
}

const analyzeBody = `{"platform":"KNL","workload":"ISx","scale":0.02}`

// TestProxyAffinityRoutesConsistently: identical analyze requests must all
// land on the ring owner of their runner-cache identity.
func TestProxyAffinityRoutesConsistently(t *testing.T) {
	p, stubs := newStubCluster(t, 3, nil)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	req, err := service.DecodeAnalyzeRequest([]byte(analyzeBody))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	key, ok := req.AffinityKey()
	if !ok {
		t.Fatalf("test body has no affinity key")
	}
	owner := p.ring.Owner(key)

	for i := 0; i < 10; i++ {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(analyzeBody))
		if err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post %d: status %d", i, resp.StatusCode)
		}
	}
	ownerStub := stubByName(stubs, owner)
	if got := ownerStub.hits.Load(); got != 10 {
		t.Fatalf("ring owner %s served %d of 10 identical requests", owner, got)
	}
}

// TestProxyOccupancyOverrideSpills: when the affinity owner's estimated
// n_avg exceeds the ceiling, the request joins the least-loaded backend
// instead and the override is counted.
func TestProxyOccupancyOverrideSpills(t *testing.T) {
	p, stubs := newStubCluster(t, 3, func(c *Config) { c.OccupancyCeiling = 5 })
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	req, _ := service.DecodeAnalyzeRequest([]byte(analyzeBody))
	key, _ := req.AffinityKey()
	owner := p.backends[p.ring.Owner(key)]
	// Pump the owner's estimator far past the ceiling: a hot burst with
	// 100ms observed latency.
	now := time.Now()
	for i := 0; i < 2000; i++ {
		owner.arrive(now)
		owner.complete(100*time.Millisecond, true)
	}
	if got := owner.navg(now); got < 5 {
		t.Fatalf("failed to pump owner n_avg past ceiling: %v", got)
	}

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(analyzeBody))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := stubByName(stubs, owner.Name).hits.Load(); got != 0 {
		t.Fatalf("overloaded owner still served the request")
	}
	if got := p.overrides.Value(); got != 1 {
		t.Fatalf("affinity overrides = %d, want 1", got)
	}
}

// TestProxyFailoverOnServerError: a retryable status from the first
// candidate spills the request to the next, and the client still sees 200.
func TestProxyFailoverOnServerError(t *testing.T) {
	p, stubs := newStubCluster(t, 2, nil)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	cands, _ := p.candidates("", false)
	first := cands[0]
	stubByName(stubs, first.Name).status.Store(http.StatusInternalServerError)

	// No affinity key (unknown platform): routed purely by load.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"platform":"nope"}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	if got := p.failovers.Value(); got == 0 {
		t.Fatalf("failover not counted")
	}
	if got := p.requests.With(first.Name, "server_error").Value(); got != 1 {
		t.Fatalf("server_error outcome for first candidate = %d, want 1", got)
	}
}

// TestProxyBreakerIsolatesDeadBackend: failed probes open the dead
// backend's breaker; traffic flows only to survivors; with every breaker
// open the proxy sheds with 503 + Retry-After.
func TestProxyBreakerIsolatesDeadBackend(t *testing.T) {
	p, stubs := newStubCluster(t, 2, nil)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	dead, live := stubs[0], stubs[1]
	dead.down.Store(true)
	for i := 0; i < 3; i++ {
		p.ProbeAll(t.Context())
	}
	if st, healthy := p.backends[dead.name].snapshotState(); st != BreakerOpen || healthy {
		t.Fatalf("dead backend: state %v healthy %v after 3 failed probes", st, healthy)
	}
	if p.probeFailures.With(dead.name).Value() != 3 {
		t.Fatalf("probe failures = %d, want 3", p.probeFailures.With(dead.name).Value())
	}

	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(analyzeBody))
		if err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post %d: status %d with a live backend available", i, resp.StatusCode)
		}
	}
	if got := live.hits.Load(); got != 5 {
		t.Fatalf("live backend served %d of 5", got)
	}

	live.down.Store(true)
	for i := 0; i < 3; i++ {
		p.ProbeAll(t.Context())
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(analyzeBody))
	if err != nil {
		t.Fatalf("post with all backends down: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with every breaker open, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}
	if p.noBackend.Value() != 1 {
		t.Fatalf("no-backend sheds = %d, want 1", p.noBackend.Value())
	}
}

// TestProxyProbeReportsBackendOccupancy: a 200 probe folds the backend's
// self-reported limiter n_avg into its load signal.
func TestProxyProbeReportsBackendOccupancy(t *testing.T) {
	p, stubs := newStubCluster(t, 2, nil)
	stubs[0].navg.Store(7250) // /healthz reports limiter_navg 7.25
	p.ProbeAll(t.Context())
	b := p.backends[stubs[0].name]
	if got := b.load(time.Now()); got != 7.25 {
		t.Fatalf("load after probe = %v, want reported 7.25", got)
	}
}

// TestProxyHedgedGetRacesSecondBackend: a GET whose primary outlives the
// hedge delay is answered by the hedge lane long before the primary would
// have finished.
func TestProxyHedgedGetRacesSecondBackend(t *testing.T) {
	p, stubs := newStubCluster(t, 2, func(c *Config) { c.HedgeDelay = 50 * time.Millisecond })
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	slow, fast := stubs[0], stubs[1]
	slow.delay.Store(int64(2 * time.Second))
	// Tip the load order so the slow backend is the primary: one stuck
	// request on the fast one.
	p.backends[fast.name].arrive(time.Now())

	begin := time.Now()
	resp, err := http.Get(ts.URL + "/v1/platforms")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(begin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), fast.name) {
		t.Fatalf("response came from %s, want hedge winner %s", body, fast.name)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("hedge did not shortcut the slow primary (%v)", elapsed)
	}
	if p.hedges.Value() != 1 {
		t.Fatalf("hedges = %d, want 1", p.hedges.Value())
	}
}

// TestProxyForwardFaultSite: an injected error at cluster.forward answers
// 502 + Retry-After without touching any backend.
func TestProxyForwardFaultSite(t *testing.T) {
	inj, err := faults.New(7, faults.Rule{Site: ForwardFaultSite, Kind: faults.KindError, P: 1})
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	p, stubs := newStubCluster(t, 2, func(c *Config) { c.FaultInjector = inj })
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(analyzeBody))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	var apiErr service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("error body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("injected 502 without Retry-After")
	}
	if apiErr.Error == "" {
		t.Fatalf("empty error body")
	}
	for _, s := range stubs {
		if s.hits.Load() != 0 {
			t.Fatalf("backend %s reached despite injected proxy fault", s.name)
		}
	}
	if got := inj.FiredTotal(); got == 0 {
		t.Fatalf("fault site never fired")
	}
}

// TestProxyProbeFaultSite: injected probe errors open breakers without any
// real backend failure — the chaos lever for the prober path.
func TestProxyProbeFaultSite(t *testing.T) {
	inj, err := faults.New(7, faults.Rule{Site: ProbeFaultSite, Kind: faults.KindError, P: 1})
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	p, _ := newStubCluster(t, 2, func(c *Config) { c.FaultInjector = inj })
	for i := 0; i < 3; i++ {
		p.ProbeAll(t.Context())
	}
	for name, b := range p.backends {
		if st, _ := b.snapshotState(); st != BreakerOpen {
			t.Fatalf("backend %s: state %v after 3 injected probe faults, want open", name, st)
		}
	}
}

// TestProxyStreamPinnedRouting: the stream's creator and its subscribers
// must meet on the ring owner of the stream name, and events must flow
// through the proxy unbuffered.
func TestProxyStreamPinnedRouting(t *testing.T) {
	p, stubs := newStubCluster(t, 3, nil)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	owner := p.ring.Owner(service.StreamAffinityKey("s1"))

	post, err := http.Post(ts.URL+"/v1/watch", "application/json",
		strings.NewReader(`{"stream":"s1","kind":"bandwidth"}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	postBody, _ := io.ReadAll(post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("post status %d", post.StatusCode)
	}
	sub, err := http.Get(ts.URL + "/v1/watch/s1")
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	subBody, _ := io.ReadAll(sub.Body)
	sub.Body.Close()
	if sub.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", sub.StatusCode)
	}
	if ct := sub.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type %q not relayed", ct)
	}

	for _, body := range []string{string(postBody), string(subBody)} {
		if !strings.Contains(body, owner) {
			t.Fatalf("stream served by wrong backend: %q, want owner %s", body, owner)
		}
	}
	if got := stubByName(stubs, owner).hits.Load(); got != 2 {
		t.Fatalf("stream owner %s served %d of 2 stream requests", owner, got)
	}
	if got := p.requests.With(owner, "stream").Value(); got != 2 {
		t.Fatalf("stream outcome count = %d, want 2", got)
	}
}

// TestProxyFaultsFanout: one /v1/faults call reaches every backend and the
// response maps backend name to its individual reply.
func TestProxyFaultsFanout(t *testing.T) {
	p, stubs := newStubCluster(t, 3, nil)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/faults")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var perBackend map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&perBackend); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(perBackend) != 3 {
		t.Fatalf("fanout reached %d of 3 backends: %v", len(perBackend), perBackend)
	}
	for _, s := range stubs {
		if _, ok := perBackend[s.name]; !ok {
			t.Fatalf("backend %s missing from fanout response", s.name)
		}
		if s.hits.Load() != 1 {
			t.Fatalf("backend %s hit %d times", s.name, s.hits.Load())
		}
	}
	_ = p
}

// TestProxyHealthzBody: the proxy's own health view lists every backend
// with breaker state and both occupancy estimates.
func TestProxyHealthzBody(t *testing.T) {
	p, stubs := newStubCluster(t, 3, nil)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q, want ok", h.Status)
	}
	if h.Version == "" {
		t.Fatalf("missing version")
	}
	if len(h.Backends) != len(stubs) {
		t.Fatalf("%d backends in healthz, want %d", len(h.Backends), len(stubs))
	}
	for _, b := range h.Backends {
		if !b.Healthy || b.Breaker != "closed" {
			t.Fatalf("backend %s: healthy=%v breaker=%q at startup", b.Name, b.Healthy, b.Breaker)
		}
	}
}

// TestProxyMetricsExposition: the llproxy_* family renders, including the
// derived per-backend gauges.
func TestProxyMetricsExposition(t *testing.T) {
	p, _ := newStubCluster(t, 2, nil)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(analyzeBody))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"llproxy_requests_total{backend=",
		"llproxy_backend_navg{backend=",
		"llproxy_backend_up{backend=",
		"llproxy_breaker_state{backend=",
		"llproxy_littles_law_concurrency",
		"llproxy_request_seconds_count{backend=",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestProxyConfigValidation: constructor rejects empty, relative and
// duplicate backends.
func TestProxyConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatalf("no error for zero backends")
	}
	if _, err := New(Config{Backends: []string{"not-a-url"}}); err == nil {
		t.Fatalf("no error for relative backend URL")
	}
	if _, err := New(Config{Backends: []string{"http://h:1", "http://h:1"}}); err == nil {
		t.Fatalf("no error for duplicate backends")
	}
}
