// Per-backend state: the spillover half of the routing algebra. Each
// backend carries a live Little's-Law occupancy estimator — a decayed
// arrival counter (λ = count/τ) times a latency EWMA (W), the same shape
// internal/limit applies to a single server, lifted to the fleet — plus a
// consecutive-failure circuit breaker and the health view the prober
// maintains from /healthz bodies.
package cluster

import (
	"math"
	"net/http"
	"sync"
	"time"

	"littleslaw/internal/brownout"
	"littleslaw/internal/client"
)

// BreakerState is a backend's circuit-breaker position.
type BreakerState int

const (
	// BreakerClosed: healthy, requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: too many consecutive transport failures; no requests
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed, one trial request is probing.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Backend is one llserved instance behind the proxy.
type Backend struct {
	// Name labels the backend in metrics and the ring (host:port).
	Name string
	// URL is the backend's base URL.
	URL string

	cl    *client.Client // unary forwards: retries, backoff, Retry-After
	httpc *http.Client   // streams and probes: single attempt, no retries

	// Estimator/breaker tuning, copied from the proxy config.
	tau      float64 // decay constant: halflife / ln 2, seconds
	alpha    float64 // latency EWMA weight
	maxFails int     // consecutive transport failures that open the breaker
	cooldown time.Duration

	mu sync.Mutex
	// Occupancy estimator (λ·W), limit.routeStat's shape.
	count    float64 // decayed arrivals; λ = count/τ
	last     time.Time
	lat      float64 // EWMA latency, seconds
	latSeen  bool
	inflight int
	// Health, from the prober.
	healthy  bool
	reported float64 // backend's own limiter n_avg from its last /healthz body
	mode     brownout.Mode
	draining bool
	// Breaker.
	state    BreakerState
	fails    int
	openedAt time.Time
}

// decayLocked ages the arrival counter to now. Callers hold mu.
func (b *Backend) decayLocked(now time.Time) {
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.count *= math.Exp(-dt / b.tau)
		}
	}
	b.last = now
}

// arrive records a forwarded request starting.
func (b *Backend) arrive(now time.Time) {
	b.mu.Lock()
	b.decayLocked(now)
	b.count++
	b.inflight++
	b.mu.Unlock()
}

// complete records a forwarded request finishing. Latency is folded into
// the EWMA only when a response actually arrived — transport errors and
// canceled hedges have no service time to learn from.
func (b *Backend) complete(latency time.Duration, observed bool) {
	b.mu.Lock()
	b.inflight--
	if observed {
		sec := latency.Seconds()
		if !b.latSeen {
			b.lat, b.latSeen = sec, true
		} else {
			b.lat += b.alpha * (sec - b.lat)
		}
	}
	b.mu.Unlock()
}

// navg is the live Little's-Law occupancy estimate λ·W at now.
func (b *Backend) navg(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.navgLocked(now)
}

func (b *Backend) navgLocked(now time.Time) float64 {
	b.decayLocked(now)
	if !b.latSeen {
		return 0
	}
	return b.count / b.tau * b.lat
}

// load is the routing signal: the worst of the instantaneous in-flight
// count (gates hard bursts before any latency sample exists), the local
// λ·W estimate (memory of recent behavior) and the backend's own reported
// limiter occupancy (covers load arriving outside this proxy).
func (b *Backend) load(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return max(float64(b.inflight), max(b.navgLocked(now), b.reported))
}

// allow reports whether the breaker admits a request at now, transitioning
// Open→HalfOpen once per cooldown: the first caller after the cooldown gets
// the trial; others stay rejected until the trial resolves.
func (b *Backend) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	case BreakerHalfOpen:
		return false
	}
	return true
}

// success records a proof of liveness (any HTTP response, or a 200 probe):
// the breaker closes and the failure streak resets.
func (b *Backend) success() {
	b.mu.Lock()
	b.fails = 0
	b.state = BreakerClosed
	b.healthy = true
	b.mu.Unlock()
}

// failure records a transport-level failure (connect refused, reset,
// probe timeout). Reaching maxFails — or failing the half-open trial —
// opens the breaker; openedAt re-arms on every failure so a backend that
// keeps refusing keeps the breaker open a full cooldown past its last
// observed failure.
func (b *Backend) failure(now time.Time) {
	b.mu.Lock()
	b.fails++
	if b.fails >= b.maxFails || b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = now
		b.healthy = false
	}
	b.mu.Unlock()
}

// probeOK records a healthy probe and what the backend reported about
// itself: its limiter occupancy, its brownout rung, and whether it is
// draining for shutdown.
func (b *Backend) probeOK(reportedNAvg float64, mode brownout.Mode, draining bool) {
	b.success()
	b.mu.Lock()
	b.reported = reportedNAvg
	b.mode = mode
	b.draining = draining
	b.mu.Unlock()
}

// degradation returns the backend's last-probed brownout mode and whether
// it is draining — the routing penalties candidates applies.
func (b *Backend) degradation() (brownout.Mode, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mode, b.draining
}

// snapshotState returns the breaker state and health for metrics.
func (b *Backend) snapshotState() (BreakerState, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.healthy
}
