package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"littleslaw/internal/client"
	"littleslaw/internal/faults"
	"littleslaw/internal/metrics"
	"littleslaw/internal/queueing"
	"littleslaw/internal/service"
)

// TestChaosClusterFailover is the end-to-end acceptance run for the
// scale-out tier: three real llserved backends behind the proxy, a
// closed-loop load of 2× one node's admission capacity, and one backend
// killed mid-run. The proxy must (a) open the dead backend's breaker and
// rehash its keys onto the survivors with zero client-visible failures,
// and (b) keep per-backend occupancy books that agree with the paper
// pipeline: each survivor's llproxy_backend_navg gauge must match
// queueing.Curve.OccupancyAt at that backend's measured arrival rate and
// latency within 5%.
func TestChaosClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes ~10s of wall-clock traffic")
	}
	// Backend handlers carry an injected 250ms latency so service time is
	// dominated by a known, stable W (the simulations themselves finish in
	// tens of milliseconds and would make W noisy).
	inj, err := faults.New(42, faults.Rule{
		Site: "handler.*", Kind: faults.KindLatency, P: 1, D: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	// Ceiling 6 per backend: with W = 250ms one node admits λ·W ≤ 6, i.e.
	// ~24 closed-loop workers would saturate one node; 12 workers are 2×
	// one node's steady concurrency, comfortably served by two survivors.
	backends := newServiceBackends(t, 3, 6, inj)
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.ts.URL
	}
	p, err := New(Config{
		Backends: urls,
		// High ceiling: this run exercises failover; the affinity-override
		// policy has its own test and must not blur the occupancy books.
		OccupancyCeiling: 1000,
		// A short half-life so the estimator tracks each phase of the run.
		RateHalfLife:      time.Second,
		ProbeInterval:     200 * time.Millisecond,
		ProbeTimeout:      500 * time.Millisecond,
		BreakerFailures:   3,
		BreakerCooldown:   30 * time.Second, // no half-open trials inside the run
		HedgeDelay:        -1,
		ClientMaxAttempts: 1, // failover, not in-place retry, is under test
		Registry:          metrics.NewRegistry(),
		FaultInjector:     inj, // no cluster.* rules armed; isolates from faults.Global()
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	p.Start()
	defer p.Close()
	proxyTS := httptest.NewServer(p.Handler())
	defer proxyTS.Close()

	const nKeys = 12
	bodies := analyzeBodies(t, nKeys)

	// Warm every key on every backend directly (not through the proxy):
	// after the kill, rehashed keys must not pay cold-simulation cost in
	// the middle of the overload — under -race a burst of concurrent cold
	// simulations saturates the CPU and stalls the whole run. Failover is
	// what phase 1 measures; cache affinity has its own test.
	var warmWG sync.WaitGroup
	for _, b := range backends {
		warmWG.Add(1)
		go func(base string) {
			defer warmWG.Done()
			for _, body := range bodies {
				resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("warm %s: %v", base, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("warm %s: status %d", base, resp.StatusCode)
					return
				}
			}
		}(b.ts.URL)
	}
	warmWG.Wait()
	if t.Failed() {
		t.Fatalf("warmup failed")
	}

	// ---- Phase 1: closed-loop overload with a mid-run kill ----
	const workers = 12
	var okCount, failCount atomic.Int64
	var failOnce sync.Once
	var firstFail error
	killAt := time.After(time.Second)
	phaseEnd := time.Now().Add(3 * time.Second)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.New(client.Config{
				BaseURL: proxyTS.URL,
				// Generous per-attempt deadline: under -race the whole
				// stack runs severalfold slower, and the assertion here is
				// eventual success, not latency.
				Timeout:     15 * time.Second,
				MaxAttempts: 8,
				Backoff:     50 * time.Millisecond,
				BudgetRatio: -1,
				Seed:        int64(w + 1),
			})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			for i := 0; time.Now().Before(phaseEnd); i++ {
				var out map[string]any
				err := cl.PostJSON(context.Background(), "/v1/analyze",
					mustRaw(t, bodies[(w+i)%nKeys]), &out)
				if err != nil {
					failCount.Add(1)
					failOnce.Do(func() { firstFail = err })
					continue
				}
				okCount.Add(1)
			}
		}(w)
	}
	<-killAt
	killed := backends[0]
	killedName := strings.TrimPrefix(killed.ts.URL, "http://")
	killed.ts.CloseClientConnections()
	killed.ts.Close()
	wg.Wait()

	if n := okCount.Load(); n < 50 {
		t.Fatalf("only %d successes during the overload phase", n)
	}
	if n := failCount.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed despite retries and failover; first: %v",
			n, n+okCount.Load(), firstFail)
	}
	if st, healthy := p.backends[killedName].snapshotState(); st != BreakerOpen || healthy {
		t.Fatalf("killed backend %s: breaker %v healthy %v, want open/unhealthy", killedName, st, healthy)
	}
	t.Logf("phase 1: %d requests, 0 failures, breaker open for %s", okCount.Load(), killedName)

	// ---- Phase 2: steady open-loop traffic; audit the occupancy books ----
	survivors := []string{
		strings.TrimPrefix(backends[1].ts.URL, "http://"),
		strings.TrimPrefix(backends[2].ts.URL, "http://"),
	}
	deadRequestsBefore := p.latency.With(killedName).Count()

	// Build a key set each survivor owns half of, selected from a pool of
	// candidate analyses. Ring splits of an arbitrary dozen keys can be
	// lopsided (one survivor drawing 2/3 of the traffic past its admission
	// ceiling into an unstable queueing regime), and this audit is about
	// the accuracy of the per-backend books, not about ownership luck.
	isSurvivor := func(name string) bool { return name != killedName }
	perSurvivor := 5
	owned := map[string][]string{}
	for i := 0; len(owned[survivors[0]]) < perSurvivor || len(owned[survivors[1]]) < perSurvivor; i++ {
		if i >= 200 {
			t.Fatalf("could not balance steady-phase keys across survivors")
		}
		body := fmt.Sprintf(`{"platform":"KNL","workload":"ISx","scale":%g}`, 0.02+0.002*float64(i))
		req, err := service.DecodeAnalyzeRequest([]byte(body))
		if err != nil {
			t.Fatalf("candidate body: %v", err)
		}
		key, ok := req.AffinityKey()
		if !ok {
			t.Fatalf("candidate body has no affinity key")
		}
		owner, _ := p.ring.OwnerWhere(key, isSurvivor)
		if len(owned[owner]) < perSurvivor {
			owned[owner] = append(owned[owner], body)
		}
	}
	steadyBodies := make([]string, 0, 2*perSurvivor)
	for i := 0; i < perSurvivor; i++ {
		steadyBodies = append(steadyBodies, owned[survivors[0]][i], owned[survivors[1]][i])
	}
	// Warm each steady key before opening the traffic spigot: a first
	// request simulates, and under -race a handful of concurrent cold
	// simulations is enough CPU backlog to push the survivors into the
	// queueing regime the audit must stay out of.
	for _, body := range steadyBodies {
		postOK(t, proxyTS.URL+"/v1/analyze", body)
	}

	type snap struct {
		count uint64
		sum   float64
	}
	snapshot := func() map[string]snap {
		m := make(map[string]snap, len(survivors))
		for _, name := range survivors {
			h := p.latency.With(name)
			m[name] = snap{count: h.Count(), sum: h.Sum()}
		}
		return m
	}

	// ~20 arrivals/s, uniform, round-robin over the key set: open loop, so
	// λ is set by the clock, not by backend speed. The rate must keep each
	// survivor's λ·W safely under its admission ceiling even when -race
	// overhead inflates W — past the ceiling, shed-and-spill feedback makes
	// λ and W co-fluctuate and a point estimate of λ·W stops matching the
	// windowed product (legitimately: Little's Law needs stationarity). Low
	// rate, wide window: counting noise is 1/Δcount per survivor.
	const (
		interval  = 50 * time.Millisecond
		steadyFor = 9 * time.Second
		measureAt = 2 * time.Second // histogram window start: steady from here
		// Gauge sampling starts later than the histogram window: the decayed
		// arrival counter (τ ≈ 1.44s) still remembers the slower warmup
		// traffic at 2s; by 4s its residual is under 1%. The histogram
		// window tolerates the earlier start because λ and W are constant
		// across the steady phase.
		gaugeFrom = 4 * time.Second
		lineBytes = 64
		minLambda = 5.0  // don't audit backends the traffic barely touched
		tolerance = 0.05 // the acceptance bound: gauges within 5% of OccupancyAt
	)
	var loadWG sync.WaitGroup
	var snap1 map[string]snap
	var snap1At time.Time
	// The audit compares window averages on both sides: λ and W from
	// histogram deltas, and the gauge sampled periodically through the
	// window (an instantaneous read is biased by the phase of the
	// deterministic key cycle; the 5-tick stride is coprime to the
	// per-backend arrival period, so samples sweep every phase).
	gaugeSamples := make(map[string][]float64, len(survivors))
	begin := time.Now()
	ticker := time.NewTicker(interval)
	for i := 0; time.Since(begin) < steadyFor; i++ {
		<-ticker.C
		if snap1 == nil && time.Since(begin) >= measureAt {
			snap1 = snapshot()
			snap1At = time.Now()
		}
		if i%5 == 0 && time.Since(begin) >= gaugeFrom {
			at := time.Now()
			for _, name := range survivors {
				gaugeSamples[name] = append(gaugeSamples[name], p.backends[name].navg(at))
			}
		}
		loadWG.Add(1)
		go func(body string) {
			defer loadWG.Done()
			resp, err := http.Post(proxyTS.URL+"/v1/analyze", "application/json", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(steadyBodies[i%len(steadyBodies)])
	}
	ticker.Stop()
	// Close the books at the instant traffic stops: the estimator decays
	// the moment arrivals cease, so the histogram window ends here too.
	now := time.Now()
	snap2 := snapshot()
	gauges := make(map[string]float64, len(survivors))
	for _, name := range survivors {
		sum := 0.0
		for _, v := range gaugeSamples[name] {
			sum += v
		}
		if n := len(gaugeSamples[name]); n > 0 {
			gauges[name] = sum / float64(n)
		}
	}
	window := now.Sub(snap1At)
	loadWG.Wait()

	if snap1 == nil {
		t.Fatalf("steady phase ended before the measurement boundary")
	}
	audited := 0
	for _, name := range survivors {
		dc := snap2[name].count - snap1[name].count
		if dc == 0 {
			t.Errorf("survivor %s served nothing in the measurement window", name)
			continue
		}
		lambda := float64(dc) / window.Seconds()
		w := (snap2[name].sum - snap1[name].sum) / float64(dc)
		if lambda < minLambda {
			t.Logf("survivor %s: λ=%.1f/s below audit floor, skipping", name, lambda)
			continue
		}
		// The paper pipeline's view of the same occupancy: a flat
		// bandwidth→latency profile at the backend's measured W, queried at
		// the bandwidth its measured arrival rate implies.
		curve := queueing.MustCurve([]queueing.CurvePoint{
			{BandwidthGBs: 0, LatencyNs: w * 1e9},
			{BandwidthGBs: 100, LatencyNs: w * 1e9},
		})
		want := curve.OccupancyAt(lambda*lineBytes/1e9, lineBytes)
		got := gauges[name]
		diff := math.Abs(got-want) / want
		t.Logf("survivor %s: λ=%.1f/s W=%.0fms gauge n_avg=%.2f OccupancyAt=%.2f (Δ %.1f%%)",
			name, lambda, w*1000, got, want, diff*100)
		if diff > tolerance {
			t.Errorf("survivor %s: llproxy_backend_navg=%.3f vs OccupancyAt=%.3f diverges %.1f%% (> %.0f%%)",
				name, got, want, diff*100, tolerance*100)
		}
		audited++
	}
	if audited == 0 {
		t.Fatalf("no survivor carried enough traffic to audit the occupancy books")
	}
	if after := p.latency.With(killedName).Count(); after != deadRequestsBefore {
		t.Errorf("killed backend still received %d forwards after its breaker opened", after-deadRequestsBefore)
	}
}

// mustRaw re-decodes a JSON body into a generic value for client.PostJSON.
func mustRaw(t *testing.T, body string) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("bad body %q: %v", body, err)
	}
	return m
}
