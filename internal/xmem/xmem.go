// Package xmem reproduces the role of the X-Mem cross-platform memory
// characterization tool (Gottscho et al., ISPASS 2016) in the paper's
// methodology: measuring, once per platform, the observed memory latency at
// many levels of bandwidth utilization.
//
// The characterization runs against the simulated machine exactly the way
// X-Mem runs against real silicon: load-generator threads on every core
// drive a configurable request intensity, while a dedicated probe thread
// measures dependent-load latency. Sweeping the intensity traces the
// bandwidth→latency profile that internal/core later looks observed
// latency up from (the paper's footnote 2: the profile is independent of
// the application and computed once per processor).
package xmem

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"littleslaw/internal/engine"
	"littleslaw/internal/events"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// Options tunes a characterization run.
type Options struct {
	// Cores generating load; 0 means all platform cores.
	Cores int
	// ProbeOps is the number of dependent loads the latency probe issues
	// per operating point (after warmup); 0 means 300.
	ProbeOps int
	// WarmupOps is the probe's warmup length; 0 means 60.
	WarmupOps int
	// Levels overrides the default intensity sweep. Each level is the
	// number of in-flight prefetch lines each generator core sustains
	// (its gap selects low-bandwidth points; see defaultLevels).
	Levels []Level
	// Seed for the probe's random pointer chain.
	Seed int64
	// Workers bounds how many operating points are measured concurrently
	// (each point is an independent simulated node). 0 means
	// runtime.GOMAXPROCS(0); 1 forces the historical serial sweep. The
	// resulting curve is identical for any worker count.
	Workers int
}

// Level is one operating point of the sweep.
type Level struct {
	Window int     // in-flight lines per generator core (0 = generators idle)
	GapCyc float64 // extra pacing between generator issues, in core cycles
}

func defaultLevels(p *platform.Platform) []Level {
	levels := []Level{
		{Window: 0},
		{Window: 1, GapCyc: 800},
		{Window: 1, GapCyc: 200},
		{Window: 1, GapCyc: 50},
		{Window: 1},
		{Window: 2},
		{Window: 3},
		{Window: 4},
		{Window: 6},
		{Window: 8},
		{Window: 10},
		{Window: 12},
	}
	for _, w := range []int{16, 20, 24, 28, 32} {
		if w <= p.L2.MSHRs {
			levels = append(levels, Level{Window: w})
		}
	}
	return levels
}

// Characterize measures the platform's bandwidth→latency profile.
func Characterize(p *platform.Platform, opts Options) (*queueing.Curve, error) {
	return CharacterizeContext(context.Background(), p, opts)
}

// CharacterizeContext measures the profile with the sweep's operating
// points dispatched across a worker pool (each point is its own simulated
// node, so points are independent) and with cooperative cancellation. The
// points enter the curve in sweep order, so the result is identical for
// any worker count.
func CharacterizeContext(ctx context.Context, p *platform.Platform, opts Options) (*queueing.Curve, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Cores == 0 {
		opts.Cores = p.Cores
	}
	if opts.Cores < 1 {
		return nil, fmt.Errorf("xmem: need at least one core")
	}
	if opts.ProbeOps == 0 {
		opts.ProbeOps = 300
	}
	if opts.WarmupOps == 0 {
		opts.WarmupOps = 60
	}
	levels := opts.Levels
	if levels == nil {
		levels = defaultLevels(p)
	}
	jobs := make([]func(context.Context) (queueing.CurvePoint, error), len(levels))
	for i, lv := range levels {
		lv := lv
		jobs[i] = func(ctx context.Context) (queueing.CurvePoint, error) {
			pt, err := measure(ctx, p, opts, lv)
			if err != nil {
				return queueing.CurvePoint{}, fmt.Errorf("xmem: level %+v: %w", lv, err)
			}
			return pt, nil
		}
	}
	pts, err := engine.Map(ctx, engine.New(opts.Workers), jobs)
	if err != nil {
		return nil, err
	}
	return queueing.NewCurve(pts)
}

// measure runs one operating point: generators at the given level plus the
// latency probe, reporting (bandwidth, probe latency).
func measure(ctx context.Context, p *platform.Platform, opts Options, lv Level) (queueing.CurvePoint, error) {
	sched := &events.Scheduler{}
	node := memsys.NewNode(sched, p)
	clock := p.Clock()
	lineBytes := uint64(p.LineBytes)

	// Load generators: one per core, each keeping lv.Window random-line
	// reads in flight over a private arena — X-Mem's random-read load
	// worker mode, which matches the loaded-latency behaviour the paper's
	// anchors reflect (streaming traffic earns row-buffer hits and would
	// trace an optimistic curve). Flow control comes from the resolve
	// callback.
	type genState struct {
		h    *memsys.Hierarchy
		rng  *rand.Rand
		base uint64
	}
	gens := make([]*genState, opts.Cores)
	for i := range gens {
		gens[i] = &genState{
			h: memsys.NewHierarchy(node),
			// Private 1 GiB arena per core, far beyond cache capacity.
			rng:  rand.New(rand.NewSource(int64(i)*7919 + opts.Seed)),
			base: uint64(i+1) << 30,
		}
	}
	stop := false
	gap := clock.Cycles(lv.GapCyc)
	const genArena = 1 << 29
	var launch func(g *genState)
	launch = func(g *genState) {
		if stop {
			return
		}
		addr := g.base + (g.rng.Uint64()%genArena)&^(lineBytes-1)
		g.h.Access(addr, memsys.PrefetchL2, func() {
			if gap > 0 {
				sched.After(gap, func() { launch(g) })
			} else {
				launch(g)
			}
		})
	}
	if lv.Window > 0 {
		for _, g := range gens {
			w := lv.Window
			if w > p.L2.MSHRs {
				w = p.L2.MSHRs
			}
			for s := 0; s < w; s++ {
				launch(g)
			}
		}
	}

	// Latency probe: a dedicated core issuing one dependent random load at
	// a time, exactly like X-Mem's pointer-chasing latency thread.
	probe := memsys.NewHierarchy(node)
	rng := rand.New(rand.NewSource(opts.Seed + int64(lv.Window*1000) + int64(lv.GapCyc)))
	const probeArena = 1 << 29
	probeBase := uint64(opts.Cores+8) << 30

	completed := 0
	var latAccum events.Duration
	var measStart events.Time
	measuring := false
	totalOps := opts.WarmupOps + opts.ProbeOps

	var chase func()
	chase = func() {
		if completed >= totalOps {
			stop = true
			return
		}
		addr := probeBase + (rng.Uint64() % probeArena &^ (lineBytes - 1))
		start := sched.Now()
		probe.Access(addr, memsys.Load, func() {
			if measuring {
				latAccum += sched.Now() - start
			}
			completed++
			if completed == opts.WarmupOps {
				node.DRAM.ResetStats()
				measStart = sched.Now()
				measuring = true
			}
			chase()
		})
	}
	chase()
	const cancelCheckEvery = 8192
	cancelSteps := 0
	sched.RunWhile(func() bool {
		cancelSteps++
		if cancelSteps%cancelCheckEvery == 0 && ctx.Err() != nil {
			return false
		}
		return !stop
	})
	if err := ctx.Err(); err != nil {
		return queueing.CurvePoint{}, fmt.Errorf("measurement cancelled: %w", err)
	}

	window := sched.Now() - measStart
	if window <= 0 || opts.ProbeOps == 0 {
		return queueing.CurvePoint{}, fmt.Errorf("empty measurement window")
	}
	bytes := node.DRAM.Stats.BytesMoved(p.LineBytes)
	bw := float64(bytes) / window.Seconds() / 1e9
	lat := float64(latAccum) / float64(opts.ProbeOps) / 1e3 // ps → ns
	return queueing.CurvePoint{BandwidthGBs: bw, LatencyNs: lat}, nil
}

// Profile is a serializable bandwidth→latency profile for one platform.
type Profile struct {
	Platform  string                `json:"platform"`
	LineBytes int                   `json:"line_bytes"`
	Points    []queueing.CurvePoint `json:"points"`
}

// NewProfile wraps a measured curve for serialization.
func NewProfile(p *platform.Platform, curve *queueing.Curve) *Profile {
	return &Profile{Platform: p.Name, LineBytes: p.LineBytes, Points: curve.Points()}
}

// Curve reconstructs the lookup curve.
func (pr *Profile) Curve() (*queueing.Curve, error) { return queueing.NewCurve(pr.Points) }

// WriteJSON serializes the profile.
func (pr *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pr)
}

// ReadJSON deserializes and validates a profile: the points must form a
// legal curve (finite, positive latencies) and the line size, if present,
// must be positive — profiles may arrive from untrusted files.
func ReadJSON(r io.Reader) (*Profile, error) {
	var pr Profile
	if err := json.NewDecoder(r).Decode(&pr); err != nil {
		return nil, fmt.Errorf("xmem: decoding profile: %w", err)
	}
	if len(pr.Points) == 0 {
		return nil, fmt.Errorf("xmem: profile has no points")
	}
	if pr.LineBytes < 0 {
		return nil, fmt.Errorf("xmem: invalid line size %d", pr.LineBytes)
	}
	if _, err := queueing.NewCurve(pr.Points); err != nil {
		return nil, fmt.Errorf("xmem: invalid profile: %w", err)
	}
	sort.Slice(pr.Points, func(i, j int) bool { return pr.Points[i].BandwidthGBs < pr.Points[j].BandwidthGBs })
	return &pr, nil
}

// cache deduplicates and retains characterizations by platform name:
// concurrent ProfileFor calls for the same platform share one run, while
// different platforms characterize in parallel (the old mutex-over-the-map
// serialized them).
var cache engine.Group[string, *queueing.Curve]

// ProfileFor returns the (process-cached) default characterization for a
// platform — the paper's once-per-processor artifact.
func ProfileFor(p *platform.Platform) (*queueing.Curve, error) {
	return ProfileForContext(context.Background(), p)
}

// ProfileForContext is ProfileFor with cancellation; the underlying sweep
// also fans its operating points across the default worker pool.
func ProfileForContext(ctx context.Context, p *platform.Platform) (*queueing.Curve, error) {
	return cache.Do(ctx, p.Name, func() (*queueing.Curve, error) {
		return CharacterizeContext(ctx, p, Options{})
	})
}
