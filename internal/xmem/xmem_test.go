package xmem

import (
	"bytes"
	"strings"
	"testing"

	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// fastOpts keeps unit-test characterizations cheap.
var fastOpts = Options{
	ProbeOps:  80,
	WarmupOps: 20,
	Levels: []Level{
		{Window: 0},
		{Window: 1, GapCyc: 200},
		{Window: 2},
		{Window: 6},
		{Window: 12},
	},
}

func TestCharacterizeProducesMonotoneCurve(t *testing.T) {
	p := platform.SKL()
	c, err := Characterize(p, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Points()
	if len(pts) < 3 {
		t.Fatalf("curve has %d points, want several", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].LatencyNs < pts[i-1].LatencyNs {
			t.Fatalf("latency decreased along the curve: %+v", pts)
		}
	}
	if c.IdleLatencyNs() < 60 || c.IdleLatencyNs() > 110 {
		t.Errorf("SKL idle latency = %.1f ns, want ~82", c.IdleLatencyNs())
	}
	if c.MaxBandwidthGBs() < 2*c.Points()[0].BandwidthGBs {
		t.Error("sweep did not increase bandwidth meaningfully")
	}
}

func TestCharacterizeValidation(t *testing.T) {
	p := platform.SKL()
	p.Cores = 0
	if _, err := Characterize(p, fastOpts); err == nil {
		t.Fatal("invalid platform accepted")
	}
	if _, err := Characterize(platform.SKL(), Options{Cores: -3}); err == nil {
		t.Fatal("negative core count accepted")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := platform.KNL()
	curve := queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 10, LatencyNs: 170},
		{BandwidthGBs: 300, LatencyNs: 210},
	})
	prof := NewProfile(p, curve)
	var buf bytes.Buffer
	if err := prof.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Platform != "KNL" || back.LineBytes != 64 || len(back.Points) != 2 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	c2, err := back.Curve()
	if err != nil {
		t.Fatal(err)
	}
	if c2.LatencyAt(10) != 170 {
		t.Fatalf("reconstructed curve wrong: %v", c2.LatencyAt(10))
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"platform":"X","points":[]}`)); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"platform":"X","line_bytes":-64,"points":[{"BandwidthGBs":1,"LatencyNs":80}]}`)); err == nil {
		t.Fatal("negative line size accepted")
	}
	for _, bad := range []string{
		`{"platform":"X","points":[{"BandwidthGBs":-1,"LatencyNs":80}]}`,
		`{"platform":"X","points":[{"BandwidthGBs":1,"LatencyNs":0}]}`,
		`{"platform":"X","points":[{"BandwidthGBs":1,"LatencyNs":1e999}]}`,
	} {
		if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
			t.Fatalf("invalid profile accepted: %s", bad)
		}
	}
}

func TestProfileForCaches(t *testing.T) {
	// Use the cache with a pre-seeded entry to avoid a full characterization
	// in unit tests.
	cache.Put("FAKE", queueing.MustCurve([]queueing.CurvePoint{{BandwidthGBs: 1, LatencyNs: 100}}))
	defer cache.Forget("FAKE")
	p := platform.SKL()
	p.Name = "FAKE"
	c, err := ProfileFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.IdleLatencyNs() != 100 {
		t.Fatal("cached profile not returned")
	}
}

// TestCharacterizeDeterministicAcrossWorkers: the sweep must produce a
// byte-identical serialized profile whether the operating points run
// serially or across a pool — the engine's determinism bar.
func TestCharacterizeDeterministicAcrossWorkers(t *testing.T) {
	p := platform.SKL()
	render := func(workers int) string {
		opts := fastOpts
		opts.Workers = workers
		c, err := Characterize(p, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := NewProfile(p, c).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	for _, workers := range []int{2, 4, 8} {
		if got := render(workers); got != serial {
			t.Fatalf("profile differs at %d workers:\nserial:\n%s\nparallel:\n%s", workers, serial, got)
		}
	}
}

// TestCalibrationAgainstPaperAnchors verifies the simulated loaded-latency
// curves land near the (bandwidth, latency) pairs the paper reports from
// X-Mem on real hardware (Tables IV–IX). This is the shape contract the
// whole reproduction rests on. Skipped in -short mode: full-node
// characterizations take seconds.
func TestCalibrationAgainstPaperAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full-node characterization is slow")
	}
	anchors := map[string][]struct {
		bw, lat, tol float64
	}{
		"SKL": {
			{3.2, 82, 0.10},
			{37.9, 93, 0.15},
			{58.2, 100, 0.15},
			{92.9, 117, 0.20},
			{106.9, 145, 0.30},
		},
		"KNL": {
			{26.9, 179, 0.10},
			{122.9, 167, 0.10},
			{233, 180, 0.10},
			{253, 187, 0.10},
			{296, 209, 0.15},
			{344, 238, 0.20},
		},
		"A64FX": {
			{10.8, 142, 0.10},
			{93.9, 145, 0.10},
			{271, 156, 0.10},
			{418, 165, 0.15},
			{575, 179, 0.20},
			{649, 188, 0.20},
			{788, 280, 0.30},
		},
	}
	for _, p := range platform.All() {
		c, err := Characterize(p, Options{ProbeOps: 200, WarmupOps: 40})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, a := range anchors[p.Name] {
			got := c.LatencyAt(a.bw)
			if got < a.lat*(1-a.tol) || got > a.lat*(1+a.tol) {
				t.Errorf("%s: latency at %.1f GB/s = %.1f ns, paper %.0f ns (tol ±%.0f%%)",
					p.Name, a.bw, got, a.lat, a.tol*100)
			}
		}
		// The achievable peak must stay below the theoretical peak and
		// above the paper's highest observed utilization.
		maxBW := c.MaxBandwidthGBs()
		if maxBW >= p.PeakGBs() {
			t.Errorf("%s: achievable %f ≥ theoretical %f", p.Name, maxBW, p.PeakGBs())
		}
		minAchievable := map[string]float64{"SKL": 106, "KNL": 330, "A64FX": 760}[p.Name]
		if maxBW < minAchievable {
			t.Errorf("%s: achievable peak %.1f below paper's observed %.0f", p.Name, maxBW, minAchievable)
		}
	}
}
