package experiments_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"littleslaw/internal/experiments"
	"littleslaw/internal/report"
)

var (
	updateGolden  = flag.Bool("update", false, "rewrite the golden table fixtures from this run")
	goldenWorkers = flag.Int("golden-workers", 0, "worker count for the golden regeneration (0 = GOMAXPROCS); output must not depend on it")
)

// goldenScale keeps the six-table regeneration affordable in CI (~3 min
// single-core; the fixed per-run simulator cost dominates below this).
// The fixtures encode the full pipeline — simulation, Equation 2, limiter
// attribution — at this scale; bump it only together with -update.
const goldenScale = 0.05

// goldenRunner builds the deterministic pipeline the fixtures were made
// with: published anchor profiles instead of a fresh X-Mem characterization,
// so the run measures the simulator and analysis, not the profiler.
func goldenRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{
		Scale:      goldenScale,
		Workers:    *goldenWorkers,
		ProfileFor: experiments.PaperProfileFor,
	})
}

// renderTable produces the committed fixture form: the human-readable
// table followed by its CSV, so a diff shows both alignment and raw values.
func renderTable(t *testing.T, tbl *experiments.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := report.WriteTable(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n")
	if err := report.WriteTableCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTables regenerates all six paper tables and compares them
// byte-for-byte against committed fixtures. Run with -update (and optionally
// -golden-workers N) to refresh the fixtures after an intentional change:
//
//	go test ./internal/experiments -run TestGoldenTables -args -update
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration is a multi-minute run")
	}
	r := goldenRunner()
	tables, err := r.AllTables()
	if err != nil {
		t.Fatal(err)
	}
	ids := experiments.TableIDs()
	if len(tables) != len(ids) {
		t.Fatalf("AllTables returned %d tables, want %d", len(tables), len(ids))
	}
	for i, tbl := range tables {
		if tbl.ID != ids[i] {
			t.Fatalf("table %d has ID %s, want %s", i, tbl.ID, ids[i])
		}
		got := renderTable(t, tbl)
		path := filepath.Join("testdata", "golden", "table_"+tbl.ID+".golden")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, len(got))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing fixture %s (regenerate with -args -update): %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("table %s diverges from %s\n--- got ---\n%s\n--- want ---\n%s",
				tbl.ID, path, got, want)
		}
	}
}
