// Package experiments regenerates the paper's evaluation artifacts:
// Tables IV–IX (one optimization ladder per application per platform),
// Figure 2 (the MSHR-ceiling roofline), and the Section I/II critiques.
//
// Each table row is produced the way the paper produced it: a full-node
// simulated run of the routine variant, bandwidth read back through the
// platform's counter model, loaded latency looked up in the once-measured
// X-Mem profile, occupancy from Equation 2 — plus, for validation, the
// simulator's true MSHR occupancy and the measured speedup of the next
// optimization on the ladder.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"littleslaw/internal/core"
	"littleslaw/internal/engine"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
	"littleslaw/internal/workloads"
	"littleslaw/internal/xmem"
)

// Step is one rung of an optimization ladder: a workload variant run with
// a given SMT depth, and the optimization the paper applies next.
type Step struct {
	Variant workloads.Variant
	Threads int
	// NextOpt is the paper's next optimization (empty on final rows).
	NextOpt core.Optimization
	// NextVariant/NextThreads define the configuration NextOpt leads to.
	NextVariant workloads.Variant
	NextThreads int
	// Final marks rows with no further optimization ("-" in the tables).
	Final bool
	// PaperBW / PaperOcc / PaperSpeedup echo the published values for
	// side-by-side reporting (0 when the paper has none).
	PaperBW      float64
	PaperOcc     float64
	PaperSpeedup float64
}

// Row is one generated table row.
type Row struct {
	Platform string
	Source   string
	Threads  int

	BWGBs   float64 // observed bandwidth (reads + writebacks)
	PeakPct float64 // of theoretical peak
	LatNs   float64 // loaded latency from the X-Mem profile
	Occ     float64 // n_avg via Equation 2

	TrueL1Occ float64 // simulator ground truth
	TrueL2Occ float64

	NextOpt string
	Stance  core.Stance // the recipe's verdict on NextOpt
	Speedup float64     // measured throughput ratio of applying NextOpt

	PaperBW      float64
	PaperOcc     float64
	PaperSpeedup float64
}

// Table is a regenerated paper table.
type Table struct {
	ID       string // "IV" … "IX"
	Workload string
	Routine  string
	Rows     []Row
}

// Options configures a regeneration run.
type Options struct {
	// Scale multiplies per-thread work (1.0 = full benchmark size).
	Scale float64
	// Platforms restricts the run (nil = all three).
	Platforms []string
	// ProfileFor supplies the bandwidth→latency curve per platform;
	// nil means the cached X-Mem characterization (the honest pipeline).
	// A supplied function must be safe for concurrent calls with distinct
	// platforms (the Runner already deduplicates same-platform calls).
	ProfileFor func(*platform.Platform) (*queueing.Curve, error)
	// ProfileForContext is ProfileFor for cancellation-aware sources (a
	// service looking profiles up through its own request-scoped cache).
	// When set it takes precedence over ProfileFor.
	ProfileForContext func(context.Context, *platform.Platform) (*queueing.Curve, error)
	// Workers bounds how many simulations run concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 forces serial execution. Table output is
	// byte-identical for any worker count.
	Workers int
}

func (o *Options) normalize() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if len(o.Platforms) == 0 {
		o.Platforms = []string{"SKL", "KNL", "A64FX"}
	}
}

// tableSpecs defines the paper's ladders, in the tables' row order.
var tableSpecs = map[string]struct {
	id       string
	workload string
	steps    map[string][]Step
}{
	"IV": {id: "IV", workload: "ISx", steps: isxSteps()},
	"V":  {id: "V", workload: "HPCG", steps: hpcgSteps()},
	"VI": {id: "VI", workload: "PENNANT", steps: pennantSteps()},
	"VII": {id: "VII", workload: "CoMD",
		steps: comdSteps()},
	"VIII": {id: "VIII", workload: "MiniGhost", steps: minighostSteps()},
	"IX":   {id: "IX", workload: "SNAP", steps: snapSteps()},
}

// TableIDs lists the regenerable tables in paper order.
func TableIDs() []string { return []string{"IV", "V", "VI", "VII", "VIII", "IX"} }

func isxSteps() map[string][]Step {
	base := workloads.Variant{}
	vect := workloads.Variant{Vectorized: true}
	vectPref := workloads.Variant{Vectorized: true, SWPrefetchL2: true}
	pref := workloads.Variant{SWPrefetchL2: true}
	return map[string][]Step{
		"SKL": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 106.9, PaperOcc: 10.1, PaperSpeedup: 1.0},
			{Variant: vect, Threads: 1, NextOpt: core.SMT2, NextVariant: vect, NextThreads: 2, PaperBW: 107.1, PaperOcc: 10.1, PaperSpeedup: 1.0},
		},
		"KNL": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 233, PaperOcc: 10.23, PaperSpeedup: 1.02},
			{Variant: vect, Threads: 1, NextOpt: core.SMT2, NextVariant: vect, NextThreads: 2, PaperBW: 240, PaperOcc: 10.66, PaperSpeedup: 1.04},
			{Variant: vect, Threads: 2, NextOpt: core.SMT4, NextVariant: vect, NextThreads: 4, PaperBW: 253, PaperOcc: 11.6, PaperSpeedup: 0.98},
			{Variant: vect, Threads: 2, NextOpt: core.SoftwarePrefetchL2, NextVariant: vectPref, NextThreads: 2, PaperBW: 253, PaperOcc: 11.6, PaperSpeedup: 1.4},
			{Variant: vectPref, Threads: 2, Final: true, PaperBW: 344, PaperOcc: 20},
		},
		"A64FX": {
			{Variant: base, Threads: 1, NextOpt: core.SoftwarePrefetchL2, NextVariant: pref, NextThreads: 1, PaperBW: 649, PaperOcc: 9.92, PaperSpeedup: 1.3},
			{Variant: pref, Threads: 1, Final: true, PaperBW: 788, PaperOcc: 17.95},
		},
	}
}

func hpcgSteps() map[string][]Step {
	base := workloads.Variant{}
	vect := workloads.Variant{Vectorized: true}
	return map[string][]Step{
		"SKL": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 109.9, PaperOcc: 12.6, PaperSpeedup: 1.0},
			{Variant: vect, Threads: 1, NextOpt: core.SMT2, NextVariant: vect, NextThreads: 2, PaperBW: 108, PaperOcc: 12.6, PaperSpeedup: 0.98},
		},
		"KNL": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 205, PaperOcc: 8.95, PaperSpeedup: 1.15},
			{Variant: vect, Threads: 1, NextOpt: core.SMT2, NextVariant: vect, NextThreads: 2, PaperBW: 235, PaperOcc: 10.38, PaperSpeedup: 1.26},
			{Variant: vect, Threads: 2, NextOpt: core.SMT4, NextVariant: vect, NextThreads: 4, PaperBW: 296, PaperOcc: 15.1, PaperSpeedup: 1.03},
		},
		"A64FX": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 271, PaperOcc: 3.44, PaperSpeedup: 1.7},
			{Variant: vect, Threads: 1, Final: true, PaperBW: 418, PaperOcc: 5.62},
		},
	}
}

func pennantSteps() map[string][]Step {
	base := workloads.Variant{}
	vect := workloads.Variant{Vectorized: true}
	return map[string][]Step{
		"SKL": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 37.9, PaperOcc: 2.29, PaperSpeedup: 2.0},
			{Variant: vect, Threads: 1, NextOpt: core.SMT2, NextVariant: vect, NextThreads: 2, PaperBW: 46.8, PaperOcc: 2.89, PaperSpeedup: 1.4},
			{Variant: vect, Threads: 2, Final: true, PaperBW: 58.5, PaperOcc: 3.73},
		},
		"KNL": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 78.2, PaperOcc: 3.49, PaperSpeedup: 5.76},
			{Variant: vect, Threads: 1, NextOpt: core.SMT2, NextVariant: vect, NextThreads: 2, PaperBW: 130.6, PaperOcc: 5.96, PaperSpeedup: 1.17},
			{Variant: vect, Threads: 2, NextOpt: core.SMT4, NextVariant: vect, NextThreads: 4, PaperBW: 233.6, PaperOcc: 11.34, PaperSpeedup: 1.0},
		},
		"A64FX": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 69.3, PaperOcc: 0.81, PaperSpeedup: 3.83},
			{Variant: vect, Threads: 1, Final: true, PaperBW: 102, PaperOcc: 1.21},
		},
	}
}

func comdSteps() map[string][]Step {
	base := workloads.Variant{}
	vect := workloads.Variant{Vectorized: true}
	return map[string][]Step{
		"SKL": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 3.19, PaperOcc: 0.17, PaperSpeedup: 1.4},
			{Variant: vect, Threads: 1, NextOpt: core.SMT2, NextVariant: vect, NextThreads: 2, PaperBW: 4.56, PaperOcc: 0.29, PaperSpeedup: 1.22},
			{Variant: vect, Threads: 2, Final: true, PaperBW: 7.8, PaperOcc: 0.41},
		},
		"KNL": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 26.88, PaperOcc: 1.17, PaperSpeedup: 1.35},
			{Variant: vect, Threads: 1, NextOpt: core.SMT2, NextVariant: vect, NextThreads: 2, PaperBW: 35.39, PaperOcc: 1.55, PaperSpeedup: 1.52},
			{Variant: vect, Threads: 2, NextOpt: core.SMT4, NextVariant: vect, NextThreads: 4, PaperBW: 82.82, PaperOcc: 3.76, PaperSpeedup: 1.25},
			{Variant: vect, Threads: 4, Final: true, PaperBW: 141, PaperOcc: 6.54},
		},
		"A64FX": {
			{Variant: base, Threads: 1, NextOpt: core.Vectorize, NextVariant: vect, NextThreads: 1, PaperBW: 10.75, PaperOcc: 0.12, PaperSpeedup: 1.24},
			{Variant: vect, Threads: 1, Final: true, PaperBW: 13.44, PaperOcc: 0.16},
		},
	}
}

func minighostSteps() map[string][]Step {
	base := workloads.Variant{}
	tiled := workloads.Variant{Tiled: true}
	return map[string][]Step{
		"SKL": {
			{Variant: base, Threads: 1, NextOpt: core.LoopTiling, NextVariant: tiled, NextThreads: 1, PaperBW: 92.93, PaperOcc: 7.07, PaperSpeedup: 1.14},
			{Variant: tiled, Threads: 1, NextOpt: core.SMT2, NextVariant: tiled, NextThreads: 2, PaperBW: 107.14, PaperOcc: 10.32, PaperSpeedup: 1.02},
		},
		"KNL": {
			{Variant: base, Threads: 1, NextOpt: core.LoopTiling, NextVariant: tiled, NextThreads: 1, PaperBW: 232.96, PaperOcc: 11.26, PaperSpeedup: 1.47},
			{Variant: tiled, Threads: 1, NextOpt: core.SMT2, NextVariant: tiled, NextThreads: 2, PaperBW: 260.8, PaperOcc: 12.79, PaperSpeedup: 1.0},
			{Variant: tiled, Threads: 2, NextOpt: core.SMT4, NextVariant: tiled, NextThreads: 4, PaperBW: 274.56, PaperOcc: 13.74, PaperSpeedup: 1.0},
		},
		"A64FX": {
			{Variant: base, Threads: 1, NextOpt: core.LoopTiling, NextVariant: tiled, NextThreads: 1, PaperBW: 575, PaperOcc: 8.38, PaperSpeedup: 1.51},
			{Variant: tiled, Threads: 1, Final: true, PaperBW: 554, PaperOcc: 7.85},
		},
	}
}

func snapSteps() map[string][]Step {
	base := workloads.Variant{}
	pref := workloads.Variant{SWPrefetchL2: true}
	return map[string][]Step{
		"SKL": {
			{Variant: base, Threads: 1, NextOpt: core.SoftwarePrefetchL2, NextVariant: pref, NextThreads: 1, PaperBW: 58.2, PaperOcc: 3.79, PaperSpeedup: 1.01},
			{Variant: pref, Threads: 1, NextOpt: core.SMT2, NextVariant: pref, NextThreads: 2, PaperBW: 59, PaperOcc: 3.87, PaperSpeedup: 1.03},
		},
		"KNL": {
			{Variant: base, Threads: 1, NextOpt: core.SoftwarePrefetchL2, NextVariant: pref, NextThreads: 1, PaperBW: 122.9, PaperOcc: 5.0, PaperSpeedup: 1.08},
			{Variant: pref, Threads: 1, NextOpt: core.SMT2, NextVariant: pref, NextThreads: 2, PaperBW: 126.4, PaperOcc: 5.2, PaperSpeedup: 1.14},
			{Variant: pref, Threads: 2, NextOpt: core.SMT4, NextVariant: pref, NextThreads: 4, PaperBW: 166.4, PaperOcc: 6.98, PaperSpeedup: 1.02},
		},
		"A64FX": {
			{Variant: base, Threads: 1, NextOpt: core.SoftwarePrefetchL2, NextVariant: pref, NextThreads: 1, PaperBW: 93.88, PaperOcc: 1.1, PaperSpeedup: 1.07},
			{Variant: pref, Threads: 1, Final: true, PaperBW: 97.3, PaperOcc: 1.2},
		},
	}
}

// runKey identifies a distinct simulated configuration.
type runKey struct {
	workload string
	plat     string
	variant  workloads.Variant
	threads  int
}

// Runner executes table regenerations on a bounded worker pool, caching
// simulated configurations (singleflight per runKey) so that a row and its
// successor share runs and concurrent pipelines never duplicate work.
type Runner struct {
	opts     Options
	pool     *engine.Pool
	cache    engine.Group[runKey, *sim.Result]
	profiles engine.Group[string, *queueing.Curve]
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	opts.normalize()
	return &Runner{opts: opts, pool: engine.New(opts.Workers)}
}

func (r *Runner) run(ctx context.Context, w workloads.Workload, p *platform.Platform, v workloads.Variant, threads int) (*sim.Result, error) {
	key := runKey{workload: w.Name(), plat: p.Name, variant: v, threads: threads}
	return r.cache.Do(ctx, key, func() (*sim.Result, error) {
		cfg := w.WithVariant(v).Config(p, threads, r.opts.Scale)
		res, err := runner.Run(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s %s: %w", w.Name(), p.Name, v.Label(threads), err)
		}
		return res, nil
	})
}

// profile returns the platform's bandwidth→latency curve, deduplicating
// concurrent requests per platform.
func (r *Runner) profile(ctx context.Context, p *platform.Platform) (*queueing.Curve, error) {
	curve, err := r.profiles.Do(ctx, p.Name, func() (*queueing.Curve, error) {
		switch {
		case r.opts.ProfileForContext != nil:
			return r.opts.ProfileForContext(ctx, p)
		case r.opts.ProfileFor != nil:
			return r.opts.ProfileFor(p)
		default:
			return xmem.ProfileForContext(ctx, p)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling %s: %w", p.Name, err)
	}
	return curve, nil
}

// tableWork enumerates everything a set of tables needs — each platform's
// profile and every distinct simulated configuration — in first-use order.
func (r *Runner) tableWork(ids []string) (plats []*platform.Platform, keys []runKey, err error) {
	seenKey := map[runKey]bool{}
	addKey := func(k runKey) {
		if !seenKey[k] {
			seenKey[k] = true
			keys = append(keys, k)
		}
	}
	seenPlat := map[string]bool{}
	for _, platName := range r.opts.Platforms {
		if seenPlat[platName] {
			continue
		}
		seenPlat[platName] = true
		p, err := platform.ByName(platName)
		if err != nil {
			return nil, nil, err
		}
		plats = append(plats, p)
	}
	for _, id := range ids {
		spec, ok := tableSpecs[id]
		if !ok {
			return nil, nil, fmt.Errorf("experiments: unknown table %q (want IV..IX)", id)
		}
		for _, p := range plats {
			for _, st := range spec.steps[p.Name] {
				addKey(runKey{workload: spec.workload, plat: p.Name, variant: st.Variant, threads: st.Threads})
				if !st.Final {
					addKey(runKey{workload: spec.workload, plat: p.Name, variant: st.NextVariant, threads: st.NextThreads})
				}
			}
		}
	}
	return plats, keys, nil
}

// precompute dispatches the tables' profiles and distinct simulations
// across the worker pool, warming the Runner's caches. Assembly afterwards
// is pure cache hits, so row order never depends on completion order.
func (r *Runner) precompute(ctx context.Context, ids []string) error {
	plats, keys, err := r.tableWork(ids)
	if err != nil {
		return err
	}
	jobs := make([]func(context.Context) (struct{}, error), 0, len(plats)+len(keys))
	for _, p := range plats {
		p := p
		jobs = append(jobs, func(ctx context.Context) (struct{}, error) {
			_, err := r.profile(ctx, p)
			return struct{}{}, err
		})
	}
	for _, k := range keys {
		k := k
		jobs = append(jobs, func(ctx context.Context) (struct{}, error) {
			w, ok := workloads.ByName(k.workload)
			if !ok {
				return struct{}{}, fmt.Errorf("experiments: unknown workload %q", k.workload)
			}
			p, err := platform.ByName(k.plat)
			if err != nil {
				return struct{}{}, err
			}
			_, err = r.run(ctx, w, p, k.variant, k.threads)
			return struct{}{}, err
		})
	}
	_, err = engine.Map(ctx, r.pool, jobs)
	return err
}

// Table regenerates one paper table.
func (r *Runner) Table(id string) (*Table, error) {
	return r.TableContext(context.Background(), id)
}

// TableContext regenerates one paper table, dispatching its distinct runs
// concurrently while emitting rows in paper order.
func (r *Runner) TableContext(ctx context.Context, id string) (*Table, error) {
	if err := r.precompute(ctx, []string{id}); err != nil {
		return nil, err
	}
	return r.assemble(ctx, id)
}

// assemble builds a table's rows in paper order from the warmed caches.
func (r *Runner) assemble(ctx context.Context, id string) (*Table, error) {
	spec, ok := tableSpecs[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown table %q (want IV..IX)", id)
	}
	w, _ := workloads.ByName(spec.workload)
	t := &Table{ID: spec.id, Workload: w.Name(), Routine: w.Routine()}

	for _, platName := range r.opts.Platforms {
		p, err := platform.ByName(platName)
		if err != nil {
			return nil, err
		}
		profile, err := r.profile(ctx, p)
		if err != nil {
			return nil, err
		}
		steps, ok := spec.steps[platName]
		if !ok {
			continue
		}
		for _, st := range steps {
			res, err := r.run(ctx, w, p, st.Variant, st.Threads)
			if err != nil {
				return nil, err
			}
			m := core.Measurement{
				Routine:                w.Routine(),
				BandwidthGBs:           res.TotalGBs,
				ActiveCores:            res.Cores,
				ThreadsPerCore:         st.Threads,
				PrefetchedReadFraction: res.PrefetchedReadFraction,
				RandomAccess:           w.RandomAccess(),
			}
			rep, err := core.Analyze(p, profile, m)
			if err != nil {
				return nil, err
			}
			row := Row{
				Platform:     p.Name,
				Source:       st.Variant.Label(st.Threads),
				Threads:      st.Threads,
				BWGBs:        res.TotalGBs,
				PeakPct:      100 * rep.PeakFraction,
				LatNs:        rep.LatencyNs,
				Occ:          rep.Occupancy,
				TrueL1Occ:    res.TrueL1Occ,
				TrueL2Occ:    res.TrueL2Occ,
				PaperBW:      st.PaperBW,
				PaperOcc:     st.PaperOcc,
				PaperSpeedup: st.PaperSpeedup,
			}
			if !st.Final {
				next, err := r.run(ctx, w, p, st.NextVariant, st.NextThreads)
				if err != nil {
					return nil, err
				}
				row.NextOpt = st.NextOpt.String()
				row.Speedup = next.Throughput / res.Throughput
				caps := w.WithVariant(st.Variant).Capabilities(p, st.Threads)
				row.Stance = core.AdviceFor(core.Advise(rep, caps), st.NextOpt).Stance
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// AllTables regenerates every table, in order.
func (r *Runner) AllTables() ([]*Table, error) {
	return r.AllTablesContext(context.Background())
}

// AllTablesContext regenerates every table in paper order, with every
// distinct simulation across all six tables sharing one worker-pool
// dispatch — cross-table parallelism, identical output to the serial path.
func (r *Runner) AllTablesContext(ctx context.Context) ([]*Table, error) {
	ids := TableIDs()
	if err := r.precompute(ctx, ids); err != nil {
		return nil, err
	}
	var out []*Table
	for _, id := range ids {
		t, err := r.assemble(ctx, id)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// SortedCacheKeys aids debugging/tests.
func (r *Runner) SortedCacheKeys() []string {
	var keys []string
	for _, k := range r.cache.Keys() {
		keys = append(keys, fmt.Sprintf("%s/%s/%+v/%d", k.workload, k.plat, k.variant, k.threads))
	}
	sort.Strings(keys)
	return keys
}
