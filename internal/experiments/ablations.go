package experiments

import (
	"context"
	"fmt"

	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
	"littleslaw/internal/workloads"
)

// MSHRSweepPoint is one point of the MSHR-capacity ablation.
type MSHRSweepPoint struct {
	L1MSHRs      int
	BandwidthGBs float64
	TrueL1Occ    float64
	Throughput   float64
}

// MSHRSweep reruns ISx on KNL with the L1 MSHR capacity swept — the
// design-choice ablation behind the whole metric: achievable bandwidth for
// a random-access routine scales with the MSHR file until another resource
// binds, which is why MSHR occupancy is the right lens (§III-A).
func (r *Runner) MSHRSweep(capacities []int) ([]MSHRSweepPoint, error) {
	if len(capacities) == 0 {
		capacities = []int{4, 6, 8, 10, 12, 16, 20}
	}
	w, _ := workloads.ByName("ISx")
	var out []MSHRSweepPoint
	for _, c := range capacities {
		p, _ := platform.ByName("KNL")
		p.L1.MSHRs = c
		if p.L2.MSHRs < c {
			p.L2.MSHRs = c
		}
		cfg := w.Config(p, 1, r.opts.Scale)
		cfg.Window = c + 2 // keep the window from masking the MSHR file
		res, err := runner.Run(context.Background(), cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: mshr sweep %d: %w", c, err)
		}
		out = append(out, MSHRSweepPoint{
			L1MSHRs:      c,
			BandwidthGBs: res.TotalGBs,
			TrueL1Occ:    res.TrueL1Occ,
			Throughput:   res.Throughput,
		})
	}
	return out, nil
}

// StreamTableSweepPoint is one point of the prefetcher-table ablation.
type StreamTableSweepPoint struct {
	Streams     int
	BW2HT       float64
	BW4HT       float64
	Gain4HTOver float64 // throughput(4HT)/throughput(2HT)
}

// StreamTableSweep tests the paper's §IV-B mechanism for HPCG's weak
// 4-way-SMT gain on KNL: when the co-resident threads' streams
// oversubscribe the prefetcher's table, coverage collapses and the extra
// threads stop paying. Our HPCG model carries ~3 streams per thread (the
// real code nearer 8–10), so the collapse appears at a 4-entry table the
// way the paper's appears at 16; the sweep shows the gain recovering as
// the table grows past the stream population.
func (r *Runner) StreamTableSweep(tableSizes []int) ([]StreamTableSweepPoint, error) {
	if len(tableSizes) == 0 {
		tableSizes = []int{4, 8, 16, 32}
	}
	w, _ := workloads.ByName("HPCG")
	vect := workloads.Variant{Vectorized: true}
	var out []StreamTableSweepPoint
	for _, s := range tableSizes {
		run := func(threads int) (*sim.Result, error) {
			p, _ := platform.ByName("KNL")
			p.Prefetcher.Streams = s
			cfg := w.WithVariant(vect).Config(p, threads, r.opts.Scale)
			// Half the node: the mechanism under test is prefetcher
			// coverage, which DRAM saturation would mask.
			cfg.Cores = 32
			return runner.Run(context.Background(), cfg)
		}
		two, err := run(2)
		if err != nil {
			return nil, err
		}
		four, err := run(4)
		if err != nil {
			return nil, err
		}
		out = append(out, StreamTableSweepPoint{
			Streams:     s,
			BW2HT:       two.TotalGBs,
			BW4HT:       four.TotalGBs,
			Gain4HTOver: four.Throughput / two.Throughput,
		})
	}
	return out, nil
}

// CoalescingAblation compares MSHR coalescing on vs off on a scalar
// word-granular stream (eight 8-byte loads per line issued back to back,
// as unvectorized array code does): with coalescing the eight concurrent
// misses to one line merge into one memory read; without it each fetches
// the line again — the property that makes the MSHR file, which tracks
// *unique* lines, the correct MLP denominator (§III-A).
type CoalescingAblation struct {
	BWCoalesced   float64
	BWDuplicate   float64
	TrafficBlowup float64 // traffic per unit of work, off/on
	Slowdown      float64 // throughput(coalesced)/throughput(duplicated)
}

// Coalescing runs the ablation on SKL.
func (r *Runner) Coalescing() (*CoalescingAblation, error) {
	p, _ := platform.ByName("SKL")
	ops := int(12000 * r.opts.Scale)
	if ops < 500 {
		ops = 500
	}

	run := func(noCoalesce bool) (*sim.Result, error) {
		cfg := sim.Config{
			Plat:   p,
			Window: 8,
			NewGen: func(coreID, threadID int) cpu.Generator {
				base := uint64(coreID+1) << 34
				i := 0
				return cpu.GeneratorFunc(func() (cpu.Op, bool) {
					if i >= ops {
						return cpu.Op{}, false
					}
					// Scalar word-granular stream: 8 loads per 64B line.
					addr := base + uint64(i)*8
					i++
					return cpu.Op{Addr: addr, Kind: memsys.Load, GapCycles: 1, Work: 1}, true
				})
			},
			ConfigureHierarchy: func(h *memsys.Hierarchy) { h.NoCoalesce = noCoalesce },
		}
		return runner.Run(context.Background(), cfg)
	}
	on, err := run(false)
	if err != nil {
		return nil, err
	}
	off, err := run(true)
	if err != nil {
		return nil, err
	}
	return &CoalescingAblation{
		BWCoalesced:   on.TotalGBs,
		BWDuplicate:   off.TotalGBs,
		TrafficBlowup: (off.TotalGBs / off.Throughput) / (on.TotalGBs / on.Throughput),
		Slowdown:      on.Throughput / off.Throughput,
	}, nil
}

// FutureHBM runs the §IV-G thought experiment: on an HBM3e-class node the
// streaming HPCG fills the L2 MSHR file long before peak bandwidth, so
// "bandwidth below peak" no longer implies compute-bound — the MSHRQ does.
type FutureHBMResult struct {
	BandwidthGBs float64
	PeakFraction float64
	TrueL2Occ    float64
	L2Capacity   int
}

// FutureHBM runs HPCG (vectorized) on the hypothetical HBM3E platform.
func (r *Runner) FutureHBM() (*FutureHBMResult, error) {
	w, _ := workloads.ByName("HPCG")
	p := platform.HBM3E()
	res, err := runner.Run(context.Background(), w.WithVariant(workloads.Variant{Vectorized: true}).Config(p, 1, r.opts.Scale))
	if err != nil {
		return nil, err
	}
	return &FutureHBMResult{
		BandwidthGBs: res.TotalGBs,
		PeakFraction: res.TotalGBs / p.PeakGBs(),
		TrueL2Occ:    res.TrueL2Occ,
		L2Capacity:   p.L2.MSHRs,
	}, nil
}

// PrefetchLevelResult is the §III-C prefetch-level experiment: the same
// software prefetches sent to L1 vs L2 on a random-access routine whose
// L1 MSHR file is the bottleneck.
type PrefetchLevelResult struct {
	BaseThroughput float64
	L1Speedup      float64 // prefetch-to-L1: competes for the scarce L1 MSHRs
	L2Speedup      float64 // prefetch-to-L2: uses the idle L2 file
}

// PrefetchLevel runs ISx on KNL (vectorized, 2-way SMT — the state Table
// IV applies prefetching to, with the L1 MSHR file pinned) with both
// prefetch targets.
func (r *Runner) PrefetchLevel() (*PrefetchLevelResult, error) {
	w, _ := workloads.ByName("ISx")
	p, _ := platform.ByName("KNL")
	run := func(v workloads.Variant) (*sim.Result, error) {
		v.Vectorized = true
		return runner.Run(context.Background(), w.WithVariant(v).Config(p, 2, r.opts.Scale))
	}
	base, err := run(workloads.Variant{})
	if err != nil {
		return nil, err
	}
	l1, err := run(workloads.Variant{SWPrefetchL1: true})
	if err != nil {
		return nil, err
	}
	l2, err := run(workloads.Variant{SWPrefetchL2: true})
	if err != nil {
		return nil, err
	}
	return &PrefetchLevelResult{
		BaseThroughput: base.Throughput,
		L1Speedup:      l1.Throughput / base.Throughput,
		L2Speedup:      l2.Throughput / base.Throughput,
	}, nil
}

// CacheModeResult compares KNL's flat MCDRAM mode (the paper's setup)
// against cache mode for one workload.
type CacheModeResult struct {
	Workload      string
	FlatThr       float64
	CacheThr      float64
	FlatOverCache float64 // flat-mode speedup over cache mode
	MCHitFrac     float64 // memory-side cache hit rate in cache mode
}

// CacheMode runs the flat-vs-cache-mode comparison: ISx's random table
// (footprint far beyond the MCDRAM cache) thrashes the memory-side cache
// and pays the DDR penalty, while an iterative working set that fits is
// served at MCDRAM speed in both modes.
func (r *Runner) CacheMode() ([]CacheModeResult, error) {
	var out []CacheModeResult

	// Case 1: ISx — cache-unfriendly random footprint.
	w, _ := workloads.ByName("ISx")
	flatP, _ := platform.ByName("KNL")
	flat, err := runner.Run(context.Background(), w.Config(flatP, 1, r.opts.Scale))
	if err != nil {
		return nil, err
	}
	cacheP := platform.KNLCacheMode()
	cached, err := runner.Run(context.Background(), w.Config(cacheP, 1, r.opts.Scale))
	if err != nil {
		return nil, err
	}
	out = append(out, CacheModeResult{
		Workload:      "ISx (random, footprint >> MCDRAM cache)",
		FlatThr:       flat.Throughput,
		CacheThr:      cached.Throughput,
		FlatOverCache: flat.Throughput / cached.Throughput,
		MCHitFrac:     cached.MCHitFraction,
	})

	// Case 2: an iterative kernel whose working set fits the cache —
	// repeated sweeps over a bounded arena, as CG-style solvers do.
	iter := func(p *platform.Platform) (*sim.Result, error) {
		// Beyond the private L2 (512 KiB) but, summed over the node, far
		// under the 256 MiB memory-side cache; at least four passes so the
		// reuse is observable.
		const arenaLines = 10000
		ops := int(30000 * r.opts.Scale)
		if ops < 6*arenaLines {
			ops = 6 * arenaLines
		}
		return runner.Run(context.Background(), sim.Config{
			Plat:   p,
			Cores:  16, // a node slice: the mode comparison, not full contention
			Window: 8,
			NewGen: func(coreID, threadID int) cpu.Generator {
				base := uint64(coreID+1) << 34
				i, pos := 0, 0
				return cpu.GeneratorFunc(func() (cpu.Op, bool) {
					if i >= ops {
						return cpu.Op{}, false
					}
					i++
					addr := base + uint64(pos)*64
					pos++
					if pos >= arenaLines {
						pos = 0
					}
					return cpu.Op{Addr: addr, Kind: memsys.Load, GapCycles: 30, Work: 1}, true
				})
			},
		})
	}
	flat2, err := iter(flatP)
	if err != nil {
		return nil, err
	}
	cached2, err := iter(cacheP)
	if err != nil {
		return nil, err
	}
	out = append(out, CacheModeResult{
		Workload:      "iterative sweep (fits the MCDRAM cache)",
		FlatThr:       flat2.Throughput,
		CacheThr:      cached2.Throughput,
		FlatOverCache: flat2.Throughput / cached2.Throughput,
		MCHitFrac:     cached2.MCHitFraction,
	})
	return out, nil
}
