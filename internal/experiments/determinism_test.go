// Determinism is the concurrent engine's acceptance bar: a regenerated
// table must render byte-for-byte identically whether its runs execute
// serially or across a worker pool. The test lives in the external test
// package so it can use internal/report's renderer (report imports
// experiments).
package experiments_test

import (
	"bytes"
	"testing"

	"littleslaw/internal/experiments"
	"littleslaw/internal/report"
)

func renderTableIV(t *testing.T, workers int) string {
	t.Helper()
	r := experiments.NewRunner(experiments.Options{
		Scale:      0.05,
		Platforms:  []string{"SKL"},
		ProfileFor: experiments.PaperProfileFor,
		Workers:    workers,
	})
	tab, err := r.Table("IV")
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := report.WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteTableCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTableIVDeterministicAcrossWorkers(t *testing.T) {
	serial := renderTableIV(t, 1)
	for _, workers := range []int{2, 4, 8} {
		if got := renderTableIV(t, workers); got != serial {
			t.Fatalf("table IV differs at %d workers:\nserial:\n%s\nparallel:\n%s", workers, serial, got)
		}
	}
}
