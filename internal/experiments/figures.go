package experiments

import (
	"context"
	"fmt"

	"littleslaw/internal/core"
	"littleslaw/internal/counters"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/roofline"
	"littleslaw/internal/tma"
	"littleslaw/internal/workloads"
)

// Figure2 regenerates the paper's Figure 2: the KNL roofline with the
// L1-MSHR ceiling, carrying the baseline ISx point (O) and the fully
// optimized point (O1).
func (r *Runner) Figure2() (*roofline.Model, error) {
	ctx := context.Background()
	p, _ := platform.ByName("KNL")
	profile, err := r.profile(ctx, p)
	if err != nil {
		return nil, err
	}
	m, err := roofline.New(p, profile)
	if err != nil {
		return nil, err
	}
	w, _ := workloads.ByName("ISx")

	base, err := r.run(ctx, w, p, workloads.Variant{}, 1)
	if err != nil {
		return nil, err
	}
	opt, err := r.run(ctx, w, p, workloads.Variant{Vectorized: true, SWPrefetchL2: true}, 2)
	if err != nil {
		return nil, err
	}
	// ISx performs ~1 integer op per byte-ish; the figure's x-position is
	// its (fixed) arithmetic intensity. Performance scales with achieved
	// bandwidth, so the points sit on a vertical line at that intensity.
	const intensity = 0.08 // ops per byte, low — deep in the bandwidth region
	m.AddPoint("O (base)", base.TotalGBs, intensity*base.TotalGBs)
	m.AddPoint("O1 (+vect,2ht,l2-pref)", opt.TotalGBs, intensity*opt.TotalGBs)
	return m, nil
}

// TMACritique reproduces the Section-I/II critique experiments: the same
// runs analyzed by the TMA baseline and by the Little's-Law metric, showing
// where TMA's derived latency and bandwidth/latency split mislead.
type TMACritique struct {
	Case string
	// TMA's view.
	TMA *tma.Breakdown
	// The metric's view.
	Report *core.Report
	// TrueLoadedLatencyNs is the simulator's ground truth.
	TrueLoadedLatencyNs float64
	Commentary          string
}

// TMACritiques runs the two §I/§II cases: SNAP (ambiguous bandwidth/latency
// split, tiny derived latency) and HPCG (full bandwidth, derived latency
// near cache hit).
func (r *Runner) TMACritiques() ([]TMACritique, error) {
	ctx := context.Background()
	p, _ := platform.ByName("SKL")
	profile, err := r.profile(ctx, p)
	if err != nil {
		return nil, err
	}
	var out []TMACritique
	for _, c := range []struct {
		app, commentary string
	}{
		{"SNAP", "TMA splits memory-bound time between bandwidth and latency with no actionable guidance and derives a small average load latency; the metric shows moderate occupancy with headroom, pointing at software prefetching (§I)."},
		{"HPCG", "At ~86% of peak bandwidth TMA's derived latency reads as a cache-hit-scale number because demand loads hit prefetched lines; the loaded latency is an order of magnitude higher (§II)."},
	} {
		w, _ := workloads.ByName(c.app)
		res, err := r.run(ctx, w, p, workloads.Variant{}, 1)
		if err != nil {
			return nil, err
		}
		breakdown, err := tma.Analyze(p, res)
		if err != nil {
			return nil, err
		}
		rep, err := core.Analyze(p, profile, core.Measurement{
			Routine:                w.Routine(),
			BandwidthGBs:           res.TotalGBs,
			ActiveCores:            res.Cores,
			PrefetchedReadFraction: res.PrefetchedReadFraction,
			RandomAccess:           w.RandomAccess(),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, TMACritique{
			Case:                c.app,
			TMA:                 breakdown,
			Report:              rep,
			TrueLoadedLatencyNs: res.MeanDRAMLatencyNs,
			Commentary:          c.commentary,
		})
	}
	return out, nil
}

// LatencyCounterCritique reproduces §II's threshold-counter experiment:
// ISx on SKL with the Intel loads-above-threshold histogram.
type LatencyCounterExperiment struct {
	Samples             []counters.ThresholdSample
	TrueLoadedLatencyNs float64
	TrueLoadedLatencyCy float64
}

// LatencyCounterCritique runs ISx on SKL and reads the threshold counter.
func (r *Runner) LatencyCounterCritique() (*LatencyCounterExperiment, error) {
	ctx := context.Background()
	p, _ := platform.ByName("SKL")
	w, _ := workloads.ByName("ISx")
	res, err := r.run(ctx, w, p, workloads.Variant{}, 1)
	if err != nil {
		return nil, err
	}
	model, err := counters.ModelFor("SKL")
	if err != nil {
		return nil, err
	}
	samples, err := counters.ThresholdCounter(model, res, p, true)
	if err != nil {
		return nil, err
	}
	return &LatencyCounterExperiment{
		Samples:             samples,
		TrueLoadedLatencyNs: res.MeanDRAMLatencyNs,
		TrueLoadedLatencyCy: p.NsCycles(res.MeanDRAMLatencyNs),
	}, nil
}

// MSHRStallExperiment is §IV-A's cycle-level-simulator verification: ISx on
// A64FX before and after L2 software prefetching, with the true L1/L2 MSHR
// residencies.
type MSHRStallExperiment struct {
	BaseL1Occ, BaseL2Occ float64
	PrefL1Occ, PrefL2Occ float64
	Speedup              float64
}

// MSHRStalls runs the §IV-A verification.
func (r *Runner) MSHRStalls() (*MSHRStallExperiment, error) {
	ctx := context.Background()
	p, _ := platform.ByName("A64FX")
	w, _ := workloads.ByName("ISx")
	base, err := r.run(ctx, w, p, workloads.Variant{}, 1)
	if err != nil {
		return nil, err
	}
	pref, err := r.run(ctx, w, p, workloads.Variant{SWPrefetchL2: true}, 1)
	if err != nil {
		return nil, err
	}
	return &MSHRStallExperiment{
		BaseL1Occ: base.TrueL1Occ, BaseL2Occ: base.TrueL2Occ,
		PrefL1Occ: pref.TrueL1Occ, PrefL2Occ: pref.TrueL2Occ,
		Speedup: pref.Throughput / base.Throughput,
	}, nil
}

// DescribeStatic renders Tables I–III (static facts, no simulation).
func DescribeStatic(id string) (string, error) {
	switch id {
	case "I":
		s := "TABLE I — Counter visibility across vendors\n"
		s += fmt.Sprintf("%-10s %-15s %-15s %-15s %-12s\n", "Vendor", "Stall breakdown", "L1-MSHRQ-full", "L2-MSHRQ-full", "Mem latency")
		for _, m := range counters.Models() {
			s += fmt.Sprintf("%-10s %-15s %-15s %-15s %-12s\n",
				m.Vendor, m.StallBreakdown, m.L1MSHRQFull, m.L2MSHRQFull, m.MemoryLatency)
		}
		return s, nil
	case "II":
		s := "TABLE II — Applications\n"
		s += fmt.Sprintf("%-10s %-20s %s\n", "App", "Routine", "Pattern")
		for _, w := range workloads.All() {
			pattern := "streaming"
			if w.RandomAccess() {
				pattern = "random/irregular"
			}
			s += fmt.Sprintf("%-10s %-20s %s\n", w.Name(), w.Routine(), pattern)
		}
		return s, nil
	case "III":
		s := "TABLE III — Platforms\n"
		s += fmt.Sprintf("%-7s %16s %10s %9s %9s %6s\n", "Name", "Cores@GHz", "Peak GB/s", "L1 MSHRs", "L2 MSHRs", "Line")
		for _, p := range platform.All() {
			s += fmt.Sprintf("%-7s %11d@%.1f %10.0f %9d %9d %5dB\n",
				p.Name, p.Cores, p.FreqHz/1e9, p.PeakGBs(), p.L1.MSHRs, p.L2.MSHRs, p.LineBytes)
		}
		return s, nil
	}
	return "", fmt.Errorf("experiments: no static table %q", id)
}

// IdleLatencyAblation quantifies the paper's central methodological point
// (§III-B): using the vendor-quoted idle latency instead of the loaded
// latency underestimates n_avg — by up to ~2× near peak bandwidth — and
// flips the recipe's saturation decision.
type IdleLatencyAblation struct {
	Case         string
	BandwidthGBs float64
	IdleNs       float64
	LoadedNs     float64
	OccIdle      float64
	OccLoaded    float64
	// DecisionFlips reports whether the idle-latency estimate changes the
	// recipe's occupancy-saturation verdict.
	DecisionFlips bool
}

// IdleLatencyAblations runs the ablation on the ISx base rows of all
// requested platforms.
func (r *Runner) IdleLatencyAblations() ([]IdleLatencyAblation, error) {
	ctx := context.Background()
	w, _ := workloads.ByName("ISx")
	var out []IdleLatencyAblation
	for _, name := range r.opts.Platforms {
		p, err := platform.ByName(name)
		if err != nil {
			return nil, err
		}
		profile, err := r.profile(ctx, p)
		if err != nil {
			return nil, err
		}
		res, err := r.run(ctx, w, p, workloads.Variant{}, 1)
		if err != nil {
			return nil, err
		}
		m := core.Measurement{
			Routine:                w.Routine(),
			BandwidthGBs:           res.TotalGBs,
			ActiveCores:            res.Cores,
			PrefetchedReadFraction: res.PrefetchedReadFraction,
			RandomAccess:           true,
		}
		loaded, err := core.Analyze(p, profile, m)
		if err != nil {
			return nil, err
		}
		// The idle-latency variant: a flat curve pinned at the profile's
		// lowest-load sample (what a vendor datasheet would quote).
		idleCurve, err := queueing.NewCurve([]queueing.CurvePoint{
			{BandwidthGBs: 1, LatencyNs: profile.IdleLatencyNs()},
			{BandwidthGBs: p.PeakGBs(), LatencyNs: profile.IdleLatencyNs()},
		})
		if err != nil {
			return nil, err
		}
		idle, err := core.Analyze(p, idleCurve, m)
		if err != nil {
			return nil, err
		}
		out = append(out, IdleLatencyAblation{
			Case:          "ISx/" + p.Name,
			BandwidthGBs:  res.TotalGBs,
			IdleNs:        profile.IdleLatencyNs(),
			LoadedNs:      loaded.LatencyNs,
			OccIdle:       idle.Occupancy,
			OccLoaded:     loaded.Occupancy,
			DecisionFlips: idle.OccupancySaturated() != loaded.OccupancySaturated(),
		})
	}
	return out, nil
}
