package experiments

import (
	"fmt"

	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// PaperProfileFor returns the bandwidth→latency curve assembled from the
// paper's published anchor pairs for one of the three machines. It is the
// deterministic stand-in for the X-Mem characterization used by the test
// suite (including the golden-table harness) and by the service's
// -paper-profiles fast-start mode: reproducible to the byte and free,
// where the honest sweep costs a multi-minute simulation per platform.
func PaperProfileFor(p *platform.Platform) (*queueing.Curve, error) {
	switch p.Name {
	case "SKL":
		return queueing.NewCurve([]queueing.CurvePoint{
			{BandwidthGBs: 0.5, LatencyNs: 82}, {BandwidthGBs: 37.9, LatencyNs: 93},
			{BandwidthGBs: 58.2, LatencyNs: 100}, {BandwidthGBs: 92.9, LatencyNs: 117},
			{BandwidthGBs: 106.9, LatencyNs: 145}, {BandwidthGBs: 112, LatencyNs: 220},
		})
	case "KNL":
		return queueing.NewCurve([]queueing.CurvePoint{
			{BandwidthGBs: 1, LatencyNs: 166}, {BandwidthGBs: 122.9, LatencyNs: 167},
			{BandwidthGBs: 233, LatencyNs: 180}, {BandwidthGBs: 296, LatencyNs: 209},
			{BandwidthGBs: 344, LatencyNs: 238}, {BandwidthGBs: 365, LatencyNs: 330},
		})
	case "A64FX":
		return queueing.NewCurve([]queueing.CurvePoint{
			{BandwidthGBs: 2, LatencyNs: 142}, {BandwidthGBs: 271, LatencyNs: 156},
			{BandwidthGBs: 575, LatencyNs: 179}, {BandwidthGBs: 649, LatencyNs: 188},
			{BandwidthGBs: 788, LatencyNs: 280}, {BandwidthGBs: 812, LatencyNs: 330},
		})
	}
	return nil, fmt.Errorf("experiments: no paper profile for platform %q", p.Name)
}
