package experiments

import (
	"strings"
	"testing"

	"littleslaw/internal/core"
	"littleslaw/internal/platform"
)

// paperProfiles lets the experiment tests run without the (slow) X-Mem
// characterization: the curves are the paper's published values
// (PaperProfileFor, shared with the golden harness and the service's
// fast-start mode).
var paperProfiles = PaperProfileFor

func fastRunner() *Runner {
	return NewRunner(Options{Scale: 0.1, ProfileFor: paperProfiles})
}

func TestTableIDs(t *testing.T) {
	ids := TableIDs()
	if len(ids) != 6 || ids[0] != "IV" || ids[5] != "IX" {
		t.Fatalf("TableIDs = %v", ids)
	}
	for _, id := range ids {
		if _, ok := tableSpecs[id]; !ok {
			t.Errorf("no spec for table %s", id)
		}
	}
}

func TestUnknownTable(t *testing.T) {
	if _, err := fastRunner().Table("XL"); err == nil {
		t.Fatal("unknown table accepted")
	}
}

// TestTableIVShape regenerates the ISx table at reduced scale on one
// platform and checks the structural shape: row order, saturation at the
// L1 MSHR file, and the recipe verdicts of the published ladder.
func TestTableIVShapeSKL(t *testing.T) {
	r := NewRunner(Options{Scale: 0.1, Platforms: []string{"SKL"}, ProfileFor: paperProfiles})
	tab, err := r.Table("IV")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Workload != "ISx" || tab.Routine != "count_local_keys" {
		t.Fatalf("table identity wrong: %+v", tab)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("SKL ISx rows = %d, want 2", len(tab.Rows))
	}
	base := tab.Rows[0]
	if base.Source != "base" || base.NextOpt != "vectorization" {
		t.Fatalf("row 0 = %+v", base)
	}
	// Occupancy pinned at the L1 MSHR file; vectorization blocked and
	// measured useless — the paper's headline SKL result.
	if base.Occ < 8.5 || base.Occ > 12.5 {
		t.Errorf("ISx/SKL occupancy = %.2f, want ≈10", base.Occ)
	}
	if base.Stance != core.Discourage {
		t.Errorf("vectorization stance = %v, want discourage", base.Stance)
	}
	if base.Speedup > 1.1 {
		t.Errorf("vectorization speedup = %.2f, want ≈1.0", base.Speedup)
	}
	if base.PaperBW != 106.9 || base.PaperOcc != 10.1 {
		t.Errorf("paper echo wrong: %+v", base)
	}
}

func TestRunCacheSharesConfigs(t *testing.T) {
	r := NewRunner(Options{Scale: 0.1, Platforms: []string{"SKL"}, ProfileFor: paperProfiles})
	if _, err := r.Table("IV"); err != nil {
		t.Fatal(err)
	}
	keys := r.SortedCacheKeys()
	// SKL Table IV needs exactly three configs: base/1t, vect/1t, vect/2t.
	if len(keys) != 3 {
		t.Fatalf("cache keys = %v, want 3 distinct configs", keys)
	}
}

func TestFigure2(t *testing.T) {
	r := NewRunner(Options{Scale: 0.1, ProfileFor: paperProfiles})
	m, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if m.Platform != "KNL" {
		t.Fatalf("Figure 2 is a KNL plot, got %s", m.Platform)
	}
	if len(m.Points) != 2 {
		t.Fatalf("points = %d, want O and O1", len(m.Points))
	}
	// O1 must outperform O (it broke through the L1-MSHR ceiling).
	if m.Points[1].GFLOPs <= m.Points[0].GFLOPs {
		t.Errorf("optimized point %.1f not above baseline %.1f", m.Points[1].GFLOPs, m.Points[0].GFLOPs)
	}
	// The baseline's bandwidth binds near the L1 ceiling; find it.
	var l1 float64
	for _, c := range m.Ceilings {
		if c.Name == "L1 MSHRs" {
			l1 = c.BandwidthGBs
		}
	}
	if l1 == 0 {
		t.Fatal("no L1 MSHR ceiling in Figure 2")
	}
	baseBW := m.Points[0].GFLOPs / m.Points[0].Intensity
	if baseBW > 1.15*l1 {
		t.Errorf("baseline bandwidth %.1f far above the L1 ceiling %.1f", baseBW, l1)
	}
}

func TestTMACritiques(t *testing.T) {
	out, err := fastRunner().TMACritiques()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("critiques = %d, want SNAP and HPCG", len(out))
	}
	for _, c := range out {
		if c.TMA == nil || c.Report == nil {
			t.Fatalf("%s: missing views", c.Case)
		}
	}
	// The HPCG case: TMA's derived latency far below the true loaded one.
	var hpcg TMACritique
	for _, c := range out {
		if c.Case == "HPCG" {
			hpcg = c
		}
	}
	p, _ := platform.ByName("SKL")
	trueCy := p.NsCycles(hpcg.TrueLoadedLatencyNs)
	// At test scale the contrast is softer than the paper's 32-vs-378
	// cycles; the invariant is that the demand-sampled latency sits well
	// below the true loaded latency.
	if hpcg.TMA.AvgLoadLatencyCycles > 0.6*trueCy {
		t.Errorf("HPCG: TMA latency %.0f cycles not well below true %.0f (the §II critique)",
			hpcg.TMA.AvgLoadLatencyCycles, trueCy)
	}
}

func TestLatencyCounterCritique(t *testing.T) {
	exp, err := fastRunner().LatencyCounterCritique()
	if err != nil {
		t.Fatal(err)
	}
	top := exp.Samples[len(exp.Samples)-1]
	if top.ThresholdCycles != 512 {
		t.Fatalf("top bin %d", top.ThresholdCycles)
	}
	// The §II numbers: ~75% of loads reported above 512 cycles while the
	// true loaded latency is ~378 cycles (i.e. below the bin).
	if top.Fraction < 0.5 {
		t.Errorf("top-bin fraction = %.2f, want a misleading majority", top.Fraction)
	}
	if exp.TrueLoadedLatencyCy > 512 {
		t.Errorf("true latency %.0f cycles above the top bin; critique setup broken", exp.TrueLoadedLatencyCy)
	}
}

func TestMSHRStalls(t *testing.T) {
	exp, err := fastRunner().MSHRStalls()
	if err != nil {
		t.Fatal(err)
	}
	if exp.PrefL1Occ >= exp.BaseL1Occ {
		t.Errorf("L1 occupancy did not drop: %.2f vs %.2f", exp.PrefL1Occ, exp.BaseL1Occ)
	}
	if exp.PrefL2Occ <= exp.BaseL2Occ {
		t.Errorf("L2 occupancy did not rise: %.2f vs %.2f", exp.PrefL2Occ, exp.BaseL2Occ)
	}
	if exp.Speedup < 1.05 {
		t.Errorf("prefetch speedup = %.2f, want ≥1.05 (paper: 1.3)", exp.Speedup)
	}
}

func TestDescribeStaticTables(t *testing.T) {
	for id, want := range map[string]string{
		"I":   "Cavium",
		"II":  "dim3_sweep",
		"III": "A64FX",
	} {
		s, err := DescribeStatic(id)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, want) {
			t.Errorf("table %s missing %q:\n%s", id, want, s)
		}
	}
	if _, err := DescribeStatic("IV"); err == nil {
		t.Fatal("dynamic table accepted as static")
	}
}

// TestIdleLatencyAblation: the §III-B claim — idle latency underestimates
// the occupancy and (on the saturated SKL case) flips the recipe decision.
func TestIdleLatencyAblation(t *testing.T) {
	r := NewRunner(Options{Scale: 0.1, Platforms: []string{"SKL"}, ProfileFor: paperProfiles})
	out, err := r.IdleLatencyAblations()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("ablations = %d", len(out))
	}
	a := out[0]
	if a.OccIdle >= a.OccLoaded {
		t.Fatalf("idle-latency occupancy %.2f not below loaded %.2f", a.OccIdle, a.OccLoaded)
	}
	if ratio := a.OccLoaded / a.OccIdle; ratio < 1.3 {
		t.Errorf("underestimate ratio = %.2f, want substantial (paper: up to ~2x)", ratio)
	}
	if !a.DecisionFlips {
		t.Errorf("idle-latency estimate should flip the saturation verdict on ISx/SKL: %+v", a)
	}
}

// TestRunnerCacheIsolatesWorkloads guards against cache-key collisions
// between tables that share a Runner: ISx and CoMD run the same (platform,
// variant, threads) tuple but must never share results.
func TestRunnerCacheIsolatesWorkloads(t *testing.T) {
	r := NewRunner(Options{Scale: 0.1, Platforms: []string{"SKL"}, ProfileFor: paperProfiles})
	isx, err := r.Table("IV")
	if err != nil {
		t.Fatal(err)
	}
	comd, err := r.Table("VII")
	if err != nil {
		t.Fatal(err)
	}
	if isx.Rows[0].BWGBs < 20*comd.Rows[0].BWGBs {
		t.Fatalf("ISx (%.1f GB/s) vs CoMD (%.1f GB/s): results look shared across workloads",
			isx.Rows[0].BWGBs, comd.Rows[0].BWGBs)
	}
	for _, k := range r.SortedCacheKeys() {
		if !strings.Contains(k, "ISx") && !strings.Contains(k, "CoMD") {
			t.Fatalf("cache key %q missing workload name", k)
		}
	}
}

func TestMSHRSweepScalesBandwidth(t *testing.T) {
	r := fastRunner()
	pts, err := r.MSHRSweep([]int{4, 8, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Bandwidth and true occupancy rise with the MSHR capacity.
	for i := 1; i < len(pts); i++ {
		if pts[i].BandwidthGBs <= pts[i-1].BandwidthGBs {
			t.Errorf("bandwidth did not rise with MSHRs: %+v", pts)
		}
		if pts[i].TrueL1Occ <= pts[i-1].TrueL1Occ {
			t.Errorf("occupancy did not rise with MSHRs: %+v", pts)
		}
	}
	// Roughly linear in the unconstrained region: 12 vs 4 MSHRs ≥ 2x BW.
	if pts[2].BandwidthGBs < 2*pts[0].BandwidthGBs {
		t.Errorf("12 vs 4 MSHRs only %.2fx bandwidth", pts[2].BandwidthGBs/pts[0].BandwidthGBs)
	}
}

func TestStreamTableSweepRestores4HT(t *testing.T) {
	r := fastRunner()
	pts, err := r.StreamTableSweep([]int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// §IV-B: a table too small for the threads' streams destroys the
	// 4-way-SMT gain; a sufficient one restores it.
	if pts[0].Gain4HTOver > 1.0 {
		t.Errorf("thrashed table still gains at 4HT: %.2f", pts[0].Gain4HTOver)
	}
	if pts[1].Gain4HTOver < pts[0].Gain4HTOver+0.2 {
		t.Errorf("sufficient table gain %.2f not clearly above thrashed %.2f",
			pts[1].Gain4HTOver, pts[0].Gain4HTOver)
	}
}

func TestCoalescingAblation(t *testing.T) {
	r := fastRunner()
	ab, err := r.Coalescing()
	if err != nil {
		t.Fatal(err)
	}
	if ab.TrafficBlowup < 1.02 {
		t.Errorf("no-coalescing traffic blowup = %.2f, want > 1 (duplicate fetches)", ab.TrafficBlowup)
	}
	if ab.Slowdown < 1.0 {
		t.Errorf("coalescing slower than duplicating?! %.2f", ab.Slowdown)
	}
}

func TestFutureHBM(t *testing.T) {
	r := fastRunner()
	res, err := r.FutureHBM()
	if err != nil {
		t.Fatal(err)
	}
	// §IV-G: the L2 MSHR file fills well before peak bandwidth.
	if res.PeakFraction > 0.7 {
		t.Errorf("future node at %.0f%% of peak; the experiment needs MSHRs to bind first", 100*res.PeakFraction)
	}
	if res.TrueL2Occ < 0.5*float64(res.L2Capacity) {
		t.Errorf("L2 occupancy %.1f of %d not the binding structure", res.TrueL2Occ, res.L2Capacity)
	}
}

// TestPrefetchLevel: §III-C's claim that the prefetch *level* decides the
// outcome on a random-access routine — L2 prefetching side-steps the L1
// MSHR bottleneck, L1 prefetching only competes with demand for it.
func TestPrefetchLevel(t *testing.T) {
	res, err := fastRunner().PrefetchLevel()
	if err != nil {
		t.Fatal(err)
	}
	if res.L2Speedup < 1.15 {
		t.Errorf("L2 prefetch speedup = %.2f, want substantial (paper: 1.4x)", res.L2Speedup)
	}
	if res.L1Speedup > res.L2Speedup-0.1 {
		t.Errorf("L1 prefetch (%.2fx) nearly matches L2 (%.2fx); the level should matter",
			res.L1Speedup, res.L2Speedup)
	}
}

// TestCacheMode: the flat-vs-cache-mode extension — random footprints far
// beyond the MCDRAM cache thrash it (flat mode wins clearly), while a
// fitting iterative working set is served at MCDRAM speed either way.
func TestCacheMode(t *testing.T) {
	out, err := fastRunner().CacheMode()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("cases = %d", len(out))
	}
	isx, iter := out[0], out[1]
	if isx.FlatOverCache < 1.3 {
		t.Errorf("flat mode only %.2fx over cache mode on ISx; the thrash penalty should be large", isx.FlatOverCache)
	}
	if isx.MCHitFrac > 0.2 {
		t.Errorf("ISx memory-cache hit rate = %.2f, want thrashing", isx.MCHitFrac)
	}
	if iter.MCHitFrac < 0.8 {
		t.Errorf("iterative hit rate = %.2f, want high (fits)", iter.MCHitFrac)
	}
	if iter.FlatOverCache > 1.25 {
		t.Errorf("cache mode loses %.2fx on a fitting working set; should be near parity", iter.FlatOverCache)
	}
}
