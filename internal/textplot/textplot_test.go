package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderValidation(t *testing.T) {
	if _, err := Render(nil, Options{}); err == nil {
		t.Fatal("no series accepted")
	}
	if _, err := Render([]Series{{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}}, Options{}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := Render([]Series{{Name: "neg", X: []float64{0}, Y: []float64{1}}}, Options{LogX: true}); err == nil {
		t.Fatal("zero on log axis accepted")
	}
	if _, err := Render([]Series{{Name: "empty"}}, Options{}); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestRenderBasicChart(t *testing.T) {
	s := []Series{
		{Name: "latency", X: []float64{0, 50, 100, 110}, Y: []float64{82, 95, 140, 200}},
		{Name: "anchor", X: []float64{106.9}, Y: []float64{145}, Marker: 'A'},
	}
	out, err := Render(s, Options{Title: "SKL profile", XLabel: "GB/s", YLabel: "ns"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SKL profile", "legend: * latency | A anchor", "GB/s", "[y: ns]", "A"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The chart body has the requested height (+title, axis, labels, legend).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+20+1+1+1 {
		t.Errorf("line count = %d", len(lines))
	}
}

func TestRenderLogAxes(t *testing.T) {
	s := []Series{{
		Name: "roof",
		X:    []float64{0.0625, 1, 16, 256},
		Y:    []float64{25, 400, 2867, 2867},
	}}
	out, err := Render(s, Options{LogX: true, LogY: true, Width: 40, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.0625") {
		t.Errorf("x-axis minimum missing:\n%s", out)
	}
}

func TestDegenerateRangesHandled(t *testing.T) {
	// A single point and a flat line must not divide by zero.
	for _, s := range [][]Series{
		{{Name: "pt", X: []float64{5}, Y: []float64{7}}},
		{{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{4, 4, 4}}},
	} {
		if _, err := Render(s, Options{Width: 20, Height: 5}); err != nil {
			t.Fatalf("degenerate input failed: %v", err)
		}
	}
}

func TestLineConnection(t *testing.T) {
	// Two distant points should be connected by '.' fill.
	out, err := Render([]Series{{Name: "l", X: []float64{0, 100}, Y: []float64{0, 100}}},
		Options{Width: 30, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ".") {
		t.Errorf("no connecting fill:\n%s", out)
	}
}

func TestSparklineFixedRange(t *testing.T) {
	got := Sparkline([]float64{0, 5, 10, 20, -3}, 0, 10)
	want := "▁▅██▁" // 20 clamps to full, -3 clamps to floor
	if got != want {
		t.Fatalf("Sparkline = %q, want %q", got, want)
	}
}

func TestSparklineAutoscaleAndNaN(t *testing.T) {
	got := Sparkline([]float64{1, math.NaN(), 3}, 0, 0)
	if len([]rune(got)) != 3 || []rune(got)[1] != ' ' {
		t.Fatalf("Sparkline = %q", got)
	}
	if first, last := []rune(got)[0], []rune(got)[2]; first == last {
		t.Fatalf("no contrast in %q", got)
	}
	if Sparkline(nil, 0, 1) != "" {
		t.Fatal("empty input should render empty")
	}
	// A flat series renders, at mid height, without dividing by zero.
	if flat := Sparkline([]float64{2, 2, 2}, 0, 0); len([]rune(flat)) != 3 {
		t.Fatalf("flat = %q", flat)
	}
}

func TestSparklineNonFiniteEdges(t *testing.T) {
	top := string(sparkGlyphs[len(sparkGlyphs)-1])
	bottom := string(sparkGlyphs[0])
	cases := []struct {
		name   string
		values []float64
		lo, hi float64
		want   string // empty = only assert no panic and rune count
	}{
		{"inf-value-clamps-high", []float64{0, math.Inf(1)}, 0, 10, bottom + top},
		{"neg-inf-value-clamps-low", []float64{math.Inf(-1), 10}, 0, 10, bottom + top},
		{"nan-range-autoscales", []float64{1, 2}, math.NaN(), math.NaN(), ""},
		{"inf-range-autoscales", []float64{1, 2}, math.Inf(-1), math.Inf(1), ""},
		{"all-nan", []float64{math.NaN(), math.NaN()}, 0, 0, "  "},
		{"all-inf-autoscale", []float64{math.Inf(1), math.Inf(-1)}, 0, 0, top + bottom},
		{"mixed-nonfinite-autoscale", []float64{math.NaN(), math.Inf(1), 5}, 0, 0, ""},
		{"empty-range-single", []float64{7}, 3, 3, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Sparkline(tc.values, tc.lo, tc.hi)
			if n := len([]rune(got)); n != len(tc.values) {
				t.Fatalf("Sparkline = %q (%d runes), want %d", got, n, len(tc.values))
			}
			if tc.want != "" && got != tc.want {
				t.Fatalf("Sparkline = %q, want %q", got, tc.want)
			}
		})
	}
}
