// Package textplot renders small line charts as text, so the tools can
// show bandwidth→latency profiles and rooflines directly in a terminal
// without any plotting dependency.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Options controls rendering.
type Options struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
	LogX   bool
	LogY   bool
	XLabel string
	YLabel string
	Title  string
}

func (o *Options) normalize() {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 20
	}
}

// defaultMarkers cycle when a series has none.
var defaultMarkers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the series into a string.
func Render(series []Series, opts Options) (string, error) {
	opts.normalize()
	if len(series) == 0 {
		return "", fmt.Errorf("textplot: no series")
	}

	tx := func(v float64) float64 { return v }
	ty := func(v float64) float64 { return v }
	if opts.LogX {
		tx = math.Log10
	}
	if opts.LogY {
		ty = math.Log10
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("textplot: series %q has %d x but %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if (opts.LogX && x <= 0) || (opts.LogY && y <= 0) {
				return "", fmt.Errorf("textplot: non-positive value on a log axis in %q", s.Name)
			}
			minX, maxX = math.Min(minX, tx(x)), math.Max(maxX, tx(x))
			minY, maxY = math.Min(minY, ty(y)), math.Max(maxY, ty(y))
		}
	}
	if math.IsInf(minX, 1) {
		return "", fmt.Errorf("textplot: all series empty")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		var prevC, prevR int = -1, -1
		for i := range s.X {
			c := int((tx(s.X[i]) - minX) / (maxX - minX) * float64(opts.Width-1))
			r := opts.Height - 1 - int((ty(s.Y[i])-minY)/(maxY-minY)*float64(opts.Height-1))
			plot(grid, r, c, marker)
			// Connect consecutive points with a coarse line.
			if prevC >= 0 {
				steps := maxInt(absInt(c-prevC), absInt(r-prevR))
				for k := 1; k < steps; k++ {
					ic := prevC + (c-prevC)*k/steps
					ir := prevR + (r-prevR)*k/steps
					if grid[ir][ic] == ' ' {
						plot(grid, ir, ic, '.')
					}
				}
			}
			prevC, prevR = c, r
		}
	}

	var sb strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opts.Title)
	}
	invY := func(frac float64) float64 {
		v := minY + frac*(maxY-minY)
		if opts.LogY {
			return math.Pow(10, v)
		}
		return v
	}
	for i, row := range grid {
		frac := float64(opts.Height-1-i) / float64(opts.Height-1)
		fmt.Fprintf(&sb, "%10.4g |%s\n", invY(frac), string(row))
	}
	sb.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", opts.Width) + "\n")
	invX := func(frac float64) float64 {
		v := minX + frac*(maxX-minX)
		if opts.LogX {
			return math.Pow(10, v)
		}
		return v
	}
	fmt.Fprintf(&sb, "%12.4g%s%.4g", invX(0), strings.Repeat(" ", maxInt(1, opts.Width-12)), invX(1))
	if opts.XLabel != "" {
		fmt.Fprintf(&sb, "  (%s)", opts.XLabel)
	}
	sb.WriteByte('\n')
	var legend []string
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	fmt.Fprintf(&sb, "legend: %s", strings.Join(legend, " | "))
	if opts.YLabel != "" {
		fmt.Fprintf(&sb, "   [y: %s]", opts.YLabel)
	}
	sb.WriteByte('\n')
	return sb.String(), nil
}

func plot(grid [][]byte, r, c int, m byte) {
	if r >= 0 && r < len(grid) && c >= 0 && c < len(grid[r]) {
		grid[r][c] = m
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sparkGlyphs are the eight block heights of a unicode sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line sparkline scaled to [lo, hi].
// When the range is empty (hi <= lo) or not finite, it autoscales to the
// finite data. Values outside the range clamp to the end glyphs, ±Inf
// clamps likewise, and NaNs render as spaces — a live monitor can pass a
// fixed ceiling (an MSHR capacity) so a full block always means "at the
// limit".
func Sparkline(values []float64, lo, hi float64) string {
	if len(values) == 0 {
		return ""
	}
	if !isFinite(lo) || !isFinite(hi) || hi <= lo {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range values {
			if !isFinite(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if !isFinite(lo) || !isFinite(hi) { // no finite samples at all
			lo, hi = 0, 1
		}
		if hi <= lo { // all equal: mid-height line
			hi = lo + 1
			lo -= 1
		}
	}
	var sb strings.Builder
	for _, v := range values {
		switch {
		case math.IsNaN(v):
			sb.WriteByte(' ')
			continue
		case math.IsInf(v, 1):
			v = hi
		case math.IsInf(v, -1):
			v = lo
		}
		// Clamp in float space: converting an out-of-range float64 to int
		// is implementation-specific in Go, so the clamp must come first.
		pos := (v - lo) / (hi - lo) * float64(len(sparkGlyphs))
		if !(pos > 0) {
			pos = 0
		}
		if pos > float64(len(sparkGlyphs)-1) {
			pos = float64(len(sparkGlyphs) - 1)
		}
		sb.WriteRune(sparkGlyphs[int(pos)])
	}
	return sb.String()
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
