package events

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockRoundTrip(t *testing.T) {
	c := NewClock(2.1e9)
	if got := c.Period(); got != 476 {
		t.Fatalf("2.1GHz period = %d ps, want 476", got)
	}
	d := c.Cycles(100)
	if cyc := c.ToCycles(d); cyc < 99.9 || cyc > 100.1 {
		t.Fatalf("round trip 100 cycles -> %v", cyc)
	}
}

func TestClockPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestSchedulerOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order = %v, want [1 2 3]", got)
	}
	if s.Now() != 30 {
		t.Fatalf("final time = %d, want 30", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order = %v, want ascending", got)
		}
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	var s Scheduler
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestAfterChainsRelativeTime(t *testing.T) {
	var s Scheduler
	var fired Time
	s.After(100, func() {
		s.After(50, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 150 {
		t.Fatalf("chained After fired at %d, want 150", fired)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	var s Scheduler
	ran := 0
	s.At(10, func() { ran++ })
	s.At(20, func() { ran++ })
	s.At(30, func() { ran++ })
	s.RunUntil(20)
	if ran != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", ran)
	}
	if s.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var s Scheduler
	s.RunUntil(1000)
	if s.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000", s.Now())
	}
}

func TestRunWhile(t *testing.T) {
	var s Scheduler
	ran := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() { ran++ })
	}
	s.RunWhile(func() bool { return ran < 4 })
	if ran != 4 {
		t.Fatalf("RunWhile stopped after %d events, want 4", ran)
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order, including interleaved insertion during dispatch.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Scheduler
		var fired []Time
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			at := Time(rng.Intn(1000))
			s.At(at, func() {
				fired = append(fired, s.Now())
				// Sometimes schedule a follow-up event.
				if rng.Intn(3) == 0 {
					s.After(Duration(rng.Intn(100)), func() {
						fired = append(fired, s.Now())
					})
				}
			})
		}
		s.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if got := FromNanoseconds(1.5); got != 1500 {
		t.Fatalf("FromNanoseconds(1.5) = %d, want 1500", got)
	}
	if got := Time(2500).Nanoseconds(); got != 2.5 {
		t.Fatalf("Nanoseconds() = %v, want 2.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
}
