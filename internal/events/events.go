// Package events provides a deterministic discrete-event simulation kernel.
//
// Simulated time is measured in integer picoseconds so that clock domains
// with non-integral nanosecond periods (e.g. a 2.1 GHz core whose cycle is
// 476.19 ps) compose without cumulative rounding drift. Events scheduled for
// the same instant fire in scheduling order, which makes every simulation in
// this repository bit-reproducible for a given seed and configuration.
package events

import "container/heap"

// Time is an absolute simulated timestamp in picoseconds.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration = Time

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanoseconds converts a floating-point nanosecond count to a Time.
func FromNanoseconds(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// Clock describes a fixed-frequency clock domain and converts between
// cycle counts and simulated time.
type Clock struct {
	period Duration // picoseconds per cycle
}

// NewClock returns a clock running at the given frequency in hertz.
// It panics if hz is not positive.
func NewClock(hz float64) Clock {
	if hz <= 0 {
		panic("events: clock frequency must be positive")
	}
	return Clock{period: Duration(1e12/hz + 0.5)}
}

// Period returns the duration of one cycle.
func (c Clock) Period() Duration { return c.period }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n float64) Duration { return Duration(n*float64(c.period) + 0.5) }

// ToCycles converts a duration to a (fractional) cycle count.
func (c Clock) ToCycles(d Duration) float64 { return float64(d) / float64(c.period) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event simulation engine. The zero value is ready
// to use and starts at time zero.
type Scheduler struct {
	now  Time
	seq  uint64
	heap eventHeap
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics,
// because it would silently corrupt causality.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic("events: scheduling an event in the past")
	}
	s.seq++
	heap.Push(&s.heap, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now.
func (s *Scheduler) After(d Duration, fn func()) { s.At(s.now+d, fn) }

// Pending reports the number of events not yet dispatched.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Step dispatches the next event, advancing the clock to its timestamp.
// It reports whether an event was dispatched.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := heap.Pop(&s.heap).(event)
	s.now = e.at
	e.fn()
	return true
}

// Run dispatches events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil dispatches events with timestamps at or before deadline, then
// advances the clock to deadline. Events scheduled beyond deadline remain
// queued.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.heap) > 0 && s.heap[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunWhile dispatches events while cond returns true and events remain.
func (s *Scheduler) RunWhile(cond func() bool) {
	for cond() && s.Step() {
	}
}
