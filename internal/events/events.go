// Package events provides a deterministic discrete-event simulation kernel.
//
// Simulated time is measured in integer picoseconds so that clock domains
// with non-integral nanosecond periods (e.g. a 2.1 GHz core whose cycle is
// 476.19 ps) compose without cumulative rounding drift. Events scheduled for
// the same instant fire in scheduling order, which makes every simulation in
// this repository bit-reproducible for a given seed and configuration.
package events

// Time is an absolute simulated timestamp in picoseconds.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration = Time

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanoseconds converts a floating-point nanosecond count to a Time.
func FromNanoseconds(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// Clock describes a fixed-frequency clock domain and converts between
// cycle counts and simulated time.
type Clock struct {
	period Duration // picoseconds per cycle
}

// NewClock returns a clock running at the given frequency in hertz.
// It panics if hz is not positive.
func NewClock(hz float64) Clock {
	if hz <= 0 {
		panic("events: clock frequency must be positive")
	}
	return Clock{period: Duration(1e12/hz + 0.5)}
}

// Period returns the duration of one cycle.
func (c Clock) Period() Duration { return c.period }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n float64) Duration { return Duration(n*float64(c.period) + 0.5) }

// ToCycles converts a duration to a (fractional) cycle count.
func (c Clock) ToCycles(d Duration) float64 { return float64(d) / float64(c.period) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap over event values. It exists
// instead of container/heap because that interface boxes every pushed and
// popped element into an interface{} — one allocation per scheduled event,
// which on a full-node run is millions of allocations that this layout
// makes zero (events live by value in the backing array, which is reused
// across the whole run).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the popped closure for GC
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// Scheduler is a discrete-event simulation engine. The zero value is ready
// to use and starts at time zero.
type Scheduler struct {
	now  Time
	seq  uint64
	heap eventHeap
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics,
// because it would silently corrupt causality.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic("events: scheduling an event in the past")
	}
	s.seq++
	s.heap.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now.
func (s *Scheduler) After(d Duration, fn func()) { s.At(s.now+d, fn) }

// Pending reports the number of events not yet dispatched.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Step dispatches the next event, advancing the clock to its timestamp.
// It reports whether an event was dispatched.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap.pop()
	s.now = e.at
	e.fn()
	return true
}

// Run dispatches events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil dispatches events with timestamps at or before deadline, then
// advances the clock to deadline. Events scheduled beyond deadline remain
// queued.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.heap) > 0 && s.heap[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunWhile dispatches events while cond returns true and events remain.
func (s *Scheduler) RunWhile(cond func() bool) {
	for cond() && s.Step() {
	}
}
