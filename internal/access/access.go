// Package access classifies memory-access streams the way the paper's
// methodology needs routines classified (§III-D): is the routine dominated
// by sequential streams the hardware prefetcher will cover (→ the L2 MSHR
// file binds), or by random/irregular accesses it cannot (→ the L1 file
// binds)? It also estimates the quantities the recipe consumes: the number
// of concurrent streams (against the prefetcher's table), the touched
// footprint (against cache capacities), and a sampled reuse-distance
// profile (the signal loop tiling acts on).
//
// The classifier is stream-based and single-pass with bounded memory, so
// it can ride along any cpu.Generator — including traces of real
// applications — without materializing the access sequence.
package access

import (
	"fmt"
	"math"
	"sort"
)

// Kind is the coarse classification the recipe needs.
type Kind int

const (
	// Streaming: unit-stride (or near) sequences dominate; the hardware
	// prefetcher is effective and the L2 MSHR file binds.
	Streaming Kind = iota
	// Irregular: random or pointer-chasing accesses dominate; the
	// prefetcher is ineffective and the L1 MSHR file binds.
	Irregular
	// Mixed: both present with neither above the dominance threshold.
	// §III-D's guidance: the random component usually dominates *traffic*
	// (each irregular reference touches its own line), so Mixed defaults
	// to the L1 file unless streams carry the bytes.
	Mixed
)

func (k Kind) String() string {
	switch k {
	case Streaming:
		return "streaming"
	case Irregular:
		return "irregular"
	case Mixed:
		return "mixed"
	}
	return "unknown"
}

// Profile is the classification result.
type Profile struct {
	Kind Kind

	// SequentialFraction is the fraction of line-granular accesses that
	// continue an active unit-stride stream.
	SequentialFraction float64

	// Streams estimates the number of concurrent sequential streams —
	// the quantity to compare against the prefetcher's table size.
	Streams int

	// FootprintLines is the number of distinct cache lines touched
	// (exact up to the configured cap).
	FootprintLines int

	// Accesses is the number of line-granular accesses observed.
	Accesses int

	// ReuseCDF samples the reuse-distance distribution: ReuseCDF[i] is
	// the fraction of re-accesses whose reuse distance (in distinct
	// lines) was at most ReuseBuckets[i].
	ReuseCDF []float64
}

// ReuseBuckets are the reuse-distance thresholds (in distinct lines)
// reported in Profile.ReuseCDF: 512 lines ≈ a 32 KiB L1, 8K lines ≈ a
// 512 KiB L2, 64K lines ≈ a several-MiB LLC slice (64 B lines).
var ReuseBuckets = []int{512, 8192, 65536}

// Classifier consumes a line-address stream and produces a Profile.
// The zero value is not ready; use NewClassifier.
type Classifier struct {
	lineShift uint

	// Stream detection: recent stream heads, LRU-replaced.
	heads    []streamHead
	maxHeads int

	seq   int
	total int

	// Footprint and reuse tracking: last-access timestamps per line, with
	// a bounded map (sampling beyond the cap).
	lastSeen map[uint64]int
	capLines int

	// Reuse-distance approximation state.
	distinctTouches int
	reuseCounts     []int
	reuseTotal      int

	peakActiveStreams int
}

type streamHead struct {
	next    uint64
	lastUse int
	hits    int
}

// NewClassifier builds a classifier for the given cache-line size.
func NewClassifier(lineBytes int) (*Classifier, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("access: line size must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Classifier{
		lineShift:   shift,
		maxHeads:    64,
		lastSeen:    make(map[uint64]int, 1<<16),
		capLines:    1 << 20,
		reuseCounts: make([]int, len(ReuseBuckets)+1),
	}, nil
}

// Observe feeds one byte-addressed access.
func (c *Classifier) Observe(addr uint64) {
	line := addr >> c.lineShift
	c.total++

	// Stream detection: does this line continue any tracked stream?
	matched := false
	for i := range c.heads {
		if c.heads[i].next == line {
			c.heads[i].next = line + 1
			c.heads[i].lastUse = c.total
			c.heads[i].hits++
			if c.heads[i].hits >= 2 {
				c.seq++
			}
			matched = true
			break
		}
	}
	if !matched {
		c.trackNewHead(line)
	}
	if n := c.activeStreams(); n > c.peakActiveStreams {
		c.peakActiveStreams = n
	}

	// Footprint and reuse distance.
	if prev, ok := c.lastSeen[line]; ok {
		// Approximate stack distance: the distinct lines touched since
		// prev are at most the access delta and at most the footprint —
		// exact for cyclic sweeps and hot-line patterns, an upper bound
		// in between.
		dist := c.total - prev
		if f := len(c.lastSeen); dist > f {
			dist = f
		}
		c.recordReuse(dist)
		c.lastSeen[line] = c.total
	} else {
		c.distinctTouches++
		if len(c.lastSeen) < c.capLines {
			c.lastSeen[line] = c.total
		}
	}
}

func (c *Classifier) trackNewHead(line uint64) {
	h := streamHead{next: line + 1, lastUse: c.total}
	if len(c.heads) < c.maxHeads {
		c.heads = append(c.heads, h)
		return
	}
	oldest := 0
	for i := range c.heads {
		if c.heads[i].lastUse < c.heads[oldest].lastUse {
			oldest = i
		}
	}
	c.heads[oldest] = h
}

// activeStreams counts heads that have confirmed (≥2 sequential hits) and
// were used recently.
func (c *Classifier) activeStreams() int {
	n := 0
	for i := range c.heads {
		if c.heads[i].hits >= 2 && c.total-c.heads[i].lastUse < 4*c.maxHeads {
			n++
		}
	}
	return n
}

func (c *Classifier) recordReuse(dist int) {
	c.reuseTotal++
	for i, b := range ReuseBuckets {
		if dist <= b {
			c.reuseCounts[i]++
			return
		}
	}
	c.reuseCounts[len(ReuseBuckets)]++
}

// dominance is the sequential fraction above which a stream is Streaming
// and below one-minus-which it is Irregular.
const dominance = 0.7

// Profile summarizes what has been observed so far.
func (c *Classifier) Profile() Profile {
	p := Profile{
		Accesses:       c.total,
		FootprintLines: len(c.lastSeen),
		Streams:        c.peakActiveStreams,
	}
	if c.total > 0 {
		p.SequentialFraction = float64(c.seq) / float64(c.total)
	}
	switch {
	case p.SequentialFraction >= dominance:
		p.Kind = Streaming
	case p.SequentialFraction <= 1-dominance:
		p.Kind = Irregular
	default:
		p.Kind = Mixed
	}
	if c.reuseTotal > 0 {
		cum := 0
		p.ReuseCDF = make([]float64, len(ReuseBuckets))
		for i := range ReuseBuckets {
			cum += c.reuseCounts[i]
			p.ReuseCDF[i] = float64(cum) / float64(c.reuseTotal)
		}
	}
	return p
}

// RandomAccess translates the classification into the recipe's boolean
// (§III-D): Irregular and Mixed bind on the L1 MSHR file, because each
// irregular reference usually touches its own line and dominates traffic.
func (p Profile) RandomAccess() bool { return p.Kind != Streaming }

// TilingSignal reports whether the reuse profile suggests capturable reuse
// beyond the L1 but within LLC reach — the situation loop tiling improves.
func (p Profile) TilingSignal() bool {
	if len(p.ReuseCDF) < 2 {
		return false
	}
	// Reuse exists (beyond-L1 bucket populated) but a meaningful share of
	// it misses the L2-scale bucket.
	beyondL1 := 1 - p.ReuseCDF[0]
	return beyondL1 > 0.2 && p.ReuseCDF[1] < 0.9
}

// String renders the profile compactly.
func (p Profile) String() string {
	var cdf string
	for i, f := range p.ReuseCDF {
		cdf += fmt.Sprintf(" ≤%d:%.0f%%", ReuseBuckets[i], 100*f)
	}
	return fmt.Sprintf("%s (%.0f%% sequential, %d streams, %d lines touched;%s)",
		p.Kind, 100*p.SequentialFraction, p.Streams, p.FootprintLines, cdf)
}

// Entropy computes the Shannon entropy (bits) of the accesses' spatial
// distribution over buckets of 2^bucketLog lines — an auxiliary randomness
// measure: high entropy plus low sequential fraction is the signature of
// hash-table traffic.
func Entropy(lines []uint64, bucketLog uint) float64 {
	if len(lines) == 0 {
		return 0
	}
	counts := map[uint64]int{}
	for _, l := range lines {
		counts[l>>bucketLog]++
	}
	keys := make([]uint64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := 0.0
	n := float64(len(lines))
	for _, k := range keys {
		p := float64(counts[k]) / n
		h -= p * math.Log2(p)
	}
	return h
}
