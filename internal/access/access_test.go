package access

import (
	"math/rand"
	"testing"
	"testing/quick"

	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/workloads"
)

func classify(t *testing.T, feed func(c *Classifier)) Profile {
	t.Helper()
	c, err := NewClassifier(64)
	if err != nil {
		t.Fatal(err)
	}
	feed(c)
	return c.Profile()
}

func TestNewClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(0); err == nil {
		t.Fatal("zero line size accepted")
	}
	if _, err := NewClassifier(96); err == nil {
		t.Fatal("non-power-of-two line size accepted")
	}
}

func TestPureStream(t *testing.T) {
	p := classify(t, func(c *Classifier) {
		for i := 0; i < 5000; i++ {
			c.Observe(uint64(i) * 64)
		}
	})
	if p.Kind != Streaming {
		t.Fatalf("pure stream classified %v: %s", p.Kind, p)
	}
	if p.SequentialFraction < 0.95 {
		t.Fatalf("sequential fraction = %.2f", p.SequentialFraction)
	}
	if p.RandomAccess() {
		t.Fatal("stream reported as random access")
	}
	if p.FootprintLines != 5000 {
		t.Fatalf("footprint = %d, want 5000", p.FootprintLines)
	}
}

func TestPureRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := classify(t, func(c *Classifier) {
		for i := 0; i < 5000; i++ {
			c.Observe(rng.Uint64() & (1<<34 - 1))
		}
	})
	if p.Kind != Irregular {
		t.Fatalf("random traffic classified %v: %s", p.Kind, p)
	}
	if !p.RandomAccess() {
		t.Fatal("random traffic not reported as random access")
	}
}

func TestInterleavedStreamsCounted(t *testing.T) {
	p := classify(t, func(c *Classifier) {
		for i := 0; i < 3000; i++ {
			for s := 0; s < 6; s++ {
				c.Observe(uint64(s)<<34 + uint64(i)*64)
			}
		}
	})
	if p.Kind != Streaming {
		t.Fatalf("six interleaved streams classified %v", p.Kind)
	}
	if p.Streams < 5 || p.Streams > 8 {
		t.Fatalf("stream estimate = %d, want ≈6", p.Streams)
	}
}

func TestMixedTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := classify(t, func(c *Classifier) {
		for i := 0; i < 4000; i++ {
			if i%2 == 0 {
				c.Observe(uint64(i/2) * 64) // stream half
			} else {
				c.Observe(1<<40 + rng.Uint64()&(1<<32-1)) // random half
			}
		}
	})
	if p.Kind != Mixed {
		t.Fatalf("half-and-half classified %v (%s)", p.Kind, p)
	}
	// §III-D: mixed routines bind on the L1 file.
	if !p.RandomAccess() {
		t.Fatal("mixed traffic must classify as random-access for the recipe")
	}
}

func TestReuseCDF(t *testing.T) {
	// Touch 256 lines cyclically: every re-access has stack distance ~255,
	// inside the first bucket (512).
	p := classify(t, func(c *Classifier) {
		for i := 0; i < 20000; i++ {
			c.Observe(uint64(i%256) * 64)
		}
	})
	if len(p.ReuseCDF) == 0 || p.ReuseCDF[0] < 0.95 {
		t.Fatalf("short-reuse traffic CDF = %v, want ≈1 in first bucket", p.ReuseCDF)
	}
	// Touch 20000 lines cyclically: reuse distance ~20000 — beyond the
	// 8192 bucket, so the L2-scale CDF stays low: tiling territory.
	p = classify(t, func(c *Classifier) {
		for rep := 0; rep < 4; rep++ {
			for i := 0; i < 20000; i++ {
				c.Observe(uint64(i) * 64)
			}
		}
	})
	if len(p.ReuseCDF) < 2 || p.ReuseCDF[1] > 0.5 {
		t.Fatalf("long-reuse traffic CDF = %v, want low at L2 scale", p.ReuseCDF)
	}
	if !p.TilingSignal() {
		t.Fatalf("long-distance reuse must raise the tiling signal: %s", p)
	}
}

// TestWorkloadClassificationMatchesTableII runs the classifier over the
// actual workload generators and checks the per-application verdicts:
// random-dominated apps come out Irregular, stream-dominated ones
// Streaming, and SNAP — whose short angular bursts are exactly the
// boundary case §IV-F discusses — lands between the two.
func TestWorkloadClassificationMatchesTableII(t *testing.T) {
	p := platform.SKL()
	want := map[string][]Kind{
		"ISx":       {Irregular, Mixed}, // the key-array stream rides along
		"HPCG":      {Streaming},
		"PENNANT":   {Irregular},
		"CoMD":      {Irregular},
		"MiniGhost": {Streaming},
		"SNAP":      {Mixed, Streaming}, // short streams: the boundary case
	}
	for _, w := range workloads.All() {
		c, err := NewClassifier(p.LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		gen := w.Config(p, 1, 0.2).NewGen(0, 0)
		for i := 0; i < 20000; i++ {
			op, ok := gen.Next()
			if !ok {
				break
			}
			if op.Kind == memsys.Load || op.Kind == memsys.Store {
				c.Observe(op.Addr)
			}
		}
		prof := c.Profile()
		ok := false
		for _, k := range want[w.Name()] {
			if prof.Kind == k {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: classified %v, want one of %v (%s)", w.Name(), prof.Kind, want[w.Name()], prof)
		}
	}
}

func TestEntropy(t *testing.T) {
	uniform := make([]uint64, 1024)
	for i := range uniform {
		uniform[i] = uint64(i)
	}
	if h := Entropy(uniform, 0); h < 9.9 {
		t.Fatalf("uniform entropy = %.2f, want ~10 bits", h)
	}
	same := make([]uint64, 1024)
	if h := Entropy(same, 0); h != 0 {
		t.Fatalf("degenerate entropy = %v, want 0", h)
	}
	if h := Entropy(nil, 4); h != 0 {
		t.Fatalf("empty entropy = %v", h)
	}
}

// Property: SequentialFraction stays within [0,1]; footprint never exceeds
// accesses; the CDF is monotone.
func TestClassifierInvariants(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := NewClassifier(64)
		if err != nil {
			return false
		}
		total := int(n)%2000 + 10
		for i := 0; i < total; i++ {
			switch rng.Intn(3) {
			case 0:
				c.Observe(uint64(i) * 64)
			case 1:
				c.Observe(rng.Uint64() & (1<<30 - 1))
			default:
				c.Observe(uint64(rng.Intn(64)) * 64)
			}
		}
		p := c.Profile()
		if p.SequentialFraction < 0 || p.SequentialFraction > 1 {
			return false
		}
		if p.FootprintLines > p.Accesses {
			return false
		}
		prev := 0.0
		for _, v := range p.ReuseCDF {
			if v < prev || v > 1+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
