// Package streamtest holds the shared §III-D two-phase fixture: a
// memory-hot random-access routine next to a compute-light one, whose
// whole-program average misleads. The profiler's table test and the
// stream package's phase-detector tests analyze the same application, so
// a change to the fixture moves both ends of the argument together.
package streamtest

import (
	"math/rand"

	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/sim"
	"littleslaw/internal/stream"
)

// Curve returns the SKL anchor profile both tests analyze against.
func Curve() *queueing.Curve {
	return queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 0.5, LatencyNs: 82}, {BandwidthGBs: 37.9, LatencyNs: 93},
		{BandwidthGBs: 92.9, LatencyNs: 117}, {BandwidthGBs: 106.9, LatencyNs: 145},
		{BandwidthGBs: 112, LatencyNs: 220},
	})
}

// PhaseConfig builds a small random-load phase with a given issue gap
// (larger gap = lighter memory phase) and per-thread demand window.
func PhaseConfig(p *platform.Platform, gap float64, window int) sim.Config {
	return sim.Config{
		Plat:   p,
		Cores:  8,
		Window: window,
		NewGen: func(coreID, threadID int) cpu.Generator {
			rng := rand.New(rand.NewSource(int64(coreID*31 + threadID)))
			n := 1500
			return cpu.GeneratorFunc(func() (cpu.Op, bool) {
				if n <= 0 {
					return cpu.Op{}, false
				}
				n--
				return cpu.Op{
					Addr:      uint64(coreID+1)<<34 + (rng.Uint64()&(1<<28-1))&^63,
					Kind:      memsys.Load,
					GapCycles: gap,
					Work:      1,
				}, true
			})
		},
	}
}

// HeavyGap and LightGap are the issue gaps of the fixture's two phases:
// back-to-back random loads versus one load every ~900 cycles.
const (
	HeavyGap = 1.0
	LightGap = 900.0
)

// TwoPhaseReplay returns the canonical two-phase replay: samplesPerPhase
// samples of the hot sweep followed by samplesPerPhase of the light
// solver, on platform p.
func TwoPhaseReplay(p *platform.Platform, samplesPerPhase int) []stream.ReplayPhase {
	return []stream.ReplayPhase{
		{Label: "hot_sweep", Config: PhaseConfig(p, HeavyGap, 12), Samples: samplesPerPhase},
		{Label: "light_solver", Config: PhaseConfig(p, LightGap, 2), Samples: samplesPerPhase},
	}
}
