package stream

import "math"

// DetectorConfig tunes the CUSUM phase detector.
type DetectorConfig struct {
	// Slack (k) is the mean drift the detector tolerates before charging
	// the cumulative sums, in units of the monitored value (n_avg).
	// Default 0.5 — half an MSHR entry of wander is not a phase change.
	Slack float64
	// Threshold (h) is the cumulative deviation that declares a mean
	// shift, in the same units. Default 1.5.
	Threshold float64
	// MinWindows is the minimum number of windows a phase must span before
	// the detector re-arms; shorter excursions fold into the running phase.
	// Default 2.
	MinWindows int
}

func (c *DetectorConfig) normalize() {
	if c.Slack == 0 {
		c.Slack = 0.5
	}
	if c.Threshold == 0 {
		c.Threshold = 1.5
	}
	if c.MinWindows == 0 {
		c.MinWindows = 2
	}
}

// Detector segments a sequence of per-window values (the monitor feeds it
// n_avg) into phases with a two-sided CUSUM against the running mean of
// the current phase: gPos accumulates (x − μ − k)⁺, gNeg accumulates
// (μ − x − k)⁺, and either sum exceeding h declares a boundary. CUSUM
// accumulates evidence across windows, so it catches both a step (one
// window far from μ) and a slow ramp (many windows slightly off) that a
// single-window threshold would miss.
type Detector struct {
	cfg        DetectorConfig
	mean       float64
	n          int // windows in the current phase
	gPos, gNeg float64
}

// NewDetector builds a detector; zero-valued config fields take defaults.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg.normalize()
	return &Detector{cfg: cfg}
}

// Push feeds the next window value and reports whether a phase boundary
// was detected immediately before it — the pushed value opens the new
// phase.
func (d *Detector) Push(x float64) bool {
	if math.IsNaN(x) {
		return false
	}
	if d.n == 0 {
		d.mean = x
		d.n = 1
		return false
	}

	if d.n >= d.cfg.MinWindows {
		d.gPos = math.Max(0, d.gPos+x-d.mean-d.cfg.Slack)
		d.gNeg = math.Max(0, d.gNeg+d.mean-x-d.cfg.Slack)
		if d.gPos > d.cfg.Threshold || d.gNeg > d.cfg.Threshold {
			d.mean = x
			d.n = 1
			d.gPos, d.gNeg = 0, 0
			return true
		}
	}

	// No shift: fold the window into the running phase mean.
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	return false
}

// PhaseWindows returns the number of windows in the current phase.
func (d *Detector) PhaseWindows() int { return d.n }

// Mean returns the running mean of the current phase.
func (d *Detector) Mean() float64 { return d.mean }
