// Package stream turns the one-shot Little's-Law analysis into a
// continuous monitor: a Source emits timestamped bandwidth samples (from a
// replayed simulation, an NDJSON counter dump, or stdin), a sliding Window
// computes per-window n_avg against the platform's loaded-latency curve,
// and a CUSUM PhaseDetector segments the stream into phases, attaching the
// Figure-1 recipe verdict to each.
//
// The subsystem exists because of §III-D: "averaging counter data from
// multiple routines that often behave very differently usually provides
// misleading guidance". A whole-stream average produces one recommendation;
// the per-phase reports produce the right one for each phase. The Monitor
// computes both and flags the disagreement — the §III-D trap, made
// measurable — in its final summary event.
//
// Events fan out to any number of subscribers through a Broker with
// per-subscriber drop-oldest backpressure, which is what /v1/watch on
// llserved serves as NDJSON and SSE.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"

	"littleslaw/internal/core"
	"littleslaw/internal/faults"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// FaultSite is the monitor pipeline's fault-injection point, evaluated
// once per consumed sample. It honors latency (a stalled counter source)
// and error (a dying source — the path that exercises terminal error
// events downstream).
const FaultSite = "stream.monitor"

// Sample is one timestamped bandwidth observation from a counter source.
type Sample struct {
	// TS is the sample time in seconds since the stream started.
	TS float64 `json:"t_s"`
	// BandwidthGBs is the observed memory bandwidth (reads + writebacks).
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	// PrefetchedReadFraction is the share of reads initiated by the
	// prefetcher when the counters expose it; < 0 means unknown.
	PrefetchedReadFraction float64 `json:"prefetched_read_fraction,omitempty"`
}

// Event is one monitor output: exactly one of Window, Phase, Summary or
// Error is set, discriminated by Kind ("window", "phase", "summary",
// "error"). Seq is the position in the stream, assigned by the Broker.
type Event struct {
	Kind    string        `json:"kind"`
	Seq     int           `json:"seq"`
	Window  *WindowEvent  `json:"window,omitempty"`
	Phase   *PhaseEvent   `json:"phase,omitempty"`
	Summary *SummaryEvent `json:"summary,omitempty"`
	Error   *ErrorEvent   `json:"error,omitempty"`
}

// ErrorEvent is the terminal event a stream publishes when its monitor
// dies mid-stream (a fault, a failed replay, an expired context): the
// graceful-degradation contract that a subscriber always learns why a
// stream ended instead of watching a silently truncated sequence.
type ErrorEvent struct {
	Message string `json:"message"`
}

// WindowEvent is the Little's-Law report for one sliding window.
type WindowEvent struct {
	Index  int     `json:"index"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// Phase is the index of the phase this window currently belongs to.
	Phase           int     `json:"phase"`
	BandwidthGBs    float64 `json:"bandwidth_gbs"`
	LatencyNs       float64 `json:"latency_ns"`
	Occupancy       float64 `json:"n_avg"`
	Limiter         string  `json:"limiter"`
	LimiterCapacity int     `json:"limiter_capacity"`
	Saturated       bool    `json:"saturated"`
}

// Advice is one recipe verdict attached to a phase.
type Advice struct {
	Optimization string `json:"optimization"`
	Stance       string `json:"stance"`
	Reason       string `json:"reason"`
}

// PhaseEvent summarizes one detected phase when it closes (at a detected
// mean shift, or at end of stream).
type PhaseEvent struct {
	Index   int     `json:"index"`
	StartS  float64 `json:"start_s"`
	EndS    float64 `json:"end_s"`
	Windows int     `json:"windows"`
	// BandwidthGBs is the mean bandwidth over the phase's windows.
	BandwidthGBs    float64  `json:"bandwidth_gbs"`
	LatencyNs       float64  `json:"latency_ns"`
	Occupancy       float64  `json:"n_avg"`
	Limiter         string   `json:"limiter"`
	LimiterCapacity int      `json:"limiter_capacity"`
	Action          string   `json:"action"`
	Advice          []Advice `json:"advice,omitempty"`
}

// SummaryEvent closes the stream: the whole-stream average pushed through
// the same metric, next to the per-phase verdicts it would overrule.
type SummaryEvent struct {
	Samples int `json:"samples"`
	Windows int `json:"windows"`
	Phases  int `json:"phases"`
	// BandwidthGBs is the whole-stream mean bandwidth — the number a
	// whole-program profile would report.
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	Occupancy    float64 `json:"n_avg"`
	// Action is the single recommendation the aggregate yields.
	Action string `json:"action"`
	// PhaseActions lists each phase's recommendation, in phase order.
	PhaseActions []string `json:"phase_actions"`
	// MisleadingAggregate is the §III-D flag: true when at least one
	// phase's recommendation differs from the aggregate's, so following
	// the whole-stream number would misguide that phase.
	MisleadingAggregate bool `json:"misleading_aggregate"`
	// Detail narrates the disagreement (empty when the aggregate agrees
	// with every phase).
	Detail string `json:"detail,omitempty"`
}

// Config parameterizes a Monitor. Platform and Profile are required.
type Config struct {
	Platform *platform.Platform
	// Profile is the platform's bandwidth→latency curve.
	Profile *queueing.Curve
	// WindowSamples is the sliding-window width in samples (default 8).
	WindowSamples int
	// StrideSamples is the emission stride in samples (default half the
	// window, minimum 1).
	StrideSamples int
	// ActiveCores the samples were measured on (0 = the full node).
	ActiveCores int
	// ThreadsPerCore in the measured run (0 = 1).
	ThreadsPerCore int
	// RandomAccess classifies the stream when a sample carries no
	// prefetched-read fraction.
	RandomAccess bool
	// Detector tunes the phase detector.
	Detector DetectorConfig
}

func (c *Config) normalize() error {
	if c.Platform == nil {
		return errors.New("stream: nil platform")
	}
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if c.Profile == nil {
		return errors.New("stream: nil bandwidth-latency profile")
	}
	if c.WindowSamples == 0 {
		c.WindowSamples = 8
	}
	if c.WindowSamples < 1 {
		return fmt.Errorf("stream: window of %d samples", c.WindowSamples)
	}
	if c.StrideSamples == 0 {
		c.StrideSamples = max(1, c.WindowSamples/2)
	}
	if c.StrideSamples < 1 {
		return fmt.Errorf("stream: stride of %d samples", c.StrideSamples)
	}
	if c.ThreadsPerCore == 0 {
		c.ThreadsPerCore = 1
	}
	c.Detector.normalize()
	return nil
}

// Validate checks the config the same way Monitor will, without running
// anything. Callers that stream over HTTP use it to reject a bad request
// before committing to a 200.
func (c Config) Validate() error { return c.normalize() }

// Monitor drives samples from a Source through the window and phase
// pipeline, handing each Event to emit in order. It returns the final
// summary (also emitted) when the source drains.
//
// emit errors abort the run: a monitor serving a single subscriber stops
// when that subscriber goes away. Fan-out callers publish into a Broker,
// which never errors.
func Monitor(ctx context.Context, src Source, cfg Config, emit func(Event) error) (*SummaryEvent, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("stream: nil source")
	}

	win := NewWindow(cfg.WindowSamples, cfg.StrideSamples)
	det := NewDetector(cfg.Detector)

	type phaseAcc struct {
		startS, endS float64
		windows      int
		bwSum        float64
		pfSum        float64
		pfN          int
	}
	var (
		cur       phaseAcc
		phases    []*PhaseEvent
		samples   int
		bwSum     float64
		pfSum     float64
		pfN       int
		windows   int
		havePhase bool
	)

	analyze := func(bw, pf float64) (*core.Report, error) {
		m := core.Measurement{
			Routine:                "stream",
			BandwidthGBs:           bw,
			ActiveCores:            cfg.ActiveCores,
			ThreadsPerCore:         cfg.ThreadsPerCore,
			PrefetchedReadFraction: pf,
			RandomAccess:           cfg.RandomAccess,
		}
		return core.Analyze(cfg.Platform, cfg.Profile, m)
	}

	closePhase := func() (*PhaseEvent, error) {
		if !havePhase || cur.windows == 0 {
			return nil, nil
		}
		pf := -1.0
		if cur.pfN > 0 {
			pf = cur.pfSum / float64(cur.pfN)
		}
		bw := cur.bwSum / float64(cur.windows)
		rep, err := analyze(bw, pf)
		if err != nil {
			return nil, err
		}
		pe := &PhaseEvent{
			Index:           len(phases),
			StartS:          cur.startS,
			EndS:            cur.endS,
			Windows:         cur.windows,
			BandwidthGBs:    bw,
			LatencyNs:       rep.LatencyNs,
			Occupancy:       rep.Occupancy,
			Limiter:         rep.Limiter.String(),
			LimiterCapacity: rep.LimiterCapacity,
			Action:          core.Classify(rep).String(),
		}
		caps := core.Capabilities{
			SMTWays:         cfg.Platform.SMTWays,
			CurrentThreads:  cfg.ThreadsPerCore,
			IrregularAccess: rep.Limiter == core.L1Bound,
		}
		for _, a := range core.Advise(rep, caps) {
			pe.Advice = append(pe.Advice, Advice{
				Optimization: a.Opt.String(),
				Stance:       a.Stance.String(),
				Reason:       a.Reason,
			})
		}
		phases = append(phases, pe)
		havePhase = false
		return pe, nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch f := faults.Global().Eval(FaultSite); f.Kind {
		case faults.KindLatency:
			f.Sleep(ctx)
		case faults.KindError:
			return nil, f.Err()
		}
		s, err := src.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		samples++
		bwSum += s.BandwidthGBs
		if s.PrefetchedReadFraction >= 0 {
			pfSum += s.PrefetchedReadFraction
			pfN++
		}

		stat, ok := win.Push(s)
		if !ok {
			continue
		}
		pf := -1.0
		if stat.PrefetchN > 0 {
			pf = stat.PrefetchSum / float64(stat.PrefetchN)
		}
		rep, err := analyze(stat.MeanBandwidthGBs, pf)
		if err != nil {
			return nil, err
		}

		if det.Push(rep.Occupancy) {
			// Mean shift: the phase ended where this window begins.
			cur.endS = stat.StartS
			pe, err := closePhase()
			if err != nil {
				return nil, err
			}
			if pe != nil {
				if err := emit(Event{Kind: "phase", Phase: pe}); err != nil {
					return nil, err
				}
			}
		}
		if !havePhase {
			cur = phaseAcc{startS: stat.StartS}
			havePhase = true
		}
		cur.endS = stat.EndS
		cur.windows++
		cur.bwSum += stat.MeanBandwidthGBs
		if pf >= 0 {
			cur.pfSum += pf
			cur.pfN++
		}

		windows++
		we := &WindowEvent{
			Index:           stat.Index,
			StartS:          stat.StartS,
			EndS:            stat.EndS,
			Phase:           len(phases),
			BandwidthGBs:    stat.MeanBandwidthGBs,
			LatencyNs:       rep.LatencyNs,
			Occupancy:       rep.Occupancy,
			Limiter:         rep.Limiter.String(),
			LimiterCapacity: rep.LimiterCapacity,
			Saturated:       rep.OccupancySaturated(),
		}
		if err := emit(Event{Kind: "window", Window: we}); err != nil {
			return nil, err
		}
	}

	pe, err := closePhase()
	if err != nil {
		return nil, err
	}
	if pe != nil {
		if err := emit(Event{Kind: "phase", Phase: pe}); err != nil {
			return nil, err
		}
	}

	sum := &SummaryEvent{Samples: samples, Windows: windows, Phases: len(phases)}
	if samples > 0 {
		pf := -1.0
		if pfN > 0 {
			pf = pfSum / float64(pfN)
		}
		sum.BandwidthGBs = bwSum / float64(samples)
		rep, err := analyze(sum.BandwidthGBs, pf)
		if err != nil {
			return nil, err
		}
		sum.Occupancy = rep.Occupancy
		sum.Action = core.Classify(rep).String()
		for _, p := range phases {
			sum.PhaseActions = append(sum.PhaseActions, p.Action)
			if p.Action != sum.Action {
				sum.MisleadingAggregate = true
				sum.Detail += fmt.Sprintf("phase %d (%.0f–%.0fs) needs %s, the aggregate says %s; ",
					p.Index, p.StartS, p.EndS, p.Action, sum.Action)
			}
		}
		if sum.MisleadingAggregate {
			sum.Detail += "averaging phases that behave differently provides misleading guidance (§III-D)"
		}
	}
	if err := emit(Event{Kind: "summary", Summary: sum}); err != nil {
		return nil, err
	}
	return sum, nil
}
