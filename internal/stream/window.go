package stream

import "math"

// WindowStat is the aggregate the sliding window emits every stride once
// it is full.
type WindowStat struct {
	// Index counts emitted windows from 0.
	Index int
	// StartS and EndS are the timestamps of the oldest and newest sample
	// in the window.
	StartS, EndS float64
	// MeanBandwidthGBs is the window-average bandwidth.
	MeanBandwidthGBs float64
	// PrefetchSum and PrefetchN aggregate the samples that carried a
	// prefetched-read fraction (PrefetchN of them).
	PrefetchSum float64
	PrefetchN   int
}

// Window maintains a ring-buffered sliding window over samples: width
// samples wide, emitting a WindowStat every stride pushes once full.
// Push is O(1) and allocation-free after construction, which is what lets
// the monitor keep up with high-rate counter streams (BenchmarkWindowPush
// pins this).
type Window struct {
	width, stride int
	buf           []Sample
	n             int // total samples pushed
	sum           float64
	pfSum         float64
	pfN           int
	emitted       int
}

// NewWindow builds a window of width samples emitting every stride.
// Both must be at least 1; stride may exceed width (sampling windows).
func NewWindow(width, stride int) *Window {
	if width < 1 || stride < 1 {
		panic("stream: window width and stride must be at least 1")
	}
	return &Window{width: width, stride: stride, buf: make([]Sample, width)}
}

// Push adds one sample and returns the window aggregate when one is due.
// Non-finite sample fields are sanitized on entry: the running sums are
// maintained incrementally, and one NaN bandwidth would poison them forever
// (NaN−NaN is still NaN when the sample is later evicted), turning a single
// bad counter read into a permanently-NaN monitor. A NaN/±Inf bandwidth
// counts as 0; a non-finite prefetch fraction counts as unknown.
func (w *Window) Push(s Sample) (WindowStat, bool) {
	if math.IsNaN(s.BandwidthGBs) || math.IsInf(s.BandwidthGBs, 0) {
		s.BandwidthGBs = 0
	}
	if math.IsNaN(s.PrefetchedReadFraction) || math.IsInf(s.PrefetchedReadFraction, 0) {
		s.PrefetchedReadFraction = -1
	}
	slot := w.n % w.width
	if w.n >= w.width {
		old := w.buf[slot]
		w.sum -= old.BandwidthGBs
		if old.PrefetchedReadFraction >= 0 {
			w.pfSum -= old.PrefetchedReadFraction
			w.pfN--
		}
	}
	w.buf[slot] = s
	w.sum += s.BandwidthGBs
	if s.PrefetchedReadFraction >= 0 {
		w.pfSum += s.PrefetchedReadFraction
		w.pfN++
	}
	w.n++

	if w.n < w.width || (w.n-w.width)%w.stride != 0 {
		return WindowStat{}, false
	}
	// The next slot to be overwritten holds the oldest buffered sample
	// (when n == width that is slot 0, the first sample).
	oldest := w.buf[w.n%w.width]
	stat := WindowStat{
		Index:            w.emitted,
		StartS:           oldest.TS,
		EndS:             s.TS,
		MeanBandwidthGBs: w.sum / float64(w.width),
		PrefetchSum:      w.pfSum,
		PrefetchN:        w.pfN,
	}
	w.emitted++
	return stat, true
}

// Len returns the number of samples currently buffered.
func (w *Window) Len() int {
	if w.n < w.width {
		return w.n
	}
	return w.width
}
