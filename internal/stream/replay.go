package stream

import (
	"context"
	"fmt"

	"littleslaw/internal/engine"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
)

// ReplayPhase is one segment of a replayed workload: a node simulation
// whose steady-state bandwidth is emitted as a run of counter samples.
type ReplayPhase struct {
	// Label names the phase in diagnostics.
	Label string
	// Config is the node simulation to run for this phase.
	Config sim.Config
	// Samples is the number of counter samples the phase contributes
	// (default 16).
	Samples int
}

// ReplayResult pairs a phase with its simulation outcome.
type ReplayResult struct {
	Label  string
	Result *sim.Result
}

// ReplayOptions tunes Replay.
type ReplayOptions struct {
	// PeriodS is the sample spacing in seconds (default 1).
	PeriodS float64
	// Workers bounds the concurrent phase simulations (0 = GOMAXPROCS).
	// The emitted series is identical at any worker count: engine.Map
	// returns results in submission order.
	Workers int
}

// Replay runs every phase's simulation through the shared worker pool and
// flattens the results into a deterministic counter-sample series: each
// phase contributes Samples samples at its measured bandwidth and
// prefetched-read fraction. It is the bridge from the one-shot simulator
// to the streaming monitor — a recorded run becomes a replayable stream.
func Replay(ctx context.Context, phases []ReplayPhase, opts ReplayOptions) (*SliceSource, []ReplayResult, error) {
	if len(phases) == 0 {
		return nil, nil, fmt.Errorf("stream: no replay phases")
	}
	period := opts.PeriodS
	if period <= 0 {
		period = 1
	}

	jobs := make([]func(context.Context) (*sim.Result, error), len(phases))
	for i, ph := range phases {
		cfg := ph.Config
		jobs[i] = func(ctx context.Context) (*sim.Result, error) {
			return runner.Run(ctx, cfg)
		}
	}
	results, err := engine.Map(ctx, engine.New(opts.Workers), jobs)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: replaying phases: %w", err)
	}

	var samples []Sample
	outcomes := make([]ReplayResult, len(phases))
	t := 0.0
	for i, ph := range phases {
		res := results[i]
		outcomes[i] = ReplayResult{Label: ph.Label, Result: res}
		n := ph.Samples
		if n == 0 {
			n = 16
		}
		if n < 0 {
			return nil, nil, fmt.Errorf("stream: phase %q has negative sample count", ph.Label)
		}
		for k := 0; k < n; k++ {
			samples = append(samples, Sample{
				TS:                     t,
				BandwidthGBs:           res.TotalGBs,
				PrefetchedReadFraction: res.PrefetchedReadFraction,
			})
			t += period
		}
	}
	return NewSliceSource(samples), outcomes, nil
}
