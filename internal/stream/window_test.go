package stream

import (
	"context"
	"io"
	"math"
	"strings"
	"testing"
)

func TestWindowSlides(t *testing.T) {
	w := NewWindow(4, 2)
	var stats []WindowStat
	for i := 0; i < 10; i++ {
		s := Sample{TS: float64(i), BandwidthGBs: float64(i), PrefetchedReadFraction: -1}
		if stat, ok := w.Push(s); ok {
			stats = append(stats, stat)
		}
	}
	// Windows complete at samples 4, 6, 8, 10 → indices 0..3.
	if len(stats) != 4 {
		t.Fatalf("got %d windows, want 4: %+v", len(stats), stats)
	}
	// First window covers samples 0..3: mean 1.5, span [0, 3].
	if stats[0].MeanBandwidthGBs != 1.5 || stats[0].StartS != 0 || stats[0].EndS != 3 {
		t.Fatalf("window 0 = %+v", stats[0])
	}
	// Second window covers samples 2..5: mean 3.5, span [2, 5].
	if stats[1].MeanBandwidthGBs != 3.5 || stats[1].StartS != 2 || stats[1].EndS != 5 {
		t.Fatalf("window 1 = %+v", stats[1])
	}
	if stats[3].Index != 3 || w.Len() != 4 {
		t.Fatalf("index/len = %d/%d", stats[3].Index, w.Len())
	}
}

func TestWindowPrefetchFractionAggregation(t *testing.T) {
	w := NewWindow(2, 1)
	w.Push(Sample{TS: 0, BandwidthGBs: 1, PrefetchedReadFraction: 0.5})
	stat, ok := w.Push(Sample{TS: 1, BandwidthGBs: 1, PrefetchedReadFraction: -1})
	if !ok || stat.PrefetchN != 1 || stat.PrefetchSum != 0.5 {
		t.Fatalf("stat = %+v ok=%v", stat, ok)
	}
	// The unknown-fraction sample evicts cleanly.
	stat, ok = w.Push(Sample{TS: 2, BandwidthGBs: 1, PrefetchedReadFraction: 0.25})
	if !ok || stat.PrefetchN != 1 || stat.PrefetchSum != 0.25 {
		t.Fatalf("stat after eviction = %+v ok=%v", stat, ok)
	}
}

func TestWindowTumbling(t *testing.T) {
	w := NewWindow(3, 3) // stride == width: no overlap
	var n int
	for i := 0; i < 9; i++ {
		if _, ok := w.Push(Sample{TS: float64(i), BandwidthGBs: 1, PrefetchedReadFraction: -1}); ok {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("tumbling windows = %d, want 3", n)
	}
}

func TestWindowBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero width did not panic")
		}
	}()
	NewWindow(0, 1)
}

func TestDetectorStepShift(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	for i := 0; i < 5; i++ {
		if d.Push(10 + 0.1*float64(i%2)) {
			t.Fatalf("false boundary at stable window %d", i)
		}
	}
	if !d.Push(2) {
		t.Fatal("step 10→2 not detected")
	}
	if d.PhaseWindows() != 1 || math.Abs(d.Mean()-2) > 1e-9 {
		t.Fatalf("detector did not reset: n=%d mean=%v", d.PhaseWindows(), d.Mean())
	}
	// The new phase needs MinWindows before re-arming.
	if d.Push(2.1) {
		t.Fatal("boundary before MinWindows")
	}
	if !d.Push(9.5) {
		t.Fatal("return shift not detected")
	}
}

func TestDetectorRampAccumulates(t *testing.T) {
	// Each window drifts +0.8 over slack 0.5: no single window clears the
	// 1.5 threshold alone, but the CUSUM accumulates 0.3/window.
	d := NewDetector(DetectorConfig{Slack: 0.5, Threshold: 1.5, MinWindows: 1})
	d.Push(10)
	fired := false
	x := 10.0
	for i := 0; i < 12 && !fired; i++ {
		x += 0.8
		fired = d.Push(x)
	}
	if !fired {
		t.Fatal("slow ramp never detected")
	}
}

func TestDetectorIgnoresNaN(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	d.Push(5)
	if d.Push(math.NaN()) {
		t.Fatal("NaN declared a boundary")
	}
	if d.PhaseWindows() != 1 {
		t.Fatalf("NaN was folded into the phase: n=%d", d.PhaseWindows())
	}
}

func TestNDJSONSource(t *testing.T) {
	in := `# counter dump
{"t_s": 0, "bandwidth_gbs": 10}

{"t_s": 1.5, "bandwidth_gbs": 20, "prefetched_read_fraction": 0.75}
{"bandwidth_gbs": 30}
`
	src := NewNDJSONSource(strings.NewReader(in), 0.5)
	ctx := context.Background()
	var got []Sample
	for {
		s, err := src.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, s)
	}
	want := []Sample{
		{TS: 0, BandwidthGBs: 10, PrefetchedReadFraction: -1},
		{TS: 1.5, BandwidthGBs: 20, PrefetchedReadFraction: 0.75},
		{TS: 2.0, BandwidthGBs: 30, PrefetchedReadFraction: -1}, // 1.5 + period
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples: %+v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestNDJSONSourceErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"missing-bandwidth", `{"t_s": 0}`},
		{"negative-bandwidth", `{"bandwidth_gbs": -1}`},
		{"nan-impossible-but-inf", `{"bandwidth_gbs": 1e999}`},
		{"backwards-time", "{\"t_s\": 5, \"bandwidth_gbs\": 1}\n{\"t_s\": 4, \"bandwidth_gbs\": 1}"},
		{"bad-fraction", `{"bandwidth_gbs": 1, "prefetched_read_fraction": 1.5}`},
		{"not-json", `bandwidth=12`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := NewNDJSONSource(strings.NewReader(tc.in), 1)
			for {
				_, err := src.Next(context.Background())
				if err == io.EOF {
					t.Fatalf("input %q accepted", tc.in)
				}
				if err != nil {
					return // got the expected rejection
				}
			}
		})
	}
}

func TestSliceSourceHonorsContext(t *testing.T) {
	src := NewSliceSource([]Sample{{TS: 0, BandwidthGBs: 1}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := src.Next(ctx); err == nil {
		t.Fatal("cancelled context not honored")
	}
}

// TestWindowNonFiniteSamplesDoNotPoison: the running sums are incremental,
// so without sanitizing, one NaN bandwidth sample would keep the mean NaN
// forever — NaN−NaN is still NaN when the sample is evicted.
func TestWindowNonFiniteSamplesDoNotPoison(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		w := NewWindow(2, 1)
		w.Push(Sample{TS: 0, BandwidthGBs: bad, PrefetchedReadFraction: bad})
		stat, ok := w.Push(Sample{TS: 1, BandwidthGBs: 4, PrefetchedReadFraction: 0.5})
		if !ok || stat.MeanBandwidthGBs != 2 {
			t.Fatalf("bad=%v: stat with sanitized sample = %+v ok=%v, want mean 2", bad, stat, ok)
		}
		if stat.PrefetchN != 1 || stat.PrefetchSum != 0.5 {
			t.Fatalf("bad=%v: prefetch aggregate = %+v, want one known sample", bad, stat)
		}
		// After the bad sample is evicted the window must recover exactly.
		stat, ok = w.Push(Sample{TS: 2, BandwidthGBs: 6, PrefetchedReadFraction: 0.25})
		if !ok || stat.MeanBandwidthGBs != 5 || stat.PrefetchN != 2 {
			t.Fatalf("bad=%v: stat after eviction = %+v ok=%v, want mean 5", bad, stat, ok)
		}
	}
}
