package stream

import (
	"sync"
	"sync/atomic"
)

// Broker fans a monitor's event stream out to many subscribers. Every
// published event is retained (up to a history cap), so a subscriber that
// attaches late replays the full sequence before tailing live events —
// which is how N concurrent /v1/watch clients all observe identical
// streams. A slow subscriber never blocks the publisher or its peers:
// when a subscriber's buffer fills, its oldest undelivered event is
// dropped and counted.
type Broker struct {
	mu      sync.Mutex
	history []Event
	maxHist int
	subs    map[*Subscriber]struct{}
	closed  bool
	seq     int

	dropped atomic.Uint64
	// OnPublish and OnDrop are optional metric hooks, called outside any
	// subscriber channel operation but under the broker lock; they must
	// not call back into the broker.
	OnPublish func()
	OnDrop    func()
}

// DefaultHistory bounds retained events when NewBroker is given 0.
const DefaultHistory = 8192

// NewBroker builds a broker retaining up to maxHistory events (0 =
// DefaultHistory). When the cap is exceeded the oldest history is
// discarded; late subscribers then join mid-stream.
func NewBroker(maxHistory int) *Broker {
	if maxHistory <= 0 {
		maxHistory = DefaultHistory
	}
	return &Broker{maxHist: maxHistory, subs: map[*Subscriber]struct{}{}}
}

// Publish assigns the event its sequence number, retains it and delivers
// it to every subscriber. It never blocks.
func (b *Broker) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	ev.Seq = b.seq
	b.seq++
	b.history = append(b.history, ev)
	if len(b.history) > b.maxHist {
		// Drop the oldest half in one copy so the amortized cost stays O(1).
		n := copy(b.history, b.history[len(b.history)-b.maxHist/2:])
		b.history = b.history[:n]
	}
	for s := range b.subs {
		s.push(b, ev)
	}
	if b.OnPublish != nil {
		b.OnPublish()
	}
}

// Close marks the stream complete and closes every subscriber channel
// (buffered events remain readable). Further Publish calls are ignored.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		s.closeLocked()
		delete(b.subs, s)
	}
}

// Dropped returns the total events dropped across all subscribers.
func (b *Broker) Dropped() uint64 { return b.dropped.Load() }

// Events returns the number of events published so far.
func (b *Broker) Events() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Closed reports whether the stream has completed.
func (b *Broker) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Subscribe attaches a new subscriber with the given buffer capacity
// (0 = 256). The retained history is delivered first — dropping oldest if
// it exceeds the buffer and the subscriber has not started draining —
// then live events as they are published. If the stream already
// completed, the subscriber's channel closes once the history drains.
func (b *Broker) Subscribe(buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = 256
	}
	s := &Subscriber{ch: make(chan Event, buffer)}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ev := range b.history {
		s.push(b, ev)
	}
	if b.closed {
		s.closeLocked()
		return s
	}
	b.subs[s] = struct{}{}
	s.broker = b
	return s
}

// Subscriber is one consumer of a broker's event stream.
type Subscriber struct {
	ch      chan Event
	broker  *Broker
	closed  sync.Once
	dropped atomic.Uint64
}

// Events returns the subscriber's channel. It closes when the stream
// completes or the subscriber is closed.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Dropped returns how many events this subscriber lost to backpressure.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscriber (a departed client) and closes its
// channel. Safe to call multiple times and after the broker closed.
func (s *Subscriber) Close() {
	b := s.broker
	if b == nil {
		s.closeLocked()
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, s)
	s.closeLocked()
}

// closeLocked closes the channel exactly once. Callers must guarantee no
// concurrent push — both paths hold the owning broker's lock.
func (s *Subscriber) closeLocked() {
	s.closed.Do(func() { close(s.ch) })
}

// push delivers ev, evicting the subscriber's oldest undelivered event
// while its buffer is full (drop-oldest backpressure). Called with the
// broker lock held, so pushes are ordered; the consumer may drain
// concurrently, which only helps.
func (s *Subscriber) push(b *Broker, ev Event) {
	for {
		select {
		case s.ch <- ev:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped.Add(1)
			b.dropped.Add(1)
			if b.OnDrop != nil {
				b.OnDrop()
			}
		default:
			// Consumer drained between the two selects; retry the send.
		}
	}
}
