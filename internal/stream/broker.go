package stream

import (
	"sync"
	"sync/atomic"
)

// BrokerOf fans a stream of T out to many subscribers. Every published
// item is retained (up to a history cap), so a subscriber that attaches
// late replays the full sequence before tailing live items — which is how
// N concurrent clients all observe identical streams. A slow subscriber
// never blocks the publisher or its peers: when a subscriber's buffer
// fills, its oldest undelivered item is dropped and counted.
//
// The monitor's Broker is BrokerOf[Event]; the trace tail reuses the same
// machinery as BrokerOf[trace.Record] — drop-oldest backpressure is a
// property of the fan-out, not of the event type.
type BrokerOf[T any] struct {
	mu      sync.Mutex
	history []T
	maxHist int
	subs    map[*SubscriberOf[T]]struct{}
	closed  bool
	seq     int
	assign  func(*T, int) // stamps the sequence number into the item, if set

	dropped atomic.Uint64
	// OnPublish and OnDrop are optional metric hooks, called outside any
	// subscriber channel operation but under the broker lock; they must
	// not call back into the broker.
	OnPublish func()
	OnDrop    func()
}

// Broker is the monitor-event broker: BrokerOf[Event] with Seq stamping.
type Broker = BrokerOf[Event]

// Subscriber is one consumer of a monitor-event broker.
type Subscriber = SubscriberOf[Event]

// DefaultHistory bounds retained events when a broker is given 0.
const DefaultHistory = 8192

// NewBroker builds an Event broker retaining up to maxHistory events
// (0 = DefaultHistory), stamping each event's Seq at publish time. When
// the cap is exceeded the oldest history is discarded; late subscribers
// then join mid-stream.
func NewBroker(maxHistory int) *Broker {
	return NewBrokerOf[Event](maxHistory, func(ev *Event, seq int) { ev.Seq = seq })
}

// NewBrokerOf builds a broker for any item type. assign, if non-nil, is
// called under the broker lock to stamp the per-broker sequence number
// into each item before retention and delivery.
func NewBrokerOf[T any](maxHistory int, assign func(*T, int)) *BrokerOf[T] {
	if maxHistory <= 0 {
		maxHistory = DefaultHistory
	}
	return &BrokerOf[T]{maxHist: maxHistory, subs: map[*SubscriberOf[T]]struct{}{}, assign: assign}
}

// Publish assigns the item its sequence number, retains it and delivers
// it to every subscriber. It never blocks.
func (b *BrokerOf[T]) Publish(ev T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if b.assign != nil {
		b.assign(&ev, b.seq)
	}
	b.seq++
	b.history = append(b.history, ev)
	if len(b.history) > b.maxHist {
		// Drop the oldest half in one copy so the amortized cost stays O(1).
		n := copy(b.history, b.history[len(b.history)-b.maxHist/2:])
		b.history = b.history[:n]
	}
	for s := range b.subs {
		s.push(b, ev)
	}
	if b.OnPublish != nil {
		b.OnPublish()
	}
}

// Close marks the stream complete and closes every subscriber channel
// (buffered events remain readable). Further Publish calls are ignored.
func (b *BrokerOf[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		s.closeLocked()
		delete(b.subs, s)
	}
}

// Dropped returns the total events dropped across all subscribers.
func (b *BrokerOf[T]) Dropped() uint64 { return b.dropped.Load() }

// Events returns the number of events published so far.
func (b *BrokerOf[T]) Events() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Closed reports whether the stream has completed.
func (b *BrokerOf[T]) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Subscribe attaches a new subscriber with the given buffer capacity
// (0 = 256). The retained history is delivered first — dropping oldest if
// it exceeds the buffer and the subscriber has not started draining —
// then live events as they are published. If the stream already
// completed, the subscriber's channel closes once the history drains.
func (b *BrokerOf[T]) Subscribe(buffer int) *SubscriberOf[T] {
	if buffer <= 0 {
		buffer = 256
	}
	s := &SubscriberOf[T]{ch: make(chan T, buffer)}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ev := range b.history {
		s.push(b, ev)
	}
	if b.closed {
		s.closeLocked()
		return s
	}
	b.subs[s] = struct{}{}
	s.broker = b
	return s
}

// SubscriberOf is one consumer of a broker's stream.
type SubscriberOf[T any] struct {
	ch      chan T
	broker  *BrokerOf[T]
	closed  sync.Once
	dropped atomic.Uint64
}

// Events returns the subscriber's channel. It closes when the stream
// completes or the subscriber is closed.
func (s *SubscriberOf[T]) Events() <-chan T { return s.ch }

// Dropped returns how many events this subscriber lost to backpressure.
func (s *SubscriberOf[T]) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscriber (a departed client) and closes its
// channel. Safe to call multiple times and after the broker closed.
func (s *SubscriberOf[T]) Close() {
	b := s.broker
	if b == nil {
		s.closeLocked()
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, s)
	s.closeLocked()
}

// closeLocked closes the channel exactly once. Callers must guarantee no
// concurrent push — both paths hold the owning broker's lock.
func (s *SubscriberOf[T]) closeLocked() {
	s.closed.Do(func() { close(s.ch) })
}

// push delivers ev, evicting the subscriber's oldest undelivered event
// while its buffer is full (drop-oldest backpressure). Called with the
// broker lock held, so pushes are ordered; the consumer may drain
// concurrently, which only helps.
func (s *SubscriberOf[T]) push(b *BrokerOf[T], ev T) {
	for {
		select {
		case s.ch <- ev:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped.Add(1)
			b.dropped.Add(1)
			if b.OnDrop != nil {
				b.OnDrop()
			}
		default:
			// Consumer drained between the two selects; retry the send.
		}
	}
}
