// Monitor tests live in an external test package so they can share the
// §III-D two-phase fixture with the profiler's table test (streamtest
// imports stream, so an internal test file could not import it).
package stream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"littleslaw/internal/platform"
	"littleslaw/internal/stream"
	"littleslaw/internal/stream/streamtest"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden event fixture from this run")

// runTwoPhase replays the canonical fixture through the monitor and
// collects every emitted event.
func runTwoPhase(t *testing.T) ([]stream.Event, *stream.SummaryEvent) {
	t.Helper()
	p := platform.SKL()
	src, results, err := stream.Replay(context.Background(),
		streamtest.TwoPhaseReplay(p, 24), stream.ReplayOptions{PeriodS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Result.TotalGBs <= results[1].Result.TotalGBs {
		t.Fatalf("fixture lost its contrast: %+v", results)
	}
	var events []stream.Event
	seq := 0
	sum, err := stream.Monitor(context.Background(), src, stream.Config{
		Platform:      p,
		Profile:       streamtest.Curve(),
		WindowSamples: 8,
		StrideSamples: 8,
		ActiveCores:   8,
		RandomAccess:  true,
	}, func(ev stream.Event) error {
		ev.Seq = seq // the broker normally assigns these
		seq++
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return events, sum
}

// TestMonitorTwoPhaseDetection is the heart of the subsystem: the §III-D
// two-phase app yields two detected phases whose recommendations differ,
// while the whole-stream average yields a single recommendation that
// matches neither — the trap, flagged.
func TestMonitorTwoPhaseDetection(t *testing.T) {
	events, sum := runTwoPhase(t)

	var phases []*stream.PhaseEvent
	var windows int
	for _, ev := range events {
		switch ev.Kind {
		case "phase":
			phases = append(phases, ev.Phase)
		case "window":
			windows++
		}
	}
	if len(phases) < 2 {
		t.Fatalf("detected %d phases, want >= 2", len(phases))
	}
	if sum.Phases != len(phases) || sum.Windows != windows || sum.Samples != 48 {
		t.Fatalf("summary bookkeeping %+v vs %d phases %d windows", sum, len(phases), windows)
	}

	// Per-phase advice differs: the hot phase and the light phase must not
	// share a headline action.
	first, last := phases[0], phases[len(phases)-1]
	if first.Action == last.Action {
		t.Fatalf("phases share action %q: %+v vs %+v", first.Action, first, last)
	}
	if len(first.Advice) == 0 || len(last.Advice) == 0 {
		t.Fatal("phase advice missing")
	}
	if first.BandwidthGBs <= last.BandwidthGBs {
		t.Fatalf("hot phase %f GB/s not above light phase %f GB/s", first.BandwidthGBs, last.BandwidthGBs)
	}

	// The aggregate is misleading: its single action differs from at least
	// one phase, and the §III-D case here is stronger — it matches none.
	if !sum.MisleadingAggregate {
		t.Fatalf("aggregate not flagged as misleading: %+v", sum)
	}
	for _, a := range sum.PhaseActions {
		if a == sum.Action {
			t.Fatalf("aggregate action %q matches a phase: %v", sum.Action, sum.PhaseActions)
		}
	}
	if sum.Detail == "" {
		t.Fatal("misleading aggregate carries no narration")
	}

	// Window events carry phase attribution consistent with the detected
	// boundaries.
	for _, ev := range events {
		if ev.Kind == "window" && (ev.Window.Phase < 0 || ev.Window.Phase >= len(phases)+1) {
			t.Fatalf("window %d attributed to phase %d of %d", ev.Window.Index, ev.Window.Phase, len(phases))
		}
	}
}

// TestMonitorGoldenEvents locks the full deterministic event stream of the
// two-phase replay byte-for-byte. Regenerate with:
//
//	go test ./internal/stream -run TestMonitorGoldenEvents -args -update
func TestMonitorGoldenEvents(t *testing.T) {
	events, _ := runTwoPhase(t)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join("testdata", "two_phase_events.ndjson")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d events)", path, len(events))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (regenerate with -args -update): %v", path, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("event stream diverged from %s\n-- got --\n%s\n-- want --\n%s", path, buf.Bytes(), want)
	}
}

// TestMonitorSinglePhaseNotMisleading: a stationary stream must produce one
// phase and no misleading flag — the detector does not invent phases.
func TestMonitorSinglePhaseNotMisleading(t *testing.T) {
	p := platform.SKL()
	var samples []stream.Sample
	for i := 0; i < 40; i++ {
		samples = append(samples, stream.Sample{TS: float64(i), BandwidthGBs: 80, PrefetchedReadFraction: 0.9})
	}
	var phases int
	sum, err := stream.Monitor(context.Background(), stream.NewSliceSource(samples), stream.Config{
		Platform: p,
		Profile:  streamtest.Curve(),
	}, func(ev stream.Event) error {
		if ev.Kind == "phase" {
			phases++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if phases != 1 || sum.Phases != 1 {
		t.Fatalf("stationary stream produced %d phases", phases)
	}
	if sum.MisleadingAggregate {
		t.Fatalf("single-phase aggregate flagged misleading: %+v", sum)
	}
	if sum.Action != sum.PhaseActions[0] {
		t.Fatalf("aggregate action %q differs from the only phase %q", sum.Action, sum.PhaseActions[0])
	}
}

// TestMonitorConfigValidation rejects broken configurations.
func TestMonitorConfigValidation(t *testing.T) {
	src := stream.NewSliceSource(nil)
	ctx := context.Background()
	if _, err := stream.Monitor(ctx, src, stream.Config{}, nil); err == nil {
		t.Fatal("nil platform accepted")
	}
	p := platform.SKL()
	if _, err := stream.Monitor(ctx, src, stream.Config{Platform: p}, nil); err == nil {
		t.Fatal("nil profile accepted")
	}
	cfg := stream.Config{Platform: p, Profile: streamtest.Curve(), WindowSamples: -1}
	if _, err := stream.Monitor(ctx, src, cfg, nil); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := stream.Monitor(ctx, nil, stream.Config{Platform: p, Profile: streamtest.Curve()},
		func(stream.Event) error { return nil }); err == nil {
		t.Fatal("nil source accepted")
	}
}

// TestReplayDeterministicAcrossWorkers: the replay adapter produces the
// identical sample series at any worker count (the engine contract).
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	p := platform.SKL()
	var first []stream.Sample
	for _, workers := range []int{1, 4} {
		src, _, err := stream.Replay(context.Background(),
			streamtest.TwoPhaseReplay(p, 4), stream.ReplayOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var got []stream.Sample
		for {
			s, err := src.Next(context.Background())
			if err != nil {
				break
			}
			got = append(got, s)
		}
		if first == nil {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("workers=%d: %d samples vs %d", workers, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("workers=%d sample %d: %+v vs %+v", workers, i, got[i], first[i])
			}
		}
	}
}
