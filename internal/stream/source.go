package stream

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Source emits samples in timestamp order. Next returns io.EOF when the
// stream drains; a live source (stdin tail) blocks until a sample arrives
// or ctx fires.
type Source interface {
	Next(ctx context.Context) (Sample, error)
}

// SliceSource replays an in-memory sample series — the adapter behind
// replayed simulations and inline request bodies.
type SliceSource struct {
	samples []Sample
	i       int
}

// NewSliceSource wraps samples (not copied) as a Source.
func NewSliceSource(samples []Sample) *SliceSource {
	return &SliceSource{samples: samples}
}

// Next implements Source.
func (s *SliceSource) Next(ctx context.Context) (Sample, error) {
	if err := ctx.Err(); err != nil {
		return Sample{}, err
	}
	if s.i >= len(s.samples) {
		return Sample{}, io.EOF
	}
	out := s.samples[s.i]
	s.i++
	return out, nil
}

// Len returns the total number of samples in the slice.
func (s *SliceSource) Len() int { return len(s.samples) }

// ndjsonSample is the wire form of one NDJSON line. Pointers distinguish
// "absent" from zero so missing timestamps auto-increment and a missing
// prefetch fraction stays unknown rather than becoming "0% prefetched".
type ndjsonSample struct {
	TS                     *float64 `json:"t_s"`
	BandwidthGBs           *float64 `json:"bandwidth_gbs"`
	PrefetchedReadFraction *float64 `json:"prefetched_read_fraction"`
}

// NDJSONSource reads newline-delimited JSON samples — one object per line,
// e.g. {"t_s": 12.5, "bandwidth_gbs": 87.3} — from a file, a pipe or
// stdin. Blank lines and #-comments are skipped. Lines without "t_s" get
// the previous timestamp plus the configured period.
type NDJSONSource struct {
	sc     *bufio.Scanner
	period float64
	lastTS float64
	line   int
	first  bool
}

// NewNDJSONSource wraps r; period is the timestamp increment for lines
// that omit t_s (0 means 1 second).
func NewNDJSONSource(r io.Reader, period float64) *NDJSONSource {
	if period <= 0 {
		period = 1
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &NDJSONSource{sc: sc, period: period, first: true}
}

// Next implements Source.
func (n *NDJSONSource) Next(ctx context.Context) (Sample, error) {
	for {
		if err := ctx.Err(); err != nil {
			return Sample{}, err
		}
		if !n.sc.Scan() {
			if err := n.sc.Err(); err != nil {
				return Sample{}, fmt.Errorf("stream: reading samples: %w", err)
			}
			return Sample{}, io.EOF
		}
		n.line++
		raw := bytes.TrimSpace(n.sc.Bytes())
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		var w ndjsonSample
		if err := json.Unmarshal(raw, &w); err != nil {
			return Sample{}, fmt.Errorf("stream: line %d: %w", n.line, err)
		}
		s, err := w.sample(n)
		if err != nil {
			return Sample{}, fmt.Errorf("stream: line %d: %w", n.line, err)
		}
		return s, nil
	}
}

func (w *ndjsonSample) sample(n *NDJSONSource) (Sample, error) {
	if w.BandwidthGBs == nil {
		return Sample{}, fmt.Errorf("missing bandwidth_gbs")
	}
	bw := *w.BandwidthGBs
	if !(bw >= 0) || math.IsInf(bw, 0) {
		return Sample{}, fmt.Errorf("bandwidth_gbs must be finite and non-negative, got %v", bw)
	}
	var ts float64
	switch {
	case w.TS != nil:
		ts = *w.TS
		if math.IsNaN(ts) || math.IsInf(ts, 0) {
			return Sample{}, fmt.Errorf("t_s must be finite, got %v", ts)
		}
		if !n.first && ts < n.lastTS {
			return Sample{}, fmt.Errorf("t_s %v moves backwards (previous %v)", ts, n.lastTS)
		}
	case n.first:
		ts = 0
	default:
		ts = n.lastTS + n.period
	}
	n.lastTS, n.first = ts, false

	pf := -1.0
	if w.PrefetchedReadFraction != nil {
		pf = *w.PrefetchedReadFraction
		if !(pf >= 0 && pf <= 1) {
			return Sample{}, fmt.Errorf("prefetched_read_fraction must be in [0, 1], got %v", pf)
		}
	}
	return Sample{TS: ts, BandwidthGBs: bw, PrefetchedReadFraction: pf}, nil
}
