package stream

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkWindowPush measures the steady-state per-sample cost of the
// sliding window — the monitor's hot path. It must stay allocation-free
// (TestWindowPushAllocs pins that).
func BenchmarkWindowPush(b *testing.B) {
	w := NewWindow(64, 8)
	s := Sample{BandwidthGBs: 100, PrefetchedReadFraction: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TS = float64(i)
		w.Push(s)
	}
}

// TestWindowPushAllocs asserts the window hot path allocates nothing in
// steady state.
func TestWindowPushAllocs(t *testing.T) {
	w := NewWindow(64, 8)
	s := Sample{BandwidthGBs: 100, PrefetchedReadFraction: 0.5}
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		s.TS = float64(i)
		i++
		w.Push(s)
	})
	if allocs > 0 {
		t.Fatalf("Window.Push allocates %.2f objects per sample, budget 0", allocs)
	}
}

// BenchmarkFanout measures publishing through the broker to 1, 8 and 64
// draining subscribers.
func BenchmarkFanout(b *testing.B) {
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs-%d", subs), func(b *testing.B) {
			br := NewBroker(1024)
			var wg sync.WaitGroup
			for i := 0; i < subs; i++ {
				s := br.Subscribe(4096)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range s.Events() {
					}
				}()
			}
			ev := windowEvent(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Publish(ev)
			}
			b.StopTimer()
			br.Close()
			wg.Wait()
		})
	}
}

// TestPublishAllocs bounds the broker publish path: the only allocation
// source is the amortized history append, so the long-run average must
// stay at or under one object per event.
func TestPublishAllocs(t *testing.T) {
	for _, subs := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("subs-%d", subs), func(t *testing.T) {
			br := NewBroker(1 << 20) // cap far above the run: pure append regime
			for i := 0; i < subs; i++ {
				// Large enough that drop-oldest never runs; nobody drains.
				br.Subscribe(20000)
			}
			ev := windowEvent(0)
			allocs := testing.AllocsPerRun(10000, func() {
				br.Publish(ev)
			})
			if allocs > 1 {
				t.Fatalf("Broker.Publish allocates %.2f objects per event with %d subscribers, budget 1", allocs, subs)
			}
			br.Close()
		})
	}
}
