package stream

import (
	"fmt"
	"sync"
	"testing"
)

func windowEvent(i int) Event {
	return Event{Kind: "window", Window: &WindowEvent{Index: i}}
}

func drain(s *Subscriber) []Event {
	var out []Event
	for ev := range s.Events() {
		out = append(out, ev)
	}
	return out
}

func TestBrokerFanoutIdenticalSequences(t *testing.T) {
	b := NewBroker(0)
	const subs, events = 16, 50

	// Half subscribe before publishing, half after the stream completed:
	// the history replay makes both cohorts see the same sequence.
	early := make([]*Subscriber, subs/2)
	for i := range early {
		early[i] = b.Subscribe(events + 8)
	}
	for i := 0; i < events; i++ {
		b.Publish(windowEvent(i))
	}
	b.Close()
	late := make([]*Subscriber, subs/2)
	for i := range late {
		late[i] = b.Subscribe(events + 8)
	}

	for si, s := range append(early, late...) {
		got := drain(s)
		if len(got) != events {
			t.Fatalf("subscriber %d got %d events, want %d", si, len(got), events)
		}
		for i, ev := range got {
			if ev.Seq != i || ev.Window.Index != i {
				t.Fatalf("subscriber %d event %d = seq %d index %d", si, i, ev.Seq, ev.Window.Index)
			}
		}
		if s.Dropped() != 0 {
			t.Fatalf("subscriber %d dropped %d", si, s.Dropped())
		}
	}
	if b.Dropped() != 0 || b.Events() != events {
		t.Fatalf("broker dropped=%d events=%d", b.Dropped(), b.Events())
	}
}

func TestBrokerDropOldestForSlowSubscriber(t *testing.T) {
	b := NewBroker(0)
	var drops int
	b.OnDrop = func() { drops++ }

	slow := b.Subscribe(4) // artificially tiny buffer, not draining
	fast := b.Subscribe(64)
	const events = 20
	for i := 0; i < events; i++ {
		b.Publish(windowEvent(i))
	}
	b.Close()

	gotSlow := drain(slow)
	if len(gotSlow) != 4 {
		t.Fatalf("slow subscriber buffered %d, want 4", len(gotSlow))
	}
	// Drop-oldest: what survives is the newest suffix, in order.
	for i, ev := range gotSlow {
		if want := events - 4 + i; ev.Window.Index != want {
			t.Fatalf("slow event %d = index %d, want %d", i, ev.Window.Index, want)
		}
	}
	if slow.Dropped() != events-4 || uint64(drops) != b.Dropped() || b.Dropped() != events-4 {
		t.Fatalf("dropped: sub=%d hook=%d broker=%d", slow.Dropped(), drops, b.Dropped())
	}
	// The slow client never slowed the fast one.
	if got := drain(fast); len(got) != events {
		t.Fatalf("fast subscriber got %d events", len(got))
	}
}

func TestBrokerSubscribeAfterCloseReplaysHistory(t *testing.T) {
	b := NewBroker(0)
	b.Publish(windowEvent(0))
	b.Publish(windowEvent(1))
	b.Close()
	if !b.Closed() {
		t.Fatal("broker not closed")
	}
	s := b.Subscribe(0)
	if got := drain(s); len(got) != 2 {
		t.Fatalf("late subscriber got %d events, want 2", len(got))
	}
	// Publishing after close is a no-op, not a panic.
	b.Publish(windowEvent(2))
	if b.Events() != 2 {
		t.Fatalf("events after close = %d", b.Events())
	}
}

func TestBrokerHistoryCapKeepsNewest(t *testing.T) {
	b := NewBroker(8)
	for i := 0; i < 40; i++ {
		b.Publish(windowEvent(i))
	}
	b.Close()
	got := drain(b.Subscribe(64))
	if len(got) == 0 || len(got) > 8 {
		t.Fatalf("history length %d, want (0, 8]", len(got))
	}
	// The retained suffix ends with the newest event and is contiguous.
	if last := got[len(got)-1].Window.Index; last != 39 {
		t.Fatalf("newest retained = %d, want 39", last)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("history gap between %d and %d", got[i-1].Seq, got[i].Seq)
		}
	}
}

func TestBrokerSubscriberCloseDetaches(t *testing.T) {
	b := NewBroker(0)
	s := b.Subscribe(1)
	s.Close()
	s.Close() // idempotent
	b.Publish(windowEvent(0))
	b.Close()
	if got := drain(s); len(got) != 0 {
		t.Fatalf("closed subscriber received %d events", len(got))
	}
}

// TestBrokerConcurrency exercises publish/subscribe/close races under the
// race detector (the Makefile runs this package with -race).
func TestBrokerConcurrency(t *testing.T) {
	b := NewBroker(0)
	const events = 200
	var wg sync.WaitGroup
	results := make([][]Event, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mixed buffer sizes: some subscribers will drop.
			s := b.Subscribe(1 << (i % 5))
			results[i] = drain(s)
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < events; i++ {
			b.Publish(windowEvent(i))
		}
		b.Close()
	}()
	wg.Wait()

	for i, got := range results {
		// Whatever arrives must be an ordered subsequence with correct seqs.
		last := -1
		for _, ev := range got {
			if ev.Seq <= last {
				t.Fatalf("subscriber %d: seq %d after %d", i, ev.Seq, last)
			}
			last = ev.Seq
		}
	}
}

func TestBrokerManySubscriberCounts(t *testing.T) {
	for _, n := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("subs-%d", n), func(t *testing.T) {
			b := NewBroker(0)
			subs := make([]*Subscriber, n)
			for i := range subs {
				subs[i] = b.Subscribe(32)
			}
			for i := 0; i < 16; i++ {
				b.Publish(windowEvent(i))
			}
			b.Close()
			for i, s := range subs {
				if got := drain(s); len(got) != 16 {
					t.Fatalf("subscriber %d of %d got %d events", i, n, len(got))
				}
			}
		})
	}
}
