package core

import (
	"math"
	"strings"
	"testing"

	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// paperCurve builds, per platform, a bandwidth→latency profile from the
// paper's own published (BW, latency) pairs, so the metric pipeline can be
// validated independently of the simulator's calibration.
func paperCurve(name string) *queueing.Curve {
	switch name {
	case "SKL":
		return queueing.MustCurve([]queueing.CurvePoint{
			{BandwidthGBs: 0.5, LatencyNs: 82}, {BandwidthGBs: 3.2, LatencyNs: 82},
			{BandwidthGBs: 37.9, LatencyNs: 93}, {BandwidthGBs: 58.2, LatencyNs: 100},
			{BandwidthGBs: 92.9, LatencyNs: 117}, {BandwidthGBs: 106.9, LatencyNs: 145},
			{BandwidthGBs: 109.9, LatencyNs: 171}, {BandwidthGBs: 112, LatencyNs: 200},
		})
	case "KNL":
		return queueing.MustCurve([]queueing.CurvePoint{
			{BandwidthGBs: 1, LatencyNs: 166}, {BandwidthGBs: 122.9, LatencyNs: 167},
			{BandwidthGBs: 205, LatencyNs: 179}, {BandwidthGBs: 233, LatencyNs: 180},
			{BandwidthGBs: 253, LatencyNs: 187}, {BandwidthGBs: 296, LatencyNs: 209},
			{BandwidthGBs: 344, LatencyNs: 238}, {BandwidthGBs: 360, LatencyNs: 300},
		})
	case "A64FX":
		return queueing.MustCurve([]queueing.CurvePoint{
			{BandwidthGBs: 2, LatencyNs: 142}, {BandwidthGBs: 93.9, LatencyNs: 145},
			{BandwidthGBs: 271, LatencyNs: 156}, {BandwidthGBs: 418, LatencyNs: 165},
			{BandwidthGBs: 575, LatencyNs: 179}, {BandwidthGBs: 649, LatencyNs: 188},
			{BandwidthGBs: 788, LatencyNs: 280}, {BandwidthGBs: 800, LatencyNs: 320},
		})
	}
	panic("unknown platform " + name)
}

func mustAnalyze(t *testing.T, plat string, m Measurement) *Report {
	t.Helper()
	p, err := platform.ByName(plat)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(p, paperCurve(plat), m)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestOccupancyMatchesPaperTables recomputes the n_avg column of Tables
// IV–IX through the full pipeline (bandwidth → curve lookup → Equation 2).
func TestOccupancyMatchesPaperTables(t *testing.T) {
	cases := []struct {
		plat    string
		routine string
		bw      float64
		random  bool
		wantOcc float64
	}{
		{"SKL", "ISx base", 106.9, true, 10.1},
		{"KNL", "ISx base", 233, true, 10.23},
		{"KNL", "ISx +vect,2ht,pref", 344, true, 20},
		{"A64FX", "ISx base", 649, true, 9.92},
		{"A64FX", "ISx +l2pref", 788, true, 17.95},
		{"SKL", "HPCG base", 109.9, false, 12.6},
		{"KNL", "HPCG base", 205, false, 8.95},
		{"A64FX", "HPCG base", 271, false, 3.44},
		{"SKL", "PENNANT base", 37.9, true, 2.29},
		{"A64FX", "PENNANT base", 69.3, true, 0.81},
		{"SKL", "CoMD base", 3.19, true, 0.17},
		{"KNL", "CoMD base", 26.88, true, 1.17},
		{"SKL", "MiniGhost base", 92.93, false, 7.07},
		{"KNL", "MiniGhost base", 232.96, false, 11.26},
		{"A64FX", "MiniGhost base", 575, false, 8.38},
		{"SKL", "SNAP base", 58.2, false, 3.79},
		{"KNL", "SNAP base", 122.9, false, 5.0},
		{"A64FX", "SNAP base", 93.88, false, 1.1},
	}
	for _, c := range cases {
		r := mustAnalyze(t, c.plat, Measurement{
			Routine:                c.routine,
			BandwidthGBs:           c.bw,
			RandomAccess:           c.random,
			PrefetchedReadFraction: -1,
		})
		if math.Abs(r.Occupancy-c.wantOcc) > 0.12*c.wantOcc+0.05 {
			t.Errorf("%s/%s: occupancy %.2f, paper %.2f", c.plat, c.routine, r.Occupancy, c.wantOcc)
		}
	}
}

func TestAnalyzeValidation(t *testing.T) {
	p := platform.SKL()
	if _, err := Analyze(p, nil, Measurement{}); err == nil {
		t.Fatal("nil profile accepted")
	}
	if _, err := Analyze(p, paperCurve("SKL"), Measurement{BandwidthGBs: -1}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if _, err := Analyze(p, paperCurve("SKL"), Measurement{ActiveCores: -2}); err == nil {
		t.Fatal("negative core count accepted")
	}
	bad := platform.SKL()
	bad.Cores = 0
	if _, err := Analyze(bad, paperCurve("SKL"), Measurement{}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestLimiterClassification(t *testing.T) {
	// Random access → L1 bound; streaming (high prefetch fraction) → L2.
	r := mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 50, RandomAccess: true, PrefetchedReadFraction: -1})
	if r.Limiter != L1Bound || r.LimiterCapacity != 10 {
		t.Fatalf("random access limiter = %v/%d, want L1/10", r.Limiter, r.LimiterCapacity)
	}
	r = mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 50, RandomAccess: true, PrefetchedReadFraction: 0.8})
	if r.Limiter != L2Bound || r.LimiterCapacity != 16 {
		t.Fatalf("prefetched traffic limiter = %v/%d, want L2/16 (measured fraction overrides flag)",
			r.Limiter, r.LimiterCapacity)
	}
	r = mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 50, RandomAccess: false, PrefetchedReadFraction: 0.1})
	if r.Limiter != L1Bound {
		t.Fatal("low measured prefetch fraction should bind on L1")
	}
}

// TestRecipeISxLadder replays the paper's ISx optimization ladder (Table IV
// and §IV-A) and checks the recipe issues the same verdict at every step.
func TestRecipeISxLadder(t *testing.T) {
	vecCaps := Capabilities{Vectorizable: true, SMTWays: 2, CurrentThreads: 1, IrregularAccess: true}

	// SKL base: occupancy ≈ 10.1 of 10 → saturated; bandwidth ≈ 95% of
	// achievable. Vectorization and SMT must be discouraged.
	r := mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 106.9, RandomAccess: true, PrefetchedReadFraction: -1})
	if !r.OccupancySaturated() {
		t.Fatalf("ISx/SKL base not occupancy-saturated: %.2f of %d", r.Occupancy, r.LimiterCapacity)
	}
	adv := Advise(r, vecCaps)
	if a := AdviceFor(adv, Vectorize); a.Stance != Discourage {
		t.Errorf("ISx/SKL vectorize stance = %v, want discourage (paper: 1x)", a.Stance)
	}
	if a := AdviceFor(adv, SMT2); a.Stance != Discourage {
		t.Errorf("ISx/SKL 2-way HT stance = %v, want discourage (paper: 1x)", a.Stance)
	}

	// KNL base: 10.23 of 12 → small headroom; vectorization recommended.
	knlCaps := Capabilities{Vectorizable: true, SMTWays: 4, CurrentThreads: 1, IrregularAccess: true}
	r = mustAnalyze(t, "KNL", Measurement{BandwidthGBs: 233, RandomAccess: true, PrefetchedReadFraction: -1})
	adv = Advise(r, knlCaps)
	if a := AdviceFor(adv, Vectorize); a.Stance != Recommend {
		t.Errorf("ISx/KNL vectorize stance = %v, want recommend (paper: 1.02x)", a.Stance)
	}

	// KNL +vect: 10.66 of 12 → 2-way HT recommended.
	knlCaps.AlreadyVectorized = true
	r = mustAnalyze(t, "KNL", Measurement{BandwidthGBs: 240, RandomAccess: true, PrefetchedReadFraction: -1})
	adv = Advise(r, knlCaps)
	if a := AdviceFor(adv, SMT2); a.Stance != Recommend {
		t.Errorf("ISx/KNL 2-way HT stance = %v, want recommend (paper: 1.04x)", a.Stance)
	}

	// KNL +vect,2ht: 11.6 of 12 → 4-way HT discouraged, but the L1-bound
	// routine leaves ~20 L2 MSHRs idle → L2 software prefetch recommended.
	knlCaps.CurrentThreads = 2
	r = mustAnalyze(t, "KNL", Measurement{BandwidthGBs: 253, RandomAccess: true, PrefetchedReadFraction: -1})
	adv = Advise(r, knlCaps)
	if a := AdviceFor(adv, SMT4); a.Stance != Discourage {
		t.Errorf("ISx/KNL 4-way HT stance = %v, want discourage (paper: 0.98x)", a.Stance)
	}
	if a := AdviceFor(adv, SoftwarePrefetchL2); a.Stance != Recommend {
		t.Errorf("ISx/KNL L2 prefetch stance = %v, want recommend (paper: 1.4x)", a.Stance)
	}

	// A64FX base: 9.92 of 12 L1, ~10 L2 MSHRs spare → L2 prefetch.
	r = mustAnalyze(t, "A64FX", Measurement{BandwidthGBs: 649, RandomAccess: true, PrefetchedReadFraction: -1})
	adv = Advise(r, Capabilities{Vectorizable: true, SMTWays: 1, CurrentThreads: 1, IrregularAccess: true})
	if a := AdviceFor(adv, SoftwarePrefetchL2); a.Stance != Recommend {
		t.Errorf("ISx/A64FX L2 prefetch stance = %v, want recommend (paper: 1.3x)", a.Stance)
	}
}

// TestRecipeHPCG: bandwidth saturation on SKL blocks MLP raisers despite
// MSHR headroom; deep headroom on KNL/A64FX recommends them.
func TestRecipeHPCG(t *testing.T) {
	caps := Capabilities{Vectorizable: true, SMTWays: 2, CurrentThreads: 1}
	r := mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 109.9, PrefetchedReadFraction: 0.9})
	if r.OccupancySaturated() {
		t.Fatalf("HPCG/SKL occupancy %.2f of %d misreported as saturated", r.Occupancy, r.LimiterCapacity)
	}
	if !r.BandwidthSaturated() {
		t.Fatalf("HPCG/SKL at 86%% of theoretical peak not bandwidth-saturated (frac %.2f)", r.AchievableFraction)
	}
	adv := Advise(r, caps)
	if a := AdviceFor(adv, Vectorize); a.Stance != Discourage {
		t.Errorf("HPCG/SKL vectorize = %v, want discourage (paper: 1x)", a.Stance)
	}
	if a := AdviceFor(adv, SMT2); a.Stance != Discourage {
		t.Errorf("HPCG/SKL 2-way HT = %v, want discourage (paper: 0.98x)", a.Stance)
	}

	r = mustAnalyze(t, "KNL", Measurement{BandwidthGBs: 205, PrefetchedReadFraction: 0.9})
	adv = Advise(r, Capabilities{Vectorizable: true, SMTWays: 4, CurrentThreads: 1})
	if a := AdviceFor(adv, Vectorize); a.Stance != Recommend {
		t.Errorf("HPCG/KNL vectorize = %v, want recommend (paper: 1.15x)", a.Stance)
	}

	r = mustAnalyze(t, "A64FX", Measurement{BandwidthGBs: 271, PrefetchedReadFraction: 0.9})
	adv = Advise(r, Capabilities{Vectorizable: true, SMTWays: 1, CurrentThreads: 1})
	if a := AdviceFor(adv, Vectorize); a.Stance != Recommend {
		t.Errorf("HPCG/A64FX vectorize = %v, want recommend (paper: 1.7x)", a.Stance)
	}
}

// TestRecipeCoMD: compute-bound detection and the unroll-and-jam rule.
func TestRecipeCoMD(t *testing.T) {
	r := mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 3.19, RandomAccess: true, PrefetchedReadFraction: -1})
	if !r.ComputeBound() {
		t.Fatalf("CoMD/SKL (occ %.2f) not classified compute bound", r.Occupancy)
	}
	adv := Advise(r, Capabilities{Vectorizable: true, SMTWays: 2, CurrentThreads: 1})
	if a := AdviceFor(adv, Vectorize); a.Stance != Recommend {
		t.Errorf("CoMD/SKL vectorize = %v, want recommend (paper: 1.4x)", a.Stance)
	}
	if a := AdviceFor(adv, UnrollAndJam); a.Stance != Recommend {
		t.Errorf("CoMD/SKL unroll-and-jam = %v, want recommend (low occupancy rule)", a.Stance)
	}

	// KNL deep SMT ladder stays recommended: 3.76 of 12 after 2-way.
	r = mustAnalyze(t, "KNL", Measurement{BandwidthGBs: 82.82, RandomAccess: true, PrefetchedReadFraction: -1})
	adv = Advise(r, Capabilities{Vectorizable: true, AlreadyVectorized: true, SMTWays: 4, CurrentThreads: 2})
	if a := AdviceFor(adv, SMT4); a.Stance != Recommend {
		t.Errorf("CoMD/KNL 4-way HT = %v, want recommend (paper: 1.25x)", a.Stance)
	}
}

// TestRecipeMiniGhost: the traffic-reducing branch.
func TestRecipeMiniGhost(t *testing.T) {
	caps := Capabilities{Tileable: true, SMTWays: 2, CurrentThreads: 1}
	r := mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 92.93, PrefetchedReadFraction: 0.85})
	adv := Advise(r, caps)
	if a := AdviceFor(adv, LoopTiling); a.Stance != Recommend {
		t.Errorf("MiniGhost/SKL tiling = %v, want recommend (paper: 1.14x)", a.Stance)
	}
	// After tiling, bandwidth is ~96% of achievable → SMT discouraged.
	r = mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 107.14, PrefetchedReadFraction: 0.85})
	adv = Advise(r, caps)
	if a := AdviceFor(adv, SMT2); a.Stance != Discourage {
		t.Errorf("MiniGhost/SKL post-tiling 2-way HT = %v, want discourage (paper: 1.02x)", a.Stance)
	}

	for _, c := range []struct {
		plat string
		bw   float64
	}{{"KNL", 232.96}, {"A64FX", 575}} {
		r = mustAnalyze(t, c.plat, Measurement{BandwidthGBs: c.bw, PrefetchedReadFraction: 0.85})
		adv = Advise(r, Capabilities{Tileable: true})
		if a := AdviceFor(adv, LoopTiling); a.Stance != Recommend {
			t.Errorf("MiniGhost/%s tiling = %v, want recommend (paper: ≥1.47x)", c.plat, a.Stance)
		}
	}
}

// TestRecipeSNAP: short inner loops make software prefetching the pick.
func TestRecipeSNAP(t *testing.T) {
	caps := Capabilities{ShortLoops: true, SMTWays: 4, CurrentThreads: 1}
	r := mustAnalyze(t, "KNL", Measurement{BandwidthGBs: 122.9, PrefetchedReadFraction: 0.6})
	adv := Advise(r, caps)
	if a := AdviceFor(adv, SoftwarePrefetchL2); a.Stance != Recommend {
		t.Errorf("SNAP/KNL prefetch = %v, want recommend (paper: 1.08x)", a.Stance)
	}
	if a := AdviceFor(adv, SMT2); a.Stance != Recommend {
		t.Errorf("SNAP/KNL 2-way HT = %v, want recommend (paper: 1.14x)", a.Stance)
	}
}

func TestRecipeLoopDistribution(t *testing.T) {
	r := mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 60, PrefetchedReadFraction: 0.9})
	adv := Advise(r, Capabilities{StreamCount: 40})
	if a := AdviceFor(adv, LoopDistribution); a.Stance != Recommend {
		t.Errorf("40 streams distribution = %v, want recommend (exceeds 16-entry table)", a.Stance)
	}
	// Low-MLP routine: distribution explicitly discouraged (§III-C).
	r = mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 3, PrefetchedReadFraction: 0.9})
	adv = Advise(r, Capabilities{StreamCount: 4})
	if a := AdviceFor(adv, LoopDistribution); a.Stance != Discourage {
		t.Errorf("low-MLP distribution = %v, want discourage", a.Stance)
	}
}

func TestExplainNarratesEveryBranch(t *testing.T) {
	// Saturated L1 with spare L2.
	r := mustAnalyze(t, "KNL", Measurement{BandwidthGBs: 253, RandomAccess: true, PrefetchedReadFraction: -1})
	if s := Explain(r); !strings.Contains(s, "L2 software prefetching") {
		t.Errorf("saturated-L1 narration missing prefetch hint:\n%s", s)
	}
	// Bandwidth saturated.
	r = mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 109.9, PrefetchedReadFraction: 0.9})
	if s := Explain(r); !strings.Contains(s, "achievable peak") {
		t.Errorf("bw-saturated narration wrong:\n%s", s)
	}
	// Compute bound.
	r = mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 3, RandomAccess: true, PrefetchedReadFraction: -1})
	if s := Explain(r); !strings.Contains(s, "compute") {
		t.Errorf("compute-bound narration wrong:\n%s", s)
	}
	// Headroom.
	r = mustAnalyze(t, "KNL", Measurement{BandwidthGBs: 205, PrefetchedReadFraction: 0.9})
	if s := Explain(r); !strings.Contains(s, "Headroom") {
		t.Errorf("headroom narration wrong:\n%s", s)
	}
}

func TestOptimizationProperties(t *testing.T) {
	for _, o := range []Optimization{Vectorize, SMT2, SMT4, SoftwarePrefetchL2, SoftwarePrefetchL1} {
		if !o.IncreasesMLP() {
			t.Errorf("%v should increase MLP", o)
		}
		if o.ReducesTraffic() {
			t.Errorf("%v should not reduce traffic", o)
		}
	}
	for _, o := range []Optimization{LoopTiling, UnrollAndJam, LoopFusion} {
		if !o.ReducesTraffic() {
			t.Errorf("%v should reduce traffic", o)
		}
		if o.IncreasesMLP() {
			t.Errorf("%v should not increase MLP", o)
		}
	}
	if Vectorize.String() != "vectorization" || Optimization(99).String() == "" {
		t.Error("String() misbehaves")
	}
}

func TestDefaultCoresUsed(t *testing.T) {
	r := mustAnalyze(t, "SKL", Measurement{BandwidthGBs: 106.9, RandomAccess: true, PrefetchedReadFraction: -1})
	// 106.9 GB/s × 145 ns / 64 B / 24 cores ≈ 10.1.
	if math.Abs(r.Occupancy-10.1) > 0.3 {
		t.Fatalf("default-cores occupancy = %.2f, want ≈10.1", r.Occupancy)
	}
}

// TestClassifyBranches pins Classify to the same decision order Explain
// narrates: L2-shift beats generic saturation, saturation beats compute
// bound, and everything else is MLP headroom.
func TestClassifyBranches(t *testing.T) {
	cases := []struct {
		name string
		m    Measurement
		want Action
	}{
		// ISx-like on SKL: L1 MSHRQ effectively full, L2 MSHRs idle.
		{"shift-to-l2", Measurement{BandwidthGBs: 106.9, RandomAccess: true}, ShiftToL2},
		// HPCG-like on SKL: streaming at the achievable ceiling.
		{"reduce-traffic", Measurement{BandwidthGBs: 110, PrefetchedReadFraction: 0.9}, ReduceTraffic},
		// Nearly idle random-access routine: compute/dependency bound.
		{"compute-bound", Measurement{BandwidthGBs: 3, RandomAccess: true}, ComputeBound},
		// Mid-range streaming: headroom to raise MLP.
		{"raise-mlp", Measurement{BandwidthGBs: 80, PrefetchedReadFraction: 0.9}, RaiseMLP},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.m.PrefetchedReadFraction = orUnknown(tc.m.PrefetchedReadFraction)
			r := mustAnalyze(t, "SKL", tc.m)
			if got := Classify(r); got != tc.want {
				t.Fatalf("Classify(%+v) = %s, want %s (report %s)", tc.m, got, tc.want, r)
			}
		})
	}
	if s := RaiseMLP.String(); s != "raise-mlp" {
		t.Fatalf("Action.String = %q", s)
	}
	if s := Action(99).String(); s != "action(99)" {
		t.Fatalf("unknown Action.String = %q", s)
	}
}

// orUnknown maps the test table's zero prefetch fraction to the "counter
// not available" sentinel so RandomAccess drives the classification.
func orUnknown(f float64) float64 {
	if f == 0 {
		return -1
	}
	return f
}
