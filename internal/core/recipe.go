package core

import "fmt"

// Optimization enumerates the program transformations the paper's recipe
// reasons about (§III-C).
type Optimization int

const (
	Vectorize Optimization = iota
	SMT2
	SMT4
	SoftwarePrefetchL2
	SoftwarePrefetchL1
	LoopTiling
	UnrollAndJam
	LoopFusion
	LoopDistribution
	// DisableFusion is the §IV-F user-intuition step: undoing the
	// compiler's automatic loop fusion on cores that stall on the
	// store-to-load forwarding it introduces. The recipe itself never
	// recommends it; it lives beyond Figure 1.
	DisableFusion
)

var optNames = map[Optimization]string{
	Vectorize:          "vectorization",
	SMT2:               "2-way SMT",
	SMT4:               "4-way SMT",
	SoftwarePrefetchL2: "L2 software prefetching",
	SoftwarePrefetchL1: "L1 software prefetching",
	LoopTiling:         "loop tiling",
	UnrollAndJam:       "unroll-and-jam",
	LoopFusion:         "loop fusion",
	LoopDistribution:   "loop distribution",
	DisableFusion:      "disable loop fusion (user intuition)",
}

func (o Optimization) String() string {
	if s, ok := optNames[o]; ok {
		return s
	}
	return fmt.Sprintf("optimization(%d)", int(o))
}

// IncreasesMLP reports whether the optimization raises MSHRQ occupancy
// (the recipe's key property split, §III-D question 1 vs 2).
func (o Optimization) IncreasesMLP() bool {
	switch o {
	case Vectorize, SMT2, SMT4, SoftwarePrefetchL2, SoftwarePrefetchL1:
		return true
	}
	return false
}

// ReducesTraffic reports whether the optimization cuts memory requests
// (and therefore occupancy) by improving reuse.
func (o Optimization) ReducesTraffic() bool {
	switch o {
	case LoopTiling, UnrollAndJam, LoopFusion:
		return true
	}
	return false
}

// Stance is the recipe's verdict on one optimization.
type Stance int

const (
	// Recommend: the metric predicts a speedup.
	Recommend Stance = iota
	// Neutral: the metric cannot predict benefit; user intuition applies.
	Neutral
	// Discourage: the metric predicts no benefit or a slowdown.
	Discourage
)

func (s Stance) String() string {
	switch s {
	case Recommend:
		return "recommend"
	case Neutral:
		return "neutral"
	case Discourage:
		return "discourage"
	}
	return "unknown"
}

// Advice is one recipe verdict.
type Advice struct {
	Opt    Optimization
	Stance Stance
	Reason string
}

// Capabilities describes what the routine and platform allow; Advise
// only rules on optimizations that are applicable.
type Capabilities struct {
	// Vectorizable: the key loop can be vectorized (possibly by forcing,
	// as in PENNANT's restrict/pragma case, §IV-C).
	Vectorizable bool
	// AlreadyVectorized: vectorization has been applied.
	AlreadyVectorized bool
	// SMTWays supported by the platform (1 = none).
	SMTWays int
	// CurrentThreads per core in the measured run.
	CurrentThreads int
	// Tileable: the loop nest has reuse a tiling transformation can capture
	// (stencils, GEMM).
	Tileable bool
	// Fusable: adjacent loops share data.
	Fusable bool
	// IrregularAccess: dominant accesses are irregular/random.
	IrregularAccess bool
	// ShortLoops: innermost loops have small trip counts that defeat the
	// hardware prefetcher's training (SNAP's dim3_sweep, §IV-F).
	ShortLoops bool
	// StreamCount: concurrent access streams in the loop body (for the
	// distribution/prefetcher-table interaction).
	StreamCount int
}

// Advise runs the Figure-1 recipe over a report.
func Advise(r *Report, caps Capabilities) []Advice {
	var out []Advice
	add := func(o Optimization, s Stance, reason string) {
		out = append(out, Advice{Opt: o, Stance: s, Reason: reason})
	}

	occSat := r.OccupancySaturated()
	bwSat := r.BandwidthSaturated()
	mlpRoom := !occSat && !bwSat

	// --- MLP-increasing optimizations -----------------------------------
	describeBlocked := func() string {
		if occSat {
			return fmt.Sprintf("%s MSHRQ occupancy %.1f is almost its capacity %d: no headroom to raise MLP",
				r.Limiter, r.Occupancy, r.LimiterCapacity)
		}
		return fmt.Sprintf("bandwidth %.0f GB/s is at %.0f%% of the achievable peak: more MLP cannot be served",
			r.BandwidthGBs, 100*r.AchievableFraction)
	}

	if caps.Vectorizable && !caps.AlreadyVectorized {
		if mlpRoom {
			add(Vectorize, Recommend, fmt.Sprintf(
				"occupancy %.1f of %d %s MSHRs leaves headroom; vectorization raises MLP",
				r.Occupancy, r.LimiterCapacity, r.Limiter))
		} else {
			add(Vectorize, Discourage, describeBlocked())
		}
	}

	if caps.SMTWays >= 2 && caps.CurrentThreads < 2 {
		if mlpRoom {
			add(SMT2, Recommend, "headroom in the MSHRQ: co-resident threads add independent misses")
		} else {
			add(SMT2, Discourage, describeBlocked())
		}
	}
	if caps.SMTWays >= 4 && caps.CurrentThreads < 4 && caps.CurrentThreads >= 2 {
		if mlpRoom {
			add(SMT4, Recommend, "MSHRQ still has room for two more threads' misses")
		} else {
			add(SMT4, Discourage, describeBlocked())
		}
	}

	// L2 software prefetching: the special case that works even at a full
	// L1 MSHRQ, by moving the in-flight window to the larger L2 file.
	if r.Limiter == L1Bound && r.L2SpareMSHRs >= 2 && !bwSat {
		add(SoftwarePrefetchL2, Recommend, fmt.Sprintf(
			"L1 MSHRQ binds (%.1f of %d) but ~%.0f L2 MSHRs are idle: prefetch to L2 to shift the bottleneck",
			r.Occupancy, r.LimiterCapacity, r.L2SpareMSHRs))
	} else if caps.ShortLoops && mlpRoom {
		add(SoftwarePrefetchL2, Recommend,
			"short inner loops defeat the hardware prefetcher; software prefetching covers them")
	} else if occSat {
		add(SoftwarePrefetchL2, Discourage,
			"each software prefetch occupies an MSHR, displacing demand requests when the queue is full")
	} else {
		add(SoftwarePrefetchL2, Neutral,
			"prefetcher already covers the access pattern; little latency left to hide")
	}

	// --- Traffic-reducing optimizations ---------------------------------
	highBW := r.AchievableFraction >= HighBandwidth
	if caps.Tileable {
		if occSat || highBW {
			add(LoopTiling, Recommend,
				"high occupancy/bandwidth: tiling cuts memory requests and MSHRQ pressure (the only lever left)")
		} else {
			add(LoopTiling, Neutral, "tiling helps via reuse, not MLP; the metric does not gate it here")
		}
	}
	if caps.Fusable {
		if occSat || highBW {
			add(LoopFusion, Recommend, "fusion shortens reuse distance, reducing requests and occupancy")
		} else {
			add(LoopFusion, Neutral, "no MSHRQ pressure for fusion to relieve")
		}
	}

	// Unroll-and-jam: beneficial when accesses already hit high cache
	// levels — inferable from a low MSHRQ occupancy (§III-C).
	if r.Occupancy < LowOccupancy*float64(r.LimiterCapacity) {
		add(UnrollAndJam, Recommend,
			"low MSHRQ occupancy implies data already resides in near caches; register tiling exploits that")
	} else {
		add(UnrollAndJam, Neutral, "memory latency dominates; register reuse is secondary")
	}

	// Loop distribution: only when the loop carries more streams than the
	// prefetcher tracks, or bandwidth contention between streams.
	if caps.StreamCount > 0 {
		// Platform stream capacity is not in the report; use a typical
		// 16-entry table, the value all three paper machines share.
		const streamTable = 16
		switch {
		case caps.StreamCount > streamTable:
			add(LoopDistribution, Recommend, fmt.Sprintf(
				"%d streams exceed the prefetcher's %d-entry table; distribution reduces active streams",
				caps.StreamCount, streamTable))
		case r.Occupancy < LowOccupancy*float64(r.LimiterCapacity):
			add(LoopDistribution, Discourage,
				"low MLP: distribution cannot help without stream or bandwidth contention")
		default:
			add(LoopDistribution, Neutral, "stream count within prefetcher capacity")
		}
	}

	return out
}

// AdviceFor returns the recipe's stance on one optimization, or Neutral
// with an empty reason if the recipe did not rule on it.
func AdviceFor(advice []Advice, o Optimization) Advice {
	for _, a := range advice {
		if a.Opt == o {
			return a
		}
	}
	return Advice{Opt: o, Stance: Neutral}
}

// Action is the headline branch of the Figure-1 flowchart for a report —
// the one-word answer to "what kind of optimization should this routine
// try next". It is the unit the streaming monitor compares across phases:
// two phases whose Actions differ need different optimizations, and an
// aggregate whose Action matches no phase is the §III-D trap in one flag.
type Action int

const (
	// RaiseMLP: the MSHRQ has headroom and bandwidth is unsaturated —
	// vectorization, SMT and prefetching should pay off.
	RaiseMLP Action = iota
	// ShiftToL2: the L1 MSHR file binds but L2 MSHRs idle — L2 software
	// prefetching moves the in-flight window to the larger file.
	ShiftToL2
	// ReduceTraffic: the MSHRQ or the memory itself is saturated — only
	// request-reducing transformations (tiling, fusion) are left.
	ReduceTraffic
	// ComputeBound: occupancy and bandwidth are both low — the routine is
	// compute or dependency bound; memory optimizations are beside the
	// point.
	ComputeBound
)

var actionNames = map[Action]string{
	RaiseMLP:      "raise-mlp",
	ShiftToL2:     "prefetch-to-l2",
	ReduceTraffic: "reduce-traffic",
	ComputeBound:  "compute-bound",
}

func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Classify returns the Figure-1 branch a report falls on, in the same
// priority order Explain narrates it.
func Classify(r *Report) Action {
	switch {
	case r.OccupancySaturated() && r.Limiter == L1Bound && r.L2SpareMSHRs >= 2:
		return ShiftToL2
	case r.OccupancySaturated() || r.BandwidthSaturated():
		return ReduceTraffic
	case r.ComputeBound():
		return ComputeBound
	}
	return RaiseMLP
}

// Explain renders the recipe's decision path for a report as text — the
// Figure-1 flowchart narrated for the measured values.
func Explain(r *Report) string {
	s := r.String() + "\n"
	switch {
	case r.OccupancySaturated() && r.Limiter == L1Bound && r.L2SpareMSHRs >= 2:
		s += fmt.Sprintf("→ %s MSHRQ is effectively full; stop MLP-raising optimizations.\n", r.Limiter)
		s += fmt.Sprintf("→ But ~%.0f L2 MSHRs are unused: L2 software prefetching can shift the bottleneck.\n", r.L2SpareMSHRs)
	case r.OccupancySaturated():
		s += fmt.Sprintf("→ %s MSHRQ is effectively full; only request-reducing optimizations (tiling, fusion) apply.\n", r.Limiter)
	case r.BandwidthSaturated():
		s += fmt.Sprintf("→ Bandwidth is at %.0f%% of the achievable peak; MLP-raising optimizations cannot be served.\n", 100*r.AchievableFraction)
	case r.ComputeBound():
		s += "→ Low occupancy and low bandwidth: compute/dependency bound; vectorization, SMT and register tiling recommended.\n"
	default:
		s += fmt.Sprintf("→ Headroom: %.0f%% of the %s MSHRQ is unused; MLP-raising optimizations (vectorization, SMT, prefetching) should pay off.\n",
			100*r.HeadroomFraction, r.Limiter)
	}
	return s
}
