// Package core implements the paper's contribution: performance analysis
// and optimization guidance from a single portable metric — the
// memory-level parallelism of a routine, computed with Little's Law
// (Equation 2) from observed bandwidth and the platform's once-measured
// bandwidth→latency profile, and interpreted as average MSHR-queue
// occupancy against the core's L1/L2 MSHR capacities.
//
// Analyze computes the metric; Recommend encodes the Figure-1 recipe,
// returning for every optimization the paper discusses (§III-C) whether it
// is expected to help, to be useless, or to hurt, with the reason.
package core

import (
	"fmt"
	"math"

	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// MSHRLevel identifies which MSHR queue binds a routine's MLP.
type MSHRLevel int

const (
	// L1Bound: random-access routines where the hardware prefetcher is
	// ineffective; outstanding misses are capped by the small L1 MSHR file.
	L1Bound MSHRLevel = iota
	// L2Bound: streaming routines where the L2 prefetcher keeps many more
	// requests in flight than the L1 file could track.
	L2Bound
)

func (l MSHRLevel) String() string {
	if l == L1Bound {
		return "L1"
	}
	return "L2"
}

// Measurement is what the analyst collects for one routine in a loaded run
// (§III-D: all cores active, per-routine attribution).
type Measurement struct {
	Routine string
	// BandwidthGBs is the routine's observed memory bandwidth from
	// performance counters (reads + writebacks).
	BandwidthGBs float64
	// ActiveCores in the run (the paper recommends all node cores); 0
	// means the full platform core count.
	ActiveCores int
	// ThreadsPerCore used in the run (1 = no SMT).
	ThreadsPerCore int
	// PrefetchedReadFraction is the share of memory reads initiated by the
	// prefetcher, when counters expose it (<0 means unknown and the
	// classification falls back to RandomAccess).
	PrefetchedReadFraction float64
	// RandomAccess marks the routine as dominated by irregular accesses;
	// used (with PrefetchedReadFraction) to pick the binding MSHR level.
	RandomAccess bool
}

// Report is the outcome of the Little's-Law analysis for one routine.
type Report struct {
	Routine  string
	Platform string

	BandwidthGBs float64
	// PeakFraction is bandwidth over the theoretical peak (the percentage
	// in parentheses in Tables IV–IX).
	PeakFraction float64
	// AchievableFraction is bandwidth over the measured achievable peak
	// (the curve's top sample) — the saturation signal in the recipe.
	AchievableFraction float64

	// LatencyNs is the loaded latency looked up from the platform profile.
	LatencyNs float64

	// Occupancy is n_avg: the average per-core MSHR-queue occupancy from
	// Equation 2, divided over the active cores.
	Occupancy float64

	// Limiter is the MSHR file that binds this routine, with its capacity.
	Limiter         MSHRLevel
	LimiterCapacity int

	// HeadroomFraction is 1 − Occupancy/LimiterCapacity, clamped at 0.
	HeadroomFraction float64

	// L2SpareMSHRs is the unused L2 MSHR capacity when the L1 file binds —
	// the opportunity L2 software prefetching exploits (ISx, §IV-A).
	L2SpareMSHRs float64
}

// Thresholds in the recipe. The paper phrases these qualitatively
// ("almost the size of the MSHRQ", "close to peak"); the constants make
// the decision procedure explicit and testable.
const (
	// SaturatedOccupancy: occupancy/capacity at or above this is "MSHRQ
	// almost full" — MLP-increasing optimizations will not help. The value
	// is pinned by the paper's ISx/KNL ladder: at 11.2/12 (0.93) 2-way
	// SMT still paid, at 11.6/12 (0.97) 4-way SMT regressed.
	SaturatedOccupancy = 0.94
	// SaturatedBandwidth: fraction of the achievable peak at or above
	// which the routine is bandwidth bound regardless of MSHR headroom
	// (HPCG on SKL: 86% of theoretical ≈ 95% of achievable; SMT regressed).
	SaturatedBandwidth = 0.90
	// HighBandwidth: fraction of the achievable peak above which
	// traffic-reducing optimizations (tiling, fusion) become the recipe's
	// recommendation (MiniGhost runs at 58–73% of theoretical peak and
	// tiling is the paper's pick on all three machines).
	HighBandwidth = 0.60
	// LowOccupancy: below this fraction of capacity the routine generates
	// so little MLP that it is compute or dependency bound (§IV-G).
	LowOccupancy = 0.25
)

// Analyze computes the Little's-Law MLP report for one routine measurement.
func Analyze(p *platform.Platform, profile *queueing.Curve, m Measurement) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if profile == nil {
		return nil, fmt.Errorf("core: nil bandwidth-latency profile")
	}
	// !(x >= 0) also catches NaN, which would otherwise poison Equation 2.
	if !(m.BandwidthGBs >= 0) || math.IsInf(m.BandwidthGBs, 0) {
		return nil, fmt.Errorf("core: bandwidth must be finite and non-negative, got %v", m.BandwidthGBs)
	}
	cores := m.ActiveCores
	if cores == 0 {
		cores = p.Cores
	}
	if cores < 1 {
		return nil, fmt.Errorf("core: need at least one active core")
	}

	lat := profile.LatencyAt(m.BandwidthGBs)
	// Equation 2: n_avg = lat × BW / cls, here divided per core.
	n := profile.OccupancyAt(m.BandwidthGBs, p.LineBytes) / float64(cores)

	r := &Report{
		Routine:            m.Routine,
		Platform:           p.Name,
		BandwidthGBs:       m.BandwidthGBs,
		PeakFraction:       m.BandwidthGBs / p.PeakGBs(),
		AchievableFraction: m.BandwidthGBs / profile.MaxBandwidthGBs(),
		LatencyNs:          lat,
		Occupancy:          n,
	}

	// §III-D: random accesses (ineffective prefetcher) bind on the L1 MSHR
	// file; streaming routines bind on L2. Prefer the measured prefetch
	// fraction when available; fall back to the pattern flag.
	l1bound := m.RandomAccess
	if m.PrefetchedReadFraction >= 0 {
		l1bound = m.PrefetchedReadFraction < 0.5
	}
	if l1bound {
		r.Limiter, r.LimiterCapacity = L1Bound, p.L1.MSHRs
		if spare := float64(p.L2.MSHRs) - n; spare > 0 {
			r.L2SpareMSHRs = spare
		}
	} else {
		r.Limiter, r.LimiterCapacity = L2Bound, p.L2.MSHRs
	}
	if h := 1 - n/float64(r.LimiterCapacity); h > 0 {
		r.HeadroomFraction = h
	}
	return r, nil
}

// OccupancySaturated reports whether the binding MSHR file is almost full.
func (r *Report) OccupancySaturated() bool {
	return r.Occupancy >= SaturatedOccupancy*float64(r.LimiterCapacity)
}

// BandwidthSaturated reports whether the routine runs at the achievable
// bandwidth ceiling.
func (r *Report) BandwidthSaturated() bool {
	return r.AchievableFraction >= SaturatedBandwidth
}

// ComputeBound reports the §IV-G judgement: a routine is compute bound
// only when it is far from both the bandwidth ceiling and a full MSHRQ.
func (r *Report) ComputeBound() bool {
	return r.Occupancy < LowOccupancy*float64(r.LimiterCapacity) && !r.BandwidthSaturated()
}

func (r *Report) String() string {
	return fmt.Sprintf("%s on %s: %.1f GB/s (%.0f%% peak), lat %.0f ns, n_avg %.2f of %d %s MSHRs",
		r.Routine, r.Platform, r.BandwidthGBs, 100*r.PeakFraction, r.LatencyNs,
		r.Occupancy, r.LimiterCapacity, r.Limiter)
}
