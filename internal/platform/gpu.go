package platform

// GPU returns a synthetic GPU-like device — an implementation of the
// paper's §IV-H future-work sketch, not one of the evaluated machines
// (it is therefore not part of All()).
//
// The mapping: a streaming multiprocessor is a "core" whose many resident
// warps are hardware threads that hide latency the way SMT does on CPUs,
// only far deeper; all their outstanding misses share the SM's MSHR file.
// The paper's reasoning then transfers directly: low MSHR occupancy means
// more concurrent warps/blocks will pay (the GPU analogue of enabling
// SMT), while a full MSHR file means occupancy must be *reduced* — via
// shared memory, the GPU analogue of tiling.
func GPU() *Platform {
	return &Platform{
		Name:               "GPU",
		Vendor:             "synthetic",
		ISA:                "SIMT",
		Cores:              80, // streaming multiprocessors
		FreqHz:             1.4e9,
		SMTWays:            32, // resident warps per SM
		LineBytes:          128,
		VectorLanes64:      32, // a warp
		DemandWindow:       8,  // outstanding misses one warp sustains
		ScalarIssuePenalty: 1.0,
		// Warp schedulers interleave stalled warps almost for free.
		SMTComputeShare:    0.08,
		VectorIssuePenalty: 1.0,
		L1:                 CacheConfig{SizeBytes: 128 << 10, Ways: 4, MSHRs: 32, HitCycles: 28},
		L2:                 CacheConfig{SizeBytes: 512 << 10, Ways: 16, MSHRs: 64, HitCycles: 190},
		L3:                 nil,
		Prefetcher:         PrefetcherConfig{Streams: 0}, // GPUs rely on warps, not stream prefetchers
		Memory: MemoryConfig{
			Tech:             "HBM2-GPU",
			TheoreticalGBs:   900,
			Channels:         24,
			BanksPerChannel:  16,
			BaseLatencyNs:    220, // long SIMT pipeline + interconnect
			RowHitNs:         15,
			RowMissNs:        45,
			RowBytes:         2 << 10,
			BusGBsPerChannel: 32,
		},
	}
}

// HBM3E returns a hypothetical next-generation node — the §IV-G thought
// experiment: with HBM2e/3-class bandwidth, the L2 MSHR file fills before
// even streaming applications can reach peak bandwidth, so "is the MSHRQ
// full" (not "is bandwidth at peak") becomes the reliable compute-bound
// test. The core side is an A64FX-like design; only the memory is upgraded.
func HBM3E() *Platform {
	p := A64FX()
	p.Name = "HBM3E"
	p.Vendor = "hypothetical"
	p.Memory = MemoryConfig{
		Tech:             "HBM3e",
		TheoreticalGBs:   2400,
		Channels:         48,
		BanksPerChannel:  8,
		BaseLatencyNs:    62,
		RowHitNs:         15,
		RowMissNs:        45,
		RowBytes:         2 << 10,
		BusGBsPerChannel: 40,
	}
	return p
}

// KNLCacheMode returns the Knights Landing node in its other famous
// configuration: MCDRAM as a memory-side cache in front of DDR4, instead
// of the paper's flat mode. The core side is identical; only the memory
// path changes. The cache capacity is scaled by the same factor as the
// workloads' footprints.
func KNLCacheMode() *Platform {
	p := KNL()
	p.Name = "KNL-cache"
	mcdram := p.Memory
	p.Memory = MemoryConfig{
		Tech:            "DDR4",
		TheoreticalGBs:  90,
		Channels:        6,
		BanksPerChannel: 16,
		BaseLatencyNs:   124, // the far tier sits behind the MCDRAM tags
		RowHitNs:        15,
		RowMissNs:       45,
		RowBytes:        8 << 10,
	}
	p.MemCache = &MemCacheConfig{
		SizeBytes: 256 << 20,
		Fast:      mcdram,
	}
	return p
}
