package platform

import (
	"math"
	"testing"
)

func TestTableIIIValues(t *testing.T) {
	cases := []struct {
		name            string
		cores           int
		freqGHz         float64
		peakGBs         float64
		l1MSHRs, l2MSHR int
		lineBytes       int
	}{
		{"SKL", 24, 2.1, 128, 10, 16, 64},
		{"KNL", 64, 1.4, 400, 12, 32, 64},
		{"A64FX", 48, 1.8, 1024, 12, 20, 256},
	}
	for _, c := range cases {
		p, err := ByName(c.name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", c.name, err)
		}
		if p.Cores != c.cores {
			t.Errorf("%s cores = %d, want %d", c.name, p.Cores, c.cores)
		}
		if math.Abs(p.FreqHz-c.freqGHz*1e9) > 1 {
			t.Errorf("%s freq = %v, want %v GHz", c.name, p.FreqHz, c.freqGHz)
		}
		if p.PeakGBs() != c.peakGBs {
			t.Errorf("%s peak = %v, want %v", c.name, p.PeakGBs(), c.peakGBs)
		}
		if p.L1.MSHRs != c.l1MSHRs || p.L2.MSHRs != c.l2MSHR {
			t.Errorf("%s MSHRs = %d/%d, want %d/%d", c.name, p.L1.MSHRs, p.L2.MSHRs, c.l1MSHRs, c.l2MSHR)
		}
		if p.LineBytes != c.lineBytes {
			t.Errorf("%s line = %d, want %d", c.name, p.LineBytes, c.lineBytes)
		}
	}
}

func TestAllPlatformsValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("EPYC"); err == nil {
		t.Fatal("ByName(EPYC) succeeded, want error")
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Platform)
	}{
		{"zero cores", func(p *Platform) { p.Cores = 0 }},
		{"zero freq", func(p *Platform) { p.FreqHz = 0 }},
		{"zero smt", func(p *Platform) { p.SMTWays = 0 }},
		{"non-pow2 line", func(p *Platform) { p.LineBytes = 96 }},
		{"zero L1 mshr", func(p *Platform) { p.L1.MSHRs = 0 }},
		{"L2 below L1 mshr", func(p *Platform) { p.L2.MSHRs = p.L1.MSHRs - 1 }},
		{"zero channels", func(p *Platform) { p.Memory.Channels = 0 }},
		{"zero peak", func(p *Platform) { p.Memory.TheoreticalGBs = 0 }},
		{"zero window", func(p *Platform) { p.DemandWindow = 0 }},
		{"tiny cache", func(p *Platform) { p.L1.SizeBytes = 64 }},
	}
	for _, m := range mutations {
		p := SKL()
		m.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken config", m.name)
		}
	}
}

func TestClockAndConversions(t *testing.T) {
	p := SKL()
	// 2.1 GHz: 378 cycles = 180ns (the paper's SKL loaded-latency example).
	if ns := p.CyclesNs(378); math.Abs(ns-180) > 0.5 {
		t.Errorf("CyclesNs(378) = %v, want ~180", ns)
	}
	if cy := p.NsCycles(180); math.Abs(cy-378) > 0.5 {
		t.Errorf("NsCycles(180) = %v, want ~378", cy)
	}
	if p.Clock().Period() <= 0 {
		t.Error("clock period not positive")
	}
}

func TestMemoryGeometry(t *testing.T) {
	p := SKL()
	// SKL uses the effective (sustained) per-channel rate, not the
	// theoretical 21.3 GB/s.
	if got := p.Memory.ChannelGBs(); got != p.Memory.BusGBsPerChannel {
		t.Errorf("SKL channel bw = %v, want override %v", got, p.Memory.BusGBsPerChannel)
	}
	if got := p.Memory.TransferNs(64); math.Abs(got-64/p.Memory.ChannelGBs()) > 1e-9 {
		t.Errorf("SKL line transfer = %v ns", got)
	}
	// Without an override, the theoretical split applies.
	m := MemoryConfig{TheoreticalGBs: 120, Channels: 6}
	if got := m.ChannelGBs(); got != 20 {
		t.Errorf("default channel bw = %v, want 20", got)
	}
	if got := SKL().L1.Sets(64); got != 64 {
		t.Errorf("SKL L1 sets = %d, want 64", got)
	}
}

func TestIdleLatencyBallpark(t *testing.T) {
	// The uncontended load-to-use path (L1 and L2 lookups + base + row miss
	// + one line transfer) should land near the paper's observed low-load
	// latencies: ~82ns SKL, ~167ns KNL, ~142ns A64FX (CoMD/SNAP rows of
	// Tables VII and IX).
	want := map[string]float64{"SKL": 82, "KNL": 167, "A64FX": 142}
	for _, p := range All() {
		m := p.Memory
		idle := m.BaseLatencyNs + m.RowMissNs + m.TransferNs(p.LineBytes) +
			p.CyclesNs(p.L1.HitCycles+p.L2.HitCycles)
		if math.Abs(idle-want[p.Name]) > 0.05*want[p.Name] {
			t.Errorf("%s idle estimate = %.1f ns, want within 5%% of %.0f", p.Name, idle, want[p.Name])
		}
	}
}

func TestA64FXHasNoSMT(t *testing.T) {
	if A64FX().SMTWays != 1 {
		t.Fatal("A64FX must not support SMT (paper §IV-A)")
	}
	if KNL().SMTWays != 4 {
		t.Fatal("KNL supports 4-way hyperthreading")
	}
	if SKL().SMTWays != 2 {
		t.Fatal("SKL supports 2-way hyperthreading")
	}
}

func TestGPUExtensionPlatform(t *testing.T) {
	g := GPU()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The GPU is a §IV-H extension, not one of the paper's machines.
	for _, p := range All() {
		if p.Name == g.Name {
			t.Fatal("GPU must not be in All() (it is not in Table III)")
		}
	}
	if _, err := ByName("GPU"); err == nil {
		t.Fatal("ByName must resolve only Table III machines")
	}
	if g.SMTWays < 16 {
		t.Fatal("GPU latency hiding needs many resident warps")
	}
	if g.Prefetcher.Streams != 0 {
		t.Fatal("GPUs hide latency with warps, not stream prefetchers")
	}
}

func TestKNLCacheModePlatform(t *testing.T) {
	p := KNLCacheMode()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MemCache == nil || p.MemCache.Fast.Tech != "MCDRAM" {
		t.Fatal("cache mode must front DDR with MCDRAM")
	}
	if p.Memory.Tech != "DDR4" {
		t.Fatalf("backing memory = %s, want DDR4", p.Memory.Tech)
	}
	// The core side is unchanged from flat-mode KNL.
	flat := KNL()
	if p.Cores != flat.Cores || p.L1.MSHRs != flat.L1.MSHRs || p.L2.MSHRs != flat.L2.MSHRs {
		t.Fatal("cache mode must not change the core side")
	}
	// Validation catches broken cache configs.
	p.MemCache.SizeBytes = 8
	if err := p.Validate(); err == nil {
		t.Fatal("tiny memory-side cache accepted")
	}
	p = KNLCacheMode()
	p.MemCache.Fast.Channels = 0
	if err := p.Validate(); err == nil {
		t.Fatal("broken fast tier accepted")
	}
}
