// Package platform describes the machines the paper evaluates on
// (Table III): Intel Xeon Platinum 8160 "Skylake", Intel Xeon Phi 7250
// "Knights Landing" in flat-MCDRAM mode, and Fujitsu A64FX with HBM2.
//
// A Platform carries both the architectural facts the metric consumes
// (core count, cache-line size, L1/L2 MSHR capacities, theoretical peak
// bandwidth) and the micro-architectural parameters the memory-system
// simulator is built from (cache geometry, prefetcher limits, DRAM channel
// and bank timing). The DRAM timing values are calibrated so that the
// simulated loaded-latency curves land near the paper's X-Mem measurements;
// see the calibration tests in internal/xmem.
package platform

import (
	"fmt"

	"littleslaw/internal/events"
)

// CacheConfig describes one private cache level.
type CacheConfig struct {
	SizeBytes int     // total capacity in bytes
	Ways      int     // set associativity
	MSHRs     int     // miss-status-handling registers (outstanding line misses)
	HitCycles float64 // load-to-use hit latency in core cycles
}

// Sets returns the number of sets given a line size.
func (c CacheConfig) Sets(lineBytes int) int {
	return c.SizeBytes / (c.Ways * lineBytes)
}

// PrefetcherConfig describes the L2 hardware stream prefetcher.
type PrefetcherConfig struct {
	Streams  int // stream-table entries (KNL tracks 16 streams, §IV-B)
	Distance int // prefetch-ahead distance in cache lines
	Degree   int // lines issued per trigger
}

// MemoryConfig describes the memory technology behind the last private
// level: a multi-channel, multi-bank device whose loaded latency emerges
// from channel/bank queueing in the simulator.
type MemoryConfig struct {
	Tech            string  // "DDR4", "MCDRAM", "HBM2"
	TheoreticalGBs  float64 // vendor peak bandwidth (Table III)
	Channels        int     // independent channels (address-interleaved)
	BanksPerChannel int     // banks per channel (bank-level parallelism)
	BaseLatencyNs   float64 // uncontended round trip excluding bank service and bus transfer
	RowHitNs        float64 // bank busy time on a row-buffer hit
	RowMissNs       float64 // bank busy time on a row-buffer miss (activate+precharge)
	RowBytes        int     // row-buffer (DRAM page) size
	// BusGBsPerChannel overrides the effective per-channel data-bus rate
	// (0 means TheoreticalGBs/Channels). HBM2 in particular sustains well
	// below its theoretical per-channel rate.
	BusGBsPerChannel float64
}

// ChannelGBs returns the effective per-channel bandwidth in GB/s.
func (m MemoryConfig) ChannelGBs() float64 {
	if m.BusGBsPerChannel > 0 {
		return m.BusGBsPerChannel
	}
	return m.TheoreticalGBs / float64(m.Channels)
}

// TransferNs returns the channel bus occupancy for one line of the given size.
func (m MemoryConfig) TransferNs(lineBytes int) float64 {
	return float64(lineBytes) / m.ChannelGBs()
}

// Platform is a full machine description.
type Platform struct {
	Name   string
	Vendor string
	ISA    string

	Cores   int     // physical cores used in the paper's runs
	FreqHz  float64 // fixed core frequency used in the paper
	SMTWays int     // maximum hardware threads per core (1 = no SMT)

	LineBytes     int // cache-line size (A64FX uses 256-byte lines)
	VectorLanes64 int // 64-bit lanes per vector register (AVX-512/SVE-512: 8)

	// DemandWindow is the maximum number of demand line-misses a single
	// hardware thread's out-of-order engine can keep in flight before any
	// MSHR limit, reflecting ROB/load-queue depth.
	DemandWindow int

	// ScalarIssuePenalty multiplies the compute delay between dependent
	// scalar irregular accesses; it models A64FX's weak scalar pipeline
	// relative to the x86 cores (§IV-C observes far lower base MLP there).
	ScalarIssuePenalty float64

	// SMTComputeShare sets how SMT threads share the core pipeline: with n
	// active threads each thread's compute delay scales by
	// max(1, SMTComputeShare × n^(2/3)). The sublinear exponent reflects
	// that co-resident threads overlap stalls; the share constant is
	// calibrated against the paper's CoMD SMT ladder (§IV-D): below 1
	// (KNL) a single thread cannot fill the issue width, so additional
	// threads are cheap.
	SMTComputeShare float64

	// VectorIssuePenalty multiplies compute delays of vectorized
	// gather/scatter-heavy loops, modelling how far the platform's vector
	// memory pipeline falls short of the x86 cores (A64FX SVE gathers are
	// substantially slower, §IV-B/§IV-C).
	VectorIssuePenalty float64

	// WeakStoreForwarding marks cores that stall on store-to-load
	// forwarding patterns (A64FX, §IV-F: compiler-fused loops in SNAP ran
	// 4× slower until fusion was disabled).
	WeakStoreForwarding bool

	L1 CacheConfig
	L2 CacheConfig
	L3 *CacheConfig // shared LLC; nil on KNL (flat MCDRAM) and A64FX

	Prefetcher PrefetcherConfig
	Memory     MemoryConfig

	// MemCache, if non-nil, puts a direct-mapped memory-side cache built
	// from a faster tier in front of Memory — KNL's MCDRAM cache mode.
	MemCache *MemCacheConfig
}

// MemCacheConfig describes a memory-side cache (MCDRAM cache mode): a
// direct-mapped, line-granular cache whose hits are served by the fast
// tier and whose misses fall through to the platform's Memory.
type MemCacheConfig struct {
	// SizeBytes is the cache capacity (scaled with the workloads'
	// footprints the way the simulated problem sizes are).
	SizeBytes int
	// Fast is the fast tier's timing/geometry (the MCDRAM device).
	Fast MemoryConfig
}

// Clock returns the core clock domain.
func (p *Platform) Clock() events.Clock { return events.NewClock(p.FreqHz) }

// CyclesNs converts core cycles to nanoseconds on this platform.
func (p *Platform) CyclesNs(cycles float64) float64 { return cycles / p.FreqHz * 1e9 }

// NsCycles converts nanoseconds to core cycles on this platform.
func (p *Platform) NsCycles(ns float64) float64 { return ns * p.FreqHz / 1e9 }

// PeakGBs returns the theoretical peak memory bandwidth (the denominator of
// the percentage column in Tables IV–IX).
func (p *Platform) PeakGBs() float64 { return p.Memory.TheoreticalGBs }

// Validate checks internal consistency.
func (p *Platform) Validate() error {
	switch {
	case p.Cores <= 0:
		return fmt.Errorf("platform %s: cores must be positive", p.Name)
	case p.FreqHz <= 0:
		return fmt.Errorf("platform %s: frequency must be positive", p.Name)
	case p.SMTWays < 1:
		return fmt.Errorf("platform %s: SMT ways must be at least 1", p.Name)
	case p.LineBytes <= 0 || p.LineBytes&(p.LineBytes-1) != 0:
		return fmt.Errorf("platform %s: line size must be a positive power of two", p.Name)
	case p.L1.MSHRs <= 0 || p.L2.MSHRs <= 0:
		return fmt.Errorf("platform %s: MSHR capacities must be positive", p.Name)
	case p.L2.MSHRs < p.L1.MSHRs:
		return fmt.Errorf("platform %s: L2 MSHRs (%d) below L1 MSHRs (%d)", p.Name, p.L2.MSHRs, p.L1.MSHRs)
	case p.L1.Sets(p.LineBytes) <= 0 || p.L2.Sets(p.LineBytes) <= 0:
		return fmt.Errorf("platform %s: cache smaller than ways×line", p.Name)
	case p.Memory.Channels <= 0 || p.Memory.BanksPerChannel <= 0:
		return fmt.Errorf("platform %s: memory geometry must be positive", p.Name)
	case p.Memory.TheoreticalGBs <= 0:
		return fmt.Errorf("platform %s: peak bandwidth must be positive", p.Name)
	case p.DemandWindow <= 0:
		return fmt.Errorf("platform %s: demand window must be positive", p.Name)
	}
	if mc := p.MemCache; mc != nil {
		if mc.SizeBytes < p.LineBytes {
			return fmt.Errorf("platform %s: memory-side cache smaller than a line", p.Name)
		}
		if mc.Fast.Channels <= 0 || mc.Fast.TheoreticalGBs <= 0 {
			return fmt.Errorf("platform %s: memory-side cache fast tier misconfigured", p.Name)
		}
	}
	return nil
}

// SKL returns the Intel Xeon Platinum 8160 model: 24 cores fixed at
// 2.1 GHz, six DDR4-2666 channels (128 GB/s), 10 L1 / 16 L2 MSHRs.
func SKL() *Platform {
	return &Platform{
		Name:               "SKL",
		Vendor:             "Intel",
		ISA:                "x86-64/AVX-512",
		Cores:              24,
		FreqHz:             2.1e9,
		SMTWays:            2,
		LineBytes:          64,
		VectorLanes64:      8,
		DemandWindow:       20,
		ScalarIssuePenalty: 1.0,
		SMTComputeShare:    1.03,
		VectorIssuePenalty: 1.0,
		L1:                 CacheConfig{SizeBytes: 32 << 10, Ways: 8, MSHRs: 10, HitCycles: 4},
		L2:                 CacheConfig{SizeBytes: 1 << 20, Ways: 16, MSHRs: 16, HitCycles: 14},
		L3:                 &CacheConfig{SizeBytes: 32 << 20, Ways: 16, MSHRs: 48, HitCycles: 60},
		Prefetcher:         PrefetcherConfig{Streams: 16, Distance: 20, Degree: 2},
		Memory: MemoryConfig{
			Tech:             "DDR4",
			TheoreticalGBs:   128,
			Channels:         6,
			BanksPerChannel:  18,
			BaseLatencyNs:    32,
			RowHitNs:         15,
			RowMissNs:        38,
			RowBytes:         8 << 10,
			BusGBsPerChannel: 18.7,
		},
	}
}

// KNL returns the Intel Xeon Phi 7250 model in flat mode with all data in
// MCDRAM: the paper uses 64 of the 68 cores at a fixed 1.4 GHz, 400 GB/s
// MCDRAM, 12 L1 / 32 L2 MSHRs, and an L2 prefetcher limited to 16 streams.
func KNL() *Platform {
	return &Platform{
		Name:               "KNL",
		Vendor:             "Intel",
		ISA:                "x86-64/AVX-512",
		Cores:              64,
		FreqHz:             1.4e9,
		SMTWays:            4,
		LineBytes:          64,
		VectorLanes64:      8,
		DemandWindow:       12,
		ScalarIssuePenalty: 1.0,
		SMTComputeShare:    0.83,
		VectorIssuePenalty: 1.0,
		L1:                 CacheConfig{SizeBytes: 32 << 10, Ways: 8, MSHRs: 12, HitCycles: 4},
		L2:                 CacheConfig{SizeBytes: 512 << 10, Ways: 16, MSHRs: 32, HitCycles: 17},
		L3:                 nil,
		Prefetcher:         PrefetcherConfig{Streams: 16, Distance: 16, Degree: 2},
		Memory: MemoryConfig{
			Tech:             "MCDRAM",
			TheoreticalGBs:   400,
			Channels:         16,
			BanksPerChannel:  22,
			BaseLatencyNs:    104,
			RowHitNs:         15,
			RowMissNs:        45,
			RowBytes:         2 << 10,
			BusGBsPerChannel: 22.5,
		},
	}
}

// A64FX returns the Fujitsu A64FX model: 48 cores at 1.8 GHz, four HBM2
// stacks (1024 GB/s), 256-byte cache lines, 12 L1 / ~20 L2 MSHRs, SVE-512,
// no SMT.
func A64FX() *Platform {
	return &Platform{
		Name:                "A64FX",
		Vendor:              "Fujitsu",
		ISA:                 "AArch64/SVE-512",
		Cores:               48,
		FreqHz:              1.8e9,
		SMTWays:             1,
		LineBytes:           256,
		VectorLanes64:       8,
		DemandWindow:        12,
		ScalarIssuePenalty:  3.2,
		SMTComputeShare:     1.0,
		VectorIssuePenalty:  2.2,
		WeakStoreForwarding: true,
		L1:                  CacheConfig{SizeBytes: 64 << 10, Ways: 4, MSHRs: 12, HitCycles: 5},
		L2:                  CacheConfig{SizeBytes: 512 << 10, Ways: 16, MSHRs: 20, HitCycles: 40},
		L3:                  nil,
		Prefetcher:          PrefetcherConfig{Streams: 16, Distance: 8, Degree: 2},
		Memory: MemoryConfig{
			Tech:             "HBM2",
			TheoreticalGBs:   1024,
			Channels:         32,
			BanksPerChannel:  5,
			BaseLatencyNs:    62,
			RowHitNs:         15,
			RowMissNs:        45,
			RowBytes:         2 << 10,
			BusGBsPerChannel: 25,
		},
	}
}

// All returns the three paper platforms in Table III order.
func All() []*Platform { return []*Platform{SKL(), KNL(), A64FX()} }

// ByName returns the named platform (case-sensitive: "SKL", "KNL",
// "A64FX") or an error.
func ByName(name string) (*Platform, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("platform: unknown platform %q (want SKL, KNL or A64FX)", name)
}
