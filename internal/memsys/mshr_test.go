package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"littleslaw/internal/events"
)

func TestMSHRAllocateCompleteCycle(t *testing.T) {
	var sched events.Scheduler
	m := NewMSHR(&sched, 4)
	if m.Full() || m.InFlight() != 0 {
		t.Fatal("fresh MSHR not empty")
	}
	m.Allocate(Line(1))
	if !m.Outstanding(Line(1)) || m.InFlight() != 1 {
		t.Fatal("allocation not tracked")
	}
	called := 0
	m.Coalesce(Line(1), func() { called++ })
	m.Coalesce(Line(1), func() { called++ })
	sched.RunUntil(100)
	for _, w := range m.Complete(Line(1)) {
		w()
	}
	if called != 2 {
		t.Fatalf("waiters called %d times, want 2", called)
	}
	if m.Outstanding(Line(1)) {
		t.Fatal("entry survived completion")
	}
	if m.Stats.Allocations != 1 || m.Stats.Coalesced != 2 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestMSHRFull(t *testing.T) {
	var sched events.Scheduler
	m := NewMSHR(&sched, 2)
	m.Allocate(Line(1))
	m.Allocate(Line(2))
	if !m.Full() {
		t.Fatal("MSHR with cap 2 and 2 entries not full")
	}
	m.NoteFull()
	if m.Stats.FullEvents != 1 {
		t.Fatal("full event not recorded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("allocate on full MSHR did not panic")
		}
	}()
	m.Allocate(Line(3))
}

func TestMSHRDuplicateAllocatePanics(t *testing.T) {
	var sched events.Scheduler
	m := NewMSHR(&sched, 2)
	m.Allocate(Line(1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate allocate did not panic")
		}
	}()
	m.Allocate(Line(1))
}

func TestMSHRCompleteUnknownPanics(t *testing.T) {
	var sched events.Scheduler
	m := NewMSHR(&sched, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("complete on unknown line did not panic")
		}
	}()
	m.Complete(Line(9))
}

func TestMSHROccupancyTracking(t *testing.T) {
	var sched events.Scheduler
	m := NewMSHR(&sched, 8)
	sched.At(0, func() { m.Allocate(Line(1)) })
	sched.At(100, func() { m.Allocate(Line(2)) })
	sched.At(200, func() { m.Complete(Line(1)) })
	sched.At(400, func() { m.Complete(Line(2)) })
	sched.Run()
	// occ: 1 over [0,100), 2 over [100,200), 1 over [200,400) => 500/400
	if got := m.Occ.Mean(400); got != 1.25 {
		t.Fatalf("mean occupancy = %v, want 1.25", got)
	}
}

func TestMSHRResetPreservesInFlight(t *testing.T) {
	var sched events.Scheduler
	m := NewMSHR(&sched, 8)
	m.Allocate(Line(1))
	sched.RunUntil(100)
	m.ResetStats()
	sched.RunUntil(300)
	if got := m.Occ.Mean(sched.Now()); got != 1.0 {
		t.Fatalf("occupancy after reset = %v, want 1.0 (entry still in flight)", got)
	}
	m.Complete(Line(1))
}

// Property: under random allocate/complete traffic respecting the protocol,
// in-flight never exceeds capacity and Little's law holds on the drained
// window.
func TestMSHRInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sched events.Scheduler
		cp := 1 + rng.Intn(16)
		m := NewMSHR(&sched, cp)
		live := map[Line]bool{}
		now := events.Time(0)
		for i := 0; i < 300; i++ {
			now += events.Time(rng.Intn(20))
			line := Line(rng.Intn(40))
			sched.RunUntil(now)
			if live[line] {
				if rng.Intn(2) == 0 {
					m.Coalesce(line, nil)
				} else {
					m.Complete(line)
					delete(live, line)
				}
				continue
			}
			if m.Full() {
				m.NoteFull()
				continue
			}
			m.Allocate(line)
			live[line] = true
			if m.InFlight() > cp {
				return false
			}
		}
		for line := range live {
			now += events.Time(rng.Intn(20))
			sched.RunUntil(now)
			m.Complete(line)
		}
		return m.Occ.LittleResidual(now) < 1e-9 && m.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
