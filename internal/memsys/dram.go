package memsys

import (
	"littleslaw/internal/events"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// DRAMStats aggregates memory-device activity over a measurement window.
type DRAMStats struct {
	Reads     uint64 // line reads serviced
	Writes    uint64 // line writes (writebacks) serviced
	RowHits   uint64
	RowMisses uint64
	// QueueWaitPs accumulates time requests spent queued at a busy bank;
	// BusWaitPs time spent waiting for the channel data bus.
	QueueWaitPs uint64
	BusWaitPs   uint64
	// LatencyPs accumulates full read round-trip time (for mean latency).
	LatencyPs uint64
}

// BytesMoved returns total traffic in bytes for a given line size.
func (s DRAMStats) BytesMoved(lineBytes int) uint64 {
	return (s.Reads + s.Writes) * uint64(lineBytes)
}

// MeanReadLatencyNs returns the average read round trip in nanoseconds.
func (s DRAMStats) MeanReadLatencyNs() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.LatencyPs) / float64(s.Reads) / 1e3
}

// RowHitFraction returns hits / (hits+misses), or 0.
func (s DRAMStats) RowHitFraction() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

type dramReq struct {
	row    uint64
	write  bool
	done   func()
	arrive events.Time
}

type bank struct {
	busy      bool
	openRow   uint64
	hasRow    bool
	hitStreak int
	queue     []dramReq
}

type channel struct {
	busFreeAt events.Time
	banks     []bank
}

// DRAM models the node's memory device (DDR4, MCDRAM or HBM2) as
// address-interleaved channels, each with a shared data bus and independent
// banks with a row-buffer. Each bank schedules its queue row-hit-first
// (FR-FCFS, with a starvation cap), as real memory controllers do; loaded
// latency — and therefore the platform's bandwidth→latency curve — emerges
// from this queueing rather than from a fitted formula.
type DRAM struct {
	sched       *events.Scheduler
	cfg         platform.MemoryConfig
	lineBytes   int
	linesPerRow uint64
	basePs      events.Duration
	rowHitPs    events.Duration
	rowMissPs   events.Duration
	transferPs  events.Duration
	chans       []channel

	// Occ tracks outstanding read requests at the device, time-weighted.
	Occ   queueing.OccupancyStat
	Stats DRAMStats
}

// maxHitStreak bounds consecutive row-hit-first picks so interleaved rows
// are never starved.
const maxHitStreak = 16

// NewDRAM builds the memory device for a platform.
func NewDRAM(sched *events.Scheduler, p *platform.Platform) *DRAM {
	m := p.Memory
	d := &DRAM{
		sched:       sched,
		cfg:         m,
		lineBytes:   p.LineBytes,
		linesPerRow: uint64(m.RowBytes / p.LineBytes),
		basePs:      events.FromNanoseconds(m.BaseLatencyNs),
		rowHitPs:    events.FromNanoseconds(m.RowHitNs),
		rowMissPs:   events.FromNanoseconds(m.RowMissNs),
		transferPs:  events.FromNanoseconds(m.TransferNs(p.LineBytes)),
		chans:       make([]channel, m.Channels),
	}
	for i := range d.chans {
		d.chans[i].banks = make([]bank, m.BanksPerChannel)
	}
	d.Occ.Reset(sched.Now())
	return d
}

// ResetStats clears counters and restarts occupancy tracking at now.
func (d *DRAM) ResetStats() {
	d.Stats = DRAMStats{}
	d.Occ.Reset(d.sched.Now())
}

// mix64 is the splitmix64 finalizer, used to hash row indices into bank
// selections the way memory controllers XOR-scramble bank bits: without
// it, power-of-two-spaced buffers from different cores alias onto the
// same bank and serialize the whole machine.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// route decomposes a line address into channel, bank and row. Consecutive
// lines interleave across channels; within a channel consecutive lines
// share a row until it is exhausted, giving streams row-buffer locality;
// the bank is a hash of the row so that concurrent streams spread across
// the bank-level parallelism.
func (d *DRAM) route(line Line) (ch *channel, bk *bank, row uint64) {
	nc := uint64(len(d.chans))
	ci := uint64(line) % nc
	inChan := uint64(line) / nc
	row = inChan / d.linesPerRow
	ch = &d.chans[ci]
	bk = &ch.banks[mix64(row)%uint64(len(ch.banks))]
	return ch, bk, row
}

// Access presents one line request to the device. For reads, done (if
// non-nil) fires when the data returns to the requester; writes complete
// in the background. The read latency is
//
//	base (interconnect round trip) + bank queue + bank service + bus queue + transfer
func (d *DRAM) Access(line Line, write bool, done func()) {
	now := d.sched.Now()
	ch, bk, row := d.route(line)

	if write {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
		d.Occ.Arrive(now)
	}

	req := dramReq{row: row, write: write, done: done, arrive: now}
	// The request reaches the controller after half the base round trip.
	d.sched.After(d.basePs/2, func() {
		bk.queue = append(bk.queue, req)
		if !bk.busy {
			d.serviceBank(ch, bk)
		}
	})
}

// serviceBank picks the next request for an idle bank (row-hit-first with
// a starvation cap), reserves the bank and bus, and schedules completion
// and the next scheduling round.
func (d *DRAM) serviceBank(ch *channel, bk *bank) {
	if len(bk.queue) == 0 {
		bk.busy = false
		return
	}
	bk.busy = true

	// FR-FCFS pick: oldest row hit, unless the hit streak is exhausted, in
	// which case the oldest request wins (guaranteeing progress).
	pick := 0
	if bk.hasRow && bk.hitStreak < maxHitStreak {
		for i := range bk.queue {
			if bk.queue[i].row == bk.openRow {
				pick = i
				break
			}
		}
	}
	req := bk.queue[pick]
	bk.queue = append(bk.queue[:pick], bk.queue[pick+1:]...)

	now := d.sched.Now()
	var access, occupancy events.Duration
	if bk.hasRow && bk.openRow == req.row {
		// Row hits pipeline at the bus rate (consecutive CAS bursts).
		access, occupancy = d.rowHitPs, d.transferPs
		bk.hitStreak++
		d.Stats.RowHits++
	} else {
		access, occupancy = d.rowMissPs, d.rowMissPs
		bk.hitStreak = 0
		d.Stats.RowMisses++
	}
	bk.openRow, bk.hasRow = req.row, true
	d.Stats.QueueWaitPs += uint64(now - req.arrive - d.basePs/2)

	dataReady := now + access
	bankFree := now + occupancy

	// The data transfer queues on the channel bus independently of the
	// bank, which can begin its next activate as soon as its own occupancy
	// window ends — banks must not idle behind bus backpressure.
	busStart := max(dataReady, ch.busFreeAt)
	busDone := busStart + d.transferPs
	ch.busFreeAt = busDone
	d.Stats.BusWaitPs += uint64(busStart - dataReady)

	d.sched.At(bankFree, func() { d.serviceBank(ch, bk) })

	completeAt := busDone + d.basePs/2
	if req.write {
		if req.done != nil {
			d.sched.At(completeAt, req.done)
		}
		return
	}
	lat := completeAt - req.arrive
	d.Stats.LatencyPs += uint64(lat)
	d.sched.At(completeAt, func() {
		d.Occ.Depart(d.sched.Now(), lat)
		if req.done != nil {
			req.done()
		}
	})
}
