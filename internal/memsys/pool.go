package memsys

import (
	"sync"

	"littleslaw/internal/platform"
)

// hierGeom is the part of a platform that fixes a Hierarchy's allocated
// shape: cache geometry, MSHR capacities and the prefetcher table bound.
// Two platforms with the same geometry can exchange pooled hierarchies
// even if their timing (frequencies, hit latencies) differs, because
// Hierarchy.Reset recomputes timing from the new node.
type hierGeom struct {
	l1Sets, l1Ways, l1MSHRs int
	l2Sets, l2Ways, l2MSHRs int
	lineBytes               int
	pf                      platform.PrefetcherConfig
}

func geomOf(p *platform.Platform) hierGeom {
	return hierGeom{
		l1Sets: p.L1.Sets(p.LineBytes), l1Ways: p.L1.Ways, l1MSHRs: p.L1.MSHRs,
		l2Sets: p.L2.Sets(p.LineBytes), l2Ways: p.L2.Ways, l2MSHRs: p.L2.MSHRs,
		lineBytes: p.LineBytes,
		pf:        p.Prefetcher,
	}
}

// hierPools maps hierGeom → *sync.Pool of *Hierarchy.
var hierPools sync.Map

// AcquireHierarchy returns a hierarchy attached to node, reusing a pooled
// one of matching geometry when available (its arrays stay warm; its state
// is fully reset, so results are bit-identical to a fresh hierarchy).
// Release with ReleaseHierarchy when the run ends — or don't, if the
// hierarchy's internal state may have been perturbed beyond Reset's reach.
func AcquireHierarchy(node *Node) *Hierarchy {
	pool := poolFor(geomOf(node.Plat))
	if v := pool.Get(); v != nil {
		h := v.(*Hierarchy)
		h.Reset(node)
		return h
	}
	return NewHierarchy(node)
}

// ReleaseHierarchy returns h to the pool for its geometry. The caller must
// not use h afterwards.
func ReleaseHierarchy(h *Hierarchy) {
	poolFor(geomOf(h.node.Plat)).Put(h)
}

func poolFor(g hierGeom) *sync.Pool {
	if v, ok := hierPools.Load(g); ok {
		return v.(*sync.Pool)
	}
	v, _ := hierPools.LoadOrStore(g, &sync.Pool{})
	return v.(*sync.Pool)
}
