package memsys

import (
	"math/bits"

	"littleslaw/internal/events"
	"littleslaw/internal/platform"
)

// HierarchyStats aggregates per-core memory-hierarchy activity.
type HierarchyStats struct {
	DemandLoads  uint64
	DemandStores uint64
	SWPrefetches uint64

	// L1FullStallPs / L2FullStallPs accumulate the time demand requests
	// spent waiting for a free MSHR — the "MSHRQ-full stalls" of Table I.
	L1FullStallPs uint64
	L2FullStallPs uint64

	HWPrefetchDropped uint64 // hardware prefetches dropped on a full L2 MSHRQ
	SWPrefetchDropped uint64 // software prefetches dropped (bounded retry queue)

	// Memory reads initiated below L2, by originating request kind. Their
	// ratio is the "fraction of memory requests generated from hardware
	// prefetcher versus demand loads" the recipe uses to decide whether the
	// L1 or the L2 MSHRQ is the binding structure (§III-D).
	L2MissDemand     uint64
	L2MissHWPrefetch uint64
	L2MissSWPrefetch uint64
}

// PrefetchedReadFraction returns the fraction of memory reads initiated by
// prefetchers (hardware or software) rather than demand misses.
func (s HierarchyStats) PrefetchedReadFraction() float64 {
	total := s.L2MissDemand + s.L2MissHWPrefetch + s.L2MissSWPrefetch
	if total == 0 {
		return 0
	}
	return float64(s.L2MissHWPrefetch+s.L2MissSWPrefetch) / float64(total)
}

// Node is the memory system shared by all cores: the memory device and,
// on Skylake, the shared L3. A Node is created once per simulated machine
// and each core attaches a Hierarchy to it.
//
// When the platform configures a memory-side cache (KNL cache mode), DRAM
// is the fast tier, SlowDRAM the backing store, and a direct-mapped
// line-granular tag array decides which serves each fetch.
type Node struct {
	Sched *events.Scheduler
	Plat  *platform.Platform
	DRAM  *DRAM

	L3      *Cache // nil when the platform has no shared LLC
	l3HitPs events.Duration

	// Memory-side cache state (nil/empty without one).
	SlowDRAM  *DRAM
	mcTags    []uint64 // tag per direct-mapped set; 0 = invalid
	mcSetMask uint64
	MCHits    uint64
	MCMisses  uint64

	lineShift uint
}

// NewNode builds the shared memory side for a platform.
func NewNode(sched *events.Scheduler, p *platform.Platform) *Node {
	n := &Node{
		Sched:     sched,
		Plat:      p,
		DRAM:      NewDRAM(sched, p),
		lineShift: uint(bits.TrailingZeros(uint(p.LineBytes))),
	}
	if p.L3 != nil {
		n.L3 = NewCache(p.L3.Sets(p.LineBytes), p.L3.Ways)
		n.l3HitPs = p.Clock().Cycles(p.L3.HitCycles)
	}
	if mc := p.MemCache; mc != nil {
		fast := *p
		fast.Memory = mc.Fast
		n.DRAM = NewDRAM(sched, &fast)
		n.SlowDRAM = NewDRAM(sched, p)
		sets := mc.SizeBytes / p.LineBytes
		// Round down to a power of two for masking.
		for sets&(sets-1) != 0 {
			sets &= sets - 1
		}
		n.mcTags = make([]uint64, sets)
		n.mcSetMask = uint64(sets - 1)
	}
	return n
}

// mcLookup probes and updates the memory-side cache for line, returning
// whether the fast tier holds it. Misses install the line (direct-mapped
// eviction of the previous occupant). The set index is hashed: physical
// page scattering spreads virtual arenas across the cache, and without it
// power-of-two-spaced per-core arenas would alias onto the same sets.
func (n *Node) mcLookup(line Line) bool {
	set := mix64(uint64(line)) & n.mcSetMask
	tag := uint64(line) | 1<<63 // bit 63 marks validity
	if n.mcTags[set] == tag {
		n.MCHits++
		return true
	}
	n.mcTags[set] = tag
	n.MCMisses++
	return false
}

// LineOf converts a byte address to a line address on this platform.
func (n *Node) LineOf(addr uint64) Line { return Line(addr >> n.lineShift) }

// ResetStats clears DRAM and L3 counters.
func (n *Node) ResetStats() {
	n.DRAM.ResetStats()
	if n.SlowDRAM != nil {
		n.SlowDRAM.ResetStats()
		n.MCHits, n.MCMisses = 0, 0
	}
	if n.L3 != nil {
		n.L3.ResetStats()
	}
}

// MCHitFraction returns the memory-side cache hit rate (0 without one).
func (n *Node) MCHitFraction() float64 {
	t := n.MCHits + n.MCMisses
	if t == 0 {
		return 0
	}
	return float64(n.MCHits) / float64(t)
}

// fetch retrieves line from beyond a core's L2: L3 if present, then memory
// (through the memory-side cache when configured). onData fires when the
// line arrives at the requesting L2.
func (n *Node) fetch(line Line, onData func()) {
	if n.L3 != nil && n.L3.Access(line, false) {
		n.Sched.After(n.l3HitPs, onData)
		return
	}
	deliver := func() {
		if n.L3 != nil {
			if victim, dirty := n.L3.Fill(line, false); dirty {
				n.DRAM.Access(victim, true, nil)
			}
		}
		onData()
	}
	if n.SlowDRAM != nil && !n.mcLookup(line) {
		// Memory-side cache miss: the far tier services the request; the
		// fill into the fast tier rides in the background.
		n.SlowDRAM.Access(line, false, func() {
			n.DRAM.Access(line, true, nil)
			deliver()
		})
		return
	}
	n.DRAM.Access(line, false, deliver)
}

// writeback sends a dirty line from a core's L2 toward memory.
func (n *Node) writeback(line Line) {
	if n.L3 != nil {
		if victim, dirty := n.L3.Fill(line, true); dirty {
			n.DRAM.Access(victim, true, nil)
		}
		return
	}
	n.DRAM.Access(line, true, nil)
}

type pendingReq struct {
	line  Line
	kind  Kind
	done  func()
	since events.Time
}

// Hierarchy is one core's private memory hierarchy: L1 and L2 caches with
// their MSHR files and the L2 hardware stream prefetcher, attached to the
// node-shared L3/memory. SMT threads on the core share the Hierarchy, and
// therefore its MSHRs — the resource interaction behind the paper's SMT
// guidance (§III-C).
type Hierarchy struct {
	node *Node

	L1, L2   *Cache
	L1M, L2M *MSHR
	PF       *StreamPrefetcher

	l1HitPs events.Duration
	l2HitPs events.Duration

	// Pending requests stalled on a full MSHR file, consumed from a head
	// index so draining does not reslice (and therefore never reallocates)
	// the backing array; the array compacts whenever it fully drains.
	pendingL1  []pendingReq
	pendingL2  []pendingReq
	pendL1Head int
	pendL2Head int
	maxSWPend  int

	// NoCoalesce disables MSHR request merging for ablation studies: a
	// request to an already-outstanding line still waits on the existing
	// entry (the data dependency is real) but issues a duplicate memory
	// read, the traffic a coalescing-free design would generate.
	NoCoalesce bool

	Stats HierarchyStats
}

// NewHierarchy attaches a fresh core hierarchy to node.
func NewHierarchy(node *Node) *Hierarchy {
	p := node.Plat
	clk := p.Clock()
	h := &Hierarchy{
		node:      node,
		L1:        NewCache(p.L1.Sets(p.LineBytes), p.L1.Ways),
		L2:        NewCache(p.L2.Sets(p.LineBytes), p.L2.Ways),
		L1M:       NewMSHR(node.Sched, p.L1.MSHRs),
		L2M:       NewMSHR(node.Sched, p.L2.MSHRs),
		l1HitPs:   clk.Cycles(p.L1.HitCycles),
		l2HitPs:   clk.Cycles(p.L2.HitCycles),
		maxSWPend: p.L2.MSHRs,
	}
	h.PF = NewStreamPrefetcher(p.Prefetcher, p.LineBytes, func(line Line) {
		h.l2Request(line, hwPrefetch, nil)
	})
	return h
}

// ResetStats clears all counters on the core, preserving cache and MSHR state.
func (h *Hierarchy) ResetStats() {
	h.Stats = HierarchyStats{}
	h.L1.ResetStats()
	h.L2.ResetStats()
	h.L1M.ResetStats()
	h.L2M.ResetStats()
	h.PF.ResetStats()
}

// Reset rebinds the hierarchy to node and restores it to the state
// NewHierarchy would produce, keeping every allocated array (cache ways,
// MSHR entries, prefetcher table, pending queues) so a pooled hierarchy
// serves a new run without reconstruction. node must have the same cache
// geometry and prefetcher configuration as the hierarchy was built with;
// timing parameters are recomputed from node's platform.
func (h *Hierarchy) Reset(node *Node) {
	p := node.Plat
	clk := p.Clock()
	h.node = node
	h.L1.Reset()
	h.L2.Reset()
	h.L1M.Reset(node.Sched)
	h.L2M.Reset(node.Sched)
	h.PF.Reset()
	h.l1HitPs = clk.Cycles(p.L1.HitCycles)
	h.l2HitPs = clk.Cycles(p.L2.HitCycles)
	full1 := h.pendingL1[:cap(h.pendingL1)]
	for i := range full1 {
		full1[i] = pendingReq{}
	}
	full2 := h.pendingL2[:cap(h.pendingL2)]
	for i := range full2 {
		full2[i] = pendingReq{}
	}
	h.pendingL1 = h.pendingL1[:0]
	h.pendingL2 = h.pendingL2[:0]
	h.pendL1Head, h.pendL2Head = 0, 0
	h.maxSWPend = p.L2.MSHRs
	h.NoCoalesce = false
	h.Stats = HierarchyStats{}
}

// pendL2Len returns the number of queued L2 requests not yet drained.
func (h *Hierarchy) pendL2Len() int { return len(h.pendingL2) - h.pendL2Head }

// Access presents one byte-addressed memory operation to the hierarchy.
// For demand loads and stores, done fires when the data is available in L1
// (load-to-use). For software prefetches done may be nil; if provided it
// fires when the prefetch has been accepted (not completed), since prefetch
// instructions retire without waiting.
func (h *Hierarchy) Access(addr uint64, kind Kind, done func()) {
	line := h.node.LineOf(addr)
	switch kind {
	case Load:
		h.Stats.DemandLoads++
	case Store:
		h.Stats.DemandStores++
	case PrefetchL2, PrefetchL1:
		h.Stats.SWPrefetches++
	}

	if kind == PrefetchL2 {
		// L2-targeted software prefetch bypasses the L1 and its MSHRs.
		// done (if any) fires when the prefetch resolves — the line reaches
		// L2, or the request is dropped — so callers that flow-control
		// prefetch streams (e.g. the X-Mem load generators) can reissue.
		h.l2Request(line, PrefetchL2, done)
		return
	}

	if h.L1.Access(line, kind == Store) {
		if done != nil {
			h.node.Sched.After(h.l1HitPs, done)
		}
		return
	}
	h.l1Miss(pendingReq{line: line, kind: kind, done: done, since: h.node.Sched.Now()})
}

func (h *Hierarchy) l1Miss(req pendingReq) {
	if h.L1M.Outstanding(req.line) {
		h.L1M.Coalesce(req.line, req.done)
		if h.NoCoalesce {
			h.node.DRAM.Access(req.line, false, nil)
		}
		return
	}
	if h.L1M.Full() {
		h.L1M.NoteFull()
		h.pendingL1 = append(h.pendingL1, req)
		return
	}
	h.L1M.Allocate(req.line)
	if req.done != nil {
		h.L1M.Coalesce(req.line, req.done)
		h.L1M.Stats.Coalesced-- // first waiter is not a coalesced request
	}
	dirty := req.kind == Store
	// Miss detection takes an L1 lookup; then the request goes to L2.
	h.node.Sched.After(h.l1HitPs, func() {
		h.l2Request(req.line, req.kind, func() { h.fillL1(req.line, dirty) })
	})
}

// l2Request looks up line in the L2 on behalf of a demand miss from L1, a
// software L2 prefetch, or the hardware prefetcher. onData (may be nil)
// fires when the line is present in L2.
func (h *Hierarchy) l2Request(line Line, kind Kind, onData func()) {
	if kind.isDemand() || kind == PrefetchL1 {
		h.PF.Observe(line)
	}
	if h.L2.Access(line, false) {
		if onData != nil {
			h.node.Sched.After(h.l2HitPs, onData)
		}
		return
	}
	h.l2Miss(pendingReq{line: line, kind: kind, done: onData, since: h.node.Sched.Now()})
}

func (h *Hierarchy) l2Miss(req pendingReq) {
	if h.L2M.Outstanding(req.line) {
		h.L2M.Coalesce(req.line, req.done)
		if h.NoCoalesce {
			h.node.DRAM.Access(req.line, false, nil)
		}
		return
	}
	if h.L2M.Full() {
		h.L2M.NoteFull()
		switch req.kind {
		case hwPrefetch:
			h.Stats.HWPrefetchDropped++
		case PrefetchL2:
			// Fire-and-forget software prefetches drop on a full MSHR
			// file, as on real hardware; flow-controlled issuers (those
			// waiting for the resolve callback) queue within a bounded
			// buffer instead.
			if req.done != nil && h.pendL2Len() < h.maxSWPend {
				h.pendingL2 = append(h.pendingL2, req)
			} else {
				h.Stats.SWPrefetchDropped++
				if req.done != nil {
					h.node.Sched.After(0, req.done)
				}
			}
		default:
			h.pendingL2 = append(h.pendingL2, req)
		}
		return
	}
	h.L2M.Allocate(req.line)
	switch req.kind {
	case hwPrefetch:
		h.Stats.L2MissHWPrefetch++
	case PrefetchL2:
		h.Stats.L2MissSWPrefetch++
	default:
		h.Stats.L2MissDemand++
	}
	if req.done != nil {
		h.L2M.Coalesce(req.line, req.done)
		h.L2M.Stats.Coalesced--
	}
	// The L2 lookup that detected the miss precedes the downstream fetch.
	h.node.Sched.After(h.l2HitPs, func() {
		h.node.fetch(req.line, func() { h.fillL2(req.line) })
	})
}

func (h *Hierarchy) fillL2(line Line) {
	if victim, dirty := h.L2.Fill(line, false); dirty {
		h.node.writeback(victim)
	}
	ws := h.L2M.Complete(line)
	for _, w := range ws {
		w()
	}
	h.L2M.Recycle(ws)
	h.drainL2Pending()
}

func (h *Hierarchy) fillL1(line Line, dirty bool) {
	if victim, wb := h.L1.Fill(line, dirty); wb {
		// Dirty L1 victims land in L2 (usually already resident).
		h.L2.Fill(victim, true)
	}
	ws := h.L1M.Complete(line)
	for _, w := range ws {
		w()
	}
	h.L1M.Recycle(ws)
	h.drainL1Pending()
}

func (h *Hierarchy) drainL1Pending() {
	now := h.node.Sched.Now()
	for h.pendL1Head < len(h.pendingL1) && !h.L1M.Full() {
		req := h.pendingL1[h.pendL1Head]
		h.pendingL1[h.pendL1Head] = pendingReq{} // release the done closure
		h.pendL1Head++
		h.Stats.L1FullStallPs += uint64(now - req.since)
		// The line may have been filled while this request waited.
		if h.L1.Access(req.line, req.kind == Store) {
			if req.done != nil {
				h.node.Sched.After(h.l1HitPs, req.done)
			}
			continue
		}
		h.l1Miss(pendingReq{line: req.line, kind: req.kind, done: req.done, since: now})
	}
	if h.pendL1Head == len(h.pendingL1) {
		h.pendingL1 = h.pendingL1[:0]
		h.pendL1Head = 0
	}
}

func (h *Hierarchy) drainL2Pending() {
	now := h.node.Sched.Now()
	for h.pendL2Head < len(h.pendingL2) && !h.L2M.Full() {
		req := h.pendingL2[h.pendL2Head]
		h.pendingL2[h.pendL2Head] = pendingReq{}
		h.pendL2Head++
		if req.kind.isDemand() || req.kind == PrefetchL1 {
			h.Stats.L2FullStallPs += uint64(now - req.since)
		}
		if h.L2.Access(req.line, false) {
			if req.done != nil {
				h.node.Sched.After(h.l2HitPs, req.done)
			}
			continue
		}
		h.l2Miss(pendingReq{line: req.line, kind: req.kind, done: req.done, since: now})
	}
	if h.pendL2Head == len(h.pendingL2) {
		h.pendingL2 = h.pendingL2[:0]
		h.pendL2Head = 0
	}
}
