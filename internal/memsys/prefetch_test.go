package memsys

import (
	"testing"

	"littleslaw/internal/platform"
)

func collectPF(cfg platform.PrefetcherConfig, lineBytes int) (*StreamPrefetcher, *[]Line) {
	issued := &[]Line{}
	pf := NewStreamPrefetcher(cfg, lineBytes, func(l Line) { *issued = append(*issued, l) })
	return pf, issued
}

func TestPrefetcherDetectsAscendingStream(t *testing.T) {
	pf, issued := collectPF(platform.PrefetcherConfig{Streams: 4, Distance: 8, Degree: 2}, 64)
	for i := 0; i < 6; i++ {
		before := len(*issued)
		pf.Observe(Line(i))
		// Every line issued by this trigger is ahead of the current frontier.
		for _, l := range (*issued)[before:] {
			if l <= Line(i) {
				t.Fatalf("prefetch %d not ahead of demand frontier %d", l, i)
			}
		}
	}
	if len(*issued) == 0 {
		t.Fatal("no prefetches for a clean ascending stream")
	}
}

func TestPrefetcherDetectsDescendingStream(t *testing.T) {
	pf, issued := collectPF(platform.PrefetcherConfig{Streams: 4, Distance: 8, Degree: 2}, 64)
	for i := 100; i > 94; i-- {
		before := len(*issued)
		pf.Observe(Line(i))
		for _, l := range (*issued)[before:] {
			if l >= Line(i) {
				t.Fatalf("descending prefetch %d not below demand frontier %d", l, i)
			}
		}
	}
	if len(*issued) == 0 {
		t.Fatal("no prefetches for a descending stream")
	}
}

func TestPrefetcherIgnoresRandomAccesses(t *testing.T) {
	pf, issued := collectPF(platform.PrefetcherConfig{Streams: 4, Distance: 8, Degree: 2}, 64)
	// Scatter accesses across distant regions: no stream should confirm.
	for i := 0; i < 50; i++ {
		pf.Observe(Line(i * 977))
	}
	if len(*issued) != 0 {
		t.Fatalf("issued %d prefetches on random traffic", len(*issued))
	}
}

func TestPrefetcherStreamTableEviction(t *testing.T) {
	pf, _ := collectPF(platform.PrefetcherConfig{Streams: 2, Distance: 4, Degree: 1}, 64)
	// Touch three distinct regions: table holds only two.
	pf.Observe(Line(0 << 6))
	pf.Observe(Line(1 << 10)) // different 4KiB region (64 lines apart)
	pf.Observe(Line(1 << 12))
	if pf.ActiveStreams() != 2 {
		t.Fatalf("active streams = %d, want 2 (bounded table)", pf.ActiveStreams())
	}
	if pf.Stats.StreamEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", pf.Stats.StreamEvictions)
	}
}

func TestPrefetcherThrashingKillsCoverage(t *testing.T) {
	// The §IV-B effect: more concurrent streams than table entries makes
	// per-stream training evaporate. Interleave 8 streams round-robin on a
	// 4-entry table and compare with 2 streams.
	run := func(streams int) uint64 {
		pf, _ := collectPF(platform.PrefetcherConfig{Streams: 4, Distance: 8, Degree: 2}, 64)
		for step := 0; step < 64; step++ {
			for s := 0; s < streams; s++ {
				base := Line(uint64(s) << 20)
				pf.Observe(base + Line(step))
			}
		}
		return pf.Stats.Issued / uint64(streams)
	}
	perStreamFew := run(2)
	perStreamMany := run(8)
	if perStreamMany*2 > perStreamFew {
		t.Fatalf("thrashing table still prefetches: %d/stream with 8 streams vs %d/stream with 2",
			perStreamMany, perStreamFew)
	}
}

func TestPrefetcherDisabled(t *testing.T) {
	pf, issued := collectPF(platform.PrefetcherConfig{Streams: 0}, 64)
	for i := 0; i < 10; i++ {
		pf.Observe(Line(i))
	}
	if len(*issued) != 0 {
		t.Fatal("disabled prefetcher issued requests")
	}
}

func TestPrefetcherLargeLines(t *testing.T) {
	// A64FX: 256B lines, 16 lines per 4KiB region. Streams must still train.
	pf, issued := collectPF(platform.PrefetcherConfig{Streams: 8, Distance: 4, Degree: 2}, 256)
	for i := 0; i < 8; i++ {
		pf.Observe(Line(i))
	}
	if len(*issued) == 0 {
		t.Fatal("no prefetches with 256B lines")
	}
}
