package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(4, 2)
	if c.Access(Line(100), false) {
		t.Fatal("cold cache hit")
	}
	c.Fill(Line(100), false)
	if !c.Access(Line(100), false) {
		t.Fatal("filled line missed")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2) // single set, 2 ways
	c.Fill(Line(0), false)
	c.Fill(Line(1), false)
	c.Access(Line(0), false) // 0 becomes MRU
	victim, wb := c.Fill(Line(2), false)
	if victim != Line(1) || wb {
		t.Fatalf("victim = %d (wb=%v), want 1 clean", victim, wb)
	}
	if !c.Probe(Line(0)) || !c.Probe(Line(2)) || c.Probe(Line(1)) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache(1, 1)
	c.Fill(Line(5), false)
	c.Access(Line(5), true) // dirty it
	victim, wb := c.Fill(Line(6), false)
	if victim != Line(5) || !wb {
		t.Fatalf("dirty eviction = (%d, %v), want (5, true)", victim, wb)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCacheFillExistingUpdatesDirty(t *testing.T) {
	c := NewCache(1, 2)
	c.Fill(Line(1), false)
	if v, wb := c.Fill(Line(1), true); v != 0 || wb {
		t.Fatal("re-fill evicted something")
	}
	if victim, wb := c.Fill(Line(2), false); victim != 0 || wb {
		t.Fatal("set not full yet, no eviction expected")
	}
	// Now evicting line 1 must be a writeback (dirtied by second Fill).
	c.Access(Line(2), false)
	if victim, wb := c.Fill(Line(3), false); victim != Line(1) || !wb {
		t.Fatalf("eviction = (%d, %v), want (1, true)", victim, wb)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(2, 2)
	c.Fill(Line(7), true)
	present, dirty := c.Invalidate(Line(7))
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Probe(Line(7)) {
		t.Fatal("line still present after invalidate")
	}
	if present, _ := c.Invalidate(Line(7)); present {
		t.Fatal("double invalidate reported present")
	}
}

func TestCacheSetIsolation(t *testing.T) {
	c := NewCache(4, 1)
	// Lines 0..3 map to different sets; none should evict another.
	for i := 0; i < 4; i++ {
		c.Fill(Line(i), false)
	}
	for i := 0; i < 4; i++ {
		if !c.Probe(Line(i)) {
			t.Fatalf("line %d evicted despite set isolation", i)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(3, 2) },
		func() { NewCache(0, 2) },
		func() { NewCache(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

// Property: occupancy never exceeds sets×ways; a line just filled is always
// present; hits+misses equals accesses.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := 1 << (1 + rng.Intn(4))
		ways := 1 + rng.Intn(8)
		c := NewCache(sets, ways)
		accesses := uint64(0)
		for i := 0; i < 500; i++ {
			line := Line(rng.Intn(200))
			switch rng.Intn(3) {
			case 0:
				c.Access(line, rng.Intn(2) == 0)
				accesses++
			case 1:
				c.Fill(line, rng.Intn(2) == 0)
				if !c.Probe(line) {
					return false
				}
			case 2:
				c.Invalidate(line)
			}
			if c.Len() > sets*ways {
				return false
			}
		}
		return c.Stats.Hits+c.Stats.Misses == accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
