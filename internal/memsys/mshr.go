package memsys

import (
	"littleslaw/internal/events"
	"littleslaw/internal/queueing"
)

// MSHRStats counts miss-status-handling-register activity.
type MSHRStats struct {
	Allocations uint64 // entries created (unique line misses forwarded)
	Coalesced   uint64 // requests merged into an existing entry
	FullEvents  uint64 // allocation attempts rejected because the queue was full
}

// MSHR models a miss-status-handling-register file: the set of unique
// outstanding line misses at one cache level (§III-A). Requests to a line
// that is already outstanding coalesce onto the existing entry instead of
// generating duplicate memory traffic. The time-weighted occupancy of this
// structure is the paper's ground-truth MLP.
type MSHR struct {
	capacity int
	sched    *events.Scheduler
	entries  map[Line]*mshrEntry

	// Occ is the exact time-weighted occupancy of the register file.
	Occ   queueing.OccupancyStat
	Stats MSHRStats
}

type mshrEntry struct {
	allocated events.Time
	waiters   []func()
}

// NewMSHR builds an MSHR file with the given capacity.
func NewMSHR(sched *events.Scheduler, capacity int) *MSHR {
	if capacity <= 0 {
		panic("memsys: MSHR capacity must be positive")
	}
	m := &MSHR{capacity: capacity, sched: sched, entries: make(map[Line]*mshrEntry, capacity)}
	m.Occ.Reset(sched.Now())
	return m
}

// Capacity returns the register count.
func (m *MSHR) Capacity() int { return m.capacity }

// InFlight returns the current number of outstanding line misses.
func (m *MSHR) InFlight() int { return len(m.entries) }

// Full reports whether no register is free.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// Outstanding reports whether line already has an entry.
func (m *MSHR) Outstanding(line Line) bool {
	_, ok := m.entries[line]
	return ok
}

// Allocate creates an entry for line. The caller must have checked Full and
// Outstanding; violating either panics, because both indicate a protocol
// bug in the hierarchy rather than a recoverable condition.
func (m *MSHR) Allocate(line Line) {
	if m.Full() {
		panic("memsys: MSHR allocate on full queue")
	}
	if _, ok := m.entries[line]; ok {
		panic("memsys: duplicate MSHR allocation")
	}
	m.entries[line] = &mshrEntry{allocated: m.sched.Now()}
	m.Occ.Arrive(m.sched.Now())
	m.Stats.Allocations++
}

// Coalesce attaches fn to the outstanding entry for line. fn runs when the
// line fills. It panics if the line is not outstanding.
func (m *MSHR) Coalesce(line Line, fn func()) {
	e, ok := m.entries[line]
	if !ok {
		panic("memsys: coalesce on line with no MSHR entry")
	}
	if fn != nil {
		e.waiters = append(e.waiters, fn)
	}
	m.Stats.Coalesced++
}

// NoteFull records a rejected allocation attempt (an "MSHRQ full" event,
// the stall source Table I shows most vendors cannot expose).
func (m *MSHR) NoteFull() { m.Stats.FullEvents++ }

// Complete releases the entry for line and returns its waiters, which the
// caller invokes after any fill latency. It panics if line has no entry.
func (m *MSHR) Complete(line Line) []func() {
	e, ok := m.entries[line]
	if !ok {
		panic("memsys: complete on line with no MSHR entry")
	}
	delete(m.entries, line)
	now := m.sched.Now()
	m.Occ.Depart(now, now-e.allocated)
	return e.waiters
}

// ResetStats clears counters and restarts occupancy tracking, preserving
// in-flight entries (the warmup boundary case).
func (m *MSHR) ResetStats() {
	m.Stats = MSHRStats{}
	now := m.sched.Now()
	m.Occ.Reset(now)
	m.Occ.Set(now, len(m.entries))
}
