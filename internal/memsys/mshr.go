package memsys

import (
	"littleslaw/internal/events"
	"littleslaw/internal/queueing"
)

// MSHRStats counts miss-status-handling-register activity.
type MSHRStats struct {
	Allocations uint64 // entries created (unique line misses forwarded)
	Coalesced   uint64 // requests merged into an existing entry
	FullEvents  uint64 // allocation attempts rejected because the queue was full
}

// MSHR models a miss-status-handling-register file: the set of unique
// outstanding line misses at one cache level (§III-A). Requests to a line
// that is already outstanding coalesce onto the existing entry instead of
// generating duplicate memory traffic. The time-weighted occupancy of this
// structure is the paper's ground-truth MLP.
//
// Entries live by value in a fixed array sized to the register count and
// are recycled through a free list, so the steady-state allocate/complete
// cycle of a run allocates nothing; waiter slices returned by Complete are
// handed back through Recycle and reused the same way.
type MSHR struct {
	capacity int
	sched    *events.Scheduler
	index    map[Line]int32 // line → slot in entries
	entries  []mshrEntry    // fixed backing array, one slot per register
	free     []int32        // recycled slots
	spare    [][]func()     // recycled waiter arrays (from Recycle)

	// Occ is the exact time-weighted occupancy of the register file.
	Occ   queueing.OccupancyStat
	Stats MSHRStats
}

type mshrEntry struct {
	allocated events.Time
	waiters   []func()
}

// NewMSHR builds an MSHR file with the given capacity.
func NewMSHR(sched *events.Scheduler, capacity int) *MSHR {
	if capacity <= 0 {
		panic("memsys: MSHR capacity must be positive")
	}
	m := &MSHR{
		capacity: capacity,
		sched:    sched,
		index:    make(map[Line]int32, capacity),
		entries:  make([]mshrEntry, capacity),
		free:     make([]int32, capacity),
	}
	for i := range m.free {
		m.free[i] = int32(capacity - 1 - i)
	}
	m.Occ.Reset(sched.Now())
	return m
}

// Capacity returns the register count.
func (m *MSHR) Capacity() int { return m.capacity }

// InFlight returns the current number of outstanding line misses.
func (m *MSHR) InFlight() int { return len(m.index) }

// Full reports whether no register is free.
func (m *MSHR) Full() bool { return len(m.index) >= m.capacity }

// Outstanding reports whether line already has an entry.
func (m *MSHR) Outstanding(line Line) bool {
	_, ok := m.index[line]
	return ok
}

// Allocate creates an entry for line. The caller must have checked Full and
// Outstanding; violating either panics, because both indicate a protocol
// bug in the hierarchy rather than a recoverable condition.
func (m *MSHR) Allocate(line Line) {
	if m.Full() {
		panic("memsys: MSHR allocate on full queue")
	}
	if _, ok := m.index[line]; ok {
		panic("memsys: duplicate MSHR allocation")
	}
	slot := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	e := &m.entries[slot]
	e.allocated = m.sched.Now()
	if e.waiters == nil && len(m.spare) > 0 {
		e.waiters = m.spare[len(m.spare)-1]
		m.spare = m.spare[:len(m.spare)-1]
	}
	m.index[line] = slot
	m.Occ.Arrive(m.sched.Now())
	m.Stats.Allocations++
}

// Coalesce attaches fn to the outstanding entry for line. fn runs when the
// line fills. It panics if the line is not outstanding.
func (m *MSHR) Coalesce(line Line, fn func()) {
	slot, ok := m.index[line]
	if !ok {
		panic("memsys: coalesce on line with no MSHR entry")
	}
	if fn != nil {
		m.entries[slot].waiters = append(m.entries[slot].waiters, fn)
	}
	m.Stats.Coalesced++
}

// NoteFull records a rejected allocation attempt (an "MSHRQ full" event,
// the stall source Table I shows most vendors cannot expose).
func (m *MSHR) NoteFull() { m.Stats.FullEvents++ }

// Complete releases the entry for line and returns its waiters, which the
// caller invokes after any fill latency and then hands back via Recycle.
// Ownership of the returned slice transfers to the caller: the freed slot
// may be re-allocated while the waiters run (a waiter can itself miss),
// so the entry detaches the slice rather than reusing it in place.
// It panics if line has no entry.
func (m *MSHR) Complete(line Line) []func() {
	slot, ok := m.index[line]
	if !ok {
		panic("memsys: complete on line with no MSHR entry")
	}
	delete(m.index, line)
	e := &m.entries[slot]
	w := e.waiters
	e.waiters = nil
	m.free = append(m.free, slot)
	now := m.sched.Now()
	m.Occ.Depart(now, now-e.allocated)
	return w
}

// Recycle returns a waiter slice obtained from Complete to the internal
// pool once its callbacks have run. The funcs are cleared so completed
// closures do not outlive their run.
func (m *MSHR) Recycle(ws []func()) {
	if cap(ws) == 0 {
		return
	}
	for i := range ws {
		ws[i] = nil
	}
	m.spare = append(m.spare, ws[:0])
}

// ResetStats clears counters and restarts occupancy tracking, preserving
// in-flight entries (the warmup boundary case).
func (m *MSHR) ResetStats() {
	m.Stats = MSHRStats{}
	now := m.sched.Now()
	m.Occ.Reset(now)
	m.Occ.Set(now, len(m.index))
}

// Reset rebinds the MSHR file to a (new) scheduler and restores it to its
// freshly-constructed state, keeping the allocated entry array, waiter
// arrays and map buckets so a pooled hierarchy reuses them across runs.
func (m *MSHR) Reset(sched *events.Scheduler) {
	m.sched = sched
	for line, slot := range m.index {
		e := &m.entries[slot]
		if e.waiters != nil {
			m.Recycle(e.waiters)
			e.waiters = nil
		}
		m.free = append(m.free, slot)
		delete(m.index, line)
	}
	m.Stats = MSHRStats{}
	// Unlike ResetStats, discard the current occupancy too: a pooled run may
	// have been abandoned with entries still in flight.
	m.Occ = queueing.OccupancyStat{}
	m.Occ.Reset(sched.Now())
}
