package memsys

import (
	"math/rand"
	"testing"

	"littleslaw/internal/events"
	"littleslaw/internal/platform"
)

func TestDRAMIdleLatencyNearPlatformTarget(t *testing.T) {
	// A single isolated read sees base + row-miss + transfer.
	for _, p := range platform.All() {
		var sched events.Scheduler
		d := NewDRAM(&sched, p)
		var latNs float64
		start := sched.Now()
		d.Access(Line(12345), false, func() {
			latNs = (sched.Now() - start).Nanoseconds()
		})
		sched.Run()
		m := p.Memory
		want := m.BaseLatencyNs + m.RowMissNs + m.TransferNs(p.LineBytes)
		if latNs < 0.98*want || latNs > 1.02*want {
			t.Errorf("%s idle read latency = %.1f ns, want ~%.1f", p.Name, latNs, want)
		}
	}
}

func TestDRAMRowBufferHits(t *testing.T) {
	p := platform.SKL()
	var sched events.Scheduler
	d := NewDRAM(&sched, p)
	// Two accesses to consecutive in-channel lines of the same row: the
	// second should be a row hit. Lines k and k+channels share a channel.
	nc := uint64(p.Memory.Channels)
	d.Access(Line(0), false, nil)
	sched.Run()
	d.Access(Line(nc), false, nil)
	sched.Run()
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("row stats = %d hits / %d misses, want 1/1", d.Stats.RowHits, d.Stats.RowMisses)
	}
}

func TestDRAMRowConflictIsSlower(t *testing.T) {
	p := platform.SKL()
	var sched events.Scheduler
	d := NewDRAM(&sched, p)
	linesPerRow := uint64(p.Memory.RowBytes / p.LineBytes)
	nc := uint64(len(d.chans))
	nb := uint64(p.Memory.BanksPerChannel)
	// Find a line on the same channel and (hashed) bank as line 0 but in a
	// different row, by searching rows that share channel 0.
	a := Line(0)
	bank0 := mix64(0) % nb
	var b Line
	for row := uint64(1); row < 10000; row++ {
		if mix64(row)%nb == bank0 {
			b = Line(row * linesPerRow * nc) // channel 0, row `row`
			break
		}
	}
	if b == 0 {
		t.Fatal("no same-bank row found (hash degenerate?)")
	}
	d.Access(a, false, nil)
	sched.Run()
	hitStart := sched.Now()
	d.Access(a, false, nil) // row hit
	sched.Run()
	hitLat := sched.Now() - hitStart
	confStart := sched.Now()
	d.Access(b, false, nil) // same bank, different row: conflict
	sched.Run()
	confLat := sched.Now() - confStart
	if confLat <= hitLat {
		t.Fatalf("row conflict (%v) not slower than row hit (%v)", confLat, hitLat)
	}
}

func TestDRAMLatencyRisesUnderLoad(t *testing.T) {
	// Fire a dense random burst and verify the mean latency exceeds idle:
	// queueing at banks/buses must emerge.
	p := platform.SKL()
	var sched events.Scheduler
	d := NewDRAM(&sched, p)
	rng := rand.New(rand.NewSource(1))
	const n = 2000
	for i := 0; i < n; i++ {
		at := events.Time(i) * events.FromNanoseconds(0.6) // ~107 GB/s injection
		line := Line(rng.Uint64() % (1 << 24))
		sched.At(at, func() { d.Access(line, false, nil) })
	}
	sched.Run()
	mean := d.Stats.MeanReadLatencyNs()
	if mean < 95 {
		t.Fatalf("loaded mean latency = %.1f ns, want well above idle (~82)", mean)
	}
	if d.Stats.Reads != n {
		t.Fatalf("reads = %d, want %d", d.Stats.Reads, n)
	}
}

func TestDRAMWritesCountedSeparately(t *testing.T) {
	p := platform.KNL()
	var sched events.Scheduler
	d := NewDRAM(&sched, p)
	done := false
	d.Access(Line(1), true, func() { done = true })
	d.Access(Line(2), false, nil)
	sched.Run()
	if !done {
		t.Fatal("write completion callback not invoked")
	}
	if d.Stats.Writes != 1 || d.Stats.Reads != 1 {
		t.Fatalf("stats = %+v", d.Stats)
	}
	if got := d.Stats.BytesMoved(p.LineBytes); got != 128 {
		t.Fatalf("bytes moved = %d, want 128", got)
	}
}

func TestDRAMOccupancyLittleLaw(t *testing.T) {
	p := platform.SKL()
	var sched events.Scheduler
	d := NewDRAM(&sched, p)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		at := events.Time(i) * events.FromNanoseconds(2)
		line := Line(rng.Uint64() % (1 << 22))
		sched.At(at, func() { d.Access(line, false, nil) })
	}
	sched.Run()
	if resid := d.Occ.LittleResidual(sched.Now()); resid > 0.02 {
		t.Fatalf("Little's law residual at DRAM = %v, want < 2%%", resid)
	}
}

func TestDRAMResetStats(t *testing.T) {
	p := platform.SKL()
	var sched events.Scheduler
	d := NewDRAM(&sched, p)
	d.Access(Line(1), false, nil)
	sched.Run()
	d.ResetStats()
	if d.Stats.Reads != 0 || d.Occ.Mean(sched.Now()) != 0 {
		t.Fatal("reset did not clear stats")
	}
}
