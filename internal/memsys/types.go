// Package memsys simulates the memory system the Little's-Law metric
// reasons about: per-core L1/L2 caches with MSHR queues, an optional shared
// L3, an L2 hardware stream prefetcher with a bounded stream table, and a
// multi-channel multi-bank memory device whose loaded latency emerges from
// bank and bus queueing.
//
// All timing is event-driven on an events.Scheduler; simulated structures
// keep exact time-weighted occupancy statistics so that the "true" MLP of a
// run can be compared against the counter-derived Little's-Law estimate.
package memsys

// Line is a cache-line address: the byte address shifted right by
// log2(line size). All structures in this package work at line granularity,
// which is also the granularity MSHRs track (§III-A).
type Line uint64

// Kind classifies a memory access presented to the hierarchy.
type Kind uint8

const (
	// Load is a demand read; the issuing thread waits for completion.
	Load Kind = iota
	// Store is a demand write (write-allocate, write-back).
	Store
	// PrefetchL2 is a software prefetch that fills the L2 only. It
	// allocates an L2 MSHR but never an L1 MSHR — the mechanism §III-C
	// exploits to sidestep a saturated L1 MSHR queue.
	PrefetchL2
	// PrefetchL1 is a software prefetch into L1 (allocates both MSHRs).
	PrefetchL1
	// hwPrefetch is generated internally by the stream prefetcher.
	hwPrefetch
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case PrefetchL2:
		return "prefetch-l2"
	case PrefetchL1:
		return "prefetch-l1"
	case hwPrefetch:
		return "hw-prefetch"
	}
	return "unknown"
}

// isDemand reports whether the access blocks a hardware thread.
func (k Kind) isDemand() bool { return k == Load || k == Store }
