package memsys

import "littleslaw/internal/platform"

// PrefetchStats counts hardware-prefetcher activity.
type PrefetchStats struct {
	Trained         uint64 // demand accesses observed
	Issued          uint64 // prefetch requests handed to the hierarchy
	StreamAllocs    uint64 // new streams tracked
	StreamEvictions uint64 // streams displaced from the bounded table
	PageStops       uint64 // prefetch frontiers halted at 4 KiB page boundaries
}

type stream struct {
	region   uint64 // 4KiB-aligned region identifier
	lastLine Line
	next     Line // next line to prefetch
	dir      int8 // +1 ascending, -1 descending, 0 untrained
	hits     int8 // consecutive in-order observations
	lastUse  uint64
}

// StreamPrefetcher models the L2 hardware stream prefetcher: a bounded
// table of sequential streams, each prefetched a fixed distance ahead of
// demand. The bounded table reproduces the paper's §IV-B observation that
// KNL's prefetcher tracks only 16 streams, so deep SMT oversubscribes it
// and prefetch coverage collapses.
type StreamPrefetcher struct {
	cfg     platform.PrefetcherConfig
	lineLog uint // log2 lines per 4KiB region
	issue   func(Line)
	table   []stream
	tick    uint64
	Stats   PrefetchStats
}

// NewStreamPrefetcher builds a prefetcher; issue receives each prefetch
// line address and routes it into the L2 (dropping it if no MSHR is free).
func NewStreamPrefetcher(cfg platform.PrefetcherConfig, lineBytes int, issue func(Line)) *StreamPrefetcher {
	linesPerRegion := 4096 / lineBytes
	if linesPerRegion < 1 {
		linesPerRegion = 1
	}
	log := uint(0)
	for 1<<log < linesPerRegion {
		log++
	}
	return &StreamPrefetcher{cfg: cfg, lineLog: log, issue: issue}
}

// ResetStats clears counters, preserving trained streams.
func (p *StreamPrefetcher) ResetStats() { p.Stats = PrefetchStats{} }

// Reset forgets all trained streams and clears counters, keeping the
// stream table allocated for reuse by a pooled hierarchy.
func (p *StreamPrefetcher) Reset() {
	p.table = p.table[:0]
	p.tick = 0
	p.Stats = PrefetchStats{}
}

// ActiveStreams returns the number of tracked streams (for tests).
func (p *StreamPrefetcher) ActiveStreams() int { return len(p.table) }

// Observe trains the prefetcher on a demand access to line and issues any
// triggered prefetches.
func (p *StreamPrefetcher) Observe(line Line) {
	if p.cfg.Streams <= 0 {
		return
	}
	p.tick++
	p.Stats.Trained++
	region := uint64(line) >> p.lineLog

	s := p.lookup(region)
	if s == nil {
		s = p.allocate(region, line)
		return
	}
	s.lastUse = p.tick
	delta := int64(line) - int64(s.lastLine)
	switch {
	case delta == 0:
		return
	case delta == 1 || delta == -1:
		d := int8(delta)
		if s.dir == d {
			if s.hits < 4 {
				s.hits++
			}
		} else {
			s.dir, s.hits = d, 1
			s.next = line + Line(d)
		}
	default:
		// Non-unit stride inside the region: retrain.
		s.dir, s.hits = 0, 0
	}
	s.lastLine = line

	if s.dir == 0 || s.hits < 2 {
		return
	}
	// Confirmed stream: keep the prefetch frontier Distance lines ahead of
	// demand, issuing at most Degree lines per trigger. Never prefetch at
	// or behind the demand frontier.
	if s.dir > 0 && s.next <= line {
		s.next = line + 1
	}
	if s.dir < 0 && s.next >= line {
		s.next = line - 1
	}
	target := int64(line) + int64(s.dir)*int64(p.cfg.Distance)
	issued := 0
	for issued < p.cfg.Degree {
		if s.dir > 0 && int64(s.next) > target {
			break
		}
		if s.dir < 0 && (int64(s.next) < target || s.next > s.lastLine) {
			break
		}
		// Hardware prefetchers cannot cross a 4 KiB page boundary: beyond
		// it the physical mapping is unknown. Streams therefore retrain at
		// every page, leaving the first lines of each page uncovered —
		// the stall component that loop tiling (fewer cold streams) and
		// software prefetching (no such limit) recover.
		if uint64(s.next)>>p.lineLog != region {
			p.Stats.PageStops++
			break
		}
		p.issue(s.next)
		p.Stats.Issued++
		s.next += Line(s.dir)
		issued++
	}
}

func (p *StreamPrefetcher) lookup(region uint64) *stream {
	for i := range p.table {
		if p.table[i].region == region {
			return &p.table[i]
		}
	}
	return nil
}

func (p *StreamPrefetcher) allocate(region uint64, line Line) *stream {
	s := stream{region: region, lastLine: line, next: line + 1, lastUse: p.tick}
	p.Stats.StreamAllocs++
	if len(p.table) < p.cfg.Streams {
		p.table = append(p.table, s)
		return &p.table[len(p.table)-1]
	}
	// Evict the least recently used stream.
	victim := 0
	for i := range p.table {
		if p.table[i].lastUse < p.table[victim].lastUse {
			victim = i
		}
	}
	p.table[victim] = s
	p.Stats.StreamEvictions++
	return &p.table[victim]
}
