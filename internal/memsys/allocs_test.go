package memsys

import (
	"testing"

	"littleslaw/internal/events"
	"littleslaw/internal/platform"
)

// TestMSHRHotPathAllocs pins the pooled MSHR steady state: once the entry
// free list and waiter-array spare pool are warm, an allocate → coalesce →
// complete → recycle cycle — the per-miss hot path of every simulation —
// must not allocate at all.
func TestMSHRHotPathAllocs(t *testing.T) {
	sched := &events.Scheduler{}
	m := NewMSHR(sched, 16)
	cycle := func() {
		for i := 0; i < 16; i++ {
			m.Allocate(Line(i))
			m.Coalesce(Line(i), func() {})
			m.Coalesce(Line(i), func() {})
		}
		for i := 0; i < 16; i++ {
			m.Recycle(m.Complete(Line(i)))
		}
	}
	cycle() // warm the waiter-array spare pool
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("warmed MSHR allocate/complete cycle allocates %.1f objects/run, want 0", allocs)
	}
}

// TestSchedulerHotPathAllocs pins the de-boxed event heap: pushing and
// popping events within existing heap capacity must not allocate (the
// container/heap interface it replaced boxed every element).
func TestSchedulerHotPathAllocs(t *testing.T) {
	sched := &events.Scheduler{}
	fn := func() {}
	cycle := func() {
		for i := 0; i < 64; i++ {
			sched.After(events.Duration(i), fn)
		}
		for sched.Step() {
		}
	}
	cycle() // grow the heap's backing array once
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("warmed scheduler push/pop cycle allocates %.1f objects/run, want 0", allocs)
	}
}

// TestHierarchyResetReuse pins the pooled-hierarchy contract: acquiring a
// released hierarchy of the same geometry reuses the object, and Reset
// restores freshly-constructed behaviour (no residual cache or prefetcher
// state changing hit patterns).
func TestHierarchyResetReuse(t *testing.T) {
	p := platform.SKL()

	run := func(h *Hierarchy, node *Node) (hits, misses uint64) {
		for i := 0; i < 256; i++ {
			h.Access(uint64(i)*8, Load, nil)
			node.Sched.Run()
		}
		return h.L1.Stats.Hits, h.L1.Stats.Misses
	}

	sched1 := &events.Scheduler{}
	node1 := NewNode(sched1, p)
	h1 := AcquireHierarchy(node1)
	hits1, misses1 := run(h1, node1)
	ReleaseHierarchy(h1)

	sched2 := &events.Scheduler{}
	node2 := NewNode(sched2, p)
	h2 := AcquireHierarchy(node2)
	if h2 != h1 {
		t.Log("pool returned a different hierarchy (GC ran); behaviour check still applies")
	}
	hits2, misses2 := run(h2, node2)
	if hits1 != hits2 || misses1 != misses2 {
		t.Fatalf("pooled hierarchy behaved differently: fresh %d/%d hits/misses, reused %d/%d",
			hits1, misses1, hits2, misses2)
	}
}
