package memsys

// CacheStats counts cache activity over a measurement window.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// MissRatio returns misses / (hits+misses), or 0 with no accesses.
func (s CacheStats) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement. It operates on line addresses; timing lives in Hierarchy.
type Cache struct {
	sets    [][]way // each set ordered MRU-first
	setMask uint64
	Stats   CacheStats
}

// NewCache builds a cache with the given set count and associativity.
// setCount must be a power of two.
func NewCache(setCount, ways int) *Cache {
	if setCount <= 0 || setCount&(setCount-1) != 0 {
		panic("memsys: cache set count must be a positive power of two")
	}
	if ways <= 0 {
		panic("memsys: cache ways must be positive")
	}
	c := &Cache{sets: make([][]way, setCount), setMask: uint64(setCount - 1)}
	for i := range c.sets {
		c.sets[i] = make([]way, 0, ways)
	}
	return c
}

// ResetStats clears counters without touching cache contents.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// Reset empties the cache and clears counters, keeping the per-set way
// arrays allocated so a pooled hierarchy can reuse them.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.Stats = CacheStats{}
}

func (c *Cache) set(line Line) *[]way { return &c.sets[uint64(line)&c.setMask] }
func (c *Cache) tag(line Line) uint64 { return uint64(line) >> 0 } // full line address as tag

// Probe reports whether line is present without updating LRU or stats.
func (c *Cache) Probe(line Line) bool {
	for _, w := range *c.set(line) {
		if w.valid && w.tag == c.tag(line) {
			return true
		}
	}
	return false
}

// Access looks up line, updating LRU and hit/miss statistics. A write hit
// marks the line dirty. It reports whether the access hit.
func (c *Cache) Access(line Line, write bool) bool {
	set := c.set(line)
	tag := c.tag(line)
	for i, w := range *set {
		if w.valid && w.tag == tag {
			// Move to MRU position.
			copy((*set)[1:i+1], (*set)[:i])
			w.dirty = w.dirty || write
			(*set)[0] = w
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Fill inserts line (marking it dirty if dirty), evicting the LRU way if
// the set is full. It returns the victim line and whether the victim was
// dirty (requiring a writeback). Filling a line that is already present
// only updates its dirty bit.
func (c *Cache) Fill(line Line, dirty bool) (victim Line, writeback bool) {
	set := c.set(line)
	tag := c.tag(line)
	for i, w := range *set {
		if w.valid && w.tag == tag {
			copy((*set)[1:i+1], (*set)[:i])
			w.dirty = w.dirty || dirty
			(*set)[0] = w
			return 0, false
		}
	}
	c.Stats.Fills++
	if len(*set) < cap(*set) {
		*set = append(*set, way{})
		copy((*set)[1:], (*set)[:len(*set)-1])
		(*set)[0] = way{tag: tag, valid: true, dirty: dirty}
		return 0, false
	}
	// Evict LRU (last element).
	v := (*set)[len(*set)-1]
	copy((*set)[1:], (*set)[:len(*set)-1])
	(*set)[0] = way{tag: tag, valid: true, dirty: dirty}
	c.Stats.Evictions++
	if v.dirty {
		c.Stats.Writebacks++
	}
	return Line(v.tag), v.dirty
}

// Invalidate removes line if present, returning whether it was dirty.
func (c *Cache) Invalidate(line Line) (present, dirty bool) {
	set := c.set(line)
	tag := c.tag(line)
	for i, w := range *set {
		if w.valid && w.tag == tag {
			*set = append((*set)[:i], (*set)[i+1:]...)
			return true, w.dirty
		}
	}
	return false, false
}

// Len returns the number of resident lines (for tests).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}
