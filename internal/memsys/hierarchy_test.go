package memsys

import (
	"math/rand"
	"testing"

	"littleslaw/internal/events"
	"littleslaw/internal/platform"
)

func newCore(p *platform.Platform) (*events.Scheduler, *Node, *Hierarchy) {
	sched := &events.Scheduler{}
	node := NewNode(sched, p)
	return sched, node, NewHierarchy(node)
}

func TestHierarchyL1Hit(t *testing.T) {
	p := platform.SKL()
	sched, _, h := newCore(p)
	done := 0
	h.Access(0x1000, Load, func() { done++ })
	sched.Run()
	firstMissTime := sched.Now()
	if done != 1 {
		t.Fatal("load never completed")
	}
	// Second access to the same line: an L1 hit, orders of magnitude faster.
	h.Access(0x1008, Load, func() { done++ })
	sched.Run()
	hitLat := sched.Now() - firstMissTime
	if done != 2 {
		t.Fatal("second load never completed")
	}
	wantHit := p.Clock().Cycles(p.L1.HitCycles)
	if hitLat != wantHit {
		t.Fatalf("L1 hit latency = %v ps, want %v", hitLat, wantHit)
	}
	if firstMissTime < 50*events.Nanosecond {
		t.Fatalf("cold miss latency = %v, implausibly fast", firstMissTime)
	}
}

func TestHierarchyMissLatencyNearIdleDRAM(t *testing.T) {
	for _, p := range platform.All() {
		sched, _, h := newCore(p)
		var lat events.Time
		h.Access(0xABC000, Load, func() { lat = sched.Now() })
		sched.Run()
		ns := lat.Nanoseconds()
		// Idle full-path latency: L1+L2(+L3 lookup rolled into base)+DRAM.
		low, high := 70.0, 250.0
		if ns < low || ns > high {
			t.Errorf("%s cold load-to-use = %.1f ns, want within [%v, %v]", p.Name, ns, low, high)
		}
	}
}

func TestHierarchyCoalescingSameLine(t *testing.T) {
	p := platform.SKL()
	sched, node, h := newCore(p)
	done := 0
	// Two loads to the same 64B line issued back to back: one memory read.
	h.Access(0x2000, Load, func() { done++ })
	h.Access(0x2010, Load, func() { done++ })
	sched.Run()
	if done != 2 {
		t.Fatalf("completions = %d, want 2", done)
	}
	if node.DRAM.Stats.Reads != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (coalesced)", node.DRAM.Stats.Reads)
	}
	if h.L1M.Stats.Coalesced != 1 {
		t.Fatalf("L1 MSHR coalesced = %d, want 1", h.L1M.Stats.Coalesced)
	}
}

func TestHierarchyL1MSHRSaturation(t *testing.T) {
	p := platform.SKL()
	sched, _, h := newCore(p)
	// Issue 3× the L1 MSHR capacity of distinct-line loads at once.
	n := 3 * p.L1.MSHRs
	done := 0
	for i := 0; i < n; i++ {
		h.Access(uint64(i)*4096, Load, func() { done++ })
	}
	if h.L1M.InFlight() != p.L1.MSHRs {
		t.Fatalf("in flight = %d, want MSHR cap %d", h.L1M.InFlight(), p.L1.MSHRs)
	}
	if h.L1M.Occ.Peak() > p.L1.MSHRs {
		t.Fatalf("occupancy peak %d exceeded capacity %d", h.L1M.Occ.Peak(), p.L1.MSHRs)
	}
	sched.Run()
	if done != n {
		t.Fatalf("completions = %d, want %d", done, n)
	}
	if h.Stats.L1FullStallPs == 0 {
		t.Fatal("no L1 MSHR-full stall time recorded despite oversubscription")
	}
	if h.L1M.Stats.FullEvents == 0 {
		t.Fatal("no full events recorded")
	}
}

func TestHierarchySoftwarePrefetchL2BypassesL1MSHR(t *testing.T) {
	p := platform.SKL()
	sched, _, h := newCore(p)
	for i := 0; i < 8; i++ {
		h.Access(uint64(i)*4096, PrefetchL2, nil)
	}
	if h.L1M.InFlight() != 0 {
		t.Fatalf("L2 prefetches consumed %d L1 MSHRs", h.L1M.InFlight())
	}
	if h.L2M.InFlight() != 8 {
		t.Fatalf("L2 MSHRs in flight = %d, want 8", h.L2M.InFlight())
	}
	sched.Run()
	// A demand load to a prefetched line now hits in L2: its L1 MSHR
	// residency is the short L2 round trip, not a memory access.
	start := sched.Now()
	var lat events.Time
	h.Access(0, Load, func() { lat = sched.Now() - start })
	sched.Run()
	maxL2Trip := p.Clock().Cycles(2*p.L2.HitCycles + 2*p.L1.HitCycles)
	if lat > maxL2Trip {
		t.Fatalf("post-prefetch load latency %v ps exceeds L2 trip bound %v", lat, maxL2Trip)
	}
}

func TestHierarchyHardwarePrefetcherCutsDemandLatency(t *testing.T) {
	p := platform.SKL()

	run := func(streams int) float64 {
		pp := platform.SKL()
		pp.Prefetcher.Streams = streams
		sched, _, h := newCore(pp)
		var total events.Time
		count := 0
		var issue func(i int)
		issue = func(i int) {
			if i >= 400 {
				return
			}
			start := sched.Now()
			h.Access(uint64(i)*64, Load, func() {
				total += sched.Now() - start
				count++
				issue(i + 1)
			})
		}
		issue(0)
		sched.Run()
		return float64(total) / float64(count)
	}

	with := run(p.Prefetcher.Streams)
	without := run(0)
	if with >= without*0.6 {
		t.Fatalf("prefetcher barely helps a pure stream: %.0f ps with vs %.0f ps without", with, without)
	}
}

func TestHierarchyWritebackTraffic(t *testing.T) {
	p := platform.SKL()
	sched, node, h := newCore(p)
	// Stream stores over a footprint much larger than L1+L2+L3: every
	// line is eventually evicted dirty and written back.
	footprint := uint64(p.L3.SizeBytes) * 4
	step := uint64(p.LineBytes)
	var issue func(addr uint64)
	issue = func(addr uint64) {
		if addr >= footprint {
			return
		}
		h.Access(addr, Store, func() { issue(addr + step) })
	}
	issue(0)
	sched.Run()
	if node.DRAM.Stats.Writes == 0 {
		t.Fatal("no writeback traffic from a dirty streaming store workload")
	}
	// Writebacks should approach reads for a store-only stream.
	ratio := float64(node.DRAM.Stats.Writes) / float64(node.DRAM.Stats.Reads)
	if ratio < 0.5 {
		t.Fatalf("write/read ratio = %.2f, want ≥ 0.5", ratio)
	}
}

func TestHierarchySharedL3AcrossCores(t *testing.T) {
	p := platform.SKL()
	sched := &events.Scheduler{}
	node := NewNode(sched, p)
	h1 := NewHierarchy(node)
	h2 := NewHierarchy(node)
	// Core 1 brings a line in (fills L3); core 2's miss should then be
	// satisfied by the shared L3 with no second memory read.
	h1.Access(0x9000, Load, nil)
	sched.Run()
	reads := node.DRAM.Stats.Reads
	h2.Access(0x9000, Load, nil)
	sched.Run()
	if node.DRAM.Stats.Reads != reads {
		t.Fatalf("second core's access went to memory despite L3 hit")
	}
}

func TestHierarchyNoL3OnKNL(t *testing.T) {
	p := platform.KNL()
	sched := &events.Scheduler{}
	node := NewNode(sched, p)
	if node.L3 != nil {
		t.Fatal("KNL node has an L3")
	}
	h1 := NewHierarchy(node)
	h2 := NewHierarchy(node)
	h1.Access(0x9000, Load, nil)
	sched.Run()
	h2.Access(0x9000, Load, nil)
	sched.Run()
	if node.DRAM.Stats.Reads != 2 {
		t.Fatalf("DRAM reads = %d, want 2 (no shared cache between KNL cores)", node.DRAM.Stats.Reads)
	}
}

// Property-style stress: random mixes of loads, stores and prefetches never
// violate MSHR capacity, never deadlock, and complete every demand access.
func TestHierarchyStress(t *testing.T) {
	for _, p := range platform.All() {
		rng := rand.New(rand.NewSource(42))
		sched, _, h := newCore(p)
		issued, completed := 0, 0
		var step func()
		step = func() {
			if issued >= 3000 {
				return
			}
			issued++
			addr := rng.Uint64() % (1 << 26)
			switch rng.Intn(10) {
			case 0:
				h.Access(addr, PrefetchL2, nil)
				completed++ // prefetches do not block
				sched.After(100, step)
			case 1, 2:
				h.Access(addr, Store, func() { completed++; step() })
			default:
				h.Access(addr, Load, func() { completed++; step() })
			}
			if h.L1M.InFlight() > p.L1.MSHRs || h.L2M.InFlight() > p.L2.MSHRs {
				t.Fatalf("%s: MSHR capacity violated", p.Name)
			}
		}
		// Several independent chains to create MSHR pressure.
		for i := 0; i < 16; i++ {
			step()
		}
		sched.Run()
		if completed != issued {
			t.Fatalf("%s: completed %d of %d accesses", p.Name, completed, issued)
		}
	}
}

func TestMemorySideCache(t *testing.T) {
	p := platform.KNLCacheMode()
	sched := &events.Scheduler{}
	node := NewNode(sched, p)
	if node.SlowDRAM == nil {
		t.Fatal("cache-mode node has no far tier")
	}
	h := NewHierarchy(node)

	// First touch: memory-side cache miss → far tier read (+ fast fill).
	var coldLat events.Time
	h.Access(0x100000, Load, func() { coldLat = sched.Now() })
	sched.Run()
	if node.SlowDRAM.Stats.Reads != 1 {
		t.Fatalf("far-tier reads = %d, want 1", node.SlowDRAM.Stats.Reads)
	}
	if node.MCMisses != 1 || node.MCHits != 0 {
		t.Fatalf("mc stats = %d/%d, want 0 hits / 1 miss", node.MCHits, node.MCMisses)
	}

	// Re-touch after eviction from L1/L2: served by the fast tier. Evict
	// by stressing the L2 sets with many conflicting lines (draining at a
	// stride coprime to the set count so drops do not align with sets).
	for i := 1; i <= 40000; i++ {
		kind := PrefetchL2
		if i%16 == 0 {
			kind = Load // loads churn the L1 as well
		}
		h.Access(0x100000+uint64(i)*uint64(p.LineBytes), kind, nil)
		if i%24 == 0 {
			sched.Run()
		}
	}
	sched.Run()
	slowBefore := node.SlowDRAM.Stats.Reads
	start := sched.Now()
	var warmLat events.Time
	h.Access(0x100000, Load, func() { warmLat = sched.Now() - start })
	sched.Run()
	if node.SlowDRAM.Stats.Reads != slowBefore {
		t.Fatal("warm re-access went to the far tier")
	}
	if warmLat >= coldLat {
		t.Fatalf("warm access (%v) not faster than cold (%v)", warmLat, coldLat)
	}
	if node.MCHitFraction() <= 0 {
		t.Fatal("no memory-side cache hits recorded")
	}
}

func TestFlatModeHasNoFarTier(t *testing.T) {
	p := platform.KNL()
	sched := &events.Scheduler{}
	node := NewNode(sched, p)
	if node.SlowDRAM != nil {
		t.Fatal("flat mode must not build a far tier")
	}
	if node.MCHitFraction() != 0 {
		t.Fatal("flat mode reports memory-cache hits")
	}
}
