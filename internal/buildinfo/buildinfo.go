// Package buildinfo derives one version string for every binary in the
// module from the metadata the Go linker already embeds, so the tools
// agree on what they are without a stamping step in the build.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version returns the best identity the build metadata offers: the module
// version when built from a tagged release, else the VCS revision (with a
// -dirty suffix when the tree was modified), else "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// Print writes the one-line -version banner every tool shares.
func Print(w io.Writer, tool string) {
	fmt.Fprintf(w, "%s %s %s %s/%s\n", tool, Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
