package buildinfo

import (
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("empty version")
	}
}

func TestPrintBanner(t *testing.T) {
	var sb strings.Builder
	Print(&sb, "lltool")
	out := sb.String()
	if !strings.HasPrefix(out, "lltool ") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("banner = %q", out)
	}
	if fields := strings.Fields(out); len(fields) != 4 {
		t.Fatalf("banner has %d fields, want 4: %q", len(fields), out)
	}
}
