package roofline

import (
	"math"
	"strings"
	"testing"

	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// knlProfile is the KNL loaded-latency curve from the paper's published
// values, so the Figure-2 ceilings can be checked against the figure.
func knlProfile() *queueing.Curve {
	return queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 1, LatencyNs: 166}, {BandwidthGBs: 122.9, LatencyNs: 167},
		{BandwidthGBs: 233, LatencyNs: 180}, {BandwidthGBs: 253, LatencyNs: 187},
		{BandwidthGBs: 296, LatencyNs: 209}, {BandwidthGBs: 344, LatencyNs: 238},
		{BandwidthGBs: 360, LatencyNs: 300},
	})
}

func TestPeakGFLOPs(t *testing.T) {
	// Figure 2's horizontal roof: 2867 GFLOP/s on KNL.
	got := PeakGFLOPs(platform.KNL())
	if math.Abs(got-2867.2) > 1 {
		t.Fatalf("KNL peak = %.1f GFLOP/s, want 2867 (paper Fig. 2)", got)
	}
	// SKL: 24 × 2.1G × 8 lanes × 2 FMA × 2 = 1612.8.
	if got := PeakGFLOPs(platform.SKL()); math.Abs(got-1612.8) > 1 {
		t.Fatalf("SKL peak = %.1f", got)
	}
}

func TestKNLL1MSHRCeilingNearPaperFigure(t *testing.T) {
	// Figure 2 draws the L1-MSHR ceiling at 256 GB/s (y-intercept 8):
	// 64 cores × 12 MSHRs × 64 B / ~192 ns.
	m, err := New(platform.KNL(), knlProfile())
	if err != nil {
		t.Fatal(err)
	}
	var l1 Ceiling
	for _, c := range m.Ceilings {
		if c.Name == "L1 MSHRs" {
			l1 = c
		}
	}
	if l1.Name == "" {
		t.Fatal("no L1 MSHR ceiling")
	}
	if l1.BandwidthGBs < 230 || l1.BandwidthGBs > 285 {
		t.Fatalf("L1 MSHR ceiling = %.1f GB/s, paper draws 256", l1.BandwidthGBs)
	}
	// Ceilings are ordered: DRAM ≥ L2-MSHR ≥ L1-MSHR.
	for i := 1; i < len(m.Ceilings); i++ {
		if m.Ceilings[i].BandwidthGBs > m.Ceilings[i-1].BandwidthGBs {
			t.Fatalf("ceilings not descending: %+v", m.Ceilings)
		}
	}
}

func TestBaselineVsOptimizedPoints(t *testing.T) {
	// The Figure-2 narrative: baseline ISx (O) sits essentially at the
	// L1-MSHR ceiling; the prefetched version (O1) breaks through it and
	// presses toward the L2/DRAM roof.
	m, err := New(platform.KNL(), knlProfile())
	if err != nil {
		t.Fatal(err)
	}
	base := m.BindingCeiling(233)
	if base.Name != "L1 MSHRs" {
		t.Fatalf("baseline at 233 GB/s binds on %q, want the L1 MSHR ceiling", base.Name)
	}
	opt := m.BindingCeiling(344)
	if opt.Name == "L1 MSHRs" {
		t.Fatal("optimized point still reported under the L1 ceiling")
	}
}

func TestAttainableGFLOPs(t *testing.T) {
	m, err := New(platform.KNL(), knlProfile())
	if err != nil {
		t.Fatal(err)
	}
	roof := m.Ceilings[0]
	// Low intensity: bandwidth-limited slope.
	if got := m.AttainableGFLOPs(roof, 0.25); math.Abs(got-roof.BandwidthGBs*0.25) > 1e-9 {
		t.Fatalf("slope region = %v", got)
	}
	// High intensity: flat at peak.
	if got := m.AttainableGFLOPs(roof, 1e6); got != m.PeakGFLOPs {
		t.Fatalf("peak region = %v, want %v", got, m.PeakGFLOPs)
	}
}

func TestMSHRCeilingFormula(t *testing.T) {
	p := platform.KNL()
	// 64 × 12 × 64 / 192 ns = 256 GB/s.
	if got := MSHRCeiling(p, 12, 192); math.Abs(got-256) > 0.5 {
		t.Fatalf("MSHRCeiling = %.1f, want 256", got)
	}
	if MSHRCeiling(p, 12, 0) != 0 {
		t.Fatal("zero latency must yield zero ceiling")
	}
}

func TestAddPointAndCSV(t *testing.T) {
	m, err := New(platform.KNL(), knlProfile())
	if err != nil {
		t.Fatal(err)
	}
	m.AddPoint("O (base)", 233, 20)
	m.AddPoint("O1 (optimized)", 344, 29)
	m.AddPoint("ignored", 0, 5) // zero bandwidth is dropped
	if len(m.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(m.Points))
	}
	var sb strings.Builder
	if err := m.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"intensity", "L1 MSHRs", "DRAM peak", "# point O (base)"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q", want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(platform.KNL(), nil); err == nil {
		t.Fatal("nil profile accepted")
	}
	bad := platform.KNL()
	bad.Cores = 0
	if _, err := New(bad, knlProfile()); err == nil {
		t.Fatal("invalid platform accepted")
	}
}
