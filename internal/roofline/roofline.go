// Package roofline implements the roofline model (Williams et al., CACM
// 2009) extended with the paper's contribution to it (§IV-A, Figure 2): an
// additional bandwidth ceiling imposed by the MSHR file that binds the
// routine. For a random-access routine the L1 MSHR file caps the node's
// usable bandwidth at
//
//	cores × L1MSHRs × lineSize / loadedLatency
//
// well below the DRAM roof — which is why ISx on KNL hits a ceiling at
// ~256 GB/s that the classic model cannot explain, and why L2 software
// prefetching (moving the in-flight window to the larger L2 file) breaks
// through it.
package roofline

import (
	"fmt"
	"io"
	"sort"

	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// Ceiling is one bandwidth roof in GB/s with its provenance.
type Ceiling struct {
	Name         string
	BandwidthGBs float64
}

// Point is a measured application point on the plot.
type Point struct {
	Name      string
	Intensity float64 // FLOPs per byte of memory traffic
	GFLOPs    float64 // achieved performance
}

// Model is a roofline chart for one platform.
type Model struct {
	Platform   string
	PeakGFLOPs float64
	Ceilings   []Ceiling // sorted descending; index 0 is the DRAM roof
	Points     []Point
}

// PeakGFLOPs computes the platform's peak double-precision rate:
// cores × frequency × vector lanes × 2 FMA units × 2 flops.
func PeakGFLOPs(p *platform.Platform) float64 {
	return float64(p.Cores) * p.FreqHz * float64(p.VectorLanes64) * 2 * 2 / 1e9
}

// MSHRCeiling returns the bandwidth ceiling imposed by an MSHR file of the
// given per-core capacity at the given loaded latency.
func MSHRCeiling(p *platform.Platform, mshrs int, loadedLatencyNs float64) float64 {
	if loadedLatencyNs <= 0 {
		return 0
	}
	return float64(p.Cores) * float64(mshrs) * float64(p.LineBytes) / loadedLatencyNs
}

// New builds the Figure-2 model for a platform: the DRAM roof plus the L1
// and L2 MSHR ceilings evaluated at the loaded latency from the measured
// profile (self-consistently: each ceiling is evaluated at the latency the
// curve reports for that ceiling's bandwidth).
func New(p *platform.Platform, profile *queueing.Curve) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if profile == nil {
		return nil, fmt.Errorf("roofline: nil profile")
	}
	m := &Model{Platform: p.Name, PeakGFLOPs: PeakGFLOPs(p)}
	m.Ceilings = append(m.Ceilings, Ceiling{Name: "DRAM peak", BandwidthGBs: p.PeakGBs()})

	for _, c := range []struct {
		name  string
		mshrs int
	}{
		{"L2 MSHRs", p.L2.MSHRs},
		{"L1 MSHRs", p.L1.MSHRs},
	} {
		// Fixed point: BW = cores×mshrs×cls/lat(BW).
		n := float64(p.Cores * c.mshrs)
		bw, _ := profile.SolveEquilibrium(n, p.LineBytes)
		if bw > p.PeakGBs() {
			bw = p.PeakGBs()
		}
		m.Ceilings = append(m.Ceilings, Ceiling{Name: c.name, BandwidthGBs: bw})
	}
	sort.Slice(m.Ceilings, func(i, j int) bool {
		return m.Ceilings[i].BandwidthGBs > m.Ceilings[j].BandwidthGBs
	})
	return m, nil
}

// AddPoint places a measured application on the chart.
func (m *Model) AddPoint(name string, bwGBs, gflops float64) {
	if bwGBs <= 0 {
		return
	}
	m.Points = append(m.Points, Point{
		Name:      name,
		Intensity: gflops / bwGBs,
		GFLOPs:    gflops,
	})
}

// AttainableGFLOPs evaluates a roof at an arithmetic intensity: the
// classic min(peak, ceiling×intensity).
func (m *Model) AttainableGFLOPs(ceiling Ceiling, intensity float64) float64 {
	v := ceiling.BandwidthGBs * intensity
	if v > m.PeakGFLOPs {
		return m.PeakGFLOPs
	}
	return v
}

// BindingCeiling returns the lowest ceiling at or above the point's
// bandwidth — the roof the application is actually pressed against.
func (m *Model) BindingCeiling(bwGBs float64) Ceiling {
	best := m.Ceilings[0]
	for _, c := range m.Ceilings {
		if c.BandwidthGBs >= bwGBs && c.BandwidthGBs <= best.BandwidthGBs {
			best = c
		}
	}
	return best
}

// WriteCSV emits the roofline series (one column per ceiling) over a
// log-spaced intensity range, followed by the points — the data behind
// Figure 2.
func (m *Model) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "intensity"); err != nil {
		return err
	}
	for _, c := range m.Ceilings {
		if _, err := fmt.Fprintf(w, ",%s", c.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, ",peak"); err != nil {
		return err
	}
	for x := 0.0625; x <= 1024; x *= 2 {
		if _, err := fmt.Fprintf(w, "%g", x); err != nil {
			return err
		}
		for _, c := range m.Ceilings {
			if _, err := fmt.Fprintf(w, ",%.2f", m.AttainableGFLOPs(c, x)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, ",%.2f\n", m.PeakGFLOPs); err != nil {
			return err
		}
	}
	for _, pt := range m.Points {
		if _, err := fmt.Fprintf(w, "# point %s: intensity=%.4f gflops=%.2f\n", pt.Name, pt.Intensity, pt.GFLOPs); err != nil {
			return err
		}
	}
	return nil
}
