// Package cpu models the execution side of the node: hardware threads that
// issue memory operations against a core's memory hierarchy.
//
// The model deliberately abstracts the out-of-order pipeline into the two
// quantities the paper's metric cares about (§III-A): how quickly a thread
// can issue memory operations (the compute gap between operations, shaped
// by vectorization and scalar pipeline quality) and how many demand misses
// it can keep in flight at once (the demand window, shaped by ROB/load
// queue depth and capped in hardware by the MSHR files in memsys).
package cpu

import (
	"littleslaw/internal/events"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
)

// Op is one memory operation produced by a Generator.
type Op struct {
	Addr uint64      // byte address
	Kind memsys.Kind // Load, Store, PrefetchL2, PrefetchL1
	// GapCycles is the compute delay, in core cycles, between the issue of
	// the previous operation and this one: the instruction work separating
	// memory operations in the loop body.
	GapCycles float64
	// Work is the number of application elements this operation completes;
	// the simulator sums it to compute throughput-based speedups.
	Work float64
	// Barrier makes the thread drain all outstanding demand operations
	// before issuing this one — the dependency structure of wavefront
	// sweeps (SNAP) and other serialising recurrences.
	Barrier bool
	// Async marks a store that retires through the store buffer: it
	// occupies neither the demand window nor a barrier, draining in the
	// background (it still generates its cache and memory traffic).
	Async bool
}

// Generator produces a hardware thread's memory-operation stream.
// Implementations are single-threaded; each hardware thread owns one.
type Generator interface {
	// Next returns the next operation, or ok=false when the stream ends.
	Next() (op Op, ok bool)
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func() (Op, bool)

// Next implements Generator.
func (f GeneratorFunc) Next() (Op, bool) { return f() }

// SliceGen replays a fixed slice of operations (test helper).
type SliceGen struct {
	Ops []Op
	pos int
}

// Next implements Generator.
func (g *SliceGen) Next() (Op, bool) {
	if g.pos >= len(g.Ops) {
		return Op{}, false
	}
	op := g.Ops[g.pos]
	g.pos++
	return op, true
}

// ThreadStats reports a hardware thread's progress.
type ThreadStats struct {
	Issued    uint64  // operations issued
	Retired   uint64  // demand operations completed
	Work      float64 // application elements completed
	FinishPs  events.Time
	Finished  bool
	WindowCap int
	// LoadLatencyPs accumulates issue-to-complete time of blocking demand
	// operations; LoadLatencyPs/Retired is the mean load-to-use latency a
	// PEBS-style counter would sample (§II).
	LoadLatencyPs uint64
}

// MeanLoadLatencyNs returns the thread's average demand load-to-use
// latency in nanoseconds.
func (s ThreadStats) MeanLoadLatencyNs() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.LoadLatencyPs) / float64(s.Retired) / 1e3
}

// Thread is one hardware thread executing a Generator against a Hierarchy.
type Thread struct {
	sched  *events.Scheduler
	clock  events.Clock
	hier   *memsys.Hierarchy
	gen    Generator
	window int
	// gapScale multiplies every operation's compute gap; the simulator sets
	// it from SMT occupancy and the platform's scalar issue penalty.
	gapScale float64

	outstanding  int
	nextReady    events.Time
	wakePending  bool
	exhausted    bool
	pendingOp    Op
	hasPendingOp bool

	// OnFinish, if set, runs once when the thread fully drains.
	OnFinish func()

	Stats ThreadStats
}

// NewThread builds a thread. window is the maximum number of demand
// operations kept in flight; gapScale scales compute gaps (≥1).
func NewThread(sched *events.Scheduler, plat *platform.Platform, hier *memsys.Hierarchy, gen Generator, window int, gapScale float64) *Thread {
	if window < 1 {
		window = 1
	}
	if gapScale < 1 {
		gapScale = 1
	}
	return &Thread{
		sched:    sched,
		clock:    plat.Clock(),
		hier:     hier,
		gen:      gen,
		window:   window,
		gapScale: gapScale,
		Stats:    ThreadStats{WindowCap: window},
	}
}

// Start begins execution. The thread drives itself via scheduler events and
// completion callbacks until its generator is exhausted and all outstanding
// operations have retired.
func (t *Thread) Start() { t.pump() }

// Finished reports whether the thread has fully drained.
func (t *Thread) Finished() bool { return t.Stats.Finished }

// Hier returns the hierarchy the thread issues into.
func (t *Thread) Hier() *memsys.Hierarchy { return t.hier }

// Outstanding returns the number of demand operations in flight.
func (t *Thread) Outstanding() int { return t.outstanding }

// pump issues as many operations as the window and compute pacing allow.
func (t *Thread) pump() {
	for {
		if t.exhausted {
			t.maybeFinish()
			return
		}
		if t.outstanding >= t.window {
			return // a completion callback will re-pump
		}
		now := t.sched.Now()
		if now < t.nextReady {
			if !t.wakePending {
				t.wakePending = true
				t.sched.At(t.nextReady, func() {
					t.wakePending = false
					t.pump()
				})
			}
			return
		}
		op, ok := t.nextOp()
		if !ok {
			t.exhausted = true
			t.maybeFinish()
			return
		}
		if op.Barrier && t.outstanding > 0 {
			// Stash the op; a completion callback will re-pump.
			t.pendingOp, t.hasPendingOp = op, true
			return
		}
		t.issue(op, now)
	}
}

func (t *Thread) nextOp() (Op, bool) {
	if t.hasPendingOp {
		t.hasPendingOp = false
		return t.pendingOp, true
	}
	return t.gen.Next()
}

func (t *Thread) issue(op Op, now events.Time) {
	t.Stats.Issued++
	t.nextReady = now + t.clock.Cycles(op.GapCycles*t.gapScale)
	work := op.Work
	switch {
	case op.Async && (op.Kind == memsys.Load || op.Kind == memsys.Store):
		t.hier.Access(op.Addr, op.Kind, nil)
		t.Stats.Retired++
		t.Stats.Work += work
	case op.Kind == memsys.Load || op.Kind == memsys.Store:
		t.outstanding++
		t.hier.Access(op.Addr, op.Kind, func() {
			t.outstanding--
			t.Stats.Retired++
			t.Stats.Work += work
			t.Stats.LoadLatencyPs += uint64(t.sched.Now() - now)
			t.pump()
		})
	default:
		// Prefetches retire immediately and do not occupy the window.
		t.hier.Access(op.Addr, op.Kind, nil)
		t.Stats.Work += work
	}
}

func (t *Thread) maybeFinish() {
	if t.exhausted && t.outstanding == 0 && !t.Stats.Finished {
		t.Stats.Finished = true
		t.Stats.FinishPs = t.sched.Now()
		if t.OnFinish != nil {
			t.OnFinish()
		}
	}
}

// Core groups the hardware threads sharing one physical core's hierarchy.
type Core struct {
	Hier    *memsys.Hierarchy
	Threads []*Thread
}

// NewCore attaches a core with the given per-thread generators to node.
// window is the per-thread demand window; gapScale the per-thread compute
// gap multiplier (from SMT sharing and scalar pipeline penalties).
func NewCore(node *memsys.Node, gens []Generator, window int, gapScale float64) *Core {
	return NewCoreWith(node, memsys.NewHierarchy(node), gens, window, gapScale)
}

// NewCoreWith is NewCore with a caller-supplied hierarchy (e.g. one drawn
// from the memsys pool), which must already be attached to node.
func NewCoreWith(node *memsys.Node, hier *memsys.Hierarchy, gens []Generator, window int, gapScale float64) *Core {
	c := &Core{Hier: hier, Threads: make([]*Thread, 0, len(gens))}
	for _, g := range gens {
		c.Threads = append(c.Threads, NewThread(node.Sched, node.Plat, hier, g, window, gapScale))
	}
	return c
}

// Start launches all threads.
func (c *Core) Start() {
	for _, t := range c.Threads {
		t.Start()
	}
}

// Finished reports whether every thread has drained.
func (c *Core) Finished() bool {
	for _, t := range c.Threads {
		if !t.Finished() {
			return false
		}
	}
	return true
}

// Work sums completed work across threads.
func (c *Core) Work() float64 {
	var w float64
	for _, t := range c.Threads {
		w += t.Stats.Work
	}
	return w
}
