package cpu

import (
	"math"
	"testing"

	"littleslaw/internal/events"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
)

func testRig(p *platform.Platform) (*events.Scheduler, *memsys.Node) {
	sched := &events.Scheduler{}
	return sched, memsys.NewNode(sched, p)
}

func seqOps(n int, stride uint64, gap float64) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Addr: uint64(i) * stride, Kind: memsys.Load, GapCycles: gap, Work: 1}
	}
	return ops
}

func TestThreadCompletesAllOps(t *testing.T) {
	p := platform.SKL()
	sched, node := testRig(p)
	gen := &SliceGen{Ops: seqOps(100, 64, 1)}
	core := NewCore(node, []Generator{gen}, 8, 1)
	core.Start()
	sched.Run()
	th := core.Threads[0]
	if !th.Finished() {
		t.Fatal("thread never finished")
	}
	if th.Stats.Retired != 100 || th.Stats.Issued != 100 {
		t.Fatalf("retired/issued = %d/%d, want 100/100", th.Stats.Retired, th.Stats.Issued)
	}
	if core.Work() != 100 {
		t.Fatalf("work = %v, want 100", core.Work())
	}
}

func TestThreadWindowLimitsOutstanding(t *testing.T) {
	p := platform.SKL()
	sched, node := testRig(p)
	// Distinct pages, zero gap: the thread would issue everything at once
	// were it not for the window.
	gen := &SliceGen{Ops: seqOps(50, 4096, 0)}
	core := NewCore(node, []Generator{gen}, 4, 1)
	core.Start()
	// Before any simulated time passes, outstanding must equal the window
	// (4 < 10 L1 MSHRs, so MSHRs are not the binding limit here).
	if got := core.Threads[0].Outstanding(); got != 4 {
		t.Fatalf("outstanding = %d, want window 4", got)
	}
	sched.Run()
	if !core.Finished() {
		t.Fatal("core did not finish")
	}
}

func TestThreadGapPacesIssue(t *testing.T) {
	p := platform.SKL()
	// Cache-resident accesses with a large gap: execution time is dominated
	// by compute pacing, so doubling the gap roughly doubles runtime.
	run := func(gap float64) events.Time {
		sched, node := testRig(p)
		ops := make([]Op, 200)
		for i := range ops {
			ops[i] = Op{Addr: uint64(i%4) * 64, Kind: memsys.Load, GapCycles: gap, Work: 1}
		}
		core := NewCore(node, []Generator{&SliceGen{Ops: ops}}, 8, 1)
		core.Start()
		sched.Run()
		return core.Threads[0].Stats.FinishPs
	}
	t1 := run(10)
	t2 := run(20)
	ratio := float64(t2) / float64(t1)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("gap 20 vs 10 runtime ratio = %.2f, want ~2", ratio)
	}
}

func TestGapScaleSlowsIssue(t *testing.T) {
	p := platform.SKL()
	run := func(scale float64) events.Time {
		sched, node := testRig(p)
		ops := make([]Op, 200)
		for i := range ops {
			ops[i] = Op{Addr: uint64(i%4) * 64, Kind: memsys.Load, GapCycles: 10, Work: 1}
		}
		core := NewCore(node, []Generator{&SliceGen{Ops: ops}}, 8, scale)
		core.Start()
		sched.Run()
		return core.Threads[0].Stats.FinishPs
	}
	if ratio := float64(run(2)) / float64(run(1)); math.Abs(ratio-2) > 0.3 {
		t.Fatalf("gapScale 2 runtime ratio = %.2f, want ~2", ratio)
	}
}

func TestPrefetchesDoNotOccupyWindow(t *testing.T) {
	p := platform.SKL()
	sched, node := testRig(p)
	ops := make([]Op, 0, 40)
	for i := 0; i < 20; i++ {
		ops = append(ops, Op{Addr: uint64(i) * 4096, Kind: memsys.PrefetchL2, GapCycles: 0})
		ops = append(ops, Op{Addr: uint64(i) * 64, Kind: memsys.Load, GapCycles: 0, Work: 1})
	}
	core := NewCore(node, []Generator{&SliceGen{Ops: ops}}, 2, 1)
	core.Start()
	sched.Run()
	th := core.Threads[0]
	if !th.Finished() {
		t.Fatal("did not finish")
	}
	if th.Stats.Retired != 20 {
		t.Fatalf("retired = %d, want 20 demand loads", th.Stats.Retired)
	}
	if th.Hier().Stats.SWPrefetches != 20 {
		t.Fatalf("sw prefetches = %d, want 20", th.Hier().Stats.SWPrefetches)
	}
}

func TestSMTThreadsShareMSHRs(t *testing.T) {
	p := platform.SKL()
	sched, node := testRig(p)
	// Two threads, each with a window larger than half the L1 MSHR file:
	// combined in-flight demand must never exceed the MSHR capacity.
	mkGen := func(base uint64) Generator {
		ops := make([]Op, 200)
		for i := range ops {
			ops[i] = Op{Addr: base + uint64(i)*4096, Kind: memsys.Load, GapCycles: 0, Work: 1}
		}
		return &SliceGen{Ops: ops}
	}
	core := NewCore(node, []Generator{mkGen(0), mkGen(1 << 30)}, 8, 1)
	core.Start()
	maxInFlight := 0
	for sched.Step() {
		if n := core.Hier.L1M.InFlight(); n > maxInFlight {
			maxInFlight = n
		}
	}
	if maxInFlight > p.L1.MSHRs {
		t.Fatalf("combined in-flight %d exceeded L1 MSHRs %d", maxInFlight, p.L1.MSHRs)
	}
	if maxInFlight < p.L1.MSHRs {
		t.Fatalf("two 8-deep threads only reached %d in flight, expected to saturate %d MSHRs",
			maxInFlight, p.L1.MSHRs)
	}
	if !core.Finished() {
		t.Fatal("core did not finish")
	}
}

func TestHigherWindowRaisesOccupancyAndThroughput(t *testing.T) {
	p := platform.KNL()
	run := func(window int) (events.Time, float64) {
		sched, node := testRig(p)
		ops := seqOps(600, 4096, 2)
		core := NewCore(node, []Generator{&SliceGen{Ops: ops}}, window, 1)
		core.Start()
		sched.Run()
		occ := core.Hier.L1M.Occ.Mean(sched.Now())
		return core.Threads[0].Stats.FinishPs, occ
	}
	t2, occ2 := run(2)
	t8, occ8 := run(8)
	if occ8 <= occ2 {
		t.Fatalf("occupancy did not rise with window: %v vs %v", occ8, occ2)
	}
	if t8 >= t2 {
		t.Fatalf("more MLP did not reduce runtime: %v vs %v", t8, t2)
	}
}

func TestSliceGenExhaustion(t *testing.T) {
	g := &SliceGen{Ops: seqOps(2, 64, 0)}
	if _, ok := g.Next(); !ok {
		t.Fatal("first Next failed")
	}
	if _, ok := g.Next(); !ok {
		t.Fatal("second Next failed")
	}
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted generator returned an op")
	}
}

func TestEmptyGeneratorFinishesImmediately(t *testing.T) {
	p := platform.SKL()
	sched, node := testRig(p)
	core := NewCore(node, []Generator{&SliceGen{}}, 4, 1)
	core.Start()
	sched.Run()
	if !core.Finished() {
		t.Fatal("empty generator did not finish")
	}
	if core.Threads[0].Stats.FinishPs != 0 {
		t.Fatalf("finish time = %v, want 0", core.Threads[0].Stats.FinishPs)
	}
}
