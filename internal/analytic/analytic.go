// Package analytic provides the closed-form counterpart of the
// discrete-event simulator: a fixed-point model of the closed core⇄memory
// system in which each core sustains a given number of outstanding line
// requests against the platform's bandwidth→latency curve. It serves as a
// fast cross-check (the DESIGN.md ablation) and as the predictive tool a
// user of the paper's method would apply before running anything.
package analytic

import (
	"fmt"
	"math"

	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// Prediction is the equilibrium operating point of the closed system.
type Prediction struct {
	BandwidthGBs float64 // node bandwidth at equilibrium
	LatencyNs    float64 // loaded latency at that bandwidth
	PerCoreMLP   float64 // outstanding lines per core actually sustained
	Limited      string  // what bound the MLP: "window", "l1-mshr", "l2-mshr"
}

// Inputs describe one routine for the closed-form model.
type Inputs struct {
	// ConcurrencyPerThread is the demand MLP one thread exposes (window
	// and issue-rate limited, before MSHR caps).
	ConcurrencyPerThread float64
	// ThreadsPerCore in the run.
	ThreadsPerCore int
	// L1Bound: the routine binds on the L1 MSHR file (random access);
	// otherwise the L2 file caps in-flight lines.
	L1Bound bool
}

// Predict solves the equilibrium: per-core in-flight lines n (capped by
// the binding MSHR file), bandwidth BW = cores×n×cls/lat(BW).
func Predict(p *platform.Platform, profile *queueing.Curve, in Inputs) (*Prediction, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if profile == nil {
		return nil, fmt.Errorf("analytic: nil profile")
	}
	if in.ConcurrencyPerThread <= 0 {
		return nil, fmt.Errorf("analytic: concurrency must be positive")
	}
	threads := in.ThreadsPerCore
	if threads == 0 {
		threads = 1
	}
	if threads < 1 || threads > p.SMTWays {
		return nil, fmt.Errorf("analytic: %d threads/core outside 1..%d", threads, p.SMTWays)
	}

	n := in.ConcurrencyPerThread * float64(threads)
	limited := "window"
	cap := float64(p.L2.MSHRs)
	capName := "l2-mshr"
	if in.L1Bound {
		cap = float64(p.L1.MSHRs)
		capName = "l1-mshr"
	}
	if n >= cap {
		n = cap
		limited = capName
	}

	bw, lat := profile.SolveEquilibrium(n*float64(p.Cores), p.LineBytes)
	return &Prediction{
		BandwidthGBs: bw,
		LatencyNs:    lat,
		PerCoreMLP:   n,
		Limited:      limited,
	}, nil
}

// SpeedupFrom estimates the throughput ratio between two predictions for
// the same routine (bandwidth ratio, since traffic per unit of work is
// unchanged by MLP-raising optimizations).
func SpeedupFrom(base, opt *Prediction) float64 {
	if base.BandwidthGBs <= 0 {
		return 0
	}
	return opt.BandwidthGBs / base.BandwidthGBs
}

// PredictCurve constructs a bandwidth→latency profile from the platform's
// DRAM constants alone, using open-loop queueing approximations (M/D/c at
// the banks, M/D/1 at each channel bus, on top of the uncontended path).
// It exists as a cross-check on the measured X-Mem curve: the two are
// independent derivations of the same machine and should agree at
// moderate utilization (the DESIGN.md analytic-vs-DES ablation); near
// saturation the closed-loop measurement is authoritative.
func PredictCurve(p *platform.Platform, points int) (*queueing.Curve, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if points < 2 {
		points = 12
	}
	m := p.Memory
	idle := m.BaseLatencyNs + m.RowMissNs + m.TransferNs(p.LineBytes) +
		p.CyclesNs(p.L1.HitCycles+p.L2.HitCycles)

	// Service capacities in lines/ns.
	bankSvcNs := m.RowMissNs // random traffic: row misses dominate under load
	banks := float64(m.Channels * m.BanksPerChannel)
	bankCap := banks / bankSvcNs
	busSvcNs := m.TransferNs(p.LineBytes)
	busCapPerChan := 1 / busSvcNs
	lineGBs := float64(p.LineBytes) // GB/s per line/ns is lineBytes (1e9/1e9)

	maxLines := math.Min(bankCap, busCapPerChan*float64(m.Channels)) * 0.98
	var pts []queueing.CurvePoint
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1) * 0.97
		lines := frac * maxLines
		bankRho := lines / bankCap
		busRho := lines / (busCapPerChan * float64(m.Channels))
		lat := idle +
			queueing.MDCWaitApprox(bankSvcNs, bankRho, 1)* // per-bank M/D/1 (hashed arrivals)
				1 +
			queueing.MDCWaitApprox(busSvcNs, busRho, 1)
		pts = append(pts, queueing.CurvePoint{BandwidthGBs: lines * lineGBs, LatencyNs: lat})
	}
	return queueing.NewCurve(pts)
}
