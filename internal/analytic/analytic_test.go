package analytic

import (
	"math"
	"testing"

	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/xmem"
)

func sklCurve() *queueing.Curve {
	return queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 0.5, LatencyNs: 82}, {BandwidthGBs: 37.9, LatencyNs: 93},
		{BandwidthGBs: 92.9, LatencyNs: 117}, {BandwidthGBs: 106.9, LatencyNs: 145},
		{BandwidthGBs: 112, LatencyNs: 220},
	})
}

func TestPredictValidation(t *testing.T) {
	p := platform.SKL()
	if _, err := Predict(p, nil, Inputs{ConcurrencyPerThread: 1}); err == nil {
		t.Fatal("nil profile accepted")
	}
	if _, err := Predict(p, sklCurve(), Inputs{}); err == nil {
		t.Fatal("zero concurrency accepted")
	}
	if _, err := Predict(p, sklCurve(), Inputs{ConcurrencyPerThread: 1, ThreadsPerCore: 8}); err == nil {
		t.Fatal("SMT beyond platform accepted")
	}
}

func TestMSHRCapBinds(t *testing.T) {
	p := platform.SKL()
	// ISx-like: 12 exposable misses per thread, random access → capped at
	// the 10 L1 MSHRs; equilibrium near the paper's 106.9 GB/s @ 145 ns.
	pred, err := Predict(p, sklCurve(), Inputs{ConcurrencyPerThread: 12, L1Bound: true})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Limited != "l1-mshr" || pred.PerCoreMLP != 10 {
		t.Fatalf("limited = %s, MLP = %v; want l1-mshr cap at 10", pred.Limited, pred.PerCoreMLP)
	}
	if math.Abs(pred.BandwidthGBs-106.9) > 8 {
		t.Errorf("ISx-like equilibrium = %.1f GB/s, want ≈107 (paper)", pred.BandwidthGBs)
	}
	if pred.LatencyNs < 120 || pred.LatencyNs > 175 {
		t.Errorf("equilibrium latency = %.0f ns, want ≈145", pred.LatencyNs)
	}
}

func TestWindowBindsWhenBelowCap(t *testing.T) {
	p := platform.SKL()
	// PENNANT-like scalar: 2.3 per thread, far below any MSHR file.
	pred, err := Predict(p, sklCurve(), Inputs{ConcurrencyPerThread: 2.3, L1Bound: true})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Limited != "window" {
		t.Fatalf("limited = %s, want window", pred.Limited)
	}
	if math.Abs(pred.BandwidthGBs-37.9) > 6 {
		t.Errorf("PENNANT-like equilibrium = %.1f GB/s, want ≈38", pred.BandwidthGBs)
	}
}

func TestSMTDoublesConcurrencyUntilCap(t *testing.T) {
	p := platform.SKL()
	one, _ := Predict(p, sklCurve(), Inputs{ConcurrencyPerThread: 3, ThreadsPerCore: 1, L1Bound: true})
	two, _ := Predict(p, sklCurve(), Inputs{ConcurrencyPerThread: 3, ThreadsPerCore: 2, L1Bound: true})
	if two.PerCoreMLP != 6 || one.PerCoreMLP != 3 {
		t.Fatalf("SMT concurrency = %v/%v, want 3/6", one.PerCoreMLP, two.PerCoreMLP)
	}
	if s := SpeedupFrom(one, two); s < 1.5 || s > 2.05 {
		t.Errorf("SMT speedup = %.2f, want near 2 below the cap", s)
	}
	// At the cap, more threads stop helping.
	four, _ := Predict(p, sklCurve(), Inputs{ConcurrencyPerThread: 8, ThreadsPerCore: 2, L1Bound: true})
	if four.Limited != "l1-mshr" {
		t.Fatal("16 per-core misses should cap at the L1 file")
	}
}

// TestAnalyticMatchesDESOnISx is the DESIGN.md ablation: the closed-form
// equilibrium must agree with the measured X-Mem characterization within
// tolerance, since both describe the same machine.
func TestAnalyticMatchesDESOnISx(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow")
	}
	p := platform.SKL()
	curve, err := xmem.ProfileFor(p)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(p, curve, Inputs{ConcurrencyPerThread: 12, L1Bound: true})
	if err != nil {
		t.Fatal(err)
	}
	// The DES-generated Table IV ISx/SKL row lands at ~108 GB/s.
	if pred.BandwidthGBs < 95 || pred.BandwidthGBs > 120 {
		t.Errorf("analytic ISx/SKL = %.1f GB/s, DES measures ≈108", pred.BandwidthGBs)
	}
}

func TestPredictCurveShape(t *testing.T) {
	for _, p := range platform.All() {
		c, err := PredictCurve(p, 16)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// Monotone, anchored near the platform's idle path, saturating
		// below the theoretical peak.
		idleWant := p.Memory.BaseLatencyNs + p.Memory.RowMissNs +
			p.Memory.TransferNs(p.LineBytes) + p.CyclesNs(p.L1.HitCycles+p.L2.HitCycles)
		if math.Abs(c.IdleLatencyNs()-idleWant) > 2 {
			t.Errorf("%s predicted idle %.1f, want %.1f", p.Name, c.IdleLatencyNs(), idleWant)
		}
		if c.MaxBandwidthGBs() >= p.PeakGBs() {
			t.Errorf("%s predicted achievable %.1f ≥ theoretical %.1f", p.Name, c.MaxBandwidthGBs(), p.PeakGBs())
		}
		prev := 0.0
		for _, pt := range c.Points() {
			if pt.LatencyNs < prev {
				t.Fatalf("%s predicted curve not monotone", p.Name)
			}
			prev = pt.LatencyNs
		}
	}
}

// TestPredictedVsMeasuredCurve is the analytic-vs-DES ablation: at
// moderate utilization the open-loop prediction and the measured closed-
// loop curve must agree within a modest factor.
func TestPredictedVsMeasuredCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow")
	}
	p := platform.SKL()
	measured, err := xmem.ProfileFor(p)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := PredictCurve(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, bw := range []float64{10, 40, 70, 90} {
		mp, pp := measured.LatencyAt(bw), predicted.LatencyAt(bw)
		if ratio := pp / mp; ratio < 0.7 || ratio > 1.45 {
			t.Errorf("at %.0f GB/s: predicted %.1f vs measured %.1f ns (ratio %.2f)", bw, pp, mp, ratio)
		}
	}
}
