package autotune

import (
	"context"
	"reflect"
	"testing"

	"littleslaw/internal/core"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/runner"
	"littleslaw/internal/workloads"
)

func knlCurve() *queueing.Curve {
	return queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 1, LatencyNs: 166}, {BandwidthGBs: 122.9, LatencyNs: 167},
		{BandwidthGBs: 233, LatencyNs: 180}, {BandwidthGBs: 296, LatencyNs: 209},
		{BandwidthGBs: 344, LatencyNs: 238}, {BandwidthGBs: 365, LatencyNs: 330},
	})
}

func a64Curve() *queueing.Curve {
	return queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 2, LatencyNs: 142}, {BandwidthGBs: 575, LatencyNs: 179},
		{BandwidthGBs: 788, LatencyNs: 280}, {BandwidthGBs: 812, LatencyNs: 330},
	})
}

func TestTuneValidation(t *testing.T) {
	w, _ := workloads.ByName("ISx")
	if _, err := Tune(platform.KNL(), nil, w, Options{}); err == nil {
		t.Fatal("nil profile accepted")
	}
}

// TestTuneReplaysISxLadder: the loop should rediscover the paper's §IV-A
// KNL sequence on its own — vectorize, add SMT, then shift the bottleneck
// to the L2 MSHR file with software prefetching — and end with the
// occupancy well above the L1 capacity.
func TestTuneReplaysISxLadder(t *testing.T) {
	w, _ := workloads.ByName("ISx")
	res, err := Tune(platform.KNL(), knlCurve(), w, Options{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no steps taken")
	}
	sawPrefetch := false
	for _, s := range res.Steps {
		if s.Tried == core.SoftwarePrefetchL2 && s.Accepted {
			sawPrefetch = true
		}
	}
	if !sawPrefetch {
		t.Errorf("loop never accepted L2 software prefetching (the §IV-A headline); steps: %+v", res.Steps)
	}
	if !res.FinalVariant.SWPrefetchL2 {
		t.Errorf("final variant lost the prefetch: %+v", res.FinalVariant)
	}
	if res.TotalSpeedup < 1.25 {
		t.Errorf("total speedup = %.2f, want ≥1.25 (paper's ladder compounds to ~1.5x)", res.TotalSpeedup)
	}
	// The final state should have broken past the L1 MSHR capacity.
	if res.FinalReport.Occupancy < float64(platform.KNL().L1.MSHRs) {
		t.Errorf("final occupancy %.2f still under the L1 file; bottleneck not shifted", res.FinalReport.Occupancy)
	}
}

// TestTuneStopsOnSaturatedSKL: on SKL the base ISx run is already pinned at
// the L1 MSHR file and the bandwidth ceiling; the loop must try (at most)
// the prefetch shift and otherwise stop quickly without accepting noise.
func TestTuneStopsOnSaturatedSKL(t *testing.T) {
	w, _ := workloads.ByName("ISx")
	skl := queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 0.5, LatencyNs: 82}, {BandwidthGBs: 106.9, LatencyNs: 145},
		{BandwidthGBs: 112, LatencyNs: 220},
	})
	res, err := Tune(platform.SKL(), skl, w, Options{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Steps {
		if s.Tried == core.Vectorize && s.Accepted {
			t.Errorf("vectorization accepted on saturated SKL (paper: 1x)")
		}
	}
	if res.TotalSpeedup > 1.15 {
		t.Errorf("total speedup %.2f on a saturated machine looks like noise acceptance", res.TotalSpeedup)
	}
}

// TestTuneUserIntuitionFusion: with the recipe exhausted on A64FX SNAP,
// the §IV-F fallback should disable fusion and win.
func TestTuneUserIntuitionFusion(t *testing.T) {
	w, _ := workloads.ByName("SNAP")
	res, err := Tune(platform.A64FX(), a64Curve(), w, Options{Scale: 0.15, UserIntuition: true})
	if err != nil {
		t.Fatal(err)
	}
	sawNoFuse := false
	for _, s := range res.Steps {
		if s.Tried == core.DisableFusion {
			sawNoFuse = true
			if !s.Accepted {
				t.Errorf("nofuse tried but rejected (speedup %.2f); paper saw ~20%%", s.Speedup)
			}
		}
	}
	if !sawNoFuse {
		t.Errorf("user-intuition fusion step never tried; steps: %+v", res.Steps)
	}
	if !res.FinalVariant.NoFuse {
		t.Errorf("final variant not unfused: %+v", res.FinalVariant)
	}
}

func TestTuneMaxStepsBound(t *testing.T) {
	w, _ := workloads.ByName("CoMD")
	res, err := Tune(platform.KNL(), knlCurve(), w, Options{Scale: 0.1, MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) > 1 {
		t.Fatalf("steps = %d, want ≤ 1", len(res.Steps))
	}
}

// TestTuneDeterministicAcrossWorkers: the speculative batch evaluator must
// replay the serial loop's exact step sequence — same optimizations, same
// speedups, same acceptances, same final state — for any worker count.
func TestTuneDeterministicAcrossWorkers(t *testing.T) {
	w, _ := workloads.ByName("ISx")
	tune := func(workers int) *Result {
		res, err := Tune(platform.KNL(), knlCurve(), w, Options{Scale: 0.05, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := tune(1)
	for _, workers := range []int{2, 4} {
		got := tune(workers)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("tune diverged at %d workers:\nserial: %+v\nparallel: %+v", workers, serial, got)
		}
	}
}

// TestGatherCandidatesMatchesPickSequence: the slate must be exactly what
// repeated pickCandidate calls with accumulating tried-marks would yield,
// and gathering must not mutate the caller's tried-set.
func TestGatherCandidatesMatchesPickSequence(t *testing.T) {
	w, _ := workloads.ByName("ISx")
	p := platform.KNL()
	var opts Options
	opts.normalize()
	res, err := runner.Run(context.Background(), w.Config(p, 1, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(p, knlCurve(), core.Measurement{
		Routine:        w.Routine(),
		BandwidthGBs:   res.TotalGBs,
		ActiveCores:    res.Cores,
		ThreadsPerCore: 1,
		RandomAccess:   w.RandomAccess(),
	})
	if err != nil {
		t.Fatal(err)
	}
	caps := w.Capabilities(p, 1)
	tried := map[core.Optimization]bool{}
	cands := gatherCandidates(rep, caps, w.Variant(), 1, tried, p, opts)
	if len(tried) != 0 {
		t.Fatalf("gatherCandidates mutated the caller's tried-set: %v", tried)
	}
	replay := map[core.Optimization]bool{}
	for i, c := range cands {
		opt, nv, nt, ok := pickCandidate(rep, caps, w.Variant(), 1, replay, p, opts)
		if !ok {
			t.Fatalf("pick sequence ended at %d, slate has %d", i, len(cands))
		}
		if opt != c.opt || nv != c.variant || nt != c.threads {
			t.Fatalf("slate[%d] = %+v, pick sequence gives (%v, %+v, %d)", i, c, opt, nv, nt)
		}
		replay[opt] = true
	}
	if _, _, _, ok := pickCandidate(rep, caps, w.Variant(), 1, replay, p, opts); ok {
		t.Fatal("pick sequence continues past the gathered slate")
	}
}
