// Package autotune drives the paper's recipe end to end: the Figure-1
// loop of measure → compute MSHR occupancy → pick an optimization the
// recipe recommends → apply it → re-measure, repeated until the recipe has
// nothing left to recommend or nothing recommended helps. It automates
// exactly the manual process the paper's §IV case studies walk through.
package autotune

import (
	"context"
	"fmt"

	"littleslaw/internal/core"
	"littleslaw/internal/engine"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
	"littleslaw/internal/workloads"
)

// Step records one iteration of the loop.
type Step struct {
	// Tried is the optimization the recipe picked.
	Tried core.Optimization
	// Report is the metric's view of the state *before* applying it.
	Report *core.Report
	// Speedup is the measured throughput ratio of applying it.
	Speedup float64
	// Accepted reports whether the change was kept.
	Accepted bool
}

// Result is a completed tuning session.
type Result struct {
	Workload string
	Platform string
	Steps    []Step
	// Final state and its cumulative speedup over the base run.
	FinalVariant workloads.Variant
	FinalThreads int
	TotalSpeedup float64
	// FinalReport is the metric's view of the final state.
	FinalReport *core.Report
}

// Options tunes the loop.
type Options struct {
	// Scale is the per-run work scale (default 0.1).
	Scale float64
	// Cores simulated (0 = full node). Reduced nodes are faster but see
	// proportionally less memory contention.
	Cores int
	// AcceptThreshold is the minimum speedup to keep a change (default 1.03).
	AcceptThreshold float64
	// MaxSteps bounds the loop (default 8).
	MaxSteps int
	// UserIntuition enables the §IV-F fallback: when the recipe has
	// nothing left, try disabling compiler loop fusion on platforms with
	// weak store forwarding.
	UserIntuition bool
	// Workers bounds how many candidate variants are evaluated
	// concurrently. 0 means runtime.GOMAXPROCS(0); 1 forces the
	// historical serial loop. Any worker count yields the identical step
	// sequence: the recipe's candidate slate from the current state is
	// evaluated speculatively, then walked in recipe order — rejections
	// leave the state unchanged (so later speculative runs stay valid)
	// and the first acceptance discards the rest and re-gathers.
	Workers int
}

func (o *Options) normalize() {
	if o.Scale == 0 {
		o.Scale = 0.1
	}
	if o.AcceptThreshold == 0 {
		o.AcceptThreshold = 1.03
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 8
	}
}

// Tune runs the recipe loop for a workload on a platform.
func Tune(p *platform.Platform, profile *queueing.Curve, w workloads.Workload, opts Options) (*Result, error) {
	return TuneContext(context.Background(), p, profile, w, opts)
}

// candidate is one speculatively evaluable rung: the optimization the
// recipe would pick and the configuration it leads to.
type candidate struct {
	opt     core.Optimization
	variant workloads.Variant
	threads int
}

// gatherCandidates replays pickCandidate against a scratch tried-set to
// enumerate the exact sequence of optimizations the serial loop would try
// from the current state, assuming each is rejected (rejections leave the
// state — and therefore the recipe's report and capabilities — unchanged,
// which is what makes the slate valid to evaluate concurrently).
func gatherCandidates(rep *core.Report, caps core.Capabilities, v workloads.Variant, threads int,
	tried map[core.Optimization]bool, p *platform.Platform, opts Options) []candidate {

	scratch := make(map[core.Optimization]bool, len(tried))
	for k, ok := range tried {
		scratch[k] = ok
	}
	var out []candidate
	for {
		opt, nv, nt, ok := pickCandidate(rep, caps, v, threads, scratch, p, opts)
		if !ok {
			return out
		}
		scratch[opt] = true
		out = append(out, candidate{opt: opt, variant: nv, threads: nt})
	}
}

// TuneContext is Tune with cancellation and concurrent candidate
// evaluation across a bounded worker pool. The step sequence, acceptance
// decisions and final report are identical to the serial loop for any
// worker count.
func TuneContext(ctx context.Context, p *platform.Platform, profile *queueing.Curve, w workloads.Workload, opts Options) (*Result, error) {
	opts.normalize()
	if profile == nil {
		return nil, fmt.Errorf("autotune: nil profile")
	}
	pool := engine.New(opts.Workers)

	state := w.Variant()
	threads := 1
	run := func(ctx context.Context, v workloads.Variant, th int) (*sim.Result, error) {
		cfg := w.WithVariant(v).Config(p, th, opts.Scale)
		if opts.Cores != 0 {
			cfg.Cores = opts.Cores
		}
		return runner.Run(ctx, cfg)
	}

	cur, err := run(ctx, state, threads)
	if err != nil {
		return nil, err
	}
	baseThroughput := cur.Throughput

	res := &Result{Workload: w.Name(), Platform: p.Name, FinalVariant: state, FinalThreads: threads}
	tried := map[core.Optimization]bool{}

	analyze := func(r *sim.Result, th int) (*core.Report, error) {
		return core.Analyze(p, profile, core.Measurement{
			Routine:                w.Routine(),
			BandwidthGBs:           r.TotalGBs,
			ActiveCores:            r.Cores,
			ThreadsPerCore:         th,
			PrefetchedReadFraction: r.PrefetchedReadFraction,
			RandomAccess:           w.RandomAccess(),
		})
	}

	for len(res.Steps) < opts.MaxSteps {
		rep, err := analyze(cur, threads)
		if err != nil {
			return nil, err
		}
		res.FinalReport = rep

		caps := w.WithVariant(state).Capabilities(p, threads)
		cands := gatherCandidates(rep, caps, state, threads, tried, p, opts)
		if len(cands) == 0 {
			break
		}
		if remaining := opts.MaxSteps - len(res.Steps); len(cands) > remaining {
			cands = cands[:remaining]
		}

		// Speculative batch: with multiple workers, evaluate the whole
		// slate up front (an acceptance wastes the tail, a speedup vs. the
		// common all-rejected walk); serially, evaluate lazily so the cost
		// matches the historical loop exactly.
		var runs []*sim.Result
		if pool.Workers() > 1 && len(cands) > 1 {
			jobs := make([]func(context.Context) (*sim.Result, error), len(cands))
			for i, c := range cands {
				c := c
				jobs[i] = func(ctx context.Context) (*sim.Result, error) {
					return run(ctx, c.variant, c.threads)
				}
			}
			runs, err = engine.Map(ctx, pool, jobs)
			if err != nil {
				return nil, err
			}
		}

		accepted := false
		for i, c := range cands {
			tried[c.opt] = true
			next := (*sim.Result)(nil)
			if runs != nil {
				next = runs[i]
			} else if next, err = run(ctx, c.variant, c.threads); err != nil {
				return nil, err
			}
			speedup := next.Throughput / cur.Throughput
			ok := speedup >= opts.AcceptThreshold
			res.Steps = append(res.Steps, Step{Tried: c.opt, Report: rep, Speedup: speedup, Accepted: ok})
			if ok {
				state, threads, cur = c.variant, c.threads, next
				res.FinalVariant, res.FinalThreads = state, threads
				accepted = true
				break
			}
		}
		if !accepted {
			// Every candidate from this state was rejected; the serial
			// loop's next iteration would find nothing new and stop.
			break
		}
	}

	if res.FinalReport == nil {
		rep, err := analyze(cur, threads)
		if err != nil {
			return nil, err
		}
		res.FinalReport = rep
	}
	res.TotalSpeedup = cur.Throughput / baseThroughput
	return res, nil
}

// pickCandidate chooses the next optimization per the recipe's priorities:
// recommended MLP-raisers first (vectorization before SMT before deeper
// SMT), then the L2-prefetch bottleneck shift, then traffic reducers, then
// (optionally) the §IV-F user-intuition fusion fallback.
func pickCandidate(rep *core.Report, caps core.Capabilities, v workloads.Variant, threads int,
	tried map[core.Optimization]bool, p *platform.Platform, opts Options) (core.Optimization, workloads.Variant, int, bool) {

	advice := core.Advise(rep, caps)
	order := []core.Optimization{
		core.Vectorize, core.SMT2, core.SoftwarePrefetchL2, core.SMT4, core.LoopTiling, core.LoopFusion,
	}
	for _, opt := range order {
		if tried[opt] {
			continue
		}
		if core.AdviceFor(advice, opt).Stance != core.Recommend {
			continue
		}
		switch opt {
		case core.Vectorize:
			if !v.Vectorized {
				nv := v
				nv.Vectorized = true
				return opt, nv, threads, true
			}
		case core.SMT2:
			if threads < 2 && p.SMTWays >= 2 {
				return opt, v, 2, true
			}
		case core.SMT4:
			if threads == 2 && p.SMTWays >= 4 {
				return opt, v, 4, true
			}
		case core.SoftwarePrefetchL2:
			if !v.SWPrefetchL2 {
				nv := v
				nv.SWPrefetchL2 = true
				return opt, nv, threads, true
			}
		case core.LoopTiling:
			if caps.Tileable && !v.Tiled {
				nv := v
				nv.Tiled = true
				return opt, nv, threads, true
			}
		case core.LoopFusion:
			// The recipe's fusion recommendation is about *applying*
			// fusion, which the compiler already did; nothing to rewrite.
		}
	}

	// §IV-F user intuition: beyond the recipe, try un-fusing on cores that
	// stall on store-to-load forwarding.
	if opts.UserIntuition && caps.Fusable && !v.NoFuse && p.WeakStoreForwarding && !tried[core.DisableFusion] {
		nv := v
		nv.NoFuse = true
		return core.DisableFusion, nv, threads, true
	}
	return 0, v, threads, false
}
