// Package trace is the per-request latency decomposition the paper's
// method implies: if the server publishes its own n_avg = λ·W, a single
// request should be able to show *where* its W went. A Trace rides the
// request context through the full spine — proxy forward, limiter queue,
// engine pool, runner cache, sim kernel — and each stage records a Span
// splitting its contribution into queue wait (time spent waiting for a
// resource) and service time (time spent doing work).
//
// Spans account exclusive time: a stage wrapped around a child stage (the
// handler around the runner around the sim kernel) subtracts whatever its
// children attributed, so summing every span's queue+service reproduces
// the request's end-to-end W up to the untraced residue — the waterfall
// identity the golden test in internal/service pins at 5%. The one
// exception is parallel fan-out (engine.Map jobs), whose spans measure
// work time, not wall time; their sum legitimately exceeds W.
//
// Recording is cheap and optional: every entry point is a nil-safe no-op
// when the context carries no Trace, so untraced paths (benchmarks, batch
// pipelines) pay one context lookup and nothing else.
package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// MaxSpans bounds one trace's span list; stages recorded past the cap are
// counted in DroppedSpans (and still feed the sink's stage stats) so a
// 90-job table fan-out cannot balloon the ring's memory.
const MaxSpans = 128

// Span is one stage's contribution to a request's latency, split into
// queue wait and service time. Start is the offset from the trace start.
type Span struct {
	Stage   string        `json:"stage"`
	Note    string        `json:"note,omitempty"`
	Start   time.Duration `json:"-"`
	Queue   time.Duration `json:"-"`
	Service time.Duration `json:"-"`
}

// Trace is one request's record: an identifier, a route, and the spans its
// stages recorded. Construct with New or Sink.Start; all methods are safe
// for concurrent use and nil-safe, so holding a *Trace that may be nil
// costs nothing.
type Trace struct {
	id    string
	route string
	start time.Time
	sink  *Sink // nil for free-standing traces

	mu         sync.Mutex
	spans      []Span
	attributed time.Duration // Σ queue+service over recorded spans
	dropped    int
	total      time.Duration
	status     int
	done       bool
}

// New builds a free-standing trace (no sink) — tests and one-off callers.
func New(id, route string) *Trace {
	return &Trace{id: id, route: route, start: time.Now()}
}

// ID returns the trace identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Route returns the route the trace was started for.
func (t *Trace) Route() string {
	if t == nil {
		return ""
	}
	return t.route
}

type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Add records a completed span whose durations the stage already measured:
// queue wait plus service time, ending now. Zero-duration spans are legal
// and serve as decision markers (a hedge fired, a failover happened).
func (t *Trace) Add(stage, note string, queue, service time.Duration) {
	if t == nil {
		return
	}
	start := time.Since(t.start) - queue - service
	if start < 0 {
		start = 0
	}
	t.record(Span{Stage: stage, Note: note, Start: start, Queue: queue, Service: service})
}

// Add records a span on the context's trace, if any.
func Add(ctx context.Context, stage, note string, queue, service time.Duration) {
	FromContext(ctx).Add(stage, note, queue, service)
}

// Active is an in-progress span opened with Begin. Its End records
// *exclusive* service time: elapsed wall time minus whatever child spans
// attributed in the meantime minus the declared queue wait — which is what
// makes nested stages sum to the request's W instead of double counting.
type Active struct {
	t      *Trace
	stage  string
	begin  time.Time
	attrAt time.Duration
	queue  time.Duration
}

// Begin opens a span on t; nil traces return a nil Active whose methods
// no-op.
func (t *Trace) Begin(stage string) *Active {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	attr := t.attributed
	t.mu.Unlock()
	return &Active{t: t, stage: stage, begin: time.Now(), attrAt: attr}
}

// Begin opens a span on the context's trace, if any.
func Begin(ctx context.Context, stage string) *Active {
	return FromContext(ctx).Begin(stage)
}

// SetQueue declares how long the stage waited *before* Begin was called
// (pool wait ahead of pickup); the span's start shifts back to cover it.
func (a *Active) SetQueue(d time.Duration) {
	if a != nil && d > 0 {
		a.queue = d
	}
}

// End closes the span: service time is the elapsed wall time since Begin
// minus child attribution, clamped at zero (parallel children can
// attribute more than this goroutine's window saw).
func (a *Active) End(note string) {
	if a == nil {
		return
	}
	t := a.t
	elapsed := time.Since(a.begin)
	t.mu.Lock()
	child := t.attributed - a.attrAt
	t.mu.Unlock()
	service := elapsed - child
	if service < 0 {
		service = 0
	}
	start := a.begin.Sub(t.start) - a.queue
	if start < 0 {
		start = 0
	}
	t.record(Span{Stage: a.stage, Note: note, Start: start, Queue: a.queue, Service: service})
}

// record appends the span (or counts it dropped past MaxSpans), bumps the
// attribution sum, and feeds the sink's per-stage aggregates.
func (t *Trace) record(sp Span) {
	t.mu.Lock()
	t.attributed += sp.Queue + sp.Service
	if len(t.spans) < MaxSpans {
		t.spans = append(t.spans, sp)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	if t.sink != nil {
		t.sink.observe(sp.Stage, sp.Queue+sp.Service)
	}
}

// Finish seals the trace with the response status and the end-to-end
// latency the server measured. Later spans are still accepted (a detached
// goroutine may drain after the response) but the ring snapshot is taken
// from whatever Finish saw.
func (t *Trace) Finish(status int, total time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = status
	t.total = total
	t.done = true
	t.mu.Unlock()
}

// Attributed returns the queue+service sum across every recorded span.
func (t *Trace) Attributed() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attributed
}

// SpanView is a Span rendered for JSON: millisecond floats, because a
// waterfall is read by a human.
type SpanView struct {
	Stage     string  `json:"stage"`
	Note      string  `json:"note,omitempty"`
	StartMs   float64 `json:"start_ms"`
	QueueMs   float64 `json:"queue_ms"`
	ServiceMs float64 `json:"service_ms"`
}

// View is a Trace snapshot: the JSON waterfall GET /v1/trace/{id} serves.
type View struct {
	ID    string `json:"id"`
	Route string `json:"route"`
	// Status is the response code, 0 while the request is in flight.
	Status  int    `json:"status,omitempty"`
	StartNs int64  `json:"start_unix_ns"`
	TotalMs float64 `json:"total_ms"`
	// AttributedMs sums queue+service over the spans; TotalMs minus this
	// is the untraced residue the waterfall identity bounds.
	AttributedMs float64    `json:"attributed_ms"`
	Spans        []SpanView `json:"spans"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
}

const ms = float64(time.Millisecond)

// View snapshots the trace.
func (t *Trace) View() View {
	if t == nil {
		return View{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.total
	if !t.done {
		total = time.Since(t.start)
	}
	v := View{
		ID:           t.id,
		Route:        t.route,
		Status:       t.status,
		StartNs:      t.start.UnixNano(),
		TotalMs:      float64(total) / ms,
		AttributedMs: float64(t.attributed) / ms,
		DroppedSpans: t.dropped,
		Spans:        make([]SpanView, len(t.spans)),
	}
	for i, sp := range t.spans {
		v.Spans[i] = SpanView{
			Stage:     sp.Stage,
			Note:      sp.Note,
			StartMs:   float64(sp.Start) / ms,
			QueueMs:   float64(sp.Queue) / ms,
			ServiceMs: float64(sp.Service) / ms,
		}
	}
	return v
}

// Summary renders the compact one-line waterfall the X-Trace-Summary
// response header carries: "stage[=note] queueMs+serviceMs; ...; total N".
// Taken at first-write time it reflects the spans recorded so far — the
// ring's JSON view is the complete record.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, sp := range t.spans {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		b.WriteString(sp.Stage)
		if sp.Note != "" {
			b.WriteByte('=')
			b.WriteString(sp.Note)
		}
		fmt.Fprintf(&b, " %.1f+%.1f", float64(sp.Queue)/ms, float64(sp.Service)/ms)
	}
	total := t.total
	if !t.done {
		total = time.Since(t.start)
	}
	if b.Len() > 0 {
		b.WriteString("; ")
	}
	fmt.Fprintf(&b, "total %.1fms", float64(total)/ms)
	return b.String()
}
