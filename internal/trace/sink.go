package trace

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"littleslaw/internal/metrics"
)

// DefaultCapacity bounds the ring when NewSink is given 0.
const DefaultCapacity = 256

// Record is one finished trace as published to a tail stream (the NDJSON
// body of GET /v1/traces). Seq is assigned by the broker at publish time.
// Terminal, when set, marks the last record a draining server will ever
// publish ("shutdown") so tailing clients can distinguish a graceful close
// from a dropped connection; terminal records carry no trace.
type Record struct {
	Seq      int    `json:"seq"`
	Trace    View   `json:"trace"`
	Terminal string `json:"terminal,omitempty"`
}

// stageStat aggregates one stage across every trace the sink saw: the
// span count (arrivals) and the total queue+service residence, from which
// λ, W and n_avg all derive.
type stageStat struct {
	count uint64
	ns    int64
}

// Sink owns a service's traces: it mints request traces, retains the last
// capacity finished ones in a ring indexed by id, aggregates per-stage
// λ/W/n_avg for /metrics, and hands finished traces to OnFinish (the
// service publishes them to its tail broker there).
type Sink struct {
	capacity int
	prefix   uint32
	ctr      atomic.Uint64
	start    time.Time

	// OnFinish, if set before traffic, observes every finished trace
	// handed to Done. It must not block.
	OnFinish func(*Trace)

	mu   sync.Mutex
	ring []*Trace // circular once full
	next int
	byID map[string]*Trace

	statsMu sync.Mutex
	stats   map[string]*stageStat
}

// NewSink builds a sink retaining up to capacity finished traces
// (0 = DefaultCapacity).
func NewSink(capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	var seed [4]byte
	rand.Read(seed[:])
	return &Sink{
		capacity: capacity,
		prefix:   binary.BigEndian.Uint32(seed[:]),
		start:    time.Now(),
		byID:     make(map[string]*Trace, capacity),
		stats:    make(map[string]*stageStat, 8),
	}
}

// Start mints a trace for one request on the named route. The id is a
// random per-sink prefix plus a counter — unique within the sink, cheap
// enough for every request.
func (s *Sink) Start(route string) *Trace {
	if s == nil {
		return nil
	}
	id := fmt.Sprintf("%08x%08x", s.prefix, uint32(s.ctr.Add(1)))
	return &Trace{id: id, route: route, start: time.Now(), sink: s}
}

// Done retains a finished trace in the ring (evicting the oldest) and
// notifies OnFinish. Traces not produced by this sink's Start are retained
// all the same.
func (s *Sink) Done(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, t)
	} else {
		old := s.ring[s.next]
		delete(s.byID, old.id)
		s.ring[s.next] = t
		s.next = (s.next + 1) % s.capacity
	}
	s.byID[t.id] = t
	s.mu.Unlock()
	if s.OnFinish != nil {
		s.OnFinish(t)
	}
}

// Get returns the retained trace with the given id.
func (s *Sink) Get(id string) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[id]
	return t, ok
}

// Len returns how many finished traces the ring holds.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// observe feeds one span into the per-stage aggregates.
func (s *Sink) observe(stage string, residence time.Duration) {
	s.statsMu.Lock()
	st := s.stats[stage]
	if st == nil {
		st = &stageStat{}
		s.stats[stage] = st
	}
	st.count++
	st.ns += residence.Nanoseconds()
	s.statsMu.Unlock()
}

// StageRates returns per-stage (λ, W, n_avg): span arrivals per second of
// sink uptime, mean residence seconds, and their product — which collapses
// to stage-seconds/uptime, the same construction as the runner's occupancy
// gauge, so the two must reconcile.
func (s *Sink) StageRates() (lambda, w, navg map[string]float64) {
	up := time.Since(s.start).Seconds()
	lambda = map[string]float64{}
	w = map[string]float64{}
	navg = map[string]float64{}
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	for stage, st := range s.stats {
		if st.count == 0 {
			continue
		}
		sec := float64(st.ns) / 1e9
		w[stage] = sec / float64(st.count)
		if up > 0 {
			lambda[stage] = float64(st.count) / up
			navg[stage] = sec / up
		}
	}
	return lambda, w, navg
}

// Register exposes the per-stage Little's-Law decomposition on reg under
// prefix: <prefix>_stage_lambda, _stage_w_seconds and _stage_navg, each
// labeled by stage. n_avg = λ·W per stage, derived exactly as the runner's
// occupancy gauge (busy seconds over uptime) — DESIGN §11's audit pushed
// down to every stage.
func (s *Sink) Register(reg *metrics.Registry, prefix string) {
	reg.DerivedVec(prefix+"_stage_lambda",
		"Per-stage span arrival rate: spans observed per second of uptime.",
		"stage", func() map[string]float64 { l, _, _ := s.StageRates(); return l })
	reg.DerivedVec(prefix+"_stage_w_seconds",
		"Per-stage mean residence W: queue wait plus service time per span.",
		"stage", func() map[string]float64 { _, w, _ := s.StageRates(); return w })
	reg.DerivedVec(prefix+"_stage_navg",
		"Per-stage Little's-Law occupancy n_avg = lambda*W = stage seconds over uptime.",
		"stage", func() map[string]float64 { _, _, n := s.StageRates(); return n })
}
