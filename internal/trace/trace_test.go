package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every entry point must no-op on a nil trace / traceless
// context — that is the contract letting untraced paths skip all cost.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	tr.Add("x", "", time.Millisecond, time.Millisecond)
	tr.Finish(200, time.Second)
	a := tr.Begin("x")
	a.SetQueue(time.Millisecond)
	a.End("done")
	if tr.ID() != "" || tr.Route() != "" || tr.Attributed() != 0 {
		t.Fatalf("nil trace leaked state: %q %q %v", tr.ID(), tr.Route(), tr.Attributed())
	}
	if v := tr.View(); v.ID != "" || len(v.Spans) != 0 {
		t.Fatalf("nil View = %+v", v)
	}
	if tr.Summary() != "" {
		t.Fatalf("nil Summary = %q", tr.Summary())
	}
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context carries a trace")
	}
	Add(ctx, "x", "", 0, 0) // must not panic
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(nil) should return ctx unchanged")
	}
}

// TestExclusiveAccounting: a wrapper span's service time excludes what its
// children attributed, so nesting sums to wall time instead of double
// counting — the waterfall identity in miniature.
func TestExclusiveAccounting(t *testing.T) {
	tr := New("t1", "r")
	outer := tr.Begin("handler")
	// A child leaf attributing 40ms of measured work.
	tr.Add("sim", "", 10*time.Millisecond, 30*time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	outer.End("")

	v := tr.View()
	if len(v.Spans) != 2 {
		t.Fatalf("spans = %+v", v.Spans)
	}
	sim, handler := v.Spans[0], v.Spans[1]
	if sim.QueueMs != 10 || sim.ServiceMs != 30 {
		t.Fatalf("leaf span = %+v, want declared 10+30", sim)
	}
	// The wrapper saw ~5ms of wall time; the child's 40ms was attributed
	// concurrently (declared durations, not elapsed), so exclusive service
	// is clamped at zero rather than going negative.
	if handler.ServiceMs < 0 {
		t.Fatalf("exclusive service went negative: %+v", handler)
	}
	if handler.ServiceMs > 6 {
		t.Fatalf("wrapper kept child time: %.2fms service, want ~5ms wall minus 40ms child (clamped)", handler.ServiceMs)
	}
	wantAttr := 40*time.Millisecond + time.Duration(handler.QueueMs+handler.ServiceMs)*time.Millisecond
	if got := tr.Attributed(); got < 40*time.Millisecond || got > wantAttr+time.Millisecond {
		t.Fatalf("attributed = %v", got)
	}
}

// TestSetQueueShiftsStart: queue declared at End time covers wait that
// happened before Begin, so the span's start moves back to include it.
func TestSetQueueShiftsStart(t *testing.T) {
	tr := New("t2", "r")
	time.Sleep(4 * time.Millisecond)
	a := tr.Begin("engine")
	a.SetQueue(3 * time.Millisecond)
	a.End("job")
	v := tr.View()
	sp := v.Spans[0]
	if sp.QueueMs != 3 {
		t.Fatalf("queue = %v, want 3ms", sp.QueueMs)
	}
	// Begin happened ~4ms in; declaring 3ms of pre-Begin queue pulls the
	// start back to ~1ms.
	if sp.StartMs > 3.5 {
		t.Fatalf("start = %.2fms, want shifted back by the declared queue", sp.StartMs)
	}
}

// TestSpanCapAndDropped: spans past MaxSpans are counted, not stored, and
// still feed the attribution sum.
func TestSpanCapAndDropped(t *testing.T) {
	tr := New("t3", "r")
	for i := 0; i < MaxSpans+10; i++ {
		tr.Add("job", "", 0, time.Microsecond)
	}
	v := tr.View()
	if len(v.Spans) != MaxSpans {
		t.Fatalf("spans = %d, want capped at %d", len(v.Spans), MaxSpans)
	}
	if v.DroppedSpans != 10 {
		t.Fatalf("dropped = %d, want 10", v.DroppedSpans)
	}
	if want := time.Duration(MaxSpans+10) * time.Microsecond; tr.Attributed() != want {
		t.Fatalf("attributed = %v, want %v (dropped spans still count)", tr.Attributed(), want)
	}
}

// TestSummaryFormat: the one-line header renders every span and ends with
// the total.
func TestSummaryFormat(t *testing.T) {
	tr := New("t4", "r")
	tr.Add("limit", "admitted", 2*time.Millisecond, 0)
	tr.Add("sim", "", 0, 40*time.Millisecond)
	tr.Finish(200, 45*time.Millisecond)
	sum := tr.Summary()
	for _, want := range []string{"limit=admitted 2.0+0.0", "sim 0.0+40.0", "total 45.0ms"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
}

// TestSinkRingEviction: the ring retains the newest capacity traces and
// forgets the oldest id.
func TestSinkRingEviction(t *testing.T) {
	s := NewSink(2)
	var ids []string
	for i := 0; i < 3; i++ {
		tr := s.Start("r")
		tr.Finish(200, time.Millisecond)
		s.Done(tr)
		ids = append(ids, tr.ID())
	}
	if s.Len() != 2 {
		t.Fatalf("ring len = %d, want 2", s.Len())
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatalf("oldest trace %s still retained", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("trace %s evicted early", id)
		}
	}
}

// TestSinkIDsUnique: ids must be unique within a sink — they key the ring.
func TestSinkIDsUnique(t *testing.T) {
	s := NewSink(0)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := s.Start("r").ID()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

// TestStageRatesIdentity: per stage, n_avg must equal λ·W — the sink's
// aggregates are Little's Law by construction, and OnFinish fires per Done.
func TestStageRatesIdentity(t *testing.T) {
	s := NewSink(8)
	finished := 0
	s.OnFinish = func(*Trace) { finished++ }
	for i := 0; i < 5; i++ {
		tr := s.Start("r")
		tr.Add("sim", "", 0, 10*time.Millisecond)
		tr.Add("limit", "admitted", time.Millisecond, 0)
		tr.Finish(200, 12*time.Millisecond)
		s.Done(tr)
	}
	if finished != 5 {
		t.Fatalf("OnFinish fired %d times, want 5", finished)
	}
	lam, w, navg := s.StageRates()
	for _, stage := range []string{"sim", "limit"} {
		if lam[stage] <= 0 || w[stage] <= 0 {
			t.Fatalf("stage %s unobserved: λ=%v W=%v", stage, lam[stage], w[stage])
		}
		if got, want := navg[stage], lam[stage]*w[stage]; got < want*0.999 || got > want*1.001 {
			t.Fatalf("stage %s: n_avg = %v, λ·W = %v", stage, got, want)
		}
	}
	if w["sim"] < 0.009 || w["sim"] > 0.011 {
		t.Fatalf("W(sim) = %v, want ~10ms", w["sim"])
	}
}

// TestConcurrentRecording hammers one trace and its sink from many
// goroutines — the race detector's target in `make race`.
func TestConcurrentRecording(t *testing.T) {
	s := NewSink(16)
	tr := s.Start("r")
	ctx := NewContext(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := Begin(ctx, fmt.Sprintf("stage%d", g%4))
				Add(ctx, "leaf", "", 0, time.Microsecond)
				a.End("done")
				_ = tr.View()
				_ = tr.Summary()
				_, _, _ = s.StageRates()
			}
		}(g)
	}
	wg.Wait()
	tr.Finish(200, time.Millisecond)
	s.Done(tr)
	if v := tr.View(); len(v.Spans)+v.DroppedSpans != 800 {
		t.Fatalf("spans+dropped = %d, want 800", len(v.Spans)+v.DroppedSpans)
	}
}
