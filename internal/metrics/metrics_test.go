package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	g.Inc()
	g.Inc()
	g.Dec()
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.5 + 0.5 + 5 + 50; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "handler", "code")
	v.With("analyze", "200").Inc()
	v.With("analyze", "200").Inc()
	v.With("analyze", "400").Inc()
	if got := v.With("analyze", "200").Value(); got != 2 {
		t.Fatalf("analyze/200 = %d, want 2", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `req_total{handler="analyze",code="200"} 2`) {
		t.Errorf("missing labeled counter:\n%s", out)
	}
	if !strings.Contains(out, `req_total{handler="analyze",code="400"} 1`) {
		t.Errorf("missing labeled counter:\n%s", out)
	}
}

func TestHistogramVecPromOutput(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("lat_seconds", "latency", []float64{1}, "handler")
	v.With("a").Observe(0.5)
	v.With("a").Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{handler="a",le="1"} 1`,
		`lat_seconds_bucket{handler="a",le="+Inf"} 2`,
		`lat_seconds_count{handler="a"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLittleConcurrency pins the paper's law applied to the service
// itself: with 10 completed requests of 0.2 s each over a 4 s window,
// λ = 2.5/s, W = 0.2 s, so L = λ·W = 0.5.
func TestLittleConcurrency(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("lat_seconds", "latency", nil, "handler")
	for i := 0; i < 10; i++ {
		v.With("analyze").Observe(0.2)
	}
	r.now = func() time.Time { return r.start.Add(4 * time.Second) }
	if got := r.LittleConcurrency(v); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("LittleConcurrency = %g, want 0.5", got)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x", "second")
}

func TestDerived(t *testing.T) {
	r := NewRegistry()
	r.Derived("d", "derived", func() float64 { return 1.5 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "d 1.5") {
		t.Errorf("missing derived value:\n%s", sb.String())
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("subs", "per-stream subscribers", "stream")
	v.With("a").Inc()
	v.With("a").Inc()
	v.With("b").Inc()
	v.With("b").Dec()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`subs{stream="a"} 2`, `subs{stream="b"} 0`, "# TYPE subs gauge"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch did not panic")
		}
	}()
	v.With("a", "b")
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`quote"inside`, `quote\"inside`},
		{"line\nbreak", `line\nbreak`},
		{`back\slash`, `back\\slash`},
		{"\\\"\n", `\\\"\n`},
		// UTF-8 and control bytes pass through raw: the exposition format
		// defines no \xNN/\uNNNN escapes, so Go's %q output is invalid here.
		{"λ·W=ñ_avg", "λ·W=ñ_avg"},
		{"tab\there", "tab\there"},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestLabelEscapingInExposition drives hostile stream names through a real
// GaugeVec scrape: the rendered line must use only the three escapes the
// Prometheus text format defines (\\, \", \n) and keep UTF-8 raw.
func TestLabelEscapingInExposition(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("subs", "per-stream subscribers", "stream")
	v.With(`he said "hi"`).Set(1)
	v.With("two\nlines").Set(2)
	v.With("ünïcode-héllo").Set(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`subs{stream="he said \"hi\""} 1`,
		`subs{stream="two\nlines"} 2`,
		`subs{stream="ünïcode-héllo"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	for _, bad := range []string{`\x`, `\u`} {
		if strings.Contains(out, bad) {
			t.Errorf("invalid %q escape leaked into exposition:\n%s", bad, out)
		}
	}
}

func TestDerivedVec(t *testing.T) {
	r := NewRegistry()
	vals := map[string]float64{"b1": 2.5, "b0": 0.25}
	r.DerivedVec("navg", "per-backend occupancy", "backend",
		func() map[string]float64 { return vals })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Children render sorted and fresh from the callback.
	i0 := strings.Index(out, `navg{backend="b0"} 0.25`)
	i1 := strings.Index(out, `navg{backend="b1"} 2.5`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Fatalf("bad DerivedVec rendering:\n%s", out)
	}
	vals["b0"] = 7
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `navg{backend="b0"} 7`) {
		t.Errorf("DerivedVec not recomputed at scrape:\n%s", sb.String())
	}
}
