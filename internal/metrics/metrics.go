// Package metrics is a dependency-free instrumentation registry for the
// analysis service: counters, gauges and latency histograms exposed in the
// Prometheus text format.
//
// It also closes the loop with the paper: a long-running service is itself
// a queueing system, so the registry derives the service's own average
// request concurrency through Little's Law — L = λ·W, which with
// λ = completed/uptime and W = latency_sum/completed collapses to
// latency_sum/uptime — and exports it next to the directly-sampled
// in-flight gauge. On a stationary server the two agree, which is
// Equation 1 observed about the observer.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set forces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds, spanning sub-millisecond cache hits to multi-minute full-scale
// table regenerations.
var DefBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300,
}

// Histogram accumulates observations into cumulative buckets, plus a sum
// and count, in the Prometheus style.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	count  atomic.Uint64
	sum    atomicFloat
}

// atomicFloat is an atomic float64 (bits in a uint64, CAS add).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (for latencies: seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// metric is one registered family.
type metric struct {
	name, help, kind string
	write            func(w io.Writer, name string)
}

// Registry holds registered metrics and renders them. The zero value is
// not useful; construct with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
	start   time.Time
	now     func() time.Time // test hook
}

// NewRegistry returns an empty registry; uptime counts from now.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}, start: time.Now(), now: time.Now}
}

func (r *Registry) register(name, help, kind string, write func(io.Writer, string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, &metric{name: name, help: help, kind: kind, write: write})
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, g.Value())
	})
	return g
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds in seconds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, "histogram", func(w io.Writer, n string) {
		writeHistogram(w, n, "", h)
	})
	return h
}

// Derived registers a gauge whose value is computed at scrape time.
func (r *Registry) Derived(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %g\n", n, fn())
	})
}

// DerivedCounter registers a counter whose value is read at scrape time —
// for monotonic counts maintained outside the registry (the admission
// limiter keeps its own totals under its own lock).
func (r *Registry) DerivedCounter(name, help string, fn func() uint64) {
	r.register(name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	})
}

// DerivedVec registers a labeled gauge family whose children are computed
// at scrape time: fn returns the current value per label value. Built for
// live estimates held outside the registry (the cluster proxy's per-backend
// Little's-Law occupancy must be decayed to "now" at every scrape, which a
// stored GaugeVec — integer-valued and only as fresh as its last Set —
// cannot express).
func (r *Registry) DerivedVec(name, help, label string, fn func() map[string]float64) {
	r.register(name, help, "gauge", func(w io.Writer, n string) {
		vals := fn()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s=\"%s\"} %g\n", n, label, EscapeLabelValue(k), vals[k])
		}
	})
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: map[string]*Counter{}}
	r.register(name, help, "counter", func(w io.Writer, n string) {
		v.mu.Lock()
		keys := make([]string, 0, len(v.children))
		for k := range v.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s} %d\n", n, k, v.children[k].Value())
		}
		v.mu.Unlock()
	})
	return v
}

// With returns the child counter for the given label values (one per
// label, in registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: want %d label values, got %d", len(v.labels), len(values)))
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*Gauge
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{labels: labels, children: map[string]*Gauge{}}
	r.register(name, help, "gauge", func(w io.Writer, n string) {
		v.mu.Lock()
		keys := make([]string, 0, len(v.children))
		for k := range v.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s} %d\n", n, k, v.children[k].Value())
		}
		v.mu.Unlock()
	})
	return v
}

// With returns the child gauge for the given label values (one per label,
// in registration order), creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: want %d label values, got %d", len(v.labels), len(values)))
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[key]
	if !ok {
		g = &Gauge{}
		v.children[key] = g
	}
	return g
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*Histogram
}

// HistogramVec registers and returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{labels: labels, bounds: bounds, children: map[string]*Histogram{}}
	r.register(name, help, "histogram", func(w io.Writer, n string) {
		v.mu.Lock()
		keys := make([]string, 0, len(v.children))
		for k := range v.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeHistogram(w, n, k, v.children[k])
		}
		v.mu.Unlock()
	})
	return v
}

// With returns the child histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: want %d label values, got %d", len(v.labels), len(values)))
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[key] = h
	}
	return h
}

// TotalLatency sums the latency over every child, for Little's-Law
// derivations across a labeled family.
func (v *HistogramVec) TotalLatency() (sum float64, count uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, h := range v.children {
		sum += h.Sum()
		count += h.Count()
	}
	return sum, count
}

func labelKey(labels, values []string) string {
	s := ""
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l + `="` + EscapeLabelValue(values[i]) + `"`
	}
	return s
}

// EscapeLabelValue escapes a label value for the Prometheus text exposition
// format, which defines exactly three escapes inside a quoted label value:
// backslash, double quote and line feed. Go's %q must not be used here — it
// emits \xNN/\uNNNN sequences for control and non-ASCII bytes, which the
// format does not define (label values are raw UTF-8).
func EscapeLabelValue(v string) string {
	// Fast path: nothing to escape (the common case for route/stream names).
	i := 0
	for ; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c == '\n' {
			break
		}
	}
	if i == len(v) {
		return v
	}
	var b []byte
	b = append(b, v[:i]...)
	for ; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return string(b)
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	cum := uint64(0)
	sep, extra := "{", "}"
	if labels != "" {
		sep, extra = "{"+labels+",", "}"
	}
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=%q%s %d\n", name, sep, fmt.Sprintf("%g", b), extra, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", name, sep, extra, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
	}
}

// UptimeSeconds returns the time since the registry was created.
func (r *Registry) UptimeSeconds() float64 {
	return r.now().Sub(r.start).Seconds()
}

// LittleConcurrency derives the long-run average number of requests in the
// system via Little's Law from a latency family: L = λ·W =
// (completed/uptime) × (latency_sum/completed) = latency_sum/uptime.
func (r *Registry) LittleConcurrency(v *HistogramVec) float64 {
	up := r.UptimeSeconds()
	if up <= 0 {
		return 0
	}
	sum, _ := v.TotalLatency()
	return sum / up
}

// WritePrometheus renders every registered metric in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
			return err
		}
		m.write(w, m.name)
	}
	return nil
}
