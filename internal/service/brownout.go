// Brownout wiring for the service: the pressure signal fed to the
// controller, the per-route criticality tiers, the /v1/brownout admin
// surface, and the drain-aware shutdown lifecycle. The controller itself
// (the hysteresis ladder) lives in internal/brownout; this file is where
// its mode becomes behaviour — which requests shed, which answers degrade,
// and what a SIGTERM walks down.
package service

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"littleslaw/internal/brownout"
	"littleslaw/internal/stream"
	"littleslaw/internal/trace"
)

// modeKey carries the request's brownout mode through context so
// resolveAnalyze can pick the execution path (kernel, stale cache,
// analytic) the envelope decided on.
type modeKey struct{}

func withMode(ctx context.Context, m brownout.Mode) context.Context {
	return context.WithValue(ctx, modeKey{}, m)
}

func modeFrom(ctx context.Context) brownout.Mode {
	if m, ok := ctx.Value(modeKey{}).(brownout.Mode); ok {
		return m
	}
	return brownout.B0
}

// Route criticality tiers. Admin routes (healthz, metrics, /v1/faults,
// /v1/brownout, /v1/trace/{id}) never shed — they are registered outside
// the envelope, and the tools for diagnosing an overloaded or draining
// server must answer during overload and drain. Critical routes are the
// analysis surface the ladder exists to keep alive; everything else is
// non-critical and sheds first.
var criticalRoutes = map[string]bool{
	"analyze":      true,
	"advise":       true,
	"characterize": true,
	"platforms":    true,
}

// shedAt returns the lowest brownout mode at which the named route sheds.
func shedAt(route string) brownout.Mode {
	if criticalRoutes[route] {
		return brownout.B4
	}
	return brownout.B3
}

// pressure is the scalar the brownout controller consumes: the limiter's
// occupancy estimate normalized by its ceiling. The numerator takes
// max(inflight+queued, n_avg): n_avg (= Σ λ·W over admitted work) measures
// service-time occupancy but saturates near the ceiling once admission
// caps it, while inflight+queued sees the queue building — together they
// keep the signal monotone in offered load up to ceiling+queue, which is
// what gives the upper ladder rungs something to trigger on.
func (s *Server) pressure() float64 {
	if s.limiter == nil {
		return 0
	}
	snap := s.limiter.Snapshot()
	ceiling := s.limiter.Ceiling()
	if ceiling <= 0 {
		return 0
	}
	return max(float64(snap.InFlight+snap.QueueDepth), snap.NAvg) / ceiling
}

// observeMode samples pressure into the controller and returns the
// effective mode — B0 when brownout is disabled.
func (s *Server) observeMode() brownout.Mode {
	if s.brownout == nil {
		return brownout.B0
	}
	return s.brownout.Observe(s.pressure())
}

// BrownoutState is the body of GET /v1/brownout.
type BrownoutState struct {
	Mode     string  `json:"mode"`
	Label    string  `json:"label"`
	Pinned   bool    `json:"pinned"`
	Pressure float64 `json:"pressure"`
	DwellS   float64 `json:"dwell_s"`
	// Transitions counts mode changes (both directions, including pins).
	Transitions uint64 `json:"transitions"`
	// TimeInModeS is cumulative wall seconds per rung, keyed "B0".."B4".
	TimeInModeS map[string]float64 `json:"time_in_mode_s"`
	Enter       []float64          `json:"enter_thresholds"`
	Exit        []float64          `json:"exit_thresholds"`
	DwellUpS    float64            `json:"dwell_up_s"`
	DwellDownS  float64            `json:"dwell_down_s"`
	Draining    bool               `json:"draining,omitempty"`
}

// BrownoutRequest is the body of POST /v1/brownout: exactly one of Pin (a
// mode name, "B2" or "analytic") or Unpin.
type BrownoutRequest struct {
	Pin   string `json:"pin,omitempty"`
	Unpin bool   `json:"unpin,omitempty"`
}

func (s *Server) brownoutState() BrownoutState {
	snap := s.brownout.Snapshot()
	st := BrownoutState{
		Mode:        snap.Mode.String(),
		Label:       snap.Mode.Label(),
		Pinned:      snap.Pinned,
		Pressure:    snap.Pressure,
		DwellS:      snap.Dwell.Seconds(),
		Transitions: snap.Transitions,
		TimeInModeS: make(map[string]float64, brownout.NumModes),
		Enter:       snap.Config.Enter[:],
		Exit:        snap.Config.Exit[:],
		DwellUpS:    snap.Config.DwellUp.Seconds(),
		DwellDownS:  snap.Config.DwellDown.Seconds(),
		Draining:    s.Draining(),
	}
	for m := brownout.B0; m < brownout.NumModes; m++ {
		st.TimeInModeS[m.String()] = snap.TimeIn[m].Seconds()
	}
	return st
}

// handleBrownoutGet is GET /v1/brownout: the controller's live state.
// Registered outside the limiter and the envelope — an ops surface must
// answer while the server sheds.
func (s *Server) handleBrownoutGet(w http.ResponseWriter, r *http.Request) {
	if s.brownout == nil {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "brownout controller disabled"})
		return
	}
	// Reading state is also a sample: keep the ladder moving even when all
	// traffic is coming through admin probes.
	s.observeMode()
	s.writeJSON(w, http.StatusOK, s.brownoutState())
}

// handleBrownoutPost is POST /v1/brownout: pin a mode or unpin.
func (s *Server) handleBrownoutPost(w http.ResponseWriter, r *http.Request) {
	if s.brownout == nil {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "brownout controller disabled"})
		return
	}
	body, err := readBody(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	var req BrownoutRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if (req.Pin == "") == !req.Unpin {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "exactly one of pin or unpin is required"})
		return
	}
	if req.Unpin {
		s.brownout.Unpin()
	} else {
		m, err := brownout.Parse(req.Pin)
		if err != nil {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		if err := s.brownout.Pin(m); err != nil {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
	}
	s.writeJSON(w, http.StatusOK, s.brownoutState())
}

// ---- drain lifecycle ----

// trackStream registers a live ad-hoc watch broker for drain notification;
// the returned func removes it when the originating request completes.
// Named brokers stay in s.watches for history replay and are notified from
// there instead.
func (s *Server) trackStream(br *stream.Broker) func() {
	s.liveMu.Lock()
	s.liveStreams[br] = struct{}{}
	s.liveMu.Unlock()
	return func() {
		s.liveMu.Lock()
		delete(s.liveStreams, br)
		s.liveMu.Unlock()
	}
}

// BeginDrain flips the server into its terminal mode: /healthz reports
// "draining" (the proxy's prober stops routing here), every /v1 request —
// including streams — sheds with 503 + Retry-After, and every live watch
// and trace-tail subscriber receives a terminal "shutdown" event before
// its stream closes, so clients can distinguish a graceful close from a
// cut connection. Idempotent; it never blocks on subscribers (brokers are
// drop-oldest). The caller then waits for InFlight to reach zero (up to
// its drain deadline) before closing the listener.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		var brokers []*stream.Broker
		s.watchMu.Lock()
		for _, br := range s.watches {
			brokers = append(brokers, br)
		}
		s.watchMu.Unlock()
		s.liveMu.Lock()
		for br := range s.liveStreams {
			brokers = append(brokers, br)
		}
		s.liveMu.Unlock()
		for _, br := range brokers {
			br.Publish(stream.Event{Kind: "shutdown"})
			br.Close()
		}
		s.traceBroker.Publish(trace.Record{Terminal: "shutdown"})
		s.traceBroker.Close()
	})
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of requests currently inside the envelope —
// the quantity a draining main loop polls to zero.
func (s *Server) InFlight() int64 { return s.inflight.Value() }

// brownoutRetryAfter is the Retry-After hint on tier sheds: the default
// DwellDown — the soonest the ladder could possibly have descended a rung.
const brownoutRetryAfter = 2 * time.Second

// drainRetryAfter is the Retry-After hint on drain sheds: long enough for
// a rolling restart's replacement process to come up, short enough that a
// client retrying through a proxy fails over immediately (503 is
// failover-worthy there) and a direct client is not parked.
const drainRetryAfter = time.Second

func errDraining() error {
	return failWithRetry(http.StatusServiceUnavailable,
		fmt.Errorf("server is draining for shutdown"), drainRetryAfter)
}
