// The /v1/watch endpoints: the stream monitor served over HTTP. A POST
// creates a monitored stream (from inline counter samples or a replayed
// simulation) and streams its events back as NDJSON — or SSE when the
// client asks with Accept: text/event-stream. Naming the stream registers
// its broker so any number of GET /v1/watch/{stream} subscribers can
// follow along (or join late: the broker replays history, so every
// subscriber sees the same sequence, modulo drop-oldest under a slow
// client).
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"

	"littleslaw/internal/faults"
	"littleslaw/internal/platform"
	"littleslaw/internal/stream"
	"littleslaw/internal/workloads"
)

// WatchSampleJSON is one inline counter sample.
type WatchSampleJSON struct {
	TS           float64 `json:"t_s"`
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	// PrefetchedReadFraction, when the counters expose it; nil = unknown.
	PrefetchedReadFraction *float64 `json:"prefetched_read_fraction,omitempty"`
}

// WatchPhaseJSON is one replayed simulation phase: the named workload runs
// through the engine pool and its measured bandwidth becomes Samples
// consecutive samples.
type WatchPhaseJSON struct {
	Workload       string       `json:"workload"`
	Variant        *VariantSpec `json:"variant,omitempty"`
	ThreadsPerCore int          `json:"threads_per_core,omitempty"`
	Scale          float64      `json:"scale,omitempty"`
	// Samples emitted for this phase (default 16).
	Samples int `json:"samples,omitempty"`
}

// DetectorSpec tunes the CUSUM phase detector over the wire.
type DetectorSpec struct {
	Slack      float64 `json:"slack,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	MinWindows int     `json:"min_windows,omitempty"`
}

// WatchRequest is the input to POST /v1/watch. Exactly one of Samples
// (inline counters) or Phases (replayed simulation) must be supplied.
type WatchRequest struct {
	Platform string            `json:"platform"`
	Samples  []WatchSampleJSON `json:"samples,omitempty"`
	Phases   []WatchPhaseJSON  `json:"phases,omitempty"`
	// PeriodS spaces replayed samples in stream time (default 1s).
	PeriodS float64 `json:"period_s,omitempty"`
	// WindowSamples / StrideSamples configure the sliding window
	// (defaults 8 and window/2).
	WindowSamples int `json:"window_samples,omitempty"`
	StrideSamples int `json:"stride_samples,omitempty"`
	// ActiveCores / ThreadsPerCore / RandomAccess classify inline samples
	// the same way MeasurementSpec does; replays derive them from the run.
	ActiveCores    int           `json:"active_cores,omitempty"`
	ThreadsPerCore int           `json:"threads_per_core,omitempty"`
	RandomAccess   bool          `json:"random_access,omitempty"`
	Detector       *DetectorSpec `json:"detector,omitempty"`
	// Stream optionally names the stream so GET /v1/watch/{stream} can
	// subscribe to it.
	Stream string `json:"stream,omitempty"`
	// History bounds the broker's replay buffer (default 8192 events).
	History int `json:"history,omitempty"`
}

const (
	maxWatchPhases       = 16
	maxWatchPhaseSamples = 512
	maxWatchHistory      = 1 << 16
	maxNamedStreams      = 64
)

var streamNameRE = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,64}$`)

func (r *WatchRequest) validate() error {
	if r.Platform == "" {
		return fmt.Errorf("platform is required")
	}
	if (len(r.Samples) == 0) == (len(r.Phases) == 0) {
		return fmt.Errorf("exactly one of samples or phases is required")
	}
	prev := float64(-1)
	for i, s := range r.Samples {
		if !isFinite(s.BandwidthGBs) || s.BandwidthGBs < 0 {
			return fmt.Errorf("samples[%d].bandwidth_gbs must be finite and non-negative", i)
		}
		if !isFinite(s.TS) || s.TS < prev {
			return fmt.Errorf("samples[%d].t_s must be finite and non-decreasing", i)
		}
		prev = s.TS
		if f := s.PrefetchedReadFraction; f != nil && (!isFinite(*f) || *f < 0 || *f > 1) {
			return fmt.Errorf("samples[%d].prefetched_read_fraction must be in [0, 1]", i)
		}
	}
	if len(r.Phases) > maxWatchPhases {
		return fmt.Errorf("at most %d phases", maxWatchPhases)
	}
	for i, ph := range r.Phases {
		if ph.Workload == "" {
			return fmt.Errorf("phases[%d].workload is required", i)
		}
		if ph.ThreadsPerCore < 0 || ph.ThreadsPerCore > 8 {
			return fmt.Errorf("phases[%d].threads_per_core must be in [1, 8]", i)
		}
		if ph.Samples < 0 || ph.Samples > maxWatchPhaseSamples {
			return fmt.Errorf("phases[%d].samples must be in [1, %d]", i, maxWatchPhaseSamples)
		}
		if err := validateScale(ph.Scale); err != nil {
			return fmt.Errorf("phases[%d]: %w", i, err)
		}
	}
	if r.PeriodS != 0 && (!isFinite(r.PeriodS) || r.PeriodS <= 0) {
		return fmt.Errorf("period_s must be positive")
	}
	if r.WindowSamples < 0 || r.StrideSamples < 0 {
		return fmt.Errorf("window_samples and stride_samples must be positive")
	}
	if r.ActiveCores < 0 || r.ThreadsPerCore < 0 {
		return fmt.Errorf("active_cores and threads_per_core must be non-negative")
	}
	if d := r.Detector; d != nil {
		if !isFinite(d.Slack) || d.Slack < 0 || !isFinite(d.Threshold) || d.Threshold < 0 || d.MinWindows < 0 {
			return fmt.Errorf("detector values must be finite and non-negative")
		}
	}
	if r.Stream != "" && !streamNameRE.MatchString(r.Stream) {
		return fmt.Errorf("stream must match %s", streamNameRE)
	}
	if r.History < 0 || r.History > maxWatchHistory {
		return fmt.Errorf("history must be in [0, %d]", maxWatchHistory)
	}
	return nil
}

// DecodeWatchRequest parses and validates a /v1/watch body.
func DecodeWatchRequest(data []byte) (*WatchRequest, error) {
	var r WatchRequest
	if err := decodeStrict(data, &r); err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// watchSource builds the sample source and the measurement context the
// request implies: inline samples carry the request's own classification,
// a replay derives cores/threads/access pattern from the simulated runs.
func (s *Server) watchSource(ctx context.Context, p *platform.Platform, req *WatchRequest) (stream.Source, stream.Config, error) {
	cfg := stream.Config{
		Platform:       p,
		WindowSamples:  req.WindowSamples,
		StrideSamples:  req.StrideSamples,
		ActiveCores:    req.ActiveCores,
		ThreadsPerCore: req.ThreadsPerCore,
		RandomAccess:   req.RandomAccess,
	}
	if d := req.Detector; d != nil {
		cfg.Detector = stream.DetectorConfig{Slack: d.Slack, Threshold: d.Threshold, MinWindows: d.MinWindows}
	}
	if len(req.Samples) > 0 {
		samples := make([]stream.Sample, len(req.Samples))
		for i, in := range req.Samples {
			samples[i] = stream.Sample{TS: in.TS, BandwidthGBs: in.BandwidthGBs, PrefetchedReadFraction: -1}
			if in.PrefetchedReadFraction != nil {
				samples[i].PrefetchedReadFraction = *in.PrefetchedReadFraction
			}
		}
		return stream.NewSliceSource(samples), cfg, nil
	}

	phases := make([]stream.ReplayPhase, len(req.Phases))
	for i, ph := range req.Phases {
		wl, ok := workloads.ByName(ph.Workload)
		if !ok {
			return nil, cfg, failWith(http.StatusNotFound, fmt.Errorf("unknown workload %q", ph.Workload))
		}
		wl = wl.WithVariant(ph.Variant.Variant())
		threads := ph.ThreadsPerCore
		if threads == 0 {
			threads = 1
		}
		if threads > p.SMTWays {
			return nil, cfg, failWith(http.StatusBadRequest,
				fmt.Errorf("platform %s supports at most %d threads per core", p.Name, p.SMTWays))
		}
		scale := ph.Scale
		if scale == 0 {
			scale = 0.1
		}
		phases[i] = stream.ReplayPhase{Label: wl.Routine(), Config: wl.Config(p, threads, scale), Samples: ph.Samples}
		cfg.RandomAccess = cfg.RandomAccess || wl.RandomAccess()
	}
	src, results, err := stream.Replay(ctx, phases, stream.ReplayOptions{PeriodS: req.PeriodS, Workers: s.cfg.Workers})
	if err != nil {
		return nil, cfg, err
	}
	for _, res := range results {
		cfg.ActiveCores = max(cfg.ActiveCores, res.Result.Cores)
		cfg.ThreadsPerCore = max(cfg.ThreadsPerCore, res.Result.ThreadsPerCore)
	}
	return src, cfg, nil
}

// registerWatch claims a stream name for a broker. The registration
// outlives the originating request so late subscribers can replay the
// finished stream from history.
func (s *Server) registerWatch(name string, br *stream.Broker) error {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if len(s.watches) >= maxNamedStreams {
		return failWith(http.StatusTooManyRequests, fmt.Errorf("at most %d named streams", maxNamedStreams))
	}
	if _, ok := s.watches[name]; ok {
		return failWith(http.StatusConflict, fmt.Errorf("stream %q already exists", name))
	}
	s.watches[name] = br
	return nil
}

func (s *Server) lookupWatch(name string) *stream.Broker {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return s.watches[name]
}

// handleWatch is POST /v1/watch: build the source (running any replay
// simulations up front, so errors still map to clean status codes), then
// stream the monitor's events to the caller. The monitor publishes into a
// broker, never directly to the connection, so a slow caller drops old
// events rather than stalling the pipeline — and named streams serve other
// subscribers at full speed regardless.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	req, err := DecodeWatchRequest(body)
	if err != nil {
		return failWith(http.StatusBadRequest, err)
	}
	p, err := platform.ByName(req.Platform)
	if err != nil {
		return failWith(http.StatusNotFound, err)
	}
	profile, _, err := s.profile(r.Context(), p)
	if err != nil {
		return err
	}
	src, cfg, err := s.watchSource(r.Context(), p, req)
	if err != nil {
		return err
	}
	cfg.Profile = profile
	if err := cfg.Validate(); err != nil {
		return failWith(http.StatusBadRequest, err)
	}

	label := req.Stream
	if label == "" {
		label = "adhoc"
	}
	br := stream.NewBroker(req.History)
	br.OnPublish = func() { s.streamEvents.With(label).Inc() }
	br.OnDrop = func() { s.streamDropped.With(label).Inc() }
	if req.Stream != "" {
		if err := s.registerWatch(req.Stream, br); err != nil {
			return err
		}
	} else {
		// Ad-hoc streams must still hear the terminal shutdown event on
		// drain; named ones are reachable through the watch registry.
		defer s.trackStream(br)()
	}

	// The monitor runs on the request context: if the originating client
	// goes away (or times out), the stream ends for everyone.
	done := make(chan error, 1)
	go func() {
		defer br.Close()
		_, err := stream.Monitor(r.Context(), src, cfg, func(ev stream.Event) error {
			br.Publish(ev)
			return nil
		})
		if err != nil {
			// Graceful degradation: a monitor that dies mid-stream (an
			// injected fault, an expired context) publishes a terminal
			// error event before the broker closes, so every subscriber —
			// including late ones replaying history — learns why the
			// stream ended instead of seeing a silent truncation.
			br.Publish(stream.Event{Kind: "error", Error: &stream.ErrorEvent{Message: err.Error()}})
		}
		done <- err
	}()
	if err := s.serveStream(w, r, label, br); err != nil {
		return err
	}
	<-done
	return nil
}

// handleWatchSubscribe is GET /v1/watch/{stream}: attach to a named
// stream's broker. Late subscribers replay history first, so every
// subscriber observes the same event sequence.
func (s *Server) handleWatchSubscribe(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("stream")
	br := s.lookupWatch(name)
	if br == nil {
		return failWith(http.StatusNotFound, fmt.Errorf("unknown stream %q", name))
	}
	return s.serveStream(w, r, name, br)
}

// serveStream subscribes to the broker and writes events to the client
// until the stream closes or the client disconnects. NDJSON by default;
// SSE when the Accept header asks for text/event-stream.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, label string, br *stream.Broker) error {
	buffer := 256
	if v := r.URL.Query().Get("buffer"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > maxWatchHistory {
			return failWith(http.StatusBadRequest, fmt.Errorf("buffer must be in [1, %d]", maxWatchHistory))
		}
		buffer = parsed
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	contentType := "application/x-ndjson"
	if sse {
		contentType = "text/event-stream"
	}

	sub := br.Subscribe(buffer)
	defer sub.Close()
	gauge := s.streamSubs.With(label)
	gauge.Inc()
	defer gauge.Dec()

	hardenHeaders(w.Header(), contentType, true)
	s.armWrite(w)
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return nil
		case ev, ok := <-sub.Events():
			if !ok {
				return nil
			}
			// Re-arm before every event: the deadline bounds each write, not
			// the stream — a healthy subscriber can stay for hours while a
			// stalled one is cut WriteTimeout after its last drained write.
			s.armWrite(w)
			// The stream-serving fault site: a drip fault delays each event
			// write (a client on a congested link); bounded by the same
			// per-write deadline as a genuinely slow peer.
			if f := s.faults.Eval("stream.serve"); f.Kind == faults.KindDrip || f.Kind == faults.KindLatency {
				f.Sleep(r.Context())
			}
			if sse {
				data, err := json.Marshal(ev)
				if err != nil {
					return nil
				}
				if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind, ev.Seq, data); err != nil {
					return nil
				}
			} else if err := enc.Encode(ev); err != nil {
				return nil
			}
			if err := rc.Flush(); err != nil {
				return nil
			}
		}
	}
}
