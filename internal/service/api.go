package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"littleslaw/internal/core"
	"littleslaw/internal/sim"
	"littleslaw/internal/workloads"
)

// MaxBodyBytes bounds request bodies; the API's requests are tiny JSON
// objects, so anything larger is malformed or hostile.
const MaxBodyBytes = 1 << 20

// VariantSpec selects a workload's optimization state over the wire.
type VariantSpec struct {
	Vectorized       bool `json:"vectorized,omitempty"`
	SWPrefetchL2     bool `json:"sw_prefetch_l2,omitempty"`
	SWPrefetchL1     bool `json:"sw_prefetch_l1,omitempty"`
	PrefetchDistance int  `json:"prefetch_distance,omitempty"`
	Tiled            bool `json:"tiled,omitempty"`
	UnrollJam        bool `json:"unroll_jam,omitempty"`
	NoFuse           bool `json:"no_fuse,omitempty"`
}

// Variant converts the wire form to the workloads type.
func (v *VariantSpec) Variant() workloads.Variant {
	if v == nil {
		return workloads.Variant{}
	}
	return workloads.Variant{
		Vectorized:       v.Vectorized,
		SWPrefetchL2:     v.SWPrefetchL2,
		SWPrefetchL1:     v.SWPrefetchL1,
		PrefetchDistance: v.PrefetchDistance,
		Tiled:            v.Tiled,
		UnrollJam:        v.UnrollJam,
		NoFuse:           v.NoFuse,
	}
}

// MeasurementSpec is a directly supplied counter measurement — the
// "analyst already has numbers" path that skips the simulated run.
type MeasurementSpec struct {
	Routine      string  `json:"routine,omitempty"`
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	// ActiveCores in the measured run; 0 means the full node.
	ActiveCores int `json:"active_cores,omitempty"`
	// ThreadsPerCore in the measured run; 0 means 1.
	ThreadsPerCore int `json:"threads_per_core,omitempty"`
	// PrefetchedReadFraction, when the platform's counters expose it;
	// nil means unknown (the classification falls back to RandomAccess).
	PrefetchedReadFraction *float64 `json:"prefetched_read_fraction,omitempty"`
	RandomAccess           bool     `json:"random_access,omitempty"`
}

// Measurement converts the wire form to the core type.
func (m *MeasurementSpec) Measurement() core.Measurement {
	out := core.Measurement{
		Routine:                m.Routine,
		BandwidthGBs:           m.BandwidthGBs,
		ActiveCores:            m.ActiveCores,
		ThreadsPerCore:         m.ThreadsPerCore,
		PrefetchedReadFraction: -1,
		RandomAccess:           m.RandomAccess,
	}
	if out.ThreadsPerCore == 0 {
		out.ThreadsPerCore = 1
	}
	if m.PrefetchedReadFraction != nil {
		out.PrefetchedReadFraction = *m.PrefetchedReadFraction
	}
	return out
}

func (m *MeasurementSpec) validate() error {
	if !isFinite(m.BandwidthGBs) || m.BandwidthGBs < 0 {
		return fmt.Errorf("measurement.bandwidth_gbs must be finite and non-negative")
	}
	if m.ActiveCores < 0 {
		return fmt.Errorf("measurement.active_cores must be non-negative")
	}
	if m.ThreadsPerCore < 0 {
		return fmt.Errorf("measurement.threads_per_core must be non-negative")
	}
	if f := m.PrefetchedReadFraction; f != nil && (!isFinite(*f) || *f < 0 || *f > 1) {
		return fmt.Errorf("measurement.prefetched_read_fraction must be in [0, 1]")
	}
	return nil
}

// AnalyzeRequest is the input to /v1/analyze and /v1/advise. Exactly one
// of Measurement (direct counters) or Workload (simulate, then analyze)
// must be supplied.
type AnalyzeRequest struct {
	Platform    string           `json:"platform"`
	Workload    string           `json:"workload,omitempty"`
	Variant     *VariantSpec     `json:"variant,omitempty"`
	Measurement *MeasurementSpec `json:"measurement,omitempty"`
	// ThreadsPerCore for the simulated run (default 1).
	ThreadsPerCore int `json:"threads_per_core,omitempty"`
	// Scale for the simulated run (default 0.1 — interactive latency;
	// 1.0 is full benchmark size).
	Scale float64 `json:"scale,omitempty"`
}

func (r *AnalyzeRequest) validate() error {
	if r.Platform == "" {
		return fmt.Errorf("platform is required")
	}
	if (r.Workload == "") == (r.Measurement == nil) {
		return fmt.Errorf("exactly one of workload or measurement is required")
	}
	if r.Measurement != nil {
		if r.Variant != nil || r.ThreadsPerCore != 0 || r.Scale != 0 {
			return fmt.Errorf("variant, threads_per_core and scale apply only to workload runs")
		}
		return r.Measurement.validate()
	}
	if r.ThreadsPerCore < 0 || r.ThreadsPerCore > 8 {
		return fmt.Errorf("threads_per_core must be in [1, 8]")
	}
	return validateScale(r.Scale)
}

// CharacterizeRequest is the input to /v1/characterize.
type CharacterizeRequest struct {
	Platform string `json:"platform"`
}

func (r *CharacterizeRequest) validate() error {
	if r.Platform == "" {
		return fmt.Errorf("platform is required")
	}
	return nil
}

// TuneRequest is the input to /v1/tune.
type TuneRequest struct {
	Platform string `json:"platform"`
	Workload string `json:"workload"`
	// Scale per probe run (default 0.1).
	Scale float64 `json:"scale,omitempty"`
	// MaxSteps bounds the loop (default 8).
	MaxSteps int `json:"max_steps,omitempty"`
	// AcceptThreshold is the minimum speedup to keep a change (default 1.03).
	AcceptThreshold float64 `json:"accept_threshold,omitempty"`
	// UserIntuition enables the §IV-F fallback.
	UserIntuition bool `json:"user_intuition,omitempty"`
}

func (r *TuneRequest) validate() error {
	if r.Platform == "" {
		return fmt.Errorf("platform is required")
	}
	if r.Workload == "" {
		return fmt.Errorf("workload is required")
	}
	if r.MaxSteps < 0 || r.MaxSteps > 64 {
		return fmt.Errorf("max_steps must be in [0, 64]")
	}
	if t := r.AcceptThreshold; t != 0 && (!isFinite(t) || t < 0.5 || t > 10) {
		return fmt.Errorf("accept_threshold must be in [0.5, 10]")
	}
	return validateScale(r.Scale)
}

func validateScale(s float64) error {
	if s == 0 {
		return nil
	}
	if !isFinite(s) || s <= 0 || s > 1 {
		return fmt.Errorf("scale must be in (0, 1]")
	}
	return nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// decodeStrict unmarshals JSON rejecting unknown fields, trailing garbage
// and non-object payloads — the hard shell the fuzz target leans on.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid JSON: trailing data after request object")
	}
	return nil
}

// DecodeAnalyzeRequest parses and validates an /v1/analyze body.
func DecodeAnalyzeRequest(data []byte) (*AnalyzeRequest, error) {
	var r AnalyzeRequest
	if err := decodeStrict(data, &r); err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeCharacterizeRequest parses and validates a /v1/characterize body.
func DecodeCharacterizeRequest(data []byte) (*CharacterizeRequest, error) {
	var r CharacterizeRequest
	if err := decodeStrict(data, &r); err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeTuneRequest parses and validates a /v1/tune body.
func DecodeTuneRequest(data []byte) (*TuneRequest, error) {
	var r TuneRequest
	if err := decodeStrict(data, &r); err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// NormalizeTableID maps the accepted spellings of a table identifier to
// the canonical roman numeral: "IV".."IX" (any case), "T4".."T9", or
// "4".."9".
func NormalizeTableID(id string) (string, error) {
	up := strings.ToUpper(strings.TrimSpace(id))
	up = strings.TrimPrefix(up, "T")
	switch up {
	case "IV", "4":
		return "IV", nil
	case "V", "5":
		return "V", nil
	case "VI", "6":
		return "VI", nil
	case "VII", "7":
		return "VII", nil
	case "VIII", "8":
		return "VIII", nil
	case "IX", "9":
		return "IX", nil
	}
	return "", fmt.Errorf("unknown table %q (want IV..IX, T4..T9 or 4..9)", id)
}

// ---- response mirrors (stable wire names for internal types) ----

// PlatformJSON describes one machine.
type PlatformJSON struct {
	Name      string  `json:"name"`
	Vendor    string  `json:"vendor"`
	ISA       string  `json:"isa"`
	Cores     int     `json:"cores"`
	SMTWays   int     `json:"smt_ways"`
	FreqGHz   float64 `json:"freq_ghz"`
	LineBytes int     `json:"line_bytes"`
	PeakGBs   float64 `json:"peak_gbs"`
	L1MSHRs   int     `json:"l1_mshrs"`
	L2MSHRs   int     `json:"l2_mshrs"`
}

// ReportJSON mirrors core.Report.
type ReportJSON struct {
	Routine            string  `json:"routine,omitempty"`
	Platform           string  `json:"platform"`
	BandwidthGBs       float64 `json:"bandwidth_gbs"`
	PeakFraction       float64 `json:"peak_fraction"`
	AchievableFraction float64 `json:"achievable_fraction"`
	LatencyNs          float64 `json:"latency_ns"`
	Occupancy          float64 `json:"occupancy"`
	Limiter            string  `json:"limiter"`
	LimiterCapacity    int     `json:"limiter_capacity"`
	HeadroomFraction   float64 `json:"headroom_fraction"`
	L2SpareMSHRs       float64 `json:"l2_spare_mshrs"`
	OccupancySaturated bool    `json:"occupancy_saturated"`
	BandwidthSaturated bool    `json:"bandwidth_saturated"`
	ComputeBound       bool    `json:"compute_bound"`
}

func reportJSON(r *core.Report) ReportJSON {
	return ReportJSON{
		Routine:            r.Routine,
		Platform:           r.Platform,
		BandwidthGBs:       r.BandwidthGBs,
		PeakFraction:       r.PeakFraction,
		AchievableFraction: r.AchievableFraction,
		LatencyNs:          r.LatencyNs,
		Occupancy:          r.Occupancy,
		Limiter:            r.Limiter.String(),
		LimiterCapacity:    r.LimiterCapacity,
		HeadroomFraction:   r.HeadroomFraction,
		L2SpareMSHRs:       r.L2SpareMSHRs,
		OccupancySaturated: r.OccupancySaturated(),
		BandwidthSaturated: r.BandwidthSaturated(),
		ComputeBound:       r.ComputeBound(),
	}
}

// RunJSON mirrors the interesting parts of sim.Result.
type RunJSON struct {
	Cores                  int     `json:"cores"`
	ThreadsPerCore         int     `json:"threads_per_core"`
	Throughput             float64 `json:"throughput"`
	ReadGBs                float64 `json:"read_gbs"`
	WriteGBs               float64 `json:"write_gbs"`
	TotalGBs               float64 `json:"total_gbs"`
	MeanDRAMLatencyNs      float64 `json:"mean_dram_latency_ns"`
	TrueL1Occ              float64 `json:"true_l1_occ"`
	TrueL2Occ              float64 `json:"true_l2_occ"`
	PrefetchedReadFraction float64 `json:"prefetched_read_fraction"`
}

func runJSON(r *sim.Result) *RunJSON {
	return &RunJSON{
		Cores:                  r.Cores,
		ThreadsPerCore:         r.ThreadsPerCore,
		Throughput:             r.Throughput,
		ReadGBs:                r.ReadGBs,
		WriteGBs:               r.WriteGBs,
		TotalGBs:               r.TotalGBs,
		MeanDRAMLatencyNs:      r.MeanDRAMLatencyNs,
		TrueL1Occ:              r.TrueL1Occ,
		TrueL2Occ:              r.TrueL2Occ,
		PrefetchedReadFraction: r.PrefetchedReadFraction,
	}
}

// AnalyzeResponse is the output of /v1/analyze.
type AnalyzeResponse struct {
	Report      ReportJSON `json:"report"`
	Run         *RunJSON   `json:"run,omitempty"`
	Explanation string     `json:"explanation"`
	// Degraded marks a brownout answer: the report is still correct for
	// the question asked, but it was produced by a cheaper path. Exactly
	// one of Approximate (closed-form analytic model instead of the
	// discrete-event kernel; Run is absent) or Stale (an expired cache
	// entry served past its TTL) explains why, and BrownoutMode names the
	// ladder rung that chose it.
	Degraded     bool   `json:"degraded,omitempty"`
	BrownoutMode string `json:"brownout_mode,omitempty"`
	Approximate  bool   `json:"approximate,omitempty"`
	Stale        bool   `json:"stale,omitempty"`
}

// AdviceJSON is one recipe verdict.
type AdviceJSON struct {
	Optimization string `json:"optimization"`
	Stance       string `json:"stance"`
	Reason       string `json:"reason"`
}

// AdviseResponse is the output of /v1/advise.
type AdviseResponse struct {
	Report      ReportJSON   `json:"report"`
	Advice      []AdviceJSON `json:"advice"`
	Explanation string       `json:"explanation"`
	// Degraded/BrownoutMode/Approximate/Stale: see AnalyzeResponse.
	Degraded     bool   `json:"degraded,omitempty"`
	BrownoutMode string `json:"brownout_mode,omitempty"`
	Approximate  bool   `json:"approximate,omitempty"`
	Stale        bool   `json:"stale,omitempty"`
}

// CharacterizeResponse is the output of /v1/characterize.
type CharacterizeResponse struct {
	Platform  string      `json:"platform"`
	LineBytes int         `json:"line_bytes"`
	Points    []PointJSON `json:"points"`
	// Cached reports whether the profile was served from the profile
	// cache (or deduplicated onto a concurrent characterization) rather
	// than measured for this request.
	Cached bool `json:"cached"`
}

// PointJSON is one profile sample.
type PointJSON struct {
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	LatencyNs    float64 `json:"latency_ns"`
}

// TuneStepJSON is one accepted/rejected probe of the tuning loop.
type TuneStepJSON struct {
	Tried    string     `json:"tried"`
	Speedup  float64    `json:"speedup"`
	Accepted bool       `json:"accepted"`
	Report   ReportJSON `json:"report"`
}

// TuneResponse is the output of /v1/tune.
type TuneResponse struct {
	Workload     string         `json:"workload"`
	Platform     string         `json:"platform"`
	Steps        []TuneStepJSON `json:"steps"`
	FinalSource  string         `json:"final_source"`
	TotalSpeedup float64        `json:"total_speedup"`
	FinalReport  ReportJSON     `json:"final_report"`
}

// TableRowJSON mirrors experiments.Row.
type TableRowJSON struct {
	Platform     string  `json:"platform"`
	Source       string  `json:"source"`
	Threads      int     `json:"threads"`
	BWGBs        float64 `json:"bw_gbs"`
	PeakPct      float64 `json:"peak_pct"`
	LatNs        float64 `json:"lat_ns"`
	Occupancy    float64 `json:"n_avg"`
	TrueL1Occ    float64 `json:"true_l1_occ"`
	TrueL2Occ    float64 `json:"true_l2_occ"`
	NextOpt      string  `json:"next_opt,omitempty"`
	Stance       string  `json:"stance,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	PaperBW      float64 `json:"paper_bw,omitempty"`
	PaperOcc     float64 `json:"paper_n_avg,omitempty"`
	PaperSpeedup float64 `json:"paper_speedup,omitempty"`
}

// TableResponse is the output of /v1/tables/{id}.
type TableResponse struct {
	ID       string         `json:"id"`
	Workload string         `json:"workload"`
	Routine  string         `json:"routine"`
	Scale    float64        `json:"scale"`
	Rows     []TableRowJSON `json:"rows"`
	// Cached reports whether the table came from the table cache.
	Cached bool `json:"cached"`
}

// ErrorResponse is the error envelope every non-2xx response carries.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthzResponse is the readiness body GET /healthz returns. The endpoint
// keeps its plain-200 liveness contract (it never returns non-200 while the
// process serves); the body lets a cluster prober distinguish "up" from
// "drowning" by reading the limiter's live Little's-Law occupancy.
type HealthzResponse struct {
	// Status is "ok"; "overloaded" when the admission controller's
	// occupancy estimate has reached its ceiling (requests are queueing or
	// shedding; the process is still alive); or "draining" once shutdown
	// began — draining wins, it tells the prober to route elsewhere now.
	Status  string `json:"status"`
	Version string `json:"version"`
	// BrownoutMode is the degradation rung currently serving ("B0".."B4";
	// empty when the brownout controller is disabled). Draining reports
	// that shutdown has begun and new work is being refused.
	BrownoutMode string `json:"brownout_mode,omitempty"`
	Draining     bool   `json:"draining,omitempty"`
	// LimiterNAvg is the admission controller's live n_avg = Σ λ·W
	// (absent when admission control is disabled).
	LimiterNAvg     *float64 `json:"limiter_navg,omitempty"`
	LimiterCeiling  *float64 `json:"limiter_ceiling,omitempty"`
	LimiterInflight int      `json:"limiter_inflight,omitempty"`
	QueueDepth      int      `json:"queue_depth,omitempty"`
	// ActiveStreams counts named /v1/watch brokers currently registered.
	ActiveStreams int `json:"active_streams"`
	// StreamClients counts live watch connections against the session cap.
	StreamClients int `json:"stream_clients"`
}
