// POST /v1/analyze/batch: coalesce up to MaxBatchSize analyze requests
// into one HTTP request, fanned out across the engine pool. One admission
// slot covers the whole batch, so under load a client batching N analyses
// consumes 1/N of the arrival budget a naive client would — the
// batching-as-load-management move the endpoint exists to reward.
package service

import (
	"context"
	"fmt"
	"net/http"

	"littleslaw/internal/engine"
)

// MaxBatchSize bounds one /v1/analyze/batch request.
const MaxBatchSize = 16

// BatchAnalyzeRequest is the input to /v1/analyze/batch.
type BatchAnalyzeRequest struct {
	Requests []AnalyzeRequest `json:"requests"`
}

func (r *BatchAnalyzeRequest) validate() error {
	if len(r.Requests) == 0 {
		return fmt.Errorf("requests is required")
	}
	if len(r.Requests) > MaxBatchSize {
		return fmt.Errorf("at most %d requests per batch", MaxBatchSize)
	}
	for i := range r.Requests {
		if err := r.Requests[i].validate(); err != nil {
			return fmt.Errorf("requests[%d]: %w", i, err)
		}
	}
	return nil
}

// DecodeBatchAnalyzeRequest parses and validates a /v1/analyze/batch body.
func DecodeBatchAnalyzeRequest(data []byte) (*BatchAnalyzeRequest, error) {
	var r BatchAnalyzeRequest
	if err := decodeStrict(data, &r); err != nil {
		return nil, err
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// BatchResultJSON is one batch item's outcome: exactly one of Analyze or
// Error is set. Per-item failures (unknown platform, invalid measurement)
// stay per-item so one bad request cannot void its batchmates.
type BatchResultJSON struct {
	Analyze *AnalyzeResponse `json:"analyze,omitempty"`
	Error   string           `json:"error,omitempty"`
}

// BatchAnalyzeResponse is the output of /v1/analyze/batch; Results is
// index-aligned with the request's Requests.
type BatchAnalyzeResponse struct {
	Results []BatchResultJSON `json:"results"`
	Errors  int               `json:"errors"`
}

func (s *Server) handleAnalyzeBatch(w http.ResponseWriter, r *http.Request) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	req, err := DecodeBatchAnalyzeRequest(body)
	if err != nil {
		return failWith(http.StatusBadRequest, err)
	}

	jobs := make([]func(context.Context) (BatchResultJSON, error), len(req.Requests))
	for i := range req.Requests {
		item := &req.Requests[i]
		jobs[i] = func(ctx context.Context) (BatchResultJSON, error) {
			resp, err := s.analyzeOne(ctx, item)
			if err != nil {
				// The whole batch shares one deadline; expiry fails it as a
				// unit so the usual 504/499 mapping applies.
				if ctx.Err() != nil {
					return BatchResultJSON{}, err
				}
				return BatchResultJSON{Error: err.Error()}, nil
			}
			return BatchResultJSON{Analyze: resp}, nil
		}
	}
	results, err := engine.Map(r.Context(), engine.New(s.cfg.Workers), jobs)
	if err != nil {
		return err
	}
	resp := BatchAnalyzeResponse{Results: results}
	degraded := false
	for _, res := range results {
		if res.Error != "" {
			resp.Errors++
		}
		if res.Analyze != nil && res.Analyze.Degraded {
			degraded = true
		}
	}
	if degraded {
		// Any degraded item marks the whole batch on the wire; per-item
		// markers stay in the body.
		w.Header().Set("X-Degraded", "true")
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}
