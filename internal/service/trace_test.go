package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"littleslaw/internal/queueing"
	"littleslaw/internal/runner"
	"littleslaw/internal/trace"
)

// traceAnalyze fires one sim-backed analyze (unique scale per call forces a
// runner cache miss, so every request pays the kernel) and returns its
// X-Trace-Id.
func traceAnalyze(t *testing.T, ts *httptest.Server, i int) string {
	t.Helper()
	body := fmt.Sprintf(`{"platform":"SKL","workload":"ISx","scale":%.8f}`, 0.02+float64(i)*1e-6)
	resp, out := post(t, ts, "/v1/analyze", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze %d: status %d: %s", i, resp.StatusCode, out)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("response missing X-Trace-Id")
	}
	return id
}

// TestTraceWaterfallIdentity is the golden test of the span model: on a
// sim-backed analyze, the spans' queue+service sum must reproduce the
// request's end-to-end W within 5% — exclusive accounting means nested
// stages (handler around runner around sim) don't double count, and the
// untraced residue (JSON envelope, header writes) stays in the noise.
func TestTraceWaterfallIdentity(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn, Workers: 1, SimRunner: runner.New(64), LimitCeiling: 8})

	// A few misses; judge the slowest (largest W ⇒ smallest relative residue).
	var best trace.View
	for i := 0; i < 3; i++ {
		id := traceAnalyze(t, ts, i)
		resp, body := get(t, ts, "/v1/trace/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace fetch: status %d: %s", resp.StatusCode, body)
		}
		var v trace.View
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("trace JSON: %v\n%s", err, body)
		}
		if v.TotalMs > best.TotalMs {
			best = v
		}
	}
	if best.Status != http.StatusOK || best.TotalMs <= 0 || len(best.Spans) == 0 {
		t.Fatalf("trace = %+v", best)
	}
	stages := map[string]bool{}
	for _, sp := range best.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"handler", "runner", "sim", "limit"} {
		if !stages[want] {
			t.Fatalf("stage %q missing from waterfall %+v", want, best.Spans)
		}
	}
	if rel := math.Abs(best.AttributedMs-best.TotalMs) / best.TotalMs; rel > 0.05 {
		t.Fatalf("waterfall identity broken: attributed %.3fms vs total %.3fms (%.1f%% off)",
			best.AttributedMs, best.TotalMs, rel*100)
	}
}

// TestTraceSummaryHeader: every /v1/* response carries the one-line
// waterfall, ending in the request total.
func TestTraceSummaryHeader(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})
	resp, _ := get(t, ts, "/v1/platforms")
	sum := resp.Header.Get("X-Trace-Summary")
	if !strings.Contains(sum, "total ") || !strings.Contains(sum, "ms") {
		t.Fatalf("X-Trace-Summary = %q, want a waterfall ending in the total", sum)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("missing X-Trace-Id")
	}
}

// TestTraceEndpointsSmoke: the ring serves known ids, 404s unknown ones,
// and the NDJSON tail replays finished traces with increasing sequence
// numbers.
func TestTraceEndpointsSmoke(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn, SimRunner: runner.New(64)})
	for i := 0; i < 3; i++ {
		traceAnalyze(t, ts, i)
	}

	resp, body := get(t, ts, "/v1/trace/nosuchtrace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d: %s", resp.StatusCode, body)
	}

	resp2, err := http.Get(ts.URL + "/v1/traces?max=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("traces tail: status %d", resp2.StatusCode)
	}
	sc := bufio.NewScanner(resp2.Body)
	lastSeq := -1
	n := 0
	for sc.Scan() {
		var rec trace.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("tail line %d: %v\n%s", n, err, sc.Bytes())
		}
		if rec.Seq <= lastSeq {
			t.Fatalf("seq went backwards: %d after %d", rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		if rec.Trace.ID == "" || rec.Trace.Route == "" {
			t.Fatalf("tail record missing id/route: %+v", rec)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("tail returned %d records, want max=3", n)
	}
}

// TestTraceStageNavgMatchesOccupancyAt is the per-stage Little's-Law
// golden test: the sim stage's n_avg from the trace sink (stage seconds
// over uptime) must agree with (a) the paper pipeline's OccupancyAt over a
// flat profile at the measured λ and W, and (b) the runner's own occupancy
// gauge, which accumulates the identical busy seconds independently.
func TestTraceStageNavgMatchesOccupancyAt(t *testing.T) {
	stub := &profileStub{}
	run := runner.New(64)
	srv, ts := newTestServer(t, Config{ProfileFor: stub.fn, Workers: 1, SimRunner: run})
	for i := 0; i < 6; i++ {
		traceAnalyze(t, ts, i)
	}

	lam, w, navg := srv.traces.StageRates()
	if lam["sim"] <= 0 || w["sim"] <= 0 || navg["sim"] <= 0 {
		t.Fatalf("sim stage unobserved: lambda=%v w=%v navg=%v", lam["sim"], w["sim"], navg["sim"])
	}

	// The same occupancy via the paper pipeline: a flat profile whose
	// latency is the measured per-sim W, queried at the bandwidth this
	// arrival rate implies (bw = λ × lineBytes).
	const lineBytes = 64
	curve := queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 0, LatencyNs: w["sim"] * 1e9},
		{BandwidthGBs: 100, LatencyNs: w["sim"] * 1e9},
	})
	want := curve.OccupancyAt(lam["sim"]*lineBytes/1e9, lineBytes)
	if rel := math.Abs(navg["sim"]-want) / want; rel > 0.05 {
		t.Fatalf("trace sim n_avg = %.5f, OccupancyAt = %.5f (%.1f%% off)", navg["sim"], want, rel*100)
	}

	// And against the runner's gauge: busy seconds / uptime, accumulated
	// from the same kernel timings on a clock started microseconds apart.
	occ := run.Stats().Occupancy
	if occ <= 0 {
		t.Fatalf("runner occupancy = %v, want > 0", occ)
	}
	if rel := math.Abs(navg["sim"]-occ) / occ; rel > 0.05 {
		t.Fatalf("trace sim n_avg = %.5f, runner occupancy = %.5f (%.1f%% off)", navg["sim"], occ, rel*100)
	}
}
