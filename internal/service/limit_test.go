package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"littleslaw/internal/experiments"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// blockingProfile is a profile hook the test releases explicitly, to pin
// a request in flight while others arrive.
type blockingProfile struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockingProfile() *blockingProfile {
	return &blockingProfile{entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (b *blockingProfile) fn(ctx context.Context, p *platform.Platform) (*queueing.Curve, error) {
	b.entered <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return experiments.PaperProfileFor(p)
}

const analyzeBody = `{"platform": "SKL", "measurement": {"bandwidth_gbs": 80}}`

func TestAdmissionShedReturns429WithRetryAfter(t *testing.T) {
	bp := newBlockingProfile()
	_, ts := newTestServer(t, Config{
		ProfileFor:   bp.fn,
		LimitCeiling: 1,
		LimitQueue:   -1, // no queue: the second arrival sheds immediately
	})
	defer bp.once.Do(func() { close(bp.release) })

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(analyzeBody))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-bp.entered // the first request holds the limiter's only slot

	resp, body := post(t, ts, "/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("shed body = %q (%v), want the JSON error envelope", body, err)
	}

	bp.once.Do(func() { close(bp.release) })
	<-firstDone
	// With the slot free again, the same request is admitted.
	resp, body = post(t, ts, "/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed status = %d, want 200: %s", resp.StatusCode, body)
	}
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	bp := newBlockingProfile()
	_, ts := newTestServer(t, Config{
		ProfileFor:        bp.fn,
		LimitCeiling:      1,
		LimitQueue:        4,
		LimitQueueTimeout: 5 * time.Second,
	})
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(analyzeBody))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-bp.entered

	// The second request queues; releasing the first must grant it.
	secondStatus := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(analyzeBody))
		if err != nil {
			secondStatus <- -1
			return
		}
		resp.Body.Close()
		secondStatus <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the queue
	bp.once.Do(func() { close(bp.release) })
	<-firstDone
	if code := <-secondStatus; code != http.StatusOK {
		t.Fatalf("queued request finished %d, want 200", code)
	}
}

func TestAnalyzeBatch(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})
	resp, body := post(t, ts, "/v1/analyze/batch", `{"requests": [
		{"platform": "SKL", "measurement": {"bandwidth_gbs": 80}},
		{"platform": "NOPE", "measurement": {"bandwidth_gbs": 80}},
		{"platform": "KNL", "measurement": {"bandwidth_gbs": 200, "random_access": true}}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out BatchAnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 || out.Errors != 1 {
		t.Fatalf("results = %d, errors = %d: %s", len(out.Results), out.Errors, body)
	}
	if out.Results[0].Analyze == nil || out.Results[0].Analyze.Report.Platform != "SKL" {
		t.Fatalf("results[0] = %+v", out.Results[0])
	}
	if out.Results[1].Analyze != nil || out.Results[1].Error == "" {
		t.Fatalf("results[1] should carry the per-item error: %+v", out.Results[1])
	}
	if out.Results[2].Analyze == nil || out.Results[2].Analyze.Report.Platform != "KNL" {
		t.Fatalf("results[2] = %+v", out.Results[2])
	}
}

func TestAnalyzeBatchValidation(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})
	cases := []struct {
		name, body string
	}{
		{"empty", `{"requests": []}`},
		{"missing", `{}`},
		{"oversized", `{"requests": [` + strings.Repeat(`{"platform":"SKL","measurement":{"bandwidth_gbs":1}},`, MaxBatchSize) +
			`{"platform":"SKL","measurement":{"bandwidth_gbs":1}}]}`},
		{"bad-item", `{"requests": [{"platform": ""}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, "/v1/analyze/batch", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
			}
		})
	}
}

func TestLimiterMetricsExported(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})
	// One admitted request so the decision counter has a row.
	if resp, body := post(t, ts, "/v1/analyze", analyzeBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze = %d: %s", resp.StatusCode, body)
	}
	_, metricsBody := get(t, ts, "/metrics")
	for _, want := range []string{
		"llserved_limiter_navg ",
		"llserved_limiter_ceiling 64",
		"llserved_limiter_inflight ",
		"llserved_limiter_queue_depth 0",
		"llserved_limiter_shed_total 0",
		"llserved_limiter_admitted_total 1",
		`llserved_limiter_decisions_total{handler="analyze",decision="admitted"} 1`,
		"llserved_stream_clients 0",
		"llserved_stream_denied_total 0",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestAdmissionDisabled(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn, LimitCeiling: -1, MaxStreamClients: -1})
	resp, body := post(t, ts, "/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	_, metricsBody := get(t, ts, "/metrics")
	if strings.Contains(string(metricsBody), "llserved_limiter_navg") {
		t.Fatal("limiter metrics exported with admission control disabled")
	}
}
