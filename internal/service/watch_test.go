package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/stream"
	"littleslaw/internal/stream/streamtest"
)

// twoPhaseBody drains the canonical §III-D replay into an inline-samples
// watch request — the same samples, window and classification the stream
// package's golden test uses.
func twoPhaseBody(t *testing.T, streamName string) string {
	t.Helper()
	src, _, err := stream.Replay(context.Background(),
		streamtest.TwoPhaseReplay(platform.SKL(), 24), stream.ReplayOptions{PeriodS: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := WatchRequest{
		Platform:      "SKL",
		WindowSamples: 8,
		StrideSamples: 8,
		ActiveCores:   8,
		RandomAccess:  true,
		Stream:        streamName,
	}
	for {
		s, err := src.Next(context.Background())
		if err != nil {
			break
		}
		js := WatchSampleJSON{TS: s.TS, BandwidthGBs: s.BandwidthGBs}
		if f := s.PrefetchedReadFraction; f >= 0 {
			js.PrefetchedReadFraction = &f
		}
		req.Samples = append(req.Samples, js)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func streamCurveConfig() Config {
	return Config{
		ProfileFor: func(_ context.Context, _ *platform.Platform) (*queueing.Curve, error) {
			return streamtest.Curve(), nil
		},
	}
}

// TestWatchTwoPhaseNDJSON is the e2e acceptance test: the deterministic
// two-phase replay POSTed through /v1/watch yields at least two phases
// with differing advice, a misleading-aggregate summary — and the exact
// byte stream the stream package's golden fixture locks.
func TestWatchTwoPhaseNDJSON(t *testing.T) {
	_, ts := newTestServer(t, streamCurveConfig())
	resp, body := post(t, ts, "/v1/watch", twoPhaseBody(t, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch = %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q", cc)
	}

	golden, err := os.ReadFile(filepath.Join("..", "stream", "testdata", "two_phase_events.ndjson"))
	if err != nil {
		t.Fatalf("golden fixture: %v", err)
	}
	if string(body) != string(golden) {
		t.Fatalf("served stream diverged from the golden fixture\n-- got --\n%s\n-- want --\n%s", body, golden)
	}

	var phases []stream.PhaseEvent
	var summary *stream.SummaryEvent
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var ev stream.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		switch ev.Kind {
		case "phase":
			phases = append(phases, *ev.Phase)
		case "summary":
			summary = ev.Summary
		}
	}
	if len(phases) < 2 {
		t.Fatalf("served %d phases, want >= 2", len(phases))
	}
	if phases[0].Action == phases[len(phases)-1].Action {
		t.Fatalf("phases share action %q", phases[0].Action)
	}
	if summary == nil || !summary.MisleadingAggregate {
		t.Fatalf("summary = %+v, want misleading aggregate", summary)
	}
	for _, a := range summary.PhaseActions {
		if a == summary.Action {
			t.Fatalf("aggregate action %q matches a phase", summary.Action)
		}
	}
}

// sseEvents parses an SSE stream into its data payloads.
func sseEvents(t *testing.T, body string) []stream.Event {
	t.Helper()
	var out []stream.Event
	for _, line := range strings.Split(body, "\n") {
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", data, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestWatchSSEFanout64 runs the named two-phase stream and attaches 64
// concurrent SSE subscribers: every one of them must observe the identical
// event sequence (history replay makes joining order irrelevant), and
// /metrics must expose the per-stream counters.
func TestWatchSSEFanout64(t *testing.T) {
	s, ts := newTestServer(t, streamCurveConfig())
	resp, postBody := post(t, ts, "/v1/watch", twoPhaseBody(t, "twophase"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch = %d %s", resp.StatusCode, postBody)
	}
	events := len(strings.Split(strings.TrimSpace(string(postBody)), "\n"))

	const subs = 64
	bodies := make([]string, subs)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest("GET", ts.URL+"/v1/watch/twophase", nil)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Accept", "text/event-stream")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.Header.Get("Content-Type") != "text/event-stream" {
				t.Errorf("subscriber %d Content-Type = %q", i, resp.Header.Get("Content-Type"))
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()

	first := sseEvents(t, bodies[0])
	if len(first) != events {
		t.Fatalf("subscriber 0 got %d events, POST streamed %d", len(first), events)
	}
	for i := 1; i < subs; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("subscriber %d diverged from subscriber 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	for i, ev := range first {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	_, metricsBody := get(t, ts, "/metrics")
	for _, want := range []string{
		`llserved_stream_subscribers{stream="twophase"} 0`,
		fmt.Sprintf(`llserved_stream_events_total{stream="twophase"} %d`, events),
		`llserved_stream_dropped_total`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
	_ = s
}

// TestWatchPhasesReplay drives the replay-source path: named workloads
// simulated through the engine pool, then monitored. Two very different
// workloads must register as distinct phases.
func TestWatchPhasesReplay(t *testing.T) {
	_, ts := newTestServer(t, streamCurveConfig())
	body := `{"platform": "SKL", "window_samples": 4, "stride_samples": 4,
		"phases": [
			{"workload": "ISx", "scale": 0.02, "samples": 8},
			{"workload": "DGEMM", "variant": {"tiled": true, "unroll_jam": true}, "scale": 0.02, "samples": 8}
		]}`
	resp, out := post(t, ts, "/v1/watch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch = %d %s", resp.StatusCode, out)
	}
	var summary *stream.SummaryEvent
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var ev stream.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if ev.Kind == "summary" {
			summary = ev.Summary
		}
	}
	if summary == nil || summary.Samples != 16 {
		t.Fatalf("summary = %+v", summary)
	}
	if summary.Phases < 1 {
		t.Fatal("no phases detected")
	}
}

// TestWatchValidation maps the failure modes to clean status codes even
// though the success path streams.
func TestWatchValidation(t *testing.T) {
	_, ts := newTestServer(t, streamCurveConfig())
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"both-sources", `{"platform": "SKL", "samples": [{"bandwidth_gbs": 1}], "phases": [{"workload": "ISx"}]}`, http.StatusBadRequest},
		{"bad-platform", `{"platform": "m1", "samples": [{"bandwidth_gbs": 1}]}`, http.StatusNotFound},
		{"bad-workload", `{"platform": "SKL", "phases": [{"workload": "nope"}]}`, http.StatusNotFound},
		{"negative-bandwidth", `{"platform": "SKL", "samples": [{"bandwidth_gbs": -1}]}`, http.StatusBadRequest},
		{"backwards-time", `{"platform": "SKL", "samples": [{"t_s": 2, "bandwidth_gbs": 1}, {"t_s": 1, "bandwidth_gbs": 1}]}`, http.StatusBadRequest},
		{"bad-stream-name", `{"platform": "SKL", "stream": "a b", "samples": [{"bandwidth_gbs": 1}]}`, http.StatusBadRequest},
		{"unknown-field", `{"platform": "SKL", "samples": [{"bandwidth_gbs": 1}], "bogus": 1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, "/v1/watch", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
		})
	}

	if resp, _ := get(t, ts, "/v1/watch/ghost"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream = %d", resp.StatusCode)
	}

	// A named stream can be created once; the second claim conflicts.
	body := `{"platform": "SKL", "stream": "dup", "window_samples": 1, "samples": [{"bandwidth_gbs": 10}]}`
	if resp, out := post(t, ts, "/v1/watch", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("first claim = %d %s", resp.StatusCode, out)
	}
	if resp, _ := get(t, ts, "/v1/watch/dup?buffer=0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("buffer=0 = %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/watch", body); resp.StatusCode != http.StatusConflict {
		t.Fatalf("second claim = %d, want 409", resp.StatusCode)
	}
	// The finished stream still replays for late subscribers.
	if resp, out := get(t, ts, "/v1/watch/dup"); resp.StatusCode != http.StatusOK || len(out) == 0 {
		t.Fatalf("late subscribe = %d %q", resp.StatusCode, out)
	}
}

// TestHardenedHeaders: nosniff everywhere, no-store on analysis payloads.
func TestHardenedHeaders(t *testing.T) {
	_, ts := newTestServer(t, streamCurveConfig())
	for _, path := range []string{"/healthz", "/metrics", "/v1/platforms"} {
		resp, _ := get(t, ts, path)
		if got := resp.Header.Get("X-Content-Type-Options"); got != "nosniff" {
			t.Fatalf("%s X-Content-Type-Options = %q", path, got)
		}
	}
	resp, _ := get(t, ts, "/v1/platforms")
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("/v1/platforms Cache-Control = %q", got)
	}
}
