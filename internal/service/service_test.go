package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"littleslaw/internal/experiments"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
)

// paperProfileCtx adapts the published anchor curves to the service's
// context-aware profile hook, counting invocations.
type profileStub struct {
	calls atomic.Int64
}

func (ps *profileStub) fn(_ context.Context, p *platform.Platform) (*queueing.Curve, error) {
	ps.calls.Add(1)
	return experiments.PaperProfileFor(p)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, []byte(readAll(t, resp))
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, []byte(readAll(t, resp))
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestHealthzReadinessBody pins the JSON readiness contract cluster probes
// rely on: status, live limiter occupancy, stream accounting and version —
// while the plain 200-with-"ok" liveness contract above keeps holding.
func TestHealthzReadinessBody(t *testing.T) {
	_, ts := newTestServer(t, Config{LimitCeiling: 8})
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
	var h HealthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.Version == "" {
		t.Error("version missing")
	}
	if h.LimiterNAvg == nil || *h.LimiterNAvg < 0 {
		t.Errorf("limiter_navg = %v, want present and non-negative", h.LimiterNAvg)
	}
	if h.LimiterCeiling == nil || *h.LimiterCeiling != 8 {
		t.Errorf("limiter_ceiling = %v, want 8", h.LimiterCeiling)
	}
	if h.ActiveStreams != 0 || h.StreamClients != 0 {
		t.Errorf("stream accounting = %d/%d, want 0/0", h.ActiveStreams, h.StreamClients)
	}

	// Admission control disabled: the limiter fields disappear, status
	// stays ok.
	_, ts2 := newTestServer(t, Config{LimitCeiling: -1})
	_, body2 := get(t, ts2, "/healthz")
	var h2 HealthzResponse
	if err := json.Unmarshal(body2, &h2); err != nil {
		t.Fatalf("healthz body is not JSON: %v\n%s", err, body2)
	}
	if h2.LimiterNAvg != nil || h2.LimiterCeiling != nil {
		t.Errorf("limiter fields present with admission disabled: %s", body2)
	}
}

func TestPlatforms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/v1/platforms")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out []PlatformJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].Name != "SKL" || out[1].Name != "KNL" || out[2].Name != "A64FX" {
		t.Fatalf("platforms = %+v", out)
	}
	if out[0].L1MSHRs <= 0 || out[0].PeakGBs <= 0 {
		t.Fatalf("platform fields not populated: %+v", out[0])
	}
}

func TestAnalyzeFromMeasurement(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})
	// ISx-like SKL numbers: 106.9 GB/s random-access on 24 cores.
	resp, body := post(t, ts, "/v1/analyze", `{
		"platform": "SKL",
		"measurement": {"bandwidth_gbs": 106.9, "random_access": true, "routine": "count_local_keys"}
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Report.Platform != "SKL" || out.Report.Routine != "count_local_keys" {
		t.Fatalf("report = %+v", out.Report)
	}
	if out.Report.Occupancy <= 0 || out.Report.LatencyNs <= 0 {
		t.Fatalf("metric not computed: %+v", out.Report)
	}
	if out.Report.Limiter != "L1" {
		t.Fatalf("random access should bind on L1, got %q", out.Report.Limiter)
	}
	if out.Run != nil {
		t.Fatal("measurement-mode analyze should not include a run")
	}
	if out.Explanation == "" {
		t.Fatal("missing explanation")
	}
}

func TestAnalyzeRunsWorkload(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})
	resp, body := post(t, ts, "/v1/analyze", `{
		"platform": "SKL", "workload": "ISx", "scale": 0.02
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Run == nil || out.Run.TotalGBs <= 0 || out.Run.Cores <= 0 {
		t.Fatalf("run missing or empty: %+v", out.Run)
	}
	if out.Report.Occupancy <= 0 {
		t.Fatalf("report = %+v", out.Report)
	}
}

func TestAdvise(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})
	resp, body := post(t, ts, "/v1/advise", `{
		"platform": "KNL", "workload": "ISx", "scale": 0.02
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out AdviseResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Advice) == 0 {
		t.Fatal("no advice returned")
	}
	stances := map[string]bool{"recommend": true, "neutral": true, "discourage": true}
	for _, a := range out.Advice {
		if a.Optimization == "" || !stances[a.Stance] {
			t.Fatalf("malformed advice %+v", a)
		}
	}
}

func TestBadRequests(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})
	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"malformed JSON", "/v1/analyze", `{"platform":`, http.StatusBadRequest},
		{"unknown field", "/v1/analyze", `{"platform": "SKL", "wat": 1}`, http.StatusBadRequest},
		{"missing platform", "/v1/analyze", `{"workload": "ISx"}`, http.StatusBadRequest},
		{"workload and measurement", "/v1/analyze",
			`{"platform": "SKL", "workload": "ISx", "measurement": {"bandwidth_gbs": 1}}`, http.StatusBadRequest},
		{"neither workload nor measurement", "/v1/analyze", `{"platform": "SKL"}`, http.StatusBadRequest},
		{"negative bandwidth", "/v1/analyze",
			`{"platform": "SKL", "measurement": {"bandwidth_gbs": -3}}`, http.StatusBadRequest},
		{"huge scale", "/v1/analyze",
			`{"platform": "SKL", "workload": "ISx", "scale": 100}`, http.StatusBadRequest},
		{"unknown platform", "/v1/analyze",
			`{"platform": "EPYC", "workload": "ISx"}`, http.StatusNotFound},
		{"unknown workload", "/v1/analyze",
			`{"platform": "SKL", "workload": "LINPACK"}`, http.StatusNotFound},
		{"too many threads", "/v1/analyze",
			`{"platform": "SKL", "workload": "ISx", "threads_per_core": 8}`, http.StatusBadRequest},
		{"characterize unknown platform", "/v1/characterize", `{"platform": "EPYC"}`, http.StatusNotFound},
		{"tune unknown workload", "/v1/tune", `{"platform": "SKL", "workload": "nope"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			var e ErrorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error envelope missing: %s", body)
			}
		})
	}
}

func TestCharacterizeCacheHit(t *testing.T) {
	stub := &profileStub{}
	s, ts := newTestServer(t, Config{ProfileFor: stub.fn})

	resp, body := post(t, ts, "/v1/characterize", `{"platform": "KNL"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var first CharacterizeResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || len(first.Points) == 0 {
		t.Fatalf("first characterize = cached=%v points=%d", first.Cached, len(first.Points))
	}

	_, body = post(t, ts, "/v1/characterize", `{"platform": "KNL"}`)
	var second CharacterizeResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical characterize was not a cache hit")
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("profile source ran %d times, want 1", got)
	}

	// The hit/miss counters saw one of each.
	if got := s.cacheEvents.With("profile", "hit").Value(); got < 1 {
		t.Fatalf("profile cache hits = %d, want >= 1", got)
	}
	if got := s.cacheEvents.With("profile", "miss").Value(); got != 1 {
		t.Fatalf("profile cache misses = %d, want 1", got)
	}
}

func TestRequestTimeoutReturns504(t *testing.T) {
	block := func(ctx context.Context, p *platform.Platform) (*queueing.Curve, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, ts := newTestServer(t, Config{ProfileFor: block})
	resp, body := post(t, ts, "/v1/characterize?timeout=50ms", `{"platform": "SKL"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("error envelope missing: %s", body)
	}
}

func TestDefaultTimeoutApplies(t *testing.T) {
	block := func(ctx context.Context, p *platform.Platform) (*queueing.Curve, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, ts := newTestServer(t, Config{ProfileFor: block, DefaultTimeout: 50 * time.Millisecond})
	resp, _ := post(t, ts, "/v1/characterize", `{"platform": "SKL"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}

func TestInvalidTimeoutRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts, "/v1/characterize?timeout=yesterday", `{"platform": "SKL"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestTableEndpoint regenerates a real (tiny) ISx table through the full
// pipeline, then verifies the second request is served from the cache.
func TestTableEndpoint(t *testing.T) {
	stub := &profileStub{}
	s, ts := newTestServer(t, Config{ProfileFor: stub.fn, Platforms: []string{"SKL"}})

	resp, body := get(t, ts, "/v1/tables/T4?scale=0.02")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out TableResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != "IV" || out.Workload != "ISx" || out.Cached {
		t.Fatalf("table = id=%s workload=%s cached=%v", out.ID, out.Workload, out.Cached)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("SKL ISx ladder has 2 rows, got %d", len(out.Rows))
	}
	for _, row := range out.Rows {
		if row.Platform != "SKL" || row.BWGBs <= 0 || row.Occupancy <= 0 {
			t.Fatalf("row = %+v", row)
		}
	}

	// Identical request: a table-cache hit, no new simulations.
	resp, body = get(t, ts, "/v1/tables/IV?scale=0.02")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var again TableResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("second identical table request was not a cache hit")
	}
	if got := s.cacheEvents.With("table", "hit").Value(); got < 1 {
		t.Fatalf("table cache hits = %d, want >= 1", got)
	}

	// Unknown id and malformed scale.
	if resp, _ := get(t, ts, "/v1/tables/XL"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table id: status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/tables/IV?scale=-1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scale: status = %d, want 400", resp.StatusCode)
	}
}

func TestMetricsEndpointAdvances(t *testing.T) {
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})
	post(t, ts, "/v1/analyze", `{"platform": "SKL", "measurement": {"bandwidth_gbs": 50}}`)
	post(t, ts, "/v1/analyze", `{"platform": "SKL", "measurement": {"bandwidth_gbs": 50}}`)
	post(t, ts, "/v1/analyze", `{"platform":`) // 400

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		`llserved_requests_total{handler="analyze",code="200"} 2`,
		`llserved_requests_total{handler="analyze",code="400"} 1`,
		`llserved_request_seconds_count{handler="analyze"} 3`,
		`llserved_inflight_requests 0`,
		`llserved_littles_law_concurrency`,
		`llserved_cache_events_total{cache="profile",event="hit"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

// TestConcurrentLoad hammers /v1/analyze and /v1/tables/T4 from many
// goroutines — the acceptance bar for race-cleanliness (run under -race).
// The table cache is pre-seeded so the test exercises handler, cache and
// metrics concurrency rather than simulation wall-time.
func TestConcurrentLoad(t *testing.T) {
	stub := &profileStub{}
	s, ts := newTestServer(t, Config{ProfileFor: stub.fn, Platforms: []string{"SKL"}})
	s.tables.Put(tableKey{id: "IV", scale: 1.0}, &experiments.Table{
		ID: "IV", Workload: "ISx", Routine: "count_local_keys",
		Rows: []experiments.Row{{Platform: "SKL", Source: "base", Threads: 1, BWGBs: 106.9, Occ: 10.1}},
	})

	const clients = 8
	const perClient = 10
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				switch (c + i) % 3 {
				case 0:
					resp, err := http.Get(ts.URL + "/v1/tables/T4")
					if err != nil {
						errs <- err.Error()
						continue
					}
					var out TableResponse
					json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || out.ID != "IV" || len(out.Rows) != 1 {
						errs <- fmt.Sprintf("tables: %d %+v", resp.StatusCode, out)
					}
				case 1:
					resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
						strings.NewReader(`{"platform": "SKL", "measurement": {"bandwidth_gbs": 80, "random_access": true}}`))
					if err != nil {
						errs <- err.Error()
						continue
					}
					var out AnalyzeResponse
					json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || out.Report.Occupancy <= 0 {
						errs <- fmt.Sprintf("analyze: %d %+v", resp.StatusCode, out.Report)
					}
				case 2:
					resp, err := http.Post(ts.URL+"/v1/characterize", "application/json",
						strings.NewReader(`{"platform": "SKL"}`))
					if err != nil {
						errs <- err.Error()
						continue
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("characterize: %d", resp.StatusCode)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Errorf("profile source ran %d times under concurrent load, want 1 (singleflight)", got)
	}
}
