// The /v1/faults admin endpoints: runtime control of the fault-injection
// layer. GET reports the live configuration and per-site injection tallies;
// POST reconfigures (a full spec replaces seed + rules and restarts every
// site's deterministic schedule) or toggles the kill switch without
// touching the rule set. Both sit outside the admission controller so the
// kill switch answers even while the limiter sheds everything.
package service

import (
	"fmt"
	"net/http"
	"time"

	"littleslaw/internal/faults"
)

// FaultRuleJSON is one injection rule over the wire.
type FaultRuleJSON struct {
	Site string  `json:"site"`
	Kind string  `json:"kind"`
	P    float64 `json:"p"`
	// DurationMS is the injected (or per-chunk) delay in milliseconds for
	// latency and drip rules.
	DurationMS float64 `json:"duration_ms,omitempty"`
}

// FaultSiteJSON is one site's injection tally.
type FaultSiteJSON struct {
	Site  string            `json:"site"`
	Evals uint64            `json:"evals"`
	Fired map[string]uint64 `json:"fired,omitempty"`
}

// FaultsResponse is the GET /v1/faults (and POST echo) body.
type FaultsResponse struct {
	Enabled bool            `json:"enabled"`
	Seed    int64           `json:"seed"`
	Spec    string          `json:"spec"`
	Rules   []FaultRuleJSON `json:"rules,omitempty"`
	Sites   []FaultSiteJSON `json:"sites,omitempty"`
}

// FaultsRequest is the POST /v1/faults body. Exactly one of Spec or
// Enabled must be set: Spec reconfigures (seed + rules, resetting every
// site's schedule; an empty-rule spec such as "seed=1" disables), Enabled
// toggles evaluation in place.
type FaultsRequest struct {
	Spec    *string `json:"spec,omitempty"`
	Enabled *bool   `json:"enabled,omitempty"`
}

func (s *Server) faultsResponse() FaultsResponse {
	seed, rules := s.faults.Seed(), s.faults.Rules()
	resp := FaultsResponse{
		Enabled: s.faults.Enabled(),
		Seed:    seed,
		Spec:    faults.FormatSpec(seed, rules),
	}
	for _, r := range rules {
		resp.Rules = append(resp.Rules, FaultRuleJSON{
			Site:       r.Site,
			Kind:       r.Kind.String(),
			P:          r.P,
			DurationMS: float64(r.D) / float64(time.Millisecond),
		})
	}
	for _, sc := range s.faults.Counts() {
		resp.Sites = append(resp.Sites, FaultSiteJSON{Site: sc.Site, Evals: sc.Evals, Fired: sc.Fired})
	}
	return resp
}

func (s *Server) handleFaultsGet(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.faultsResponse())
}

func (s *Server) handleFaultsPost(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	var req FaultsRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, r, failWith(http.StatusBadRequest, err))
		return
	}
	switch {
	case (req.Spec == nil) == (req.Enabled == nil):
		s.writeError(w, r, failWith(http.StatusBadRequest,
			fmt.Errorf("exactly one of spec or enabled is required")))
		return
	case req.Spec != nil:
		seed, rules, err := faults.ParseSpec(*req.Spec)
		if err != nil {
			s.writeError(w, r, failWith(http.StatusBadRequest, err))
			return
		}
		if err := s.faults.Configure(seed, rules); err != nil {
			s.writeError(w, r, failWith(http.StatusBadRequest, err))
			return
		}
	default:
		s.faults.SetEnabled(*req.Enabled)
	}
	s.writeJSON(w, http.StatusOK, s.faultsResponse())
}
