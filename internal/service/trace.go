// The /v1/trace endpoints: per-request latency decomposition over HTTP.
// Every /v1/* response carries an X-Trace-Id; GET /v1/trace/{id} returns
// that request's waterfall (spans with queue/service split) from the
// bounded in-memory ring, and GET /v1/traces tails finished traces as
// NDJSON through the same drop-oldest broker machinery as /v1/watch — a
// slow tail reader loses old traces, never stalls the server.
//
// Both endpoints sit outside the admission controller and the tracer
// itself: the tool for diagnosing overload must answer during overload.
// The handlers are exported as ServeTrace/ServeTraceTail so llproxy serves
// its own ring through the identical wire contract.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"littleslaw/internal/brownout"
	"littleslaw/internal/stream"
	"littleslaw/internal/trace"
)

// maxTraceTail caps ?max= and ?buffer= on GET /v1/traces.
const maxTraceTail = 1 << 16

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	s.armWrite(w)
	ServeTrace(w, r, s.traces)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	// The tail is a long-lived non-critical stream: it sheds at B3+ like
	// the watch routes (the single-trace lookup above stays admin-tier).
	// It is registered outside the envelope, so the tier check is local.
	if mode := s.observeMode(); mode >= brownout.B3 && !s.Draining() {
		w.Header().Set("X-Brownout-Mode", mode.String())
		s.writeError(w, r, failWithRetry(http.StatusServiceUnavailable,
			fmt.Errorf("brownout %s (%s): trace tail shed", mode, mode.Label()), brownoutRetryAfter))
		return
	}
	// During drain the tail stays subscribable just long enough to hear
	// the terminal shutdown record: the broker is already closed, so a new
	// subscriber replays history (ending in the terminal record) and EOFs.
	ServeTraceTail(w, r, s.traceBroker, s.armWrite)
}

// ServeTrace answers GET /v1/trace/{id}: the JSON waterfall for one
// request, looked up in the sink's ring. 404 once the ring evicted it.
func ServeTrace(w http.ResponseWriter, r *http.Request, sink *trace.Sink) {
	id := r.PathValue("id")
	t, ok := sink.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			ErrorResponse{Error: fmt.Sprintf("trace %q not retained (ring holds the last %d)", id, sink.Len())})
		return
	}
	writeJSON(w, http.StatusOK, t.View())
}

// ServeTraceTail answers GET /v1/traces: an NDJSON tail of finished
// traces. Retained history replays first, then live traces as requests
// finish. ?max=N closes the stream after N records (default: tail until
// the client disconnects); ?buffer=N sizes the subscriber's drop-oldest
// buffer exactly as on /v1/watch. armWrite, if non-nil, is invoked before
// each write to arm a per-write deadline.
func ServeTraceTail(w http.ResponseWriter, r *http.Request, br *stream.BrokerOf[trace.Record], armWrite func(http.ResponseWriter)) {
	if armWrite == nil {
		armWrite = func(http.ResponseWriter) {}
	}
	maxRecords := 0
	if v := r.URL.Query().Get("max"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > maxTraceTail {
			armWrite(w)
			writeJSON(w, http.StatusBadRequest,
				ErrorResponse{Error: fmt.Sprintf("max must be in [1, %d]", maxTraceTail)})
			return
		}
		maxRecords = parsed
	}
	buffer := 256
	if v := r.URL.Query().Get("buffer"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > maxTraceTail {
			armWrite(w)
			writeJSON(w, http.StatusBadRequest,
				ErrorResponse{Error: fmt.Sprintf("buffer must be in [1, %d]", maxTraceTail)})
			return
		}
		buffer = parsed
	}

	sub := br.Subscribe(buffer)
	defer sub.Close()

	hardenHeaders(w.Header(), "application/x-ndjson", true)
	armWrite(w)
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	enc := json.NewEncoder(w)
	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case rec, ok := <-sub.Events():
			if !ok {
				return
			}
			// Per-write deadline, re-armed per record: a healthy tail can
			// stay attached indefinitely, a stalled one is cut.
			armWrite(w)
			if err := enc.Encode(rec); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
			sent++
			if maxRecords > 0 && sent >= maxRecords {
				return
			}
		}
	}
}
