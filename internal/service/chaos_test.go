package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"littleslaw/internal/client"
	"littleslaw/internal/faults"
	"littleslaw/internal/stream"
)

// The chaos end-to-end suite: llserved under injected faults at every
// layer, driven past capacity by resilient clients. The claims under test
// are the tentpole's acceptance criteria — graceful degradation (every
// fault becomes a clean retryable response, never a hang or a leak),
// eventual success for a client that keeps retrying, and the injection
// layer itself being a provable no-op when disabled.

// chaosSpec arms roughly a 30% per-request handler fault rate (12% injected
// latency + 12% transient error + 6% panic) plus deeper faults in the
// admission path, the sim-cache runner, and the engine pool. The seed is
// fixed so a failure replays exactly.
const chaosSpec = "seed=42" +
	";handler.*=latency:0.12:30ms" +
	";handler.*=error:0.12" +
	";handler.*=panic:0.06" +
	";limit.acquire=latency:0.08:5ms" +
	";runner.run=error:0.15" +
	";engine.job=panic:0.10"

// armGlobalFaults configures the process-global injector (the one the
// runner, engine, limiter and stream sites consult) and disarms it again
// at cleanup so the rest of the package runs fault-free.
func armGlobalFaults(t *testing.T, spec string) {
	t.Helper()
	seed, rules, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Global().Configure(seed, rules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := faults.Global().Configure(1, nil); err != nil {
			t.Fatal(err)
		}
	})
}

// metricValue extracts one gauge/counter value from a /metrics text dump.
func metricValue(t *testing.T, body []byte, name string) float64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in /metrics", name)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metric %s = %q: %v", name, m[1], err)
	}
	return v
}

// TestChaosEventualSuccess is the headline chaos run: the full fault spec
// armed, a small admission ceiling, and 2× the server's concurrency
// offered by closed-loop clients. Every logical request must eventually
// succeed (each fault mode degrades to a retryable response: injected
// errors → 503 + Retry-After, panics → 500 with the limiter slot released,
// latency → a slow success, sheds → 429), the limiter must end with zero
// in-flight slots, and no goroutines may leak.
func TestChaosEventualSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	armGlobalFaults(t, chaosSpec)

	before := runtime.NumGoroutine()
	stub := &profileStub{}
	const ceiling = 4
	s := New(Config{
		ProfileFor:        stub.fn,
		LimitCeiling:      ceiling,
		LimitQueueTimeout: 200 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())

	// 2× capacity: twice the ceiling in always-on closed-loop workers.
	const workers = 2 * ceiling
	const perWorker = 12
	type req struct{ method, path, body string }
	reqs := []req{
		{http.MethodGet, "/v1/platforms", ""},
		{http.MethodPost, "/v1/analyze", `{"platform":"SKL","measurement":{"bandwidth_gbs":106.9,"random_access":true}}`},
		{http.MethodPost, "/v1/analyze", `{"platform":"SKL","workload":"ISx","scale":0.02}`},
		{http.MethodPost, "/v1/advise", `{"platform":"SKL","measurement":{"bandwidth_gbs":80}}`},
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.New(client.Config{
				BaseURL:     ts.URL,
				Timeout:     10 * time.Second,
				MaxAttempts: 4,
				Backoff:     5 * time.Millisecond,
				MaxBackoff:  200 * time.Millisecond,
				// The chaos clients retry without a budget: the run's claim
				// is 100% *eventual* success, so convergence must not be
				// rationed. MaxRetryAfter trims the limiter's whole-second
				// hints to keep the run short.
				BudgetRatio:   -1,
				MaxRetryAfter: 300 * time.Millisecond,
				Seed:          int64(w + 1),
			})
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perWorker; i++ {
				rq := reqs[(w+i)%len(reqs)]
				ok := false
				for attempt := 0; attempt < 40 && !ok; attempt++ {
					res, err := cl.Do(context.Background(), rq.method, rq.path, "application/json", []byte(rq.body))
					if err != nil {
						errs <- fmt.Errorf("worker %d %s: transport: %w", w, rq.path, err)
						return
					}
					switch {
					case res.Status >= 200 && res.Status < 300:
						ok = true
					case res.Status == 429 || res.Status == 500 || res.Status == 503:
						// Degraded but clean: retry. (The client already
						// retried within its attempt budget.)
					default:
						errs <- fmt.Errorf("worker %d %s: unexpected status %d: %s", w, rq.path, res.Status, res.Body)
						return
					}
				}
				if !ok {
					errs <- fmt.Errorf("worker %d %s: no success after 40 rounds", w, rq.path)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The run must actually have injected faults — otherwise this test
	// proves nothing about degradation.
	_, metricsBody := get(t, ts, "/metrics")
	if fired := metricValue(t, metricsBody, "llserved_faults_injected_total"); fired == 0 {
		t.Fatal("chaos run fired zero faults; the spec or the sites are dead")
	}
	// Every limiter slot must be home: panics, sheds and injected errors
	// all released theirs.
	if inflight := metricValue(t, metricsBody, "llserved_limiter_inflight"); inflight != 0 {
		t.Fatalf("llserved_limiter_inflight = %g after the run, want 0 (leaked slots)", inflight)
	}
	if qd := metricValue(t, metricsBody, "llserved_limiter_queue_depth"); qd != 0 {
		t.Fatalf("llserved_limiter_queue_depth = %g after the run, want 0", qd)
	}

	// Goroutine accounting: after the server closes, the count settles back
	// to (about) where it started. The poll forgives scheduler lag; the
	// bound forgives the runtime's own background workers.
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after settling — leak.\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosStreamTerminalError: a monitor killed mid-stream by an injected
// fault must hand every subscriber a terminal "error" event before the
// stream closes — the graceful alternative to a silently truncated tail.
func TestChaosStreamTerminalError(t *testing.T) {
	// stream.monitor faults with P=1: the first sample kills the monitor.
	armGlobalFaults(t, "seed=7;stream.monitor=error:1")
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn})

	samples := `{"platform":"SKL","stream":"doomed","samples":[` +
		`{"t_s":0,"bandwidth_gbs":50},{"t_s":1,"bandwidth_gbs":60},{"t_s":2,"bandwidth_gbs":70},` +
		`{"t_s":3,"bandwidth_gbs":80},{"t_s":4,"bandwidth_gbs":90},{"t_s":5,"bandwidth_gbs":95},` +
		`{"t_s":6,"bandwidth_gbs":97},{"t_s":7,"bandwidth_gbs":99}]}`
	resp, err := http.Post(ts.URL+"/v1/watch", "application/json", bytes.NewReader([]byte(samples)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status = %d", resp.StatusCode)
	}
	var sawError bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event %q: %v", sc.Bytes(), err)
		}
		if ev.Kind == "error" {
			if ev.Error == nil || ev.Error.Message == "" {
				t.Fatalf("error event without a message: %+v", ev)
			}
			if !faultsMentioned(ev.Error.Message) {
				t.Fatalf("terminal error %q does not identify the injected fault", ev.Error.Message)
			}
			sawError = true
		}
		if ev.Kind == "summary" {
			t.Fatal("stream reached a summary despite a guaranteed monitor fault")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !sawError {
		t.Fatal("stream closed without a terminal error event")
	}
}

func faultsMentioned(msg string) bool {
	return bytes.Contains([]byte(msg), []byte("injected"))
}

// TestFaultsDisabledIsNoOp is the acceptance criterion stated as a test:
// a server carrying a full fault configuration with the injector switched
// off must produce bit-identical responses to a server that has no fault
// configuration at all, over a representative request sequence.
func TestFaultsDisabledIsNoOp(t *testing.T) {
	seed, rules, err := faults.ParseSpec(chaosSpec + ";stream.serve=drip:0.2:10ms")
	if err != nil {
		t.Fatal(err)
	}
	armed, err := faults.New(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	armed.SetEnabled(false)
	clean, err := faults.New(1)
	if err != nil {
		t.Fatal(err)
	}

	sequence := func(inj *faults.Injector) [][]byte {
		stub := &profileStub{}
		_, ts := newTestServer(t, Config{ProfileFor: stub.fn, FaultInjector: inj})
		var bodies [][]byte
		run := func(body []byte) { bodies = append(bodies, body) }
		_, b := get(t, ts, "/v1/platforms")
		run(b)
		_, b = post(t, ts, "/v1/analyze", `{"platform":"SKL","measurement":{"bandwidth_gbs":106.9,"random_access":true}}`)
		run(b)
		_, b = post(t, ts, "/v1/analyze", `{"platform":"KNL","workload":"ISx","scale":0.02}`)
		run(b)
		_, b = post(t, ts, "/v1/advise", `{"platform":"SKL","measurement":{"bandwidth_gbs":80}}`)
		run(b)
		_, b = get(t, ts, "/v1/tables/IV?scale=0.02")
		run(b)
		_, b = post(t, ts, "/v1/analyze", "not json")
		run(b)
		return bodies
	}

	a, b := sequence(armed), sequence(clean)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("request %d: disabled-faults response differs from no-faults response:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
	// And switching off really meant *off*: zero evaluations drew from any
	// site RNG (Counts tracks evals; a disabled injector records none).
	if got := armed.FiredTotal(); got != 0 {
		t.Fatalf("disabled injector fired %d faults", got)
	}
	for _, sc := range armed.Counts() {
		if sc.Evals != 0 {
			t.Fatalf("disabled injector evaluated site %s %d times", sc.Site, sc.Evals)
		}
	}
}

// TestHandlerPanicReleasesLimiterSlot is the slot-leak regression test at
// the service layer: with a ceiling of 1, a panicking handler that leaked
// its slot would wedge the server shut — every later request would queue
// and shed forever. Alternating guaranteed panics with clean requests
// proves release-on-panic.
func TestHandlerPanicReleasesLimiterSlot(t *testing.T) {
	inj, err := faults.New(9, faults.Rule{Site: "handler.platforms", Kind: faults.KindPanic, P: 1})
	if err != nil {
		t.Fatal(err)
	}
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{
		ProfileFor:    stub.fn,
		FaultInjector: inj,
		LimitCeiling:  1,
		LimitQueue:    -1, // no queue: a leaked slot turns into an instant 429
	})

	for i := 0; i < 5; i++ {
		resp, body := get(t, ts, "/v1/platforms")
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("round %d: panicking handler returned %d (%s), want 500", i, resp.StatusCode, body)
		}
		var env struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error == "" {
			t.Fatalf("round %d: 500 body is not the JSON error envelope: %s", i, body)
		}
		// The clean route proves the slot came back: under a leaked slot
		// this request would be shed with 429, not served.
		resp, body = post(t, ts, "/v1/analyze", `{"platform":"SKL","measurement":{"bandwidth_gbs":80}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: request after panic returned %d (%s), want 200", i, resp.StatusCode, body)
		}
	}
}

// TestFaultsAdminEndpoint drives the runtime control surface: POST a spec,
// read it back, observe injections, flip the kill switch, reconfigure to
// empty.
func TestFaultsAdminEndpoint(t *testing.T) {
	inj, err := faults.New(1)
	if err != nil {
		t.Fatal(err)
	}
	stub := &profileStub{}
	_, ts := newTestServer(t, Config{ProfileFor: stub.fn, FaultInjector: inj})

	// Initially quiet.
	_, body := get(t, ts, "/v1/faults")
	var fr FaultsResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Enabled {
		t.Fatalf("fresh injector reports enabled: %s", body)
	}

	// Arm a total-failure rule for one handler.
	resp, body := post(t, ts, "/v1/faults", `{"spec":"seed=5;handler.platforms=error:1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.Enabled || fr.Seed != 5 || len(fr.Rules) != 1 {
		t.Fatalf("armed state = %s", body)
	}
	if resp, _ := get(t, ts, "/v1/platforms"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("armed error rule: /v1/platforms = %d, want 503", resp.StatusCode)
	}

	// Kill switch off: same rules, no injection.
	if resp, body := post(t, ts, "/v1/faults", `{"enabled":false}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("disable: %d %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts, "/v1/platforms"); resp.StatusCode != http.StatusOK {
		t.Fatalf("disabled injector still injecting: %d", resp.StatusCode)
	}

	// Validation: both or neither field is a 400; a bad spec is a 400.
	if resp, _ := post(t, ts, "/v1/faults", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/faults", `{"spec":"seed=1","enabled":true}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("both fields = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/faults", `{"spec":"handler.x=explode:1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kind = %d, want 400", resp.StatusCode)
	}

	// The admin endpoint must answer even while the limiter sheds: it is
	// registered outside admission control.
	quiet, err := faults.New(2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{ProfileFor: stub.fn, LimitCeiling: 1, LimitQueue: -1, FaultInjector: quiet})
	resp, _ = get(t, ts2, "/v1/faults")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faults endpoint behind admission control? status = %d", resp.StatusCode)
	}
}
