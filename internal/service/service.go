// Package service puts the Little's-Law analysis pipeline behind a
// long-running HTTP JSON API — analysis as a service rather than a
// one-shot CLI. It exposes the facade's verbs (/v1/platforms,
// /v1/characterize, /v1/analyze, /v1/advise, /v1/tune, /v1/tables/{id})
// on top of the concurrent engine, with LRU+singleflight caches for the
// expensive once-per-platform profiles and per-(table, scale) results,
// per-request timeouts propagated through context, and an instrumentation
// registry at /metrics.
//
// The service practices what the paper preaches: /metrics derives the
// server's own average request concurrency via Little's Law
// (L = λ·W = latency_sum/uptime) next to the directly sampled in-flight
// gauge, so the law can be checked against the system that computes it.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"littleslaw/internal/analytic"
	"littleslaw/internal/autotune"
	"littleslaw/internal/brownout"
	"littleslaw/internal/buildinfo"
	"littleslaw/internal/core"
	"littleslaw/internal/engine"
	"littleslaw/internal/experiments"
	"littleslaw/internal/faults"
	"littleslaw/internal/limit"
	"littleslaw/internal/metrics"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
	"littleslaw/internal/stream"
	"littleslaw/internal/trace"
	"littleslaw/internal/workloads"
	"littleslaw/internal/xmem"
)

// Config tunes a Server. The zero value serves the honest pipeline with
// production defaults.
type Config struct {
	// DefaultTimeout bounds a request when the client does not pass
	// ?timeout=; 0 means 5m (characterizations and full-scale tables are
	// legitimately slow).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts; 0 means 30m.
	MaxTimeout time.Duration
	// Workers bounds per-request simulation concurrency (0 = GOMAXPROCS).
	Workers int
	// ProfileCacheSize bounds the per-platform profile cache (0 = 8).
	ProfileCacheSize int
	// TableCacheSize bounds the per-(table, scale) result cache (0 = 32).
	TableCacheSize int
	// RunnerCacheSize bounds the per-scale experiment runners, whose
	// simulation caches let the six tables of one scale share runs
	// (0 = 4).
	RunnerCacheSize int
	// ProfileFor overrides the X-Mem characterization as the profile
	// source (tests; the llserved -paper-profiles mode). It must honor
	// ctx if it blocks, or request timeouts cannot interrupt it.
	ProfileFor func(context.Context, *platform.Platform) (*queueing.Curve, error)
	// Platforms restricts table regeneration to the named machines
	// (nil = all three; tests use one platform for speed).
	Platforms []string
	// Registry receives the service metrics (nil = a fresh registry).
	Registry *metrics.Registry
	// SimRunner is the simulation spine this server's workload analyses run
	// through (nil = runner.Default(), the process-wide cache). Tests that
	// boot several in-process backends give each its own so cache-affinity
	// effects are observable per server.
	SimRunner *runner.Runner

	// LimitCeiling is the admission controller's Little's-Law occupancy
	// ceiling: requests are admitted while max(in-flight, λ·W) stays under
	// it, queued briefly at it, and shed with 429 + Retry-After beyond the
	// queue (0 = 64; negative disables admission control).
	LimitCeiling float64
	// LimitQueue bounds the admission FIFO (0 = 2×ceiling; negative =
	// shed immediately with no queue).
	LimitQueue int
	// LimitQueueTimeout is the per-request deadline while queued for
	// admission (0 = 5s; the request's own deadline also applies).
	LimitQueueTimeout time.Duration
	// Brownout tunes the degradation ladder (zero fields take the
	// brownout defaults). The controller exists whenever admission control
	// is on — its pressure signal is the limiter's occupancy estimate —
	// unless DisableBrownout opts out (the binary-shedding baseline).
	Brownout        brownout.Config
	DisableBrownout bool
	// RunnerTTL bounds how long the simulation runner's cached results
	// count as fresh: past it, B0 recomputes and B1 serves them marked
	// stale (0 = entries never expire, the seed behaviour — B1 then only
	// differs from B0 for entries that never expire, i.e. not at all, so
	// set a TTL when enabling brownout).
	RunnerTTL time.Duration
	// MaxStreamClients caps concurrent /v1/watch connections — streams are
	// limited by subscriber count, not latency, because a healthy stream
	// lasts as long as its client (0 = 64; negative disables the cap).
	MaxStreamClients int
	// WriteTimeout is the per-write deadline armed immediately before each
	// response write (0 = 1m). It bounds how long a stalled client can
	// hold a connection without imposing a whole-response deadline that
	// would kill long-lived /v1/watch streams.
	WriteTimeout time.Duration

	// TraceCapacity bounds the ring of finished request traces served by
	// GET /v1/trace/{id} and replayed by GET /v1/traces
	// (0 = trace.DefaultCapacity).
	TraceCapacity int

	// FaultInjector is the fault layer the per-handler sites and the
	// /v1/faults admin endpoint operate on (nil = faults.Global(), the
	// injector the rest of the stack — runner, engine, limiter, stream —
	// evaluates; tests may isolate themselves with their own).
	FaultInjector *faults.Injector
}

func (c *Config) normalize() {
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.ProfileCacheSize == 0 {
		c.ProfileCacheSize = 8
	}
	if c.TableCacheSize == 0 {
		c.TableCacheSize = 32
	}
	if c.RunnerCacheSize == 0 {
		c.RunnerCacheSize = 4
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.LimitCeiling == 0 {
		c.LimitCeiling = 64
	}
	if c.LimitQueueTimeout == 0 {
		c.LimitQueueTimeout = 5 * time.Second
	}
	if c.MaxStreamClients == 0 {
		c.MaxStreamClients = 64
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = time.Minute
	}
	if c.FaultInjector == nil {
		c.FaultInjector = faults.Global()
	}
	if c.SimRunner == nil {
		c.SimRunner = runner.Default()
	}
}

// tableKey identifies one cached table regeneration.
type tableKey struct {
	id    string
	scale float64
}

// Server is the analysis service. Construct with New; its Handler is safe
// for concurrent use.
type Server struct {
	cfg Config
	reg *metrics.Registry

	profiles *engine.LRU[string, *queueing.Curve]
	tables   *engine.LRU[tableKey, *experiments.Table]
	runners  *engine.LRU[float64, *experiments.Runner]

	limiter  *limit.Limiter
	sessions *limit.Sessions
	faults   *faults.Injector
	brownout *brownout.Controller

	draining  atomic.Bool
	drainOnce sync.Once
	liveMu    sync.Mutex
	// liveStreams tracks ad-hoc watch brokers (unnamed streams) still
	// serving their originating request, so BeginDrain can send them the
	// terminal shutdown event; named brokers live in watches.
	liveStreams map[*stream.Broker]struct{}

	traces      *trace.Sink
	traceBroker *stream.BrokerOf[trace.Record]

	requests    *metrics.CounterVec
	latency     *metrics.HistogramVec
	inflight    *metrics.Gauge
	cacheEvents *metrics.CounterVec
	admissions  *metrics.CounterVec

	streamSubs    *metrics.GaugeVec
	streamEvents  *metrics.CounterVec
	streamDropped *metrics.CounterVec

	watchMu sync.Mutex
	watches map[string]*stream.Broker

	mux *http.ServeMux
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:         cfg,
		reg:         cfg.Registry,
		profiles:    engine.NewLRU[string, *queueing.Curve](cfg.ProfileCacheSize),
		tables:      engine.NewLRU[tableKey, *experiments.Table](cfg.TableCacheSize),
		runners:     engine.NewLRU[float64, *experiments.Runner](cfg.RunnerCacheSize),
		watches:     map[string]*stream.Broker{},
		liveStreams: map[*stream.Broker]struct{}{},
		faults:      cfg.FaultInjector,
	}
	if cfg.RunnerTTL > 0 {
		cfg.SimRunner.SetTTL(cfg.RunnerTTL)
	}
	s.traces = trace.NewSink(cfg.TraceCapacity)
	s.traceBroker = stream.NewBrokerOf[trace.Record](cfg.TraceCapacity,
		func(rec *trace.Record, seq int) { rec.Seq = seq })
	s.traces.OnFinish = func(t *trace.Trace) { s.traceBroker.Publish(trace.Record{Trace: t.View()}) }
	if cfg.LimitCeiling > 0 {
		s.limiter = limit.New(limit.Config{
			Ceiling:      cfg.LimitCeiling,
			MaxQueue:     cfg.LimitQueue,
			QueueTimeout: cfg.LimitQueueTimeout,
		})
	}
	if cfg.MaxStreamClients > 0 {
		s.sessions = limit.NewSessions(cfg.MaxStreamClients)
	}
	// The brownout controller rides on the limiter: its pressure signal is
	// the limiter's occupancy estimate, so without admission control there
	// is nothing to observe and the ladder stays off.
	if s.limiter != nil && !cfg.DisableBrownout {
		ctrl, err := brownout.NewController(cfg.Brownout)
		if err != nil {
			panic(fmt.Sprintf("service: invalid brownout config: %v", err))
		}
		s.brownout = ctrl
	}
	s.requests = s.reg.CounterVec("llserved_requests_total",
		"Completed HTTP requests by handler and status code.", "handler", "code")
	s.latency = s.reg.HistogramVec("llserved_request_seconds",
		"Request latency by handler.", nil, "handler")
	s.inflight = s.reg.Gauge("llserved_inflight_requests",
		"Requests currently being served (the directly sampled occupancy).")
	s.cacheEvents = s.reg.CounterVec("llserved_cache_events_total",
		"Cache lookups by cache and outcome.", "cache", "event")
	s.streamSubs = s.reg.GaugeVec("llserved_stream_subscribers",
		"Subscribers currently attached to a watch stream.", "stream")
	s.streamEvents = s.reg.CounterVec("llserved_stream_events_total",
		"Events published to a watch stream.", "stream")
	s.streamDropped = s.reg.CounterVec("llserved_stream_dropped_total",
		"Events dropped (oldest-first) on slow watch subscribers.", "stream")
	s.reg.Derived("llserved_littles_law_concurrency",
		"The server's own n_avg from Little's Law: request latency_sum over uptime "+
			"(Equation 1 applied to the service; compare llserved_inflight_requests).",
		func() float64 { return s.reg.LittleConcurrency(s.latency) })
	s.admissions = s.reg.CounterVec("llserved_limiter_decisions_total",
		"Admission decisions by handler and outcome (admitted, queued, shed, expired).",
		"handler", "decision")
	if s.limiter != nil {
		s.reg.Derived("llserved_limiter_navg",
			"The admission controller's live Little's-Law occupancy estimate Σ λ_route × W_route.",
			func() float64 { return s.limiter.Snapshot().NAvg })
		s.reg.Derived("llserved_limiter_ceiling",
			"The admission controller's MSHR-style occupancy ceiling.",
			func() float64 { return s.limiter.Ceiling() })
		s.reg.Derived("llserved_limiter_inflight",
			"Requests currently admitted by the limiter and not yet complete.",
			func() float64 { return float64(s.limiter.Snapshot().InFlight) })
		s.reg.Derived("llserved_limiter_queue_depth",
			"Arrivals waiting in the bounded admission FIFO.",
			func() float64 { return float64(s.limiter.Snapshot().QueueDepth) })
		s.reg.DerivedCounter("llserved_limiter_shed_total",
			"Arrivals shed with 429 + Retry-After (queue full or queue deadline hit).",
			func() uint64 { return s.limiter.Snapshot().Shed })
		s.reg.DerivedCounter("llserved_limiter_admitted_total",
			"Arrivals admitted by the limiter (immediately or after queueing).",
			func() uint64 { return s.limiter.Snapshot().Admitted })
	}
	if s.brownout != nil {
		s.brownout.Register(s.reg, "llserved_brownout")
		s.reg.Derived("llserved_brownout_pressure",
			"The brownout controller's input: max(inflight+queued, n_avg) / ceiling.",
			s.pressure)
	}
	s.reg.Derived("llserved_draining",
		"1 once shutdown drain began (healthz reports draining, new work sheds), else 0.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})
	// The simulation spine's own instrumentation: analyze requests bottom
	// out in the server's runner (runner.Default() unless the config
	// isolated one — the table/tune pipelines always share the default), so
	// its cache and occupancy telemetry belong on the service's scrape page.
	cfg.SimRunner.Register(s.reg, "llserved_runner")
	// The per-stage decomposition: λ, W and n_avg for every traced stage,
	// the same busy-seconds-over-uptime construction as the runner's
	// occupancy gauge — so llserved_trace_stage_navg{stage="sim"} and
	// llserved_runner_littles_occupancy must agree.
	s.traces.Register(s.reg, "llserved_trace")
	s.reg.Derived("llserved_faults_enabled",
		"1 when the fault-injection layer is evaluating rules, 0 when it is a no-op.",
		func() float64 {
			if s.faults.Enabled() {
				return 1
			}
			return 0
		})
	s.reg.DerivedCounter("llserved_faults_injected_total",
		"Faults fired across every instrumented site since the injector was configured.",
		s.faults.FiredTotal)
	if s.sessions != nil {
		s.reg.Derived("llserved_stream_clients",
			"Live /v1/watch connections counted against the subscriber cap.",
			func() float64 { return float64(s.sessions.Active()) })
		s.reg.DerivedCounter("llserved_stream_denied_total",
			"/v1/watch connections rejected at the subscriber cap.",
			func() uint64 { return s.sessions.Denied() })
	}

	s.mux = http.NewServeMux()
	s.mux.Handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	s.mux.Handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	s.mux.Handle("GET /v1/platforms", s.instrument("platforms", s.handlePlatforms))
	s.mux.Handle("POST /v1/characterize", s.instrument("characterize", s.handleCharacterize))
	s.mux.Handle("POST /v1/analyze", s.instrument("analyze", s.handleAnalyze))
	s.mux.Handle("POST /v1/analyze/batch", s.instrument("analyze_batch", s.handleAnalyzeBatch))
	s.mux.Handle("POST /v1/advise", s.instrument("advise", s.handleAdvise))
	s.mux.Handle("POST /v1/tune", s.instrument("tune", s.handleTune))
	s.mux.Handle("GET /v1/tables/{id}", s.instrument("tables", s.handleTable))
	s.mux.Handle("POST /v1/watch", s.instrumentStream("watch", s.handleWatch))
	s.mux.Handle("GET /v1/watch/{stream}", s.instrumentStream("watch_subscribe", s.handleWatchSubscribe))
	// The faults admin endpoints sit outside the admission controller on
	// purpose: during a chaos run the limiter may be shedding everything,
	// and the kill switch must still answer.
	s.mux.Handle("GET /v1/faults", http.HandlerFunc(s.handleFaultsGet))
	s.mux.Handle("POST /v1/faults", http.HandlerFunc(s.handleFaultsPost))
	// The trace endpoints likewise bypass the limiter and the tracer: the
	// tool for diagnosing overload must answer during overload, and a trace
	// of fetching a trace is noise. The single-trace lookup stays alive at
	// every brownout rung for the same reason; only the tail stream
	// (long-lived, non-critical) sheds at B3 — handleTraces checks itself.
	s.mux.Handle("GET /v1/trace/{id}", http.HandlerFunc(s.handleTraceGet))
	s.mux.Handle("GET /v1/traces", http.HandlerFunc(s.handleTraces))
	// The brownout admin surface is admin-tier like /v1/faults: reading or
	// pinning the ladder must work while the ladder is shedding.
	s.mux.Handle("GET /v1/brownout", http.HandlerFunc(s.handleBrownoutGet))
	s.mux.Handle("POST /v1/brownout", http.HandlerFunc(s.handleBrownoutPost))
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry serving /metrics.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// httpError carries a status code chosen at the failure site, plus an
// optional Retry-After hint for shed requests.
type httpError struct {
	status     int
	err        error
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func failWith(status int, err error) error { return &httpError{status: status, err: err} }

func failWithRetry(status int, err error, retryAfter time.Duration) error {
	return &httpError{status: status, err: err, retryAfter: retryAfter}
}

// admitFunc asks an admission gate for permission to run a request,
// returning the release callback to invoke on completion.
type admitFunc func(r *http.Request) (release func(), err error)

// instrument wraps a handler with the per-request envelope — timeout
// context, in-flight gauge, latency histogram, request counter — behind
// the Little's-Law admission controller: the limiter measures this route's
// arrival rate and latency, and sheds with 429 + Retry-After when
// occupancy would pass the ceiling.
func (s *Server) instrument(name string, fn func(w http.ResponseWriter, r *http.Request) error) http.Handler {
	return s.envelope(name, fn, func(r *http.Request) (func(), error) {
		if s.limiter == nil {
			return func() {}, nil
		}
		release, waited, err := s.limiter.Acquire(r.Context(), name)
		if err != nil {
			var shed *limit.ShedError
			if errors.As(err, &shed) {
				s.admissions.With(name, "shed").Inc()
				return nil, failWithRetry(http.StatusTooManyRequests,
					fmt.Errorf("admission denied: server occupancy at ceiling"), shed.RetryAfter)
			}
			// The request's own deadline expired while queued; the usual
			// context mapping (504/499) applies.
			s.admissions.With(name, "expired").Inc()
			return nil, err
		}
		if waited {
			s.admissions.With(name, "queued").Inc()
		}
		s.admissions.With(name, "admitted").Inc()
		return release, nil
	})
}

// instrumentStream is instrument for the streaming routes: /v1/watch
// connections are long-lived, so a latency-based limiter would misread
// them — they are capped by concurrent subscriber count instead.
func (s *Server) instrumentStream(name string, fn func(w http.ResponseWriter, r *http.Request) error) http.Handler {
	return s.envelope(name, fn, func(r *http.Request) (func(), error) {
		if s.sessions == nil {
			return func() {}, nil
		}
		release, ok := s.sessions.Acquire()
		if !ok {
			s.admissions.With(name, "shed").Inc()
			return nil, failWithRetry(http.StatusTooManyRequests,
				fmt.Errorf("stream client limit (%d) reached", s.sessions.Max()), 5*time.Second)
		}
		s.admissions.With(name, "admitted").Inc()
		return release, nil
	})
}

func (s *Server) envelope(name string, fn func(w http.ResponseWriter, r *http.Request) error, admit admitFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Inc()
		defer s.inflight.Dec()

		// Every request gets a trace; the id header goes out even on errors
		// so a client holding a 429 or 504 can still fetch the waterfall.
		// The summary header is injected at first write (see statusWriter),
		// when the spans recorded so far are known.
		tr := s.traces.Start(name)
		w.Header().Set("X-Trace-Id", tr.ID())
		sw := &statusWriter{ResponseWriter: w, onFirstWrite: func(h http.Header) {
			h.Set("X-Trace-Summary", tr.Summary())
		}}

		ctx, cancel, err := s.requestContext(r)
		if err != nil {
			s.finish(name, start, s.writeError(sw, r, failWith(http.StatusBadRequest, err)), tr)
			return
		}
		defer cancel()

		// Drain wins over everything: once shutdown began, every /v1
		// request sheds with 503 + Retry-After so a proxy fails it over
		// and a rolling restart stays invisible to clients.
		if s.Draining() {
			s.admissions.With(name, "drained").Inc()
			s.finish(name, start, s.writeError(sw, r, errDraining()), tr)
			return
		}

		// Every request is a pressure sample for the brownout ladder; the
		// resulting mode is stamped on the response (even on sheds — it is
		// the explanation), threaded through context so resolveAnalyze can
		// pick the cheaper path, and noted on the trace so waterfalls show
		// why an answer was analytic or stale.
		mode := s.observeMode()
		if mode > brownout.B0 {
			sw.Header().Set("X-Brownout-Mode", mode.String())
			tr.Add("brownout", mode.String(), 0, 0)
		}
		if mode >= shedAt(name) {
			s.admissions.With(name, "brownout_shed").Inc()
			s.finish(name, start, s.writeError(sw, r, failWithRetry(http.StatusServiceUnavailable,
				fmt.Errorf("brownout %s (%s): route %q shed", mode, mode.Label(), name),
				brownoutRetryAfter)), tr)
			return
		}
		ctx = withMode(ctx, mode)
		r = r.WithContext(trace.NewContext(ctx, tr))

		// Admission happens under the request context, so a queued arrival
		// waits at most min(queue deadline, request deadline) — and under
		// the trace, so the limiter records its queue wait as a span.
		release, err := admit(r)
		if err != nil {
			s.finish(name, start, s.writeError(sw, r, err), tr)
			return
		}
		defer release()

		h := tr.Begin("handler")
		err = s.protect(name, sw, r, fn)
		h.End("")
		if err != nil {
			if sw.status != 0 {
				// The handler already started writing; nothing to salvage.
				s.finish(name, start, sw.status, tr)
				return
			}
			s.finish(name, start, s.writeError(sw, r, err), tr)
			return
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.finish(name, start, status, tr)
	})
}

// protect runs the handler body behind the per-handler fault site and a
// panic-to-500 guard. A panicking handler (injected or real) must produce
// a response and release its admission slot — the deferred release in
// envelope runs on unwind either way, but without the recover here the
// panic would reach net/http, which kills the connection responseless and
// skips the request metrics.
func (s *Server) protect(name string, sw *statusWriter, r *http.Request, fn func(http.ResponseWriter, *http.Request) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = failWith(http.StatusInternalServerError, fmt.Errorf("handler panicked: %v", v))
		}
	}()
	switch f := s.faults.Eval("handler." + name); f.Kind {
	case faults.KindLatency:
		f.Sleep(r.Context())
	case faults.KindError:
		// A transient dependency failure: 503 with a short Retry-After,
		// the shape a resilient client retries.
		return failWithRetry(http.StatusServiceUnavailable, f.Err(), time.Second)
	case faults.KindPanic:
		panic(f.PanicValue())
	}
	return fn(sw, r)
}

func (s *Server) finish(name string, start time.Time, status int, tr *trace.Trace) {
	tr.Finish(status, time.Since(start))
	s.traces.Done(tr)
	s.requests.With(name, strconv.Itoa(status)).Inc()
	s.latency.With(name).Observe(time.Since(start).Seconds())
}

// requestContext derives the per-request deadline: ?timeout=30s overrides
// the default, capped at the configured maximum.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		parsed, err := time.ParseDuration(v)
		if err != nil || parsed <= 0 {
			return nil, nil, fmt.Errorf("invalid timeout %q", v)
		}
		d = min(parsed, s.cfg.MaxTimeout)
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// writeError maps an error to a status code, writes the JSON envelope and
// returns the code. Context expiry wins over whatever the pipeline
// reported, so a timed-out request is a 504 regardless of which layer
// noticed first.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) int {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; 499 in the nginx tradition (never reaches the
		// client, but the metrics distinguish it from server faults).
		status = 499
	case errors.As(err, &he):
		status = he.status
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", limit.RetryAfterSeconds(he.retryAfter))
		}
	}
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
	return status
}

// armWrite arms the per-write deadline immediately before a response
// write: a stalled client can hold the connection for at most WriteTimeout
// past its last successful write, while a healthy long-lived stream is
// never cut. Writers without deadline support (httptest recorders) are
// left alone.
func (s *Server) armWrite(w http.ResponseWriter) {
	if s.cfg.WriteTimeout <= 0 {
		return
	}
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	s.armWrite(w)
	writeJSON(w, status, v)
}

// hardenHeaders is the one place response hardening happens: every
// response is nosniff, and request-derived payloads (analysis results,
// event streams) are marked uncacheable so no intermediary replays a stale
// verdict.
func hardenHeaders(h http.Header, contentType string, noStore bool) {
	h.Set("Content-Type", contentType)
	h.Set("X-Content-Type-Options", "nosniff")
	if noStore {
		h.Set("Cache-Control", "no-store")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	hardenHeaders(w.Header(), "application/json", true)
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// statusWriter records the first status code written and gives the
// envelope a last-moment hook to stamp headers (the trace summary) before
// they go out.
type statusWriter struct {
	http.ResponseWriter
	status       int
	onFirstWrite func(http.Header)
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		if w.onFirstWrite != nil {
			w.onFirstWrite(w.ResponseWriter.Header())
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
		if w.onFirstWrite != nil {
			w.onFirstWrite(w.ResponseWriter.Header())
		}
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer's Flush,
// which the streaming handlers need after every event.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func readBody(r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, MaxBodyBytes))
	if err != nil {
		return nil, failWith(http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
	}
	return data, nil
}

// ---- profile and table plumbing ----

// profile returns the platform's bandwidth→latency curve through the
// LRU+singleflight cache, recording hit/miss metrics.
func (s *Server) profile(ctx context.Context, p *platform.Platform) (*queueing.Curve, bool, error) {
	curve, hit, err := s.profiles.Do(ctx, p.Name, func(ctx context.Context) (*queueing.Curve, error) {
		if s.cfg.ProfileFor != nil {
			return s.cfg.ProfileFor(ctx, p)
		}
		return xmem.CharacterizeContext(ctx, p, xmem.Options{Workers: s.cfg.Workers})
	})
	s.cacheEvent("profile", hit)
	if err != nil {
		return nil, hit, fmt.Errorf("characterizing %s: %w", p.Name, err)
	}
	return curve, hit, nil
}

// runner returns the per-scale experiments runner (whose internal caches
// make the six tables of one scale share simulations).
func (s *Server) runner(ctx context.Context, scale float64) (*experiments.Runner, error) {
	r, hit, err := s.runners.Do(ctx, scale, func(context.Context) (*experiments.Runner, error) {
		return experiments.NewRunner(experiments.Options{
			Scale:     scale,
			Workers:   s.cfg.Workers,
			Platforms: s.cfg.Platforms,
			ProfileForContext: func(ctx context.Context, p *platform.Platform) (*queueing.Curve, error) {
				curve, _, err := s.profile(ctx, p)
				return curve, err
			},
		}), nil
	})
	s.cacheEvent("runner", hit)
	return r, err
}

// Warm characterizes (and caches) the named platform's profile ahead of
// traffic, reporting whether it was already cached.
func (s *Server) Warm(ctx context.Context, platformName string) (bool, error) {
	p, err := platform.ByName(platformName)
	if err != nil {
		return false, err
	}
	_, hit, err := s.profile(ctx, p)
	return hit, err
}

func (s *Server) cacheEvent(cache string, hit bool) {
	event := "miss"
	if hit {
		event = "hit"
	}
	s.cacheEvents.With(cache, event).Inc()
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := HealthzResponse{Status: "ok", Version: buildinfo.Version()}
	if s.limiter != nil {
		snap := s.limiter.Snapshot()
		ceiling := s.limiter.Ceiling()
		h.LimiterNAvg = &snap.NAvg
		h.LimiterCeiling = &ceiling
		h.LimiterInflight = snap.InFlight
		h.QueueDepth = snap.QueueDepth
		if snap.NAvg >= ceiling {
			h.Status = "overloaded"
		}
	}
	if s.brownout != nil {
		// The probe is a pressure sample too: a backend whose only traffic
		// is probes still descends the ladder as load drains away.
		h.BrownoutMode = s.observeMode().String()
	}
	if s.Draining() {
		// Draining wins over overloaded: it tells the prober this backend
		// is leaving, not merely busy.
		h.Status = "draining"
		h.Draining = true
	}
	s.watchMu.Lock()
	h.ActiveStreams = len(s.watches)
	s.watchMu.Unlock()
	if s.sessions != nil {
		h.StreamClients = s.sessions.Active()
	}
	// Always 200: this is liveness plus telemetry, not a gate — the proxy's
	// prober reads the body to weigh a drowning backend, existing checks
	// keep their plain-200 contract (and "ok" still appears in the body).
	s.writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hardenHeaders(w.Header(), "text/plain; version=0.0.4", false)
	s.armWrite(w)
	s.reg.WritePrometheus(w)
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) error {
	var out []PlatformJSON
	for _, p := range platform.All() {
		out = append(out, PlatformJSON{
			Name:      p.Name,
			Vendor:    p.Vendor,
			ISA:       p.ISA,
			Cores:     p.Cores,
			SMTWays:   p.SMTWays,
			FreqGHz:   p.FreqHz / 1e9,
			LineBytes: p.LineBytes,
			PeakGBs:   p.PeakGBs(),
			L1MSHRs:   p.L1.MSHRs,
			L2MSHRs:   p.L2.MSHRs,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
	return nil
}

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	req, err := DecodeCharacterizeRequest(body)
	if err != nil {
		return failWith(http.StatusBadRequest, err)
	}
	p, err := platform.ByName(req.Platform)
	if err != nil {
		return failWith(http.StatusNotFound, err)
	}
	curve, cached, err := s.profile(r.Context(), p)
	if err != nil {
		return err
	}
	resp := CharacterizeResponse{Platform: p.Name, LineBytes: p.LineBytes, Cached: cached}
	for _, pt := range curve.Points() {
		resp.Points = append(resp.Points, PointJSON{BandwidthGBs: pt.BandwidthGBs, LatencyNs: pt.LatencyNs})
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}

// degradation describes how an answer was cheapened under brownout: the
// mode that chose the path, and which marker (Approximate for the
// closed-form analytic model, Stale for an expired cache entry) the
// response must carry. The zero value is a full-fidelity answer.
type degradation struct {
	Mode        brownout.Mode
	Approximate bool
	Stale       bool
}

// Degraded reports whether any marker is set.
func (d degradation) Degraded() bool { return d.Approximate || d.Stale }

// stamp copies the degradation markers into an analyze response.
func (d degradation) stampAnalyze(resp *AnalyzeResponse) {
	if d.Degraded() {
		resp.Degraded = true
		resp.BrownoutMode = d.Mode.String()
		resp.Approximate = d.Approximate
		resp.Stale = d.Stale
	}
}

// resolveAnalyze turns an AnalyzeRequest into (platform, measurement,
// optional run, optional workload) — running the simulation when the
// request names a workload instead of supplying counters. Under brownout
// the simulation step degrades: at B1 the runner may serve an expired
// cache entry (marked Stale), at B2+ the closed-form analytic model
// replaces the kernel entirely (marked Approximate, no Run in the
// response). Direct-measurement requests never involve the kernel and are
// never degraded.
func (s *Server) resolveAnalyze(ctx context.Context, req *AnalyzeRequest) (*platform.Platform, core.Measurement, *sim.Result, workloads.Workload, degradation, error) {
	var deg degradation
	p, err := platform.ByName(req.Platform)
	if err != nil {
		return nil, core.Measurement{}, nil, nil, deg, failWith(http.StatusNotFound, err)
	}
	if req.Measurement != nil {
		return p, req.Measurement.Measurement(), nil, nil, deg, nil
	}
	w, ok := workloads.ByName(req.Workload)
	if !ok {
		return nil, core.Measurement{}, nil, nil, deg, failWith(http.StatusNotFound,
			fmt.Errorf("unknown workload %q", req.Workload))
	}
	w = w.WithVariant(req.Variant.Variant())
	threads := req.ThreadsPerCore
	if threads == 0 {
		threads = 1
	}
	if threads > p.SMTWays {
		return nil, core.Measurement{}, nil, nil, deg, failWith(http.StatusBadRequest,
			fmt.Errorf("platform %s supports at most %d threads per core", p.Name, p.SMTWays))
	}
	scale := req.Scale
	if scale == 0 {
		scale = 0.1
	}
	mode := modeFrom(ctx)

	if mode >= brownout.B2 {
		// Analytic fallback: answer from the closed-form fixed point
		// instead of the kernel — ~10^3× cheaper, within the ablation
		// tolerance of the simulated answer on the golden configs, and
		// always marked Approximate.
		m, err := s.analyticMeasurement(ctx, p, w, threads, scale)
		if err != nil {
			return nil, core.Measurement{}, nil, nil, deg, err
		}
		deg = degradation{Mode: mode, Approximate: true}
		return p, m, nil, w, deg, nil
	}

	cfgSim := w.Config(p, threads, scale)
	var res *sim.Result
	if mode == brownout.B1 {
		var stale bool
		res, stale, err = s.cfg.SimRunner.RunStale(ctx, cfgSim)
		if stale {
			deg = degradation{Mode: mode, Stale: true}
		}
	} else {
		res, err = s.cfg.SimRunner.Run(ctx, cfgSim)
	}
	if err != nil {
		return nil, core.Measurement{}, nil, nil, degradation{}, err
	}
	m := core.Measurement{
		Routine:                w.Routine(),
		BandwidthGBs:           res.TotalGBs,
		ActiveCores:            res.Cores,
		ThreadsPerCore:         res.ThreadsPerCore,
		PrefetchedReadFraction: res.PrefetchedReadFraction,
		RandomAccess:           w.RandomAccess(),
	}
	return p, m, res, w, deg, nil
}

// analyticMeasurement is the B2 path: predict the workload's operating
// point with the closed-form model and shape it as a measurement for the
// same downstream core.Analyze the kernel path feeds. The demand
// concurrency comes from the normalized sim config's window (the per-
// thread MLP the generator would expose), so the analytic question matches
// the simulated one.
func (s *Server) analyticMeasurement(ctx context.Context, p *platform.Platform, w workloads.Workload, threads int, scale float64) (core.Measurement, error) {
	norm, err := w.Config(p, threads, scale).Normalized()
	if err != nil {
		return core.Measurement{}, err
	}
	profile, _, err := s.profile(ctx, p)
	if err != nil {
		return core.Measurement{}, err
	}
	a := trace.Begin(ctx, "analytic")
	pred, err := analytic.Predict(p, profile, analytic.Inputs{
		ConcurrencyPerThread: float64(norm.Window),
		ThreadsPerCore:       threads,
		L1Bound:              w.RandomAccess(),
	})
	a.End("predict")
	if err != nil {
		return core.Measurement{}, err
	}
	return core.Measurement{
		Routine:                w.Routine(),
		BandwidthGBs:           pred.BandwidthGBs,
		ActiveCores:            p.Cores,
		ThreadsPerCore:         threads,
		PrefetchedReadFraction: -1,
		RandomAccess:           w.RandomAccess(),
	}, nil
}

// analyzeOne runs one analyze request to a response — the shared core of
// /v1/analyze and /v1/analyze/batch.
func (s *Server) analyzeOne(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	p, m, res, _, deg, err := s.resolveAnalyze(ctx, req)
	if err != nil {
		return nil, err
	}
	profile, _, err := s.profile(ctx, p)
	if err != nil {
		return nil, err
	}
	rep, err := core.Analyze(p, profile, m)
	if err != nil {
		return nil, failWith(http.StatusBadRequest, err)
	}
	resp := &AnalyzeResponse{Report: reportJSON(rep), Explanation: core.Explain(rep)}
	if res != nil {
		resp.Run = runJSON(res)
	}
	deg.stampAnalyze(resp)
	return resp, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	req, err := DecodeAnalyzeRequest(body)
	if err != nil {
		return failWith(http.StatusBadRequest, err)
	}
	resp, err := s.analyzeOne(r.Context(), req)
	if err != nil {
		return err
	}
	if resp.Degraded {
		w.Header().Set("X-Degraded", "true")
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	req, err := DecodeAnalyzeRequest(body)
	if err != nil {
		return failWith(http.StatusBadRequest, err)
	}
	p, m, _, wl, deg, err := s.resolveAnalyze(r.Context(), req)
	if err != nil {
		return err
	}
	profile, _, err := s.profile(r.Context(), p)
	if err != nil {
		return err
	}
	rep, err := core.Analyze(p, profile, m)
	if err != nil {
		return failWith(http.StatusBadRequest, err)
	}
	caps := core.Capabilities{SMTWays: p.SMTWays, CurrentThreads: m.ThreadsPerCore, IrregularAccess: m.RandomAccess}
	if wl != nil {
		caps = wl.Capabilities(p, m.ThreadsPerCore)
	}
	resp := AdviseResponse{Report: reportJSON(rep), Explanation: core.Explain(rep)}
	if deg.Degraded() {
		resp.Degraded = true
		resp.BrownoutMode = deg.Mode.String()
		resp.Approximate = deg.Approximate
		resp.Stale = deg.Stale
		w.Header().Set("X-Degraded", "true")
	}
	for _, a := range core.Advise(rep, caps) {
		resp.Advice = append(resp.Advice, AdviceJSON{
			Optimization: a.Opt.String(),
			Stance:       a.Stance.String(),
			Reason:       a.Reason,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	req, err := DecodeTuneRequest(body)
	if err != nil {
		return failWith(http.StatusBadRequest, err)
	}
	p, err := platform.ByName(req.Platform)
	if err != nil {
		return failWith(http.StatusNotFound, err)
	}
	wl, ok := workloads.ByName(req.Workload)
	if !ok {
		return failWith(http.StatusNotFound, fmt.Errorf("unknown workload %q", req.Workload))
	}
	profile, _, err := s.profile(r.Context(), p)
	if err != nil {
		return err
	}
	res, err := autotune.TuneContext(r.Context(), p, profile, wl, autotune.Options{
		Scale:           req.Scale,
		MaxSteps:        req.MaxSteps,
		AcceptThreshold: req.AcceptThreshold,
		UserIntuition:   req.UserIntuition,
		Workers:         s.cfg.Workers,
	})
	if err != nil {
		return err
	}
	resp := TuneResponse{
		Workload:     res.Workload,
		Platform:     res.Platform,
		FinalSource:  res.FinalVariant.Label(res.FinalThreads),
		TotalSpeedup: res.TotalSpeedup,
		FinalReport:  reportJSON(res.FinalReport),
	}
	for _, st := range res.Steps {
		resp.Steps = append(resp.Steps, TuneStepJSON{
			Tried:    st.Tried.String(),
			Speedup:  st.Speedup,
			Accepted: st.Accepted,
			Report:   reportJSON(st.Report),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) error {
	id, err := NormalizeTableID(r.PathValue("id"))
	if err != nil {
		return failWith(http.StatusNotFound, err)
	}
	scale := 1.0
	if v := r.URL.Query().Get("scale"); v != "" {
		parsed, perr := strconv.ParseFloat(v, 64)
		if perr != nil {
			return failWith(http.StatusBadRequest, fmt.Errorf("invalid scale %q", v))
		}
		if err := validateScale(parsed); err != nil || parsed == 0 {
			return failWith(http.StatusBadRequest, fmt.Errorf("scale must be in (0, 1]"))
		}
		scale = parsed
	}
	tab, cached, err := s.tables.Do(r.Context(), tableKey{id: id, scale: scale},
		func(ctx context.Context) (*experiments.Table, error) {
			runner, err := s.runner(ctx, scale)
			if err != nil {
				return nil, err
			}
			return runner.TableContext(ctx, id)
		})
	s.cacheEvent("table", cached)
	if err != nil {
		return err
	}
	resp := TableResponse{ID: tab.ID, Workload: tab.Workload, Routine: tab.Routine, Scale: scale, Cached: cached}
	for _, row := range tab.Rows {
		jr := TableRowJSON{
			Platform:     row.Platform,
			Source:       row.Source,
			Threads:      row.Threads,
			BWGBs:        row.BWGBs,
			PeakPct:      row.PeakPct,
			LatNs:        row.LatNs,
			Occupancy:    row.Occ,
			TrueL1Occ:    row.TrueL1Occ,
			TrueL2Occ:    row.TrueL2Occ,
			NextOpt:      row.NextOpt,
			Speedup:      row.Speedup,
			PaperBW:      row.PaperBW,
			PaperOcc:     row.PaperOcc,
			PaperSpeedup: row.PaperSpeedup,
		}
		if row.NextOpt != "" {
			jr.Stance = row.Stance.String()
		}
		resp.Rows = append(resp.Rows, jr)
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}
