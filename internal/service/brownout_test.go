package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"littleslaw/internal/brownout"
	"littleslaw/internal/stream"
)

// brownoutTestConfig is a server with admission control on (the brownout
// controller requires a limiter for its pressure signal) and instant
// paper-anchor profiles.
func brownoutTestConfig(ps *profileStub) Config {
	return Config{LimitCeiling: 8, ProfileFor: ps.fn}
}

// pin pins a brownout mode over the API.
func pin(t *testing.T, ts *httptest.Server, mode string) {
	t.Helper()
	resp, body := post(t, ts, "/v1/brownout", fmt.Sprintf(`{"pin":%q}`, mode))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pin %s = %d %s", mode, resp.StatusCode, body)
	}
}

// unpin releases a pinned mode over the API.
func unpin(t *testing.T, ts *httptest.Server) {
	t.Helper()
	if resp, body := post(t, ts, "/v1/brownout", `{"unpin":true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("unpin = %d %s", resp.StatusCode, body)
	}
}

// TestBrownoutEndpoint pins the /v1/brownout contract: state readable,
// pin/unpin round-trips, validation errors, 404 when disabled.
func TestBrownoutEndpoint(t *testing.T) {
	ps := &profileStub{}
	_, ts := newTestServer(t, brownoutTestConfig(ps))

	resp, body := get(t, ts, "/v1/brownout")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/brownout = %d %s", resp.StatusCode, body)
	}
	var st BrownoutState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("state not JSON: %v\n%s", err, body)
	}
	if st.Mode != "B0" || st.Pinned {
		t.Fatalf("fresh state = %+v, want B0 unpinned", st)
	}
	if len(st.Enter) != brownout.NumModes-1 || len(st.Exit) != brownout.NumModes-1 {
		t.Fatalf("thresholds = %v / %v, want %d each", st.Enter, st.Exit, brownout.NumModes-1)
	}

	// Pin by label, read back by rung name.
	resp, body = post(t, ts, "/v1/brownout", `{"pin":"analytic"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pin analytic = %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "B2" || !st.Pinned {
		t.Fatalf("pinned state = %+v, want B2 pinned", st)
	}

	resp, body = post(t, ts, "/v1/brownout", `{"unpin":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unpin = %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Pinned {
		t.Fatalf("state still pinned after unpin: %+v", st)
	}

	for _, bad := range []string{
		`{}`,                        // neither
		`{"pin":"B2","unpin":true}`, // both
		`{"pin":"B9"}`,              // unknown mode
		`{"pin":"B2","x":1}`,        // unknown field
	} {
		if resp, _ := post(t, ts, "/v1/brownout", bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", bad, resp.StatusCode)
		}
	}

	// Disabled controller: 404 on both verbs.
	_, tsOff := newTestServer(t, Config{LimitCeiling: 8, DisableBrownout: true, ProfileFor: ps.fn})
	if resp, _ := get(t, tsOff, "/v1/brownout"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET with brownout disabled = %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(t, tsOff, "/v1/brownout", `{"unpin":true}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST with brownout disabled = %d, want 404", resp.StatusCode)
	}
}

// TestBrownoutLadderBehaviors pins what each rung does to the route
// surface: B2 answers analyze/advise from the analytic model with honest
// markers, B3 sheds non-critical routes while analyze stays alive, B4
// sheds the analysis surface too while the admin plane keeps answering.
func TestBrownoutLadderBehaviors(t *testing.T) {
	ps := &profileStub{}
	srv, ts := newTestServer(t, brownoutTestConfig(ps))
	analyzeBody := `{"platform":"SKL","workload":"ISx","scale":0.02}`

	// B0: a full-fidelity answer, no degradation markers anywhere.
	resp, body := post(t, ts, "/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("B0 analyze = %d %s", resp.StatusCode, body)
	}
	var full AnalyzeResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Degraded || full.Approximate || full.Stale || full.Run == nil {
		t.Fatalf("B0 answer degraded or missing run: %+v", full)
	}
	if resp.Header.Get("X-Degraded") != "" || resp.Header.Get("X-Brownout-Mode") != "" {
		t.Fatalf("B0 response carries degradation headers: %v", resp.Header)
	}

	// B2: analytic fallback, marked Approximate, no kernel run.
	pin(t, ts, "B2")
	resp, body = post(t, ts, "/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("B2 analyze = %d %s", resp.StatusCode, body)
	}
	var approx AnalyzeResponse
	if err := json.Unmarshal(body, &approx); err != nil {
		t.Fatal(err)
	}
	if !approx.Degraded || !approx.Approximate || approx.Stale || approx.BrownoutMode != "B2" {
		t.Fatalf("B2 markers = %+v, want degraded approximate B2", approx)
	}
	if approx.Run != nil {
		t.Fatalf("B2 answer carries a kernel run: %+v", approx.Run)
	}
	if resp.Header.Get("X-Degraded") != "true" || resp.Header.Get("X-Brownout-Mode") != "B2" {
		t.Fatalf("B2 headers = %v", resp.Header)
	}
	// Advise degrades the same way.
	resp, body = post(t, ts, "/v1/advise", analyzeBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("B2 advise = %d %s", resp.StatusCode, body)
	}
	var adv AdviseResponse
	if err := json.Unmarshal(body, &adv); err != nil {
		t.Fatal(err)
	}
	if !adv.Degraded || !adv.Approximate || adv.BrownoutMode != "B2" || len(adv.Advice) == 0 {
		t.Fatalf("B2 advise = %+v, want degraded approximate with advice", adv)
	}
	// Measurement-path analyses have no kernel to skip: never degraded.
	resp, body = post(t, ts, "/v1/analyze", `{"platform":"SKL","measurement":{"bandwidth_gbs":80}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("B2 measurement analyze = %d %s", resp.StatusCode, body)
	}
	var meas AnalyzeResponse
	if err := json.Unmarshal(body, &meas); err != nil {
		t.Fatal(err)
	}
	if meas.Degraded || meas.Approximate {
		t.Fatalf("measurement answer marked degraded: %+v", meas)
	}

	// B3: non-critical routes shed with 503 + Retry-After and the mode
	// header; the critical analysis surface stays alive.
	pin(t, ts, "B3")
	for _, path := range []string{"/v1/tables/IV", "/v1/traces?max=1"} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("B3 GET %s = %d %s, want 503", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-Brownout-Mode") != "B3" {
			t.Errorf("B3 GET %s headers = %v", path, resp.Header)
		}
	}
	if resp, body := post(t, ts, "/v1/watch", `{"platform":"SKL"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("B3 watch = %d %s, want 503", resp.StatusCode, body)
	}
	if resp, _ := post(t, ts, "/v1/analyze", analyzeBody); resp.StatusCode != http.StatusOK {
		t.Errorf("B3 analyze = %d, want 200", resp.StatusCode)
	}

	// B4: everything outside the admin plane sheds; diagnostics survive.
	pin(t, ts, "B4")
	if resp, _ := post(t, ts, "/v1/analyze", analyzeBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("B4 analyze = %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/platforms"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("B4 platforms = %d, want 503", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/metrics", "/v1/brownout", "/v1/faults"} {
		if resp, body := get(t, ts, path); resp.StatusCode != http.StatusOK {
			t.Errorf("B4 GET %s = %d %s, want 200 (admin never sheds)", path, resp.StatusCode, body)
		}
	}
	// healthz names the rung so fleet probes can route around it.
	_, body = get(t, ts, "/healthz")
	var h HealthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.BrownoutMode != "B4" {
		t.Errorf("healthz brownout_mode = %q, want B4", h.BrownoutMode)
	}

	// Metrics expose the ladder.
	_, metricsBody := get(t, ts, "/metrics")
	for _, want := range []string{"llserved_brownout_mode 4", "llserved_brownout_transitions_total"} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if srv.InFlight() != 0 {
		t.Errorf("InFlight = %d after all requests completed", srv.InFlight())
	}
}

// TestBrownoutStaleServing pins B1: an expired cache entry serves as a
// marked-stale answer instead of recomputing; a cache miss still runs the
// kernel and is not marked.
func TestBrownoutStaleServing(t *testing.T) {
	ps := &profileStub{}
	cfg := brownoutTestConfig(ps)
	// Everything expires immediately: any revisit under B1 is a stale serve.
	cfg.RunnerTTL = time.Nanosecond
	_, ts := newTestServer(t, cfg)
	analyzeBody := `{"platform":"SKL","workload":"ISx","scale":0.02}`

	// Populate the cache with a full run.
	resp, body := post(t, ts, "/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming analyze = %d %s", resp.StatusCode, body)
	}

	pin(t, ts, "B1")
	resp, body = post(t, ts, "/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("B1 analyze = %d %s", resp.StatusCode, body)
	}
	var stale AnalyzeResponse
	if err := json.Unmarshal(body, &stale); err != nil {
		t.Fatal(err)
	}
	if !stale.Degraded || !stale.Stale || stale.Approximate || stale.BrownoutMode != "B1" {
		t.Fatalf("B1 markers = %+v, want degraded stale B1", stale)
	}
	if stale.Run == nil {
		t.Fatalf("stale answer lost its kernel run: %+v", stale)
	}
	if resp.Header.Get("X-Degraded") != "true" || resp.Header.Get("X-Brownout-Mode") != "B1" {
		t.Fatalf("B1 headers = %v", resp.Header)
	}

	// A cache miss under B1 still runs the kernel, unmarked: stale serving
	// reuses work, it never invents it.
	resp, body = post(t, ts, "/v1/analyze", `{"platform":"SKL","workload":"ISx","scale":0.021}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("B1 miss analyze = %d %s", resp.StatusCode, body)
	}
	var fresh AnalyzeResponse
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Stale || fresh.Approximate {
		t.Fatalf("B1 cache miss marked degraded: %+v", fresh)
	}
}

// TestBrownoutAnalyticGolden cross-checks the B2 analytic fallback against
// the cached simulation answer for the paper platforms: the approximate
// bandwidth must land within the same tolerance band the analytic model's
// own validation uses, and every approximate response must say so.
func TestBrownoutAnalyticGolden(t *testing.T) {
	ps := &profileStub{}
	_, ts := newTestServer(t, brownoutTestConfig(ps))
	for _, platformName := range []string{"SKL", "KNL", "A64FX"} {
		body := fmt.Sprintf(`{"platform":%q,"workload":"ISx","scale":0.02}`, platformName)

		unpin(t, ts)
		resp, raw := post(t, ts, "/v1/analyze", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s full analyze = %d %s", platformName, resp.StatusCode, raw)
		}
		var full AnalyzeResponse
		if err := json.Unmarshal(raw, &full); err != nil {
			t.Fatal(err)
		}

		pin(t, ts, "B2")
		resp, raw = post(t, ts, "/v1/analyze", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s analytic analyze = %d %s", platformName, resp.StatusCode, raw)
		}
		var approx AnalyzeResponse
		if err := json.Unmarshal(raw, &approx); err != nil {
			t.Fatal(err)
		}
		if !approx.Approximate || !approx.Degraded {
			t.Fatalf("%s analytic answer unmarked: %+v", platformName, approx)
		}

		simBW, anaBW := full.Report.BandwidthGBs, approx.Report.BandwidthGBs
		if simBW <= 0 || anaBW <= 0 {
			t.Fatalf("%s bandwidths = %.2f sim, %.2f analytic", platformName, simBW, anaBW)
		}
		// Tighter than the analytic model's own curve-validation band
		// (internal/analytic tolerates [0.7, 1.45]): for the paper
		// workloads the fallback tracks the kernel within a few percent,
		// and this pin keeps it that way.
		if ratio := anaBW / simBW; ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s analytic %.2f GB/s vs sim %.2f GB/s (ratio %.2f) outside tolerance",
				platformName, anaBW, simBW, ratio)
		}
	}
}

// TestDrainLifecycle walks BeginDrain: healthz flips to draining, new work
// sheds 503 + Retry-After, live ad-hoc streams hear a terminal shutdown
// event, the trace tail ends in a terminal record, and the admin plane
// keeps answering throughout. BeginDrain is idempotent.
func TestDrainLifecycle(t *testing.T) {
	ps := &profileStub{}
	srv, ts := newTestServer(t, brownoutTestConfig(ps))

	// A live ad-hoc stream, registered the way handleWatch registers them.
	br := stream.NewBroker(4)
	defer srv.trackStream(br)()
	sub := br.Subscribe(4)
	defer sub.Close()

	// A live trace tail; collect its records in the background.
	tailReq, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/traces", nil)
	if err != nil {
		t.Fatal(err)
	}
	tailResp, err := http.DefaultClient.Do(tailReq)
	if err != nil {
		t.Fatal(err)
	}
	defer tailResp.Body.Close()
	if tailResp.StatusCode != http.StatusOK {
		t.Fatalf("trace tail = %d", tailResp.StatusCode)
	}
	tailDone := make(chan []string, 1)
	go func() {
		var lines []string
		sc := bufio.NewScanner(tailResp.Body)
		for sc.Scan() {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				lines = append(lines, line)
			}
		}
		tailDone <- lines
	}()

	// One completed request so the tail has a normal record before the
	// terminal one.
	if resp, body := post(t, ts, "/v1/analyze", `{"platform":"SKL","measurement":{"bandwidth_gbs":80}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain analyze = %d %s", resp.StatusCode, body)
	}

	srv.BeginDrain()
	srv.BeginDrain() // idempotent

	if !srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	// healthz: still 200 (the process is alive), status draining.
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz = %d", resp.StatusCode)
	}
	var h HealthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("healthz = %+v, want status draining", h)
	}

	// New work sheds with 503 + Retry-After.
	resp, _ = post(t, ts, "/v1/analyze", `{"platform":"SKL","measurement":{"bandwidth_gbs":80}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining analyze = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("draining Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}

	// The tracked stream hears the terminal shutdown event, then closes.
	select {
	case ev, ok := <-sub.Events():
		if !ok || ev.Kind != "shutdown" {
			t.Fatalf("stream event = %+v (ok=%v), want shutdown", ev, ok)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no shutdown event on tracked stream")
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("stream still open after shutdown event")
	}

	// The trace tail ends with the terminal record and a clean EOF.
	select {
	case lines := <-tailDone:
		if len(lines) == 0 {
			t.Fatal("trace tail saw no records")
		}
		var last trace2 // the terminal record
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
			t.Fatal(err)
		}
		if last.Terminal != "shutdown" {
			t.Fatalf("last tail record = %s, want terminal shutdown", lines[len(lines)-1])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("trace tail did not close after drain")
	}

	// Admin plane stays alive for the whole drain window.
	if resp, _ := get(t, ts, "/metrics"); resp.StatusCode != http.StatusOK {
		t.Errorf("draining metrics = %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/brownout"); resp.StatusCode != http.StatusOK {
		t.Errorf("draining brownout state = %d", resp.StatusCode)
	}
	if srv.InFlight() != 0 {
		t.Errorf("InFlight = %d, want 0", srv.InFlight())
	}
}

// trace2 decodes just the terminal marker from a tail record.
type trace2 struct {
	Terminal string `json:"terminal"`
}
