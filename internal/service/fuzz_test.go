package service

import (
	"math"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the three request decoders.
// Decoders must never panic, and every request they accept must satisfy the
// invariants the handlers rely on (so handlers never re-validate).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"platform":"SKL","measurement":{"bandwidth_gbs":12.5,"routine":"copy"}}`))
	f.Add([]byte(`{"platform":"KNL","workload":"ISx","scale":0.1,"threads_per_core":2}`))
	f.Add([]byte(`{"platform":"A64FX","workload":"MiniGhost","variant":{"sw_prefetch_l2":true,"prefetch_distance":8}}`))
	f.Add([]byte(`{"platform":"SKL"}`))
	f.Add([]byte(`{"platform":"SKL","workload":"ISx","max_steps":4,"accept_threshold":1.05,"user_intuition":true}`))
	f.Add([]byte(`{"platform":"SKL","measurement":{"bandwidth_gbs":1e999}}`))
	f.Add([]byte(`{"platform":"SKL","workload":"ISx"} trailing`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeAnalyzeRequest(data); err == nil {
			if r == nil {
				t.Fatal("analyze: nil request with nil error")
			}
			if r.Platform == "" {
				t.Fatal("analyze: accepted empty platform")
			}
			if (r.Workload == "") == (r.Measurement == nil) {
				t.Fatalf("analyze: accepted ambiguous source: %+v", r)
			}
			if m := r.Measurement; m != nil {
				if math.IsNaN(m.BandwidthGBs) || math.IsInf(m.BandwidthGBs, 0) || m.BandwidthGBs < 0 {
					t.Fatalf("analyze: accepted bandwidth %v", m.BandwidthGBs)
				}
				meas := m.Measurement()
				if meas.ThreadsPerCore < 1 {
					t.Fatalf("analyze: measurement defaulted to %d threads/core", meas.ThreadsPerCore)
				}
			} else {
				if r.Scale != 0 && (r.Scale <= 0 || r.Scale > 1 || math.IsNaN(r.Scale)) {
					t.Fatalf("analyze: accepted scale %v", r.Scale)
				}
				if r.ThreadsPerCore < 0 || r.ThreadsPerCore > 8 {
					t.Fatalf("analyze: accepted threads_per_core %d", r.ThreadsPerCore)
				}
			}
		}
		if r, err := DecodeCharacterizeRequest(data); err == nil {
			if r == nil || r.Platform == "" {
				t.Fatalf("characterize: accepted %+v", r)
			}
		}
		if r, err := DecodeTuneRequest(data); err == nil {
			if r == nil || r.Platform == "" || r.Workload == "" {
				t.Fatalf("tune: accepted %+v", r)
			}
			if r.Scale != 0 && (r.Scale <= 0 || r.Scale > 1 || math.IsNaN(r.Scale)) {
				t.Fatalf("tune: accepted scale %v", r.Scale)
			}
		}
	})
}

// FuzzNormalizeTableID checks that arbitrary path segments either map to one
// of the six canonical table IDs or are rejected.
func FuzzNormalizeTableID(f *testing.F) {
	canonical := map[string]bool{"IV": true, "V": true, "VI": true, "VII": true, "VIII": true, "IX": true}
	for id := range canonical {
		f.Add(id)
	}
	f.Add("T4")
	f.Add("t9")
	f.Add(" iv ")
	f.Add("X")
	f.Add("")
	f.Fuzz(func(t *testing.T, id string) {
		got, err := NormalizeTableID(id)
		if err != nil {
			return
		}
		if !canonical[got] {
			t.Fatalf("NormalizeTableID(%q) = %q, not a canonical table", id, got)
		}
	})
}
