// Affinity keys: the canonical identity of the cacheable work a /v1/*
// request will do on whichever backend serves it. A scale-out tier hashes
// these onto its backend ring so identical analyses revisit the backend
// whose caches (runner LRU, profile cache) already hold the answer. The
// derivations deliberately mirror the handlers' own default resolution
// (threads 1, scale 0.1) — two requests get the same key exactly when the
// serving backend would do the same cached work for both.
package service

import (
	"fmt"

	"littleslaw/internal/platform"
	"littleslaw/internal/runner"
	"littleslaw/internal/workloads"
)

// AffinityKey returns the request's routing identity. ok is false when the
// request has no stable cacheable identity (unknown platform/workload,
// uncacheable simulation config): route those by load instead — the backend
// will produce the proper error or run uncached work either way.
func (r *AnalyzeRequest) AffinityKey() (key string, ok bool) {
	p, err := platform.ByName(r.Platform)
	if err != nil {
		return "", false
	}
	if r.Measurement != nil {
		// No simulation: the only reusable state is the per-platform
		// bandwidth→latency profile.
		return "platform|" + p.Name, true
	}
	w, found := workloads.ByName(r.Workload)
	if !found {
		return "", false
	}
	w = w.WithVariant(r.Variant.Variant())
	threads := r.ThreadsPerCore
	if threads == 0 {
		threads = 1
	}
	if threads > p.SMTWays {
		return "", false
	}
	scale := r.Scale
	if scale == 0 {
		scale = 0.1
	}
	k, cacheable, err := runner.KeyOf(w.Config(p, threads, scale))
	if err != nil || !cacheable {
		return "", false
	}
	return "run|" + k.String(), true
}

// AffinityKey routes a characterization to the backend holding (or
// building) that platform's profile.
func (r *CharacterizeRequest) AffinityKey() (key string, ok bool) {
	p, err := platform.ByName(r.Platform)
	if err != nil {
		return "", false
	}
	return "platform|" + p.Name, true
}

// AffinityKey groups a tuning session's probe simulations: re-tuning the
// same (platform, workload, scale) revisits the backend whose runner cache
// holds the session's probes.
func (r *TuneRequest) AffinityKey() (key string, ok bool) {
	p, err := platform.ByName(r.Platform)
	if err != nil {
		return "", false
	}
	if _, found := workloads.ByName(r.Workload); !found {
		return "", false
	}
	scale := r.Scale
	if scale == 0 {
		scale = 0.1
	}
	return fmt.Sprintf("tune|%s|%s|%g", p.Name, r.Workload, scale), true
}

// AffinityKey pins a batch to its first item's identity: a well-formed
// batch shares platform/workload context across items, and one backend's
// runner cache then serves the whole set.
func (r *BatchAnalyzeRequest) AffinityKey() (key string, ok bool) {
	if len(r.Requests) == 0 {
		return "", false
	}
	return r.Requests[0].AffinityKey()
}

// TableAffinityKey is the routing identity of GET /v1/tables/{id}?scale=:
// per-(table, scale), matching the server's table cache key.
func TableAffinityKey(id string, scale float64) (key string, ok bool) {
	norm, err := NormalizeTableID(id)
	if err != nil {
		return "", false
	}
	return fmt.Sprintf("table|%s|%g", norm, scale), true
}

// StreamAffinityKey is the routing identity of a named watch stream; every
// subscriber must reach the one backend hosting the stream's broker.
func StreamAffinityKey(name string) string { return "stream|" + name }
