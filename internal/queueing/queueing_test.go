package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"littleslaw/internal/events"
)

func TestConcurrencyIdentity(t *testing.T) {
	// 1e9 requests/s each resident 100ns -> 100 in flight.
	if got := Concurrency(1e9, 100e-9); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Concurrency = %v, want 100", got)
	}
}

func TestEquation2PaperValues(t *testing.T) {
	// The paper's Table IV..IX rows, recomputed: n = BW × lat / cls. These
	// are whole-node values; the tables divide by active cores.
	cases := []struct {
		name    string
		bwGBs   float64
		latNs   float64
		cls     int
		cores   int
		wantOcc float64
	}{
		{"ISx/SKL base", 106.9, 145, 64, 24, 10.1},
		{"ISx/KNL base", 233, 180, 64, 64, 10.23},
		{"ISx/A64FX base", 649, 188, 256, 48, 9.92},
		{"HPCG/SKL base", 109.9, 171, 64, 24, 12.6},
		{"CoMD/SKL base", 3.19, 82, 64, 24, 0.17},
		{"PENNANT/KNL +vect", 130.6, 187, 64, 64, 5.96},
		{"MiniGhost/A64FX base", 575, 179, 256, 48, 8.38},
		{"SNAP/KNL base", 122.9, 167, 64, 64, 5.0},
	}
	for _, c := range cases {
		n := ConcurrencyFromBandwidth(c.bwGBs*1e9, c.latNs*1e-9, c.cls) / float64(c.cores)
		// Tolerance covers the paper's own rounding of the printed BW and
		// latency inputs (e.g. HPCG/SKL computes to 12.23 vs printed 12.6).
		if math.Abs(n-c.wantOcc) > 0.04*c.wantOcc+0.1 {
			t.Errorf("%s: per-core occupancy = %.2f, want %.2f", c.name, n, c.wantOcc)
		}
	}
}

func TestBandwidthFromConcurrencyInverse(t *testing.T) {
	f := func(nRaw, latRaw uint16) bool {
		n := 0.1 + float64(nRaw%1000)/10
		lat := 10e-9 + float64(latRaw%500)*1e-9
		bw := BandwidthFromConcurrency(n, lat, 64)
		back := ConcurrencyFromBandwidth(bw, lat, 64)
		return math.Abs(back-n) < 1e-6*n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyStatMean(t *testing.T) {
	var o OccupancyStat
	o.Reset(0)
	o.Arrive(0)        // occ 1 over [0,100)
	o.Arrive(100)      // occ 2 over [100,200)
	o.Depart(200, 200) // occ 1 over [200,400)
	o.Depart(400, 300) // occ 0 afterwards
	if got := o.Mean(400); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("Mean = %v, want 1.25", got)
	}
	if o.Peak() != 2 {
		t.Fatalf("Peak = %d, want 2", o.Peak())
	}
	if o.Current() != 0 {
		t.Fatalf("Current = %d, want 0", o.Current())
	}
	if got := o.MeanResidence(); math.Abs(got-250) > 1e-12 {
		t.Fatalf("MeanResidence = %v, want 250", got)
	}
}

func TestOccupancyDepartEmptyPanics(t *testing.T) {
	var o OccupancyStat
	o.Reset(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Depart on empty queue did not panic")
		}
	}()
	o.Depart(10, 10)
}

func TestOccupancyBackwardsTimePanics(t *testing.T) {
	var o OccupancyStat
	o.Reset(100)
	o.Arrive(200)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	o.Arrive(50)
}

// Property: for a randomly generated arrival/departure schedule that is
// fully drained, the time-weighted occupancy equals arrival-rate × mean
// residence (Little's Law holds exactly on the closed window).
func TestLittleLawHoldsOnSimulatedQueue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var o OccupancyStat
		o.Reset(0)
		type item struct{ in, out events.Time }
		n := 5 + rng.Intn(50)
		items := make([]item, n)
		tcur := events.Time(0)
		for i := range items {
			tcur += events.Time(rng.Intn(50))
			items[i].in = tcur
			items[i].out = tcur + events.Time(1+rng.Intn(500))
		}
		// Merge arrivals and departures into one ordered schedule.
		type ev struct {
			at      events.Time
			arrive  bool
			resides events.Duration
		}
		var evs []ev
		for _, it := range items {
			evs = append(evs, ev{it.in, true, 0})
			evs = append(evs, ev{it.out, false, it.out - it.in})
		}
		// Insertion sort by time with arrivals first at ties.
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0 && (evs[j].at < evs[j-1].at || (evs[j].at == evs[j-1].at && evs[j].arrive && !evs[j-1].arrive)); j-- {
				evs[j], evs[j-1] = evs[j-1], evs[j]
			}
		}
		var end events.Time
		for _, e := range evs {
			if e.arrive {
				o.Arrive(e.at)
			} else {
				o.Depart(e.at, e.resides)
			}
			end = e.at
		}
		return o.LittleResidual(end) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(nil); err == nil {
		t.Fatal("NewCurve(nil) succeeded")
	}
	if _, err := NewCurve([]CurvePoint{{BandwidthGBs: 1, LatencyNs: -5}}); err == nil {
		t.Fatal("negative latency accepted")
	}
	if _, err := NewCurve([]CurvePoint{{BandwidthGBs: -1, LatencyNs: 5}}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if _, err := NewCurve([]CurvePoint{{BandwidthGBs: 1, LatencyNs: math.NaN()}}); err == nil {
		t.Fatal("NaN latency accepted")
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{BandwidthGBs: 10, LatencyNs: 80},
		{BandwidthGBs: 100, LatencyNs: 140},
		{BandwidthGBs: 110, LatencyNs: 180},
	})
	if got := c.LatencyAt(5); got != 80 {
		t.Fatalf("below range: %v, want 80 (idle)", got)
	}
	if got := c.LatencyAt(55); math.Abs(got-110) > 1e-9 {
		t.Fatalf("midpoint: %v, want 110", got)
	}
	if got := c.LatencyAt(105); math.Abs(got-160) > 1e-9 {
		t.Fatalf("second segment midpoint: %v, want 160", got)
	}
	// Beyond the last sample the curve clamps to the last latency (the
	// characterization cannot observe past the achievable peak).
	if got := c.LatencyAt(120); got != 180 {
		t.Fatalf("beyond-peak lookup: %v, want clamp to 180", got)
	}
	if got := c.LatencyAt(1e6); got != 180 {
		t.Fatalf("clamp failed far beyond peak: %v", got)
	}
	if c.IdleLatencyNs() != 80 || c.MaxBandwidthGBs() != 110 {
		t.Fatalf("idle/max = %v/%v", c.IdleLatencyNs(), c.MaxBandwidthGBs())
	}
}

func TestCurveMonotoneRepair(t *testing.T) {
	// Jittered input with a dip must come out non-decreasing.
	c := MustCurve([]CurvePoint{
		{BandwidthGBs: 10, LatencyNs: 100},
		{BandwidthGBs: 20, LatencyNs: 90}, // dip: repaired up to 100
		{BandwidthGBs: 30, LatencyNs: 120},
	})
	prev := 0.0
	for bw := 0.0; bw < 40; bw += 0.5 {
		lat := c.LatencyAt(bw)
		if lat < prev {
			t.Fatalf("latency decreased at bw=%v: %v < %v", bw, lat, prev)
		}
		prev = lat
	}
}

func TestCurveDuplicateBandwidthAveraged(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{BandwidthGBs: 10, LatencyNs: 100},
		{BandwidthGBs: 10, LatencyNs: 200},
	})
	if got := c.LatencyAt(10); math.Abs(got-150) > 1e-9 {
		t.Fatalf("duplicate average = %v, want 150", got)
	}
}

// Property: interpolated latency is always within the sampled latency range
// extended by the clamped extrapolation, and is monotone in bandwidth.
func TestCurveMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		pts := make([]CurvePoint, n)
		bw := 1.0
		for i := range pts {
			bw += rng.Float64() * 50
			pts[i] = CurvePoint{BandwidthGBs: bw, LatencyNs: 50 + rng.Float64()*300}
		}
		c := MustCurve(pts)
		prev := -1.0
		for q := 0.0; q < bw*1.5; q += bw / 37 {
			lat := c.LatencyAt(q)
			if lat < prev || math.IsNaN(lat) {
				return false
			}
			prev = lat
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveEquilibrium(t *testing.T) {
	// Flat curve: closed form bw = n*cls/lat exactly.
	flat := MustCurve([]CurvePoint{{BandwidthGBs: 1, LatencyNs: 100}, {BandwidthGBs: 200, LatencyNs: 100}})
	bw, lat := flat.SolveEquilibrium(10, 64)
	want := 10 * 64.0 / 100 // GB/s, since ns and GB/s cancel 1e9
	if math.Abs(bw-want) > 1e-6 || lat != 100 {
		t.Fatalf("flat equilibrium = (%v, %v), want (%v, 100)", bw, lat, want)
	}
	// Rising curve: equilibrium must satisfy bw = n*cls/lat(bw).
	rising := MustCurve([]CurvePoint{
		{BandwidthGBs: 10, LatencyNs: 80},
		{BandwidthGBs: 100, LatencyNs: 160},
		{BandwidthGBs: 112, LatencyNs: 400},
	})
	bw, lat = rising.SolveEquilibrium(240, 64)
	if resid := math.Abs(bw - 240*64/lat); resid > 1e-6*bw {
		t.Fatalf("equilibrium residual %v at bw=%v lat=%v", resid, bw, lat)
	}
	// Zero concurrency.
	bw, lat = rising.SolveEquilibrium(0, 64)
	if bw != 0 || lat != 80 {
		t.Fatalf("zero-n equilibrium = (%v,%v), want (0, idle)", bw, lat)
	}
}

// Property: the equilibrium solver converges to a self-consistent point for
// arbitrary monotone curves and concurrency levels.
func TestSolveEquilibriumProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]CurvePoint, 2+rng.Intn(10))
		bw := 1.0
		for i := range pts {
			bw += 1 + rng.Float64()*100
			pts[i] = CurvePoint{BandwidthGBs: bw, LatencyNs: 40 + rng.Float64()*400}
		}
		c := MustCurve(pts)
		n := 0.01 + float64(nRaw%2000)
		gotBW, gotLat := c.SolveEquilibrium(n, 64)
		if gotBW <= 0 || math.IsNaN(gotBW) {
			return false
		}
		return math.Abs(gotBW-n*64/gotLat) < 1e-4*gotBW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMM1Wait(t *testing.T) {
	if got := MM1Wait(10, 0.5); math.Abs(got-10) > 1e-12 {
		t.Fatalf("MM1Wait(10, .5) = %v, want 10", got)
	}
	if got := MM1Wait(10, 1.0); !math.IsInf(got, 1) {
		t.Fatalf("MM1Wait at saturation = %v, want +Inf", got)
	}
}

func TestMDCWaitApprox(t *testing.T) {
	// More servers -> less waiting at equal utilization.
	w1 := MDCWaitApprox(10, 0.8, 1)
	w8 := MDCWaitApprox(10, 0.8, 8)
	if w8 >= w1 {
		t.Fatalf("M/D/8 wait %v >= M/D/1 wait %v", w8, w1)
	}
	if got := MDCWaitApprox(10, 1.0, 4); !math.IsInf(got, 1) {
		t.Fatalf("saturated MDC = %v, want +Inf", got)
	}
}

func TestOccupancyAt(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{BandwidthGBs: 1, LatencyNs: 100}, {BandwidthGBs: 100, LatencyNs: 200},
	})
	// n_avg = BW × lat(BW) / line: 64 GB/s at the interpolated latency.
	bw := 64.0
	want := ConcurrencyFromBandwidth(bw*1e9, c.LatencyAt(bw)*1e-9, 64)
	if got := c.OccupancyAt(bw, 64); math.Abs(got-want) > 1e-12 {
		t.Fatalf("OccupancyAt = %v, want %v", got, want)
	}
	// Sanity: 100 GB/s × 200 ns / 64 B = 312.5 lines in flight.
	if got := c.OccupancyAt(100, 64); math.Abs(got-312.5) > 1e-9 {
		t.Fatalf("OccupancyAt(100) = %v, want 312.5", got)
	}
}
