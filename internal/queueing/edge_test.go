package queueing

import (
	"math"
	"testing"
)

// TestNewCurveRejectsBadPoints covers the hostile inputs a curve can be
// built from when profiles arrive over the wire rather than from X-Mem.
func TestNewCurveRejectsBadPoints(t *testing.T) {
	cases := []struct {
		name string
		pts  []CurvePoint
	}{
		{"empty", nil},
		{"negative bandwidth", []CurvePoint{{BandwidthGBs: -1, LatencyNs: 80}}},
		{"nan bandwidth", []CurvePoint{{BandwidthGBs: math.NaN(), LatencyNs: 80}}},
		{"inf bandwidth", []CurvePoint{{BandwidthGBs: math.Inf(1), LatencyNs: 80}}},
		{"zero latency", []CurvePoint{{BandwidthGBs: 1, LatencyNs: 0}}},
		{"negative latency", []CurvePoint{{BandwidthGBs: 1, LatencyNs: -3}}},
		{"nan latency", []CurvePoint{{BandwidthGBs: 1, LatencyNs: math.NaN()}}},
		{"inf latency", []CurvePoint{{BandwidthGBs: 1, LatencyNs: math.Inf(1)}}},
		{"bad point among good", []CurvePoint{
			{BandwidthGBs: 0, LatencyNs: 80},
			{BandwidthGBs: math.NaN(), LatencyNs: 90},
			{BandwidthGBs: 10, LatencyNs: 100},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if c, err := NewCurve(tc.pts); err == nil {
				t.Fatalf("NewCurve accepted %v: %+v", tc.pts, c.Points())
			}
		})
	}
}

// TestSinglePointCurve: a one-sample profile must behave as a flat curve.
func TestSinglePointCurve(t *testing.T) {
	c := MustCurve([]CurvePoint{{BandwidthGBs: 10, LatencyNs: 120}})
	for _, bw := range []float64{0, 5, 10, 1e6, math.Inf(1)} {
		if got := c.LatencyAt(bw); got != 120 {
			t.Fatalf("LatencyAt(%v) = %v, want 120", bw, got)
		}
	}
	if c.IdleLatencyNs() != 120 || c.MaxBandwidthGBs() != 10 {
		t.Fatalf("idle/max = %v/%v", c.IdleLatencyNs(), c.MaxBandwidthGBs())
	}
	bw, lat := c.SolveEquilibrium(4, 64)
	// 4 lines × 64 B / 120 ns = 2.133 GB/s, below the 10 GB/s peak.
	if want := 4 * 64 / 120.0; math.Abs(bw-want) > 1e-6 || lat != 120 {
		t.Fatalf("SolveEquilibrium = %v GB/s @ %v ns, want %v @ 120", bw, lat, want)
	}
}

// TestZeroBandwidthCurve: a curve whose first sample sits at 0 GB/s is
// valid (the idle-latency anchor) and queries at 0 return it.
func TestZeroBandwidthCurve(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{BandwidthGBs: 0, LatencyNs: 81},
		{BandwidthGBs: 100, LatencyNs: 200},
	})
	if got := c.LatencyAt(0); got != 81 {
		t.Fatalf("LatencyAt(0) = %v, want 81", got)
	}
	if got := c.LatencyAt(50); math.Abs(got-140.5) > 1e-9 {
		t.Fatalf("LatencyAt(50) = %v, want 140.5", got)
	}
	if got := c.LatencyAt(-5); got != 81 {
		t.Fatalf("LatencyAt(-5) = %v, want idle 81", got)
	}
}

// TestLatencyAtNaN: a NaN query must propagate, not panic (sort.Search
// used to run off the end of the sample slice).
func TestLatencyAtNaN(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{BandwidthGBs: 0, LatencyNs: 81},
		{BandwidthGBs: 50, LatencyNs: 120},
		{BandwidthGBs: 100, LatencyNs: 200},
	})
	if got := c.LatencyAt(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("LatencyAt(NaN) = %v, want NaN", got)
	}
}

// TestSolveEquilibriumDegenerateN: non-positive and NaN concurrency idles.
func TestSolveEquilibriumDegenerateN(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{BandwidthGBs: 0, LatencyNs: 81},
		{BandwidthGBs: 100, LatencyNs: 200},
	})
	for _, n := range []float64{0, -3, math.NaN()} {
		bw, lat := c.SolveEquilibrium(n, 64)
		if bw != 0 || lat != 81 {
			t.Fatalf("SolveEquilibrium(%v) = %v GB/s @ %v ns, want 0 @ 81", n, bw, lat)
		}
	}
}

// TestDuplicateBandwidthsAveraged documents the jitter-smoothing contract.
func TestDuplicateBandwidthsAveraged(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{BandwidthGBs: 10, LatencyNs: 100},
		{BandwidthGBs: 10, LatencyNs: 110},
		{BandwidthGBs: 20, LatencyNs: 130},
	})
	pts := c.Points()
	if len(pts) != 2 || pts[0].LatencyNs != 105 {
		t.Fatalf("points = %+v, want first merged to 105 ns", pts)
	}
}

// TestNonMonotoneLatencyClamped: latency dips are raised to the running max.
func TestNonMonotoneLatencyClamped(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{BandwidthGBs: 0, LatencyNs: 100},
		{BandwidthGBs: 10, LatencyNs: 90}, // jitter dip
		{BandwidthGBs: 20, LatencyNs: 150},
	})
	pts := c.Points()
	if pts[1].LatencyNs != 100 {
		t.Fatalf("dip not clamped: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].LatencyNs < pts[i-1].LatencyNs {
			t.Fatalf("latency not monotone: %+v", pts)
		}
	}
}
