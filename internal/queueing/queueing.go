// Package queueing provides the queueing-theory primitives behind the
// Little's-Law MLP metric: the law itself, time-weighted occupancy
// statistics for simulated queues, bandwidth→latency curves, and a
// fixed-point solver for the closed core⇄memory system.
package queueing

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"littleslaw/internal/events"
)

// Concurrency applies Little's Law: the long-term average number of items
// in a stationary system equals the arrival rate multiplied by the mean
// residence time.
//
// ratePerSec is in items per second and residence in seconds.
func Concurrency(ratePerSec, residenceSec float64) float64 {
	return ratePerSec * residenceSec
}

// ConcurrencyFromBandwidth is Equation 2 of the paper: the average number of
// outstanding cache-line requests implied by an observed bandwidth
// (bytes/second), an observed loaded latency (seconds) and a line size.
func ConcurrencyFromBandwidth(bandwidthBps, latencySec float64, lineSize int) float64 {
	if lineSize <= 0 {
		panic("queueing: line size must be positive")
	}
	return bandwidthBps * latencySec / float64(lineSize)
}

// BandwidthFromConcurrency inverts Equation 2: the bandwidth sustained by
// n outstanding line requests each resident for latencySec.
func BandwidthFromConcurrency(n, latencySec float64, lineSize int) float64 {
	if latencySec <= 0 {
		panic("queueing: latency must be positive")
	}
	return n * float64(lineSize) / latencySec
}

// OccupancyStat accumulates the time-weighted occupancy of a queue so that
// its long-run average (the left side of Little's Law) can be reported
// exactly rather than sampled.
type OccupancyStat struct {
	current   int
	peak      int
	integral  float64 // occupancy × picoseconds
	last      events.Time
	start     events.Time
	started   bool
	arrivals  uint64
	totalWait float64 // summed residence in picoseconds, for Little cross-check
}

// Reset clears the statistic and restarts the observation window at now.
func (o *OccupancyStat) Reset(now events.Time) {
	cur := o.current
	*o = OccupancyStat{current: cur, peak: cur, last: now, start: now, started: true}
}

// Set forces the current occupancy (used when attaching to a queue that is
// already partially full).
func (o *OccupancyStat) Set(now events.Time, n int) {
	o.account(now)
	o.current = n
	if n > o.peak {
		o.peak = n
	}
}

// Arrive records one item entering the queue at time now.
func (o *OccupancyStat) Arrive(now events.Time) {
	o.account(now)
	o.current++
	o.arrivals++
	if o.current > o.peak {
		o.peak = o.current
	}
}

// Depart records one item leaving the queue at time now after the given
// residence time.
func (o *OccupancyStat) Depart(now events.Time, residence events.Duration) {
	o.account(now)
	if o.current == 0 {
		panic("queueing: departure from an empty queue")
	}
	o.current--
	o.totalWait += float64(residence)
}

func (o *OccupancyStat) account(now events.Time) {
	if !o.started {
		o.start, o.last, o.started = now, now, true
		return
	}
	if now < o.last {
		panic("queueing: time moved backwards")
	}
	o.integral += float64(o.current) * float64(now-o.last)
	o.last = now
}

// Current returns the instantaneous occupancy.
func (o *OccupancyStat) Current() int { return o.current }

// Peak returns the maximum occupancy observed.
func (o *OccupancyStat) Peak() int { return o.peak }

// Arrivals returns the number of Arrive calls since the last Reset.
func (o *OccupancyStat) Arrivals() uint64 { return o.arrivals }

// Mean returns the time-weighted mean occupancy over [start, now].
func (o *OccupancyStat) Mean(now events.Time) float64 {
	if !o.started || now <= o.start {
		return float64(o.current)
	}
	integral := o.integral + float64(o.current)*float64(now-o.last)
	return integral / float64(now-o.start)
}

// MeanResidence returns the average residence (in picoseconds) of departed
// items, or 0 if nothing has departed.
func (o *OccupancyStat) MeanResidence() float64 {
	departed := float64(o.arrivals) - float64(o.current)
	if departed <= 0 {
		return 0
	}
	return o.totalWait / departed
}

// LittleResidual reports the relative difference between the time-weighted
// mean occupancy and the Little's-Law prediction (arrival rate × mean
// residence) over the observation window — a consistency check used by the
// property tests. Returns 0 when the window is degenerate.
func (o *OccupancyStat) LittleResidual(now events.Time) float64 {
	window := float64(now - o.start)
	if window <= 0 || o.arrivals == 0 {
		return 0
	}
	mean := o.Mean(now)
	rate := float64(o.arrivals) / window
	pred := rate * o.MeanResidence()
	if mean == 0 && pred == 0 {
		return 0
	}
	denom := math.Max(mean, pred)
	return math.Abs(mean-pred) / denom
}

// CurvePoint is one sample of a bandwidth→latency profile.
type CurvePoint struct {
	BandwidthGBs float64 // sustained bandwidth in GB/s (1e9 bytes/s)
	LatencyNs    float64 // mean loaded latency in nanoseconds
}

// Curve is a monotone bandwidth→latency profile, the once-per-platform
// artifact produced by the X-Mem-style characterization run. Lookups
// interpolate linearly between samples; queries beyond the last sample
// extrapolate along the final segment slope (saturation region).
type Curve struct {
	points []CurvePoint
}

// ErrEmptyCurve is returned when building or querying a curve with no points.
var ErrEmptyCurve = errors.New("queueing: empty bandwidth-latency curve")

// NewCurve builds a curve from samples. Samples are sorted by bandwidth;
// duplicate bandwidths are averaged; latency is made non-decreasing (a
// physical requirement — added load cannot reduce loaded latency) by taking
// a running maximum, which also smooths measurement jitter.
func NewCurve(pts []CurvePoint) (*Curve, error) {
	if len(pts) == 0 {
		return nil, ErrEmptyCurve
	}
	cp := make([]CurvePoint, len(pts))
	copy(cp, pts)
	sort.Slice(cp, func(i, j int) bool { return cp[i].BandwidthGBs < cp[j].BandwidthGBs })
	out := cp[:0]
	for _, p := range cp {
		// !(x >= 0) rather than x < 0 so NaN bandwidths are rejected too.
		if !(p.BandwidthGBs >= 0) || math.IsInf(p.BandwidthGBs, 0) ||
			!(p.LatencyNs > 0) || math.IsInf(p.LatencyNs, 0) {
			return nil, fmt.Errorf("queueing: invalid curve point %+v", p)
		}
		if n := len(out); n > 0 && out[n-1].BandwidthGBs == p.BandwidthGBs {
			out[n-1].LatencyNs = (out[n-1].LatencyNs + p.LatencyNs) / 2
			continue
		}
		out = append(out, p)
	}
	for i := 1; i < len(out); i++ {
		if out[i].LatencyNs < out[i-1].LatencyNs {
			out[i].LatencyNs = out[i-1].LatencyNs
		}
	}
	return &Curve{points: out}, nil
}

// MustCurve is NewCurve that panics on error, for static tables.
func MustCurve(pts []CurvePoint) *Curve {
	c, err := NewCurve(pts)
	if err != nil {
		panic(err)
	}
	return c
}

// Points returns a copy of the curve samples.
func (c *Curve) Points() []CurvePoint {
	out := make([]CurvePoint, len(c.points))
	copy(out, c.points)
	return out
}

// IdleLatencyNs returns the latency of the lowest-bandwidth sample — the
// closest observable stand-in for the unloaded latency.
func (c *Curve) IdleLatencyNs() float64 { return c.points[0].LatencyNs }

// MaxBandwidthGBs returns the highest bandwidth at which the curve was
// sampled (the achievable, not theoretical, peak).
func (c *Curve) MaxBandwidthGBs() float64 { return c.points[len(c.points)-1].BandwidthGBs }

// LatencyAt returns the interpolated loaded latency (ns) at the given
// bandwidth (GB/s). Below the first sample it returns the idle latency;
// at or beyond the last sample it returns the last sampled latency — the
// characterization cannot observe past the achievable peak, and the
// near-vertical final segment would otherwise explode Equation 2 for
// routines running right at that peak. A NaN query propagates as NaN
// rather than picking an arbitrary sample.
func (c *Curve) LatencyAt(bwGBs float64) float64 {
	pts := c.points
	if math.IsNaN(bwGBs) {
		return math.NaN()
	}
	if bwGBs <= pts[0].BandwidthGBs {
		return pts[0].LatencyNs
	}
	last := pts[len(pts)-1]
	if bwGBs >= last.BandwidthGBs {
		return last.LatencyNs
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].BandwidthGBs >= bwGBs })
	lo, hi := pts[i-1], pts[i]
	f := (bwGBs - lo.BandwidthGBs) / (hi.BandwidthGBs - lo.BandwidthGBs)
	return lo.LatencyNs + f*(hi.LatencyNs-lo.LatencyNs)
}

// OccupancyAt returns the Equation-2 concurrency implied by operating the
// memory at bwGBs against this curve: n_avg = BW × lat(BW) / lineBytes.
// It is the per-window computation of the streaming monitor and the node
// total behind core.Analyze (which divides it over the active cores).
func (c *Curve) OccupancyAt(bwGBs float64, lineBytes int) float64 {
	return ConcurrencyFromBandwidth(bwGBs*1e9, c.LatencyAt(bwGBs)*1e-9, lineBytes)
}

// SolveEquilibrium finds the self-consistent operating point of a closed
// system in which n outstanding line requests of lineSize bytes circulate
// against a memory whose loaded latency follows the curve:
//
//	BW = n × lineSize / lat(BW)
//
// It returns the equilibrium bandwidth (GB/s) and latency (ns). Because
// lat(BW) is non-decreasing, the residual n×lineSize/lat(BW) − BW is
// strictly decreasing in BW, so bisection always converges.
func (c *Curve) SolveEquilibrium(n float64, lineSize int) (bwGBs, latNs float64) {
	if !(n > 0) { // n ≤ 0 or NaN: nothing in flight, the memory idles
		return 0, c.IdleLatencyNs()
	}
	demand := func(bw float64) float64 { return n * float64(lineSize) / c.LatencyAt(bw) }
	lo, hi := 0.0, demand(0) // at bw=0 latency is idle, so demand(0) is the supremum
	for i := 0; i < 200 && hi-lo > 1e-10*math.Max(1, hi); i++ {
		mid := 0.5 * (lo + hi)
		if demand(mid) > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	bw := 0.5 * (lo + hi)
	return bw, c.LatencyAt(bw)
}

// MM1Wait returns the expected M/M/1 waiting time (same units as service)
// at the given utilization. Utilization ≥ 1 returns +Inf. Used by the
// analytic model and in tests as a sanity reference.
func MM1Wait(service, utilization float64) float64 {
	if utilization >= 1 {
		return math.Inf(1)
	}
	if utilization < 0 {
		panic("queueing: negative utilization")
	}
	return service * utilization / (1 - utilization)
}

// MDCWaitApprox returns an approximate M/D/c waiting time using the
// Allen–Cunneen approximation with zero service-time variability.
func MDCWaitApprox(service, utilization float64, servers int) float64 {
	if servers <= 0 {
		panic("queueing: servers must be positive")
	}
	if utilization >= 1 {
		return math.Inf(1)
	}
	// Allen–Cunneen: Wq ≈ (C²a+C²s)/2 × ρ^(√(2(c+1)))/ (c(1-ρ)) × service.
	// Deterministic service: C²s = 0; Poisson arrivals: C²a = 1.
	c := float64(servers)
	rho := utilization
	return 0.5 * math.Pow(rho, math.Sqrt(2*(c+1))) / (c * (1 - rho)) * service
}
