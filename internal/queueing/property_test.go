package queueing

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"littleslaw/internal/events"
)

// The property tests pin the package's algebra on randomized workloads
// instead of hand-picked examples: Little's Law is an *identity* on a
// drained observation window, the Equation-2 occupancy is monotone in
// bandwidth because the curve is monotone, and the closed-system solver
// must land on a genuine fixed point. Seeds are fixed so a failure replays.

// TestLittleIdentityOnDrainedWindow: for any workload in which every
// arrival departs inside the observation window, the time-weighted mean
// occupancy equals arrivals/window × mean residence exactly — Little's Law
// is not an approximation there, it is accounting. The residual must sit
// at floating-point noise for arbitrary random workloads.
func TestLittleIdentityOnDrainedWindow(t *testing.T) {
	type span struct{ arrive, depart events.Time }
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		spans := make([]span, n)
		for i := range spans {
			a := events.Time(rng.Int63n(1_000_000))
			d := a + 1 + events.Time(rng.Int63n(1_000_000))
			spans[i] = span{a, d}
		}
		// Realize the event sequence chronologically.
		type ev struct {
			at      events.Time
			arrive  bool
			residno events.Duration
		}
		var evs []ev
		for _, s := range spans {
			evs = append(evs, ev{at: s.arrive, arrive: true})
			evs = append(evs, ev{at: s.depart, residno: events.Duration(s.depart - s.arrive)})
		}
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].at != evs[j].at {
				return evs[i].at < evs[j].at
			}
			// Arrivals before departures at the same instant so occupancy
			// never goes negative when a departure shares a timestamp.
			return evs[i].arrive && !evs[j].arrive
		})
		var o OccupancyStat
		o.Reset(0)
		for _, e := range evs {
			if e.arrive {
				o.Arrive(e.at)
			} else {
				o.Depart(e.at, e.residno)
			}
		}
		end := evs[len(evs)-1].at + 1
		if o.Current() != 0 {
			t.Fatalf("seed %d: %d items still resident after all departures", seed, o.Current())
		}
		if res := o.LittleResidual(end); res > 1e-9 {
			t.Fatalf("seed %d: drained window has Little residual %g, want ~0 (n=%d)", seed, res, n)
		}
	}
}

// TestLittleResidualDetectsBrokenAccounting: the residual is a real check,
// not a tautology — lying about residence times must show up.
func TestLittleResidualDetectsBrokenAccounting(t *testing.T) {
	var o OccupancyStat
	o.Reset(0)
	o.Arrive(0)
	o.Depart(1000, 2000) // claims twice its actual residence
	if res := o.LittleResidual(1000); res < 0.4 {
		t.Fatalf("inflated residence gave residual %g, want ~0.5", res)
	}
}

// TestOccupancyAtMonotone: n_avg = BW × lat(BW) / line is the product of an
// increasing and a non-decreasing non-negative function, so for every valid
// curve — including random ones with duplicate bandwidths and jittered
// latencies that NewCurve must repair — occupancy is non-decreasing in
// bandwidth. This is the property the monitor's "more load never reads as
// less pressure" behavior rests on.
func TestOccupancyAtMonotone(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		pts := make([]CurvePoint, n)
		for i := range pts {
			pts[i] = CurvePoint{
				BandwidthGBs: rng.Float64() * 200,
				LatencyNs:    10 + rng.Float64()*500,
			}
		}
		c, err := NewCurve(pts)
		if err != nil {
			t.Fatalf("seed %d: NewCurve: %v", seed, err)
		}
		prevBW, prevN := 0.0, 0.0
		for q := 0; q < 200; q++ {
			bw := prevBW + rng.Float64()*2
			got := c.OccupancyAt(bw, 64)
			if got < prevN-1e-12 {
				t.Fatalf("seed %d: occupancy fell from %g to %g as bandwidth rose from %g to %g",
					seed, prevN, got, prevBW, bw)
			}
			prevBW, prevN = bw, got
		}
	}
}

// TestCurveLatencyWithinSampledRange: interpolation and saturation clamping
// can never produce a latency outside the repaired samples' range.
func TestCurveLatencyWithinSampledRange(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]CurvePoint, 1+rng.Intn(12))
		for i := range pts {
			pts[i] = CurvePoint{BandwidthGBs: rng.Float64() * 100, LatencyNs: 1 + rng.Float64()*300}
		}
		c, err := NewCurve(pts)
		if err != nil {
			t.Fatal(err)
		}
		rep := c.Points()
		lo, hi := rep[0].LatencyNs, rep[len(rep)-1].LatencyNs
		for q := 0; q < 200; q++ {
			bw := rng.Float64() * 150 // deliberately past the sampled peak
			if lat := c.LatencyAt(bw); lat < lo || lat > hi {
				t.Fatalf("seed %d: LatencyAt(%g) = %g outside [%g, %g]", seed, bw, lat, lo, hi)
			}
		}
	}
}

// TestEquationTwoRoundTrip: ConcurrencyFromBandwidth and
// BandwidthFromConcurrency are exact inverses at any operating point.
func TestEquationTwoRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		bw := rng.Float64() * 400e9
		lat := (1 + rng.Float64()*500) * 1e-9
		n := ConcurrencyFromBandwidth(bw, lat, 64)
		back := BandwidthFromConcurrency(n, lat, 64)
		if diff := math.Abs(back - bw); diff > 1e-6*math.Max(1, bw) {
			t.Fatalf("round trip: %g GB/s → n=%g → %g GB/s", bw/1e9, n, back/1e9)
		}
	}
}

// TestSolveEquilibriumIsFixedPoint: the solver's operating point must
// satisfy its own equation, BW = n × line / lat(BW), for random curves and
// random populations — and more circulating requests can never yield less
// bandwidth.
func TestSolveEquilibriumIsFixedPoint(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]CurvePoint, 2+rng.Intn(10))
		for i := range pts {
			pts[i] = CurvePoint{BandwidthGBs: rng.Float64() * 150, LatencyNs: 20 + rng.Float64()*400}
		}
		c, err := NewCurve(pts)
		if err != nil {
			t.Fatal(err)
		}
		prevBW := 0.0
		for _, n := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64} {
			bw, lat := c.SolveEquilibrium(n, 64)
			demand := n * 64 / (lat * 1e-9) / 1e9 // GB/s implied by n at this latency
			if diff := math.Abs(demand - bw); diff > 1e-6*math.Max(1, bw) {
				t.Fatalf("seed %d n=%g: solver returned BW=%g but the equation wants %g", seed, n, bw, demand)
			}
			if bw < prevBW-1e-9 {
				t.Fatalf("seed %d: equilibrium bandwidth fell from %g to %g as n rose", seed, prevBW, bw)
			}
			prevBW = bw
		}
	}
}
