// Package tma implements a Top-Down Microarchitecture Analysis baseline in
// the style of Intel VTune's microarchitecture exploration (Yasin, ISPASS
// 2014) — the state of the art the paper critiques in §I. It attributes
// pipeline slots to Retiring / Front-end / Bad-speculation / Back-end,
// splits the back end into core-bound and memory-bound, and splits
// memory-bound into latency-bound and bandwidth-bound by thresholding the
// memory-controller occupancy — reproducing both the method and its
// documented failure modes:
//
//   - the latency/bandwidth split follows a self-defined occupancy
//     threshold and routinely mislabels loaded-latency problems;
//   - the derived "average memory latency" comes from demand-load
//     sampling, so prefetch-covered streams report near-cache latencies
//     even at full memory load (the paper's hpcg example, and the SNAP
//     9-cycle example);
//   - the breakdown is whole-program by default, hiding per-routine
//     behaviour (the paper's dim3_sweep example).
package tma

import (
	"fmt"

	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// Breakdown is a TMA-style report for one run.
type Breakdown struct {
	// Top level, fractions of pipeline slots (sum to 1).
	Retiring       float64
	FrontEnd       float64
	BadSpeculation float64
	BackEnd        float64

	// Back-end split, fractions of BackEnd.
	CoreBound   float64
	MemoryBound float64

	// Memory-bound split, fractions of MemoryBound, by the MC-occupancy
	// threshold rule.
	BandwidthBound float64
	LatencyBound   float64

	// AvgLoadLatencyCycles is the derived "average memory latency" metric
	// (demand-load sampling — misleading under prefetching).
	AvgLoadLatencyCycles float64

	// MCOccupancy is the memory-controller utilization the split keys on.
	MCOccupancy float64
}

// bandwidthThreshold is TMA's self-defined memory-controller occupancy
// above which memory-bound cycles are attributed to bandwidth.
const bandwidthThreshold = 0.7

// Analyze produces the TMA breakdown for a simulated run.
func Analyze(p *platform.Platform, res *sim.Result) (*Breakdown, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("tma: nil result")
	}

	b := &Breakdown{}

	// Memory-controller occupancy: achieved bandwidth over peak.
	b.MCOccupancy = res.TotalGBs / p.PeakGBs()

	// Back-end stall estimation: time threads spent unable to issue due to
	// memory (MSHR-full stalls plus a share of load-to-use exposure).
	memStall := res.L1FullStallFrac + res.L2FullStallFrac
	if memStall > 0.9 {
		memStall = 0.9
	}
	// The stall accounting double-counts overlapped fetch/issue stalls and
	// cannot see execution-unit occupancy — the imprecision §I describes.
	// A heuristic execution-pressure term stands in for port utilization.
	corePressure := 0.25 * (1 - memStall)

	b.BackEnd = memStall + corePressure
	b.FrontEnd = 0.08 * (1 - b.BackEnd)
	b.BadSpeculation = 0.04 * (1 - b.BackEnd)
	b.Retiring = 1 - b.BackEnd - b.FrontEnd - b.BadSpeculation

	if b.BackEnd > 0 {
		b.MemoryBound = memStall / b.BackEnd
		b.CoreBound = 1 - b.MemoryBound
	}

	// The bandwidth/latency split: all memory-bound cycles above the MC
	// threshold become "bandwidth bound", the rest "latency bound" —
	// regardless of what the loaded latency actually is.
	if b.MCOccupancy >= bandwidthThreshold {
		b.BandwidthBound = 0.55
		b.LatencyBound = 0.45
	} else {
		frac := b.MCOccupancy / bandwidthThreshold
		b.BandwidthBound = 0.55 * frac
		b.LatencyBound = 1 - b.BandwidthBound
	}

	// Derived latency: demand-load sampling.
	b.AvgLoadLatencyCycles = p.NsCycles(res.MeanLoadLatencyNs)
	return b, nil
}

// Summary renders the breakdown the way a VTune-style report does.
func (b *Breakdown) Summary() string {
	return fmt.Sprintf(
		"Retiring %.0f%% | Front-end %.0f%% | Bad speculation %.0f%% | Back-end %.0f%% "+
			"(core %.0f%%, memory %.0f%%; of memory: bandwidth %.0f%%, latency %.0f%%) | avg load latency %.0f cycles",
		100*b.Retiring, 100*b.FrontEnd, 100*b.BadSpeculation, 100*b.BackEnd,
		100*b.CoreBound, 100*b.MemoryBound, 100*b.BandwidthBound, 100*b.LatencyBound,
		b.AvgLoadLatencyCycles)
}
