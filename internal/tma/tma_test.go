package tma

import (
	"math"
	"strings"
	"testing"

	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(platform.SKL(), nil); err == nil {
		t.Fatal("nil result accepted")
	}
	bad := platform.SKL()
	bad.Cores = 0
	if _, err := Analyze(bad, &sim.Result{}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestTopLevelSumsToOne(t *testing.T) {
	p := platform.SKL()
	for _, res := range []*sim.Result{
		{TotalGBs: 100, L1FullStallFrac: 0.5, MeanLoadLatencyNs: 120},
		{TotalGBs: 5, L1FullStallFrac: 0.0, MeanLoadLatencyNs: 20},
		{TotalGBs: 120, L1FullStallFrac: 1.5, MeanLoadLatencyNs: 200}, // clamped
	} {
		b, err := Analyze(p, res)
		if err != nil {
			t.Fatal(err)
		}
		sum := b.Retiring + b.FrontEnd + b.BadSpeculation + b.BackEnd
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("top-level sums to %v", sum)
		}
		if b.Retiring < 0 {
			t.Errorf("negative retiring: %+v", b)
		}
	}
}

// TestPrefetchedStreamReportsTinyLatency reproduces the paper's hpcg
// anecdote: at ~86%% of peak bandwidth the derived average latency reads as
// a few tens of cycles because demand loads hit prefetched lines, while the
// true loaded latency is ~378 cycles.
func TestPrefetchedStreamReportsTinyLatency(t *testing.T) {
	p := platform.SKL()
	res := &sim.Result{
		TotalGBs:          110,
		MeanLoadLatencyNs: 15, // demand loads hit L2 thanks to the prefetcher
		MeanDRAMLatencyNs: 180,
	}
	b, err := Analyze(p, res)
	if err != nil {
		t.Fatal(err)
	}
	if b.AvgLoadLatencyCycles > 64 {
		t.Errorf("TMA latency = %.0f cycles; the critique requires a misleadingly small value", b.AvgLoadLatencyCycles)
	}
	trueCycles := p.NsCycles(res.MeanDRAMLatencyNs)
	if trueCycles < 300 {
		t.Fatalf("test setup wrong: true latency %.0f cycles", trueCycles)
	}
	if b.AvgLoadLatencyCycles > trueCycles/5 {
		t.Errorf("TMA latency %.0f not far below true %.0f", b.AvgLoadLatencyCycles, trueCycles)
	}
}

// TestBandwidthLatencySplitIsThresholdDriven: the split flips with MC
// occupancy, not with the actual latency behaviour — the §I SNAP critique
// (27%% bandwidth / 23%% latency with no clear guidance).
func TestBandwidthLatencySplitIsThresholdDriven(t *testing.T) {
	p := platform.SKL()
	low, err := Analyze(p, &sim.Result{TotalGBs: 30, L1FullStallFrac: 0.4, MeanLoadLatencyNs: 150})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Analyze(p, &sim.Result{TotalGBs: 120, L1FullStallFrac: 0.4, MeanLoadLatencyNs: 150})
	if err != nil {
		t.Fatal(err)
	}
	if high.BandwidthBound <= low.BandwidthBound {
		t.Errorf("bandwidth-bound fraction did not rise with MC occupancy: %.2f vs %.2f",
			high.BandwidthBound, low.BandwidthBound)
	}
	// Same latency input, completely different diagnosis: the ambiguity.
	if math.Abs(low.AvgLoadLatencyCycles-high.AvgLoadLatencyCycles) > 1e-9 {
		t.Error("latency metric changed although only bandwidth changed")
	}
	// Near the threshold, both categories get substantial weight — the
	// "27% bandwidth / 23% latency" unclear-guidance zone.
	mid, err := Analyze(p, &sim.Result{TotalGBs: 0.72 * p.PeakGBs(), L1FullStallFrac: 0.5, MeanLoadLatencyNs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if mid.BandwidthBound < 0.3 || mid.LatencyBound < 0.3 {
		t.Errorf("mid-occupancy split not ambiguous: bw %.2f lat %.2f", mid.BandwidthBound, mid.LatencyBound)
	}
}

func TestMemoryVsCoreBound(t *testing.T) {
	p := platform.KNL()
	memHeavy, _ := Analyze(p, &sim.Result{TotalGBs: 200, L1FullStallFrac: 0.7, MeanLoadLatencyNs: 170})
	compute, _ := Analyze(p, &sim.Result{TotalGBs: 10, L1FullStallFrac: 0.01, MeanLoadLatencyNs: 30})
	if memHeavy.MemoryBound <= compute.MemoryBound {
		t.Errorf("memory-bound ordering wrong: %.2f vs %.2f", memHeavy.MemoryBound, compute.MemoryBound)
	}
	if compute.CoreBound <= memHeavy.CoreBound {
		t.Errorf("core-bound ordering wrong")
	}
}

func TestSummaryRenders(t *testing.T) {
	b, _ := Analyze(platform.SKL(), &sim.Result{TotalGBs: 60, L1FullStallFrac: 0.3, MeanLoadLatencyNs: 100})
	s := b.Summary()
	for _, want := range []string{"Retiring", "Back-end", "bandwidth", "latency", "cycles"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
