package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func mustNew(t *testing.T, seed int64, rules ...Rule) *Injector {
	t.Helper()
	in, err := New(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestDisabledInjectorNeverFires(t *testing.T) {
	in := mustNew(t, 1, Rule{Site: "*", Kind: KindError, P: 1})
	in.SetEnabled(false)
	for i := 0; i < 100; i++ {
		if f := in.Eval("anything"); f.Kind != KindNone {
			t.Fatalf("disabled injector fired %v", f)
		}
	}
	if got := in.FiredTotal(); got != 0 {
		t.Fatalf("FiredTotal = %d after disabled evals", got)
	}
}

func TestEmptyInjectorDisabled(t *testing.T) {
	in := mustNew(t, 7)
	if in.Enabled() {
		t.Fatal("injector with no rules reports enabled")
	}
	if f := in.Eval("runner.run"); f.Kind != KindNone {
		t.Fatalf("empty injector fired %v", f)
	}
}

// TestDeterministicSchedule: the same seed and rules replay the same
// per-site fault schedule, and a different seed diverges.
func TestDeterministicSchedule(t *testing.T) {
	rules := []Rule{
		{Site: "handler.*", Kind: KindError, P: 0.3},
		{Site: "handler.*", Kind: KindLatency, P: 0.2, D: time.Millisecond},
	}
	schedule := func(seed int64) []Kind {
		in := mustNew(t, seed, rules...)
		out := make([]Kind, 200)
		for i := range out {
			out[i] = in.Eval("handler.analyze").Kind
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at eval %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-eval schedules")
	}
}

// TestSitesAreIndependentStreams: interleaving evaluations of another site
// does not perturb a site's schedule.
func TestSitesAreIndependentStreams(t *testing.T) {
	rules := []Rule{{Site: "*", Kind: KindError, P: 0.5}}
	solo := mustNew(t, 9, rules...)
	var want []Kind
	for i := 0; i < 100; i++ {
		want = append(want, solo.Eval("site.a").Kind)
	}
	mixed := mustNew(t, 9, rules...)
	var got []Kind
	for i := 0; i < 100; i++ {
		mixed.Eval("site.b") // noise on another stream
		got = append(got, mixed.Eval("site.a").Kind)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("site.a schedule perturbed by site.b at eval %d", i)
		}
	}
}

func TestGlobScoping(t *testing.T) {
	in := mustNew(t, 1,
		Rule{Site: "handler.*", Kind: KindError, P: 1},
		Rule{Site: "runner.run", Kind: KindPanic, P: 1},
	)
	if f := in.Eval("handler.analyze"); f.Kind != KindError {
		t.Fatalf("handler.analyze = %v, want error", f.Kind)
	}
	if f := in.Eval("runner.run"); f.Kind != KindPanic {
		t.Fatalf("runner.run = %v, want panic", f.Kind)
	}
	if f := in.Eval("stream.serve"); f.Kind != KindNone {
		t.Fatalf("unmatched site fired %v", f.Kind)
	}
}

func TestFiringRateTracksProbability(t *testing.T) {
	in := mustNew(t, 123, Rule{Site: "s", Kind: KindError, P: 0.3})
	const n = 20000
	fired := 0
	for i := 0; i < n; i++ {
		if in.Eval("s").Kind == KindError {
			fired++
		}
	}
	rate := float64(fired) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("fire rate %.3f, want 0.30 ± 0.02", rate)
	}
	counts := in.Counts()
	if len(counts) != 1 || counts[0].Site != "s" || counts[0].Evals != n ||
		counts[0].Fired["error"] != uint64(fired) {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestFaultHelpers(t *testing.T) {
	f := Fault{Kind: KindError, Site: "x"}
	if err := f.Err(); !IsFault(err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error not recognized: %v", err)
	}
	if wrapped := fmt.Errorf("outer: %w", f.Err()); !IsFault(wrapped) {
		t.Fatal("IsFault misses wrapped injected errors")
	}
	if (Fault{}).Err() != nil {
		t.Fatal("zero Fault yields an error")
	}
	if IsFault(errors.New("real failure")) {
		t.Fatal("IsFault claims a real failure")
	}

	// Sleep honors context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	Fault{Kind: KindLatency, D: time.Minute}.Sleep(ctx)
	if time.Since(start) > time.Second {
		t.Fatal("Sleep ignored cancelled context")
	}
}

func TestConfigureResetsSchedule(t *testing.T) {
	in := mustNew(t, 5, Rule{Site: "s", Kind: KindError, P: 0.5})
	var first []Kind
	for i := 0; i < 50; i++ {
		first = append(first, in.Eval("s").Kind)
	}
	if err := in.Configure(5, []Rule{{Site: "s", Kind: KindError, P: 0.5}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := in.Eval("s").Kind; got != first[i] {
			t.Fatalf("reconfigured schedule diverged at %d", i)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "seed=42;handler.*=error:0.2;runner.run=latency:0.1:50ms;stream.serve=drip:0.05:20ms;handler.tune=panic:0.01"
	seed, rules, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 42 || len(rules) != 4 {
		t.Fatalf("seed %d rules %d", seed, len(rules))
	}
	if rules[1] != (Rule{Site: "runner.run", Kind: KindLatency, P: 0.1, D: 50 * time.Millisecond}) {
		t.Fatalf("rules[1] = %+v", rules[1])
	}
	seed2, rules2, err := ParseSpec(FormatSpec(seed, rules))
	if err != nil {
		t.Fatal(err)
	}
	if seed2 != seed || len(rules2) != len(rules) {
		t.Fatalf("round trip lost data: seed %d rules %d", seed2, len(rules2))
	}
	for i := range rules {
		if rules[i] != rules2[i] {
			t.Fatalf("round trip rules[%d]: %+v vs %+v", i, rules[i], rules2[i])
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"site=unknownkind:0.5",
		"site=error:1.5",
		"site=error:NaN",
		"site=latency:0.5", // latency without duration
		"site=drip:0.5",    // drip without duration
		"site=latency:0.5:bogus",
		"seed=notanumber",
		"[=error:0.5", // bad glob
	}
	for _, spec := range bad {
		if _, _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	if seed, rules, err := ParseSpec("  "); err != nil || seed != 0 || rules != nil {
		t.Fatalf("empty spec: %d %v %v", seed, rules, err)
	}
}

// TestConcurrentEval: racing evaluations (the production shape — many
// handlers consulting one injector) are safe and every eval is counted.
func TestConcurrentEval(t *testing.T) {
	in := mustNew(t, 3, Rule{Site: "*", Kind: KindError, P: 0.5})
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			siteName := fmt.Sprintf("site.%d", g%2)
			for i := 0; i < per; i++ {
				in.Eval(siteName)
			}
		}(g)
	}
	wg.Wait()
	var evals uint64
	for _, sc := range in.Counts() {
		evals += sc.Evals
	}
	if evals != goroutines*per {
		t.Fatalf("evals = %d, want %d", evals, goroutines*per)
	}
}
