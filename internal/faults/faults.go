// Package faults is a deterministic, seedable fault-injection layer: the
// instrument that turns "the stack should survive misbehaving dependencies"
// from a hope into a testable property. Call sites across the serving
// stack — the run spine, the engine pool, the admission queue, the
// llserved handlers, the stream monitor — name themselves (a *site*) and
// ask the process-wide Injector whether a fault fires here, now. Rules
// scope faults to sites (exact names or glob patterns), pick a kind —
// injected latency, a transient error, a panic, or a slow-drip delay per
// response chunk — and fire with a per-evaluation probability drawn from a
// per-site RNG derived from one seed, so a chaos run replays exactly.
//
// The layer is built to be a provable no-op when off: a disabled Injector
// answers every Eval with a single atomic load and no RNG draw, so
// enabling-then-disabling faults leaves the serving stack bit-identical to
// a binary that never knew about them. That property is pinned by the
// chaos end-to-end test.
package faults

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the failure mode a rule injects.
type Kind uint8

const (
	// KindNone is the zero Fault: nothing fires.
	KindNone Kind = iota
	// KindLatency sleeps for the rule's duration before the site proceeds.
	KindLatency
	// KindError makes the site fail with a transient *InjectedError.
	KindError
	// KindPanic makes the site panic (the stack's recovery paths convert
	// it to a 500 / PanicError downstream).
	KindPanic
	// KindDrip delays each response chunk by the rule's duration — a slow
	// consumer/producer, not an outright stall.
	KindDrip
)

var kindNames = map[Kind]string{
	KindNone:    "none",
	KindLatency: "latency",
	KindError:   "error",
	KindPanic:   "panic",
	KindDrip:    "drip",
}

// String names the kind the way the -faults spec spells it.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName parses a spec kind name.
func KindByName(s string) (Kind, error) {
	for k, name := range kindNames {
		if k != KindNone && name == s {
			return k, nil
		}
	}
	return KindNone, fmt.Errorf("faults: unknown kind %q (want latency, error, panic or drip)", s)
}

// Rule scopes one failure mode to a set of sites.
type Rule struct {
	// Site selects which call sites the rule applies to: an exact site
	// name ("runner.run") or a path.Match glob ("handler.*").
	Site string
	// Kind is the failure mode.
	Kind Kind
	// P is the per-evaluation firing probability in [0, 1].
	P float64
	// D is the injected delay for KindLatency and the per-chunk delay for
	// KindDrip; ignored for the other kinds.
	D time.Duration
}

func (r Rule) validate() error {
	if r.Site == "" {
		return errors.New("faults: rule with empty site")
	}
	if _, err := path.Match(r.Site, "x"); err != nil {
		return fmt.Errorf("faults: bad site pattern %q: %w", r.Site, err)
	}
	if r.Kind == KindNone {
		return fmt.Errorf("faults: rule for %q with no kind", r.Site)
	}
	if !(r.P >= 0 && r.P <= 1) {
		return fmt.Errorf("faults: rule for %q with probability %v outside [0, 1]", r.Site, r.P)
	}
	if (r.Kind == KindLatency || r.Kind == KindDrip) && r.D <= 0 {
		return fmt.Errorf("faults: %s rule for %q needs a positive duration", r.Kind, r.Site)
	}
	return nil
}

// ErrInjected is the sentinel under every injected error;
// errors.Is(err, ErrInjected) — or the IsFault shorthand — distinguishes
// chaos from a real failure, which is what the graceful-degradation paths
// key on.
var ErrInjected = errors.New("faults: injected fault")

// InjectedError is the transient error KindError surfaces at a site.
type InjectedError struct {
	// Site is the call site that failed.
	Site string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected transient error at %s", e.Site)
}

// Is makes errors.Is(err, ErrInjected) true for every InjectedError.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// IsFault reports whether err (anywhere in its chain) was injected by this
// package.
func IsFault(err error) bool { return errors.Is(err, ErrInjected) }

// Fault is one evaluation's outcome. The zero value means "no fault"; the
// call site switches on Kind and uses the helper for its mode.
type Fault struct {
	// Kind is the failure mode that fired (KindNone = proceed normally).
	Kind Kind
	// D is the injected delay (KindLatency) or per-chunk delay (KindDrip).
	D time.Duration
	// Site is the evaluated call site (set whenever Kind != KindNone).
	Site string
}

// Err returns the transient error a KindError fault injects (nil for any
// other kind, so `if err := f.Err(); err != nil` composes).
func (f Fault) Err() error {
	if f.Kind != KindError {
		return nil
	}
	return &InjectedError{Site: f.Site}
}

// Sleep blocks for the fault's delay or until ctx expires, whichever comes
// first. A no-op for kinds without a delay.
func (f Fault) Sleep(ctx context.Context) {
	if f.D <= 0 {
		return
	}
	t := time.NewTimer(f.D)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// PanicValue is what a KindPanic site should panic with — a recognizable
// marker the recovery layers can report.
func (f Fault) PanicValue() any {
	return fmt.Sprintf("faults: injected panic at %s", f.Site)
}

// site is the per-call-site state: the rules that match it, its own
// deterministic RNG stream, and fire counters.
type site struct {
	mu    sync.Mutex
	rules []Rule // matching rules, in configuration order
	rng   *rand.Rand
	fired map[Kind]uint64
	evals uint64
}

// SiteCount reports one site's injection tally for the admin endpoint and
// the chaos tests.
type SiteCount struct {
	Site  string
	Evals uint64
	Fired map[string]uint64 // kind name → count
}

// Injector evaluates fault rules at named call sites. All methods are safe
// for concurrent use. The zero value is unusable; construct with New or
// use the process-wide Global().
type Injector struct {
	enabled atomic.Bool

	mu    sync.Mutex
	seed  int64
	rules []Rule
	sites map[string]*site
}

// New builds an Injector with the given seed and rules, enabled iff it has
// at least one rule.
func New(seed int64, rules ...Rule) (*Injector, error) {
	in := &Injector{sites: map[string]*site{}}
	if err := in.Configure(seed, rules); err != nil {
		return nil, err
	}
	return in, nil
}

// global is the process-wide injector every instrumented layer consults.
// It starts empty and disabled, so a process that never configures faults
// pays one atomic load per site evaluation and nothing else.
var global = func() *Injector {
	in, _ := New(0)
	return in
}()

// Global returns the process-wide Injector. The llserved -faults flag and
// the /v1/faults admin endpoint configure it; the instrumented layers
// (runner, engine, limit, service, stream) evaluate against it.
func Global() *Injector { return global }

// Configure replaces the injector's seed and rule set, resets every
// per-site RNG stream and counter, and enables the injector iff rules is
// non-empty. Two Configure calls with the same seed and rules replay the
// same fault schedule at every site.
func (i *Injector) Configure(seed int64, rules []Rule) error {
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return err
		}
	}
	i.mu.Lock()
	i.seed = seed
	i.rules = append([]Rule(nil), rules...)
	i.sites = map[string]*site{}
	i.mu.Unlock()
	i.enabled.Store(len(rules) > 0)
	return nil
}

// SetEnabled toggles evaluation without touching the rule set: a runtime
// kill switch. Re-enabling does not reset the RNG streams; use Configure
// to restart a schedule from its seed.
func (i *Injector) SetEnabled(on bool) { i.enabled.Store(on) }

// Enabled reports whether evaluations can fire.
func (i *Injector) Enabled() bool { return i.enabled.Load() }

// Seed returns the configured seed.
func (i *Injector) Seed() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.seed
}

// Rules returns a copy of the configured rules.
func (i *Injector) Rules() []Rule {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Rule(nil), i.rules...)
}

// Eval asks whether a fault fires at the named site. Disabled injectors
// answer with one atomic load and draw no randomness — the provable-no-op
// property the chaos test pins. Enabled injectors evaluate the site's
// matching rules in configuration order against the site's own seeded RNG
// stream (one draw per rule per evaluation, so a site's fault schedule is
// a pure function of the seed and its evaluation count); the first rule
// whose draw lands under its probability fires.
func (i *Injector) Eval(siteName string) Fault {
	if !i.enabled.Load() {
		return Fault{}
	}
	s := i.site(siteName)
	if s == nil {
		return Fault{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evals++
	for _, r := range s.rules {
		if s.rng.Float64() < r.P {
			s.fired[r.Kind]++
			return Fault{Kind: r.Kind, D: r.D, Site: siteName}
		}
	}
	return Fault{}
}

// site returns the per-site state, building it (matched rules + derived
// RNG stream) on first evaluation. Returns nil when no rule matches, and
// caches that too.
func (i *Injector) site(name string) *site {
	i.mu.Lock()
	defer i.mu.Unlock()
	if s, ok := i.sites[name]; ok {
		return s
	}
	var matched []Rule
	for _, r := range i.rules {
		if r.Site == name {
			matched = append(matched, r)
			continue
		}
		if ok, _ := path.Match(r.Site, name); ok {
			matched = append(matched, r)
		}
	}
	var s *site
	if len(matched) > 0 {
		// Each site gets an independent deterministic stream: the seed
		// folded with the site name, so concurrency elsewhere cannot
		// perturb this site's schedule.
		h := fnv.New64a()
		h.Write([]byte(name))
		s = &site{
			rules: matched,
			rng:   rand.New(rand.NewSource(i.seed ^ int64(h.Sum64()))),
			fired: map[Kind]uint64{},
		}
	}
	i.sites[name] = s
	return s
}

// Counts snapshots every evaluated site's tally, sorted by site name.
func (i *Injector) Counts() []SiteCount {
	i.mu.Lock()
	names := make([]string, 0, len(i.sites))
	for name, s := range i.sites {
		if s != nil {
			names = append(names, name)
		}
	}
	sites := make([]*site, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		sites = append(sites, i.sites[name])
	}
	i.mu.Unlock()

	out := make([]SiteCount, 0, len(names))
	for idx, s := range sites {
		s.mu.Lock()
		sc := SiteCount{Site: names[idx], Evals: s.evals, Fired: map[string]uint64{}}
		for k, n := range s.fired {
			sc.Fired[k.String()] = n
		}
		s.mu.Unlock()
		out = append(out, sc)
	}
	return out
}

// FiredTotal sums injected faults across all sites and kinds.
func (i *Injector) FiredTotal() uint64 {
	var total uint64
	for _, sc := range i.Counts() {
		for _, n := range sc.Fired {
			total += n
		}
	}
	return total
}

// ParseSpec parses the -faults flag grammar: semicolon-separated clauses,
// each either `seed=N` or `site=kind:p[:duration]`.
//
//	seed=42;handler.*=error:0.2;runner.run=latency:0.1:50ms;stream.serve=drip:0.05:20ms
//
// An empty spec returns no rules (seed 0). Kinds without a duration field
// are error and panic; latency and drip require one.
func ParseSpec(spec string) (seed int64, rules []Rule, err error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return 0, nil, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		siteName, val, ok := strings.Cut(clause, "=")
		if !ok {
			return 0, nil, fmt.Errorf("faults: clause %q is not site=kind:p or seed=N", clause)
		}
		siteName, val = strings.TrimSpace(siteName), strings.TrimSpace(val)
		if siteName == "seed" {
			if _, err := fmt.Sscanf(val, "%d", &seed); err != nil {
				return 0, nil, fmt.Errorf("faults: bad seed %q", val)
			}
			continue
		}
		parts := strings.Split(val, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return 0, nil, fmt.Errorf("faults: clause %q wants site=kind:p[:duration]", clause)
		}
		kind, err := KindByName(parts[0])
		if err != nil {
			return 0, nil, err
		}
		var p float64
		if _, err := fmt.Sscanf(parts[1], "%g", &p); err != nil {
			return 0, nil, fmt.Errorf("faults: bad probability %q in %q", parts[1], clause)
		}
		r := Rule{Site: siteName, Kind: kind, P: p}
		if len(parts) == 3 {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return 0, nil, fmt.Errorf("faults: bad duration %q in %q", parts[2], clause)
			}
			r.D = d
		}
		if err := r.validate(); err != nil {
			return 0, nil, err
		}
		rules = append(rules, r)
	}
	return seed, rules, nil
}

// FormatSpec renders a seed and rules back into the flag grammar, the
// round-trip the admin endpoint reports.
func FormatSpec(seed int64, rules []Rule) string {
	parts := make([]string, 0, len(rules)+1)
	if seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", seed))
	}
	for _, r := range rules {
		clause := fmt.Sprintf("%s=%s:%g", r.Site, r.Kind, r.P)
		if r.D > 0 {
			clause += ":" + r.D.String()
		}
		parts = append(parts, clause)
	}
	return strings.Join(parts, ";")
}
