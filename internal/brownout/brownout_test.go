package brownout

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic dwell tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testConfig(clk *fakeClock) Config {
	cfg := DefaultConfig()
	cfg.Now = clk.now
	return cfg
}

func TestModeStringsRoundTrip(t *testing.T) {
	for m := B0; m < NumModes; m++ {
		for _, s := range []string{m.String(), m.Label(), strings.ToLower(m.String())} {
			got, err := Parse(s)
			if err != nil {
				t.Fatalf("Parse(%q): %v", s, err)
			}
			if got != m {
				t.Fatalf("Parse(%q) = %v, want %v", s, got, m)
			}
		}
	}
	if _, err := Parse("B9"); err == nil {
		t.Fatalf("Parse(B9) should fail")
	}
	if B0.Degraded() {
		t.Fatalf("B0 must not be degraded")
	}
	for m := B1; m < NumModes; m++ {
		if !m.Degraded() {
			t.Fatalf("%v must be degraded", m)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().withDefaults().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Exit[1] = bad.Enter[1] // no dead band
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatalf("Exit == Enter must be rejected")
	}
	bad = DefaultConfig()
	bad.Enter[2] = bad.Enter[1] // not strictly increasing
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatalf("non-increasing Enter must be rejected")
	}
	if _, err := NewController(bad); err == nil {
		t.Fatalf("NewController must reject invalid thresholds")
	}
}

// TestDecideOneRungPerCall: no input jumps more than one rung.
func TestDecideOneRungPerCall(t *testing.T) {
	cfg := DefaultConfig().withDefaults()
	for cur := B0; cur < NumModes; cur++ {
		for _, dwell := range []time.Duration{0, cfg.DwellUp, cfg.DwellDown, time.Hour} {
			for p := 0.0; p <= 4.0; p += 0.05 {
				next := Decide(cur, dwell, p, cfg)
				if next < cur-1 || next > cur+1 {
					t.Fatalf("Decide(%v, %s, %g) = %v: moved more than one rung", cur, dwell, p, next)
				}
				if next < B0 || next >= NumModes {
					t.Fatalf("Decide(%v, %s, %g) = %v: out of range", cur, dwell, p, next)
				}
			}
		}
	}
}

// TestDecideDeadBand: with Exit[i] < Enter[i], no single pressure value can
// drive both an escalation and a de-escalation — even with infinite dwell.
func TestDecideDeadBand(t *testing.T) {
	cfg := DefaultConfig().withDefaults()
	for p := 0.0; p <= 4.0; p += 0.01 {
		for cur := B0; cur < NumModes; cur++ {
			up := Decide(cur, time.Hour, p, cfg)
			if up <= cur {
				continue
			}
			// p escalated cur -> up; the same p must not de-escalate up.
			back := Decide(up, time.Hour, p, cfg)
			if back < up {
				t.Fatalf("pressure %g escalates %v->%v and then de-escalates to %v: flapping", p, cur, up, back)
			}
		}
	}
}

// TestPropertyTrajectories drives the controller with random pressure
// trajectories and checks the hysteresis invariants on every transition:
// escalations only after DwellUp, de-escalations only after DwellDown, one
// rung at a time, and no opposite-direction pair inside one dwell window.
func TestPropertyTrajectories(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clk := newFakeClock()
		cfg := testConfig(clk)
		c, err := NewController(cfg)
		if err != nil {
			t.Fatal(err)
		}
		type transition struct {
			at       time.Time
			from, to Mode
		}
		var trans []transition
		prev := c.Mode()
		entered := clk.now()
		pressure := 0.0
		for step := 0; step < 4000; step++ {
			// Random walk with occasional spikes and droughts.
			switch rng.Intn(10) {
			case 0:
				pressure = rng.Float64() * 4
			default:
				pressure += rng.Float64()*0.6 - 0.3
			}
			if pressure < 0 {
				pressure = 0
			}
			clk.advance(time.Duration(rng.Intn(200)) * time.Millisecond)
			got := c.Observe(pressure)
			if got != prev {
				if got != prev+1 && got != prev-1 {
					t.Fatalf("seed %d: jumped %v -> %v", seed, prev, got)
				}
				dwell := clk.now().Sub(entered)
				if got == prev+1 && dwell < cfg.DwellUp {
					t.Fatalf("seed %d: escalated %v->%v after %s < DwellUp %s", seed, prev, got, dwell, cfg.DwellUp)
				}
				if got == prev-1 && dwell < cfg.DwellDown {
					t.Fatalf("seed %d: de-escalated %v->%v after %s < DwellDown %s", seed, prev, got, dwell, cfg.DwellDown)
				}
				trans = append(trans, transition{at: clk.now(), from: prev, to: got})
				prev = got
				entered = clk.now()
			}
		}
		// No B1->B2->B1-style reversal inside one dwell window: consecutive
		// opposite-direction transitions must be at least min(DwellUp,
		// DwellDown) apart (in fact: a reversal down waits DwellDown, a
		// reversal up waits DwellUp — check the direction-specific bound).
		for i := 1; i < len(trans); i++ {
			a, b := trans[i-1], trans[i]
			upA, upB := a.to > a.from, b.to > b.from
			if upA == upB {
				continue
			}
			gap := b.at.Sub(a.at)
			min := cfg.DwellUp
			if !upB {
				min = cfg.DwellDown
			}
			if gap < min {
				t.Fatalf("seed %d: reversal %v->%v then %v->%v only %s apart (need %s)",
					seed, a.from, a.to, b.from, b.to, gap, min)
			}
		}
	}
}

// TestMonotoneDecreasingReturnsToB0: once load falls and keeps falling, the
// controller always walks back down to B0.
func TestMonotoneDecreasingReturnsToB0(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clk := newFakeClock()
		cfg := testConfig(clk)
		c, err := NewController(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Phase 1: drive it up somewhere random.
		for i := 0; i < 200; i++ {
			clk.advance(time.Duration(rng.Intn(300)) * time.Millisecond)
			c.Observe(rng.Float64() * 4)
		}
		// Phase 2: monotonically decreasing pressure down to 0.
		pressure := 4.0
		for i := 0; i < 400 && pressure > 0; i++ {
			clk.advance(100 * time.Millisecond)
			pressure -= 0.01
			if pressure < 0 {
				pressure = 0
			}
			c.Observe(pressure)
		}
		// Phase 3: quiescent; give it dwell time to finish descending.
		for i := 0; i < NumModes*int(cfg.DwellDown/(100*time.Millisecond))+10; i++ {
			clk.advance(100 * time.Millisecond)
			c.Observe(0)
		}
		if got := c.Mode(); got != B0 {
			t.Fatalf("seed %d: monotone decreasing load ended at %v, want B0", seed, got)
		}
	}
}

func TestPinFreezesAndUnpinResumes(t *testing.T) {
	clk := newFakeClock()
	c, err := NewController(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Pin(B2); err != nil {
		t.Fatal(err)
	}
	// Massive pressure cannot move a pinned controller.
	for i := 0; i < 50; i++ {
		clk.advance(time.Second)
		if got := c.Observe(10); got != B2 {
			t.Fatalf("pinned controller moved to %v", got)
		}
	}
	snap := c.Snapshot()
	if !snap.Pinned || snap.Mode != B2 {
		t.Fatalf("snapshot = %+v, want pinned B2", snap)
	}
	c.Unpin()
	// Dwell clock restarted: the very next Observe cannot transition.
	if got := c.Observe(10); got != B2 {
		t.Fatalf("mode jumped to %v immediately after Unpin", got)
	}
	// But with dwell it escalates normally again.
	clk.advance(time.Second)
	if got := c.Observe(10); got != B3 {
		t.Fatalf("after dwell, mode = %v, want B3", got)
	}
	if err := c.Pin(Mode(99)); err == nil {
		t.Fatalf("Pin(99) must fail")
	}
}

func TestTimeInModeAccounting(t *testing.T) {
	clk := newFakeClock()
	c, err := NewController(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)
	c.Observe(2.0) // escalates to B1 (dwell 2s >= 500ms)
	clk.advance(3 * time.Second)
	snap := c.Snapshot()
	if snap.TimeIn[B0] != 2*time.Second {
		t.Fatalf("TimeIn[B0] = %s, want 2s", snap.TimeIn[B0])
	}
	if snap.TimeIn[B1] != 3*time.Second {
		t.Fatalf("TimeIn[B1] = %s, want 3s", snap.TimeIn[B1])
	}
	if snap.Transitions != 1 {
		t.Fatalf("Transitions = %d, want 1", snap.Transitions)
	}
	if snap.Dwell != 3*time.Second {
		t.Fatalf("Dwell = %s, want 3s", snap.Dwell)
	}
}
