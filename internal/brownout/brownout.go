// Package brownout is the degradation ladder: the controller that turns
// the spine's live Little's-Law occupancy estimate into an explicit
// serving mode. Where the admission limiter answers "this request: yes or
// no", brownout answers the coarser, slower question "what quality of
// service can the whole server afford right now" — and steps through
// cheaper-but-still-correct answers before it sheds anything:
//
//	B0 full       every request runs the discrete-event kernel
//	B1 stale      the runner may serve expired cache entries, marked Stale
//	B2 analytic   analyze/advise answered by the closed-form fixed point
//	              (analytic.Predict) instead of the kernel, marked Approximate
//	B3 partial    non-critical routes (tables, traces, watch) shed; the
//	              critical analyze/advise surface stays alive
//	B4 shed       everything but admin endpoints sheds
//
// The transition rule is deliberately boring: a pure function of the
// current mode, the time spent in it, and one scalar pressure sample
// (occupancy / ceiling). Hysteresis comes from two mechanisms that
// together make flapping impossible by construction: each rung has a
// separate enter and exit threshold (Exit[i] < Enter[i], so the pressure
// band between them is a dead zone in both directions), and a transition
// in either direction only fires after the mode has dwelled at least
// DwellUp/DwellDown — so opposite-direction transitions are always at
// least min(DwellUp, DwellDown) apart.
package brownout

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"littleslaw/internal/metrics"
)

// Mode is a rung on the degradation ladder. Higher is more degraded.
type Mode int

const (
	// B0 serves full-fidelity simulation answers.
	B0 Mode = iota
	// B1 lets the runner serve expired cache entries, marked Stale.
	B1
	// B2 answers analyze/advise with the closed-form analytic model,
	// marked Approximate.
	B2
	// B3 sheds non-critical routes while analyze/advise stay alive.
	B3
	// B4 sheds everything except admin endpoints.
	B4
)

// NumModes is the ladder length; modes are B0..NumModes-1.
const NumModes = 5

// String renders the rung name ("B0".."B4").
func (m Mode) String() string {
	if m < B0 || m >= NumModes {
		return fmt.Sprintf("B?(%d)", int(m))
	}
	return "B" + strconv.Itoa(int(m))
}

// Label is the human name for what the mode serves — the value llload
// buckets goodput by.
func (m Mode) Label() string {
	switch m {
	case B0:
		return "full"
	case B1:
		return "stale"
	case B2:
		return "analytic"
	case B3:
		return "partial-shed"
	case B4:
		return "shed"
	}
	return "unknown"
}

// Degraded reports whether responses served in this mode must carry the
// Degraded marker: everything above B0.
func (m Mode) Degraded() bool { return m > B0 }

// Parse accepts a rung name ("B2", case-insensitive), a label
// ("analytic"), or a bare digit ("2").
func Parse(s string) (Mode, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	for m := B0; m < NumModes; m++ {
		if t == strings.ToLower(m.String()) || t == m.Label() || t == strconv.Itoa(int(m)) {
			return m, nil
		}
	}
	return B0, fmt.Errorf("brownout: unknown mode %q (want B0..B4 or full/stale/analytic/partial-shed/shed)", s)
}

// Config parameterizes the ladder. Enter[i] is the pressure at or above
// which mode Mode(i) escalates to Mode(i+1); Exit[i] is the pressure below
// which Mode(i+1) de-escalates back to Mode(i). Pressure is the caller's
// normalized occupancy estimate — the service uses
// max(inflight+queued, n_avg) / ceiling, so 1.0 means "at the admission
// ceiling" and ~3.0 means "ceiling plus a full queue".
type Config struct {
	Enter [NumModes - 1]float64 // escalation thresholds; strictly increasing
	Exit  [NumModes - 1]float64 // de-escalation thresholds; Exit[i] < Enter[i]

	// DwellUp is the minimum time in a mode before escalating out of it;
	// DwellDown the minimum before de-escalating. DwellDown should be the
	// larger: climbing fast protects the server, descending slowly
	// protects against flapping.
	DwellUp   time.Duration
	DwellDown time.Duration

	// Now substitutes the clock in tests.
	Now func() time.Time
}

// DefaultConfig returns the ladder tuning the service ships with. The
// enter rungs track the limiter's shedding geometry: 1.0 is the admission
// ceiling itself (requests start queueing), 3.0 is ceiling plus the
// default 2×ceiling queue (nothing more can even wait — full shed is all
// that is left).
func DefaultConfig() Config {
	return Config{
		Enter:     [NumModes - 1]float64{1.0, 1.5, 2.25, 3.0},
		Exit:      [NumModes - 1]float64{0.7, 1.1, 1.7, 2.4},
		DwellUp:   500 * time.Millisecond,
		DwellDown: 2 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	var zero [NumModes - 1]float64
	if c.Enter == zero {
		c.Enter = def.Enter
	}
	if c.Exit == zero {
		c.Exit = def.Exit
	}
	if c.DwellUp == 0 {
		c.DwellUp = def.DwellUp
	}
	if c.DwellDown == 0 {
		c.DwellDown = def.DwellDown
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Validate checks the hysteresis invariants: thresholds strictly
// increasing along the ladder, every exit strictly below its enter (the
// dead band), and positive dwells.
func (c Config) Validate() error {
	for i := 0; i < NumModes-1; i++ {
		if c.Exit[i] >= c.Enter[i] {
			return fmt.Errorf("brownout: Exit[%d]=%g must be < Enter[%d]=%g (hysteresis dead band)", i, c.Exit[i], i, c.Enter[i])
		}
		if i > 0 {
			if c.Enter[i] <= c.Enter[i-1] {
				return fmt.Errorf("brownout: Enter thresholds must be strictly increasing (Enter[%d]=%g <= Enter[%d]=%g)", i, c.Enter[i], i-1, c.Enter[i-1])
			}
			if c.Exit[i] <= c.Exit[i-1] {
				return fmt.Errorf("brownout: Exit thresholds must be strictly increasing (Exit[%d]=%g <= Exit[%d]=%g)", i, c.Exit[i], i-1, c.Exit[i-1])
			}
		}
	}
	if c.DwellUp <= 0 || c.DwellDown <= 0 {
		return fmt.Errorf("brownout: dwells must be positive (up %s, down %s)", c.DwellUp, c.DwellDown)
	}
	return nil
}

// Decide is the whole transition rule: given the current mode, how long
// the controller has dwelled in it, and one pressure sample, return the
// next mode. It is a pure function — no clock, no state — which is what
// makes the hysteresis properties provable by enumeration:
//
//   - it moves at most one rung per call, so a sudden spike still visits
//     B1 and B2 (and their cheaper answers) on the way up;
//   - it escalates only after DwellUp in the current mode and de-escalates
//     only after DwellDown, so opposite-direction transitions can never
//     share a dwell window;
//   - with Exit[i] < Enter[i], no single pressure value satisfies both the
//     escalate and de-escalate conditions, so the same input can never
//     oscillate.
func Decide(cur Mode, dwell time.Duration, pressure float64, cfg Config) Mode {
	if cur < B0 {
		cur = B0
	}
	if cur >= NumModes {
		cur = NumModes - 1
	}
	if cur < NumModes-1 && pressure >= cfg.Enter[cur] && dwell >= cfg.DwellUp {
		return cur + 1
	}
	if cur > B0 && pressure < cfg.Exit[cur-1] && dwell >= cfg.DwellDown {
		return cur - 1
	}
	return cur
}

// Snapshot is a point-in-time view of a Controller for /v1/brownout and
// tests.
type Snapshot struct {
	Mode        Mode
	Pinned      bool
	Pressure    float64 // last observed sample
	Dwell       time.Duration
	Transitions uint64
	TimeIn      [NumModes]time.Duration
	Config      Config
}

// Controller owns the mode state machine: feed it pressure samples with
// Observe and it walks the ladder per Decide, accounting time-in-mode and
// transition counts along the way. Ops can Pin a mode (freezing Observe)
// and Unpin to resume. All methods are safe for concurrent use; Observe is
// cheap enough to call per request.
type Controller struct {
	cfg Config

	mu           sync.Mutex
	mode         Mode
	pinned       bool
	enteredAt    time.Time // when the current mode was entered
	lastAccrue   time.Time
	lastPressure float64
	transitions  uint64
	timeIn       [NumModes]time.Duration
}

// NewController builds a controller at B0. Zero fields of cfg take
// defaults; invalid thresholds return an error rather than a controller
// that could flap.
func NewController(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	now := cfg.Now()
	return &Controller{cfg: cfg, enteredAt: now, lastAccrue: now}, nil
}

// accrueLocked charges wall time since the last bookkeeping event to the
// current mode.
func (c *Controller) accrueLocked(now time.Time) {
	if d := now.Sub(c.lastAccrue); d > 0 {
		c.timeIn[c.mode] += d
	}
	c.lastAccrue = now
}

// Observe feeds one pressure sample and returns the effective mode. While
// pinned the sample is recorded but ignored.
func (c *Controller) Observe(pressure float64) Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.accrueLocked(now)
	c.lastPressure = pressure
	if c.pinned {
		return c.mode
	}
	next := Decide(c.mode, now.Sub(c.enteredAt), pressure, c.cfg)
	if next != c.mode {
		c.mode = next
		c.enteredAt = now
		c.transitions++
	}
	return c.mode
}

// Mode returns the current mode without feeding a sample.
func (c *Controller) Mode() Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// Pin forces mode m and freezes Observe until Unpin. Pinning is an ops
// override (forcing B2 ahead of a known load spike, forcing B0 to debug),
// so it bypasses dwell rules; the jump still counts as a transition when
// the mode actually changes.
func (c *Controller) Pin(m Mode) error {
	if m < B0 || m >= NumModes {
		return fmt.Errorf("brownout: cannot pin %v", m)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.accrueLocked(now)
	if c.mode != m {
		c.mode = m
		c.enteredAt = now
		c.transitions++
	}
	c.pinned = true
	return nil
}

// Unpin resumes automatic control from the current (previously pinned)
// mode. The dwell clock restarts so the controller cannot instantly jump
// off the rung ops just released.
func (c *Controller) Unpin() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pinned {
		return
	}
	now := c.cfg.Now()
	c.accrueLocked(now)
	c.pinned = false
	c.enteredAt = now
}

// Snapshot returns the controller's current state.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.accrueLocked(now)
	return Snapshot{
		Mode:        c.mode,
		Pinned:      c.pinned,
		Pressure:    c.lastPressure,
		Dwell:       now.Sub(c.enteredAt),
		Transitions: c.transitions,
		TimeIn:      c.timeIn,
		Config:      c.cfg,
	}
}

// Register exposes the controller on reg under prefix: the current rung as
// a gauge (0–4), whether it is pinned, total transitions, and cumulative
// time spent in each mode.
func (c *Controller) Register(reg *metrics.Registry, prefix string) {
	reg.Derived(prefix+"_mode",
		"Current brownout rung: 0=full, 1=stale, 2=analytic, 3=partial-shed, 4=shed.",
		func() float64 { return float64(c.Mode()) })
	reg.Derived(prefix+"_pinned",
		"1 when the brownout mode is pinned by an operator, else 0.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.pinned {
				return 1
			}
			return 0
		})
	reg.DerivedCounter(prefix+"_transitions_total",
		"Brownout mode transitions since start (both directions, including pins).",
		func() uint64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.transitions
		})
	reg.DerivedVec(prefix+"_time_in_mode_seconds",
		"Cumulative wall time spent in each brownout mode.",
		"mode",
		func() map[string]float64 {
			snap := c.Snapshot()
			out := make(map[string]float64, NumModes)
			for m := B0; m < NumModes; m++ {
				out[m.String()] = snap.TimeIn[m].Seconds()
			}
			return out
		})
}
