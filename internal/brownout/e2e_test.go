// The brownout acceptance test: under sustained 4x-capacity overload, a
// laddered server (stale serving + analytic fallback) delivers strictly
// more goodput than an identically-sized binary-shedding server, and every
// answer it produces is honest — a response either carries a real kernel
// run or says Approximate, never neither, never silently both.
package brownout_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"littleslaw/internal/brownout"
	"littleslaw/internal/experiments"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/service"
)

func paperProfiles(_ context.Context, p *platform.Platform) (*queueing.Curve, error) {
	return experiments.PaperProfileFor(p)
}

// overloadConfig is a deliberately small server: ceiling 4, short queue,
// instant profiles. The laddered variant gets fast dwells so the ladder
// engages within the test window, plus a short runner TTL so B1 has
// expired entries to serve.
func overloadConfig(laddered bool) service.Config {
	cfg := service.Config{
		ProfileFor:        paperProfiles,
		LimitCeiling:      4,
		LimitQueue:        8,
		LimitQueueTimeout: 50 * time.Millisecond,
		RunnerTTL:         50 * time.Millisecond,
	}
	if laddered {
		cfg.Brownout = brownout.Config{
			DwellUp:   50 * time.Millisecond,
			DwellDown: 500 * time.Millisecond,
		}
	} else {
		cfg.DisableBrownout = true
	}
	return cfg
}

// outcome tallies one server's side of the comparison.
type outcome struct {
	ok, degraded, shedFinal, unmarked, badBody atomic.Int64
}

// drive runs a closed-loop population against one server for the window,
// retrying sheds (429/503) — degraded successes count as successes, which
// is the whole point of the ladder. Distinct scales defeat the runner
// cache so offered work stays expensive.
func drive(t *testing.T, ts *httptest.Server, workers int, window time.Duration, out *outcome) {
	t.Helper()
	httpc := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(window)
	var seq atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				// ~60 distinct cache keys: enough that the binary server
				// almost never gets a free cache hit inside the window.
				n := seq.Add(1) % 60
				body := fmt.Sprintf(`{"platform":"SKL","workload":"ISx","scale":%.4f}`, 0.02+float64(n)*0.0002)
				shed := false
				for attempt := 0; attempt < 8; attempt++ {
					resp, err := httpc.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader([]byte(body)))
					if err != nil {
						shed = true
						break
					}
					var ar service.AnalyzeResponse
					decodeErr := json.NewDecoder(resp.Body).Decode(&ar)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						if decodeErr != nil {
							out.badBody.Add(1)
						} else {
							// Honesty invariant: a 200 either carries the
							// kernel's run or is marked Approximate —
							// exactly one of the two.
							if (ar.Run == nil) != ar.Approximate {
								out.unmarked.Add(1)
							}
							if ar.Degraded != (resp.Header.Get("X-Degraded") == "true") {
								out.unmarked.Add(1)
							}
							out.ok.Add(1)
							if ar.Degraded {
								out.degraded.Add(1)
							}
						}
						shed = false
						break
					}
					shed = true
					if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				if shed {
					out.shedFinal.Add(1)
				}
			}
		}()
	}
	wg.Wait()
}

// TestChaosLadderedBeatsBinaryShedding is the overload acceptance run: the
// same 4x-capacity closed-loop population against a laddered and a binary
// server, same window, same work mix. The ladder must engage (degraded
// successes observed), every answer must be marked honestly, and laddered
// goodput must strictly exceed binary goodput.
func TestChaosLadderedBeatsBinaryShedding(t *testing.T) {
	if testing.Short() {
		t.Skip("overload e2e needs its full window")
	}
	window := 2500 * time.Millisecond
	const workers = 16 // 4x the admission ceiling

	run := func(laddered bool) *outcome {
		s := service.New(overloadConfig(laddered))
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		out := &outcome{}
		drive(t, ts, workers, window, out)
		return out
	}

	binary := run(false)
	laddered := run(true)

	t.Logf("binary:   ok %d  degraded %d  shed %d", binary.ok.Load(), binary.degraded.Load(), binary.shedFinal.Load())
	t.Logf("laddered: ok %d  degraded %d  shed %d", laddered.ok.Load(), laddered.degraded.Load(), laddered.shedFinal.Load())

	if n := binary.unmarked.Load() + laddered.unmarked.Load(); n != 0 {
		t.Fatalf("%d responses broke the honesty invariant (Run xor Approximate, header matches body)", n)
	}
	if n := binary.badBody.Load() + laddered.badBody.Load(); n != 0 {
		t.Fatalf("%d 200 responses had undecodable bodies", n)
	}
	if binary.degraded.Load() != 0 {
		t.Fatalf("binary server produced %d degraded answers with brownout disabled", binary.degraded.Load())
	}
	if laddered.degraded.Load() == 0 {
		t.Fatal("ladder never engaged: no degraded successes under 4x overload")
	}
	if laddered.ok.Load() <= binary.ok.Load() {
		t.Fatalf("laddered goodput %d <= binary goodput %d; the ladder bought nothing",
			laddered.ok.Load(), binary.ok.Load())
	}
}

// TestChaosLadderRecoversToFull proves the other half of graceful
// degradation: once the overload stops, the controller walks back to B0
// and answers regain full fidelity.
func TestChaosLadderRecoversToFull(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery e2e needs its dwell windows")
	}
	cfg := overloadConfig(true)
	cfg.Brownout.DwellDown = 100 * time.Millisecond // fast descent for the test
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := &outcome{}
	drive(t, ts, 16, 1500*time.Millisecond, out)
	if out.degraded.Load() == 0 {
		t.Fatal("ladder never engaged during the overload phase")
	}

	// Overload gone: the ladder must descend to B0 within a few dwell
	// windows (each /v1/brownout read samples pressure).
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/brownout")
		if err != nil {
			t.Fatal(err)
		}
		var st service.BrownoutState
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode == "B0" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("still %s after overload ended", st.Mode)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// And a fresh analysis is full-fidelity again.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		bytes.NewReader([]byte(`{"platform":"SKL","workload":"ISx","scale":0.0333}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar service.AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ar.Degraded || ar.Run == nil {
		t.Fatalf("post-recovery analyze = %d degraded=%v run=%v, want full fidelity", resp.StatusCode, ar.Degraded, ar.Run != nil)
	}
}
