package tracefile

import (
	"bytes"
	"io"
	"math"
	"testing"

	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
)

// validTrace builds a well-formed trace so the fuzzer starts from inputs
// that exercise the record loop, not just header rejection.
func validTrace(t testing.TB, ops []cpu.Op) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{LineBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParse feeds arbitrary bytes through the trace reader. The reader must
// never panic, must reject anything that is not a valid trace with an error,
// and every record it does accept must survive a write→read round trip
// unchanged (the on-disk quantization is exact once applied).
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LLTRACE1"))
	f.Add(validTrace(f, nil))
	f.Add(validTrace(f, []cpu.Op{
		{Kind: memsys.Load, Addr: 0x1000, GapCycles: 3, Work: 1},
		{Kind: memsys.Store, Addr: 0xffff_ffff_ffff_ffc0, Barrier: true},
		{Kind: memsys.PrefetchL2, Addr: 64, Async: true, GapCycles: 4095.9375},
	}))
	// Truncated record and bad line size.
	f.Add(append(validTrace(f, nil), 0x00, 0x00, 0x01))
	f.Add([]byte("LLTRACE1\x03\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if lb := r.Header.LineBytes; lb <= 0 || lb&(lb-1) != 0 {
			t.Fatalf("reader accepted invalid line size %d", lb)
		}
		var ops []cpu.Op
		for {
			op, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed tail is fine, as long as it is reported
			}
			if op.Kind > memsys.PrefetchL1 {
				t.Fatalf("reader accepted invalid kind %d", op.Kind)
			}
			if math.IsNaN(op.GapCycles) || op.GapCycles < 0 || math.IsNaN(op.Work) || op.Work < 0 {
				t.Fatalf("reader produced non-finite timing: %+v", op)
			}
			ops = append(ops, op)
		}

		// Round trip: accepted records re-encode and re-read identically.
		again := validTrace(t, ops)
		rr, err := NewReader(bytes.NewReader(again))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		for i, want := range ops {
			got, err := rr.Read()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d round trip: got %+v want %+v", i, got, want)
			}
		}
		if _, err := rr.Read(); err != io.EOF {
			t.Fatalf("expected EOF after %d records, got %v", len(ops), err)
		}
	})
}
