package tracefile

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
	"littleslaw/internal/workloads"
)

func TestHeaderValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{LineBytes: 96}); err == nil {
		t.Fatal("bad line size accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("NOTTRACE00000000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	ops := []cpu.Op{
		{Addr: 0x1000, Kind: memsys.Load, GapCycles: 3.5, Work: 1},
		{Addr: 0xdeadbeef00, Kind: memsys.Store, GapCycles: 0, Work: 0.25, Async: true},
		{Addr: 0x42, Kind: memsys.PrefetchL2, GapCycles: 120},
		{Addr: 0x99, Kind: memsys.Load, Barrier: true, GapCycles: 900.25},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{LineBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(ops) {
		t.Fatalf("count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.LineBytes != 64 {
		t.Fatalf("header line = %d", r.Header.LineBytes)
	}
	for i, want := range ops {
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got.Addr != want.Addr || got.Kind != want.Kind || got.Barrier != want.Barrier || got.Async != want.Async {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
		if diff := got.GapCycles - want.GapCycles; diff > 0.1 || diff < -0.1 {
			t.Fatalf("record %d gap = %v, want %v", i, got.GapCycles, want.GapCycles)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{LineBytes: 64})
	w.Write(cpu.Op{Addr: 1, Kind: memsys.Load})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-3] // chop the last record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated record not detected: %v", err)
	}
}

func TestGeneratorAdapter(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{LineBytes: 64})
	for i := 0; i < 10; i++ {
		w.Write(cpu.Op{Addr: uint64(i) * 64, Kind: memsys.Load, Work: 1})
	}
	w.Flush()
	r, _ := NewReader(&buf)
	g := NewGenerator(r)
	n := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 || g.Err() != nil {
		t.Fatalf("replayed %d records, err=%v", n, g.Err())
	}
}

// TestRecordedWorkloadReplaysThroughSim records an ISx thread's trace and
// replays it through the simulator: the replay must move the same number
// of demand operations as the live generator.
func TestRecordedWorkloadReplaysThroughSim(t *testing.T) {
	p := platform.SKL()
	w, _ := workloads.ByName("ISx")
	cfg := w.Config(p, 1, 0.05)

	var buf bytes.Buffer
	tw, err := NewWriter(&buf, Header{LineBytes: p.LineBytes})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Record(tw, cfg.NewGen(0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("recorded nothing")
	}

	data := buf.Bytes()
	res, err := runner.Run(context.Background(), sim.Config{
		Plat:   p,
		Cores:  2,
		Window: cfg.Window,
		NewGen: func(core, thread int) cpu.Generator {
			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			return NewGenerator(r)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandLoads == 0 {
		t.Fatal("replay produced no demand loads")
	}
}

// Property: arbitrary op sequences survive the round trip within the
// format's quantization (gap 1/16 cycle, work 1/256).
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%64 + 1
		ops := make([]cpu.Op, n)
		for i := range ops {
			ops[i] = cpu.Op{
				Addr:      rng.Uint64(),
				Kind:      memsys.Kind(rng.Intn(4)),
				GapCycles: float64(rng.Intn(4000)) / 16,
				Work:      float64(rng.Intn(1024)) / 256,
				Barrier:   rng.Intn(2) == 0,
				Async:     rng.Intn(2) == 0,
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{LineBytes: 128})
		if err != nil {
			return false
		}
		for _, op := range ops {
			if err := w.Write(op); err != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range ops {
			got, err := r.Read()
			if err != nil {
				return false
			}
			if got.Addr != want.Addr || got.Kind != want.Kind ||
				got.Barrier != want.Barrier || got.Async != want.Async {
				return false
			}
			if d := got.GapCycles - want.GapCycles; d > 1.0/16+1e-9 || d < -1.0/16-1e-9 {
				return false
			}
			if d := got.Work - want.Work; d > 1.0/256+1e-9 || d < -1.0/256-1e-9 {
				return false
			}
		}
		_, err = r.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
