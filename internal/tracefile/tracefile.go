// Package tracefile defines a compact binary format for memory-operation
// traces and adapters between traces and the simulator: any workload model
// can be recorded to a file, and any recorded file — including traces of
// real applications converted into this format — can be replayed through
// the simulated node and analyzed with the Little's-Law pipeline.
//
// Format (little-endian):
//
//	magic   [8]byte  "LLTRACE1"
//	line    uint32   cache-line size the addresses assume
//	reserved uint32
//	records:
//	  kind  uint8    (memsys.Kind)
//	  flags uint8    bit0 = barrier, bit1 = async
//	  gap   uint16   compute gap in 1/16 cycles (saturating)
//	  work  uint16   work units ×256 (saturating)
//	  addr  uint64   byte address
package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
)

var magic = [8]byte{'L', 'L', 'T', 'R', 'A', 'C', 'E', '1'}

const recordSize = 1 + 1 + 2 + 2 + 8

// Header describes a trace stream.
type Header struct {
	LineBytes int
}

// Writer streams operations to a trace file.
type Writer struct {
	w     *bufio.Writer
	count int
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.LineBytes <= 0 || h.LineBytes&(h.LineBytes-1) != 0 {
		return nil, fmt.Errorf("tracefile: line size must be a positive power of two")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(h.LineBytes))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one operation.
func (t *Writer) Write(op cpu.Op) error {
	var rec [recordSize]byte
	rec[0] = byte(op.Kind)
	var flags byte
	if op.Barrier {
		flags |= 1
	}
	if op.Async {
		flags |= 2
	}
	rec[1] = flags
	binary.LittleEndian.PutUint16(rec[2:], saturate16(op.GapCycles*16))
	binary.LittleEndian.PutUint16(rec[4:], saturate16(op.Work*256))
	binary.LittleEndian.PutUint64(rec[6:], op.Addr)
	if _, err := t.w.Write(rec[:]); err != nil {
		return err
	}
	t.count++
	return nil
}

func saturate16(v float64) uint16 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v + 0.5)
}

// Count returns the number of records written.
func (t *Writer) Count() int { return t.count }

// Flush flushes buffered records.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader streams operations from a trace file.
type Reader struct {
	r      *bufio.Reader
	Header Header
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("tracefile: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("tracefile: not a trace file (magic %q)", m)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("tracefile: reading header: %w", err)
	}
	line := int(binary.LittleEndian.Uint32(hdr[0:]))
	if line <= 0 || line&(line-1) != 0 {
		return nil, fmt.Errorf("tracefile: invalid line size %d", line)
	}
	return &Reader{r: br, Header: Header{LineBytes: line}}, nil
}

// Read returns the next operation; io.EOF at the end.
func (t *Reader) Read() (cpu.Op, error) {
	var rec [recordSize]byte
	if _, err := io.ReadFull(t.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return cpu.Op{}, fmt.Errorf("tracefile: truncated record: %w", err)
		}
		return cpu.Op{}, err
	}
	// Only externally-visible kinds are valid on the wire; hardware
	// prefetches are generated inside the simulated hierarchy, never
	// presented to it.
	if rec[0] > byte(memsys.PrefetchL1) {
		return cpu.Op{}, fmt.Errorf("tracefile: invalid op kind %d", rec[0])
	}
	op := cpu.Op{
		Kind:      memsys.Kind(rec[0]),
		Barrier:   rec[1]&1 != 0,
		Async:     rec[1]&2 != 0,
		GapCycles: float64(binary.LittleEndian.Uint16(rec[2:])) / 16,
		Work:      float64(binary.LittleEndian.Uint16(rec[4:])) / 256,
		Addr:      binary.LittleEndian.Uint64(rec[6:]),
	}
	return op, nil
}

// Generator adapts the reader to cpu.Generator; read errors terminate the
// stream (and are reported via Err).
type Generator struct {
	r   *Reader
	err error
}

// NewGenerator wraps a Reader.
func NewGenerator(r *Reader) *Generator { return &Generator{r: r} }

// Next implements cpu.Generator.
func (g *Generator) Next() (cpu.Op, bool) {
	if g.err != nil {
		return cpu.Op{}, false
	}
	op, err := g.r.Read()
	if err != nil {
		if err != io.EOF {
			g.err = err
		}
		return cpu.Op{}, false
	}
	return op, true
}

// Err reports a non-EOF read failure, if any.
func (g *Generator) Err() error { return g.err }

// Record drains a generator into a writer, returning the record count.
func Record(w *Writer, gen cpu.Generator, maxOps int) (int, error) {
	n := 0
	for maxOps <= 0 || n < maxOps {
		op, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Write(op); err != nil {
			return n, err
		}
		n++
	}
	return n, w.Flush()
}
