package workloads

import (
	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// MiniGhost models the mg_stencil_3d27pt routine: a 27-point difference
// stencil over a 504×126 plane grid (paper problem, z scaled). Per output
// line the stencil needs nine neighbour rows; the three same-plane y
// neighbours always hit cache (three rows fit everywhere), so the
// generator emits the three z-plane reads plus the output store — the
// accesses whose hit/miss behaviour actually changes with blocking. A
// z-neighbour line is re-read once per plane sweep: untiled, that reuse
// distance is three full planes (~1.5 MiB), which misses the private L2;
// the tiled variant sweeps y-blocks so the reuse distance shrinks to the
// block (~0.3 MiB) and fits. The traffic reduction from tiling — and the
// SMT cache-contention effects of §IV-E — therefore emerge from the cache
// simulation rather than being scripted.
type MiniGhost struct {
	v Variant
}

// NewMiniGhost returns the base MiniGhost workload.
func NewMiniGhost() *MiniGhost { return &MiniGhost{} }

// Name implements Workload.
func (w *MiniGhost) Name() string { return "MiniGhost" }

// Routine implements Workload.
func (w *MiniGhost) Routine() string { return "mg_stencil_3d27pt" }

// RandomAccess implements Workload.
func (w *MiniGhost) RandomAccess() bool { return false }

// Variant implements Workload.
func (w *MiniGhost) Variant() Variant { return w.v }

// WithVariant implements Workload.
func (w *MiniGhost) WithVariant(v Variant) Workload { return &MiniGhost{v: v} }

// Capabilities implements Workload.
func (w *MiniGhost) Capabilities(p *platform.Platform, threads int) core.Capabilities {
	return core.Capabilities{
		Vectorizable:      true,
		AlreadyVectorized: true, // the compiler auto-vectorizes the x loop
		SMTWays:           p.SMTWays,
		CurrentThreads:    threads,
		Tileable:          true,
		StreamCount:       10, // nine read pencils plus the output stream
	}
}

const (
	// Paper grid: nx=504, ny=126 (one plane ≈ 508 KiB — the geometry that
	// makes untiled z-reuse miss a ≤1 MiB L2). The z extent per thread is
	// scaled down; the full 768 planes × 40 variables only add repetition.
	mgNX     = 504
	mgNY     = 126
	mgTileY  = 16 // y-block height in the tiled variant
	mgPlanes = 8  // z planes swept per thread at scale 1
)

// mgOpGapCycles is the calibrated arithmetic cost per emitted access (a
// quarter of the per-line stencil work: 27 FMAs × points-per-line over 8
// lanes, plus index math), set so that the untiled sweep's request rate
// over-subscribes the memory system — the regime in which tiling's traffic
// reduction converts directly into time (Table VIII). mgWindow is the
// per-thread demand window.
var mgOpGapCycles = map[string]float64{
	"SKL":   23,
	"KNL":   15,
	"A64FX": 30,
}

var mgWindow = map[string]int{
	"SKL":   11,
	"KNL":   11,
	"A64FX": 7,
}

// Config implements Workload.
func (w *MiniGhost) Config(p *platform.Platform, threadsPerCore int, scale float64) sim.Config {
	v := w.v
	lineBytes := uint64(p.LineBytes)
	pointsPerLine := p.LineBytes / 8
	gapPerOp := mgOpGapCycles[p.Name]
	if gapPerOp == 0 {
		gapPerOp = 24
	}
	window := mgWindow[p.Name]
	if window == 0 {
		window = 11
	}

	rowBytes := uint64(mgNX * 8)
	linesPerRow := int(rowBytes / lineBytes)
	planeBytes := rowBytes * mgNY
	planes := mgPlanes
	if scale < 1 {
		planes = int(float64(planes)*scale + 0.5)
		if planes < 6 {
			planes = 6
		}
	}

	// Co-resident hardware threads share the core's grid (the OpenMP
	// decomposition) and split it in y: private copies would quadruple the
	// cache pressure 4-way SMT sees and overstate the §IV-E contention.
	tileY := mgNY / threadsPerCore
	if v.Tiled {
		tileY = mgTileY
	}

	return sim.Config{
		Plat:           p,
		Fingerprint:    fingerprint("MiniGhost", w.v, scale),
		ThreadsPerCore: threadsPerCore,
		Window:         minInt(window, p.DemandWindow),
		NewGen: func(coreID, threadID int) cpu.Generator {
			inBase := uint64(coreID+1) << 34
			outBase := inBase + (1 << 32)
			addrOf := func(z, y, xl int) uint64 {
				return inBase + uint64(z)*planeBytes + uint64(y)*rowBytes + uint64(xl)*lineBytes
			}
			// Traversal: y-blocks (whole per-thread share when untiled) →
			// z → y within block → x lines → the 3 plane reads + 1 store.
			// SMT threads interleave blocks round-robin.
			yb, z, y, xl, k := threadID*tileY, 1, 0, 0, 0
			blockStep := threadsPerCore * tileY
			done := yb >= mgNY
			return NewFuncGen(func() (cpu.Op, bool) {
				if done {
					return cpu.Op{}, false
				}
				var op cpu.Op
				if k < 3 {
					op = cpu.Op{
						Addr:      addrOf(z+k-1, yb+y, xl),
						Kind:      memsys.Load,
						GapCycles: gapPerOp,
					}
				} else {
					op = cpu.Op{
						Addr:      outBase + uint64(z)*planeBytes + uint64(yb+y)*rowBytes + uint64(xl)*lineBytes,
						Kind:      memsys.Store,
						GapCycles: gapPerOp,
						Work:      float64(pointsPerLine),
					}
				}
				k++
				if k == 4 {
					k = 0
					xl++
					if xl == linesPerRow {
						xl = 0
						y++
						ylim := tileY
						if yb+ylim > mgNY {
							ylim = mgNY - yb
						}
						if y >= ylim {
							y = 0
							z++
							if z > planes-2 {
								z = 1
								yb += blockStep
								if yb >= mgNY {
									done = true
								}
							}
						}
					}
				}
				return op, true
			})
		},
	}
}
