package workloads

import (
	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// CoMD models the eamForce routine of the classical molecular-dynamics
// proxy (24³ box): almost pure computation over neighbour lists that stay
// cache-resident, with only a trickle of memory traffic — the
// compute-bound, near-zero-MLP case of Table VII. Vectorization needs a
// pragma on the next-to-innermost loop (§IV-D) and pays a modest factor;
// SMT pays repeatedly because the pipeline, not the memory system, is the
// bottleneck.
type CoMD struct {
	v Variant
}

// NewCoMD returns the base CoMD workload.
func NewCoMD() *CoMD { return &CoMD{} }

// Name implements Workload.
func (w *CoMD) Name() string { return "CoMD" }

// Routine implements Workload.
func (w *CoMD) Routine() string { return "eamForce" }

// RandomAccess implements Workload.
func (w *CoMD) RandomAccess() bool { return true }

// Variant implements Workload.
func (w *CoMD) Variant() Variant { return w.v }

// WithVariant implements Workload.
func (w *CoMD) WithVariant(v Variant) Workload { return &CoMD{v: v} }

// Capabilities implements Workload.
func (w *CoMD) Capabilities(p *platform.Platform, threads int) core.Capabilities {
	return core.Capabilities{
		Vectorizable:      true,
		AlreadyVectorized: w.v.Vectorized,
		SMTWays:           p.SMTWays,
		CurrentThreads:    threads,
		IrregularAccess:   true,
	}
}

const (
	comdFootprint = 1 << 26
	comdOps       = 1500
)

// comdMissGapCycles is the calibrated compute interval between cache
// misses in eamForce: the per-platform force-kernel cost per escaping
// memory access, matching the Table VII base bandwidths (3.19 GB/s SKL,
// 26.9 GB/s KNL, 10.75 GB/s A64FX). The KNL interval is far shorter in
// cycles because the box is split over 64 cores: each core's working set
// is smaller, and the 512 KiB L2 captures proportionally less of the
// neighbour shells per unit work.
var comdMissGapCycles = map[string]float64{
	"SKL":   1010,
	"KNL":   215,
	"A64FX": 2060,
}

// comdVectGain is the vectorization speedup (Table VII): limited by
// gather/scatter and conditionals, nowhere near the 8× lane count.
var comdVectGain = map[string]float64{
	"SKL":   1.40,
	"KNL":   1.35,
	"A64FX": 1.24,
}

// Config implements Workload.
func (w *CoMD) Config(p *platform.Platform, threadsPerCore int, scale float64) sim.Config {
	v := w.v
	ops := scaleOps(comdOps, scale)
	gap := comdMissGapCycles[p.Name]
	if gap == 0 {
		gap = 1000
	}
	if v.Vectorized {
		g := comdVectGain[p.Name]
		if g == 0 {
			g = 1.3
		}
		gap /= g
	}

	return sim.Config{
		Plat:           p,
		Fingerprint:    fingerprint("CoMD", w.v, scale),
		ThreadsPerCore: threadsPerCore,
		Window:         minInt(4, p.DemandWindow),
		NewGen: func(coreID, threadID int) cpu.Generator {
			rng := newRNG("comd", coreID, threadID)
			base := uint64(coreID*8+threadID+1) << 34
			emitted := 0
			return NewFuncGen(func() (cpu.Op, bool) {
				if emitted >= ops {
					return cpu.Op{}, false
				}
				emitted++
				// The rare neighbour-shell access that escapes the caches.
				addr := base + alignLine(rng.Uint64()%comdFootprint, p)
				return cpu.Op{Addr: addr, Kind: memsys.Load, GapCycles: gap, Work: 1}, true
			})
		},
	}
}
