package workloads

import (
	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// DGEMM is the §III-C worked example beyond Table II: dense matrix
// multiply, the workload whose optimization ladder runs through *both*
// traffic-reducing transforms — cache tiling, then register tiling
// (unroll-and-jam) — until the routine becomes FLOP-bound and the MSHRQ
// metric correctly reports that no memory optimization is left (§III-D's
// "GEMM becomes FLOP bound after prefetching, cache and register tiling").
//
// The model follows the classic traffic analysis: a naive i-j-k loop
// re-reads a B column line per multiply-add group; cache tiling reuses a
// B tile from the L2, cutting traffic by the tile factor; unroll-and-jam
// additionally holds a register block so the per-line arithmetic
// amortizes further and the loop approaches the core's FLOP ceiling.
type DGEMM struct {
	v Variant
}

// NewDGEMM returns the naive (untiled, unjammed) DGEMM workload.
func NewDGEMM() *DGEMM { return &DGEMM{} }

// Name implements Workload.
func (w *DGEMM) Name() string { return "DGEMM" }

// Routine implements Workload.
func (w *DGEMM) Routine() string { return "dgemm_kernel" }

// RandomAccess implements Workload.
func (w *DGEMM) RandomAccess() bool { return false }

// Variant implements Workload.
func (w *DGEMM) Variant() Variant { return w.v }

// WithVariant implements Workload.
func (w *DGEMM) WithVariant(v Variant) Workload { return &DGEMM{v: v} }

// Capabilities implements Workload.
func (w *DGEMM) Capabilities(p *platform.Platform, threads int) core.Capabilities {
	return core.Capabilities{
		Vectorizable:      true,
		AlreadyVectorized: true, // compilers vectorize the inner product
		SMTWays:           p.SMTWays,
		CurrentThreads:    threads,
		Tileable:          true,
		StreamCount:       3,
	}
}

const (
	// dgemmN is the (scaled) matrix dimension; the B panel is N²·8 B =
	// 2 MiB — beyond every private L2, so the naive sweep misses, while a
	// tileB-wide tile panel (256 KiB) fits and gets reused.
	dgemmN    = 512
	dgemmOps  = 30000 // line-events per thread at scale 1
	tileB     = 32    // cache-tile edge
	unrollReg = 4     // register-block rows held by unroll-and-jam
)

// Config implements Workload.
func (w *DGEMM) Config(p *platform.Platform, threadsPerCore int, scale float64) sim.Config {
	v := w.v
	ops := scaleOps(dgemmOps, scale)
	lineBytes := uint64(p.LineBytes)
	elemsPerLine := p.LineBytes / 8
	// Several passes over the tiled panel must fit in the op budget or
	// the reuse the tiling creates would never be observed.
	if minOps := 8 * tileB * dgemmN / elemsPerLine; ops < minOps {
		ops = minOps
	}

	// Arithmetic per touched B line: each B element feeds one FMA per
	// C-row in flight. Naive code keeps 1 row; unroll-and-jam holds
	// unrollReg rows in registers; vector width amortizes the issue cost.
	rowsInFlight := 1
	if v.UnrollJam {
		rowsInFlight = unrollReg
	}
	flopsPerLine := float64(2 * elemsPerLine * rowsInFlight)
	// Issue cost: FMA-throughput-limited at ~2 per cycle per lane group.
	gap := flopsPerLine / (2 * float64(p.VectorLanes64))
	if gap < 1 {
		gap = 1
	}

	// Cache behaviour: naive sweeps the full B panel per C row (reuse
	// distance ≈ N²·8 B, far beyond L2), so every B line misses. Tiling
	// walks tileB-wide panels that fit the L2 and get reused.
	panelLines := int(uint64(dgemmN) * uint64(dgemmN) / uint64(elemsPerLine)) // full B in lines
	if v.Tiled {
		panelLines = tileB * dgemmN / elemsPerLine // one B tile panel
	}

	return sim.Config{
		Plat:           p,
		Fingerprint:    fingerprint("DGEMM", w.v, scale),
		ThreadsPerCore: threadsPerCore,
		Window:         minInt(8, p.DemandWindow),
		NewGen: func(coreID, threadID int) cpu.Generator {
			bBase := uint64(coreID*8+threadID+1) << 34
			aBase := bBase + (1 << 32)
			emitted := 0
			pos := 0
			aPos := uint64(0)
			return NewFuncGen(func() (cpu.Op, bool) {
				if emitted >= ops {
					return cpu.Op{}, false
				}
				emitted++
				// Walk the (possibly tiled) B panel cyclically; tiled
				// panels fit the L2 and hit after the first pass.
				addr := bBase + uint64(pos)*lineBytes
				pos++
				if pos >= panelLines {
					pos = 0
				}
				// The A row stream trickles alongside (one line per
				// elemsPerLine B lines — A is reused across the row).
				if emitted%(elemsPerLine*rowsInFlight) == 0 {
					aPos += lineBytes
					return cpu.Op{Addr: aBase + aPos, Kind: memsys.Load, GapCycles: gap, Work: flopsPerLine}, true
				}
				return cpu.Op{Addr: addr, Kind: memsys.Load, GapCycles: gap, Work: flopsPerLine}, true
			})
		},
	}
}
