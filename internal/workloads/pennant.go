package workloads

import (
	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// PENNANT models the setCornerDiv routine of the unstructured-mesh physics
// miniapp: one long loop whose body gathers through index arrays into
// several large mesh arrays and performs heavy floating-point work
// (divides, square roots). The compiler cannot prove the pointers
// alias-free, so the base variant is scalar and dependency-limited — the
// low-MLP case of Table VI; forcing vectorization (pragma/restrict, §IV-C)
// is the recipe's headline win.
type PENNANT struct {
	v Variant
}

// NewPENNANT returns the base PENNANT workload.
func NewPENNANT() *PENNANT { return &PENNANT{} }

// Name implements Workload.
func (w *PENNANT) Name() string { return "PENNANT" }

// Routine implements Workload.
func (w *PENNANT) Routine() string { return "setCornerDiv" }

// RandomAccess implements Workload.
func (w *PENNANT) RandomAccess() bool { return true }

// Variant implements Workload.
func (w *PENNANT) Variant() Variant { return w.v }

// WithVariant implements Workload.
func (w *PENNANT) WithVariant(v Variant) Workload { return &PENNANT{v: v} }

// Capabilities implements Workload.
func (w *PENNANT) Capabilities(p *platform.Platform, threads int) core.Capabilities {
	return core.Capabilities{
		Vectorizable:      true, // safe but needs forcing (restrict/pragma)
		AlreadyVectorized: w.v.Vectorized,
		SMTWays:           p.SMTWays,
		CurrentThreads:    threads,
		IrregularAccess:   true,
	}
}

const (
	// pennantMeshBytes is the per-thread share of the corner/zone/point
	// arrays — far beyond cache, as with the paper's 960×1080 mesh.
	pennantMeshBytes = 1 << 27
	pennantOps       = 6000
)

// Config implements Workload.
func (w *PENNANT) Config(p *platform.Platform, threadsPerCore int, scale float64) sim.Config {
	v := w.v
	ops := scaleOps(pennantOps, scale)

	// Scalar: ~5 independent gathers per loop iteration, ~425 cycles of
	// serial arithmetic (divides/sqrts) between iterations. Vectorized:
	// adjacent corners' gathers coalesce into fewer distinct lines (3 on
	// 64 B machines, 2 with A64FX's 256 B lines) and the arithmetic chain
	// shortens by the platform's effective vector gain.
	gathers := 5
	gap := 425.0
	gapScale := p.ScalarIssuePenalty
	window := minInt(6, p.DemandWindow)
	if v.Vectorized {
		if p.LineBytes >= 256 {
			gathers = 2
		} else {
			gathers = 3
		}
		switch {
		case p.ScalarIssuePenalty > 2: // A64FX: 3.7× from SVE
			gap = 425.0 / 3.7 * p.ScalarIssuePenalty
			gapScale = 1
		case p.DemandWindow <= 12: // KNL: weak OoO gains most, 3.2×
			gap = 425.0 / 3.2
			gapScale = 1
		default: // SKL: 2×
			gap = 425.0 / 2.0
			gapScale = 1
		}
		window = minInt(10, p.DemandWindow)
	}
	perGatherGap := gap / float64(gathers)

	// KNL's barrel-style issue overlaps gather-latency-bound threads almost
	// for free; calibrated to the Table VI SMT rows (2-way HT scales the
	// bandwidth 1.79× there, against CoMD's compute-bound 1.52×).
	smtShare := 0.0
	if p.Name == "KNL" {
		smtShare = 0.65
	}

	return sim.Config{
		Plat:           p,
		Fingerprint:    fingerprint("PENNANT", w.v, scale),
		ThreadsPerCore: threadsPerCore,
		Window:         window,
		GapScale:       gapScale,
		SMTShare:       smtShare,
		NewGen: func(coreID, threadID int) cpu.Generator {
			rng := newRNG("pennant", coreID, threadID)
			base := uint64(coreID*8+threadID+1) << 34
			emitted := 0
			return NewFuncGen(func() (cpu.Op, bool) {
				if emitted >= ops*gathers {
					return cpu.Op{}, false
				}
				emitted++
				addr := base + alignLine(rng.Uint64()%pennantMeshBytes, p)
				return cpu.Op{
					Addr:      addr,
					Kind:      memsys.Load,
					GapCycles: perGatherGap,
					Work:      1.0 / float64(gathers),
				}, true
			})
		},
	}
}
