package workloads

import (
	"context"
	"testing"

	"littleslaw/internal/cpu"
	"littleslaw/internal/platform"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
)

func TestAllSixWorkloads(t *testing.T) {
	ws := All()
	if len(ws) != 6 {
		t.Fatalf("Table II lists 6 applications, got %d", len(ws))
	}
	wantRoutines := map[string]string{
		"ISx":       "count_local_keys",
		"HPCG":      "ComputeSPMV_ref",
		"PENNANT":   "setCornerDiv",
		"CoMD":      "eamForce",
		"MiniGhost": "mg_stencil_3d27pt",
		"SNAP":      "dim3_sweep",
	}
	for _, w := range ws {
		if got := w.Routine(); got != wantRoutines[w.Name()] {
			t.Errorf("%s routine = %q, want %q (Table II)", w.Name(), got, wantRoutines[w.Name()])
		}
	}
	if _, ok := ByName("HPCG"); !ok {
		t.Fatal("ByName(HPCG) failed")
	}
	if _, ok := ByName("LINPACK"); ok {
		t.Fatal("unknown workload resolved")
	}
}

func TestAccessPatternClassification(t *testing.T) {
	random := map[string]bool{
		"ISx": true, "PENNANT": true, "CoMD": true,
		"HPCG": false, "MiniGhost": false, "SNAP": false,
	}
	for _, w := range All() {
		if w.RandomAccess() != random[w.Name()] {
			t.Errorf("%s RandomAccess = %v, want %v", w.Name(), w.RandomAccess(), random[w.Name()])
		}
	}
}

func TestVariantLabels(t *testing.T) {
	cases := []struct {
		v       Variant
		threads int
		want    string
	}{
		{Variant{}, 1, "base"},
		{Variant{Vectorized: true}, 1, "+ vect"},
		{Variant{Vectorized: true}, 2, "+ vect, 2-ht"},
		{Variant{Vectorized: true, SWPrefetchL2: true}, 2, "+ vect, 2-ht, l2-pref"},
		{Variant{Tiled: true}, 4, "+ tiling, 4-ht"},
		{Variant{NoFuse: true}, 1, "+ nofuse"},
	}
	for _, c := range cases {
		if got := c.v.Label(c.threads); got != c.want {
			t.Errorf("Label(%+v, %d) = %q, want %q", c.v, c.threads, got, c.want)
		}
	}
}

func TestWithVariantIsCopy(t *testing.T) {
	for _, w := range All() {
		v := w.Variant()
		v.Vectorized = true
		w2 := w.WithVariant(v)
		if w.Variant().Vectorized {
			t.Errorf("%s: WithVariant mutated the receiver", w.Name())
		}
		if !w2.Variant().Vectorized {
			t.Errorf("%s: WithVariant lost the new state", w.Name())
		}
		if w2.Name() != w.Name() {
			t.Errorf("%s: name changed", w.Name())
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	p := platform.SKL()
	for _, w := range All() {
		cfg1 := w.Config(p, 1, 0.05)
		cfg2 := w.Config(p, 1, 0.05)
		g1 := cfg1.NewGen(3, 0)
		g2 := cfg2.NewGen(3, 0)
		for i := 0; i < 500; i++ {
			op1, ok1 := g1.Next()
			op2, ok2 := g2.Next()
			if ok1 != ok2 || op1 != op2 {
				t.Errorf("%s: generators diverge at op %d", w.Name(), i)
				break
			}
			if !ok1 {
				break
			}
		}
	}
}

func TestGeneratorsDisjointAcrossThreads(t *testing.T) {
	p := platform.SKL()
	for _, w := range All() {
		cfg := w.Config(p, 1, 0.05)
		perThread := make([]map[uint64]bool, 0, 3)
		for _, id := range [][2]int{{0, 0}, {1, 0}, {5, 0}} {
			g := cfg.NewGen(id[0], id[1])
			set := map[uint64]bool{}
			for i := 0; i < 200; i++ {
				op, ok := g.Next()
				if !ok {
					break
				}
				set[op.Addr] = true
			}
			perThread = append(perThread, set)
		}
		// Intra-thread reuse is fine; arenas across threads must not overlap.
		for i := 0; i < len(perThread); i++ {
			for j := i + 1; j < len(perThread); j++ {
				for a := range perThread[i] {
					if perThread[j][a] {
						t.Errorf("%s: address %#x shared across threads %d and %d", w.Name(), a, i, j)
						break
					}
				}
			}
		}
	}
}

func TestCapabilitiesReflectVariantAndPlatform(t *testing.T) {
	p := platform.KNL()
	isx, _ := ByName("ISx")
	caps := isx.Capabilities(p, 2)
	if !caps.Vectorizable || caps.AlreadyVectorized {
		t.Error("base ISx must be vectorizable and not yet vectorized")
	}
	if caps.SMTWays != 4 || caps.CurrentThreads != 2 {
		t.Errorf("SMT caps = %d/%d, want 4/2", caps.SMTWays, caps.CurrentThreads)
	}
	vect := isx.WithVariant(Variant{Vectorized: true})
	if !vect.Capabilities(p, 1).AlreadyVectorized {
		t.Error("vectorized variant not reflected in capabilities")
	}
	mg, _ := ByName("MiniGhost")
	if !mg.Capabilities(p, 1).Tileable {
		t.Error("MiniGhost must be tileable")
	}
	snap, _ := ByName("SNAP")
	sc := snap.Capabilities(p, 1)
	if !sc.ShortLoops || !sc.Fusable {
		t.Error("SNAP must have short loops and be fusable")
	}
}

// runSmall runs a workload on a reduced node for qualitative assertions.
func runSmall(t *testing.T, w Workload, p *platform.Platform, threads int) *sim.Result {
	t.Helper()
	cfg := w.Config(p, threads, 0.08)
	cfg.Cores = 8
	res, err := runner.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("%s on %s: %v", w.Name(), p.Name, err)
	}
	return res
}

func TestISxSaturatesL1MSHRs(t *testing.T) {
	p := platform.SKL()
	w, _ := ByName("ISx")
	res := runSmall(t, w, p, 1)
	if res.TrueL1Occ < 0.8*float64(p.L1.MSHRs) {
		t.Errorf("ISx L1 occupancy = %.2f, want near %d", res.TrueL1Occ, p.L1.MSHRs)
	}
	if res.PrefetchedReadFraction > 0.25 {
		t.Errorf("ISx prefetched fraction = %.2f, want low (random access)", res.PrefetchedReadFraction)
	}
}

func TestISxPrefetchShiftsBottleneckToL2(t *testing.T) {
	p := platform.KNL()
	w, _ := ByName("ISx")
	base := runSmall(t, w, p, 1)
	pref := runSmall(t, w.WithVariant(Variant{SWPrefetchL2: true}), p, 1)
	if pref.TrueL2Occ <= base.TrueL2Occ {
		t.Errorf("L2 occupancy did not rise with prefetching: %.2f vs %.2f", pref.TrueL2Occ, base.TrueL2Occ)
	}
	if pref.Throughput <= base.Throughput {
		t.Errorf("prefetching did not speed ISx up: %.3g vs %.3g", pref.Throughput, base.Throughput)
	}
	// §IV-A's simulator verification: before prefetching the L1 MSHR file
	// is pinned near capacity; after, the lines live in L2 so the L1
	// residency collapses.
	if base.TrueL1Occ < 0.7*float64(p.L1.MSHRs) {
		t.Errorf("base L1 occupancy = %.2f, want near capacity %d", base.TrueL1Occ, p.L1.MSHRs)
	}
	if pref.TrueL1Occ > 0.6*base.TrueL1Occ {
		t.Errorf("prefetching left L1 occupancy at %.2f (base %.2f); the bottleneck should shift to L2",
			pref.TrueL1Occ, base.TrueL1Occ)
	}
}

func TestHPCGIsPrefetchFriendly(t *testing.T) {
	p := platform.SKL()
	w, _ := ByName("HPCG")
	res := runSmall(t, w, p, 1)
	if res.PrefetchedReadFraction < 0.5 {
		t.Errorf("HPCG prefetched fraction = %.2f, want streaming-dominated", res.PrefetchedReadFraction)
	}
}

func TestPENNANTVectorizationLifetsMLPAndThroughput(t *testing.T) {
	p := platform.KNL()
	w, _ := ByName("PENNANT")
	base := runSmall(t, w, p, 1)
	vect := runSmall(t, w.WithVariant(Variant{Vectorized: true}), p, 1)
	if vect.Throughput < 2*base.Throughput {
		t.Errorf("PENNANT vectorization speedup = %.2f, want large (paper: 5.76x)",
			vect.Throughput/base.Throughput)
	}
	if vect.TrueL1Occ <= base.TrueL1Occ {
		t.Errorf("vectorization did not raise MLP: %.2f vs %.2f", vect.TrueL1Occ, base.TrueL1Occ)
	}
}

func TestCoMDIsComputeBound(t *testing.T) {
	p := platform.SKL()
	w, _ := ByName("CoMD")
	res := runSmall(t, w, p, 1)
	if res.TrueL1Occ > 1.0 {
		t.Errorf("CoMD occupancy = %.2f, want ≈0.2 (compute bound)", res.TrueL1Occ)
	}
}

func TestMiniGhostTilingCutsTraffic(t *testing.T) {
	p := platform.KNL()
	w, _ := ByName("MiniGhost")
	base := runSmall(t, w, p, 1)
	tiled := runSmall(t, w.WithVariant(Variant{Tiled: true}), p, 1)
	// Traffic per unit of work must drop substantially (the CrayPat
	// observation in §IV-E).
	baseTPW := base.TotalGBs / base.Throughput
	tiledTPW := tiled.TotalGBs / tiled.Throughput
	if tiledTPW > 0.85*baseTPW {
		t.Errorf("tiling cut traffic/work only %.2fx", baseTPW/tiledTPW)
	}
	if tiled.Throughput < base.Throughput {
		t.Errorf("tiling slowed MiniGhost down: %.3g vs %.3g", tiled.Throughput, base.Throughput)
	}
}

func TestSNAPPrefetchAndFusion(t *testing.T) {
	w, _ := ByName("SNAP")
	knl := platform.KNL()
	base := runSmall(t, w, knl, 1)
	pref := runSmall(t, w.WithVariant(Variant{SWPrefetchL2: true}), knl, 1)
	if pref.Throughput <= base.Throughput {
		t.Errorf("SNAP prefetching did not help: %.3g vs %.3g", pref.Throughput, base.Throughput)
	}

	// §IV-F: disabling fusion helps only on the weak-store-forwarding core.
	a64 := platform.A64FX()
	fused := runSmall(t, w, a64, 1)
	nofuse := runSmall(t, w.WithVariant(Variant{NoFuse: true}), a64, 1)
	gain := nofuse.Throughput / fused.Throughput
	if gain < 1.1 {
		t.Errorf("A64FX nofuse gain = %.2f, want ≈1.25 (paper: ~20%% whole-app)", gain)
	}
	sklFused := runSmall(t, w, knl, 1)
	sklNofuse := runSmall(t, w.WithVariant(Variant{NoFuse: true}), knl, 1)
	if g := sklNofuse.Throughput / sklFused.Throughput; g > 1.05 {
		t.Errorf("KNL nofuse gain = %.2f, want none (pathology is A64FX-specific)", g)
	}
}

func TestScaleControlsWork(t *testing.T) {
	p := platform.SKL()
	w, _ := ByName("CoMD")
	small := w.Config(p, 1, 0.05)
	large := w.Config(p, 1, 1.0)
	count := func(g cpu.Generator) int {
		n := 0
		for {
			if _, ok := g.Next(); !ok {
				return n
			}
			n++
		}
	}
	ns, nl := count(small.NewGen(0, 0)), count(large.NewGen(0, 0))
	if nl <= ns {
		t.Fatalf("scale had no effect: %d vs %d ops", ns, nl)
	}
}

// TestDGEMMLadder: the §III-C worked example — cache tiling slashes
// memory traffic, unroll-and-jam then lifts the FLOP rate toward the
// core's ceiling while the MSHR occupancy stays low (the unroll-and-jam
// precondition the recipe keys on).
func TestDGEMMLadder(t *testing.T) {
	p := platform.SKL()
	w, _ := ByName("DGEMM")
	if w.Name() != "DGEMM" || w.Routine() != "dgemm_kernel" {
		t.Fatal("DGEMM identity wrong")
	}

	naive := runSmall(t, w, p, 1)
	tiled := runSmall(t, w.WithVariant(Variant{Tiled: true}), p, 1)
	jammed := runSmall(t, w.WithVariant(Variant{Tiled: true, UnrollJam: true}), p, 1)

	// Tiling captures B reuse: traffic per flop collapses.
	naiveTPW := naive.TotalGBs / naive.Throughput
	tiledTPW := tiled.TotalGBs / tiled.Throughput
	if tiledTPW > 0.3*naiveTPW {
		t.Errorf("tiling cut traffic/flop only %.1fx", naiveTPW/tiledTPW)
	}
	// Unroll-and-jam raises the FLOP rate further.
	if jammed.Throughput < 1.5*tiled.Throughput {
		t.Errorf("unroll-and-jam gain = %.2fx, want substantial", jammed.Throughput/tiled.Throughput)
	}
	// The fully optimized kernel is flop-bound: occupancy well below the
	// L2 MSHR file (the unroll-and-jam precondition, §III-C).
	if jammed.TrueL2Occ > 0.4*float64(p.L2.MSHRs) {
		t.Errorf("optimized DGEMM occupancy = %.2f of %d, want low (flop bound)",
			jammed.TrueL2Occ, p.L2.MSHRs)
	}
	// And its FLOP rate approaches a meaningful share of the 8-core slice
	// of peak (runSmall uses 8 of 24 cores).
	peak := 8.0 / 24.0 * 1612.8e9
	if jammed.Throughput < 0.2*peak {
		t.Errorf("optimized DGEMM at %.1f%% of peak flops; want within reach of the roof",
			100*jammed.Throughput/peak)
	}
}

func TestExtrasNotInTableII(t *testing.T) {
	for _, w := range All() {
		if w.Name() == "DGEMM" {
			t.Fatal("DGEMM must not appear in the Table II set")
		}
	}
	if len(Extras()) != 1 {
		t.Fatalf("extras = %d", len(Extras()))
	}
}
