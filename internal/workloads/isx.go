package workloads

import (
	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// ISx models the count_local_keys routine of the ISx scalable integer
// sort (Table II: 25,165,824 keys per PE): a sequential sweep over the key
// array combined with one random-line table access per key over a
// footprint far larger than the caches — the random-access pattern that
// pins the L1 MSHR file on every platform (Table IV). The paper's
// bandwidth/occupancy pairs imply the traffic is read-dominated, so the
// table access is modelled as a load.
//
// The optimization ladder matches §IV-A: vectorization widens the
// independent-miss window slightly; L2 software prefetching issues the
// upcoming random lines into the L2 MSHR file ahead of the demand
// accesses, shifting the bottleneck from the small L1 file to the larger
// L2 one and converting MSHR-stall pacing into pure compute pacing.
type ISx struct {
	v Variant
}

// NewISx returns the base (unoptimized) ISx workload.
func NewISx() *ISx { return &ISx{} }

// Name implements Workload.
func (w *ISx) Name() string { return "ISx" }

// Routine implements Workload.
func (w *ISx) Routine() string { return "count_local_keys" }

// RandomAccess implements Workload.
func (w *ISx) RandomAccess() bool { return true }

// Variant implements Workload.
func (w *ISx) Variant() Variant { return w.v }

// WithVariant implements Workload.
func (w *ISx) WithVariant(v Variant) Workload { return &ISx{v: v} }

// Capabilities implements Workload.
func (w *ISx) Capabilities(p *platform.Platform, threads int) core.Capabilities {
	return core.Capabilities{
		Vectorizable:      true,
		AlreadyVectorized: w.v.Vectorized,
		SMTWays:           p.SMTWays,
		CurrentThreads:    threads,
		IrregularAccess:   true,
	}
}

const (
	// isxTableBytes is the randomly-accessed footprint per hardware
	// thread — scaled down from the ~100 MB/PE of the paper's problem
	// size but far beyond any cache, which is all the pattern requires.
	isxTableBytes = 1 << 27
	isxBaseOps    = 20000
)

// isxIterGapCycles is the per-key loop body cost (index arithmetic plus
// the bucket update) when not stalled on MSHRs, calibrated against the
// Table IV post-prefetch bandwidths, where compute pacing is exposed.
// A64FX's scalar loop takes more cycles per key.
var isxIterGapCycles = map[string]float64{
	"SKL":   16,
	"KNL":   25,
	"A64FX": 28,
}

// isxWindow is the independent-miss window of the counting loop: compiler
// unrolling exposes about ten independent table reads in flight;
// vectorization (8-lane gathers) widens it somewhat. Calibrated against
// the Table IV occupancy ladder (10.23 → 10.66 → 11.6 on KNL).
func (w *ISx) isxWindow(p *platform.Platform) int {
	win := 10
	if w.v.Vectorized {
		win = 11
	}
	return minInt(win, p.DemandWindow)
}

// Config implements Workload.
func (w *ISx) Config(p *platform.Platform, threadsPerCore int, scale float64) sim.Config {
	v := w.v
	ops := scaleOps(isxBaseOps, scale)
	keysPerLine := p.LineBytes / 4 // 4-byte keys stream
	gapIter := isxIterGapCycles[p.Name]
	if gapIter == 0 {
		gapIter = 16
	}
	if v.Vectorized {
		gapIter *= 0.94
	}
	dist := v.PrefetchDistance
	if dist == 0 {
		dist = 24
	}

	prefKind := memsys.PrefetchL2
	swPref := v.SWPrefetchL2
	if v.SWPrefetchL1 {
		prefKind = memsys.PrefetchL1
		swPref = true
	}

	return sim.Config{
		Plat:           p,
		Fingerprint:    fingerprint("ISx", w.v, scale),
		ThreadsPerCore: threadsPerCore,
		Window:         w.isxWindow(p),
		NewGen: func(coreID, threadID int) cpu.Generator {
			rng := newRNG("isx", coreID, threadID)
			// Private arenas: the streamed key array and the randomly
			// accessed table, disjoint per hardware thread as in the
			// paper's MPI decomposition.
			keyBase := uint64(coreID*8+threadID+1) << 34
			tabBase := keyBase + (1 << 32)
			// Lookahead ring of upcoming random targets, so the prefetch
			// variant fetches exactly the lines demand will touch.
			ring := make([]uint64, dist)
			for i := range ring {
				ring[i] = tabBase + alignLine(rng.Uint64()%isxTableBytes, p)
			}
			pos := 0
			emitted := 0
			keyCount := 0
			prefAddr := uint64(0)
			return NewFuncGen(func() (cpu.Op, bool) {
				if emitted >= ops {
					return cpu.Op{}, false
				}
				// The prefetch variant splits the loop body between the
				// prefetch issue and the demand access.
				if swPref && prefAddr != 0 {
					a := prefAddr
					prefAddr = 0
					return cpu.Op{
						Addr:      a,
						Kind:      prefKind,
						GapCycles: gapIter / 2,
					}, true
				}
				if keyCount%keysPerLine == 0 && keyCount > 0 {
					keyCount++
					return cpu.Op{
						Addr:      keyBase + uint64(keyCount/keysPerLine)*uint64(p.LineBytes),
						Kind:      memsys.Load,
						GapCycles: 2,
					}, true
				}
				keyCount++
				emitted++
				target := ring[pos]
				// Refill the slot with the key dist iterations ahead; the
				// prefetch variant fetches it into L2 now.
				ring[pos] = tabBase + alignLine(rng.Uint64()%isxTableBytes, p)
				if swPref {
					prefAddr = ring[pos]
				}
				pos = (pos + 1) % dist
				gap := gapIter
				if swPref {
					gap = gapIter / 2
				}
				return cpu.Op{
					Addr:      target,
					Kind:      memsys.Load,
					GapCycles: gap,
					Work:      1,
				}, true
			})
		},
	}
}
