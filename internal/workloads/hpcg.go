package workloads

import (
	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// HPCG models the ComputeSPMV_ref routine (sparse matrix–vector multiply,
// 40³ local domain): long unit-stride streams over the matrix values and
// column indices — ideal hardware-prefetcher food, so the L2 MSHR file is
// the binding structure (Table V) — plus gathers into the x vector, whose
// ~512 KiB per-rank footprint mostly lives in the L2, and a streamed y
// store. Vectorization (AVX-512/SVE gather support, §IV-B) speeds the
// per-row arithmetic.
type HPCG struct {
	v Variant
}

// NewHPCG returns the base HPCG workload.
func NewHPCG() *HPCG { return &HPCG{} }

// Name implements Workload.
func (w *HPCG) Name() string { return "HPCG" }

// Routine implements Workload.
func (w *HPCG) Routine() string { return "ComputeSPMV_ref" }

// RandomAccess implements Workload.
func (w *HPCG) RandomAccess() bool { return false }

// Variant implements Workload.
func (w *HPCG) Variant() Variant { return w.v }

// WithVariant implements Workload.
func (w *HPCG) WithVariant(v Variant) Workload { return &HPCG{v: v} }

// Capabilities implements Workload.
func (w *HPCG) Capabilities(p *platform.Platform, threads int) core.Capabilities {
	return core.Capabilities{
		Vectorizable:      true,
		AlreadyVectorized: w.v.Vectorized,
		SMTWays:           p.SMTWays,
		CurrentThreads:    threads,
		StreamCount:       4, // vals, indices, y, and the x gather walk
	}
}

const (
	// hpcgXBytes is the x-vector footprint per rank (40³ × 8 B in the
	// paper; sized to sit comfortably inside every platform's L2 so the
	// gathers mostly hit, as they do in the real code).
	hpcgXBytes = 256 << 10
	hpcgOps    = 24000
)

// hpcgScalarGap and hpcgVectGap are the calibrated SpMV arithmetic cost in
// cycles per 64 bytes of matrix values (scaled by line size), matching the
// Table V base and vectorized bandwidths. A64FX's scalar indexed loop runs
// leaner per byte; its SVE gathers gain more.
// The HBM3E entries model the §IV-G hypothetical: an A64FX-class core
// with enough SpMV throughput to press its L2 MSHR file against a
// 2.4 TB/s memory.
var (
	hpcgScalarGap = map[string]float64{"SKL": 44, "KNL": 44, "A64FX": 31, "HBM3E": 8}
	hpcgVectGap   = map[string]float64{"SKL": 36.6, "KNL": 36.6, "A64FX": 20, "HBM3E": 5}
)

// Config implements Workload.
func (w *HPCG) Config(p *platform.Platform, threadsPerCore int, scale float64) sim.Config {
	v := w.v
	ops := scaleOps(hpcgOps, scale)
	lineBytes := uint64(p.LineBytes)

	// Per matrix-line iteration: one vals-line load, an indices-line load
	// every other iteration (4-byte indices, half the volume), an x gather
	// with stencil locality, and a y-store line every 8 iterations.
	gaps := hpcgScalarGap
	if v.Vectorized {
		gaps = hpcgVectGap
	}
	gap := gaps[p.Name]
	if gap == 0 {
		gap = 44
	}
	gap *= float64(p.LineBytes) / 64

	return sim.Config{
		Plat:           p,
		Fingerprint:    fingerprint("HPCG", w.v, scale),
		ThreadsPerCore: threadsPerCore,
		Window:         minInt(8, p.DemandWindow),
		NewGen: func(coreID, threadID int) cpu.Generator {
			rng := newRNG("hpcg", coreID, threadID)
			base := uint64(coreID*8+threadID+1) << 34
			valsNext := base
			idxNext := base + (1 << 32)
			yNext := base + (2 << 32)
			xBase := base + (3 << 32)
			iter := 0
			emitted := 0
			phase := 0
			rowPos := uint64(0)
			return NewFuncGen(func() (cpu.Op, bool) {
				if emitted >= ops {
					return cpu.Op{}, false
				}
				switch phase {
				case 0: // matrix values stream — the dominant traffic
					phase = 1
					iter++
					emitted++
					a := valsNext
					valsNext += lineBytes
					return cpu.Op{Addr: a, Kind: memsys.Load, GapCycles: gap, Work: 1}, true
				case 1: // column indices stream, half the byte volume
					phase = 2
					if iter%2 == 0 {
						a := idxNext
						idxNext += lineBytes
						return cpu.Op{Addr: a, Kind: memsys.Load, GapCycles: 2}, true
					}
					fallthrough
				case 2: // x gather: stencil locality inside the 512 KiB vector
					phase = 3
					rowPos = (rowPos + 8) % hpcgXBytes
					off := (rowPos + uint64(rng.Intn(2048))) % hpcgXBytes
					return cpu.Op{Addr: xBase + alignLine(off, p), Kind: memsys.Load, GapCycles: 2}, true
				default: // y store line every 8 iterations (store buffer)
					phase = 0
					if iter%8 == 0 {
						a := yNext
						yNext += lineBytes
						return cpu.Op{Addr: a, Kind: memsys.Store, GapCycles: 2, Async: true}, true
					}
					return cpu.Op{Addr: xBase + alignLine(rowPos, p), Kind: memsys.Load, GapCycles: 1}, true
				}
			})
		},
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
