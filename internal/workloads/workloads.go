// Package workloads models the memory behaviour of the six HPC proxy
// applications the paper evaluates (Table II): ISx, HPCG, PENNANT, CoMD,
// MiniGhost and SNAP — each reduced to its dominant routine.
//
// A workload is a generator of line-granular memory operations plus the
// issue-side parameters (demand window, compute gaps) that determine how
// much MLP the routine exposes. Optimization variants (vectorized, tiled,
// software-prefetched, fused) rewrite those parameters and the emitted
// access stream the way the corresponding compiler transformation rewrites
// the loop. Cache hits, prefetcher behaviour, MSHR occupancy and DRAM
// traffic all emerge from simulating the stream against internal/memsys.
//
// Issue-side parameters are calibrated per workload so that the simulated
// bandwidths and occupancies land near the paper's Tables IV–IX; the
// memory system itself is calibrated only once, against the X-Mem curves
// (see internal/xmem).
package workloads

import (
	"fmt"
	"math/rand"

	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// fingerprint renders the generator identity a workload Config declares
// for the runner cache: the workload, its full variant state and the work
// scale determine the emitted operation stream (the platform and the
// scalar sim fields are keyed separately by the runner).
func fingerprint(name string, v Variant, scale float64) string {
	return fmt.Sprintf("workloads/%s|%+v|scale=%g", name, v, scale)
}

// Variant selects the optimization state of a workload, mirroring the
// Source column of Tables IV–IX.
type Variant struct {
	// Vectorized: the key loop compiled with (possibly forced) vectorization.
	Vectorized bool
	// SWPrefetchL2: user-directed software prefetching into the L2.
	SWPrefetchL2 bool
	// SWPrefetchL1: user-directed software prefetching into the L1 — the
	// wrong level for random-access routines, since each prefetch occupies
	// the very L1 MSHR the demand loads are starved of (§III-C).
	SWPrefetchL1 bool
	// PrefetchDistance in iterations (0 = workload default).
	PrefetchDistance int
	// Tiled: loop tiling applied (MiniGhost, DGEMM).
	Tiled bool
	// UnrollJam: register tiling applied (DGEMM, §III-C).
	UnrollJam bool
	// NoFuse: compiler loop fusion disabled (SNAP on A64FX, §IV-F).
	NoFuse bool
}

// Label renders the variant the way the tables' Source column does.
func (v Variant) Label(threads int) string {
	s := "base"
	mods := ""
	if v.Vectorized {
		mods += ", vect"
	}
	if v.Tiled {
		mods += ", tiling"
	}
	if v.UnrollJam {
		mods += ", unroll-jam"
	}
	if threads >= 2 {
		switch threads {
		case 2:
			mods += ", 2-ht"
		case 4:
			mods += ", 4-ht"
		}
	}
	if v.SWPrefetchL2 {
		mods += ", l2-pref"
	}
	if v.SWPrefetchL1 {
		mods += ", l1-pref"
	}
	if v.NoFuse {
		mods += ", nofuse"
	}
	if mods != "" {
		return "+" + mods[1:]
	}
	return s
}

// Workload is one application routine from Table II.
type Workload interface {
	// Name is the application ("ISx").
	Name() string
	// Routine is the dominant routine analyzed ("count_local_keys").
	Routine() string
	// RandomAccess reports whether irregular accesses dominate (the
	// recipe's L1-vs-L2 classification input).
	RandomAccess() bool
	// Capabilities describes the routine for the recipe.
	Capabilities(p *platform.Platform, threadsPerCore int) core.Capabilities
	// Variant returns the current optimization state.
	Variant() Variant
	// WithVariant returns a copy at a different optimization state.
	WithVariant(v Variant) Workload
	// Config builds the node-simulation configuration. scale multiplies
	// the per-thread operation budget (1.0 = benchmark size; tests use
	// smaller values).
	Config(p *platform.Platform, threadsPerCore int, scale float64) sim.Config
}

// All returns one instance of each of the six workloads, in Table II order.
func All() []Workload {
	return []Workload{NewISx(), NewHPCG(), NewPENNANT(), NewCoMD(), NewMiniGhost(), NewSNAP()}
}

// Extras returns workloads beyond Table II (currently DGEMM, the §III-C
// unroll-and-jam example). ByName resolves them too.
func Extras() []Workload { return []Workload{NewDGEMM()} }

// ByName returns the named workload (case-sensitive application name).
func ByName(name string) (Workload, bool) {
	for _, w := range append(All(), Extras()...) {
		if w.Name() == name {
			return w, true
		}
	}
	return nil, false
}

// seedFor derives a deterministic per-thread RNG seed.
func seedFor(app string, coreID, threadID int) int64 {
	h := int64(1469598103934665603)
	for _, c := range app {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h ^ int64(coreID*977+threadID*131071)
}

func newRNG(app string, coreID, threadID int) *rand.Rand {
	return rand.New(rand.NewSource(seedFor(app, coreID, threadID)))
}

// scaleOps applies the scale factor with a sane floor.
func scaleOps(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 200 {
		n = 200
	}
	return n
}

// alignLine clips an address to the platform's line granularity.
func alignLine(addr uint64, p *platform.Platform) uint64 {
	return addr &^ uint64(p.LineBytes-1)
}

// NewFuncGen wraps a closure as a generator.
func NewFuncGen(next func() (cpu.Op, bool)) cpu.Generator { return cpu.GeneratorFunc(next) }
