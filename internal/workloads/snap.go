package workloads

import (
	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// SNAP models the dim3_sweep routine of the discrete-ordinates transport
// proxy (nx=64, ny=16, nz=24, nang=48, ng=54): a wavefront sweep whose
// innermost loops run over just 48 angles — short bursts of 384 bytes read
// from the angular-flux arrays of each cell, scattered by the wavefront
// ordering. Streams that short never confirm in the hardware prefetcher's
// stream table, which is the opening for user-directed software
// prefetching (§IV-F). On A64FX the compiler's automatic loop fusion
// introduces store-to-load forwarding stalls; the NoFuse variant removes
// them.
type SNAP struct {
	v Variant
}

// NewSNAP returns the base SNAP workload (compiler fusion active).
func NewSNAP() *SNAP { return &SNAP{} }

// Name implements Workload.
func (w *SNAP) Name() string { return "SNAP" }

// Routine implements Workload.
func (w *SNAP) Routine() string { return "dim3_sweep" }

// RandomAccess implements Workload.
func (w *SNAP) RandomAccess() bool { return false }

// Variant implements Workload.
func (w *SNAP) Variant() Variant { return w.v }

// WithVariant implements Workload.
func (w *SNAP) WithVariant(v Variant) Workload { return &SNAP{v: v} }

// Capabilities implements Workload.
func (w *SNAP) Capabilities(p *platform.Platform, threads int) core.Capabilities {
	return core.Capabilities{
		Vectorizable:      true,
		AlreadyVectorized: true, // compiler vectorizes the small angle loops
		SMTWays:           p.SMTWays,
		CurrentThreads:    threads,
		ShortLoops:        true,
		Fusable:           true,
		StreamCount:       6,
	}
}

const (
	// snapChunkBytes is one cell's angular batch: nang=48 doubles.
	snapChunkBytes = 48 * 8
	// snapArena is the angular-flux footprint per thread.
	snapArena = 1 << 27
	snapOps   = 3500 // cells per thread at scale 1
)

// snapCellGapCycles is the calibrated per-cell arithmetic of the sweep
// (the routine is computation-heavy: many temporaries, cache reuse).
var snapCellGapCycles = map[string]float64{
	"SKL":   850,
	"KNL":   920,
	"A64FX": 755,
}

// snapFusionPenalty is the §IV-F pathology: the compiler-fused loop's
// store-to-load forwarding stalls on A64FX (~4× on the hot loop, ~25% on
// the whole routine).
const snapFusionPenalty = 1.25

// Config implements Workload.
func (w *SNAP) Config(p *platform.Platform, threadsPerCore int, scale float64) sim.Config {
	v := w.v
	cells := scaleOps(snapOps, scale)
	gap := snapCellGapCycles[p.Name]
	if gap == 0 {
		gap = 600
	}
	if p.WeakStoreForwarding && !v.NoFuse {
		gap *= snapFusionPenalty
	}
	lineBytes := uint64(p.LineBytes)
	linesPerChunk := int((snapChunkBytes + int(lineBytes) - 1) / int(lineBytes))
	dist := v.PrefetchDistance
	if dist == 0 {
		dist = 2
	}

	// SNAP's SMT threads contend the sweep's shared temporaries nearly
	// serially (Table IX: 2-way HT pays ~1.1×, 4-way ~1.0×).
	smtShare := map[string]float64{"SKL": 0.95, "KNL": 0.875}[p.Name]

	return sim.Config{
		Plat:           p,
		Fingerprint:    fingerprint("SNAP", w.v, scale),
		ThreadsPerCore: threadsPerCore,
		Window:         minInt(6, p.DemandWindow),
		SMTShare:       smtShare,
		SMTExponent:    1,
		NewGen: func(coreID, threadID int) cpu.Generator {
			rng := newRNG("snap", coreID, threadID)
			base := uint64(coreID*8+threadID+1) << 34
			// Wavefront ordering: cells visit scattered chunk bases; keep a
			// lookahead ring so the prefetch variant can cover upcoming
			// cells' flux chunks.
			ring := make([]uint64, dist)
			for i := range ring {
				ring[i] = base + alignLine(rng.Uint64()%snapArena, p)
			}
			pos := 0
			cell := 0
			line := 0
			prefLine := -1
			return NewFuncGen(func() (cpu.Op, bool) {
				if cell >= cells {
					return cpu.Op{}, false
				}
				// Software prefetch of an upcoming cell's input chunk,
				// issued at the start of the current cell.
				if v.SWPrefetchL2 && prefLine >= 0 {
					a := ring[(pos+dist-1)%dist] + uint64(prefLine)*lineBytes
					prefLine--
					return cpu.Op{Addr: a, Kind: memsys.PrefetchL2, GapCycles: 1}, true
				}
				chunk := ring[pos]
				if line < linesPerChunk {
					// Input burst: the angular flux loads issue back to back.
					a := chunk + uint64(line)*lineBytes
					line++
					return cpu.Op{Addr: a, Kind: memsys.Load, GapCycles: 2}, true
				}
				// Output burst: the first store carries the cell's compute
				// and the input dependency — the sweep arithmetic cannot
				// begin until the angular fluxes have arrived. Stores drain
				// through the store buffer.
				computeGap := 2.0
				barrier := false
				if line == linesPerChunk {
					computeGap = gap
					barrier = true
				}
				a := chunk + (1 << 30) + uint64(line-linesPerChunk)*lineBytes
				line++
				if line >= 2*linesPerChunk {
					line = 0
					cell++
					ring[pos] = base + alignLine(rng.Uint64()%snapArena, p)
					if v.SWPrefetchL2 {
						prefLine = linesPerChunk - 1
					}
					pos = (pos + 1) % dist
					return cpu.Op{Addr: a, Kind: memsys.Store, GapCycles: computeGap, Work: 1, Async: true, Barrier: barrier}, true
				}
				return cpu.Op{Addr: a, Kind: memsys.Store, GapCycles: computeGap, Async: true, Barrier: barrier}, true
			})
		},
	}
}
