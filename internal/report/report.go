// Package report renders regenerated paper artifacts as text tables and
// CSV series.
package report

import (
	"fmt"
	"io"
	"strings"

	"littleslaw/internal/experiments"
)

// WriteTable renders a regenerated table in the layout of the paper's
// Tables IV–IX, with the paper's published values alongside for
// comparison.
func WriteTable(w io.Writer, t *experiments.Table) error {
	if _, err := fmt.Fprintf(w, "TABLE %s — %s (%s)\n", t.ID, t.Workload, t.Routine); err != nil {
		return err
	}
	header := fmt.Sprintf("%-6s %-22s %18s %14s %14s %-30s %s",
		"Proc", "Source", "BW GB/s (%peak)", "lat_avg (ns)", "n_avg", "Opt: speedup [recipe]", "paper: BW/n/speedup")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, r := range t.Rows {
		opt := "-"
		if r.NextOpt != "" {
			opt = fmt.Sprintf("%s: %.2fx [%s]", r.NextOpt, r.Speedup, r.Stance)
		}
		paper := "-"
		if r.PaperBW > 0 {
			paper = fmt.Sprintf("%.1f/%.2f", r.PaperBW, r.PaperOcc)
			if r.PaperSpeedup > 0 {
				paper += fmt.Sprintf("/%.2fx", r.PaperSpeedup)
			}
		}
		_, err := fmt.Fprintf(w, "%-6s %-22s %10.1f (%3.0f%%) %14.0f %14.2f %-30s %s\n",
			r.Platform, r.Source, r.BWGBs, r.PeakPct, r.LatNs, r.Occ, opt, paper)
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteTableCSV emits the rows as CSV.
func WriteTableCSV(w io.Writer, t *experiments.Table) error {
	if _, err := fmt.Fprintln(w, "table,platform,source,bw_gbs,peak_pct,lat_ns,n_avg,true_l1,true_l2,next_opt,stance,speedup,paper_bw,paper_occ,paper_speedup"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%.2f,%.1f,%.1f,%.3f,%.3f,%.3f,%s,%s,%.3f,%.2f,%.2f,%.2f\n",
			t.ID, r.Platform, r.Source, r.BWGBs, r.PeakPct, r.LatNs, r.Occ,
			r.TrueL1Occ, r.TrueL2Occ, r.NextOpt, r.Stance, r.Speedup,
			r.PaperBW, r.PaperOcc, r.PaperSpeedup)
		if err != nil {
			return err
		}
	}
	return nil
}
