package report

import (
	"strings"
	"testing"

	"littleslaw/internal/core"
	"littleslaw/internal/experiments"
)

func sampleTable() *experiments.Table {
	return &experiments.Table{
		ID:       "IV",
		Workload: "ISx",
		Routine:  "count_local_keys",
		Rows: []experiments.Row{
			{
				Platform: "SKL", Source: "base", Threads: 1,
				BWGBs: 108.4, PeakPct: 85, LatNs: 146, Occ: 10.3,
				TrueL1Occ: 9.9, TrueL2Occ: 10.1,
				NextOpt: "vectorization", Stance: core.Discourage, Speedup: 1.0,
				PaperBW: 106.9, PaperOcc: 10.1, PaperSpeedup: 1.0,
			},
			{
				Platform: "A64FX", Source: "+ l2-pref", Threads: 1,
				BWGBs: 746, PeakPct: 73, LatNs: 269, Occ: 16.4,
				PaperBW: 788, PaperOcc: 17.95,
			},
		},
	}
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable(&sb, sampleTable()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"TABLE IV — ISx (count_local_keys)",
		"vectorization: 1.00x [discourage]",
		"106.9/10.10/1.00x",
		"788.0/17.95", // final row echoes paper values without speedup
		"base",
		"+ l2-pref",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Final rows print "-" for the optimization column.
	if !strings.Contains(out, " - ") && !strings.Contains(out, "-  ") {
		t.Errorf("final row marker missing:\n%s", out)
	}
}

func TestWriteTableCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteTableCSV(&sb, sampleTable()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "table,platform,source,bw_gbs") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], "IV,SKL,base,108.40") {
		t.Fatalf("CSV row wrong: %s", lines[1])
	}
	// Every row has the same number of fields as the header.
	nf := len(strings.Split(lines[0], ","))
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != nf {
			t.Fatalf("CSV row field count mismatch: %s", l)
		}
	}
}
