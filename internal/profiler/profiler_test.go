package profiler

import (
	"strings"
	"testing"

	"littleslaw/internal/core"
	"littleslaw/internal/platform"
	"littleslaw/internal/stream/streamtest"
)

func TestProfileValidation(t *testing.T) {
	p := platform.SKL()
	if _, err := Profile(p, streamtest.Curve(), nil); err == nil {
		t.Fatal("no phases accepted")
	}
	if _, err := Profile(p, streamtest.Curve(), []Phase{{Name: "x", TimeWeight: 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

// TestPerRoutineDiffersFromWholeProgram reproduces the §III-D warning: a
// memory-hot routine plus a compute-light routine average into a profile
// that looks moderate, hiding the hot routine's saturated MSHR file.
func TestPerRoutineDiffersFromWholeProgram(t *testing.T) {
	p := platform.SKL()
	app, err := Profile(p, streamtest.Curve(), []Phase{
		{Name: "hot_sweep", Config: streamtest.PhaseConfig(p, 1, 12), TimeWeight: 0.4, RandomAccess: true},
		{Name: "light_solver", Config: streamtest.PhaseConfig(p, 900, 2), TimeWeight: 0.6, RandomAccess: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Routines) != 2 {
		t.Fatalf("routines = %d", len(app.Routines))
	}
	hot := app.Routines[0].Report
	light := app.Routines[1].Report
	whole := app.WholeProgram

	if hot.Occupancy <= 2*light.Occupancy {
		t.Fatalf("phases not contrasting enough: hot %.2f vs light %.2f", hot.Occupancy, light.Occupancy)
	}
	// The whole-program view sits between the two and, crucially, reports
	// the hot routine's saturation away.
	if !(whole.Occupancy < hot.Occupancy && whole.Occupancy > light.Occupancy) {
		t.Fatalf("whole-program occupancy %.2f not between %.2f and %.2f",
			whole.Occupancy, light.Occupancy, hot.Occupancy)
	}
	if hot.OccupancySaturated() && whole.OccupancySaturated() {
		t.Fatal("whole-program view should hide the hot routine's saturation")
	}
	// Time fractions normalize.
	if f := app.Routines[0].TimeFrac + app.Routines[1].TimeFrac; f < 0.999 || f > 1.001 {
		t.Fatalf("time fractions sum to %v", f)
	}
}

func TestWriteReport(t *testing.T) {
	p := platform.SKL()
	app, err := Profile(p, streamtest.Curve(), []Phase{
		{Name: "alpha", Config: streamtest.PhaseConfig(p, 5, 8), TimeWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := app.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"alpha", "whole-program", "misleading", "n_avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCounterReports(t *testing.T) {
	p := platform.SKL()
	app, err := Profile(p, streamtest.Curve(), []Phase{
		{Name: "alpha", Config: streamtest.PhaseConfig(p, 5, 8), TimeWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := app.WriteCounterReports(&sb, p); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"-- alpha --", "Counter report", "OFFCORE_RESPONSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("counter report missing %q:\n%s", want, out)
		}
	}
}

// TestWholeProgramActionTable pins the §III-D trap over the shared
// streamtest fixture — the identical two-phase app the stream package's
// phase detector segments and its golden event file locks. The routines'
// recipe actions are fixed by the fixture; the whole-program average's
// action must always betray the hot routine, and at balanced weights it
// matches no routine at all.
func TestWholeProgramActionTable(t *testing.T) {
	p := platform.SKL()
	cases := []struct {
		name                 string
		hotWeight, ltWeight  float64
		divergesEveryRoutine bool
	}{
		{"equal-time", 0.5, 0.5, true},
		{"hot-dominated", 0.8, 0.2, true},
		{"light-dominated", 0.2, 0.8, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app, err := Profile(p, streamtest.Curve(), []Phase{
				{Name: "hot_sweep", Config: streamtest.PhaseConfig(p, streamtest.HeavyGap, 12),
					TimeWeight: tc.hotWeight, RandomAccess: true},
				{Name: "light_solver", Config: streamtest.PhaseConfig(p, streamtest.LightGap, 2),
					TimeWeight: tc.ltWeight, RandomAccess: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			hot := core.Classify(app.Routines[0].Report)
			light := core.Classify(app.Routines[1].Report)
			whole := core.Classify(app.WholeProgram)

			// The fixture's contract: a saturated L1 MSHR queue with idle
			// L2 MSHRs next to an almost idle phase.
			if hot != core.ShiftToL2 || light != core.ComputeBound {
				t.Fatalf("fixture drifted: hot=%s light=%s", hot, light)
			}
			// The aggregate always hides the hot routine's saturation.
			if whole == hot {
				t.Fatalf("whole-program action %s matches the hot routine", whole)
			}
			if tc.divergesEveryRoutine && whole == light {
				t.Fatalf("whole-program action %s matches the light routine", whole)
			}
			if o := app.WholeProgram.Occupancy; o <= app.Routines[1].Report.Occupancy ||
				o >= app.Routines[0].Report.Occupancy {
				t.Fatalf("whole-program occupancy %.2f not strictly between the routines", o)
			}
		})
	}
}
