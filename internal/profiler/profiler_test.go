package profiler

import (
	"math/rand"
	"strings"
	"testing"

	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/sim"
)

func sklCurve() *queueing.Curve {
	return queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 0.5, LatencyNs: 82}, {BandwidthGBs: 37.9, LatencyNs: 93},
		{BandwidthGBs: 92.9, LatencyNs: 117}, {BandwidthGBs: 106.9, LatencyNs: 145},
		{BandwidthGBs: 112, LatencyNs: 220},
	})
}

// phaseConfig builds a small random-load phase with a given issue gap
// (larger gap = lighter memory phase).
func phaseConfig(p *platform.Platform, gap float64, window int) sim.Config {
	return sim.Config{
		Plat:   p,
		Cores:  8,
		Window: window,
		NewGen: func(coreID, threadID int) cpu.Generator {
			rng := rand.New(rand.NewSource(int64(coreID*31 + threadID)))
			n := 1500
			return cpu.GeneratorFunc(func() (cpu.Op, bool) {
				if n <= 0 {
					return cpu.Op{}, false
				}
				n--
				return cpu.Op{
					Addr:      uint64(coreID+1)<<34 + (rng.Uint64()&(1<<28-1))&^63,
					Kind:      memsys.Load,
					GapCycles: gap,
					Work:      1,
				}, true
			})
		},
	}
}

func TestProfileValidation(t *testing.T) {
	p := platform.SKL()
	if _, err := Profile(p, sklCurve(), nil); err == nil {
		t.Fatal("no phases accepted")
	}
	if _, err := Profile(p, sklCurve(), []Phase{{Name: "x", TimeWeight: 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

// TestPerRoutineDiffersFromWholeProgram reproduces the §III-D warning: a
// memory-hot routine plus a compute-light routine average into a profile
// that looks moderate, hiding the hot routine's saturated MSHR file.
func TestPerRoutineDiffersFromWholeProgram(t *testing.T) {
	p := platform.SKL()
	app, err := Profile(p, sklCurve(), []Phase{
		{Name: "hot_sweep", Config: phaseConfig(p, 1, 12), TimeWeight: 0.4, RandomAccess: true},
		{Name: "light_solver", Config: phaseConfig(p, 900, 2), TimeWeight: 0.6, RandomAccess: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Routines) != 2 {
		t.Fatalf("routines = %d", len(app.Routines))
	}
	hot := app.Routines[0].Report
	light := app.Routines[1].Report
	whole := app.WholeProgram

	if hot.Occupancy <= 2*light.Occupancy {
		t.Fatalf("phases not contrasting enough: hot %.2f vs light %.2f", hot.Occupancy, light.Occupancy)
	}
	// The whole-program view sits between the two and, crucially, reports
	// the hot routine's saturation away.
	if !(whole.Occupancy < hot.Occupancy && whole.Occupancy > light.Occupancy) {
		t.Fatalf("whole-program occupancy %.2f not between %.2f and %.2f",
			whole.Occupancy, light.Occupancy, hot.Occupancy)
	}
	if hot.OccupancySaturated() && whole.OccupancySaturated() {
		t.Fatal("whole-program view should hide the hot routine's saturation")
	}
	// Time fractions normalize.
	if f := app.Routines[0].TimeFrac + app.Routines[1].TimeFrac; f < 0.999 || f > 1.001 {
		t.Fatalf("time fractions sum to %v", f)
	}
}

func TestWriteReport(t *testing.T) {
	p := platform.SKL()
	app, err := Profile(p, sklCurve(), []Phase{
		{Name: "alpha", Config: phaseConfig(p, 5, 8), TimeWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := app.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"alpha", "whole-program", "misleading", "n_avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCounterReports(t *testing.T) {
	p := platform.SKL()
	app, err := Profile(p, sklCurve(), []Phase{
		{Name: "alpha", Config: phaseConfig(p, 5, 8), TimeWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := app.WriteCounterReports(&sb, p); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"-- alpha --", "Counter report", "OFFCORE_RESPONSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("counter report missing %q:\n%s", want, out)
		}
	}
}
