// Package profiler provides CrayPat-style per-routine profiling: it runs
// each routine (phase) of an application on the simulated node, attributes
// time and memory traffic per routine, and derives the Little's-Law report
// for each — plus the whole-program average that §III-D warns against
// ("averaging counter data from multiple routines that often behave very
// differently usually provides misleading guidance").
package profiler

import (
	"context"
	"fmt"
	"io"

	"littleslaw/internal/core"
	"littleslaw/internal/counters"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
)

// Phase is one routine of the profiled application.
type Phase struct {
	Name string
	// Config simulates the routine on the node.
	Config sim.Config
	// TimeWeight is the routine's share of application time (relative
	// weights; they need not sum to 1).
	TimeWeight float64
	// RandomAccess classifies the routine for the MSHR-level decision.
	RandomAccess bool
}

// RoutineProfile is the per-routine output.
type RoutineProfile struct {
	Name     string
	TimeFrac float64
	Result   *sim.Result
	Report   *core.Report
}

// AppProfile is a profiled application.
type AppProfile struct {
	Platform string
	Routines []RoutineProfile
	// WholeProgram is the single report a whole-program profile would
	// produce: time-weighted average bandwidth pushed through the same
	// metric — the misleading aggregate.
	WholeProgram *core.Report
}

// Profile runs every phase and builds the per-routine and whole-program
// reports.
func Profile(p *platform.Platform, profile *queueing.Curve, phases []Phase) (*AppProfile, error) {
	return ProfileContext(context.Background(), p, profile, phases)
}

// ProfileContext is Profile with cancellation; each phase runs through the
// shared runner spine, so repeated profiles of the same phases are cache
// hits.
func ProfileContext(ctx context.Context, p *platform.Platform, profile *queueing.Curve, phases []Phase) (*AppProfile, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("profiler: no phases")
	}
	var totalW float64
	for _, ph := range phases {
		if ph.TimeWeight <= 0 {
			return nil, fmt.Errorf("profiler: phase %q has non-positive weight", ph.Name)
		}
		totalW += ph.TimeWeight
	}

	app := &AppProfile{Platform: p.Name}
	var avgBW, avgPF float64
	anyRandom := false
	cores, threads := 0, 0
	for _, ph := range phases {
		res, err := runner.Run(ctx, ph.Config)
		if err != nil {
			return nil, fmt.Errorf("profiler: phase %q: %w", ph.Name, err)
		}
		rep, err := core.Analyze(p, profile, core.Measurement{
			Routine:                ph.Name,
			BandwidthGBs:           res.TotalGBs,
			ActiveCores:            res.Cores,
			ThreadsPerCore:         res.ThreadsPerCore,
			PrefetchedReadFraction: res.PrefetchedReadFraction,
			RandomAccess:           ph.RandomAccess,
		})
		if err != nil {
			return nil, err
		}
		frac := ph.TimeWeight / totalW
		app.Routines = append(app.Routines, RoutineProfile{
			Name: ph.Name, TimeFrac: frac, Result: res, Report: rep,
		})
		avgBW += frac * res.TotalGBs
		avgPF += frac * res.PrefetchedReadFraction
		anyRandom = anyRandom || ph.RandomAccess
		cores = max(cores, res.Cores)
		threads = max(threads, res.ThreadsPerCore)
	}

	// The whole-program view averages the same counters the routines were
	// measured with, so it keeps their core/thread footprint — the
	// misleading part is the averaging, not a change of denominator.
	whole, err := core.Analyze(p, profile, core.Measurement{
		Routine:                "whole-program",
		BandwidthGBs:           avgBW,
		ActiveCores:            cores,
		ThreadsPerCore:         threads,
		PrefetchedReadFraction: avgPF,
		RandomAccess:           anyRandom,
	})
	if err != nil {
		return nil, err
	}
	app.WholeProgram = whole
	return app, nil
}

// Write renders a CrayPat-like text report.
func (a *AppProfile) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Profile on %s (per-routine, then whole-program)\n", a.Platform); err != nil {
		return err
	}
	header := fmt.Sprintf("%-20s %7s %12s %10s %8s %10s", "Routine", "Time%", "BW GB/s", "lat ns", "n_avg", "limiter")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range a.Routines {
		if _, err := fmt.Fprintf(w, "%-20s %6.1f%% %12.1f %10.0f %8.2f %7s/%d\n",
			r.Name, 100*r.TimeFrac, r.Report.BandwidthGBs, r.Report.LatencyNs,
			r.Report.Occupancy, r.Report.Limiter, r.Report.LimiterCapacity); err != nil {
			return err
		}
	}
	wp := a.WholeProgram
	_, err := fmt.Fprintf(w, "%-20s %6s %12.1f %10.0f %8.2f %7s/%d  (misleading average)\n",
		"whole-program", "100%", wp.BandwidthGBs, wp.LatencyNs, wp.Occupancy, wp.Limiter, wp.LimiterCapacity)
	return err
}

// WriteCounterReports appends per-routine vendor counter readouts (the
// CrayPat-style raw view behind the derived table).
func (a *AppProfile) WriteCounterReports(w io.Writer, p *platform.Platform) error {
	model, err := counters.ModelFor(p.Name)
	if err != nil {
		return err
	}
	for _, r := range a.Routines {
		if _, err := fmt.Fprintf(w, "\n-- %s --\n", r.Name); err != nil {
			return err
		}
		if err := counters.WriteReport(w, model, p, r.Result); err != nil {
			return err
		}
	}
	return nil
}
