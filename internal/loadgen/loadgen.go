// Package loadgen is the llload client: a small HTTP load generator with
// the two canonical driving disciplines from queueing practice —
// closed-loop (a fixed population of clients, each waiting for its
// response before sending the next; throughput self-limits as latency
// grows) and open-loop (arrivals at a fixed rate regardless of responses;
// the discipline that actually exposes an overloaded server, because the
// offered load does not politely back off). Open-loop arrivals can be
// uniform (a metronome) or Poisson (seeded exponential interarrivals, the
// M in M/M/1), and the whole run is reproducible from a single seed: the
// arrival schedule and the retry jitter both derive from it, so two runs
// with the same options replay the same offered load.
//
// Requests go through internal/client, so every arrival gets the resilient
// treatment — per-attempt timeout, capped jittered backoff on 429/5xx, and
// Retry-After honoring against the service's admission controller.
//
// cmd/llload wraps it as a CLI; the internal/limit end-to-end tests drive
// it against httptest servers to prove the shed-then-recover behavior.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"littleslaw/internal/brownout"
	"littleslaw/internal/client"
)

// Options configures one load run.
type Options struct {
	// URL is the target (required unless Targets is set).
	URL string
	// Targets optionally names several target URLs; arrivals round-robin
	// across them and the Result carries a per-target breakdown alongside
	// the aggregate. Empty means the single URL. This is how llload drives
	// a fleet of llserved backends directly, for comparison against the
	// same fleet behind llproxy's affinity routing.
	Targets []string
	// Method defaults to POST when Body is non-empty, GET otherwise.
	Method string
	// Body is sent with every request.
	Body []byte
	// ContentType for the body (default application/json).
	ContentType string
	// Mode is "closed" (default) or "open".
	Mode string
	// Concurrency is the closed-loop client population (default 1).
	Concurrency int
	// Rate is the open-loop arrival rate in requests/second (required in
	// open mode).
	Rate float64
	// Arrivals is the open-loop discipline: "uniform" (default, evenly
	// spaced) or "poisson" (seeded exponential interarrivals).
	Arrivals string
	// Duration bounds the run (default 1s). The context bounds it too.
	Duration time.Duration
	// MaxRequests optionally caps total arrivals (0 = unlimited).
	MaxRequests int
	// Retries is the per-arrival retry cap on 429/5xx/transport errors
	// (default 0 = no retries). Retries honor Retry-After and otherwise
	// back off exponentially with seeded jitter.
	Retries int
	// Backoff is the base retry sleep when the server sends no hint
	// (default 100ms, doubling per attempt).
	Backoff time.Duration
	// Timeout is the per-attempt client timeout (default 10s).
	Timeout time.Duration
	// Seed makes the run reproducible: it drives the Poisson arrival
	// schedule and the retry jitter (0 = seeded from the clock).
	Seed int64
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o *Options) normalize() error {
	if len(o.Targets) == 0 {
		if o.URL == "" {
			return fmt.Errorf("loadgen: URL is required")
		}
		o.Targets = []string{o.URL}
	}
	if o.Method == "" {
		if len(o.Body) > 0 {
			o.Method = http.MethodPost
		} else {
			o.Method = http.MethodGet
		}
	}
	if o.ContentType == "" {
		o.ContentType = "application/json"
	}
	switch o.Mode {
	case "":
		o.Mode = "closed"
	case "closed", "open":
	default:
		return fmt.Errorf("loadgen: mode must be closed or open, got %q", o.Mode)
	}
	switch o.Arrivals {
	case "":
		o.Arrivals = "uniform"
	case "uniform", "poisson":
	default:
		return fmt.Errorf("loadgen: arrivals must be uniform or poisson, got %q", o.Arrivals)
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 1
	}
	if o.Mode == "open" && !(o.Rate > 0 && !math.IsInf(o.Rate, 0)) {
		return fmt.Errorf("loadgen: open mode needs a positive rate")
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return nil
}

// splitURL separates a full target URL into the client's BaseURL and the
// per-request path (with query).
func splitURL(raw string) (base, path string, err error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", "", fmt.Errorf("loadgen: bad URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return "", "", fmt.Errorf("loadgen: URL needs scheme and host, got %q", raw)
	}
	base = u.Scheme + "://" + u.Host
	path = u.Path
	if path == "" {
		path = "/"
	}
	if u.RawQuery != "" {
		path += "?" + u.RawQuery
	}
	return base, path, nil
}

// Schedule returns the open-loop arrival offsets an open-mode Run with
// these options will use: monotonically increasing offsets from the run's
// start, within Duration, capped by MaxRequests. Uniform arrivals tick at
// 1/Rate; Poisson arrivals draw exponential interarrivals from the seeded
// RNG, so the same (Seed, Rate, Duration) always yields the same schedule —
// that determinism is pinned by a regression test. Closed mode has no
// arrival schedule (arrivals are response-driven) and returns nil.
func Schedule(o Options) ([]time.Duration, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	if o.Mode != "open" {
		return nil, nil
	}
	return schedule(&o), nil
}

func schedule(o *Options) []time.Duration {
	// The arrival stream gets its own RNG, decoupled from retry jitter, so
	// the schedule is a pure function of (Seed, Rate, Arrivals, Duration).
	rng := rand.New(rand.NewSource(o.Seed))
	mean := float64(time.Second) / o.Rate
	var offs []time.Duration
	at := 0.0
	for {
		if o.Arrivals == "poisson" {
			at += rng.ExpFloat64() * mean
		} else {
			at += mean
		}
		if at >= float64(o.Duration) {
			return offs
		}
		offs = append(offs, time.Duration(at))
		if o.MaxRequests > 0 && len(offs) >= o.MaxRequests {
			return offs
		}
	}
}

// TargetCounts is the per-target slice of a multi-target run's counters.
// Fields mirror the aggregate Result partition.
type TargetCounts struct {
	Target                          string
	Sent, OK, Shed, Failed, Retries int64
}

// String renders one per-target breakdown line.
func (tc TargetCounts) String() string {
	return fmt.Sprintf("%s  sent %d  ok %d  shed %d  failed %d  retries %d",
		tc.Target, tc.Sent, tc.OK, tc.Shed, tc.Failed, tc.Retries)
}

// Result aggregates one run. Counts are over arrivals (a request retried
// twice is one arrival, three attempts).
type Result struct {
	mu sync.Mutex
	// Sent counts arrivals; OK, Shed and Failed partition their final
	// outcomes (Shed = last attempt got 429; Failed = transport error or
	// non-2xx/non-429).
	Sent, OK, Shed, Failed int64
	// Retries counts extra attempts beyond each arrival's first.
	Retries int64
	// DegradedOK counts the subset of OK whose response the server marked
	// degraded (X-Degraded: a stale cache entry or an analytic
	// approximation). Goodput proper is OK - DegradedOK; a brownout run
	// reports both because a degraded answer is still an answer.
	DegradedOK int64
	// okByMode buckets OK by serving fidelity, keyed by the brownout rung
	// label: "full" (B0 or no brownout), "stale" (B1), "analytic" (B2),
	// "degraded" for an unparseable marker.
	okByMode map[string]int64
	// RetryAfterSeen counts retryable responses that carried a Retry-After
	// hint.
	RetryAfterSeen int64
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
	// latencies holds one sample per successful request.
	latencies []time.Duration
	// slowestTrace is the X-Trace-Id of the slowest successful request —
	// the waterfall worth pulling from /v1/trace/{id} after a run.
	slowestTrace string
	slowestLat   time.Duration
	// perTarget holds the per-target breakdown, in Options.Targets order.
	perTarget []*TargetCounts
}

// SlowestTrace returns the X-Trace-Id of the slowest successful request
// and its latency ("" when none succeeded or the server does not trace).
func (r *Result) SlowestTrace() (string, time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slowestTrace, r.slowestLat
}

// PerTarget snapshots the per-target breakdown, in Options.Targets order.
// Single-target runs report one entry.
func (r *Result) PerTarget() []TargetCounts {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TargetCounts, len(r.perTarget))
	for i, tc := range r.perTarget {
		out[i] = *tc
	}
	return out
}

// OKByMode snapshots the success counts bucketed by serving fidelity
// ("full", "stale", "analytic"). Empty until the first success.
func (r *Result) OKByMode() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.okByMode))
	for k, v := range r.okByMode {
		out[k] = v
	}
	return out
}

// Quantile returns the q-th latency quantile of successful requests, or 0
// when none succeeded. q is clamped into [0, 1] — q <= 0 is the minimum,
// q >= 1 the maximum — and a NaN q returns 0: both out-of-range conversions
// from float to int are platform-defined in Go, so neither may reach the
// index arithmetic. Samples are copied and sorted here, because
// multi-target runs interleave their latencies in completion order.
func (r *Result) Quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.latencies) == 0 || math.IsNaN(q) {
		return 0
	}
	s := make([]time.Duration, len(r.latencies))
	copy(s, r.latencies)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}

// Successes returns the number of latency samples (successful requests).
func (r *Result) Successes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.latencies)
}

// String renders the summary line llload prints. It snapshots the counters
// under the lock, so it is safe to call while a Run is still updating them.
func (r *Result) String() string {
	r.mu.Lock()
	sent, ok, shed, failed := r.Sent, r.OK, r.Shed, r.Failed
	retries, elapsed, degraded := r.Retries, r.Elapsed, r.DegradedOK
	stale, analytic := r.okByMode["stale"], r.okByMode["analytic"]
	r.mu.Unlock()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(ok) / elapsed.Seconds()
	}
	s := fmt.Sprintf(
		"sent %d  ok %d  shed %d  failed %d  retries %d  |  p50 %s  p90 %s  p99 %s  |  %.1f ok/s",
		sent, ok, shed, failed, retries,
		r.Quantile(0.50).Round(time.Millisecond/10),
		r.Quantile(0.90).Round(time.Millisecond/10),
		r.Quantile(0.99).Round(time.Millisecond/10),
		rate)
	if degraded > 0 {
		// The goodput split only appears when the server actually browned
		// out, so non-brownout runs keep the historical summary shape.
		s += fmt.Sprintf("  |  degraded %d (full %d  stale %d  analytic %d)",
			degraded, ok-degraded, stale, analytic)
	}
	return s
}

func (r *Result) record(outcome func(*Result), lat time.Duration) {
	r.mu.Lock()
	outcome(r)
	if lat > 0 {
		r.latencies = append(r.latencies, lat)
	}
	r.mu.Unlock()
}

// target is one resolved destination: its own resilient client (seeded
// distinctly so retry jitter does not synchronize across the fleet) and
// its slice of the counters.
type target struct {
	path   string
	cl     *client.Client
	counts *TargetCounts
}

// Run drives the target(s) until the duration (or context, or MaxRequests)
// expires and returns the aggregate. The error reports option problems
// only — a run against a shedding or failing server is a successful run
// with non-zero Shed/Failed counts.
func Run(ctx context.Context, o Options) (*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	res := &Result{}
	targets := make([]*target, len(o.Targets))
	for i, raw := range o.Targets {
		base, path, err := splitURL(raw)
		if err != nil {
			return nil, err
		}
		// A load generator's job is to offer the configured load, so the
		// retry budget is off: Options.Retries is the explicit, user-chosen
		// cap.
		cl, err := client.New(client.Config{
			BaseURL:     base,
			HTTPClient:  o.Client,
			Timeout:     o.Timeout,
			MaxAttempts: o.Retries + 1,
			Backoff:     o.Backoff,
			Seed:        o.Seed + int64(i),
			BudgetRatio: -1,
		})
		if err != nil {
			return nil, err
		}
		tc := &TargetCounts{Target: raw}
		res.perTarget = append(res.perTarget, tc)
		targets[i] = &target{path: path, cl: cl, counts: tc}
	}
	// Arrivals round-robin across targets in arrival order, so a fleet gets
	// an even split regardless of which discipline generates the arrivals.
	var rr int64
	pick := func() *target {
		n := atomic.AddInt64(&rr, 1) - 1
		return targets[n%int64(len(targets))]
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, o.Duration)
	defer cancel()

	var budget *int64
	if o.MaxRequests > 0 {
		b := int64(o.MaxRequests)
		budget = &b
	}
	take := func() bool {
		if budget == nil {
			return true
		}
		res.mu.Lock()
		defer res.mu.Unlock()
		if *budget <= 0 {
			return false
		}
		*budget--
		return true
	}

	var wg sync.WaitGroup
	if o.Mode == "closed" {
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil && take() {
					arrival(ctx, pick(), &o, res)
				}
			}()
		}
	} else {
		timer := time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	arrivals:
		for _, off := range schedule(&o) {
			timer.Reset(time.Until(start.Add(off)))
			select {
			case <-ctx.Done():
				break arrivals
			case <-timer.C:
				if !take() {
					break arrivals
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					arrival(ctx, pick(), &o, res)
				}()
			}
		}
	}
	wg.Wait()
	res.mu.Lock()
	res.Elapsed = time.Since(start)
	res.mu.Unlock()
	return res, nil
}

// arrival issues one arrival through the resilient client and buckets the
// outcome. The client owns retries (429/5xx/transport within the Retries
// cap, Retry-After honored); in-flight attempts use the per-attempt
// timeout rather than the run deadline, so arrivals near the end of the
// window still complete — a context already dead mid-retry just surfaces
// the last response.
func arrival(ctx context.Context, tg *target, o *Options, res *Result) {
	res.record(func(r *Result) { r.Sent++; tg.counts.Sent++ }, 0)
	// Detach the attempt from the run deadline (the old behavior): the run
	// context only gates new arrivals and retry sleeps.
	cr, err := tg.cl.Do(context.WithoutCancel(ctx), o.Method, tg.path, o.ContentType, o.Body)
	if err != nil {
		res.record(func(r *Result) { r.Failed++; tg.counts.Failed++ }, 0)
		return
	}
	res.record(func(r *Result) {
		r.Retries += int64(cr.Attempts - 1)
		tg.counts.Retries += int64(cr.Attempts - 1)
		r.RetryAfterSeen += int64(cr.Hints)
	}, 0)
	switch {
	case cr.Status >= 200 && cr.Status < 300:
		traceID := cr.Header.Get("X-Trace-Id")
		// A degraded 2xx is still a success — the whole point of the
		// brownout ladder — but it lands in its own fidelity bucket.
		bucket := "full"
		if cr.Degraded {
			bucket = "degraded"
			if m, err := brownout.Parse(cr.BrownoutMode); err == nil {
				bucket = m.Label()
			}
		}
		res.record(func(r *Result) {
			r.OK++
			tg.counts.OK++
			if cr.Degraded {
				r.DegradedOK++
			}
			if r.okByMode == nil {
				r.okByMode = make(map[string]int64, 3)
			}
			r.okByMode[bucket]++
			if traceID != "" && cr.Latency >= r.slowestLat {
				r.slowestTrace, r.slowestLat = traceID, cr.Latency
			}
		}, cr.Latency)
	case cr.Status == http.StatusTooManyRequests:
		res.record(func(r *Result) { r.Shed++; tg.counts.Shed++ }, 0)
	default:
		res.record(func(r *Result) { r.Failed++; tg.counts.Failed++ }, 0)
	}
}
