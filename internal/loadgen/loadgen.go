// Package loadgen is the llload client: a small HTTP load generator with
// the two canonical driving disciplines from queueing practice —
// closed-loop (a fixed population of clients, each waiting for its
// response before sending the next; throughput self-limits as latency
// grows) and open-loop (arrivals at a fixed rate regardless of responses;
// the discipline that actually exposes an overloaded server, because the
// offered load does not politely back off). Both honor 429 + Retry-After
// from the service's admission controller with client-side retry/backoff.
//
// cmd/llload wraps it as a CLI; the internal/limit end-to-end tests drive
// it against httptest servers to prove the shed-then-recover behavior.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Options configures one load run.
type Options struct {
	// URL is the target (required).
	URL string
	// Method defaults to POST when Body is non-empty, GET otherwise.
	Method string
	// Body is sent with every request.
	Body []byte
	// ContentType for the body (default application/json).
	ContentType string
	// Mode is "closed" (default) or "open".
	Mode string
	// Concurrency is the closed-loop client population (default 1).
	Concurrency int
	// Rate is the open-loop arrival rate in requests/second (required in
	// open mode).
	Rate float64
	// Duration bounds the run (default 1s). The context bounds it too.
	Duration time.Duration
	// MaxRequests optionally caps total arrivals (0 = unlimited).
	MaxRequests int
	// Retries is the per-request retry budget on 429 (default 0). Retries
	// sleep for the server's Retry-After hint when present, Backoff
	// otherwise.
	Retries int
	// Backoff is the base retry sleep when the server sends no hint
	// (default 100ms, doubling per attempt).
	Backoff time.Duration
	// Timeout is the per-request client timeout (default 10s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o *Options) normalize() error {
	if o.URL == "" {
		return fmt.Errorf("loadgen: URL is required")
	}
	if o.Method == "" {
		if len(o.Body) > 0 {
			o.Method = http.MethodPost
		} else {
			o.Method = http.MethodGet
		}
	}
	if o.ContentType == "" {
		o.ContentType = "application/json"
	}
	switch o.Mode {
	case "":
		o.Mode = "closed"
	case "closed", "open":
	default:
		return fmt.Errorf("loadgen: mode must be closed or open, got %q", o.Mode)
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 1
	}
	if o.Mode == "open" && !(o.Rate > 0 && !math.IsInf(o.Rate, 0)) {
		return fmt.Errorf("loadgen: open mode needs a positive rate")
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return nil
}

// Result aggregates one run. Counts are over arrivals (a request retried
// twice is one arrival, three attempts).
type Result struct {
	mu sync.Mutex
	// Sent counts arrivals; OK, Shed and Failed partition their final
	// outcomes (Shed = last attempt got 429; Failed = transport error or
	// non-2xx/non-429).
	Sent, OK, Shed, Failed int64
	// Retries counts extra attempts after 429s.
	Retries int64
	// RetryAfterSeen counts 429 responses that carried a Retry-After hint.
	RetryAfterSeen int64
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
	// latencies holds one sample per successful request.
	latencies []time.Duration
}

// Quantile returns the q-th latency quantile (q in [0, 1]) of successful
// requests, or 0 when none succeeded.
func (r *Result) Quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.latencies) == 0 {
		return 0
	}
	s := make([]time.Duration, len(r.latencies))
	copy(s, r.latencies)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// Successes returns the number of latency samples (successful requests).
func (r *Result) Successes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.latencies)
}

// String renders the summary line llload prints. It snapshots the counters
// under the lock, so it is safe to call while a Run is still updating them.
func (r *Result) String() string {
	r.mu.Lock()
	sent, ok, shed, failed := r.Sent, r.OK, r.Shed, r.Failed
	retries, elapsed := r.Retries, r.Elapsed
	r.mu.Unlock()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(ok) / elapsed.Seconds()
	}
	return fmt.Sprintf(
		"sent %d  ok %d  shed %d  failed %d  retries %d  |  p50 %s  p90 %s  p99 %s  |  %.1f ok/s",
		sent, ok, shed, failed, retries,
		r.Quantile(0.50).Round(time.Millisecond/10),
		r.Quantile(0.90).Round(time.Millisecond/10),
		r.Quantile(0.99).Round(time.Millisecond/10),
		rate)
}

func (r *Result) record(outcome func(*Result), lat time.Duration) {
	r.mu.Lock()
	outcome(r)
	if lat > 0 {
		r.latencies = append(r.latencies, lat)
	}
	r.mu.Unlock()
}

// Run drives the target until the duration (or context, or MaxRequests)
// expires and returns the aggregate. The error reports option problems
// only — a run against a shedding or failing server is a successful run
// with non-zero Shed/Failed counts.
func Run(ctx context.Context, o Options) (*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	res := &Result{}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, o.Duration)
	defer cancel()

	var budget *int64
	if o.MaxRequests > 0 {
		b := int64(o.MaxRequests)
		budget = &b
	}
	take := func() bool {
		if budget == nil {
			return true
		}
		res.mu.Lock()
		defer res.mu.Unlock()
		if *budget <= 0 {
			return false
		}
		*budget--
		return true
	}

	var wg sync.WaitGroup
	if o.Mode == "closed" {
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil && take() {
					attempt(ctx, &o, res)
				}
			}()
		}
	} else {
		interval := time.Duration(float64(time.Second) / o.Rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
	arrivals:
		for {
			select {
			case <-ctx.Done():
				break arrivals
			case <-ticker.C:
				if !take() {
					break arrivals
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					attempt(ctx, &o, res)
				}()
			}
		}
	}
	wg.Wait()
	res.mu.Lock()
	res.Elapsed = time.Since(start)
	res.mu.Unlock()
	return res, nil
}

// attempt issues one arrival, retrying 429s within the budget while the
// context lives. In-flight requests use the per-request timeout, not the
// run deadline, so arrivals near the end of the window still complete.
func attempt(ctx context.Context, o *Options, res *Result) {
	res.record(func(r *Result) { r.Sent++ }, 0)
	backoff := o.Backoff
	for try := 0; ; try++ {
		status, hinted, hint, lat, err := once(o)
		switch {
		case err != nil:
			res.record(func(r *Result) { r.Failed++ }, 0)
			return
		case status >= 200 && status < 300:
			res.record(func(r *Result) { r.OK++ }, lat)
			return
		case status == http.StatusTooManyRequests:
			if hinted {
				res.record(func(r *Result) { r.RetryAfterSeen++ }, 0)
			}
			if try >= o.Retries || ctx.Err() != nil {
				res.record(func(r *Result) { r.Shed++ }, 0)
				return
			}
			sleep := backoff
			if hinted {
				sleep = hint
			}
			backoff *= 2
			res.record(func(r *Result) { r.Retries++ }, 0)
			select {
			case <-ctx.Done():
				res.record(func(r *Result) { r.Shed++ }, 0)
				return
			case <-time.After(sleep):
			}
		default:
			res.record(func(r *Result) { r.Failed++ }, 0)
			return
		}
	}
}

// once sends a single request and reports (status, retry-after present,
// retry-after value, latency, transport error).
func once(o *Options) (status int, hinted bool, hint time.Duration, lat time.Duration, err error) {
	reqCtx, cancel := context.WithTimeout(context.Background(), o.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, o.Method, o.URL, bytes.NewReader(o.Body))
	if err != nil {
		return 0, false, 0, 0, err
	}
	if len(o.Body) > 0 {
		req.Header.Set("Content-Type", o.ContentType)
	}
	begin := time.Now()
	resp, err := o.Client.Do(req)
	if err != nil {
		return 0, false, 0, 0, err
	}
	// Drain so the connection is reusable.
	buf := make([]byte, 512)
	for {
		if _, rerr := resp.Body.Read(buf); rerr != nil {
			break
		}
	}
	resp.Body.Close()
	lat = time.Since(begin)
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, perr := strconv.Atoi(v); perr == nil && secs >= 0 {
			hinted, hint = true, time.Duration(secs)*time.Second
		}
	}
	return resp.StatusCode, hinted, hint, lat, nil
}
