package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOptionValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Fatal("missing URL accepted")
	}
	if _, err := Run(context.Background(), Options{URL: "http://x", Mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := Run(context.Background(), Options{URL: "http://x", Mode: "open"}); err == nil {
		t.Fatal("open mode without rate accepted")
	}
}

func TestClosedLoopMaxRequests(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{
		URL: ts.URL, Mode: "closed", Concurrency: 3, MaxRequests: 7, Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 7 || res.OK != 7 || hits.Load() != 7 {
		t.Fatalf("res = %s, server hits = %d, want exactly 7", res, hits.Load())
	}
	if res.Successes() != 7 {
		t.Fatalf("latency samples = %d, want 7", res.Successes())
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	start := time.Now()
	res, err := Run(context.Background(), Options{
		URL: ts.URL, MaxRequests: 1, Retries: 2, Duration: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 1 || res.OK != 1 || res.Shed != 0 || res.Retries != 1 || res.RetryAfterSeen != 1 {
		t.Fatalf("res = %+v", res)
	}
	// The retry must actually have slept for the server's 1s hint.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %s, want >= the 1s Retry-After hint", elapsed)
	}
}

func TestShedWithoutRetryBudget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{URL: ts.URL, MaxRequests: 3, Duration: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 3 || res.Shed != 3 || res.OK != 0 || res.Retries != 0 {
		t.Fatalf("res = %+v", res)
	}
	// No Retry-After header was sent, so none should be counted.
	if res.RetryAfterSeen != 0 {
		t.Fatalf("RetryAfterSeen = %d, want 0", res.RetryAfterSeen)
	}
}

func TestNonOKStatusCountsFailed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{URL: ts.URL, MaxRequests: 2, Duration: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 2 || res.OK != 0 || res.Shed != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestOpenLoopOffersAtRate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{
		URL: ts.URL, Mode: "open", Rate: 200, Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~100 arrivals expected; allow generous scheduler slack either way.
	if res.Sent < 50 || res.Sent > 150 {
		t.Fatalf("open loop sent %d in 500ms at 200/s, want ≈100", res.Sent)
	}
	if res.OK != res.Sent {
		t.Fatalf("res = %+v", res)
	}
}

// TestStringConcurrentWithRecording: Result.String must snapshot counters
// under the lock so it is race-free against workers still recording — the
// guarantee a future progress printer relies on (run with -race).
func TestStringConcurrentWithRecording(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	o := Options{URL: ts.URL}
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = res.String()
				_ = res.Quantile(0.5)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		attempt(context.Background(), &o, res)
	}
	close(stop)
	wg.Wait()
	if res.Sent != 50 || res.OK != 50 {
		t.Fatalf("res = %s, want 50 sent and ok", res)
	}
}

func TestQuantile(t *testing.T) {
	r := &Result{}
	for _, ms := range []int{50, 10, 30, 20, 40} {
		r.latencies = append(r.latencies, time.Duration(ms)*time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.0, 10 * time.Millisecond},
		{0.5, 30 * time.Millisecond},
		{0.99, 50 * time.Millisecond},
		{1.0, 50 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := r.Quantile(tc.q); got != tc.want {
			t.Fatalf("Quantile(%v) = %s, want %s", tc.q, got, tc.want)
		}
	}
	if (&Result{}).Quantile(0.5) != 0 {
		t.Fatal("empty Quantile should be 0")
	}
}
